# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench experiments report cover clean

all: build test

build:
	go build ./...

test:
	go test ./...

# One iteration of every benchmark (tables, figures, ablations).
bench:
	go test -bench=. -benchmem -benchtime=1x .

# Regenerate every table and figure at small scale (minutes: use
# SCALE=full for the EXPERIMENTS.md headline numbers).
SCALE ?= small
experiments:
	go run ./cmd/hbat-experiments -scale $(SCALE)

report:
	go run ./cmd/hbat-report -o report.html -scale $(SCALE)

cover:
	go test -cover ./...

clean:
	rm -f report.html
