# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test check bench bench-sweep experiments report serve-demo cover clean

all: build test

build:
	go build ./...

test:
	go test ./...

# The CI gate: vet, the race-enabled test suite (which includes the
# lockstep differential, cross-design equivalence, golden-file, and
# concurrent-/metrics-scrape tests), a gofmt check, and the promcheck
# self-test (one real run rendered through the exposition pipeline and
# re-parsed, no server needed). Golden fixtures are regenerated with
# `go test ./internal/harness/ ./internal/report/ -run TestGolden -update`.
check:
	go vet ./...
	test -z "$$(gofmt -l .)" || { gofmt -l .; echo 'gofmt: files need formatting'; exit 1; }
	go test -race ./...
	go run ./internal/obs/promcheck -static

# One iteration of every benchmark (tables, figures, ablations).
bench:
	go test -bench=. -benchmem -benchtime=1x .

# Time a test-scale full report with the sweep caches disabled vs
# enabled (BENCH_sweep.json), then the full design grid from reset vs
# two-phase fast-forward (BENCH_ffwd.json).
bench-sweep:
	go run ./cmd/hbat-bench-sweep -scale test -o BENCH_sweep.json -ffwd-o BENCH_ffwd.json

# Regenerate every table and figure at small scale (minutes: use
# SCALE=full for the EXPERIMENTS.md headline numbers). Writes
# manifest.json with the spec list and artifact hashes.
SCALE ?= small
experiments:
	go run ./cmd/hbat-experiments -scale $(SCALE)

report:
	go run ./cmd/hbat-report -o report.html -scale $(SCALE)

# Live-telemetry demo: a test-scale full report with the observability
# server on :8090 and JSON logs. While it runs (and after):
#   curl -s localhost:8090/metrics | go run ./internal/obs/promcheck
#   curl -s localhost:8090/health
serve-demo:
	go run ./cmd/hbat-report -o report.html -scale test \
		-obs 127.0.0.1:8090 -log-format json -log-level debug

cover:
	go test -cover ./...

clean:
	rm -f report.html BENCH_sweep.json BENCH_ffwd.json manifest.json results_full.txt coverage.out
