package hbat

import (
	"io"

	"hbat/internal/cpu"
	"hbat/internal/harness"
	"hbat/internal/model"
)

// ModelReport is the paper's Section 2 performance model fitted to a
// measured run (see internal/model): the average translation latency
// t_AT decomposed into shielding, port queueing, and miss components,
// plus the inferred latency tolerance f_TOL of the core.
type ModelReport = model.Report

// Analyze runs the requested simulation and a four-ported-TLB baseline
// of the same program, then fits the paper's Section 2 model: how much
// translation latency the design exposes (t_AT), how much of it the
// core tolerates (f_TOL), and the resulting time-per-instruction cost.
func Analyze(o Options) (*ModelReport, error) {
	spec, err := o.spec()
	if err != nil {
		return nil, err
	}
	dev := harness.Run(spec)
	if dev.Err != nil {
		return nil, dev.Err
	}
	baseSpec := spec
	baseSpec.Design = "T4"
	base := harness.Run(baseSpec)
	if base.Err != nil {
		return nil, base.Err
	}
	rep := model.Analyze(spec.Design, spec.Workload,
		model.RunStats{CPU: base.Stats, TLB: base.TLB},
		model.RunStats{CPU: dev.Stats, TLB: dev.TLB},
		float64(cpu.DefaultConfig().TLBMissLatency))
	return &rep, nil
}

// RenderAnalysis writes a fitted model report in the paper's notation.
func RenderAnalysis(w io.Writer, rep *ModelReport) { rep.Render(w) }
