package hbat

import (
	"context"
	"fmt"
	"io"

	"hbat/internal/cpu"
	"hbat/internal/model"
)

// ModelReport is the paper's Section 2 performance model fitted to a
// measured run (see internal/model): the average translation latency
// t_AT decomposed into shielding, port queueing, and miss components,
// plus the inferred latency tolerance f_TOL of the core.
type ModelReport = model.Report

// Analysis is Analyze's result: the fitted Section 2 model plus the
// analyzed run's full metrics snapshot (the stats-registry export with
// queue-depth and translation-latency distributions, replay and squash
// counts, and stall causes).
type Analysis struct {
	ModelReport
	Metrics MetricsSnapshot
}

// Analyze runs the requested simulation and a four-ported-TLB baseline
// of the same program, then fits the paper's Section 2 model: how much
// translation latency the design exposes (t_AT), how much of it the
// core tolerates (f_TOL), and the resulting time-per-instruction cost.
// Both the design run and the T4 baseline stop promptly once ctx is
// cancelled. The baseline is memoized process-wide, so analyzing
// several designs of one workload simulates the T4 reference once.
func Analyze(ctx context.Context, o Options) (*Analysis, error) {
	spec, err := o.spec()
	if err != nil {
		return nil, err
	}
	dev := defaultEngine.Run(ctx, spec)
	if dev.Err != nil {
		return nil, dev.Err
	}
	baseSpec := spec
	baseSpec.Design = "T4"
	base := defaultEngine.Run(ctx, baseSpec)
	if base.Err != nil {
		return nil, base.Err
	}
	rep := model.Analyze(spec.Design, spec.Workload,
		model.RunStats{CPU: base.Stats, TLB: base.TLB},
		model.RunStats{CPU: dev.Stats, TLB: dev.TLB},
		float64(cpu.DefaultConfig().TLBMissLatency))
	return &Analysis{ModelReport: rep, Metrics: dev.Metrics}, nil
}

// AnalyzeContext fits the Section 2 model to one run.
//
// Deprecated: context-first Analyze is the canonical name;
// AnalyzeContext remains as a thin wrapper.
func AnalyzeContext(ctx context.Context, o Options) (*Analysis, error) {
	return Analyze(ctx, o)
}

// RenderAnalysis writes a fitted model report in the paper's notation,
// followed by the analyzed run's metrics export.
func RenderAnalysis(w io.Writer, a *Analysis) {
	a.Render(w)
	if len(a.Metrics) == 0 {
		return
	}
	fmt.Fprintf(w, "\nRun metrics (%s on %s):\n", a.Design, a.Workload)
	for _, m := range a.Metrics {
		switch m.Kind {
		case "counter":
			fmt.Fprintf(w, "  %-34s %12d\n", m.Name, m.Value)
		case "gauge":
			fmt.Fprintf(w, "  %-34s %12d  (max %d)\n", m.Name, m.Level, m.Max)
		default:
			fmt.Fprintf(w, "  %-34s n=%d mean=%.2f max=%d\n", m.Name, m.Count, m.Mean, m.Max)
		}
	}
}
