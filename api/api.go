// Package api defines the versioned wire contract of the hbat sweep
// fabric (cmd/hbatd): the request and response types of the v1 job
// API, the canonical rendered result artifact, and a thin HTTP client.
//
// The package is importable by external tools and deliberately depends
// on the standard library only. Versioning rules: the v1 types are
// append-only — new optional fields may be added, existing fields are
// never renamed, retyped, or removed, and response objects carry an
// "api" discriminator so clients can reject a server speaking a
// different major version. A breaking change mints /v2 paths and new
// types next to these.
package api

// Version is the wire-contract version every v1 response carries in
// its "api" field.
const Version = "v1"

// Paths of the v1 job API. {id} and {speckey} are path suffixes, not
// templates: clients append the identifier directly.
const (
	PathPing     = "/v1/ping"
	PathJobs     = "/v1/jobs"
	PathResults  = "/v1/results/"
	PathManifest = "/v1/manifest"
	// PathWorkers is the fleet-coordinator worker registry (cmd/hbatc):
	// GET lists the fleet's workers and their probe-driven states, POST
	// registers one at runtime (the static -worker list seeds it).
	// Single-node hbatd services do not serve this path.
	PathWorkers = "/v1/workers"
)

// TenantHeader names the request header carrying the caller's tenant
// identity. A "tenant" field in the JobRequest body takes precedence;
// with neither, the server files the job under the "default" tenant.
const TenantHeader = "X-Hbat-Tenant"

// TraceparentHeader names the W3C trace-context header a job
// submission may carry ("00-<32 hex trace id>-<16 hex span id>-01").
// A "traceparent" field in the JobRequest body takes precedence; with
// neither, the server mints a fresh trace id so every job's spans are
// retrievable. The accepted job's trace id is echoed in
// JobAccepted.TraceID and JobStatus.TraceID, and the job's server-side
// spans are served by GET /v1/jobs/{id}/spans as a span-journal
// (JSON-lines) document.
const TraceparentHeader = "traceparent"

// CommonOptions is the option set shared by every simulation entry
// point — one run, a grid, or a remote job: the workload scale, the
// seed for randomized structures, and the two-phase fast-forward
// knobs. The hbat facade embeds it in both Options and
// ExperimentOptions, and the service unmarshals it inside SimOptions,
// so client and server marshal the same type.
type CommonOptions struct {
	// Scale is "test", "small", or "full" (default "small").
	Scale string `json:"scale,omitempty"`
	// Seed drives every randomized structure (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// FastForward, when positive, executes the first N instructions
	// functionally and measures only the remainder cycle-accurately.
	FastForward uint64 `json:"fast_forward,omitempty"`
	// FFwdEngine selects the functional warm-up engine: "" or "sblock"
	// for the superblock-translated engine, "interp" for the reference
	// interpreter. Results are byte-identical either way.
	FFwdEngine string `json:"ffwd_engine,omitempty"`
}

// SimOptions names one simulation on the wire: every outcome-affecting
// knob of a run and nothing else (observation-only options — pipeline
// traces, interval sampling, progress callbacks — are local concerns
// and never cross the wire). Two SimOptions that normalize to the same
// spec share one spec key, one memoized result, and one stored
// artifact, whoever submits them.
type SimOptions struct {
	CommonOptions

	// Workload is one of the Table 3 benchmarks (default "compress").
	Workload string `json:"workload,omitempty"`
	// Design is a Table 2 mnemonic (default "T4").
	Design string `json:"design,omitempty"`
	// PageSize is the virtual-memory page size (default 4096).
	PageSize uint64 `json:"page_size,omitempty"`
	// InOrder selects the in-order issue model.
	InOrder bool `json:"in_order,omitempty"`
	// FewRegisters recompiles the workload for 8 int / 8 fp registers.
	FewRegisters bool `json:"few_registers,omitempty"`
	// VirtualCache switches to a virtually-indexed data cache.
	VirtualCache bool `json:"virtual_cache,omitempty"`
	// ContextSwitchEvery flushes translation state every N committed
	// instructions when non-zero.
	ContextSwitchEvery uint64 `json:"context_switch_every,omitempty"`
	// MaxInsts optionally caps committed instructions.
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// Lockstep runs the golden-model differential checker alongside
	// the pipeline.
	Lockstep bool `json:"lockstep,omitempty"`
}

// Grid is a product-form job body: the cross of Workloads × Designs,
// each cell inheriting Template's machine variant and common options.
// Nil Workloads means all ten benchmarks; nil Designs means all
// thirteen Table 2 designs (Template's own Workload/Design fields are
// ignored).
type Grid struct {
	Workloads []string   `json:"workloads,omitempty"`
	Designs   []string   `json:"designs,omitempty"`
	Template  SimOptions `json:"template"`
}

// JobRequest is the body of POST /v1/jobs: explicit specs, a grid, or
// both (the grid expands first, explicit specs append after).
type JobRequest struct {
	// Tenant overrides the X-Hbat-Tenant header.
	Tenant string       `json:"tenant,omitempty"`
	Specs  []SimOptions `json:"specs,omitempty"`
	Grid   *Grid        `json:"grid,omitempty"`
	// Traceparent, when set, carries the submitting client's W3C trace
	// context ("00-<trace>-<span>-01"): the server parents the job's
	// span tree under the client span and stamps the shared trace id
	// into its own spans, logs, and manifest records. Overrides the
	// traceparent header.
	Traceparent string `json:"traceparent,omitempty"`
}

// JobAccepted is the 202 response to a submitted job.
type JobAccepted struct {
	API    string `json:"api"`
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Total  int    `json:"total"`
	// SpecKeys are the content-address keys of the job's specs in
	// submission order; each resolves under /v1/results/ once done.
	SpecKeys  []string `json:"spec_keys"`
	StatusURL string   `json:"status_url"`
	EventsURL string   `json:"events_url"`
	// TraceID is the job's 32-hex cross-process trace id: the one the
	// client sent via traceparent, or a server-minted one. SpansURL
	// serves the job's server-side span journal (JSON lines) once spans
	// exist; empty when the server runs without span tracing.
	TraceID  string `json:"trace_id,omitempty"`
	SpansURL string `json:"spans_url,omitempty"`
}

// Spec states reported by SpecStatus.State, and job states reported by
// JobStatus.State ("failed" means at least one spec failed; the rest
// still complete).
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// SpecStatus is one spec's progress inside a job.
type SpecStatus struct {
	SpecKey string `json:"spec_key"`
	// Spec is the human-readable spec label
	// (workload/design/mode/pages/budget).
	Spec  string `json:"spec"`
	State string `json:"state"`
	// Cached reports the result was served from an engine's RunSpec
	// memo (or resume journal) instead of being simulated.
	Cached bool `json:"cached,omitempty"`
	// StoreHit reports the result was served straight from the
	// content-addressed result store, without touching an engine.
	StoreHit bool    `json:"store_hit,omitempty"`
	WallMs   float64 `json:"wall_ms,omitempty"`
	Error    string  `json:"error,omitempty"`
	// ResultURL serves the rendered artifact once State is "done";
	// SHA256 is its content hash (the ETag, unquoted).
	ResultURL string `json:"result_url,omitempty"`
	SHA256    string `json:"sha256,omitempty"`
	// Worker is the fleet worker that produced (or cached) the result,
	// set by a coordinator; single-node services leave it empty.
	Worker string `json:"worker,omitempty"`
	// Attempts counts dispatches of this spec, set by a coordinator: 1
	// for a first-try success, more when the spec was retried on
	// another worker after a failure or timeout.
	Attempts int `json:"attempts,omitempty"`
}

// JobStatus is the GET /v1/jobs/{id} response.
type JobStatus struct {
	API    string       `json:"api"`
	ID     string       `json:"id"`
	Tenant string       `json:"tenant"`
	State  string       `json:"state"`
	Done   int          `json:"done"`
	Total  int          `json:"total"`
	Specs  []SpecStatus `json:"specs"`
	// TraceID is the job's cross-process trace id (see
	// JobAccepted.TraceID) — a curl user correlates a job to its span
	// journal and log records with this field alone.
	TraceID string `json:"trace_id,omitempty"`
}

// Event is one SSE message on GET /v1/jobs/{id}/events. Type "spec"
// carries a completed spec's status (with its phase-span breakdown
// when the service traces spans), "span" streams a live run-root span
// end from the runspan tracer, and "done" closes the stream with the
// job's final counts.
type Event struct {
	Type string `json:"type"`
	Job  string `json:"job"`
	// Spec is set for "spec" events.
	Spec *SpecStatus `json:"spec,omitempty"`
	// Spans is the spec's per-phase wall-time breakdown (program_build,
	// checkpoint, fast_forward, simulate), when span tracing is on.
	Spans []Span `json:"spans,omitempty"`
	// Span is set for "span" events.
	Span *Span `json:"span,omitempty"`
	// Done/Total are set for "spec" and "done" events.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}

// Span is a finished runspan span on the wire.
type Span struct {
	Name  string            `json:"name"`
	DurUS int64             `json:"dur_us"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Result is the canonical rendered artifact of one simulated spec: the
// deterministic outcome fields only (no wall times, no cache
// dispositions), so the same spec renders byte-identical artifacts
// whether simulated locally through the facade, by any hbatd worker,
// or replayed from a resume journal. Served by GET
// /v1/results/{speckey} with its SHA-256 as the ETag.
type Result struct {
	API     string `json:"api"`
	SpecKey string `json:"spec_key"`
	// Spec is the human-readable spec label.
	Spec string `json:"spec"`

	Design   string `json:"design"`
	Workload string `json:"workload"`

	Cycles        int64  `json:"cycles"`
	Instructions  uint64 `json:"instructions"`
	Loads         uint64 `json:"loads"`
	Stores        uint64 `json:"stores"`
	FastForwarded uint64 `json:"fast_forwarded,omitempty"`

	IPC            float64 `json:"ipc"`
	IssueIPC       float64 `json:"issue_ipc"`
	MemPerCycle    float64 `json:"mem_per_cycle"`
	BranchPredRate float64 `json:"branch_pred_rate"`

	TLBLookups    uint64 `json:"tlb_lookups"`
	TLBMisses     uint64 `json:"tlb_misses"`
	TLBWalks      uint64 `json:"tlb_walks"`
	Piggybacks    uint64 `json:"piggybacks"`
	ShieldHits    uint64 `json:"shield_hits"`
	NoPortRetries uint64 `json:"no_port_retries"`
	StatusWrites  uint64 `json:"status_writes"`

	FetchStallCycles  int64 `json:"fetch_stall_cycles"`
	DispatchTLBStalls int64 `json:"dispatch_tlb_stalls"`
	DispatchROBFull   int64 `json:"dispatch_rob_full"`
	DispatchLSQFull   int64 `json:"dispatch_lsq_full"`
}

// Worker states reported by Worker.State, driven by the coordinator's
// periodic /ready + /v1/manifest probes: "up" serves new work,
// "draining" finishes what it has but is not dispatched to, "down"
// failed consecutive probes and is excluded until it answers again.
const (
	WorkerUp       = "up"
	WorkerDraining = "draining"
	WorkerDown     = "down"
)

// Worker is one fleet member's registration and probe state, served by
// GET /v1/workers on a coordinator.
type Worker struct {
	// Addr is the worker's base URL (e.g. "http://127.0.0.1:9191").
	Addr  string `json:"addr"`
	State string `json:"state"`
	// Tool is the worker's self-reported binary name from its
	// /v1/manifest (normally "hbatd"); empty until the first
	// successful manifest probe.
	Tool string `json:"tool,omitempty"`
	// Fails counts consecutive failed probes (reset on success).
	Fails int `json:"fails,omitempty"`
	// LastProbeMs is how many milliseconds ago the worker was last
	// probed (-1 before the first probe).
	LastProbeMs int64 `json:"last_probe_ms"`
}

// FleetStatus is the GET /v1/workers response.
type FleetStatus struct {
	API     string   `json:"api"`
	Workers []Worker `json:"workers"`
}

// WorkerRegistration is the POST /v1/workers body: it adds one worker
// address to a running coordinator's fleet (idempotent for an address
// already registered).
type WorkerRegistration struct {
	Addr string `json:"addr"`
}

// Error is the JSON error body every non-2xx v1 response carries. It
// implements the error interface so clients can surface it directly.
type Error struct {
	API     string `json:"api"`
	Code    int    `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return e.Message }
