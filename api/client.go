package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client is a minimal v1 client for an hbatd sweep service. The zero
// value is not usable; construct with NewClient. All methods honour
// the passed context and return *Error for structured server errors.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:9090" (no
	// trailing slash).
	Base string
	// HTTP is the underlying client; http.DefaultClient when nil.
	HTTP *http.Client
	// Tenant, when non-empty, is sent as the X-Hbat-Tenant header on
	// every request.
	Tenant string
}

// NewClient returns a Client for the service rooted at base.
func NewClient(base string) *Client { return &Client{Base: base} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
		if jr, ok := body.(JobRequest); ok && jr.Traceparent != "" {
			req.Header.Set(TraceparentHeader, jr.Traceparent)
		}
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var apiErr Error
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Message != "" {
			if apiErr.Code == 0 {
				apiErr.Code = resp.StatusCode
			}
			return &apiErr
		}
		return &Error{API: Version, Code: resp.StatusCode,
			Message: fmt.Sprintf("%s %s: %s", method, path, resp.Status)}
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// Ping probes the service and verifies it speaks this wire version.
func (c *Client) Ping(ctx context.Context) error {
	var pong struct {
		API string `json:"api"`
	}
	if err := c.do(ctx, http.MethodGet, PathPing, nil, &pong); err != nil {
		return err
	}
	if pong.API != Version {
		return fmt.Errorf("api: server speaks %q, client speaks %q", pong.API, Version)
	}
	return nil
}

// Submit posts a job and returns its acceptance record. A
// req.Traceparent is additionally sent as the traceparent header, so
// intermediaries that only read headers see the same trace context the
// body carries.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobAccepted, error) {
	var acc JobAccepted
	err := c.do(ctx, http.MethodPost, PathJobs, req, &acc)
	return acc, err
}

// Spans fetches a job's server-side span journal: the raw JSON-lines
// document GET /v1/jobs/{id}/spans serves (versioned header line, then
// one finished span per line — the same format a local -spans journal
// file uses).
func (c *Client) Spans(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+PathJobs+"/"+id+"/spans", nil)
	if err != nil {
		return nil, err
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr Error
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Message != "" {
			return nil, &apiErr
		}
		return nil, &Error{API: Version, Code: resp.StatusCode, Message: resp.Status}
	}
	return data, nil
}

// Job fetches the current status of a job.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, PathJobs+"/"+id, nil, &st)
	return st, err
}

// Wait polls a job until it leaves the queued/running states (or the
// context ends) and returns its final status.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State == StateDone || st.State == StateFailed {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-tick.C:
		}
	}
}

// Result fetches a rendered artifact by spec key, returning the exact
// served bytes and their content-hash ETag (unquoted).
func (c *Client) Result(ctx context.Context, specKey string) ([]byte, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+PathResults+specKey, nil)
	if err != nil {
		return nil, "", err
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr Error
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Message != "" {
			return nil, "", &apiErr
		}
		return nil, "", &Error{API: Version, Code: resp.StatusCode, Message: resp.Status}
	}
	etag := resp.Header.Get("ETag")
	if n := len(etag); n >= 2 && etag[0] == '"' && etag[n-1] == '"' {
		etag = etag[1 : n-1]
	}
	return data, etag, nil
}
