package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is a minimal v1 client for an hbatd sweep service (or an
// hbatc coordinator — they speak the same API). The zero value is not
// usable; construct with NewClient. All methods honour the passed
// context and return *Error for structured server errors.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:9090" (no
	// trailing slash).
	Base string
	// HTTP is the underlying client; http.DefaultClient when nil.
	HTTP *http.Client
	// Tenant, when non-empty, is sent as the X-Hbat-Tenant header on
	// every request.
	Tenant string
	// Timeout, when positive, bounds each individual HTTP request
	// (tightening, never loosening, the caller's context deadline).
	// Wait applies it per poll, so a hung server fails one request at
	// a time instead of stalling Wait forever. Events is exempt: an
	// event stream legitimately outlives any single-request budget, so
	// its lifetime is bounded only by the caller's context.
	Timeout time.Duration
}

// NewClient returns a Client for the service rooted at base.
func NewClient(base string) *Client { return &Client{Base: base} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// reqCtx derives the per-request context: ctx plus the client's
// Timeout, when one is set.
func (c *Client) reqCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.Timeout > 0 {
		return context.WithTimeout(ctx, c.Timeout)
	}
	return ctx, func() {}
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
		if jr, ok := body.(JobRequest); ok && jr.Traceparent != "" {
			req.Header.Set(TraceparentHeader, jr.Traceparent)
		}
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var apiErr Error
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Message != "" {
			if apiErr.Code == 0 {
				apiErr.Code = resp.StatusCode
			}
			return &apiErr
		}
		return &Error{API: Version, Code: resp.StatusCode,
			Message: fmt.Sprintf("%s %s: %s", method, path, resp.Status)}
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// Ping probes the service and verifies it speaks this wire version.
func (c *Client) Ping(ctx context.Context) error {
	var pong struct {
		API string `json:"api"`
	}
	if err := c.do(ctx, http.MethodGet, PathPing, nil, &pong); err != nil {
		return err
	}
	if pong.API != Version {
		return fmt.Errorf("api: server speaks %q, client speaks %q", pong.API, Version)
	}
	return nil
}

// Submit posts a job and returns its acceptance record. A
// req.Traceparent is additionally sent as the traceparent header, so
// intermediaries that only read headers see the same trace context the
// body carries.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobAccepted, error) {
	var acc JobAccepted
	err := c.do(ctx, http.MethodPost, PathJobs, req, &acc)
	return acc, err
}

// Spans fetches a job's server-side span journal: the raw JSON-lines
// document GET /v1/jobs/{id}/spans serves (versioned header line, then
// one finished span per line — the same format a local -spans journal
// file uses).
func (c *Client) Spans(ctx context.Context, id string) ([]byte, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+PathJobs+"/"+id+"/spans", nil)
	if err != nil {
		return nil, err
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr Error
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Message != "" {
			return nil, &apiErr
		}
		return nil, &Error{API: Version, Code: resp.StatusCode, Message: resp.Status}
	}
	return data, nil
}

// Job fetches the current status of a job.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, PathJobs+"/"+id, nil, &st)
	return st, err
}

// Wait polls a job until it leaves the queued/running states (or the
// context ends) and returns its final status.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State == StateDone || st.State == StateFailed {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-tick.C:
		}
	}
}

// Result fetches a rendered artifact by spec key, returning the exact
// served bytes and their content-hash ETag (unquoted).
func (c *Client) Result(ctx context.Context, specKey string) ([]byte, string, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+PathResults+specKey, nil)
	if err != nil {
		return nil, "", err
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr Error
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Message != "" {
			return nil, "", &apiErr
		}
		return nil, "", &Error{API: Version, Code: resp.StatusCode, Message: resp.Status}
	}
	etag := resp.Header.Get("ETag")
	if n := len(etag); n >= 2 && etag[0] == '"' && etag[n-1] == '"' {
		etag = etag[1 : n-1]
	}
	return data, etag, nil
}

// Events opens the SSE stream of a job and calls fn for every decoded
// event until fn returns false, the stream ends, or ctx is done. The
// terminal "done" event (when one arrives) is delivered to fn like any
// other; Events returns nil right after it. The stream is lossy by
// design — a consumer that needs every spec's final state should
// reconcile with Job after Events returns. The client's Timeout does
// NOT apply here; bound the stream's lifetime through ctx.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+PathJobs+"/"+id+"/events", nil)
	if err != nil {
		return err
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var apiErr Error
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Message != "" {
			return &apiErr
		}
		return &Error{API: Version, Code: resp.StatusCode, Message: resp.Status}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			continue // tolerate foreign frames on the stream
		}
		if !fn(ev) {
			return nil
		}
		if ev.Type == "done" {
			return nil
		}
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return sc.Err()
}

// Ready probes the service's readiness endpoint (served next to the
// job API on hbatd and hbatc). It returns (true, nil) for a ready
// service, (false, nil) for one that answered 503 (draining), and a
// non-nil error when the probe itself failed.
func (c *Client) Ready(ctx context.Context) (bool, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/ready", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		return true, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		return false, nil
	}
	return false, &Error{API: Version, Code: resp.StatusCode, Message: resp.Status}
}

// Manifest fetches the service's provenance manifest and returns its
// self-reported tool name — the coordinator's API-compatibility probe.
func (c *Client) Manifest(ctx context.Context) (tool string, err error) {
	var man struct {
		Tool string `json:"tool"`
	}
	if err := c.do(ctx, http.MethodGet, PathManifest, nil, &man); err != nil {
		return "", err
	}
	return man.Tool, nil
}

// Workers fetches a coordinator's fleet registry. Single-node hbatd
// services answer 404 here.
func (c *Client) Workers(ctx context.Context) (FleetStatus, error) {
	var fs FleetStatus
	err := c.do(ctx, http.MethodGet, PathWorkers, nil, &fs)
	return fs, err
}

// RegisterWorker adds a worker address to a running coordinator's
// fleet.
func (c *Client) RegisterWorker(ctx context.Context, addr string) error {
	return c.do(ctx, http.MethodPost, PathWorkers, WorkerRegistration{Addr: addr}, nil)
}
