package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

// TestClientTimeoutUnhangsWait is the regression test for the hung-
// worker stall: a server that accepts connections but never answers
// must not block Job/Wait/Result/Ready indefinitely when the client
// carries a per-request Timeout — even under a background context with
// no deadline of its own.
func TestClientTimeoutUnhangsWait(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	// Unblock any still-parked handler before Close waits on it.
	defer close(release)

	c := NewClient(ts.URL)
	c.Timeout = 50 * time.Millisecond
	ctx := context.Background()

	calls := []struct {
		name string
		call func() error
	}{
		{"Job", func() error { _, err := c.Job(ctx, "j0"); return err }},
		{"Wait", func() error { _, err := c.Wait(ctx, "j0"); return err }},
		{"Ping", func() error { return c.Ping(ctx) }},
		{"Result", func() error { _, _, err := c.Result(ctx, "abc123"); return err }},
		{"Spans", func() error { _, err := c.Spans(ctx, "j0"); return err }},
		{"Ready", func() error { _, err := c.Ready(ctx); return err }},
		{"Manifest", func() error { _, err := c.Manifest(ctx); return err }},
		{"Submit", func() error { _, err := c.Submit(ctx, JobRequest{}); return err }},
	}
	for _, tc := range calls {
		start := time.Now()
		err := tc.call()
		if err == nil {
			t.Fatalf("%s against a hung server returned nil error", tc.name)
		}
		if wall := time.Since(start); wall > 2*time.Second {
			t.Fatalf("%s took %v against a hung server; Timeout not applied", tc.name, wall)
		}
		// The failure must be a deadline, not a server response.
		if !errors.Is(err, context.DeadlineExceeded) && !os.IsTimeout(err) {
			// net/http wraps the context error; string-level check as
			// the fallback for wrapper types that don't implement Is.
			if !containsTimeout(err) {
				t.Fatalf("%s error = %v, want a deadline/timeout error", tc.name, err)
			}
		}
	}
}

func containsTimeout(err error) bool {
	s := err.Error()
	for _, frag := range []string{"deadline exceeded", "timeout", "canceled"} {
		if contains(s, frag) {
			return true
		}
	}
	return false
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestClientTimeoutTightensNotLoosens: an already-tighter caller
// deadline wins over a looser client Timeout.
func TestClientTimeoutTightensNotLoosens(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(release)
	c := NewClient(ts.URL)
	c.Timeout = 30 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Job(ctx, "j0"); err == nil {
		t.Fatal("hung Job returned nil")
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("caller deadline ignored: Job took %v", wall)
	}
}

// TestClientEventsStream decodes SSE frames and stops on the terminal
// done event.
func TestClientEventsStream(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		for _, frame := range []string{
			`{"type":"spec","job":"j1","done":1,"total":2}`,
			`not json at all`,
			`{"type":"done","job":"j1","done":2,"total":2}`,
		} {
			fmt.Fprintf(w, "data: %s\n\n", frame)
			fl.Flush()
		}
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Timeout = time.Second // must NOT cut the stream short
	var got []string
	err := c.Events(context.Background(), "j1", func(ev Event) bool {
		got = append(got, ev.Type)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "spec" || got[1] != "done" {
		t.Fatalf("events = %v, want [spec done]", got)
	}
}
