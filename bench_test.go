package hbat

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablation benchmarks for the design choices
// called out in DESIGN.md. Each figure benchmark runs the full
// design × workload grid at test scale and reports the run-time
// weighted normalized IPC of key designs as custom metrics, so
// `go test -bench` regenerates the paper's headline numbers:
//
//	go test -bench 'Figure5' -benchtime 1x
//
// EXPERIMENTS.md records the full-scale results produced by
// cmd/hbat-experiments against the paper's reported values.

import (
	"context"
	"fmt"
	"io"
	"testing"

	"hbat/internal/cpu"
	"hbat/internal/emu"
	"hbat/internal/harness"
	"hbat/internal/prog"
	"hbat/internal/tlb"
	"hbat/internal/vm"
	"hbat/internal/workload"
)

func benchOpts() harness.Options {
	return harness.Options{Scale: workload.ScaleTest, Seed: 1}
}

// reportFigure publishes each design's normalized average as a metric.
func reportFigure(b *testing.B, f *harness.FigureResult) {
	b.Helper()
	for _, d := range f.Designs {
		b.ReportMetric(f.NormalizedAvg(d), "norm:"+d)
	}
}

// BenchmarkTable3 regenerates the baseline program characterization.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table3(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var ipc, n float64
			for _, r := range rows {
				ipc += r.CommitIPC
				n++
			}
			b.ReportMetric(ipc/n, "meanIPC")
		}
	}
}

// BenchmarkFigure5 regenerates the baseline design comparison.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := harness.Figure5(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, f)
		}
	}
}

// BenchmarkFigure6 regenerates the TLB miss-rate study.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := harness.Figure6(context.Background(), benchOpts(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, size := range f.Sizes {
				b.ReportMetric(100*f.RTWAvg(size), fmt.Sprintf("missPct@%d", size))
			}
		}
	}
}

// BenchmarkFigure7 regenerates the in-order issue comparison.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := harness.Figure7(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, f)
		}
	}
}

// BenchmarkFigure8 regenerates the 8 KB page comparison.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := harness.Figure8(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, f)
		}
	}
}

// BenchmarkFigure9 regenerates the reduced-register comparison.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := harness.Figure9(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, f)
		}
	}
}

// BenchmarkTable2 renders the design inventory (trivially cheap; it
// exists so every numbered artifact has a bench target).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.RenderTable2(io.Discard)
	}
}

// --- ablation benchmarks (design choices beyond the paper's grid) ---

// refStream replays one workload's data-reference VPN stream into a
// functional TLB model and returns its miss rate.
func missRateWith(b *testing.B, wl string, entries int, repl tlb.Replacement) float64 {
	b.Helper()
	w, err := workload.ByName(wl)
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	m, err := emu.New(p, 4096)
	if err != nil {
		b.Fatal(err)
	}
	sim := tlb.NewMissRateSim(entries, repl, 1)
	bits := m.AS.PageBits()
	m.OnMemRef = func(vaddr uint64, _ bool) { sim.Ref(vaddr >> bits) }
	if err := m.Run(0); err != nil {
		b.Fatal(err)
	}
	return sim.MissRate()
}

// BenchmarkAblationL1Replacement compares LRU vs FIFO vs random for the
// small upper-level TLB (the paper asserts LRU is what makes a tiny L1
// viable; Section 3.3).
func BenchmarkAblationL1Replacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, repl := range []tlb.Replacement{tlb.LRU, tlb.FIFO, tlb.Random} {
			var sum float64
			for _, wl := range []string{"compress", "gcc", "tomcatv"} {
				sum += missRateWith(b, wl, 8, repl)
			}
			if i == 0 {
				b.ReportMetric(100*sum/3, "missPct:"+repl.String())
			}
		}
	}
}

// BenchmarkAblationBankSelect compares bit selection against
// XOR-folding for the interleaved design's bank distribution
// (Section 3.2 / configuration X4).
func BenchmarkAblationBankSelect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cfg := range []struct {
			name string
			mk   func(int) tlb.BankSelect
		}{{"bit", tlb.BitSelect}, {"xor", tlb.XORSelect}} {
			sel := cfg.mk(4)
			conflicts := 0
			total := 0
			// Simultaneous request pairs drawn from a strided stream:
			// the pathological case for bit selection.
			for vpn := uint64(0); vpn < 4096; vpn++ {
				a, c := sel(vpn), sel(vpn+4) // stride-4 pages collide under bit select
				total++
				if a == c {
					conflicts++
				}
			}
			if i == 0 {
				b.ReportMetric(100*float64(conflicts)/float64(total), "conflictPct:"+cfg.name)
			}
		}
	}
}

// BenchmarkAblationL1TLBPorts varies the L1 TLB port count of the M8
// design (the paper fixes it at 4 — enough for every requester; fewer
// ports would stall the shielding structure itself).
func BenchmarkAblationL1TLBPorts(b *testing.B) {
	w, err := workload.ByName("espresso")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, ports := range []int{1, 2, 4} {
			m, err := cpu.New(p, cpu.DefaultConfig(), func(as *vm.AddressSpace) tlb.Device {
				return tlb.NewMultilevel("M8", as, 8, ports, 128, 1)
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(m.Stats().IPC(), fmt.Sprintf("IPC:%dport", ports))
			}
		}
	}
}

// BenchmarkAblationPretransCacheSize varies the pretranslation cache
// size around the paper's 8 entries.
func BenchmarkAblationPretransCacheSize(b *testing.B) {
	w, err := workload.ByName("tomcatv")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, size := range []int{4, 8, 16} {
			m, err := cpu.New(p, cpu.DefaultConfig(), func(as *vm.AddressSpace) tlb.Device {
				return tlb.NewPretranslation("P", as, size, 4, 128, 1)
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(m.Stats().IPC(), fmt.Sprintf("IPC:%dentries", size))
			}
		}
	}
}

// BenchmarkAblationPretransOffsetBits sweeps how many offset bits join
// the pretranslation tag (Section 3.5 suggests "a few bits from the
// offset could be combined with the base register identifier"; the
// paper uses four, zero degenerates to one translation per register).
func BenchmarkAblationPretransOffsetBits(b *testing.B) {
	// A microbenchmark where one base register addresses a structure
	// spanning two pages: field A at offset 0, field B at offset 4 KB.
	// With zero offset-tag bits a register holds one pretranslation, so
	// the alternating accesses thrash it; with one or more bits both
	// pages stay attached.
	pb := prog.NewBuilder("bigstruct")
	pb.Alloc("s", 8192, 8)
	base := pb.IVar("base")
	va := pb.IVar("va")
	vb := pb.IVar("vb")
	n := pb.IVar("n")
	pb.La(base, "s")
	pb.Li(n, 2000)
	pb.Label("loop")
	pb.Ld(va, base, 0)
	pb.Ld(vb, base, 4096)
	pb.Add(va, va, vb)
	pb.Sd(va, base, 8)
	pb.Addi(n, n, -1)
	pb.Bgtz(n, "loop")
	pb.Halt()
	p, err := pb.Finalize(prog.Budget32)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, bits := range []int{0, 2, 4} {
			m, err := cpu.New(p, cpu.DefaultConfig(), func(as *vm.AddressSpace) tlb.Device {
				return tlb.NewPretranslation("P8", as, 8, 4, 128, 1).SetOffsetTagBits(bits)
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(m.Stats().IPC(), fmt.Sprintf("IPC:%dbits", bits))
			}
		}
	}
}

// BenchmarkExtensionVirtualCache compares a single-ported TLB behind a
// physically-indexed cache against the same TLB behind a virtually-
// indexed cache (the organization the paper's Section 3 sets aside):
// translation bandwidth stops mattering when only misses translate.
func BenchmarkExtensionVirtualCache(b *testing.B) {
	w, err := workload.ByName("espresso")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, vc := range []bool{false, true} {
			cfg := cpu.DefaultConfig()
			cfg.VirtualCache = vc
			m, err := cpu.NewWithDesign(p, cfg, "T1")
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				name := "IPC:phys"
				if vc {
					name = "IPC:virt"
				}
				b.ReportMetric(m.Stats().IPC(), name)
			}
		}
	}
}

// BenchmarkExtensionContextSwitch sweeps the context-switch interval
// (full TLB flush every N instructions), the multiprogramming pressure
// the paper's introduction motivates the designs with.
func BenchmarkExtensionContextSwitch(b *testing.B) {
	w, err := workload.ByName("xlisp")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, every := range []uint64{0, 20000, 5000} {
			cfg := cpu.DefaultConfig()
			cfg.FlushTLBEvery = every
			m, err := cpu.NewWithDesign(p, cfg, "M8")
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(m.Stats().IPC(), fmt.Sprintf("IPC:cs%d", every))
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (simulated instructions per wall-clock second) on the baseline.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := workload.ByName("espresso")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := cpu.NewWithDesign(p, cpu.DefaultConfig(), "T4")
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		insts += m.Stats().Committed
	}
	b.StopTimer()
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkTLBDeviceLookup measures a single device's lookup cost (the
// simulator's hottest path) for representative designs.
func BenchmarkTLBDeviceLookup(b *testing.B) {
	for _, design := range []string{"T4", "I4", "M8", "P8", "PB2"} {
		b.Run(design, func(b *testing.B) {
			as := vm.NewAddressSpace(4096)
			as.AddRegion(vm.Region{Name: "all", Base: 0, Size: 1 << 30, Perm: vm.PermRW})
			d, err := tlb.NewFromSpec(design, as, 1)
			if err != nil {
				b.Fatal(err)
			}
			for vpn := uint64(0); vpn < 64; vpn++ {
				if _, err := d.Fill(vpn, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now := int64(i)
				d.BeginCycle(now)
				d.Lookup(tlb.Request{VPN: uint64(i) % 64, Base: 8, Load: true}, now)
			}
		})
	}
}

// BenchmarkAblationBaseTLBAssociativity compares the paper's fully-
// associative 128-entry base TLB against practical set-associative
// organizations on the workloads' reference streams. The paper keeps
// all Table 2 base TLBs fully associative; this quantifies what 2-, 4-,
// and 8-way organizations would give up.
func BenchmarkAblationBaseTLBAssociativity(b *testing.B) {
	streams := map[string][]uint64{}
	for _, wl := range []string{"compress", "gcc", "xlisp"} {
		w, err := workload.ByName(wl)
		if err != nil {
			b.Fatal(err)
		}
		// Small scale: the test-scale footprints fit any 128-entry
		// organization, hiding the conflict effects being measured.
		p, err := w.Build(prog.Budget32, workload.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		m, err := emu.New(p, 4096)
		if err != nil {
			b.Fatal(err)
		}
		bits := m.AS.PageBits()
		m.OnMemRef = func(vaddr uint64, _ bool) {
			streams[wl] = append(streams[wl], vaddr>>bits)
		}
		if err := m.Run(0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ways := range []int{2, 4, 8, 128} {
			var miss, refs uint64
			for _, stream := range streams {
				bank := tlb.NewSetAssocBank(128, ways, tlb.Random, 1)
				now := int64(0)
				for _, vpn := range stream {
					now++
					refs++
					if _, ok := bank.Lookup(vpn, now); !ok {
						miss++
						bank.Insert(vpn, nil, now)
					}
				}
			}
			if i == 0 {
				b.ReportMetric(100*float64(miss)/float64(refs), fmt.Sprintf("missPct:%dway", ways))
			}
		}
	}
}

// BenchmarkExtensionWalkLatency sweeps the page-table walk latency the
// paper fixes at 30 cycles, showing how sensitive each design class is
// to miss cost (shielding designs barely notice; everything rides on
// the workload's Figure 6 miss rate).
func BenchmarkExtensionWalkLatency(b *testing.B) {
	w, err := workload.ByName("compress") // the highest base-miss workload
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, lat := range []int64{10, 30, 100} {
			cfg := cpu.DefaultConfig()
			cfg.TLBMissLatency = lat
			m, err := cpu.NewWithDesign(p, cfg, "M8")
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(m.Stats().IPC(), fmt.Sprintf("IPC:walk%d", lat))
			}
		}
	}
}
