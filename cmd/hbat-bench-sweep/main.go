// Command hbat-bench-sweep measures what the sweep engine's caches buy:
// it generates the full report grid (table3 + fig5 + fig7 + fig8 +
// fig9) once with both caches disabled and once with them enabled, and
// writes the wall times, their ratio, and the cache counters as JSON
// (BENCH_sweep.json by default). A third, fully-warm pass over the
// enabled engine records the ceiling, where every spec is a memo hit.
//
// It then benchmarks the two-phase fast-forward methodology: the full
// design × workload grid simulated from reset versus the same grid
// fast-forwarding 90% of each workload functionally (one warmed
// checkpoint per workload, shared across all designs). The wall times
// and their ratio are written as JSON (BENCH_ffwd.json by default;
// -ffwd=false skips the pass).
//
// Usage:
//
//	hbat-bench-sweep                 # test scale, writes BENCH_sweep.json + BENCH_ffwd.json
//	hbat-bench-sweep -scale small -o bench.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"hbat"
	"hbat/internal/emu"
	"hbat/internal/harness"
	"hbat/internal/obs"
	"hbat/internal/prog"
	"hbat/internal/tlb"
	"hbat/internal/workload"
)

// artifacts is the grid the benchmark times: the five artifacts whose
// specs overlap (table3's runs are fig5's T4 column; the figures share
// every workload build).
var artifacts = []string{"table3", "fig5", "fig7", "fig8", "fig9"}

type result struct {
	Scale     string   `json:"scale"`
	Artifacts []string `json:"artifacts"`
	// CachesOffSeconds rebuilds every program and re-simulates every
	// spec; CachesOnSeconds shares builds and memoized runs across the
	// artifacts; WarmPassSeconds repeats the cached pass (every spec a
	// memo hit).
	CachesOffSeconds float64 `json:"caches_off_seconds"`
	CachesOnSeconds  float64 `json:"caches_on_seconds"`
	WarmPassSeconds  float64 `json:"warm_pass_seconds"`
	// Speedup is caches-off over caches-on wall time.
	Speedup float64 `json:"speedup_off_over_on"`

	BuildHits   uint64 `json:"build_hits"`
	BuildMisses uint64 `json:"build_misses"`
	SpecHits    uint64 `json:"spec_hits"`
	SpecMisses  uint64 `json:"spec_misses"`
}

// ffwdResult is the two-phase benchmark's output (BENCH_ffwd.json).
type ffwdResult struct {
	Scale     string   `json:"scale"`
	Workloads []string `json:"workloads"`
	Designs   []string `json:"designs"`
	// Fraction of each workload's functional instruction count that is
	// fast-forwarded; FastForward holds the resulting per-workload N.
	Fraction    float64           `json:"fraction"`
	FastForward map[string]uint64 `json:"fast_forward"`
	// FullSeconds runs the grid from reset; FFwdSeconds fast-forwards
	// through the warm-up functionally. Both passes use a fresh engine
	// with pre-built programs, so they time simulation alone.
	FullSeconds float64 `json:"full_seconds"`
	FFwdSeconds float64 `json:"ffwd_seconds"`
	// Speedup is full over fast-forwarded wall time.
	Speedup float64 `json:"speedup_full_over_ffwd"`

	CkptHits   uint64 `json:"ckpt_hits"`
	CkptMisses uint64 `json:"ckpt_misses"`
}

// benchFFwd times the full design × workload grid from reset and with
// 90% fast-forward, on fresh engines with prewarmed builds.
func benchFFwd(ctx context.Context, scaleName string) (*ffwdResult, error) {
	var scale workload.Scale
	switch scaleName {
	case "test":
		scale = workload.ScaleTest
	case "small":
		scale = workload.ScaleSmall
	case "full":
		scale = workload.ScaleFull
	default:
		return nil, fmt.Errorf("unknown scale %q", scaleName)
	}
	res := &ffwdResult{
		Scale:       scaleName,
		Workloads:   workload.Names(),
		Designs:     tlb.DesignOrder,
		Fraction:    0.9,
		FastForward: make(map[string]uint64),
	}
	// Per-workload N = 90% of the functional instruction count: the
	// measured window is the last tenth of each program.
	for _, name := range res.Workloads {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		p, err := w.Build(prog.Budget32, scale)
		if err != nil {
			return nil, err
		}
		em, err := emu.New(p, 4096)
		if err != nil {
			return nil, err
		}
		if err := em.Run(0); err != nil {
			return nil, err
		}
		res.FastForward[name] = em.InstCount * 9 / 10
	}
	specs := func(ffwd bool) []harness.RunSpec {
		var out []harness.RunSpec
		for _, d := range res.Designs {
			for _, w := range res.Workloads {
				s := harness.RunSpec{
					Workload: w, Design: d, Budget: prog.Budget32,
					Scale: scale, PageSize: 4096, Seed: 1,
				}
				if ffwd {
					s.FastForward = res.FastForward[w]
				}
				out = append(out, s)
			}
		}
		return out
	}
	pass := func(ffwd bool) (time.Duration, *harness.Engine, error) {
		e := harness.NewEngine()
		ss := specs(ffwd)
		if err := e.PrewarmBuilds(ctx, ss); err != nil {
			return 0, nil, err
		}
		start := time.Now()
		results, err := e.RunAll(ctx, ss, 0, nil)
		if err != nil {
			return 0, nil, err
		}
		for i := range results {
			if results[i].Err != nil {
				return 0, nil, results[i].Err
			}
		}
		return time.Since(start), e, nil
	}
	full, _, err := pass(false)
	if err != nil {
		return nil, err
	}
	res.FullSeconds = full.Seconds()
	ffwd, fe, err := pass(true)
	if err != nil {
		return nil, err
	}
	res.FFwdSeconds = ffwd.Seconds()
	if ffwd > 0 {
		res.Speedup = full.Seconds() / ffwd.Seconds()
	}
	cs := fe.CacheStats()
	res.CkptHits, res.CkptMisses = cs.CkptHits, cs.CkptMisses
	return res, nil
}

// pass generates every artifact once and returns the elapsed wall time.
func pass(ctx context.Context, scale string, noCache bool) (time.Duration, error) {
	opts := hbat.ExperimentOptions{Scale: scale, NoCache: noCache}
	start := time.Now()
	for _, name := range artifacts {
		if err := hbat.RunExperimentContext(ctx, name, opts, io.Discard); err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
	}
	return time.Since(start), nil
}

func main() {
	var (
		scale    = flag.String("scale", "test", "workload scale: test, small, or full")
		out      = flag.String("o", "BENCH_sweep.json", "output JSON path")
		ffwd     = flag.Bool("ffwd", true, "also benchmark two-phase fast-forward vs full runs")
		ffwdOut  = flag.String("ffwd-o", "BENCH_ffwd.json", "output JSON path for the fast-forward benchmark")
		manifest = flag.String("manifest", "", "write a run-provenance manifest (runs + result SHA-256) to this file")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	logger, srv, err := obsFlags.Setup(ctx, os.Stderr, hbat.SweepEngine())
	if err != nil {
		fail(err)
	}
	if srv != nil {
		defer srv.Close()
	}

	res := result{Scale: *scale, Artifacts: artifacts}

	// Caches off first: it never touches the process-wide engine, so
	// the caches-on pass that follows still starts cold.
	logger.Info("bench pass", "pass", "1/3", "caches", "off")
	off, err := pass(ctx, *scale, true)
	if err != nil {
		fail(err)
	}
	res.CachesOffSeconds = off.Seconds()

	logger.Info("bench pass", "pass", "2/3", "caches", "on-cold")
	on, err := pass(ctx, *scale, false)
	if err != nil {
		fail(err)
	}
	res.CachesOnSeconds = on.Seconds()

	logger.Info("bench pass", "pass", "3/3", "caches", "on-warm")
	warm, err := pass(ctx, *scale, false)
	if err != nil {
		fail(err)
	}
	res.WarmPassSeconds = warm.Seconds()

	if on > 0 {
		res.Speedup = off.Seconds() / on.Seconds()
	}
	s := hbat.SweepStats()
	res.BuildHits, res.BuildMisses = s.BuildHits, s.BuildMisses
	res.SpecHits, res.SpecMisses = s.SpecHits, s.SpecMisses

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	logger.Info("bench result", "caches_off_s", res.CachesOffSeconds,
		"caches_on_s", res.CachesOnSeconds, "speedup", res.Speedup,
		"warm_s", res.WarmPassSeconds, "path", *out)
	os.Stdout.Write(data)

	var ffwdData []byte
	if *ffwd {
		logger.Info("bench pass", "pass", "ffwd", "grid", "full design x workload, from reset vs 90% fast-forward")
		fres, err := benchFFwd(ctx, *scale)
		if err != nil {
			fail(err)
		}
		ffwdData, err = json.MarshalIndent(fres, "", "  ")
		if err != nil {
			fail(err)
		}
		ffwdData = append(ffwdData, '\n')
		if err := os.WriteFile(*ffwdOut, ffwdData, 0o644); err != nil {
			fail(err)
		}
		logger.Info("ffwd bench result", "full_s", fres.FullSeconds,
			"ffwd_s", fres.FFwdSeconds, "speedup", fres.Speedup,
			"ckpt_hits", fres.CkptHits, "ckpt_misses", fres.CkptMisses,
			"path", *ffwdOut)
		os.Stdout.Write(ffwdData)
	}

	if *manifest != "" {
		m := hbat.NewManifest("hbat-bench-sweep")
		m.RecordRuns(hbat.SweepEngine())
		m.AddArtifactBytes("bench.json", *out, data)
		if ffwdData != nil {
			m.AddArtifactBytes("bench_ffwd.json", *ffwdOut, ffwdData)
		}
		if err := m.WriteFile(*manifest); err != nil {
			fail(err)
		}
		logger.Info("manifest written", "path", *manifest,
			"runs", len(m.Runs), "artifacts", len(m.Artifacts))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hbat-bench-sweep:", err)
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
