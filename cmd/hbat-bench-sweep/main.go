// Command hbat-bench-sweep measures what the sweep engine's caches buy:
// it generates the full report grid (table3 + fig5 + fig7 + fig8 +
// fig9) once with both caches disabled and once with them enabled, and
// writes the wall times, their ratio, and the cache counters as JSON
// (BENCH_sweep.json by default). A third, fully-warm pass over the
// enabled engine records the ceiling, where every spec is a memo hit.
//
// It then benchmarks the two-phase fast-forward methodology: the full
// design × workload grid simulated from reset versus the same grid
// fast-forwarding 90% of each workload functionally (one warmed
// checkpoint per workload, shared across all designs). The wall times
// and their ratio are written as JSON (BENCH_ffwd.json by default;
// -ffwd=false skips the pass).
//
// Finally it benchmarks the functional warm-up engines against each
// other: every workload's checkpoint is built by the reference
// interpreter and by the superblock-translated engine, and the per-pass
// wall times, instruction rates, and translated/interpreted speedup are
// written as JSON (BENCH_emu.json by default; -emu=false skips the
// pass).
//
// Every invocation also appends one commit-stamped line (timestamp,
// git SHA, all three results) to an append-only history file
// (BENCH_history.jsonl by default; -history "" disables), so
// performance can be tracked across commits; CI uploads it as an
// artifact.
//
// Usage:
//
//	hbat-bench-sweep                 # test scale, writes BENCH_sweep.json + BENCH_ffwd.json
//	hbat-bench-sweep -scale small -o bench.json
//	hbat-bench-sweep -spans          # span timeline of the benched sweeps
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/debug"
	"time"

	"hbat"
	"hbat/internal/bpred"
	"hbat/internal/cache"
	"hbat/internal/ckpt"
	"hbat/internal/emu"
	"hbat/internal/emu/sblock"
	"hbat/internal/harness"
	"hbat/internal/obs"
	"hbat/internal/prog"
	"hbat/internal/tlb"
	"hbat/internal/workload"
)

// artifacts is the grid the benchmark times: the five artifacts whose
// specs overlap (table3's runs are fig5's T4 column; the figures share
// every workload build).
var artifacts = []string{"table3", "fig5", "fig7", "fig8", "fig9"}

type result struct {
	Scale     string   `json:"scale"`
	Artifacts []string `json:"artifacts"`
	// CachesOffSeconds rebuilds every program and re-simulates every
	// spec; CachesOnSeconds shares builds and memoized runs across the
	// artifacts; WarmPassSeconds repeats the cached pass (every spec a
	// memo hit).
	CachesOffSeconds float64 `json:"caches_off_seconds"`
	CachesOnSeconds  float64 `json:"caches_on_seconds"`
	WarmPassSeconds  float64 `json:"warm_pass_seconds"`
	// Speedup is caches-off over caches-on wall time.
	Speedup float64 `json:"speedup_off_over_on"`

	BuildHits   uint64 `json:"build_hits"`
	BuildMisses uint64 `json:"build_misses"`
	SpecHits    uint64 `json:"spec_hits"`
	SpecMisses  uint64 `json:"spec_misses"`
}

// ffwdResult is the two-phase benchmark's output (BENCH_ffwd.json).
type ffwdResult struct {
	Scale     string   `json:"scale"`
	Workloads []string `json:"workloads"`
	Designs   []string `json:"designs"`
	// Fraction of each workload's functional instruction count that is
	// fast-forwarded; FastForward holds the resulting per-workload N.
	Fraction    float64           `json:"fraction"`
	FastForward map[string]uint64 `json:"fast_forward"`
	// FullSeconds runs the grid from reset; FFwdSeconds fast-forwards
	// through the warm-up functionally. Both passes use a fresh engine
	// with pre-built programs, so they time simulation alone.
	FullSeconds float64 `json:"full_seconds"`
	FFwdSeconds float64 `json:"ffwd_seconds"`
	// Speedup is full over fast-forwarded wall time.
	Speedup float64 `json:"speedup_full_over_ffwd"`

	CkptHits   uint64 `json:"ckpt_hits"`
	CkptMisses uint64 `json:"ckpt_misses"`
}

// historyRecord is one line of BENCH_history.jsonl: a timestamped,
// commit-stamped snapshot of every benchmark the invocation ran, so
// CI can accumulate a performance series across commits.
type historyRecord struct {
	TS    string      `json:"ts"`
	SHA   string      `json:"sha,omitempty"`
	Scale string      `json:"scale"`
	Sweep *result     `json:"sweep,omitempty"`
	FFwd  *ffwdResult `json:"ffwd,omitempty"`
	Emu   *emuResult  `json:"emu,omitempty"`
}

// gitSHA identifies the benchmarked commit: GITHUB_SHA in CI, the
// build's stamped vcs.revision otherwise, "" when neither exists
// (e.g. `go run` from a dirty tree).
func gitSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return ""
}

// appendHistory appends rec as one JSON line. Append-only so repeated
// CI runs accumulate a series; a torn final line (crash mid-write)
// leaves every earlier record readable.
func appendHistory(path string, rec historyRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseScale maps a -scale flag value to a workload.Scale.
func parseScale(scaleName string) (workload.Scale, error) {
	switch scaleName {
	case "test":
		return workload.ScaleTest, nil
	case "small":
		return workload.ScaleSmall, nil
	case "full":
		return workload.ScaleFull, nil
	}
	return 0, fmt.Errorf("unknown scale %q", scaleName)
}

// benchFFwd times the full design × workload grid from reset and with
// 90% fast-forward, on fresh engines with prewarmed builds.
func benchFFwd(ctx context.Context, scaleName string) (*ffwdResult, error) {
	scale, err := parseScale(scaleName)
	if err != nil {
		return nil, err
	}
	res := &ffwdResult{
		Scale:       scaleName,
		Workloads:   workload.Names(),
		Designs:     tlb.DesignOrder,
		Fraction:    0.9,
		FastForward: make(map[string]uint64),
	}
	// Per-workload N = 90% of the functional instruction count: the
	// measured window is the last tenth of each program.
	for _, name := range res.Workloads {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		p, err := w.Build(prog.Budget32, scale)
		if err != nil {
			return nil, err
		}
		em, err := emu.New(p, 4096)
		if err != nil {
			return nil, err
		}
		if err := em.Run(0); err != nil {
			return nil, err
		}
		res.FastForward[name] = em.InstCount * 9 / 10
	}
	specs := func(ffwd bool) []harness.RunSpec {
		var out []harness.RunSpec
		for _, d := range res.Designs {
			for _, w := range res.Workloads {
				s := harness.RunSpec{
					Workload: w, Design: d, Budget: prog.Budget32,
					Scale: scale, PageSize: 4096, Seed: 1,
				}
				if ffwd {
					s.FastForward = res.FastForward[w]
				}
				out = append(out, s)
			}
		}
		return out
	}
	pass := func(ffwd bool) (time.Duration, *harness.Engine, error) {
		e := harness.NewEngine()
		ss := specs(ffwd)
		if err := e.PrewarmBuilds(ctx, ss); err != nil {
			return 0, nil, err
		}
		start := time.Now()
		results, err := e.RunAll(ctx, ss, 0, nil)
		if err != nil {
			return 0, nil, err
		}
		for i := range results {
			if results[i].Err != nil {
				return 0, nil, results[i].Err
			}
		}
		return time.Since(start), e, nil
	}
	full, _, err := pass(false)
	if err != nil {
		return nil, err
	}
	res.FullSeconds = full.Seconds()
	ffwd, fe, err := pass(true)
	if err != nil {
		return nil, err
	}
	res.FFwdSeconds = ffwd.Seconds()
	if ffwd > 0 {
		res.Speedup = full.Seconds() / ffwd.Seconds()
	}
	cs := fe.CacheStats()
	res.CkptHits, res.CkptMisses = cs.CkptHits, cs.CkptMisses
	return res, nil
}

// emuWorkload is one workload's engine comparison: the same
// FastForward-instruction checkpoint built by both functional engines.
type emuWorkload struct {
	Workload     string `json:"workload"`
	Instructions uint64 `json:"instructions"`
	// Reps is how many timed builds each engine's measurement averages
	// over (adaptive: doubled until the measurement is long enough to
	// trust); the seconds below are per single build.
	InterpReps    int     `json:"interp_reps"`
	SblockReps    int     `json:"sblock_reps"`
	InterpSeconds float64 `json:"interp_seconds"`
	SblockSeconds float64 `json:"sblock_seconds"`
	Speedup       float64 `json:"speedup"`
	// Raw* time the engines alone — execute the same window with no
	// checkpoint consumer attached — so they compare pure
	// instructions/sec, without Build's engine-independent costs
	// (cache warming, page snapshot, checkpoint encode).
	RawInterpSeconds float64 `json:"raw_interp_seconds"`
	RawSblockSeconds float64 `json:"raw_sblock_seconds"`
	RawSpeedup       float64 `json:"raw_speedup"`
}

// emuResult is the functional-engine benchmark's output
// (BENCH_emu.json).
type emuResult struct {
	Scale     string        `json:"scale"`
	Workloads []emuWorkload `json:"workloads"`
	// Totals are one build of every workload's checkpoint; Speedup is
	// interpreted over translated total wall time — how much faster the
	// superblock engine fast-forwards the whole suite.
	TotalInstructions uint64  `json:"total_instructions"`
	InterpSeconds     float64 `json:"interp_seconds"`
	SblockSeconds     float64 `json:"sblock_seconds"`
	InterpInstsPerSec float64 `json:"interp_insts_per_sec"`
	SblockInstsPerSec float64 `json:"sblock_insts_per_sec"`
	Speedup           float64 `json:"speedup_sblock_over_interp"`
	// Raw totals compare the bare engines (no checkpoint consumer):
	// translated vs interpreted instructions/sec over the whole suite.
	RawInterpSeconds     float64 `json:"raw_interp_seconds"`
	RawSblockSeconds     float64 `json:"raw_sblock_seconds"`
	RawInterpInstsPerSec float64 `json:"raw_interp_insts_per_sec"`
	RawSblockInstsPerSec float64 `json:"raw_sblock_insts_per_sec"`
	RawSpeedup           float64 `json:"raw_speedup_sblock_over_interp"`
}

// benchEmu times both functional engines for every workload over the
// same 90% fast-forward window benchFFwd uses, two ways: ckpt.Build
// end to end (what the two-phase methodology actually pays, including
// the engine-independent warming consumer and checkpoint encode) and
// the bare engines (pure translated vs interpreted instructions/sec).
// Both engines produce byte-identical checkpoints — the differential
// battery in internal/ckpt enforces that — so the comparison is pure
// throughput.
func benchEmu(ctx context.Context, scaleName string) (*emuResult, error) {
	scale, err := parseScale(scaleName)
	if err != nil {
		return nil, err
	}
	res := &emuResult{Scale: scaleName}
	for _, name := range workload.Names() {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		p, err := w.Build(prog.Budget32, scale)
		if err != nil {
			return nil, err
		}
		em, err := emu.New(p, 4096)
		if err != nil {
			return nil, err
		}
		if err := em.Run(0); err != nil {
			return nil, err
		}
		n := em.InstCount * 9 / 10
		if n == 0 {
			continue
		}
		build := func(engine string) error {
			_, err := ckpt.Build(ctx, p, ckpt.BuildConfig{
				PageSize:    4096,
				FastForward: n,
				ICache:      cache.DefaultICache(),
				DCache:      cache.DefaultDCache(),
				Branch:      bpred.DefaultConfig(),
				Engine:      engine,
			})
			return err
		}
		// raw executes the same window on a bare engine: no cache
		// warming, no snapshot, no encode — pure instruction delivery.
		raw := func(translated bool) error {
			m, err := emu.New(p, 4096)
			if err != nil {
				return err
			}
			if translated {
				err = sblock.New(m).Run(n)
			} else {
				err = m.Run(n)
			}
			// Exhausting the window's budget is the expected terminal;
			// anything that stopped the engine short is real.
			if err != nil && m.InstCount < n {
				return err
			}
			return nil
		}
		// Per-variant timing: one untimed warm-up pass, then double the
		// rep count until the timed window is long enough to trust.
		timeIt := func(run func() error) (reps int, perRun float64, err error) {
			if err := run(); err != nil {
				return 0, 0, err
			}
			for reps = 1; ; reps *= 2 {
				start := time.Now()
				for i := 0; i < reps; i++ {
					if err := run(); err != nil {
						return 0, 0, err
					}
				}
				elapsed := time.Since(start)
				if elapsed >= 100*time.Millisecond || reps >= 256 {
					return reps, elapsed.Seconds() / float64(reps), nil
				}
			}
		}
		ir, is, err := timeIt(func() error { return build(ckpt.EngineInterpreted) })
		if err != nil {
			return nil, fmt.Errorf("%s/interp: %w", name, err)
		}
		sr, ss, err := timeIt(func() error { return build(ckpt.EngineTranslated) })
		if err != nil {
			return nil, fmt.Errorf("%s/sblock: %w", name, err)
		}
		_, ris, err := timeIt(func() error { return raw(false) })
		if err != nil {
			return nil, fmt.Errorf("%s/raw-interp: %w", name, err)
		}
		_, rss, err := timeIt(func() error { return raw(true) })
		if err != nil {
			return nil, fmt.Errorf("%s/raw-sblock: %w", name, err)
		}
		wl := emuWorkload{
			Workload: name, Instructions: n,
			InterpReps: ir, SblockReps: sr,
			InterpSeconds: is, SblockSeconds: ss,
			RawInterpSeconds: ris, RawSblockSeconds: rss,
		}
		if ss > 0 {
			wl.Speedup = is / ss
		}
		if rss > 0 {
			wl.RawSpeedup = ris / rss
		}
		res.Workloads = append(res.Workloads, wl)
		res.TotalInstructions += n
		res.InterpSeconds += is
		res.SblockSeconds += ss
		res.RawInterpSeconds += ris
		res.RawSblockSeconds += rss
	}
	if res.InterpSeconds > 0 {
		res.InterpInstsPerSec = float64(res.TotalInstructions) / res.InterpSeconds
	}
	if res.SblockSeconds > 0 {
		res.SblockInstsPerSec = float64(res.TotalInstructions) / res.SblockSeconds
		res.Speedup = res.InterpSeconds / res.SblockSeconds
	}
	if res.RawInterpSeconds > 0 {
		res.RawInterpInstsPerSec = float64(res.TotalInstructions) / res.RawInterpSeconds
	}
	if res.RawSblockSeconds > 0 {
		res.RawSblockInstsPerSec = float64(res.TotalInstructions) / res.RawSblockSeconds
		res.RawSpeedup = res.RawInterpSeconds / res.RawSblockSeconds
	}
	return res, nil
}

// pass generates every artifact once and returns the elapsed wall time.
func pass(ctx context.Context, scale string, noCache bool) (time.Duration, error) {
	opts := hbat.ExperimentOptions{CommonOptions: hbat.CommonOptions{Scale: scale}, NoCache: noCache}
	start := time.Now()
	for _, name := range artifacts {
		if err := hbat.RunExperiment(ctx, name, opts, io.Discard); err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
	}
	return time.Since(start), nil
}

func main() {
	var (
		scale    = flag.String("scale", "test", "workload scale: test, small, or full")
		out      = flag.String("o", "BENCH_sweep.json", "output JSON path")
		ffwd     = flag.Bool("ffwd", true, "also benchmark two-phase fast-forward vs full runs")
		ffwdOut  = flag.String("ffwd-o", "BENCH_ffwd.json", "output JSON path for the fast-forward benchmark")
		emuBench = flag.Bool("emu", true, "also benchmark the translated vs interpreted functional engines")
		emuOut   = flag.String("emu-o", "BENCH_emu.json", "output JSON path for the functional-engine benchmark")
		manifest = flag.String("manifest", "", "write a run-provenance manifest (runs + result SHA-256) to this file")
		history  = flag.String("history", "BENCH_history.jsonl", "append a timestamped, commit-stamped JSON line with every benchmark result to this file (\"\" = off)")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	logger, srv, err := obsFlags.Setup(ctx, os.Stderr, hbat.SweepEngine())
	if err != nil {
		fail(err)
	}
	if srv != nil {
		defer srv.Close()
	}

	res := result{Scale: *scale, Artifacts: artifacts}

	// Caches off first: it never touches the process-wide engine, so
	// the caches-on pass that follows still starts cold.
	logger.Info("bench pass", "pass", "1/3", "caches", "off")
	off, err := pass(ctx, *scale, true)
	if err != nil {
		fail(err)
	}
	res.CachesOffSeconds = off.Seconds()

	logger.Info("bench pass", "pass", "2/3", "caches", "on-cold")
	on, err := pass(ctx, *scale, false)
	if err != nil {
		fail(err)
	}
	res.CachesOnSeconds = on.Seconds()

	logger.Info("bench pass", "pass", "3/3", "caches", "on-warm")
	warm, err := pass(ctx, *scale, false)
	if err != nil {
		fail(err)
	}
	res.WarmPassSeconds = warm.Seconds()

	if on > 0 {
		res.Speedup = off.Seconds() / on.Seconds()
	}
	s := hbat.SweepStats()
	res.BuildHits, res.BuildMisses = s.BuildHits, s.BuildMisses
	res.SpecHits, res.SpecMisses = s.SpecHits, s.SpecMisses

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	logger.Info("bench result", "caches_off_s", res.CachesOffSeconds,
		"caches_on_s", res.CachesOnSeconds, "speedup", res.Speedup,
		"warm_s", res.WarmPassSeconds, "path", *out)
	os.Stdout.Write(data)

	var ffwdData []byte
	var fres *ffwdResult
	if *ffwd {
		logger.Info("bench pass", "pass", "ffwd", "grid", "full design x workload, from reset vs 90% fast-forward")
		fres, err = benchFFwd(ctx, *scale)
		if err != nil {
			fail(err)
		}
		ffwdData, err = json.MarshalIndent(fres, "", "  ")
		if err != nil {
			fail(err)
		}
		ffwdData = append(ffwdData, '\n')
		if err := os.WriteFile(*ffwdOut, ffwdData, 0o644); err != nil {
			fail(err)
		}
		logger.Info("ffwd bench result", "full_s", fres.FullSeconds,
			"ffwd_s", fres.FFwdSeconds, "speedup", fres.Speedup,
			"ckpt_hits", fres.CkptHits, "ckpt_misses", fres.CkptMisses,
			"path", *ffwdOut)
		os.Stdout.Write(ffwdData)
	}

	var emuData []byte
	var eres *emuResult
	if *emuBench {
		logger.Info("bench pass", "pass", "emu", "grid", "per-workload ckpt.Build, interpreter vs superblock translation")
		eres, err = benchEmu(ctx, *scale)
		if err != nil {
			fail(err)
		}
		emuData, err = json.MarshalIndent(eres, "", "  ")
		if err != nil {
			fail(err)
		}
		emuData = append(emuData, '\n')
		if err := os.WriteFile(*emuOut, emuData, 0o644); err != nil {
			fail(err)
		}
		logger.Info("emu bench result", "interp_s", eres.InterpSeconds,
			"sblock_s", eres.SblockSeconds, "speedup", eres.Speedup,
			"raw_speedup", eres.RawSpeedup,
			"insts", eres.TotalInstructions, "path", *emuOut)
		os.Stdout.Write(emuData)
	}

	if *history != "" {
		rec := historyRecord{
			TS:    time.Now().UTC().Format(time.RFC3339),
			SHA:   gitSHA(),
			Scale: *scale,
			Sweep: &res,
			FFwd:  fres,
			Emu:   eres,
		}
		if err := appendHistory(*history, rec); err != nil {
			fail(err)
		}
		logger.Info("history appended", "path", *history, "sha", rec.SHA, "ts", rec.TS)
	}

	spansPath, err := obsFlags.FinishSpans()
	if err != nil {
		fail(err)
	}
	if spansPath != "" {
		logger.Info("spans written", "journal", obsFlags.SpansOut+".jsonl", "timeline", spansPath)
	}

	if *manifest != "" {
		m := hbat.NewManifest("hbat-bench-sweep")
		m.RecordRuns(hbat.SweepEngine())
		m.AddArtifactBytes("bench.json", *out, data)
		if ffwdData != nil {
			m.AddArtifactBytes("bench_ffwd.json", *ffwdOut, ffwdData)
		}
		if emuData != nil {
			m.AddArtifactBytes("bench_emu.json", *emuOut, emuData)
		}
		if spansPath != "" {
			if err := m.AddArtifactFile("spans.perfetto.json", spansPath); err != nil {
				fail(err)
			}
		}
		if err := m.WriteFile(*manifest); err != nil {
			fail(err)
		}
		logger.Info("manifest written", "path", *manifest,
			"runs", len(m.Runs), "artifacts", len(m.Artifacts))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hbat-bench-sweep:", err)
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
