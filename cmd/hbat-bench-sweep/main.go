// Command hbat-bench-sweep measures what the sweep engine's caches buy:
// it generates the full report grid (table3 + fig5 + fig7 + fig8 +
// fig9) once with both caches disabled and once with them enabled, and
// writes the wall times, their ratio, and the cache counters as JSON
// (BENCH_sweep.json by default). A third, fully-warm pass over the
// enabled engine records the ceiling, where every spec is a memo hit.
//
// Usage:
//
//	hbat-bench-sweep                 # test scale, writes BENCH_sweep.json
//	hbat-bench-sweep -scale small -o bench.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"hbat"
	"hbat/internal/obs"
)

// artifacts is the grid the benchmark times: the five artifacts whose
// specs overlap (table3's runs are fig5's T4 column; the figures share
// every workload build).
var artifacts = []string{"table3", "fig5", "fig7", "fig8", "fig9"}

type result struct {
	Scale     string   `json:"scale"`
	Artifacts []string `json:"artifacts"`
	// CachesOffSeconds rebuilds every program and re-simulates every
	// spec; CachesOnSeconds shares builds and memoized runs across the
	// artifacts; WarmPassSeconds repeats the cached pass (every spec a
	// memo hit).
	CachesOffSeconds float64 `json:"caches_off_seconds"`
	CachesOnSeconds  float64 `json:"caches_on_seconds"`
	WarmPassSeconds  float64 `json:"warm_pass_seconds"`
	// Speedup is caches-off over caches-on wall time.
	Speedup float64 `json:"speedup_off_over_on"`

	BuildHits   uint64 `json:"build_hits"`
	BuildMisses uint64 `json:"build_misses"`
	SpecHits    uint64 `json:"spec_hits"`
	SpecMisses  uint64 `json:"spec_misses"`
}

// pass generates every artifact once and returns the elapsed wall time.
func pass(ctx context.Context, scale string, noCache bool) (time.Duration, error) {
	opts := hbat.ExperimentOptions{Scale: scale, NoCache: noCache}
	start := time.Now()
	for _, name := range artifacts {
		if err := hbat.RunExperimentContext(ctx, name, opts, io.Discard); err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
	}
	return time.Since(start), nil
}

func main() {
	var (
		scale    = flag.String("scale", "test", "workload scale: test, small, or full")
		out      = flag.String("o", "BENCH_sweep.json", "output JSON path")
		manifest = flag.String("manifest", "", "write a run-provenance manifest (runs + result SHA-256) to this file")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	logger, srv, err := obsFlags.Setup(ctx, os.Stderr, hbat.SweepEngine())
	if err != nil {
		fail(err)
	}
	if srv != nil {
		defer srv.Close()
	}

	res := result{Scale: *scale, Artifacts: artifacts}

	// Caches off first: it never touches the process-wide engine, so
	// the caches-on pass that follows still starts cold.
	logger.Info("bench pass", "pass", "1/3", "caches", "off")
	off, err := pass(ctx, *scale, true)
	if err != nil {
		fail(err)
	}
	res.CachesOffSeconds = off.Seconds()

	logger.Info("bench pass", "pass", "2/3", "caches", "on-cold")
	on, err := pass(ctx, *scale, false)
	if err != nil {
		fail(err)
	}
	res.CachesOnSeconds = on.Seconds()

	logger.Info("bench pass", "pass", "3/3", "caches", "on-warm")
	warm, err := pass(ctx, *scale, false)
	if err != nil {
		fail(err)
	}
	res.WarmPassSeconds = warm.Seconds()

	if on > 0 {
		res.Speedup = off.Seconds() / on.Seconds()
	}
	s := hbat.SweepStats()
	res.BuildHits, res.BuildMisses = s.BuildHits, s.BuildMisses
	res.SpecHits, res.SpecMisses = s.SpecHits, s.SpecMisses

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	logger.Info("bench result", "caches_off_s", res.CachesOffSeconds,
		"caches_on_s", res.CachesOnSeconds, "speedup", res.Speedup,
		"warm_s", res.WarmPassSeconds, "path", *out)
	os.Stdout.Write(data)

	if *manifest != "" {
		m := hbat.NewManifest("hbat-bench-sweep")
		m.RecordRuns(hbat.SweepEngine())
		m.AddArtifactBytes("bench.json", *out, data)
		if err := m.WriteFile(*manifest); err != nil {
			fail(err)
		}
		logger.Info("manifest written", "path", *manifest,
			"runs", len(m.Runs), "artifacts", len(m.Artifacts))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hbat-bench-sweep:", err)
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
