// Command hbat-experiments regenerates the tables and figures of the
// paper's evaluation section (Table 2, Table 3, Figures 5-9).
//
// Usage:
//
//	hbat-experiments                 # everything, small scale
//	hbat-experiments -only fig5      # one artifact
//	hbat-experiments -scale full     # headline scale (minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hbat"
)

func main() {
	var (
		only   = flag.String("only", "", "run one artifact: table2, table3, fig5, fig6, fig7, fig8, fig9")
		scale  = flag.String("scale", "small", "workload scale: test, small, or full")
		par    = flag.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		seed   = flag.Uint64("seed", 1, "seed for randomized structures")
		quiet  = flag.Bool("q", false, "suppress progress output")
		csvDir = flag.String("csv", "", "also write fig5/7/8/9 results as CSV files into this directory")
	)
	flag.Parse()

	names := hbat.ExperimentNames
	if *only != "" {
		names = []string{*only}
	}
	for _, name := range names {
		opts := hbat.ExperimentOptions{Scale: *scale, Parallelism: *par, Seed: *seed}
		if !*quiet {
			start := time.Now()
			fmt.Fprintf(os.Stderr, "== %s (scale %s) ==\n", name, *scale)
			opts.Progress = func(done, total int) {
				if done == total || done%10 == 0 {
					fmt.Fprintf(os.Stderr, "\r  %d/%d runs (%.0fs)", done, total, time.Since(start).Seconds())
					if done == total {
						fmt.Fprintln(os.Stderr)
					}
				}
			}
		}
		if err := hbat.RunExperiment(name, opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "hbat-experiments:", err)
			os.Exit(1)
		}
		fmt.Println()
		if *csvDir != "" && strings.HasPrefix(name, "fig") && name != "fig6" {
			path := filepath.Join(*csvDir, name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hbat-experiments:", err)
				os.Exit(1)
			}
			csvOpts := opts
			csvOpts.Progress = nil
			if err := hbat.ExperimentCSV(name, csvOpts, f); err != nil {
				fmt.Fprintln(os.Stderr, "hbat-experiments:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
}
