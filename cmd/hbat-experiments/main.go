// Command hbat-experiments regenerates the tables and figures of the
// paper's evaluation section (Table 2, Table 3, Figures 5-9).
//
// All artifacts of one invocation share the process-wide sweep engine:
// each workload is built once and each unique simulation runs once,
// however many figures reference it. Ctrl-C (SIGINT) cancels the sweep
// promptly and exits non-zero. Unless -manifest is cleared, the run
// writes a provenance manifest recording the tool build, every
// simulated spec with its seed and wall time, and the SHA-256 of each
// rendered artifact.
//
// Usage:
//
//	hbat-experiments                 # everything, small scale
//	hbat-experiments -only fig5      # one artifact
//	hbat-experiments -scale full     # headline scale (minutes)
//	hbat-experiments -obs :8090      # live /metrics, /health, /debug/pprof
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"

	"hbat"
	"hbat/internal/obs"
)

func main() {
	var (
		only     = flag.String("only", "", "run one artifact: table2, table3, fig5, fig6, fig7, fig8, fig9, model")
		scale    = flag.String("scale", "small", "workload scale: test, small, or full")
		par      = flag.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 1, "seed for randomized structures")
		ffwd     = flag.Uint64("ffwd", 0, "fast-forward: functionally execute the first N instructions per run and measure only the remainder (0 = run from reset)")
		ckptDir  = flag.String("ckpt-dir", "", "persist fast-forward checkpoints in this directory (reused across invocations)")
		resume   = flag.String("resume", "", "resume journal path: completed runs are logged here and an interrupted sweep restarts from it")
		quiet    = flag.Bool("q", false, "suppress progress output")
		csvDir   = flag.String("csv", "", "also write fig5/7/8/9 results as CSV files into this directory")
		manifest = flag.String("manifest", "manifest.json", "write a run-provenance manifest (runs + artifact SHA-256s) to this file (\"\" = off)")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	logger, srv, err := obsFlags.Setup(ctx, os.Stderr, hbat.SweepEngine())
	if err != nil {
		fail(err)
	}
	if srv != nil {
		defer srv.Close()
	}

	if *ckptDir != "" {
		if err := hbat.SetCheckpointDir(*ckptDir); err != nil {
			fail(err)
		}
	}
	if *resume != "" {
		n, err := hbat.ResumeJournal(*resume)
		if err != nil {
			fail(err)
		}
		logger.Info("resume journal attached", "path", *resume, "runs_resumed", n)
	}

	csvCapable := make(map[string]bool)
	for _, name := range hbat.CSVExperimentNames() {
		csvCapable[name] = true
	}

	man := hbat.NewManifest("hbat-experiments")

	names := hbat.ExperimentNames
	if *only != "" {
		names = []string{*only}
	}
	for _, name := range names {
		opts := hbat.ExperimentOptions{
			CommonOptions: hbat.CommonOptions{Scale: *scale, Seed: *seed, FastForward: *ffwd},
			Parallelism:   *par,
		}
		if !*quiet {
			logger.Info("experiment start", "name", name, "scale", *scale)
			opts.Progress = func(p hbat.RunProgress) {
				if p.Done == p.Total || p.Done%10 == 0 {
					logger.Info("sweep progress", "experiment", name,
						"done", p.Done, "total", p.Total,
						"elapsed_s", p.Elapsed.Seconds(), "eta_s", p.ETA.Seconds())
				}
			}
		}
		// Tee the rendered report through a buffer so its SHA-256 can be
		// recorded even though it streams to stdout.
		var buf bytes.Buffer
		if err := hbat.RunExperiment(ctx, name, opts, io.MultiWriter(os.Stdout, &buf)); err != nil {
			fail(err)
		}
		man.AddArtifactBytes(name+".txt", "-", buf.Bytes())
		fmt.Println()
		if *csvDir != "" && csvCapable[name] {
			path := filepath.Join(*csvDir, name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			csvOpts := opts
			csvOpts.Progress = nil
			// The grid was just simulated for the text report, so the
			// CSV pass is served entirely from the sweep cache.
			if err := hbat.ExperimentCSV(ctx, name, csvOpts, f); err != nil {
				fail(err)
			}
			f.Close()
			if err := man.AddArtifactFile(name+".csv", path); err != nil {
				fail(err)
			}
			logger.Info("csv written", "path", path)
		}
	}
	spansPath, err := obsFlags.FinishSpans()
	if err != nil {
		fail(err)
	}
	if spansPath != "" {
		logger.Info("spans written", "journal", obsFlags.SpansOut+".jsonl", "timeline", spansPath)
	}
	if *manifest != "" {
		man.RecordRuns(hbat.SweepEngine())
		if spansPath != "" {
			if err := man.AddArtifactFile("spans.perfetto.json", spansPath); err != nil {
				fail(err)
			}
		}
		if err := man.WriteFile(*manifest); err != nil {
			fail(err)
		}
		logger.Info("manifest written", "path", *manifest,
			"runs", len(man.Runs), "artifacts", len(man.Artifacts))
	}
	if !*quiet {
		s := hbat.SweepStats()
		logger.Info("sweep cache summary",
			"build_hits", s.BuildHits, "build_misses", s.BuildMisses,
			"spec_hits", s.SpecHits, "spec_misses", s.SpecMisses,
			"ckpt_hits", s.CkptHits, "ckpt_misses", s.CkptMisses)
	}
}

// fail prints the error and exits non-zero (130 for an interrupt, the
// conventional 128+SIGINT).
func fail(err error) {
	fmt.Fprintln(os.Stderr, "hbat-experiments:", err)
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
