// Command hbat-experiments regenerates the tables and figures of the
// paper's evaluation section (Table 2, Table 3, Figures 5-9).
//
// All artifacts of one invocation share the process-wide sweep engine:
// each workload is built once and each unique simulation runs once,
// however many figures reference it. Ctrl-C (SIGINT) cancels the sweep
// promptly and exits non-zero.
//
// Usage:
//
//	hbat-experiments                 # everything, small scale
//	hbat-experiments -only fig5      # one artifact
//	hbat-experiments -scale full     # headline scale (minutes)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"hbat"
)

func main() {
	var (
		only   = flag.String("only", "", "run one artifact: table2, table3, fig5, fig6, fig7, fig8, fig9, model")
		scale  = flag.String("scale", "small", "workload scale: test, small, or full")
		par    = flag.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		seed   = flag.Uint64("seed", 1, "seed for randomized structures")
		quiet  = flag.Bool("q", false, "suppress progress output")
		csvDir = flag.String("csv", "", "also write fig5/7/8/9 results as CSV files into this directory")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	csvCapable := make(map[string]bool)
	for _, name := range hbat.CSVExperimentNames() {
		csvCapable[name] = true
	}

	names := hbat.ExperimentNames
	if *only != "" {
		names = []string{*only}
	}
	for _, name := range names {
		opts := hbat.ExperimentOptions{Scale: *scale, Parallelism: *par, Seed: *seed}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== %s (scale %s) ==\n", name, *scale)
			opts.Progress = func(p hbat.RunProgress) {
				if p.Done == p.Total || p.Done%10 == 0 {
					fmt.Fprintf(os.Stderr, "\r  %d/%d runs (%.0fs elapsed, ~%.0fs left)",
						p.Done, p.Total, p.Elapsed.Seconds(), p.ETA.Seconds())
					if p.Done == p.Total {
						fmt.Fprintln(os.Stderr)
					}
				}
			}
		}
		if err := hbat.RunExperimentContext(ctx, name, opts, os.Stdout); err != nil {
			fail(err)
		}
		fmt.Println()
		if *csvDir != "" && csvCapable[name] {
			path := filepath.Join(*csvDir, name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			csvOpts := opts
			csvOpts.Progress = nil
			// The grid was just simulated for the text report, so the
			// CSV pass is served entirely from the sweep cache.
			if err := hbat.ExperimentCSVContext(ctx, name, csvOpts, f); err != nil {
				fail(err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	if !*quiet {
		s := hbat.SweepStats()
		fmt.Fprintf(os.Stderr, "sweep caches: %d/%d builds reused, %d/%d runs reused\n",
			s.BuildHits, s.BuildHits+s.BuildMisses, s.SpecHits, s.SpecHits+s.SpecMisses)
	}
}

// fail prints the error and exits non-zero (130 for an interrupt, the
// conventional 128+SIGINT).
func fail(err error) {
	fmt.Fprintln(os.Stderr, "hbat-experiments:", err)
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
