// Command hbat-missrates runs the paper's Figure 6 study standalone:
// data-reference miss rates of fully-associative TLBs from 4 to 128
// entries over every workload's reference stream.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"hbat"
)

func main() {
	var (
		scale = flag.String("scale", "small", "workload scale: test, small, or full")
		seed  = flag.Uint64("seed", 1, "seed for randomized structures")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := hbat.ExperimentOptions{Scale: *scale, Seed: *seed}
	if err := hbat.RunExperimentContext(ctx, "fig6", opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hbat-missrates:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}
