// Command hbat-missrates runs the paper's Figure 6 study standalone:
// data-reference miss rates of fully-associative TLBs from 4 to 128
// entries over every workload's reference stream.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"hbat"
	"hbat/internal/obs"
)

func main() {
	var (
		scale    = flag.String("scale", "small", "workload scale: test, small, or full")
		seed     = flag.Uint64("seed", 1, "seed for randomized structures")
		manifest = flag.String("manifest", "", "write a run-provenance manifest to this file")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	logger, srv, err := obsFlags.Setup(ctx, os.Stderr, hbat.SweepEngine())
	if err != nil {
		fail(err)
	}
	if srv != nil {
		defer srv.Close()
	}

	var buf bytes.Buffer
	out := io.Writer(os.Stdout)
	if *manifest != "" {
		out = io.MultiWriter(os.Stdout, &buf)
	}
	opts := hbat.ExperimentOptions{CommonOptions: hbat.CommonOptions{Scale: *scale, Seed: *seed}}
	if err := hbat.RunExperiment(ctx, "fig6", opts, out); err != nil {
		fail(err)
	}
	spansPath, err := obsFlags.FinishSpans()
	if err != nil {
		fail(err)
	}
	if spansPath != "" {
		logger.Info("spans written", "journal", obsFlags.SpansOut+".jsonl", "timeline", spansPath)
	}
	if *manifest != "" {
		m := hbat.NewManifest("hbat-missrates")
		m.RecordRuns(hbat.SweepEngine())
		m.AddArtifactBytes("fig6.txt", "-", buf.Bytes())
		if spansPath != "" {
			if err := m.AddArtifactFile("spans.perfetto.json", spansPath); err != nil {
				fail(err)
			}
		}
		if err := m.WriteFile(*manifest); err != nil {
			fail(err)
		}
		logger.Info("manifest written", "path", *manifest, "runs", len(m.Runs))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hbat-missrates:", err)
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
