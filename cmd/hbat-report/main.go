// Command hbat-report regenerates the paper's evaluation and writes a
// self-contained HTML report (inline SVG charts, no external assets).
//
// Usage:
//
//	hbat-report -o report.html [-scale small] [-par N] [-seed 1]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"hbat/internal/harness"
	"hbat/internal/report"
	"hbat/internal/workload"
)

func main() {
	var (
		out   = flag.String("o", "report.html", "output HTML file")
		scale = flag.String("scale", "small", "workload scale: test, small, or full")
		par   = flag.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		seed  = flag.Uint64("seed", 1, "seed for randomized structures")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var sc workload.Scale
	switch *scale {
	case "test":
		sc = workload.ScaleTest
	case "small":
		sc = workload.ScaleSmall
	case "full":
		sc = workload.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "hbat-report: unknown scale %q\n", *scale)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbat-report:", err)
		os.Exit(1)
	}
	defer f.Close()

	start := time.Now()
	opts := harness.Options{
		Scale: sc, Parallelism: *par, Seed: *seed,
		Progress: func(p harness.Progress) {
			if p.Done%20 == 0 || p.Done == p.Total {
				fmt.Fprintf(os.Stderr, "\r%d/%d runs (%.0fs elapsed, ~%.0fs left)",
					p.Done, p.Total, time.Since(start).Seconds(), p.ETA.Seconds())
			}
		},
	}
	if err := report.Generate(ctx, f, opts, nil, time.Now()); err != nil {
		fmt.Fprintln(os.Stderr, "\nhbat-report:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "\nwrote %s\n", *out)
}
