// Command hbat-report regenerates the paper's evaluation and writes a
// self-contained HTML report (inline SVG charts, no external assets),
// plus a run-provenance manifest recording the spec list and the
// report's SHA-256.
//
// Usage:
//
//	hbat-report -o report.html [-scale small] [-par N] [-seed 1]
//	            [-manifest manifest.json] [-obs :8090]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"hbat/internal/harness"
	"hbat/internal/obs"
	"hbat/internal/report"
	"hbat/internal/workload"
)

func main() {
	var (
		out      = flag.String("o", "report.html", "output HTML file")
		scale    = flag.String("scale", "small", "workload scale: test, small, or full")
		par      = flag.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 1, "seed for randomized structures")
		manifest = flag.String("manifest", "manifest.json", "write a run-provenance manifest (runs + report SHA-256) to this file (\"\" = off)")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	eng := harness.NewEngine()
	logger, srv, err := obsFlags.Setup(ctx, os.Stderr, eng)
	if err != nil {
		fail(err)
	}
	if srv != nil {
		defer srv.Close()
	}

	var sc workload.Scale
	switch *scale {
	case "test":
		sc = workload.ScaleTest
	case "small":
		sc = workload.ScaleSmall
	case "full":
		sc = workload.ScaleFull
	default:
		fail(fmt.Errorf("unknown scale %q", *scale))
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}

	start := time.Now()
	opts := harness.Options{
		Engine: eng, Scale: sc, Parallelism: *par, Seed: *seed,
		Progress: func(p harness.Progress) {
			if p.Done%20 == 0 || p.Done == p.Total {
				logger.Info("sweep progress", "done", p.Done, "total", p.Total,
					"elapsed_s", time.Since(start).Seconds(), "eta_s", p.ETA.Seconds())
			}
		},
	}
	if err := report.Generate(ctx, f, opts, nil, time.Now()); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	logger.Info("report written", "path", *out)

	spansPath, err := obsFlags.FinishSpans()
	if err != nil {
		fail(err)
	}
	if spansPath != "" {
		logger.Info("spans written", "journal", obsFlags.SpansOut+".jsonl", "timeline", spansPath)
	}
	if *manifest != "" {
		m := harness.NewManifest("hbat-report", time.Now())
		m.RecordRuns(eng)
		if err := m.AddArtifactFile("report.html", *out); err != nil {
			fail(err)
		}
		if spansPath != "" {
			if err := m.AddArtifactFile("spans.perfetto.json", spansPath); err != nil {
				fail(err)
			}
		}
		if err := m.WriteFile(*manifest); err != nil {
			fail(err)
		}
		logger.Info("manifest written", "path", *manifest,
			"runs", len(m.Runs), "artifacts", len(m.Artifacts))
	}
}

// fail prints the error and exits non-zero (130 for an interrupt, the
// conventional 128+SIGINT).
func fail(err error) {
	fmt.Fprintln(os.Stderr, "hbat-report:", err)
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
