// Command hbat-trace captures a workload's data-reference trace to a
// compact binary file, prints a trace's summary, replays a trace
// through the fully-associative TLB models of Figure 6, or fetches a
// remote job's span journal from an hbatd service and renders a
// merged cross-process Perfetto timeline.
//
// Usage:
//
//	hbat-trace capture -workload compress -o compress.hbt [-scale small] [-max N]
//	hbat-trace info    -i compress.hbt
//	hbat-trace replay  -i compress.hbt [-sizes 4,8,16,32,64,128]
//	hbat-trace remote  -addr http://127.0.0.1:9090 -job j0123456789abcdef \
//	                   [-client client-spans.jsonl] [-o merged.perfetto.json]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"hbat/api"
	"hbat/internal/obs"
	"hbat/internal/prog"
	"hbat/internal/runspan"
	"hbat/internal/tlb"
	"hbat/internal/trace"
	"hbat/internal/workload"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hbat-trace: "+format+"\n", args...)
	os.Exit(1)
}

// setupObs wires the shared observability flags after a subcommand's
// FlagSet parsed: structured logs always, and — with -obs — the
// metrics/health/pprof server (no sweep engine here, so /metrics
// carries process self-metrics and /debug/pprof serves the profiler).
func setupObs(ctx context.Context, f *obs.Flags) *slog.Logger {
	logger, srv, err := f.Setup(ctx, os.Stderr, nil)
	if err != nil {
		fatalf("%v", err)
	}
	_ = srv // closed on process exit
	return logger
}

// cmdSpan opens one root span covering a subcommand's work (there is
// no sweep engine here, so the subcommand itself is the traced unit)
// and returns a finish func that ends it and exports the -spans
// outputs.
func cmdSpan(f *obs.Flags, name, subject string) func() {
	tr := f.Tracer()
	sp := tr.Start(tr.NewTrace(), nil, name)
	if sp != nil {
		sp.SetAttr("subject", subject)
	}
	return func() {
		sp.End()
		if _, err := f.FinishSpans(); err != nil {
			fatalf("spans: %v", err)
		}
	}
}

func parseScale(s string) workload.Scale {
	switch s {
	case "test":
		return workload.ScaleTest
	case "", "small":
		return workload.ScaleSmall
	case "full":
		return workload.ScaleFull
	}
	fatalf("unknown scale %q", s)
	return 0
}

func main() {
	if len(os.Args) < 2 {
		fatalf("usage: hbat-trace capture|info|replay [flags]")
	}
	// Ctrl-C cancels the capture or replay loop promptly; fatalf exits
	// non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	switch os.Args[1] {
	case "capture":
		capture(ctx, os.Args[2:])
	case "info":
		info(ctx, os.Args[2:])
	case "replay":
		replay(ctx, os.Args[2:])
	case "remote":
		remote(ctx, os.Args[2:])
	default:
		fatalf("unknown subcommand %q", os.Args[1])
	}
}

// remote fetches a job's server-side span journal from a live hbatd
// (GET /v1/jobs/{id}/spans), optionally reads the submitting client's
// local journal next to it, and renders everything as one merged
// Perfetto timeline: the client's fabric_simulate span with the
// server's job > queue_wait and run > checkpoint > simulate trees
// nested at true wall-clock offsets, linked by the shared trace id.
func remote(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("remote", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:9090", "hbatd base URL")
	jobID := fs.String("job", "", "job id whose spans to fetch (required)")
	clientJournal := fs.String("client", "", "local client span journal (.jsonl) to merge alongside the server's")
	out := fs.String("o", "merged.perfetto.json", "output Perfetto trace-event JSON")
	tenantF := fs.String("tenant", "", "tenant sent with the fetch")
	obsFlags := obs.AddFlags(fs)
	fs.Parse(args)
	logger := setupObs(ctx, obsFlags)
	if *jobID == "" {
		fatalf("remote: -job is required")
	}
	c := api.NewClient(*addr)
	c.Tenant = *tenantF
	raw, err := c.Spans(ctx, *jobID)
	if err != nil {
		fatalf("remote: fetch spans: %v", err)
	}
	srvHdr, srvSpans, err := runspan.ReadJournal(bytes.NewReader(raw))
	if err != nil {
		fatalf("remote: server journal: %v", err)
	}
	var parts []runspan.JournalPart
	if *clientJournal != "" {
		f, err := os.Open(*clientJournal)
		if err != nil {
			fatalf("remote: %v", err)
		}
		hdr, spans, err := runspan.ReadJournal(f)
		f.Close()
		if err != nil {
			fatalf("remote: client journal: %v", err)
		}
		parts = append(parts, runspan.JournalPart{Label: "client", Header: hdr, Spans: spans})
	}
	parts = append(parts, runspan.JournalPart{Label: "hbatd", Header: srvHdr, Spans: srvSpans})
	f, err := os.Create(*out)
	if err != nil {
		fatalf("remote: %v", err)
	}
	st, err := runspan.WriteMergedPerfetto(f, parts)
	if err != nil {
		f.Close()
		fatalf("remote: merge: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("remote: %v", err)
	}
	logger.Debug("merged timeline written", "job", *jobID, "path", *out, "linked_roots", st.Linked)
	for i, p := range parts {
		fmt.Printf("%-6s %d spans\n", p.Label, st.Spans[i])
	}
	fmt.Printf("linked %d root span(s) across processes -> %s\n", st.Linked, *out)
	if len(parts) > 1 && st.Linked == 0 {
		fatalf("remote: journals share no parent/child link — is %s the job the client journal submitted?", *jobID)
	}
}

func capture(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	wl := fs.String("workload", "compress", "workload to trace")
	out := fs.String("o", "", "output trace file (required)")
	scale := fs.String("scale", "small", "workload scale")
	pageSize := fs.Uint64("pagesize", 4096, "page size recorded in the header")
	maxRefs := fs.Uint64("max", 0, "cap on captured references (0 = all)")
	fewRegs := fs.Bool("fewregs", false, "build for 8 int / 8 fp registers")
	obsFlags := obs.AddFlags(fs)
	fs.Parse(args)
	logger := setupObs(ctx, obsFlags)
	finish := cmdSpan(obsFlags, "capture", *wl)
	defer finish()
	if *out == "" {
		fatalf("capture: -o is required")
	}
	w, err := workload.ByName(*wl)
	if err != nil {
		fatalf("%v", err)
	}
	budget := prog.Budget32
	if *fewRegs {
		budget = prog.Budget8
	}
	p, err := w.Build(budget, parseScale(*scale))
	if err != nil {
		fatalf("%v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	n, err := trace.CaptureContext(ctx, p, *pageSize, f, *maxRefs)
	if err != nil {
		fatalf("capture: %v", err)
	}
	logger.Debug("capture finished", "workload", *wl, "refs", n, "path", *out)
	st, _ := f.Stat()
	fmt.Printf("captured %d references of %s to %s", n, *wl, *out)
	if st != nil && n > 0 {
		fmt.Printf(" (%.2f bytes/ref)", float64(st.Size())/float64(n))
	}
	fmt.Println()
}

func openTrace(path string) *trace.Reader {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	r, err := trace.NewReader(f)
	if err != nil {
		fatalf("%v", err)
	}
	return r
}

func info(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "trace file (required)")
	obsFlags := obs.AddFlags(fs)
	fs.Parse(args)
	setupObs(ctx, obsFlags)
	finish := cmdSpan(obsFlags, "info", *in)
	defer finish()
	if *in == "" {
		fatalf("info: -i is required")
	}
	r := openTrace(*in)
	hdr := r.Header()
	var refs, writes uint64
	pages := map[uint64]struct{}{}
	bits := uint(0)
	for ps := hdr.PageSize; ps > 1; ps >>= 1 {
		bits++
	}
	if err := r.ForEach(func(rec trace.Record) error {
		if refs&65535 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		refs++
		if rec.Write {
			writes++
		}
		pages[rec.Addr>>bits] = struct{}{}
		return nil
	}); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("workload   %s\npage size  %d\nreferences %d (%d writes)\npages      %d (%.1f KB footprint)\n",
		hdr.Workload, hdr.PageSize, refs, writes,
		len(pages), float64(len(pages))*float64(hdr.PageSize)/1024)
}

func replay(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "trace file (required)")
	sizesArg := fs.String("sizes", "4,8,16,32,64,128", "comma-separated TLB sizes")
	seed := fs.Uint64("seed", 1, "seed for random replacement")
	obsFlags := obs.AddFlags(fs)
	fs.Parse(args)
	logger := setupObs(ctx, obsFlags)
	finish := cmdSpan(obsFlags, "replay", *in)
	defer finish()
	if *in == "" {
		fatalf("replay: -i is required")
	}
	var sizes []int
	for _, s := range strings.Split(*sizesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fatalf("bad size %q", s)
		}
		sizes = append(sizes, n)
	}
	r := openTrace(*in)
	hdr := r.Header()
	bits := uint(0)
	for ps := hdr.PageSize; ps > 1; ps >>= 1 {
		bits++
	}
	sims := make([]*tlb.MissRateSim, len(sizes))
	for i, n := range sizes {
		sims[i] = tlb.NewMissRateSim(n, tlb.ReplacementFor(n), *seed)
	}
	var seen uint64
	if err := r.ForEach(func(rec trace.Record) error {
		if seen&65535 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		seen++
		vpn := rec.Addr >> bits
		for _, s := range sims {
			s.Ref(vpn)
		}
		return nil
	}); err != nil {
		fatalf("%v", err)
	}
	logger.Debug("replay finished", "refs", seen, "sizes", *sizesArg)
	fmt.Printf("trace %s (%s, %d-byte pages)\n", *in, hdr.Workload, hdr.PageSize)
	fmt.Printf("%8s %12s %10s\n", "entries", "refs", "miss rate")
	for i, n := range sizes {
		fmt.Printf("%8d %12d %9.3f%%\n", n, sims[i].Refs, 100*sims[i].MissRate())
	}
}
