// Command hbat runs one workload on one address-translation design and
// prints the run's statistics.
//
// Usage:
//
//	hbat [-workload compress] [-design T4] [-pagesize 4096] [-inorder]
//	     [-fewregs] [-scale small] [-seed 1] [-maxinsts N]
//	hbat -list
//	hbat -dump-config
package main

import (
	"flag"
	"fmt"
	"os"

	"hbat"
)

func main() {
	var (
		wl       = flag.String("workload", "compress", "workload name (see -list)")
		design   = flag.String("design", "T4", "translation design mnemonic (see -list)")
		pageSize = flag.Uint64("pagesize", 4096, "virtual-memory page size in bytes")
		inOrder  = flag.Bool("inorder", false, "use the in-order issue model")
		fewRegs  = flag.Bool("fewregs", false, "compile the workload for 8 int / 8 fp registers")
		scale    = flag.String("scale", "small", "workload scale: test, small, or full")
		seed     = flag.Uint64("seed", 1, "seed for randomized structures")
		maxInsts = flag.Uint64("maxinsts", 0, "cap on committed instructions (0 = to completion)")
		list     = flag.Bool("list", false, "list workloads and designs, then exit")
		dumpCfg  = flag.Bool("dump-config", false, "print the Table 1 baseline configuration, then exit")
		analyze  = flag.Bool("analyze", false, "fit the paper's Section 2 performance model (runs the design and a T4 baseline)")
		disasm   = flag.Bool("disasm", false, "print the workload's generated code instead of simulating")
	)
	flag.Parse()

	if *dumpCfg {
		fmt.Println(hbat.BaselineConfig())
		return
	}
	if *list {
		fmt.Println("workloads:")
		for _, w := range hbat.Workloads() {
			model, _ := hbat.WorkloadDescription(w)
			fmt.Printf("  %-12s %s\n", w, model)
		}
		fmt.Println("designs:")
		for _, d := range hbat.Designs() {
			desc, _ := hbat.DesignDescription(d)
			fmt.Printf("  %-6s %s\n", d, desc)
		}
		return
	}

	opts := hbat.Options{
		Workload:     *wl,
		Design:       *design,
		PageSize:     *pageSize,
		InOrder:      *inOrder,
		FewRegisters: *fewRegs,
		Scale:        *scale,
		Seed:         *seed,
		MaxInsts:     *maxInsts,
	}
	if *disasm {
		if err := hbat.Disassemble(*wl, *scale, *fewRegs, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "hbat:", err)
			os.Exit(1)
		}
		return
	}
	if *analyze {
		rep, err := hbat.Analyze(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbat:", err)
			os.Exit(1)
		}
		hbat.RenderAnalysis(os.Stdout, rep)
		return
	}

	res, err := hbat.Simulate(hbat.Options{
		Workload:     *wl,
		Design:       *design,
		PageSize:     *pageSize,
		InOrder:      *inOrder,
		FewRegisters: *fewRegs,
		Scale:        *scale,
		Seed:         *seed,
		MaxInsts:     *maxInsts,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbat:", err)
		os.Exit(1)
	}
	fmt.Printf("workload       %s\n", res.Workload)
	fmt.Printf("design         %s\n", res.Design)
	fmt.Printf("cycles         %d\n", res.Cycles)
	fmt.Printf("instructions   %d (%d loads, %d stores)\n", res.Instructions, res.Loads, res.Stores)
	fmt.Printf("IPC            %.3f committed, %.3f issued\n", res.IPC, res.IssueIPC)
	fmt.Printf("mem refs/cycle %.3f\n", res.MemPerCycle)
	fmt.Printf("branch pred    %.1f%%\n", 100*res.BranchPredRate)
	fmt.Printf("TLB            %d lookups, %d misses (%d walks), %d no-port retries\n",
		res.TLBLookups, res.TLBMisses, res.TLBWalks, res.NoPortRetries)
	fmt.Printf("shielding      %d shield hits, %d piggybacks, %d status write-throughs\n",
		res.ShieldHits, res.Piggybacks, res.StatusWrites)
	fmt.Printf("stalls         fetch %d, dispatch: tlb-miss %d, rob-full %d, lsq-full %d (cycles)\n",
		res.FetchStallCycles, res.DispatchTLBStalls, res.DispatchROBFull, res.DispatchLSQFull)
}
