// Command hbat runs one workload on one address-translation design and
// prints the run's statistics.
//
// Usage:
//
//	hbat [-workload compress] [-design T4] [-pagesize 4096] [-inorder]
//	     [-fewregs] [-scale small] [-seed 1] [-maxinsts N] [-lockstep]
//	     [-metrics out.json] [-metrics-csv out.csv]
//	     [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
//	hbat -list
//	hbat -dump-config
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"hbat"
)

// writeMetrics exports a run's metrics snapshot as JSON or CSV ("-"
// means stdout).
func writeMetrics(path string, csv bool, snap hbat.MetricsSnapshot) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if csv {
		return snap.WriteCSV(out)
	}
	return snap.WriteJSON(out)
}

func run() error {
	var (
		wl         = flag.String("workload", "compress", "workload name (see -list)")
		design     = flag.String("design", "T4", "translation design mnemonic (see -list)")
		pageSize   = flag.Uint64("pagesize", 4096, "virtual-memory page size in bytes")
		inOrder    = flag.Bool("inorder", false, "use the in-order issue model")
		fewRegs    = flag.Bool("fewregs", false, "compile the workload for 8 int / 8 fp registers")
		scale      = flag.String("scale", "small", "workload scale: test, small, or full")
		seed       = flag.Uint64("seed", 1, "seed for randomized structures")
		maxInsts   = flag.Uint64("maxinsts", 0, "cap on committed instructions (0 = to completion)")
		lockstep   = flag.Bool("lockstep", false, "verify every commit against the golden emulator (differential check)")
		metrics    = flag.String("metrics", "", "write the run's metrics registry as JSON to this file (\"-\" = stdout)")
		metricsCSV = flag.String("metrics-csv", "", "write the run's metrics registry as CSV to this file (\"-\" = stdout)")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile after the simulation to this file")
		list       = flag.Bool("list", false, "list workloads and designs, then exit")
		dumpCfg    = flag.Bool("dump-config", false, "print the Table 1 baseline configuration, then exit")
		analyze    = flag.Bool("analyze", false, "fit the paper's Section 2 performance model (runs the design and a T4 baseline)")
		disasm     = flag.Bool("disasm", false, "print the workload's generated code instead of simulating")
	)
	flag.Parse()

	if *dumpCfg {
		fmt.Println(hbat.BaselineConfig())
		return nil
	}
	if *list {
		fmt.Println("workloads:")
		for _, w := range hbat.Workloads() {
			model, _ := hbat.WorkloadDescription(w)
			fmt.Printf("  %-12s %s\n", w, model)
		}
		fmt.Println("designs:")
		for _, d := range hbat.Designs() {
			desc, _ := hbat.DesignDescription(d)
			fmt.Printf("  %-6s %s\n", d, desc)
		}
		return nil
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf == "" {
			return
		}
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbat:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hbat:", err)
		}
	}()

	opts := hbat.Options{
		Workload:     *wl,
		Design:       *design,
		PageSize:     *pageSize,
		InOrder:      *inOrder,
		FewRegisters: *fewRegs,
		Scale:        *scale,
		Seed:         *seed,
		MaxInsts:     *maxInsts,
		Lockstep:     *lockstep,
	}
	if *disasm {
		return hbat.Disassemble(*wl, *scale, *fewRegs, os.Stdout)
	}
	if *analyze {
		rep, err := hbat.Analyze(opts)
		if err != nil {
			return err
		}
		hbat.RenderAnalysis(os.Stdout, rep)
		return exportMetrics(*metrics, *metricsCSV, rep.Metrics)
	}

	res, err := hbat.Simulate(opts)
	if err != nil {
		return err
	}
	fmt.Printf("workload       %s\n", res.Workload)
	fmt.Printf("design         %s\n", res.Design)
	if *lockstep {
		fmt.Printf("lockstep       verified %d commits against the emulator\n", res.Instructions)
	}
	fmt.Printf("cycles         %d\n", res.Cycles)
	fmt.Printf("instructions   %d (%d loads, %d stores)\n", res.Instructions, res.Loads, res.Stores)
	fmt.Printf("IPC            %.3f committed, %.3f issued\n", res.IPC, res.IssueIPC)
	fmt.Printf("mem refs/cycle %.3f\n", res.MemPerCycle)
	fmt.Printf("branch pred    %.1f%%\n", 100*res.BranchPredRate)
	fmt.Printf("TLB            %d lookups, %d misses (%d walks), %d no-port retries\n",
		res.TLBLookups, res.TLBMisses, res.TLBWalks, res.NoPortRetries)
	fmt.Printf("shielding      %d shield hits, %d piggybacks, %d status write-throughs\n",
		res.ShieldHits, res.Piggybacks, res.StatusWrites)
	fmt.Printf("stalls         fetch %d, dispatch: tlb-miss %d, rob-full %d, lsq-full %d (cycles)\n",
		res.FetchStallCycles, res.DispatchTLBStalls, res.DispatchROBFull, res.DispatchLSQFull)
	return exportMetrics(*metrics, *metricsCSV, res.Metrics)
}

// exportMetrics honors the -metrics / -metrics-csv flags.
func exportMetrics(jsonPath, csvPath string, snap hbat.MetricsSnapshot) error {
	if jsonPath != "" {
		if err := writeMetrics(jsonPath, false, snap); err != nil {
			return err
		}
		if jsonPath != "-" {
			fmt.Printf("metrics        %s\n", jsonPath)
		}
	}
	if csvPath != "" {
		if err := writeMetrics(csvPath, true, snap); err != nil {
			return err
		}
		if csvPath != "-" && !strings.EqualFold(jsonPath, csvPath) {
			fmt.Printf("metrics-csv    %s\n", csvPath)
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hbat:", err)
		os.Exit(1)
	}
}
