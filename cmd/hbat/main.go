// Command hbat runs one workload on one address-translation design and
// prints the run's statistics.
//
// Usage:
//
//	hbat [-workload compress] [-design T4] [-pagesize 4096] [-inorder]
//	     [-fewregs] [-scale small] [-seed 1] [-maxinsts N] [-lockstep]
//	     [-ffwd N] [-ffwd-engine sblock|interp] [-ckpt-dir dir]
//	     [-metrics out.json] [-metrics-csv out.csv]
//	     [-trace out.json] [-trace-format perfetto|konata]
//	     [-trace-start N] [-trace-end N] [-trace-buffer N] [-trace-summary]
//	     [-interval-csv out.csv] [-interval N] [-progress]
//	     [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
//	     [-obs :8090] [-log-level info] [-log-format text|json]
//	     [-spans] [-spans-out prefix] [-manifest manifest.json]
//	hbat -list
//	hbat -dump-config
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hbat"
	"hbat/internal/obs"
)

// writeMetrics exports a run's metrics snapshot as JSON or CSV ("-"
// means stdout).
func writeMetrics(path string, csv bool, snap hbat.MetricsSnapshot) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if csv {
		return snap.WriteCSV(out)
	}
	return snap.WriteJSON(out)
}

func run(ctx context.Context) error {
	var (
		wl         = flag.String("workload", "compress", "workload name (see -list)")
		design     = flag.String("design", "T4", "translation design mnemonic (see -list)")
		pageSize   = flag.Uint64("pagesize", 4096, "virtual-memory page size in bytes")
		inOrder    = flag.Bool("inorder", false, "use the in-order issue model")
		fewRegs    = flag.Bool("fewregs", false, "compile the workload for 8 int / 8 fp registers")
		scale      = flag.String("scale", "small", "workload scale: test, small, or full")
		seed       = flag.Uint64("seed", 1, "seed for randomized structures")
		maxInsts   = flag.Uint64("maxinsts", 0, "cap on committed instructions (0 = to completion)")
		ffwd       = flag.Uint64("ffwd", 0, "fast-forward: functionally execute the first N instructions and measure only the remainder (0 = run from reset)")
		ffwdEngine = flag.String("ffwd-engine", "", "fast-forward functional engine: sblock (superblock-translated, the default) or interp (reference interpreter); output is identical either way")
		ckptDir    = flag.String("ckpt-dir", "", "persist fast-forward checkpoints in this directory (reused across invocations)")
		lockstep   = flag.Bool("lockstep", false, "verify every commit against the golden emulator (differential check)")
		metrics    = flag.String("metrics", "", "write the run's metrics registry as JSON to this file (\"-\" = stdout)")
		metricsCSV = flag.String("metrics-csv", "", "write the run's metrics registry as CSV to this file (\"-\" = stdout)")

		traceFile    = flag.String("trace", "", "record pipeline events and write the trace to this file")
		traceFormat  = flag.String("trace-format", "perfetto", "trace export format: perfetto (ui.perfetto.dev JSON) or konata (pipeline-viewer log)")
		traceStart   = flag.Int64("trace-start", 0, "first cycle to record (0 = from the beginning)")
		traceEnd     = flag.Int64("trace-end", 0, "last cycle to record, inclusive (0 = to the end)")
		traceBuffer  = flag.Int("trace-buffer", 0, "trace ring-buffer capacity in events (0 = 65536; oldest overwritten)")
		traceSummary = flag.Bool("trace-summary", false, "print a text report of stall causes and longest-latency instructions (implies recording)")
		intervalCSV  = flag.String("interval-csv", "", "sample interval time-series metrics and write CSV to this file (\"-\" = stdout)")
		interval     = flag.Int64("interval", 10000, "interval sample period in cycles (with -interval-csv)")
		progress     = flag.Bool("progress", false, "print a one-line status heartbeat to stderr during the run")
		cpuProf      = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
		memProf      = flag.String("memprofile", "", "write a pprof heap profile after the simulation to this file")
		list         = flag.Bool("list", false, "list workloads and designs, then exit")
		dumpCfg      = flag.Bool("dump-config", false, "print the Table 1 baseline configuration, then exit")
		analyze      = flag.Bool("analyze", false, "fit the paper's Section 2 performance model (runs the design and a T4 baseline)")
		disasm       = flag.Bool("disasm", false, "print the workload's generated code instead of simulating")
		manifest     = flag.String("manifest", "", "write a run-provenance manifest (runs + artifact SHA-256s) to this file")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	logger, srv, err := obsFlags.Setup(ctx, os.Stderr, hbat.SweepEngine())
	if err != nil {
		return err
	}
	if srv != nil {
		defer srv.Close()
	}
	// Export the merged span timeline on every exit path; the success
	// path below calls FinishSpans first (it is one-shot) so it can
	// name the files and stamp them into the manifest.
	defer func() {
		if _, err := obsFlags.FinishSpans(); err != nil {
			fmt.Fprintln(os.Stderr, "hbat: spans:", err)
		}
	}()

	if *dumpCfg {
		fmt.Println(hbat.BaselineConfig())
		return nil
	}
	if *list {
		fmt.Println("workloads:")
		for _, w := range hbat.Workloads() {
			model, _ := hbat.WorkloadDescription(w)
			fmt.Printf("  %-12s %s\n", w, model)
		}
		fmt.Println("designs:")
		for _, d := range hbat.Designs() {
			desc, _ := hbat.DesignDescription(d)
			fmt.Printf("  %-6s %s\n", d, desc)
		}
		return nil
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf == "" {
			return
		}
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbat:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hbat:", err)
		}
	}()

	opts := hbat.Options{
		CommonOptions: hbat.CommonOptions{
			Scale:       *scale,
			Seed:        *seed,
			FastForward: *ffwd,
			FFwdEngine:  *ffwdEngine,
		},
		Workload:     *wl,
		Design:       *design,
		PageSize:     *pageSize,
		InOrder:      *inOrder,
		FewRegisters: *fewRegs,
		MaxInsts:     *maxInsts,
		Lockstep:     *lockstep,
	}
	if *ckptDir != "" {
		if err := hbat.SetCheckpointDir(*ckptDir); err != nil {
			return err
		}
	}
	if *traceFile != "" || *traceSummary {
		switch *traceFormat {
		case "perfetto", "konata":
		default:
			return fmt.Errorf("unknown -trace-format %q (perfetto, konata)", *traceFormat)
		}
		opts.Trace = &hbat.TraceOptions{Buffer: *traceBuffer, Start: *traceStart, End: *traceEnd}
	}
	if *intervalCSV != "" {
		opts.IntervalEvery = *interval
	}
	if *progress {
		start := time.Now()
		opts.Progress = func(cycle int64, committed uint64) {
			ipc := 0.0
			if cycle > 0 {
				ipc = float64(committed) / float64(cycle)
			}
			logger.Info("simulation progress", "cycle", cycle, "insts", committed,
				"ipc", ipc, "elapsed_s", time.Since(start).Seconds())
		}
		opts.ProgressEvery = 100000
	}
	if *disasm {
		return hbat.Disassemble(*wl, *scale, *fewRegs, os.Stdout)
	}
	if *analyze {
		rep, err := hbat.Analyze(ctx, opts)
		if err != nil {
			return err
		}
		hbat.RenderAnalysis(os.Stdout, rep)
		return exportMetrics(*metrics, *metricsCSV, rep.Metrics)
	}

	res, err := hbat.Simulate(ctx, opts)
	if err != nil {
		return err
	}
	fmt.Printf("workload       %s\n", res.Workload)
	fmt.Printf("design         %s\n", res.Design)
	if *lockstep {
		fmt.Printf("lockstep       verified %d commits against the emulator\n", res.Instructions)
	}
	if res.FastForwarded > 0 {
		fmt.Printf("fast-forward   %d instructions warmed functionally; stats cover the measurement window\n", res.FastForwarded)
	}
	fmt.Printf("cycles         %d\n", res.Cycles)
	fmt.Printf("instructions   %d (%d loads, %d stores)\n", res.Instructions, res.Loads, res.Stores)
	fmt.Printf("IPC            %.3f committed, %.3f issued\n", res.IPC, res.IssueIPC)
	fmt.Printf("mem refs/cycle %.3f\n", res.MemPerCycle)
	fmt.Printf("branch pred    %.1f%%\n", 100*res.BranchPredRate)
	fmt.Printf("TLB            %d lookups, %d misses (%d walks), %d no-port retries\n",
		res.TLBLookups, res.TLBMisses, res.TLBWalks, res.NoPortRetries)
	fmt.Printf("shielding      %d shield hits, %d piggybacks, %d status write-throughs\n",
		res.ShieldHits, res.Piggybacks, res.StatusWrites)
	fmt.Printf("stalls         fetch %d, dispatch: tlb-miss %d, rob-full %d, lsq-full %d (cycles)\n",
		res.FetchStallCycles, res.DispatchTLBStalls, res.DispatchROBFull, res.DispatchLSQFull)
	if err := exportMetrics(*metrics, *metricsCSV, res.Metrics); err != nil {
		return err
	}
	if res.Trace != nil {
		if *traceFile != "" {
			if err := exportTrace(*traceFile, *traceFormat, res.Trace); err != nil {
				return err
			}
			fmt.Printf("trace          %s (%s, %d events held, %d dropped)\n",
				*traceFile, *traceFormat, res.Trace.Len(), res.Trace.Dropped())
		}
		if *traceSummary {
			if err := res.Trace.WriteSummary(os.Stdout, 10); err != nil {
				return err
			}
		}
	}
	if res.Intervals != nil && *intervalCSV != "" {
		if err := exportIntervals(*intervalCSV, res.Intervals); err != nil {
			return err
		}
		if *intervalCSV != "-" {
			fmt.Printf("interval-csv   %s\n", *intervalCSV)
		}
	}
	spansPath, err := obsFlags.FinishSpans()
	if err != nil {
		return err
	}
	if spansPath != "" {
		fmt.Printf("spans          %s.jsonl + %s\n", obsFlags.SpansOut, spansPath)
	}
	if *manifest != "" {
		m := hbat.NewManifest("hbat")
		m.RecordRuns(hbat.SweepEngine())
		artifacts := []struct{ name, path string }{
			{"metrics.json", *metrics},
			{"metrics.csv", *metricsCSV},
			{"trace", *traceFile},
			{"intervals.csv", *intervalCSV},
		}
		if spansPath != "" {
			artifacts = append(artifacts,
				struct{ name, path string }{"spans.jsonl", obsFlags.SpansOut + ".jsonl"},
				struct{ name, path string }{"spans.perfetto.json", spansPath},
			)
		}
		for _, a := range artifacts {
			if a.path == "" || a.path == "-" {
				continue
			}
			if err := m.AddArtifactFile(a.name, a.path); err != nil {
				return err
			}
		}
		if err := m.WriteFile(*manifest); err != nil {
			return err
		}
		logger.Info("manifest written", "path", *manifest, "runs", len(m.Runs), "artifacts", len(m.Artifacts))
	}
	return nil
}

// exportTrace writes the captured pipeline trace in the chosen format.
func exportTrace(path, format string, tr *hbat.PipelineTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if format == "konata" {
		return tr.WriteKonata(f)
	}
	return tr.WritePerfetto(f)
}

// exportIntervals writes the sampled time series as CSV ("-" = stdout).
func exportIntervals(path string, s *hbat.IntervalSeries) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return s.WriteCSV(out)
}

// exportMetrics honors the -metrics / -metrics-csv flags.
func exportMetrics(jsonPath, csvPath string, snap hbat.MetricsSnapshot) error {
	if jsonPath != "" {
		if err := writeMetrics(jsonPath, false, snap); err != nil {
			return err
		}
		if jsonPath != "-" {
			fmt.Printf("metrics        %s\n", jsonPath)
		}
	}
	if csvPath != "" {
		if err := writeMetrics(csvPath, true, snap); err != nil {
			return err
		}
		if csvPath != "-" && !strings.EqualFold(jsonPath, csvPath) {
			fmt.Printf("metrics-csv    %s\n", csvPath)
		}
	}
	return nil
}

func main() {
	// Ctrl-C cancels the in-flight simulation at a cycle-granular
	// check; the run exits non-zero (130, the conventional 128+SIGINT).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "hbat:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}
