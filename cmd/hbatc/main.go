// Command hbatc is the sweep fabric coordinator: it fronts a fleet of
// hbatd workers behind the exact v1 job API one worker serves, so
// hbat.Dial, curl, and every existing client work unchanged — only
// the capacity changes. Specs shard across live workers by rendezvous
// hashing on a checkpoint-affinity key (all designs of one workload
// co-locate, keeping worker caches hot), failed or timed-out specs
// retry on a different worker with capped exponential backoff, and
// each completed artifact is fetched from its computing worker once,
// verified against the worker-reported content hash, and served from
// the coordinator's own content-addressed store after.
//
// Workers come from repeated (or comma-separated) -worker flags and
// from runtime registrations (POST /v1/workers); each is health-probed
// into an up/draining/down state machine, and GET /v1/workers shows
// the registry. SIGINT/SIGTERM starts a graceful drain: /ready flips
// to 503, open jobs run to completion (or -drain-timeout), then the
// process exits.
//
// Usage:
//
//	hbatc -addr :9080 -worker http://host1:9090 -worker http://host2:9090
//	hbatc -addr :9080 -worker http://h1:9090,http://h2:9090 \
//	      -data-dir /var/hbatc -tenant-jobs 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hbat/internal/fleet"
	"hbat/internal/obs"
	"hbat/internal/store"
)

// workerList collects -worker flags; each occurrence may carry one
// base URL or a comma-separated list.
type workerList []string

func (w *workerList) String() string { return strings.Join(*w, ",") }

func (w *workerList) Set(v string) error {
	for _, addr := range strings.Split(v, ",") {
		addr = strings.TrimSuffix(strings.TrimSpace(addr), "/")
		if addr == "" {
			continue
		}
		if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
			return fmt.Errorf("worker %q: want a base URL like http://host:9090", addr)
		}
		*w = append(*w, addr)
	}
	return nil
}

func main() {
	var workers workerList
	flag.Var(&workers, "worker", "hbatd worker base URL; repeat the flag (or comma-separate) for a fleet")
	var (
		addr           = flag.String("addr", ":9080", "listen address for the job API and observability endpoints")
		probeEvery     = flag.Duration("probe-every", time.Second, "worker health-probe period")
		probeTimeout   = flag.Duration("probe-timeout", 500*time.Millisecond, "timeout for one worker health probe")
		downAfter      = flag.Int("down-after", 3, "consecutive failed probes before a worker is marked down")
		requestTimeout = flag.Duration("request-timeout", 10*time.Second, "timeout for each HTTP request to a worker")
		batchTimeout   = flag.Duration("batch-timeout", 2*time.Minute, "end-to-end timeout for one dispatched batch; unfinished specs retry elsewhere")
		retryMax       = flag.Int("retry-max", 3, "attempts allowed per spec before it fails terminally")
		retryBackoff   = flag.Duration("retry-backoff", 50*time.Millisecond, "base backoff between retry waves (doubles per wave, capped)")
		dataDir        = flag.String("data-dir", "", "persist the coordinator result store in this directory (empty = memory only)")
		storeMem       = flag.Int64("store-mem", 64<<20, "result store memory budget in bytes")
		storeDisk      = flag.Int64("store-disk", 0, "result store disk budget in bytes (0 = unbounded; needs -data-dir)")
		tenantQuota    = flag.Int64("tenant-quota-bytes", 0, "stored bytes allowed per tenant (0 = unlimited)")
		tenantJobs     = flag.Int("tenant-jobs", 0, "concurrently open jobs allowed per tenant (0 = unlimited)")
		maxSpecs       = flag.Int("max-specs", 0, "specs allowed per job (0 = 1024)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for open jobs before giving up")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// No engine here — the coordinator never simulates; Setup still
	// wires the logger, the span tracer, and (with -obs) a separate
	// observability listener.
	logger, osrv, err := obsFlags.Setup(ctx, os.Stderr, nil)
	if err != nil {
		fail(err)
	}
	if osrv != nil {
		defer osrv.Close()
	}

	st, err := store.New(store.Config{
		Dir:              *dataDir,
		MemBytes:         *storeMem,
		DiskBytes:        *storeDisk,
		TenantQuotaBytes: *tenantQuota,
	})
	if err != nil {
		fail(err)
	}

	coord, err := fleet.New(fleet.Config{
		Workers:        workers,
		Store:          st,
		ProbeEvery:     *probeEvery,
		ProbeTimeout:   *probeTimeout,
		DownAfter:      *downAfter,
		RequestTimeout: *requestTimeout,
		BatchTimeout:   *batchTimeout,
		RetryMax:       *retryMax,
		RetryBackoff:   *retryBackoff,
		TenantJobs:     *tenantJobs,
		MaxSpecs:       *maxSpecs,
		Logger:         logger,
		Spans:          obsFlags.Tracer(),
	})
	if err != nil {
		fail(err)
	}

	// One listener, two routing tables, exactly like hbatd: /v1/... is
	// the job API, everything else the shared observability surface.
	// /ready tracks the coordinator's accepting state so a load
	// balancer stops sending jobs the moment the drain starts.
	mux := http.NewServeMux()
	mux.Handle("/v1/", coord.Handler())
	mux.Handle("/", obs.NewHandler(obs.Config{
		Spans:  obsFlags.Tracer(),
		Ready:  coord.Accepting,
		Extra:  coord.MetricsFamilies,
		Logger: logger,
	}))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Info("hbatc listening", "addr", ln.Addr().String(),
		"workers", len(workers), "data_dir", *dataDir)

	select {
	case err := <-serveErr:
		fail(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	logger.Info("drain started", "timeout", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := coord.Shutdown(dctx); err != nil {
		logger.Error("drain incomplete", "error", err.Error())
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		logger.Error("http shutdown incomplete", "error", err.Error())
	}
	if path, err := obsFlags.FinishSpans(); err != nil {
		fail(err)
	} else if path != "" {
		logger.Info("spans written", "timeline", path)
	}
	ss := st.Stats()
	logger.Info("hbatc stopped",
		"store_entries", ss.Entries, "store_puts", ss.Puts,
		"store_mem_hits", ss.MemHits, "store_disk_hits", ss.DiskHits)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hbatc:", err)
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
