// Command hbatd is the sweep fabric daemon: a multi-tenant simulation
// service that accepts jobs over the versioned v1 HTTP API (see the
// api package), shards their specs across a worker pool, deduplicates
// identical specs across tenants through the shared sweep engine, and
// serves rendered artifacts from a content-addressed result store.
//
// One listener carries everything: /v1/... is the job API, and the
// observability endpoints (/metrics, /health, /ready, /debug/spans,
// /debug/pprof) share the same address. SIGINT/SIGTERM starts a
// graceful drain: /ready flips to 503, open jobs run to completion (or
// -drain-timeout), then the process exits. With -data-dir the result
// store persists across restarts, and with -resume completed runs are
// journaled so a crashed daemon restarts without re-simulating.
//
// Usage:
//
//	hbatd -addr :9090                         # in-memory store
//	hbatd -addr :9090 -data-dir /var/hbat \
//	      -resume /var/hbat/resume.jsonl      # crash-safe
//	hbatd -addr :9090 -tenant-jobs 4 \
//	      -tenant-quota-bytes 67108864        # multi-tenant limits
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hbat/internal/engine"
	"hbat/internal/obs"
	"hbat/internal/store"
	"hbat/internal/transport"
)

func main() {
	var (
		addr         = flag.String("addr", ":9090", "listen address for the job API and observability endpoints")
		workers      = flag.Int("workers", 0, "worker pool size (0 = 4)")
		ckptDir      = flag.String("ckpt-dir", "", "persist fast-forward checkpoints in this directory (reused across restarts)")
		dataDir      = flag.String("data-dir", "", "persist the result store in this directory (empty = memory only)")
		storeMem     = flag.Int64("store-mem", 64<<20, "result store memory budget in bytes")
		storeDisk    = flag.Int64("store-disk", 0, "result store disk budget in bytes (0 = unbounded; needs -data-dir)")
		tenantQuota  = flag.Int64("tenant-quota-bytes", 0, "stored bytes allowed per tenant (0 = unlimited)")
		tenantJobs   = flag.Int("tenant-jobs", 0, "concurrently open jobs allowed per tenant (0 = unlimited)")
		maxSpecs     = flag.Int("max-specs", 0, "specs allowed per job (0 = 1024)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for open jobs before giving up")
		resume       = flag.String("resume", "", "resume journal path: completed runs are logged here and a restarted daemon serves them without re-simulating")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	eng := engine.New()
	// Setup attaches the logger and (with -spans) the span tracer to the
	// engine; with -obs set it additionally serves the obs endpoints on
	// their own listener — useful when the job API port is not the one
	// the dashboards scrape.
	logger, osrv, err := obsFlags.Setup(ctx, os.Stderr, eng)
	if err != nil {
		fail(err)
	}
	if osrv != nil {
		defer osrv.Close()
	}

	if *ckptDir != "" {
		if err := eng.SetCheckpointDir(*ckptDir); err != nil {
			fail(err)
		}
	}
	if *resume != "" {
		n, err := eng.SetJournal(*resume)
		if err != nil {
			fail(err)
		}
		logger.Info("resume journal attached", "path", *resume, "runs_resumed", n)
	}

	st, err := store.New(store.Config{
		Dir:              *dataDir,
		MemBytes:         *storeMem,
		DiskBytes:        *storeDisk,
		TenantQuotaBytes: *tenantQuota,
	})
	if err != nil {
		fail(err)
	}

	svc, err := transport.New(transport.Config{
		Engine:     eng,
		Store:      st,
		Workers:    *workers,
		TenantJobs: *tenantJobs,
		MaxSpecs:   *maxSpecs,
		Logger:     logger,
		Spans:      obsFlags.Tracer(),
	})
	if err != nil {
		fail(err)
	}

	// One listener, two routing tables: /v1/... is the job API,
	// everything else the shared observability surface. /ready tracks
	// the engine's accepting state, which Shutdown flips — a load
	// balancer stops sending work the moment the drain starts.
	mux := http.NewServeMux()
	mux.Handle("/v1/", svc.Handler())
	mux.Handle("/", obs.NewHandler(obs.Config{
		Engine: eng,
		Spans:  obsFlags.Tracer(),
		Logger: logger,
		// The fabric's RED families (per-route/per-tenant request
		// counters and duration histograms, queue depth, quota gauges)
		// ride along on the same /metrics exposition.
		Extra: svc.MetricsFamilies,
	}))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Info("hbatd listening", "addr", ln.Addr().String(),
		"workers", *workers, "data_dir", *dataDir)

	select {
	case err := <-serveErr:
		fail(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	logger.Info("drain started", "timeout", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(dctx); err != nil {
		logger.Error("drain incomplete", "error", err.Error())
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		logger.Error("http shutdown incomplete", "error", err.Error())
	}
	if path, err := obsFlags.FinishSpans(); err != nil {
		fail(err)
	} else if path != "" {
		logger.Info("spans written", "timeline", path)
	}
	ss := st.Stats()
	logger.Info("hbatd stopped",
		"runs_executed", eng.State().Executed,
		"store_entries", ss.Entries,
		"store_mem_hits", ss.MemHits, "store_disk_hits", ss.DiskHits)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hbatd:", err)
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
