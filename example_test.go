package hbat_test

import (
	"context"
	"fmt"

	"hbat"
)

// The smallest end-to-end use: run one benchmark on one translation
// design and look at what the translation hardware did.
func ExampleSimulate() {
	res, err := hbat.Simulate(context.Background(), hbat.Options{
		Workload:      "tomcatv",
		Design:        "M8",
		CommonOptions: hbat.CommonOptions{Scale: "test"},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Workload, "on", res.Design)
	fmt.Println("every request translated:", res.TLBLookups > 0)
	fmt.Println("most requests shielded by the L1 TLB:",
		res.ShieldHits > res.TLBLookups/2)
	// Output:
	// tomcatv on M8
	// every request translated: true
	// most requests shielded by the L1 TLB: true
}

// Designs and workloads are discoverable at runtime.
func ExampleDesigns() {
	ds := hbat.Designs()
	fmt.Println(len(ds), "designs, first:", ds[0], "last:", ds[len(ds)-1])
	// Output:
	// 13 designs, first: T4 last: I4/PB
}

// Comparing two designs on the same program is the library's bread and
// butter; cycle counts are deterministic for a given seed.
func ExampleSimulate_comparison() {
	ipc := map[string]float64{}
	for _, d := range []string{"T4", "T1"} {
		res, err := hbat.Simulate(context.Background(), hbat.Options{
			Workload: "espresso", Design: d,
			CommonOptions: hbat.CommonOptions{Scale: "test"},
		})
		if err != nil {
			panic(err)
		}
		ipc[d] = res.IPC
	}
	fmt.Println("one port costs performance:", ipc["T1"] < ipc["T4"])
	// Output:
	// one port costs performance: true
}
