// Customtlb: build a translation design the paper did NOT evaluate — a
// victim-TLB organization (a small fully-associative buffer catching
// entries evicted from a direct-mapped-ish interleaved TLB) — and race
// it against the paper's designs. This demonstrates the extension
// point: anything implementing tlb.Device plugs into the simulator.
//
// (This example uses the repository's internal packages directly, which
// is how in-tree experiments are written; the stable external surface
// is the root hbat package.)
//
//	go run ./examples/customtlb
package main

import (
	"fmt"
	"log"

	"hbat/internal/cpu"
	"hbat/internal/prog"
	"hbat/internal/tlb"
	"hbat/internal/vm"
	"hbat/internal/workload"
)

// victimTLB is a single-ported interleaved TLB backed by a tiny
// fully-associative victim buffer with two ports. Lookups that miss the
// bank but hit the victim buffer are serviced with one extra cycle.
type victimTLB struct {
	main   *tlb.Interleaved
	victim *tlb.Bank
	as     *vm.AddressSpace
	stats  tlb.Stats

	victimPortsUsed int
}

func newVictimTLB(as *vm.AddressSpace, seed uint64) *victimTLB {
	return &victimTLB{
		main:   tlb.NewInterleaved("I4v", as, 128, 4, tlb.BitSelect(4), 0, tlb.Random, seed),
		victim: tlb.NewBank(8, tlb.LRU, seed+99),
		as:     as,
	}
}

func (v *victimTLB) Name() string { return "I4+V8" }

func (v *victimTLB) BeginCycle(now int64) {
	v.main.BeginCycle(now)
	v.victimPortsUsed = 0
}

func (v *victimTLB) Lookup(req tlb.Request, now int64) tlb.Result {
	r := v.main.Lookup(req, now)
	if r.Outcome != tlb.Miss {
		return r
	}
	// Main miss: probe the victim buffer (2 ports/cycle).
	if v.victimPortsUsed < 2 {
		v.victimPortsUsed++
		if pte, ok := v.victim.Lookup(req.VPN, now); ok {
			v.stats.Hits++
			v.stats.Lookups++
			// Swap back into the main structure.
			v.victim.Invalidate(req.VPN)
			return tlb.Result{Outcome: tlb.Hit, Extra: 1, PTE: pte}
		}
	}
	v.stats.Misses++
	return r
}

func (v *victimTLB) Fill(vpn uint64, now int64) (*vm.PTE, error) {
	pte, err := v.as.Walk(vpn)
	if err != nil {
		return nil, err
	}
	// Victimize whatever the bank replaces.
	bank := v.main.Bank(v.main.SelectBank(vpn))
	if evictedVPN, evicted := bankInsert(bank, vpn, pte, now); evicted {
		if old, ok := v.as.Probe(evictedVPN); ok {
			v.victim.Insert(evictedVPN, old, now)
		}
	}
	v.stats.Fills++
	return pte, nil
}

func bankInsert(b *tlb.Bank, vpn uint64, pte *vm.PTE, now int64) (uint64, bool) {
	return b.Insert(vpn, pte, now)
}

func (v *victimTLB) Invalidate(vpn uint64) {
	v.main.Invalidate(vpn)
	v.victim.Invalidate(vpn)
}

func (v *victimTLB) FlushAll() {
	v.main.FlushAll()
	v.victim.Flush()
}

func (v *victimTLB) Stats() *tlb.Stats { return &v.stats }

func main() {
	w, err := workload.ByName("mpeg_play")
	if err != nil {
		log.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mpeg_play on a custom victim-TLB design vs the paper's designs:")
	run := func(name string, build func(as *vm.AddressSpace) tlb.Device) {
		m, err := cpu.New(p, cpu.DefaultConfig(), build)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Run(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s IPC %.3f  cycles %d  walks %d\n",
			name, m.Stats().IPC(), m.Stats().Cycles, m.Stats().TLBWalks)
	}

	for _, d := range []string{"T4", "I4", "I4/PB"} {
		spec, err := tlb.LookupSpec(d)
		if err != nil {
			log.Fatal(err)
		}
		run(d, func(as *vm.AddressSpace) tlb.Device { return spec.Build(as, 1) })
	}
	run("I4+V8", func(as *vm.AddressSpace) tlb.Device { return newVictimTLB(as, 1) })
}
