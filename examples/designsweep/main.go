// Designsweep: run every Table 2 design on one workload and print a
// miniature of the paper's Figure 5, including per-design shielding and
// piggybacking behaviour. Pick the workload and scale on the command
// line:
//
//	go run ./examples/designsweep [workload] [scale]
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"hbat"
)

func main() {
	wl := "espresso" // the highest-bandwidth workload: stresses ports hardest
	scale := "small"
	if len(os.Args) > 1 {
		wl = os.Args[1]
	}
	if len(os.Args) > 2 {
		scale = os.Args[2]
	}
	model, err := hbat.WorkloadDescription(wl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s — %s\n\n", wl, model)

	var t4 float64
	type row struct {
		design string
		res    *hbat.Result
	}
	var rows []row
	for _, d := range hbat.Designs() {
		res, err := hbat.Simulate(context.Background(), hbat.Options{
			CommonOptions: hbat.CommonOptions{Scale: scale},
			Workload:      wl,
			Design:        d,
		})
		if err != nil {
			log.Fatal(err)
		}
		if d == "T4" {
			t4 = res.IPC
		}
		rows = append(rows, row{d, res})
	}

	fmt.Printf("%-7s %7s %7s %9s %9s %9s %9s\n",
		"design", "IPC", "vs T4", "walks", "shielded", "piggyback", "rejected")
	for _, r := range rows {
		rel := r.res.IPC / t4
		fmt.Printf("%-7s %7.3f %6.1f%% %9d %9d %9d %9d  |%s\n",
			r.design, r.res.IPC, 100*rel,
			r.res.TLBWalks, r.res.ShieldHits, r.res.Piggybacks, r.res.NoPortRetries,
			strings.Repeat("#", int(rel*40+0.5)))
	}
}
