// Modelfit: apply the paper's Section 2 performance model to measured
// runs. For each shielding design the program reports where translation
// time goes — how much is shielded (f_shielded), how much queues for a
// port (t_stalled), how much is base-TLB misses (M_TLB * t_TLBmiss) —
// and how much of the exposed latency the out-of-order core tolerates
// (f_TOL, inferred against the T4 baseline).
//
//	go run ./examples/modelfit [workload]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"hbat"
)

func main() {
	wl := "compress" // poor locality: the shielding designs must work for it
	if len(os.Args) > 1 {
		wl = os.Args[1]
	}
	fmt.Printf("Section 2 model on %s (t_AT = (1-f_shielded)(t_stalled + t_TLBhit + M_TLB*t_TLBmiss)):\n\n", wl)
	for _, d := range []string{"T1", "M8", "P8", "PB1"} {
		rep, err := hbat.Analyze(context.Background(), hbat.Options{
			CommonOptions: hbat.CommonOptions{Scale: "small"},
			Workload:      wl,
			Design:        d,
		})
		if err != nil {
			log.Fatal(err)
		}
		hbat.RenderAnalysis(os.Stdout, rep)
		fmt.Println()
	}
	fmt.Println("Reading the fits: shielding designs push f_shielded toward 1 so the")
	fmt.Println("whole parenthesis stops mattering; T1 shields nothing and pays the")
	fmt.Println("queueing term; the out-of-order core hides most of what remains.")
}
