// Pagesize: reproduce the paper's Section 4.5 observation in miniature:
// larger pages help the shielding designs — L1 TLBs map more memory,
// pretranslations live longer (pointers stride further before leaving a
// page), and piggybacking finds more same-page request pairs.
//
//	go run ./examples/pagesize
package main

import (
	"context"
	"fmt"
	"log"

	"hbat"
)

func main() {
	workloads := []string{"compress", "mpeg_play", "tfft"} // the low-locality trio
	designs := []string{"M4", "P8", "PB1"}                 // one per shielding mechanism

	fmt.Println("IPC with 4 KB vs 8 KB pages (low-locality workloads, shielding designs)")
	fmt.Printf("%-11s %-7s %10s %10s %8s\n", "workload", "design", "4k IPC", "8k IPC", "gain")
	for _, wl := range workloads {
		for _, d := range designs {
			var ipc [2]float64
			for i, ps := range []uint64{4096, 8192} {
				res, err := hbat.Simulate(context.Background(), hbat.Options{
					CommonOptions: hbat.CommonOptions{Scale: "small"},
					Workload:      wl, Design: d, PageSize: ps,
				})
				if err != nil {
					log.Fatal(err)
				}
				ipc[i] = res.IPC
			}
			fmt.Printf("%-11s %-7s %10.3f %10.3f %+7.1f%%\n",
				wl, d, ipc[0], ipc[1], 100*(ipc[1]/ipc[0]-1))
		}
	}
	fmt.Println("\nLarger pages mean fewer distinct pages in flight: the L1 TLB,")
	fmt.Println("the pretranslation cache, and the piggyback comparators all win.")
}
