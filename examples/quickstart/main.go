// Quickstart: simulate one benchmark on two address-translation designs
// and compare them — the four-ported TLB every request wants (T4) vs. a
// multi-level TLB with an 8-entry L1 (M8), the design the paper shows
// gets nearly all of T4's performance at a fraction of its cost.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hbat"
)

func main() {
	fmt.Println(hbat.BaselineConfig())
	fmt.Println()

	for _, design := range []string{"T4", "M8"} {
		desc, err := hbat.DesignDescription(design)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s: %s ---\n", design, desc)
		res, err := hbat.Simulate(context.Background(), hbat.Options{
			CommonOptions: hbat.CommonOptions{Scale: "small"},
			Workload:      "xlisp", // the suite's most memory-intensive program
			Design:        design,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cycles %d  IPC %.3f  mem/cycle %.3f\n", res.Cycles, res.IPC, res.MemPerCycle)
		fmt.Printf("TLB: %d lookups, %d walks, %d shield hits, %d port rejections\n\n",
			res.TLBLookups, res.TLBWalks, res.ShieldHits, res.NoPortRetries)
	}

	fmt.Println("An 8-entry L1 TLB shields the single-ported base TLB from nearly")
	fmt.Println("every request — the paper's Section 4.3 result, reproduced above.")
}
