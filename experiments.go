package hbat

import (
	"context"
	"fmt"
	"io"

	"hbat/internal/harness"
	"hbat/internal/runspan"
)

// renderSpan opens a "render" span (its own trace — rendering is
// per-artifact, not per-run) on the options' engine tracer. Returns
// nil, accepted by Span.End, when tracing is off.
func renderSpan(ho harness.Options, artifact string) *runspan.Span {
	if ho.Engine == nil || !ho.Engine.Spans().Enabled() {
		return nil
	}
	tr := ho.Engine.Spans()
	return tr.Start(tr.NewTrace(), nil, "render").SetAttr("artifact", artifact)
}

// experiment is one registered evaluation artifact: how to run it as a
// text report and, when it is a design-grid figure, how to produce the
// underlying FigureResult for CSV export.
type experiment struct {
	name string
	// run writes the experiment's text report.
	run func(ctx context.Context, ho harness.Options, w io.Writer) error
	// figure, when non-nil, marks the experiment CSV-capable and
	// produces the grid the CSV is derived from.
	figure func(ctx context.Context, ho harness.Options) (*harness.FigureResult, error)
}

// experiments is the registry, in the paper's presentation order.
// RunExperiment, ExperimentCSV, ExperimentNames, and
// CSVExperimentNames are all derived from it; registering a new
// experiment here is the only step needed to expose it everywhere.
var experiments = []experiment{
	{
		name: "table2",
		run: func(_ context.Context, ho harness.Options, w io.Writer) error {
			sp := renderSpan(ho, "table2")
			harness.RenderTable2(w)
			sp.End()
			return nil
		},
	},
	{
		name: "table3",
		run: func(ctx context.Context, ho harness.Options, w io.Writer) error {
			rows, err := harness.Table3(ctx, ho)
			if err != nil {
				return err
			}
			sp := renderSpan(ho, "table3")
			harness.RenderTable3(w, rows)
			sp.End()
			return nil
		},
	},
	{name: "fig5", figure: harness.Figure5},
	{
		name: "fig6",
		run: func(ctx context.Context, ho harness.Options, w io.Writer) error {
			f, err := harness.Figure6(ctx, ho, nil)
			if err != nil {
				return err
			}
			sp := renderSpan(ho, "fig6")
			harness.RenderFigure6(w, f)
			sp.End()
			return nil
		},
	},
	{name: "fig7", figure: harness.Figure7},
	{name: "fig8", figure: harness.Figure8},
	{name: "fig9", figure: harness.Figure9},
	{
		name: "model",
		run: func(ctx context.Context, ho harness.Options, w io.Writer) error {
			rows, err := harness.ModelStudy(ctx, ho)
			if err != nil {
				return err
			}
			sp := renderSpan(ho, "model")
			harness.RenderModelStudy(w, rows)
			sp.End()
			return nil
		},
	},
}

// renderFigure is the default text report for grid figures.
func (e experiment) renderFigure(ctx context.Context, ho harness.Options, w io.Writer) error {
	f, err := e.figure(ctx, ho)
	if err != nil {
		return err
	}
	sp := renderSpan(ho, e.name)
	harness.RenderFigure(w, f)
	sp.End()
	return nil
}

func lookupExperiment(name string) (experiment, error) {
	for _, e := range experiments {
		if e.name == name {
			return e, nil
		}
	}
	return experiment{}, fmt.Errorf("hbat: unknown experiment %q (known: %v)", name, ExperimentNames)
}

// ExperimentNames lists the experiments RunExperiment accepts, in the
// paper's presentation order (derived from the registry). "model" is
// this repository's addition: the paper's Section 2 analytical model
// fitted to every design (DESIGN.md's experiment index).
var ExperimentNames = func() []string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.name
	}
	return names
}()

// CSVExperimentNames lists the experiments ExperimentCSV accepts: the
// design-grid figures.
func CSVExperimentNames() []string {
	var names []string
	for _, e := range experiments {
		if e.figure != nil {
			names = append(names, e.name)
		}
	}
	return names
}

// RunExperiment regenerates one of the paper's evaluation artifacts
// and writes a text report to w, honoring ctx cancellation: a
// cancelled context stops dispatching queued simulations, interrupts
// in-flight ones at a cycle-granular check, and returns ctx.Err().
// Successive calls from one process share the package's sweep engine,
// so a spec that one experiment already simulated (for example Table
// 3's T4 column, a subset of Figure 5's grid) is served from cache.
// See ExperimentNames.
func RunExperiment(ctx context.Context, name string, o ExperimentOptions, w io.Writer) error {
	e, err := lookupExperiment(name)
	if err != nil {
		return err
	}
	ho, err := o.harness()
	if err != nil {
		return err
	}
	if e.run != nil {
		return e.run(ctx, ho, w)
	}
	return e.renderFigure(ctx, ho, w)
}

// RunExperimentContext regenerates one evaluation artifact.
//
// Deprecated: context-first RunExperiment is the canonical name;
// RunExperimentContext remains as a thin wrapper.
func RunExperimentContext(ctx context.Context, name string, o ExperimentOptions, w io.Writer) error {
	return RunExperiment(ctx, name, o, w)
}

// ExperimentCSV runs one of the design-grid experiments (see
// CSVExperimentNames) and writes machine-readable CSV for external
// plotting, honoring ctx cancellation.
func ExperimentCSV(ctx context.Context, name string, o ExperimentOptions, w io.Writer) error {
	e, err := lookupExperiment(name)
	if err != nil {
		return err
	}
	if e.figure == nil {
		return fmt.Errorf("hbat: no CSV form for experiment %q (CSV-capable: %v)", name, CSVExperimentNames())
	}
	ho, err := o.harness()
	if err != nil {
		return err
	}
	f, err := e.figure(ctx, ho)
	if err != nil {
		return err
	}
	sp := renderSpan(ho, e.name+".csv")
	harness.FigureCSV(w, f)
	sp.End()
	return nil
}

// ExperimentCSVContext runs one design-grid experiment as CSV.
//
// Deprecated: context-first ExperimentCSV is the canonical name;
// ExperimentCSVContext remains as a thin wrapper.
func ExperimentCSVContext(ctx context.Context, name string, o ExperimentOptions, w io.Writer) error {
	return ExperimentCSV(ctx, name, o, w)
}
