package hbat

import (
	"context"
	"encoding/json"
	"fmt"

	"hbat/api"
)

// Fabric is a handle to a sweep fabric: either a remote hbatd service
// or this process's shared engine. Both sides of the handle normalize
// specs identically (engine.SpecFromWire) and render artifacts through
// the same canonical form, so a caller cannot tell — byte for byte —
// where a result was simulated.
type Fabric struct {
	client *api.Client // nil in local mode
	// fallbackErr records why a Dial with a remote address ended up
	// local (see Remote).
	fallbackErr error
}

// Dial connects to the sweep fabric at addr (e.g.
// "http://127.0.0.1:9090"). An empty addr selects local mode — the
// process's shared engine — outright. A non-empty addr is probed with
// a version-checked ping; if the service is unreachable or speaks a
// different API version, Dial falls back to local mode rather than
// failing, and FallbackErr reports why. Simulation results are
// identical either way; only where the cycles burn differs.
func Dial(ctx context.Context, addr string) (*Fabric, error) {
	if addr == "" {
		return &Fabric{}, nil
	}
	c := api.NewClient(addr)
	if err := c.Ping(ctx); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return &Fabric{fallbackErr: fmt.Errorf("hbat: fabric %s unreachable, running locally: %w", addr, err)}, nil
	}
	return &Fabric{client: c}, nil
}

// Remote reports whether the fabric handle is backed by a remote
// service.
func (f *Fabric) Remote() bool { return f.client != nil }

// FallbackErr returns the reason a remote Dial fell back to local mode
// (nil when remote, or when local mode was requested).
func (f *Fabric) FallbackErr() error { return f.fallbackErr }

// SetTenant sets the tenant identity sent with remote requests. Local
// mode has no tenancy; the call is a no-op there.
func (f *Fabric) SetTenant(tenant string) {
	if f.client != nil {
		f.client.Tenant = tenant
	}
}

// Simulate runs one simulation through the fabric. In remote mode the
// spec travels as a one-spec job; the result is the server's stored
// artifact (which may have been simulated by another tenant entirely —
// that is the point). Observation-only options (Trace, IntervalEvery,
// Progress) do not cross the wire; requests carrying them are rejected
// in remote mode rather than silently dropped.
func (f *Fabric) Simulate(ctx context.Context, o Options) (*Result, error) {
	if f.client == nil {
		return Simulate(ctx, o)
	}
	if o.Trace != nil || o.IntervalEvery > 0 || o.Progress != nil {
		return nil, fmt.Errorf("hbat: Trace/IntervalEvery/Progress are local-only options; run them without a remote fabric")
	}
	acc, err := f.client.Submit(ctx, api.JobRequest{Specs: []api.SimOptions{o.wire()}})
	if err != nil {
		return nil, err
	}
	st, err := f.client.Wait(ctx, acc.ID)
	if err != nil {
		return nil, err
	}
	if len(st.Specs) != 1 {
		return nil, fmt.Errorf("hbat: fabric returned %d specs for a one-spec job", len(st.Specs))
	}
	sp := st.Specs[0]
	if sp.State == api.StateFailed || sp.Error != "" {
		return nil, fmt.Errorf("hbat: remote simulation failed: %s", sp.Error)
	}
	data, _, err := f.client.Result(ctx, sp.SpecKey)
	if err != nil {
		return nil, err
	}
	var wire api.Result
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("hbat: malformed remote artifact: %w", err)
	}
	return &Result{Result: wire}, nil
}
