package hbat

import (
	"context"
	"encoding/json"
	"fmt"

	"hbat/api"
	"hbat/internal/runspan"
)

// Fabric is a handle to a sweep fabric: either a remote hbatd service
// or this process's shared engine. Both sides of the handle normalize
// specs identically (engine.SpecFromWire) and render artifacts through
// the same canonical form, so a caller cannot tell — byte for byte —
// where a result was simulated.
type Fabric struct {
	client *api.Client // nil in local mode
	// fallbackErr records why a Dial with a remote address ended up
	// local (see Remote).
	fallbackErr error
}

// Dial connects to the sweep fabric at addr (e.g.
// "http://127.0.0.1:9090"). An empty addr selects local mode — the
// process's shared engine — outright. A non-empty addr is probed with
// a version-checked ping; if the service is unreachable or speaks a
// different API version, Dial falls back to local mode rather than
// failing, and FallbackErr reports why. Simulation results are
// identical either way; only where the cycles burn differs.
func Dial(ctx context.Context, addr string) (*Fabric, error) {
	if addr == "" {
		return &Fabric{}, nil
	}
	c := api.NewClient(addr)
	if err := c.Ping(ctx); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return &Fabric{fallbackErr: fmt.Errorf("hbat: fabric %s unreachable, running locally: %w", addr, err)}, nil
	}
	return &Fabric{client: c}, nil
}

// Remote reports whether the fabric handle is backed by a remote
// service.
func (f *Fabric) Remote() bool { return f.client != nil }

// FallbackErr returns the reason a remote Dial fell back to local mode
// (nil when remote, or when local mode was requested).
func (f *Fabric) FallbackErr() error { return f.fallbackErr }

// SetTenant sets the tenant identity sent with remote requests. Local
// mode has no tenancy; the call is a no-op there.
func (f *Fabric) SetTenant(tenant string) {
	if f.client != nil {
		f.client.Tenant = tenant
	}
}

// Simulate runs one simulation through the fabric. In remote mode the
// spec travels as a one-spec job; the result is the server's stored
// artifact (which may have been simulated by another tenant entirely —
// that is the point). Observation-only options (Trace, IntervalEvery,
// Progress) do not cross the wire; requests carrying them are rejected
// in remote mode rather than silently dropped.
//
// Every remote Simulate mints a fresh W3C-style trace context and
// sends it with the job, so the server's job > run > simulate span
// tree parents under this call's fabric_simulate span: one trace
// across both processes, retrievable from the server with
// Client.Spans (or `hbat-trace remote`) under Result.TraceID. The
// client-side spans (submit, poll_wait, fetch_result) land in this
// process's shared span tracer when one is attached (SetSpanTracer);
// the trace context is sent regardless, so server-side spans and logs
// are correlated even for an untraced client.
func (f *Fabric) Simulate(ctx context.Context, o Options) (*Result, error) {
	if f.client == nil {
		return Simulate(ctx, o)
	}
	if o.Trace != nil || o.IntervalEvery > 0 || o.Progress != nil {
		return nil, fmt.Errorf("hbat: Trace/IntervalEvery/Progress are local-only options; run them without a remote fabric")
	}
	tc := runspan.NewTraceContext()
	tr := Spans()
	var (
		ft   runspan.TraceID
		root *runspan.Span
	)
	if tr.Enabled() {
		// The client root carries its own wire span id (tc.SpanID) and
		// no remote parent: it is where the cross-process trace begins.
		ft = tr.NewTraceWith(tc.TraceID, tc.SpanID, "")
		root = tr.Start(ft, nil, "fabric_simulate").SetAttr("addr", f.client.Base)
		if o.Workload != "" {
			root.SetAttr("workload", o.Workload)
		}
		if o.Design != "" {
			root.SetAttr("design", o.Design)
		}
	}
	fail := func(err error) (*Result, error) {
		if root != nil {
			root.SetAttr("error", err.Error())
			root.End()
		}
		return nil, err
	}

	sub := tr.Start(ft, root, "submit")
	acc, err := f.client.Submit(ctx, api.JobRequest{
		Specs:       []api.SimOptions{o.wire()},
		Traceparent: tc.Traceparent(),
	})
	if err != nil {
		sub.End()
		return fail(err)
	}
	sub.SetAttr("job", acc.ID).End()

	wait := tr.Start(ft, root, "poll_wait")
	st, err := f.client.Wait(ctx, acc.ID)
	wait.End()
	if err != nil {
		return fail(err)
	}
	if len(st.Specs) != 1 {
		return fail(fmt.Errorf("hbat: fabric returned %d specs for a one-spec job", len(st.Specs)))
	}
	sp := st.Specs[0]
	if sp.State == api.StateFailed || sp.Error != "" {
		return fail(fmt.Errorf("hbat: remote simulation failed: %s", sp.Error))
	}

	fetch := tr.Start(ft, root, "fetch_result")
	data, _, err := f.client.Result(ctx, sp.SpecKey)
	fetch.End()
	if err != nil {
		return fail(err)
	}
	var wire api.Result
	if err := json.Unmarshal(data, &wire); err != nil {
		return fail(fmt.Errorf("hbat: malformed remote artifact: %w", err))
	}
	root.End()
	res := &Result{Result: wire, JobID: acc.ID, TraceID: acc.TraceID}
	if res.TraceID == "" {
		// A server predating span propagation does not echo the trace
		// id; the client-minted one still names the client-side spans.
		res.TraceID = tc.TraceID
	}
	return res, nil
}
