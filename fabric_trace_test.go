package hbat

// The distributed-tracing acceptance test: a Dial-submitted job
// against a live (in-process) hbatd service produces a client span
// journal and a server span journal sharing one trace id, with the
// server's job root parented under the client's fabric_simulate span
// and the engine's run tree under the job — and the two journals merge
// into one valid Perfetto timeline.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"hbat/api"
	"hbat/internal/engine"
	"hbat/internal/runspan"
	"hbat/internal/store"
	"hbat/internal/transport"
)

func TestFabricTraceEndToEnd(t *testing.T) {
	ctx := context.Background()

	// Server side: a fabric service whose engine shares the service
	// tracer, exactly as `hbatd -spans` wires it.
	srvTr := runspan.New(runspan.Config{})
	eng := engine.New()
	eng.SetSpans(srvTr)
	st, err := store.New(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := transport.New(transport.Config{Engine: eng, Store: st, Workers: 2, Spans: srvTr})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	// Client side: the facade's shared tracer, journaled to disk the
	// way a -spans CLI run is.
	cliJournal := filepath.Join(t.TempDir(), "client-spans.jsonl")
	cliTr := NewSpanTracer()
	if err := cliTr.OpenJournal(cliJournal); err != nil {
		t.Fatal(err)
	}
	SetSpanTracer(cliTr)
	defer SetSpanTracer(nil)

	f, err := Dial(ctx, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Remote() {
		t.Fatalf("Dial fell back to local: %v", f.FallbackErr())
	}
	res, err := f.Simulate(ctx, Options{
		CommonOptions: CommonOptions{Scale: "test"},
		Workload:      "compress",
		Design:        "T4",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.JobID == "" || len(res.TraceID) != 32 {
		t.Fatalf("result job/trace identity = %q/%q", res.JobID, res.TraceID)
	}
	if err := cliTr.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	// Both journals, read back the way hbat-trace remote reads them.
	raw, err := api.NewClient(ts.URL).Spans(ctx, res.JobID)
	if err != nil {
		t.Fatal(err)
	}
	srvHdr, srvSpans, err := runspan.ReadJournal(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("server journal: %v", err)
	}
	cf, err := os.Open(cliJournal)
	if err != nil {
		t.Fatal(err)
	}
	cliHdr, cliSpans, err := runspan.ReadJournal(cf)
	cf.Close()
	if err != nil {
		t.Fatalf("client journal: %v", err)
	}

	// One shared trace id on every span of both processes.
	for _, d := range append(append([]runspan.SpanData{}, cliSpans...), srvSpans...) {
		if d.TraceW3C != res.TraceID {
			t.Fatalf("span %q trace_id = %q, want %q", d.Name, d.TraceW3C, res.TraceID)
		}
	}

	// Parent/child linkage: client fabric_simulate <- server job <- run.
	var cliRoot, srvJob, srvRun *runspan.SpanData
	for i := range cliSpans {
		if cliSpans[i].Name == "fabric_simulate" && cliSpans[i].Parent == 0 {
			cliRoot = &cliSpans[i]
		}
	}
	for i := range srvSpans {
		switch {
		case srvSpans[i].Name == "job" && srvSpans[i].Parent == 0:
			srvJob = &srvSpans[i]
		case srvSpans[i].Name == "run" && srvSpans[i].Parent == 0:
			srvRun = &srvSpans[i]
		}
	}
	if cliRoot == nil || srvJob == nil || srvRun == nil {
		t.Fatalf("missing roots: client fabric_simulate %v, server job %v, server run %v",
			cliRoot != nil, srvJob != nil, srvRun != nil)
	}
	if cliRoot.SpanW3C == "" || srvJob.RemoteParent != cliRoot.SpanW3C {
		t.Fatalf("server job parented under %q, want client span %q", srvJob.RemoteParent, cliRoot.SpanW3C)
	}
	if srvRun.RemoteParent != srvJob.SpanW3C {
		t.Fatalf("server run parented under %q, want job span %q", srvRun.RemoteParent, srvJob.SpanW3C)
	}
	// The client's submit/poll/fetch phases and the server's simulate
	// phase all made it to their journals.
	names := map[string]bool{}
	for _, d := range cliSpans {
		names[d.Name] = true
	}
	for _, want := range []string{"submit", "poll_wait", "fetch_result"} {
		if !names[want] {
			t.Errorf("client journal missing %q span", want)
		}
	}
	names = map[string]bool{}
	for _, d := range srvSpans {
		names[d.Name] = true
	}
	for _, want := range []string{"queue_wait", "simulate"} {
		if !names[want] {
			t.Errorf("server journal missing %q span", want)
		}
	}

	// The merged timeline renders, links the processes, and is valid
	// trace-event JSON.
	var buf bytes.Buffer
	mst, err := runspan.WriteMergedPerfetto(&buf, []runspan.JournalPart{
		{Label: "client", Header: cliHdr, Spans: cliSpans},
		{Label: "hbatd", Header: srvHdr, Spans: srvSpans},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mst.Linked < 1 {
		t.Fatalf("merged timeline linked %d roots across processes, want >= 1", mst.Linked)
	}
	if mst.Spans[0] != len(cliSpans) || mst.Spans[1] != len(srvSpans) {
		t.Fatalf("merge stats %v, want [%d %d]", mst.Spans, len(cliSpans), len(srvSpans))
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged timeline is not valid trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(cliSpans)+len(srvSpans) {
		t.Fatalf("merged timeline has %d events for %d spans", len(doc.TraceEvents), len(cliSpans)+len(srvSpans))
	}
}
