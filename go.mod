module hbat

go 1.22
