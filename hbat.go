// Package hbat is the public API of the high-bandwidth address
// translation study: a reproduction of Austin & Sohi, "High-Bandwidth
// Address Translation for Multiple-Issue Processors" (ISCA 1996).
//
// The package wraps an execution-driven cycle simulator of the paper's
// baseline 8-way superscalar machine (Table 1), thirteen address-
// translation designs (Table 2: multi-ported, interleaved, multi-level,
// piggybacked, and pretranslation TLBs), and synthetic versions of the
// ten benchmarks of Table 3. Simulate runs one workload on one design;
// the Figure*/Table* functions regenerate the paper's evaluation
// artifacts. Lower-level building blocks (the TLB devices themselves,
// the pipelines, the program builder) live in internal/ packages and
// are exercised through this facade.
package hbat

import (
	"context"
	"fmt"
	"io"
	"time"

	"hbat/internal/cpu"
	"hbat/internal/harness"
	"hbat/internal/prog"
	"hbat/internal/ptrace"
	"hbat/internal/runspan"
	"hbat/internal/stats"
	"hbat/internal/tlb"
	"hbat/internal/workload"
)

// defaultEngine is the package's shared sweep engine: every simulation
// and experiment driven through the facade shares its workload build
// cache and RunSpec memoization, so regenerating several artifacts
// from one process builds each program once and simulates each unique
// spec once. Cached programs and results are immutable, which is what
// makes process-wide sharing safe.
var defaultEngine = harness.NewEngine()

// SweepCacheStats is a point-in-time read of the shared sweep engine's
// cache counters (workload builds and RunSpec memoization).
type SweepCacheStats = harness.CacheStats

// SweepStats returns the shared sweep engine's cache counters.
func SweepStats() SweepCacheStats { return defaultEngine.CacheStats() }

// SweepEngine returns the package's shared sweep engine, so callers
// can attach observability (structured logging, heartbeat, live
// /metrics scrapes) to the same engine the facade drives.
func SweepEngine() *harness.Engine { return defaultEngine }

// SetCheckpointDir makes the shared sweep engine persist fast-forward
// checkpoints under dir, so later processes skip the functional warm-up
// for specs they have already warmed. Call before the first simulation.
func SetCheckpointDir(dir string) { defaultEngine.CkptDir = dir }

// ResumeJournal attaches a crash-safe resume journal to the shared
// sweep engine: completed runs are appended as they finish, and runs
// already journaled by an interrupted sweep are served without
// re-simulating, reproducing the same artifacts byte-for-byte. Returns
// the number of runs resumed. Call before the first simulation.
func ResumeJournal(path string) (int, error) { return defaultEngine.SetJournal(path) }

// SpanTracer records per-run phase spans (program build, checkpoint,
// fast-forward, simulate, render, journal append) with cache and
// singleflight visibility; see internal/runspan. A nil tracer is the
// disabled tracer.
type SpanTracer = runspan.Tracer

// NewSpanTracer returns an enabled span tracer. Attach it with
// SetSpanTracer (or Engine.Spans directly), stream its journal with
// SpanTracer.OpenJournal, and export the merged Perfetto timeline
// with SpanTracer.WritePerfettoFile.
func NewSpanTracer() *SpanTracer { return runspan.New(runspan.Config{}) }

// SetSpanTracer attaches a span tracer to the shared sweep engine:
// every simulation driven through the facade emits one trace with a
// span per phase. Call before the first simulation; nil detaches.
func SetSpanTracer(t *SpanTracer) { defaultEngine.Spans = t }

// Spans returns the shared sweep engine's span tracer (nil when
// tracing is off).
func Spans() *SpanTracer { return defaultEngine.Spans }

// Manifest is the run-provenance record written alongside sweep
// artifacts; see harness.Manifest.
type Manifest = harness.Manifest

// NewManifest returns a manifest stamped with the current build's
// identity (go version, VCS revision when available) and time.
func NewManifest(tool string) *Manifest { return harness.NewManifest(tool, time.Now()) }

// Options selects what Simulate runs.
type Options struct {
	// Workload is one of Workloads() (default "compress").
	Workload string
	// Design is one of Designs() (default "T4").
	Design string
	// PageSize is the virtual-memory page size (default 4096; the
	// paper evaluates 4096 and 8192).
	PageSize uint64
	// InOrder selects the in-order issue model (default out-of-order).
	InOrder bool
	// FewRegisters recompiles the workload for 8 int / 8 fp registers
	// (the paper's Figure 9 configuration).
	FewRegisters bool
	// VirtualCache switches to a virtually-indexed data cache, where
	// translation is needed only on cache misses (the alternative the
	// paper's Section 3 discusses and sets aside).
	VirtualCache bool
	// ContextSwitchEvery, when non-zero, flushes all translation state
	// every N committed instructions (multiprogramming pressure).
	ContextSwitchEvery uint64
	// Scale is "test", "small", or "full" (default "small").
	Scale string
	// Seed drives every randomized structure (default 1).
	Seed uint64
	// MaxInsts optionally caps committed instructions (0 = run to
	// completion).
	MaxInsts uint64
	// FastForward, when positive, executes the first N instructions
	// functionally (warming TLB, cache, and predictor state) and
	// measures only the remainder cycle-accurately — the two-phase
	// methodology. Reported statistics cover the measurement window
	// only. N must be smaller than the workload's instruction count.
	FastForward uint64
	// FFwdEngine selects the functional engine for the fast-forward
	// warm-up: "" or "sblock" for the superblock-translated engine,
	// "interp" for the reference interpreter. Both engines produce
	// byte-identical checkpoints and statistics — the choice affects
	// warm-up wall time only.
	FFwdEngine string
	// Lockstep runs the golden-model differential checker alongside the
	// pipeline: any divergence of architected state from the functional
	// emulator is returned as an error instead of skewing statistics.
	Lockstep bool
	// Trace, when non-nil, records pipeline events during the run; the
	// captured trace is returned as Result.Trace.
	Trace *TraceOptions
	// IntervalEvery, when positive, samples an interval time-series row
	// (IPC, TLB miss rate, ROB occupancy, port queue depth) every N
	// cycles into Result.Intervals.
	IntervalEvery int64
	// Progress, when non-nil, is invoked every ProgressEvery cycles
	// (default ~1M) with live cycle/instruction counts — a heartbeat for
	// long runs.
	Progress      func(cycle int64, committed uint64)
	ProgressEvery int64
}

// TraceOptions bounds a pipeline-event recording (see internal/ptrace).
type TraceOptions struct {
	// Buffer is the ring-buffer capacity in events (default 65536);
	// oldest events are overwritten once it fills.
	Buffer int
	// Start and End bound the recorded cycle range, inclusive
	// (Start<=1 means from the beginning; End 0 means to the end).
	Start, End int64
}

// PipelineTrace is a captured pipeline event recording. Export it with
// its WritePerfetto (Chrome/Perfetto trace-event JSON for
// ui.perfetto.dev), WriteKonata (Konata pipeline-viewer log), or
// WriteSummary (plain-text stall report) methods.
type PipelineTrace = ptrace.Recorder

// IntervalSeries is a sampled time series of run metrics; export it
// with WriteCSV.
type IntervalSeries = stats.IntervalSeries

// MetricsSnapshot is a point-in-time export of a run's metrics registry
// (counters, gauges, and histograms; see internal/stats). It marshals
// to stable JSON and CSV via WriteJSON and WriteCSV.
type MetricsSnapshot = stats.Snapshot

// Result reports one simulation.
type Result struct {
	Design   string
	Workload string

	Cycles       int64
	Instructions uint64
	Loads        uint64
	Stores       uint64
	// FastForwarded is the number of instructions executed functionally
	// before cycle-accurate measurement began (Options.FastForward);
	// every other field covers the measurement window only.
	FastForwarded uint64

	IPC            float64
	IssueIPC       float64
	MemPerCycle    float64
	BranchPredRate float64

	// Address-translation behaviour.
	TLBLookups    uint64
	TLBMisses     uint64
	TLBWalks      uint64
	Piggybacks    uint64
	ShieldHits    uint64
	NoPortRetries uint64
	StatusWrites  uint64

	// Stall breakdown (cycles).
	FetchStallCycles  int64
	DispatchTLBStalls int64
	DispatchROBFull   int64
	DispatchLSQFull   int64

	// Metrics is the run's full metrics-registry export: queue-depth
	// and translation-latency distributions, replay and squash counts,
	// and per-cause stall cycles.
	Metrics MetricsSnapshot

	// Trace is the captured pipeline recording (nil unless
	// Options.Trace was set).
	Trace *PipelineTrace
	// Intervals is the sampled time series (nil unless
	// Options.IntervalEvery was positive).
	Intervals *IntervalSeries
}

func parseScale(s string) (workload.Scale, error) {
	switch s {
	case "", "small":
		return workload.ScaleSmall, nil
	case "test":
		return workload.ScaleTest, nil
	case "full":
		return workload.ScaleFull, nil
	}
	return 0, fmt.Errorf("hbat: unknown scale %q (test, small, full)", s)
}

func (o Options) spec() (harness.RunSpec, error) {
	scale, err := parseScale(o.Scale)
	if err != nil {
		return harness.RunSpec{}, err
	}
	spec := harness.RunSpec{
		Workload:    o.Workload,
		Design:      o.Design,
		Budget:      prog.Budget32,
		Scale:       scale,
		PageSize:    o.PageSize,
		InOrder:     o.InOrder,
		Seed:        o.Seed,
		MaxInsts:    o.MaxInsts,
		FastForward: o.FastForward,
		FFwdEngine:  o.FFwdEngine,
	}
	if spec.Workload == "" {
		spec.Workload = "compress"
	}
	if spec.Design == "" {
		spec.Design = "T4"
	}
	if spec.PageSize == 0 {
		spec.PageSize = 4096
	}
	if o.FewRegisters {
		spec.Budget = prog.Budget8
	}
	spec.VirtualCache = o.VirtualCache
	spec.ContextSwitchEvery = o.ContextSwitchEvery
	spec.Lockstep = o.Lockstep
	if o.Trace != nil {
		spec.Trace = &ptrace.Config{Cap: o.Trace.Buffer, Start: o.Trace.Start, End: o.Trace.End}
	}
	spec.IntervalEvery = o.IntervalEvery
	spec.Progress = o.Progress
	spec.ProgressEvery = o.ProgressEvery
	return spec, nil
}

// validateNames rejects unknown workload or design names up front,
// before the (comparatively expensive) program build, with errors that
// name the valid choices.
func validateNames(spec harness.RunSpec) error {
	if _, err := workload.ByName(spec.Workload); err != nil {
		return err
	}
	if _, err := tlb.LookupSpec(spec.Design); err != nil {
		return err
	}
	return nil
}

// Simulate runs one workload on one translation design and returns the
// run's statistics. It is SimulateContext with a background context.
func Simulate(o Options) (*Result, error) {
	return SimulateContext(context.Background(), o)
}

// SimulateContext runs one workload on one translation design,
// honoring ctx: a cancelled context interrupts the simulation at a
// cycle-granular check and returns ctx.Err(). Deterministic,
// untraced runs are memoized process-wide, so repeating an identical
// simulation returns immediately.
func SimulateContext(ctx context.Context, o Options) (*Result, error) {
	spec, err := o.spec()
	if err != nil {
		return nil, err
	}
	if err := validateNames(spec); err != nil {
		return nil, err
	}
	r := defaultEngine.Run(ctx, spec)
	if r.Err != nil {
		return nil, r.Err
	}
	return &Result{
		Design:         spec.Design,
		Workload:       spec.Workload,
		Cycles:         r.Stats.Cycles,
		Instructions:   r.Stats.Committed,
		FastForwarded:  r.Stats.FastForwarded,
		Loads:          r.Stats.CommittedLoads,
		Stores:         r.Stats.CommittedStores,
		IPC:            r.Stats.IPC(),
		IssueIPC:       r.Stats.IssueIPC(),
		MemPerCycle:    r.Stats.MemPerCycle(),
		BranchPredRate: r.Stats.BranchRate(),
		TLBLookups:     r.TLB.Lookups,
		TLBMisses:      r.TLB.Misses,
		TLBWalks:       r.TLB.Fills,
		Piggybacks:     r.TLB.Piggybacks,
		ShieldHits:     r.TLB.ShieldHits,
		NoPortRetries:  r.TLB.NoPorts,
		StatusWrites:   r.TLB.StatusWrites,

		FetchStallCycles:  r.Stats.FetchStallCycles,
		DispatchTLBStalls: r.Stats.DispatchTLBStalls,
		DispatchROBFull:   r.Stats.DispatchROBFull,
		DispatchLSQFull:   r.Stats.DispatchLSQFull,

		Metrics:   r.Metrics,
		Trace:     r.Trace,
		Intervals: r.Intervals,
	}, nil
}

// Designs returns the Table 2 design mnemonics in figure order.
func Designs() []string {
	out := make([]string, len(tlb.DesignOrder))
	copy(out, tlb.DesignOrder)
	return out
}

// DesignDescription returns the Table 2 description of a mnemonic.
func DesignDescription(mnemonic string) (string, error) {
	s, err := tlb.LookupSpec(mnemonic)
	if err != nil {
		return "", err
	}
	return s.Description, nil
}

// Workloads returns the benchmark names in Table 3 order.
func Workloads() []string { return workload.Names() }

// WorkloadDescription returns what the named synthetic workload models.
func WorkloadDescription(name string) (string, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return "", err
	}
	return w.Model, nil
}

// RunProgress reports one completed simulation inside an experiment
// grid.
type RunProgress struct {
	// Done runs have finished out of Total.
	Done, Total int
	// Spec labels the run that just finished
	// (workload/design/mode/pages/budget).
	Spec string
	// Wall is that run's wall time; Cached reports it was served from
	// the process-wide result cache instead of being simulated.
	Wall   time.Duration
	Cached bool
	// Elapsed is wall time since the experiment started; ETA estimates
	// the remaining wall time (zero until the scheduler has data).
	Elapsed, ETA time.Duration
}

// ExperimentOptions configures a full-grid experiment.
type ExperimentOptions struct {
	// Scale is "test", "small", or "full" (default "small").
	Scale string
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Seed drives randomized structures (default 1).
	Seed uint64
	// FastForward applies the two-phase methodology to every timing run
	// in the grid: the first N instructions execute functionally (one
	// warmed checkpoint per workload, shared across all designs) and
	// statistics cover only the remainder. Zero runs from reset.
	FastForward uint64
	// FFwdEngine selects the functional engine for the warm-ups
	// ("" or "sblock" = superblock-translated, "interp" = reference
	// interpreter); results are byte-identical either way.
	FFwdEngine string
	// Workloads/Designs restrict the grid (nil = everything).
	Workloads []string
	Designs   []string
	// NoCache bypasses the process-wide sweep engine: every program is
	// rebuilt and every spec re-simulated. Exists for benchmarking the
	// caches (see cmd/hbat-bench-sweep); production callers want the
	// default.
	NoCache bool
	// Progress, when non-nil, is called after each completed run.
	Progress func(RunProgress)
}

func (o ExperimentOptions) harness() (harness.Options, error) {
	scale, err := parseScale(o.Scale)
	if err != nil {
		return harness.Options{}, err
	}
	ho := harness.Options{
		Scale:       scale,
		Parallelism: o.Parallelism,
		Seed:        o.Seed,
		FastForward: o.FastForward,
		FFwdEngine:  o.FFwdEngine,
		Workloads:   o.Workloads,
		Designs:     o.Designs,
		Engine:      defaultEngine,
	}
	if o.NoCache {
		e := harness.NewEngine()
		e.NoBuildCache = true
		e.NoMemo = true
		ho.Engine = e
	}
	if o.Progress != nil {
		p := o.Progress
		ho.Progress = func(hp harness.Progress) {
			rp := RunProgress{
				Done: hp.Done, Total: hp.Total,
				Elapsed: hp.Elapsed, ETA: hp.ETA,
			}
			if hp.Result != nil {
				rp.Spec = hp.Result.Spec.String()
				rp.Wall = hp.Result.Wall
				rp.Cached = hp.Result.Cached
			}
			p(rp)
		}
	}
	return ho, nil
}

// Disassemble writes a listing of the named workload's generated code
// (labels, spill code, data segments) under the given register budget —
// development tooling for inspecting what the program builder emits.
func Disassemble(workloadName, scale string, fewRegisters bool, w io.Writer) error {
	sc, err := parseScale(scale)
	if err != nil {
		return err
	}
	wl, err := workload.ByName(workloadName)
	if err != nil {
		return err
	}
	budget := prog.Budget32
	if fewRegisters {
		budget = prog.Budget8
	}
	p, err := wl.Build(budget, sc)
	if err != nil {
		return err
	}
	p.Disassemble(w)
	return nil
}

// BaselineConfig returns a rendering of the Table 1 baseline machine.
func BaselineConfig() string {
	c := cpu.DefaultConfig()
	return fmt.Sprintf(`Baseline simulation model (Table 1):
  fetch:      %d insts/cycle from one I-cache block, <=%d predictions (collapsing buffer)
  issue:      %d ops/cycle, %d-entry ROB, %d-entry load/store queue
  commit:     %d ops/cycle
  FUs:        %d int ALU, %d load/store, %d FP add, 1 int MULT/DIV, 1 FP MULT/DIV
  latencies:  int %d, load %d, int mult %d, int div %d, fp add %d, fp mult %d, fp div %d
  predictor:  GAp, %d-bit global history, %d-entry PHT, %d-cycle mispredict penalty
  I-cache:    %dk %d-way, %dB blocks, %d-cycle miss
  D-cache:    %dk %d-way, %dB blocks, %d-cycle miss, %d ports, non-blocking, write-back
  VM:         %d-byte pages, %d-cycle TLB miss latency (after earlier insts complete)`,
		c.FetchWidth, c.MaxBranchesPerFetch,
		c.IssueWidth, c.ROBSize, c.LSQSize,
		c.CommitWidth,
		c.IntALUs, c.LdStUnits, c.FPAdders,
		c.IntALULat, c.LoadLat, c.IntMultLat, c.IntDivLat, c.FPAddLat, c.FPMultLat, c.FPDivLat,
		c.Branch.HistoryBits, c.Branch.PHTEntries, c.Branch.MispredictPenalty,
		c.ICache.SizeBytes>>10, c.ICache.Assoc, c.ICache.BlockBytes, c.ICache.MissLatency,
		c.DCache.SizeBytes>>10, c.DCache.Assoc, c.DCache.BlockBytes, c.DCache.MissLatency, c.DCache.Ports,
		c.PageSize, c.TLBMissLatency)
}
