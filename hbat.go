// Package hbat is the public API of the high-bandwidth address
// translation study: a reproduction of Austin & Sohi, "High-Bandwidth
// Address Translation for Multiple-Issue Processors" (ISCA 1996).
//
// The package wraps an execution-driven cycle simulator of the paper's
// baseline 8-way superscalar machine (Table 1), thirteen address-
// translation designs (Table 2: multi-ported, interleaved, multi-level,
// piggybacked, and pretranslation TLBs), and synthetic versions of the
// ten benchmarks of Table 3. Simulate runs one workload on one design;
// the Figure*/Table* functions regenerate the paper's evaluation
// artifacts. Lower-level building blocks (the TLB devices themselves,
// the pipelines, the program builder) live in internal/ packages and
// are exercised through this facade.
package hbat

import (
	"context"
	"fmt"
	"io"
	"time"

	"hbat/api"
	"hbat/internal/cpu"
	"hbat/internal/engine"
	"hbat/internal/harness"
	"hbat/internal/prog"
	"hbat/internal/ptrace"
	"hbat/internal/runspan"
	"hbat/internal/stats"
	"hbat/internal/tlb"
	"hbat/internal/workload"
)

// defaultEngine is the package's shared sweep engine: every simulation
// and experiment driven through the facade shares its workload build
// cache and RunSpec memoization, so regenerating several artifacts
// from one process builds each program once and simulates each unique
// spec once. Cached programs and results are immutable, which is what
// makes process-wide sharing safe.
var defaultEngine = harness.NewEngine()

// SweepCacheStats is a point-in-time read of the shared sweep engine's
// cache counters (workload builds and RunSpec memoization).
type SweepCacheStats = harness.CacheStats

// SweepStats returns the shared sweep engine's cache counters.
func SweepStats() SweepCacheStats { return defaultEngine.CacheStats() }

// SweepEngine returns the package's shared sweep engine, so callers
// can attach observability (structured logging, heartbeat, live
// /metrics scrapes) to the same engine the facade drives.
func SweepEngine() *harness.Engine { return defaultEngine }

// ErrEngineStarted is returned by the result-affecting
// engine-configuration functions (SetCheckpointDir, ResumeJournal)
// once the shared engine has executed work: that configuration is
// frozen at first use so a concurrent sweep never observes a
// half-applied change.
var ErrEngineStarted = harness.ErrStarted

// SetCheckpointDir makes the shared sweep engine persist fast-forward
// checkpoints under dir, so later processes skip the functional warm-up
// for specs they have already warmed. Must be called before the first
// simulation; afterwards it returns ErrEngineStarted.
func SetCheckpointDir(dir string) error { return defaultEngine.SetCheckpointDir(dir) }

// ResumeJournal attaches a crash-safe resume journal to the shared
// sweep engine: completed runs are appended as they finish, and runs
// already journaled by an interrupted sweep are served without
// re-simulating, reproducing the same artifacts byte-for-byte. Returns
// the number of runs resumed. Must be called before the first
// simulation; afterwards it returns ErrEngineStarted.
func ResumeJournal(path string) (int, error) { return defaultEngine.SetJournal(path) }

// SpanTracer records per-run phase spans (program build, checkpoint,
// fast-forward, simulate, render, journal append) with cache and
// singleflight visibility; see internal/runspan. A nil tracer is the
// disabled tracer.
type SpanTracer = runspan.Tracer

// NewSpanTracer returns an enabled span tracer. Attach it with
// SetSpanTracer (or Engine.SetSpans), stream its journal with
// SpanTracer.OpenJournal, and export the merged Perfetto timeline
// with SpanTracer.WritePerfettoFile.
func NewSpanTracer() *SpanTracer { return runspan.New(runspan.Config{}) }

// SetSpanTracer attaches a span tracer to the shared sweep engine:
// every simulation driven through the facade emits one trace with a
// span per phase. Safe at any time, including while a sweep is
// running; nil detaches.
func SetSpanTracer(t *SpanTracer) { defaultEngine.SetSpans(t) }

// Spans returns the shared sweep engine's span tracer (nil when
// tracing is off).
func Spans() *SpanTracer { return defaultEngine.Spans() }

// Manifest is the run-provenance record written alongside sweep
// artifacts; see harness.Manifest.
type Manifest = harness.Manifest

// NewManifest returns a manifest stamped with the current build's
// identity (go version, VCS revision when available) and time.
func NewManifest(tool string) *Manifest { return harness.NewManifest(tool, time.Now()) }

// CommonOptions is the option set shared by every entry point — one
// run (Options), a grid (ExperimentOptions), or a remote job
// (api.SimOptions): workload scale, seed, and the two-phase
// fast-forward knobs. It is the wire type api.CommonOptions, so the
// CLI, the facade, and the hbatd service all marshal the same struct.
type CommonOptions = api.CommonOptions

// Options selects what Simulate runs. The embedded CommonOptions
// carries Scale, Seed, FastForward, and FFwdEngine.
type Options struct {
	CommonOptions

	// Workload is one of Workloads() (default "compress").
	Workload string
	// Design is one of Designs() (default "T4").
	Design string
	// PageSize is the virtual-memory page size (default 4096; the
	// paper evaluates 4096 and 8192).
	PageSize uint64
	// InOrder selects the in-order issue model (default out-of-order).
	InOrder bool
	// FewRegisters recompiles the workload for 8 int / 8 fp registers
	// (the paper's Figure 9 configuration).
	FewRegisters bool
	// VirtualCache switches to a virtually-indexed data cache, where
	// translation is needed only on cache misses (the alternative the
	// paper's Section 3 discusses and sets aside).
	VirtualCache bool
	// ContextSwitchEvery, when non-zero, flushes all translation state
	// every N committed instructions (multiprogramming pressure).
	ContextSwitchEvery uint64
	// MaxInsts optionally caps committed instructions (0 = run to
	// completion).
	MaxInsts uint64
	// Lockstep runs the golden-model differential checker alongside the
	// pipeline: any divergence of architected state from the functional
	// emulator is returned as an error instead of skewing statistics.
	Lockstep bool
	// Trace, when non-nil, records pipeline events during the run; the
	// captured trace is returned as Result.Trace.
	Trace *TraceOptions
	// IntervalEvery, when positive, samples an interval time-series row
	// (IPC, TLB miss rate, ROB occupancy, port queue depth) every N
	// cycles into Result.Intervals.
	IntervalEvery int64
	// Progress, when non-nil, is invoked every ProgressEvery cycles
	// (default ~1M) with live cycle/instruction counts — a heartbeat for
	// long runs.
	Progress      func(cycle int64, committed uint64)
	ProgressEvery int64
}

// TraceOptions bounds a pipeline-event recording (see internal/ptrace).
type TraceOptions struct {
	// Buffer is the ring-buffer capacity in events (default 65536);
	// oldest events are overwritten once it fills.
	Buffer int
	// Start and End bound the recorded cycle range, inclusive
	// (Start<=1 means from the beginning; End 0 means to the end).
	Start, End int64
}

// PipelineTrace is a captured pipeline event recording. Export it with
// its WritePerfetto (Chrome/Perfetto trace-event JSON for
// ui.perfetto.dev), WriteKonata (Konata pipeline-viewer log), or
// WriteSummary (plain-text stall report) methods.
type PipelineTrace = ptrace.Recorder

// IntervalSeries is a sampled time series of run metrics; export it
// with WriteCSV.
type IntervalSeries = stats.IntervalSeries

// MetricsSnapshot is a point-in-time export of a run's metrics registry
// (counters, gauges, and histograms; see internal/stats). It marshals
// to stable JSON and CSV via WriteJSON and WriteCSV.
type MetricsSnapshot = stats.Snapshot

// Result reports one simulation. The embedded api.Result carries the
// deterministic outcome fields (cycles, IPC, TLB behaviour, stall
// breakdown) in their canonical wire form; Artifact renders exactly
// those bytes, so a facade run and an hbatd-served result for the same
// spec are comparable byte-for-byte.
type Result struct {
	api.Result

	// Metrics is the run's full metrics-registry export: queue-depth
	// and translation-latency distributions, replay and squash counts,
	// and per-cause stall cycles. Local runs only — it does not cross
	// the wire.
	Metrics MetricsSnapshot

	// Trace is the captured pipeline recording (nil unless
	// Options.Trace was set).
	Trace *PipelineTrace
	// Intervals is the sampled time series (nil unless
	// Options.IntervalEvery was positive).
	Intervals *IntervalSeries

	// JobID and TraceID identify the remote job that produced this
	// result (remote Fabric.Simulate only; empty for local runs).
	// TraceID is the cross-process trace id shared by the client's
	// fabric_simulate span and the server's job/run spans — the handle
	// `hbat-trace remote` merges journals by.
	JobID   string
	TraceID string
}

// Artifact renders the result's canonical artifact: the indented JSON
// of the embedded api.Result with a trailing newline — the exact bytes
// GET /v1/results/{speckey} serves for the same spec.
func (r *Result) Artifact() []byte { return engine.Artifact(r.Result) }

func parseScale(s string) (workload.Scale, error) {
	sc, err := engine.ParseScale(s)
	if err != nil {
		return 0, fmt.Errorf("hbat: %w", err)
	}
	return sc, nil
}

// wire lowers the options to their wire form: the outcome-affecting
// fields an hbatd job carries. Observation-only options (Trace,
// IntervalEvery, Progress) are deliberately absent — they never cross
// the wire.
func (o Options) wire() api.SimOptions {
	return api.SimOptions{
		CommonOptions:      o.CommonOptions,
		Workload:           o.Workload,
		Design:             o.Design,
		PageSize:           o.PageSize,
		InOrder:            o.InOrder,
		FewRegisters:       o.FewRegisters,
		VirtualCache:       o.VirtualCache,
		ContextSwitchEvery: o.ContextSwitchEvery,
		MaxInsts:           o.MaxInsts,
		Lockstep:           o.Lockstep,
	}
}

func (o Options) spec() (harness.RunSpec, error) {
	spec, err := engine.SpecFromWire(o.wire())
	if err != nil {
		return harness.RunSpec{}, fmt.Errorf("hbat: %w", err)
	}
	if o.Trace != nil {
		spec.Trace = &ptrace.Config{Cap: o.Trace.Buffer, Start: o.Trace.Start, End: o.Trace.End}
	}
	spec.IntervalEvery = o.IntervalEvery
	spec.Progress = o.Progress
	spec.ProgressEvery = o.ProgressEvery
	return spec, nil
}

// Simulate runs one workload on one translation design and returns the
// run's statistics, honoring ctx: a cancelled context interrupts the
// simulation at a cycle-granular check and returns ctx.Err().
// Deterministic, untraced runs are memoized process-wide, so repeating
// an identical simulation returns immediately.
func Simulate(ctx context.Context, o Options) (*Result, error) {
	spec, err := o.spec()
	if err != nil {
		return nil, err
	}
	r := defaultEngine.Run(ctx, spec)
	if r.Err != nil {
		return nil, r.Err
	}
	return &Result{
		Result:    engine.Wire(r),
		Metrics:   r.Metrics,
		Trace:     r.Trace,
		Intervals: r.Intervals,
	}, nil
}

// SimulateContext runs one workload on one translation design.
//
// Deprecated: context-first Simulate is the canonical name;
// SimulateContext remains as a thin wrapper.
func SimulateContext(ctx context.Context, o Options) (*Result, error) {
	return Simulate(ctx, o)
}

// Designs returns the Table 2 design mnemonics in figure order.
func Designs() []string {
	out := make([]string, len(tlb.DesignOrder))
	copy(out, tlb.DesignOrder)
	return out
}

// DesignDescription returns the Table 2 description of a mnemonic.
func DesignDescription(mnemonic string) (string, error) {
	s, err := tlb.LookupSpec(mnemonic)
	if err != nil {
		return "", err
	}
	return s.Description, nil
}

// Workloads returns the benchmark names in Table 3 order.
func Workloads() []string { return workload.Names() }

// WorkloadDescription returns what the named synthetic workload models.
func WorkloadDescription(name string) (string, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return "", err
	}
	return w.Model, nil
}

// RunProgress reports one completed simulation inside an experiment
// grid.
type RunProgress struct {
	// Done runs have finished out of Total.
	Done, Total int
	// Spec labels the run that just finished
	// (workload/design/mode/pages/budget).
	Spec string
	// Wall is that run's wall time; Cached reports it was served from
	// the process-wide result cache instead of being simulated.
	Wall   time.Duration
	Cached bool
	// Elapsed is wall time since the experiment started; ETA estimates
	// the remaining wall time (zero until the scheduler has data).
	Elapsed, ETA time.Duration
}

// ExperimentOptions configures a full-grid experiment. The embedded
// CommonOptions carries Scale, Seed, FastForward, and FFwdEngine —
// the same struct Options embeds, so single runs, grids, and remote
// jobs share one option vocabulary.
type ExperimentOptions struct {
	CommonOptions

	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Workloads/Designs restrict the grid (nil = everything).
	Workloads []string
	Designs   []string
	// NoCache bypasses the process-wide sweep engine: every program is
	// rebuilt and every spec re-simulated. Exists for benchmarking the
	// caches (see cmd/hbat-bench-sweep); production callers want the
	// default.
	NoCache bool
	// Progress, when non-nil, is called after each completed run.
	Progress func(RunProgress)
}

func (o ExperimentOptions) harness() (harness.Options, error) {
	scale, err := parseScale(o.Scale)
	if err != nil {
		return harness.Options{}, err
	}
	ho := harness.Options{
		Scale:       scale,
		Parallelism: o.Parallelism,
		Seed:        o.Seed,
		FastForward: o.FastForward,
		FFwdEngine:  o.FFwdEngine,
		Workloads:   o.Workloads,
		Designs:     o.Designs,
		Engine:      defaultEngine,
	}
	if o.NoCache {
		ho.Engine = harness.NewEngine(harness.WithoutBuildCache(), harness.WithoutMemo())
	}
	if o.Progress != nil {
		p := o.Progress
		ho.Progress = func(hp harness.Progress) {
			rp := RunProgress{
				Done: hp.Done, Total: hp.Total,
				Elapsed: hp.Elapsed, ETA: hp.ETA,
			}
			if hp.Result != nil {
				rp.Spec = hp.Result.Spec.String()
				rp.Wall = hp.Result.Wall
				rp.Cached = hp.Result.Cached
			}
			p(rp)
		}
	}
	return ho, nil
}

// Disassemble writes a listing of the named workload's generated code
// (labels, spill code, data segments) under the given register budget —
// development tooling for inspecting what the program builder emits.
func Disassemble(workloadName, scale string, fewRegisters bool, w io.Writer) error {
	sc, err := parseScale(scale)
	if err != nil {
		return err
	}
	wl, err := workload.ByName(workloadName)
	if err != nil {
		return err
	}
	budget := prog.Budget32
	if fewRegisters {
		budget = prog.Budget8
	}
	p, err := wl.Build(budget, sc)
	if err != nil {
		return err
	}
	p.Disassemble(w)
	return nil
}

// BaselineConfig returns a rendering of the Table 1 baseline machine.
func BaselineConfig() string {
	c := cpu.DefaultConfig()
	return fmt.Sprintf(`Baseline simulation model (Table 1):
  fetch:      %d insts/cycle from one I-cache block, <=%d predictions (collapsing buffer)
  issue:      %d ops/cycle, %d-entry ROB, %d-entry load/store queue
  commit:     %d ops/cycle
  FUs:        %d int ALU, %d load/store, %d FP add, 1 int MULT/DIV, 1 FP MULT/DIV
  latencies:  int %d, load %d, int mult %d, int div %d, fp add %d, fp mult %d, fp div %d
  predictor:  GAp, %d-bit global history, %d-entry PHT, %d-cycle mispredict penalty
  I-cache:    %dk %d-way, %dB blocks, %d-cycle miss
  D-cache:    %dk %d-way, %dB blocks, %d-cycle miss, %d ports, non-blocking, write-back
  VM:         %d-byte pages, %d-cycle TLB miss latency (after earlier insts complete)`,
		c.FetchWidth, c.MaxBranchesPerFetch,
		c.IssueWidth, c.ROBSize, c.LSQSize,
		c.CommitWidth,
		c.IntALUs, c.LdStUnits, c.FPAdders,
		c.IntALULat, c.LoadLat, c.IntMultLat, c.IntDivLat, c.FPAddLat, c.FPMultLat, c.FPDivLat,
		c.Branch.HistoryBits, c.Branch.PHTEntries, c.Branch.MispredictPenalty,
		c.ICache.SizeBytes>>10, c.ICache.Assoc, c.ICache.BlockBytes, c.ICache.MissLatency,
		c.DCache.SizeBytes>>10, c.DCache.Assoc, c.DCache.BlockBytes, c.DCache.MissLatency, c.DCache.Ports,
		c.PageSize, c.TLBMissLatency)
}
