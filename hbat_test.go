package hbat

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestSimulateDefaults(t *testing.T) {
	res, err := Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "compress" || res.Design != "T4" {
		t.Fatalf("defaults: %s/%s", res.Workload, res.Design)
	}
	if res.IPC <= 0 || res.Instructions == 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}, Workload: "nope"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}, Design: "nope"}); err == nil {
		t.Error("unknown design accepted")
	}
	if _, err := Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "nope"}}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestSimulateUnknownNamesListChoices(t *testing.T) {
	_, err := Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}, Workload: "nope"})
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(err.Error(), "compress") {
		t.Errorf("workload error does not list valid names: %v", err)
	}
	_, err = Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}, Design: "Z9"})
	if err == nil {
		t.Fatal("unknown design accepted")
	}
	if !strings.Contains(err.Error(), "T4") {
		t.Errorf("design error does not list valid names: %v", err)
	}
}

func TestSimulateContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimulateContext(ctx, Options{CommonOptions: CommonOptions{Scale: "test"}}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestSweepStatsAccumulate(t *testing.T) {
	if _, err := Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}, Workload: "perl", Design: "T4"}); err != nil {
		t.Fatal(err)
	}
	s := SweepStats()
	if s.BuildHits+s.BuildMisses == 0 {
		t.Error("no build-cache activity recorded on the process engine")
	}
	if s.SpecHits+s.SpecMisses == 0 {
		t.Error("no memo activity recorded on the process engine")
	}
}

func TestSimulateVariants(t *testing.T) {
	base, err := Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}, Workload: "perl", Design: "T1"})
	if err != nil {
		t.Fatal(err)
	}
	inorder, err := Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}, Workload: "perl", Design: "T1", InOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if inorder.IPC >= base.IPC {
		t.Errorf("in-order IPC %.3f not below OoO %.3f", inorder.IPC, base.IPC)
	}
	few, err := Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}, Workload: "perl", Design: "T1", FewRegisters: true})
	if err != nil {
		t.Fatal(err)
	}
	if few.Loads+few.Stores <= base.Loads+base.Stores {
		t.Error("few-registers build did not raise memory traffic")
	}
	big, err := Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}, Workload: "perl", Design: "M4", PageSize: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if big.TLBWalks == 0 && base.TLBWalks > 0 {
		t.Log("8k pages eliminated all walks (fine)")
	}
	capped, err := Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}, Workload: "perl", MaxInsts: 500})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Instructions < 500 || capped.Instructions > 600 {
		t.Errorf("MaxInsts cap: committed %d", capped.Instructions)
	}
}

func TestCatalogs(t *testing.T) {
	if len(Designs()) != 13 {
		t.Fatalf("%d designs", len(Designs()))
	}
	if len(Workloads()) != 10 {
		t.Fatalf("%d workloads", len(Workloads()))
	}
	for _, d := range Designs() {
		if desc, err := DesignDescription(d); err != nil || desc == "" {
			t.Errorf("DesignDescription(%s): %q, %v", d, desc, err)
		}
	}
	for _, w := range Workloads() {
		if m, err := WorkloadDescription(w); err != nil || m == "" {
			t.Errorf("WorkloadDescription(%s): %q, %v", w, m, err)
		}
	}
	if _, err := DesignDescription("zz"); err == nil {
		t.Error("unknown design described")
	}
}

func TestRunExperimentTable2AndErrors(t *testing.T) {
	var sb strings.Builder
	if err := RunExperiment(context.Background(), "table2", ExperimentOptions{}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "piggyback") {
		t.Error("table2 output incomplete")
	}
	if err := RunExperiment(context.Background(), "fig99", ExperimentOptions{}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := RunExperiment(context.Background(), "fig5", ExperimentOptions{CommonOptions: CommonOptions{Scale: "bogus"}}, &sb); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestRunExperimentSmallGrid(t *testing.T) {
	var sb strings.Builder
	opts := ExperimentOptions{
		CommonOptions: CommonOptions{Scale: "test"},
		Workloads:     []string{"espresso", "perl"},
		Designs:       []string{"T4", "M8", "PB2"},
	}
	progressed := false
	opts.Progress = func(RunProgress) { progressed = true }
	if err := RunExperiment(context.Background(), "fig5", opts, &sb); err != nil {
		t.Fatal(err)
	}
	if !progressed {
		t.Error("no progress callbacks")
	}
	if !strings.Contains(sb.String(), "RTW-avg") {
		t.Error("figure output incomplete")
	}
	sb.Reset()
	if err := RunExperiment(context.Background(), "table3", opts, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "espresso") {
		t.Error("table3 output incomplete")
	}
	sb.Reset()
	if err := RunExperiment(context.Background(), "fig6", ExperimentOptions{CommonOptions: CommonOptions{Scale: "test"}, Workloads: []string{"perl"}}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "128") {
		t.Error("fig6 output incomplete")
	}
}

func TestExperimentRegistryDerivedNames(t *testing.T) {
	want := []string{"table2", "table3", "fig5", "fig6", "fig7", "fig8", "fig9", "model"}
	if !reflect.DeepEqual(ExperimentNames, want) {
		t.Errorf("ExperimentNames = %v, want %v", ExperimentNames, want)
	}
	if got, want := CSVExperimentNames(), []string{"fig5", "fig7", "fig8", "fig9"}; !reflect.DeepEqual(got, want) {
		t.Errorf("CSVExperimentNames = %v, want %v", got, want)
	}
}

func TestExperimentCSVRejectsNonCSVExperiments(t *testing.T) {
	var sb strings.Builder
	err := ExperimentCSV(context.Background(), "table2", ExperimentOptions{CommonOptions: CommonOptions{Scale: "test"}}, &sb)
	if err == nil {
		t.Fatal("CSV accepted for a non-grid experiment")
	}
	for _, want := range []string{"table2", "fig5", "fig7", "fig8", "fig9"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("rejection does not name %q: %v", want, err)
		}
	}
	err = ExperimentCSV(context.Background(), "fig99", ExperimentOptions{CommonOptions: CommonOptions{Scale: "test"}}, &sb)
	if err == nil || !strings.Contains(err.Error(), "table3") {
		t.Errorf("unknown experiment error does not list known names: %v", err)
	}
}

func TestBaselineConfigRendering(t *testing.T) {
	cfg := BaselineConfig()
	for _, want := range []string{"64-entry ROB", "32-entry load/store", "GAp", "30-cycle TLB miss"} {
		if !strings.Contains(cfg, want) {
			t.Errorf("BaselineConfig missing %q:\n%s", want, cfg)
		}
	}
}

func TestAnalyzeFacade(t *testing.T) {
	rep, err := Analyze(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}, Workload: "xlisp", Design: "M8"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Design != "M8" || rep.Workload != "xlisp" {
		t.Fatalf("report identity: %s/%s", rep.Design, rep.Workload)
	}
	if rep.FShielded <= 0 {
		t.Errorf("f_shielded = %f", rep.FShielded)
	}
	var sb strings.Builder
	RenderAnalysis(&sb, rep)
	if !strings.Contains(sb.String(), "f_TOL") {
		t.Error("analysis render incomplete")
	}
}

func TestDisassembleFacade(t *testing.T) {
	var sb strings.Builder
	if err := Disassemble("perl", "test", false, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "program perl") {
		t.Error("disassembly incomplete")
	}
	if err := Disassemble("nope", "test", false, &sb); err == nil {
		t.Error("unknown workload disassembled")
	}
}

func TestExtensionOptions(t *testing.T) {
	base, err := Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}, Workload: "espresso", Design: "T1"})
	if err != nil {
		t.Fatal(err)
	}
	vc, err := Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}, Workload: "espresso", Design: "T1", VirtualCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if vc.IPC <= base.IPC {
		t.Errorf("virtual cache IPC %.3f not above physical %.3f on T1", vc.IPC, base.IPC)
	}
	cs, err := Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}, Workload: "xlisp", Design: "M8", ContextSwitchEvery: 2000})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Simulate(context.Background(), Options{CommonOptions: CommonOptions{Scale: "test"}, Workload: "xlisp", Design: "M8"})
	if err != nil {
		t.Fatal(err)
	}
	if cs.TLBWalks <= plain.TLBWalks {
		t.Error("context switching did not add walks")
	}
}
