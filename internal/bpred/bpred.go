// Package bpred implements the baseline branch predictor of Table 1: a
// GAp two-level predictor (Yeh & Patt) with an 8-bit global history
// register indexing a 4096-entry pattern history table of 2-bit
// saturating counters, plus a branch target buffer for targets of taken
// branches and indirect jumps.
package bpred

import "fmt"

// Config describes the predictor.
type Config struct {
	HistoryBits       int // global history register width
	PHTEntries        int // pattern history table size (power of two)
	BTBEntries        int // branch target buffer size (power of two)
	MispredictPenalty int64
}

// DefaultConfig is the baseline of Table 1.
func DefaultConfig() Config {
	return Config{HistoryBits: 8, PHTEntries: 4096, BTBEntries: 512, MispredictPenalty: 3}
}

// Stats counts predictor activity.
type Stats struct {
	CondLookups   uint64
	CondCorrect   uint64
	TargetLookups uint64
	TargetHits    uint64
}

// DirRate returns the conditional-branch direction prediction rate.
func (s *Stats) DirRate() float64 {
	if s.CondLookups == 0 {
		return 0
	}
	return float64(s.CondCorrect) / float64(s.CondLookups)
}

type btbEntry struct {
	pc     uint64
	target uint64
	valid  bool
}

// Predictor is a GAp direction predictor plus a direct-mapped BTB.
// Speculative history update with commit-time repair is modeled the
// simple classical way: history updates at prediction time and is
// repaired on a detected misprediction.
type Predictor struct {
	cfg     Config
	pht     []uint8
	ghr     uint64
	ghrMask uint64
	phtMask uint64
	btb     []btbEntry
	btbMask uint64
	stats   Stats
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:     cfg,
		pht:     make([]uint8, cfg.PHTEntries),
		ghrMask: (1 << uint(cfg.HistoryBits)) - 1,
		phtMask: uint64(cfg.PHTEntries - 1),
		btb:     make([]btbEntry, cfg.BTBEntries),
		btbMask: uint64(cfg.BTBEntries - 1),
	}
	// Weakly taken: loops predict well immediately, matching the
	// common initialization of the era's simulators.
	for i := range p.pht {
		p.pht[i] = 2
	}
	return p
}

// index combines per-address bits with the global history: the "p"
// (per-address) part of GAp selects among PHT rows with low PC bits.
func (p *Predictor) index(pc uint64) uint64 {
	pcBits := (pc >> 2) & (p.phtMask >> uint(p.cfg.HistoryBits))
	return (pcBits<<uint(p.cfg.HistoryBits) | (p.ghr & p.ghrMask)) & p.phtMask
}

// PredictDir predicts the direction of the conditional branch at pc and
// returns the snapshot needed to repair history on a misprediction.
func (p *Predictor) PredictDir(pc uint64) (taken bool, ghrSnapshot uint64) {
	snap := p.ghr
	taken = p.pht[p.index(pc)] >= 2
	// Speculative history push.
	bit := uint64(0)
	if taken {
		bit = 1
	}
	p.ghr = ((p.ghr << 1) | bit) & p.ghrMask
	return taken, snap
}

// PredictTarget returns the BTB's target for pc (taken branches and
// indirect jumps), with ok=false on a BTB miss.
func (p *Predictor) PredictTarget(pc uint64) (target uint64, ok bool) {
	p.stats.TargetLookups++
	e := &p.btb[(pc>>2)&p.btbMask]
	if e.valid && e.pc == pc {
		p.stats.TargetHits++
		return e.target, true
	}
	return 0, false
}

// Resolve trains the predictor with the actual outcome of the
// conditional branch at pc. predTaken is what PredictDir returned;
// ghrSnapshot is its snapshot. It reports whether the direction
// prediction was correct and repairs the history if not.
func (p *Predictor) Resolve(pc uint64, predTaken, actualTaken bool, ghrSnapshot uint64) bool {
	p.stats.CondLookups++
	// Train the counter under the history the prediction used.
	idx := (((pc>>2)&(p.phtMask>>uint(p.cfg.HistoryBits)))<<uint(p.cfg.HistoryBits) |
		(ghrSnapshot & p.ghrMask)) & p.phtMask
	ctr := p.pht[idx]
	if actualTaken {
		if ctr < 3 {
			p.pht[idx] = ctr + 1
		}
	} else if ctr > 0 {
		p.pht[idx] = ctr - 1
	}
	correct := predTaken == actualTaken
	if correct {
		p.stats.CondCorrect++
		return true
	}
	// Repair: rebuild history as if the correct outcome was shifted in.
	bit := uint64(0)
	if actualTaken {
		bit = 1
	}
	p.ghr = ((ghrSnapshot << 1) | bit) & p.ghrMask
	return false
}

// UpdateTarget installs the target of a taken control transfer.
func (p *Predictor) UpdateTarget(pc, target uint64) {
	p.btb[(pc>>2)&p.btbMask] = btbEntry{pc: pc, target: target, valid: true}
}

// RestoreHistory force-restores the global history (squash recovery for
// wrong-path fetches beyond the mispredicted branch).
func (p *Predictor) RestoreHistory(ghr uint64) { p.ghr = ghr & p.ghrMask }

// History returns the current global history register value.
func (p *Predictor) History() uint64 { return p.ghr }

// Stats returns predictor counters.
func (p *Predictor) Stats() *Stats { return &p.stats }

// MispredictPenalty returns the configured redirect penalty in cycles.
func (p *Predictor) MispredictPenalty() int64 { return p.cfg.MispredictPenalty }

// WarmCond trains the predictor with the actual outcome of the
// conditional branch at pc without recording statistics: the counter
// indexed under the current history is updated and the outcome is
// shifted into the history register, exactly as a correctly predicted
// branch would have done in the timed pipeline.
func (p *Predictor) WarmCond(pc uint64, taken bool) {
	idx := p.index(pc)
	ctr := p.pht[idx]
	if taken {
		if ctr < 3 {
			p.pht[idx] = ctr + 1
		}
	} else if ctr > 0 {
		p.pht[idx] = ctr - 1
	}
	bit := uint64(0)
	if taken {
		bit = 1
	}
	p.ghr = ((p.ghr << 1) | bit) & p.ghrMask
}

// BTBState is the serializable image of one BTB entry.
type BTBState struct {
	PC     uint64
	Target uint64
	Valid  bool
}

// State is the serializable image of the predictor's tables. Statistics
// are excluded: a restored predictor starts its counters at zero.
type State struct {
	PHT []uint8
	GHR uint64
	BTB []BTBState
}

// ExportState captures the predictor's tables.
func (p *Predictor) ExportState() State {
	st := State{PHT: append([]uint8(nil), p.pht...), GHR: p.ghr}
	st.BTB = make([]BTBState, len(p.btb))
	for i, e := range p.btb {
		st.BTB[i] = BTBState{PC: e.pc, Target: e.target, Valid: e.valid}
	}
	return st
}

// ImportState restores tables captured by ExportState. It fails if the
// geometry does not match this predictor's configuration.
func (p *Predictor) ImportState(st State) error {
	if len(st.PHT) != len(p.pht) || len(st.BTB) != len(p.btb) {
		return fmt.Errorf("bpred: state geometry pht=%d btb=%d does not match pht=%d btb=%d",
			len(st.PHT), len(st.BTB), len(p.pht), len(p.btb))
	}
	copy(p.pht, st.PHT)
	p.ghr = st.GHR & p.ghrMask
	for i, e := range st.BTB {
		p.btb[i] = btbEntry{pc: e.PC, target: e.Target, valid: e.Valid}
	}
	return nil
}
