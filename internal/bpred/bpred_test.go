package bpred

import "testing"

func TestAlwaysTakenLoopLearns(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400100)
	correct := 0
	for i := 0; i < 100; i++ {
		taken, snap := p.PredictDir(pc)
		if p.Resolve(pc, taken, true, snap) {
			correct++
		}
	}
	if correct < 95 {
		t.Fatalf("always-taken loop: %d/100 correct", correct)
	}
}

func TestAlternatingPatternLearns(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400200)
	correct := 0
	for i := 0; i < 200; i++ {
		actual := i%2 == 0
		taken, snap := p.PredictDir(pc)
		if p.Resolve(pc, taken, actual, snap) {
			correct++
		}
	}
	// Two-level history predictors learn alternation nearly perfectly.
	if correct < 180 {
		t.Fatalf("alternating pattern: %d/200 correct", correct)
	}
}

func TestHistoryRepairOnMispredict(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400300)
	_, snap := p.PredictDir(pc)
	before := p.History()
	_ = before
	p.Resolve(pc, true, false, snap) // mispredicted taken, actually not
	want := (snap << 1) & ((1 << 8) - 1)
	if p.History() != want {
		t.Fatalf("history after repair = %#x, want %#x", p.History(), want)
	}
}

func TestBTB(t *testing.T) {
	p := New(DefaultConfig())
	if _, ok := p.PredictTarget(0x400400); ok {
		t.Fatal("cold BTB hit")
	}
	p.UpdateTarget(0x400400, 0x400800)
	tgt, ok := p.PredictTarget(0x400400)
	if !ok || tgt != 0x400800 {
		t.Fatalf("BTB: %#x ok=%v", tgt, ok)
	}
	// Conflicting pc in the same set replaces.
	other := uint64(0x400400 + 512*4)
	p.UpdateTarget(other, 0x400900)
	if _, ok := p.PredictTarget(0x400400); ok {
		t.Fatal("direct-mapped BTB kept both conflicting entries")
	}
}

func TestStatsRate(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400500)
	for i := 0; i < 10; i++ {
		taken, snap := p.PredictDir(pc)
		p.Resolve(pc, taken, true, snap)
	}
	if r := p.Stats().DirRate(); r <= 0.5 {
		t.Fatalf("dir rate %f", r)
	}
}

func TestRestoreHistory(t *testing.T) {
	p := New(DefaultConfig())
	p.PredictDir(0x400600)
	p.RestoreHistory(0xAB)
	if p.History() != 0xAB {
		t.Fatalf("history = %#x", p.History())
	}
}
