package bpred

import (
	"reflect"
	"testing"
)

// TestWarmCondNoStats: functional training must move the tables without
// perturbing any counter, and must bias a later prediction.
func TestWarmCondNoStats(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x1040)
	for i := 0; i < 8; i++ {
		p.WarmCond(pc, true)
	}
	if got := *p.Stats(); got != (Stats{}) {
		t.Fatalf("WarmCond perturbed stats: %+v", got)
	}
	// After consistent taken-training under a converged history, the
	// prediction at that history must be taken.
	taken, _ := p.PredictDir(pc)
	if !taken {
		t.Fatal("warm-trained branch predicted not-taken")
	}
}

// TestWarmCondShiftsHistory: warming must thread outcomes through the
// global history register exactly like resolved branches do.
func TestWarmCondShiftsHistory(t *testing.T) {
	p := New(DefaultConfig())
	p.WarmCond(0x1000, true)
	p.WarmCond(0x1004, false)
	p.WarmCond(0x1008, true)
	if got, want := p.History(), uint64(0b101); got != want {
		t.Fatalf("history after warm T,N,T = %b, want %b", got, want)
	}
}

func TestPredictorStateRoundTrip(t *testing.T) {
	p := New(DefaultConfig())
	for i := uint64(0); i < 500; i++ {
		p.WarmCond(0x1000+i*4, i%3 != 0)
		if i%5 == 0 {
			p.UpdateTarget(0x1000+i*4, 0x2000+i*8)
		}
	}
	st := p.ExportState()
	q := New(DefaultConfig())
	if err := q.ImportState(st); err != nil {
		t.Fatal(err)
	}
	if got := q.ExportState(); !reflect.DeepEqual(got, st) {
		t.Fatal("export-import-export is not a fixed point")
	}
}

func TestPredictorImportGeometryMismatch(t *testing.T) {
	st := New(DefaultConfig()).ExportState()
	small := New(Config{HistoryBits: 4, PHTEntries: 256, BTBEntries: 64, MispredictPenalty: 3})
	if err := small.ImportState(st); err == nil {
		t.Fatal("ImportState accepted mismatched geometry")
	}
}
