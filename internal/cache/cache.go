// Package cache implements the set-associative caches of the baseline
// machine (Table 1): 32 KB two-way instruction and data caches with
// 32-byte blocks and a 6-cycle miss latency. The data cache is
// four-ported, write-back, write-allocate, and non-blocking: a miss
// delays only the access that incurred it.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	Name        string
	SizeBytes   int
	Assoc       int
	BlockBytes  int
	MissLatency int64
	Ports       int // accesses per cycle (0 = unlimited)
	WriteBack   bool
}

// DefaultICache is the baseline instruction cache (Table 1).
func DefaultICache() Config {
	return Config{Name: "il1", SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 32, MissLatency: 6, Ports: 1}
}

// DefaultDCache is the baseline data cache (Table 1).
func DefaultDCache() Config {
	return Config{Name: "dl1", SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 32, MissLatency: 6, Ports: 4, WriteBack: true}
}

// Stats counts cache activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
	PortStalls uint64

	// PortUse[i] counts completed cycles during which exactly i ports
	// were claimed (the last bucket collects higher use). Only ported
	// caches record it; the fetch side uses AccessUnported.
	PortUse [9]uint64
}

// MissRate returns misses per access.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  int64 // LRU
}

// Cache is a set-associative, LRU-replaced cache indexed by physical
// address. It models timing only; data values live in the simulator's
// physical memory.
type Cache struct {
	cfg       Config
	sets      [][]line
	setMask   uint64
	blockBits uint
	stats     Stats

	cycle     int64
	portsUsed int
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	if cfg.BlockBytes <= 0 || cfg.BlockBytes&(cfg.BlockBytes-1) != 0 {
		panic(fmt.Sprintf("cache %s: block size %d not a power of two", cfg.Name, cfg.BlockBytes))
	}
	if cfg.Assoc <= 0 {
		panic(fmt.Sprintf("cache %s: invalid associativity %d", cfg.Name, cfg.Assoc))
	}
	nSets := cfg.SizeBytes / (cfg.BlockBytes * cfg.Assoc)
	if nSets <= 0 || nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, nSets))
	}
	blockBits := uint(0)
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		blockBits++
	}
	sets := make([][]line, nSets)
	backing := make([]line, nSets*cfg.Assoc)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc:cfg.Assoc], backing[cfg.Assoc:]
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(nSets - 1),
		blockBits: blockBits,
	}
}

// BlockBytes returns the cache's block size.
func (c *Cache) BlockBytes() int { return c.cfg.BlockBytes }

// BeginCycle resets the per-cycle port counter, closing out the
// previous cycle's port-use sample.
func (c *Cache) BeginCycle(now int64) {
	if c.cycle > 0 && c.cfg.Ports > 0 {
		i := c.portsUsed
		if i >= len(c.stats.PortUse) {
			i = len(c.stats.PortUse) - 1
		}
		c.stats.PortUse[i]++
	}
	c.cycle = now
	c.portsUsed = 0
}

// PortAvailable reports whether another access can start this cycle.
func (c *Cache) PortAvailable() bool {
	return c.cfg.Ports == 0 || c.portsUsed < c.cfg.Ports
}

// Access performs one timed access to physical address paddr at cycle
// now, claiming a port. It returns the additional latency beyond the
// pipeline's nominal access time: 0 on a hit, MissLatency on a miss.
// ok is false when no port was available (the caller must retry).
func (c *Cache) Access(paddr uint64, write bool, now int64) (extra int64, ok bool) {
	if !c.PortAvailable() {
		c.stats.PortStalls++
		return 0, false
	}
	c.portsUsed++
	return c.access(paddr, write, now), true
}

// AccessUnported performs a timed access without port accounting (used
// by the fetch stage, which arbitrates its own single port).
func (c *Cache) AccessUnported(paddr uint64, write bool, now int64) int64 {
	return c.access(paddr, write, now)
}

func (c *Cache) access(paddr uint64, write bool, now int64) int64 {
	return c.lookupAlloc(paddr, write, now, true)
}

// WarmAccess performs the same lookup-and-allocate state update as a
// timed access but records no statistics and claims no port. The
// functional warm-up phase uses it to pre-populate tag arrays without
// perturbing the measurement window's counters.
func (c *Cache) WarmAccess(paddr uint64, write bool, now int64) {
	c.lookupAlloc(paddr, write, now, false)
}

func (c *Cache) lookupAlloc(paddr uint64, write bool, now int64, count bool) int64 {
	if count {
		c.stats.Accesses++
	}
	block := paddr >> c.blockBits
	set := c.sets[block&c.setMask]
	tag := block >> 0 // full block address as tag: simple and exact

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = now
			if write {
				set[i].dirty = true
			}
			if count {
				c.stats.Hits++
			}
			return 0
		}
	}
	if count {
		c.stats.Misses++
	}

	// Allocate (write-allocate on stores, standard allocate on loads).
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty && c.cfg.WriteBack {
		if count {
			c.stats.Writebacks++
		}
	}
	set[victim] = line{tag: tag, valid: true, dirty: write && c.cfg.WriteBack, used: now}
	return c.cfg.MissLatency
}

// Probe reports whether paddr currently hits, without side effects.
func (c *Cache) Probe(paddr uint64) bool {
	block := paddr >> c.blockBits
	set := c.sets[block&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == block {
			return true
		}
	}
	return false
}

// Flush invalidates every line (counting writebacks of dirty lines).
func (c *Cache) Flush() {
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid && c.sets[s][i].dirty && c.cfg.WriteBack {
				c.stats.Writebacks++
			}
			c.sets[s][i] = line{}
		}
	}
}

// Stats returns the cache's counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// LineState is the serializable image of one cache line. Used holds the
// warm-up recency stamp; warmed state uses negative stamps so every warm
// line is older than any measurement-window access (cycles start at 1).
type LineState struct {
	Tag   uint64
	Valid bool
	Dirty bool
	Used  int64
}

// State is the serializable tag/LRU image of a cache, set-major (set 0's
// ways first). Statistics are deliberately excluded: a restored cache
// starts its counters at zero.
type State struct {
	Sets  int
	Assoc int
	Lines []LineState
}

// ExportState captures the cache's tag array.
func (c *Cache) ExportState() State {
	st := State{Sets: len(c.sets), Assoc: c.cfg.Assoc}
	st.Lines = make([]LineState, 0, len(c.sets)*c.cfg.Assoc)
	for s := range c.sets {
		for i := range c.sets[s] {
			l := c.sets[s][i]
			st.Lines = append(st.Lines, LineState{Tag: l.tag, Valid: l.valid, Dirty: l.dirty, Used: l.used})
		}
	}
	return st
}

// ImportState restores a tag array captured by ExportState. It fails if
// the geometry does not match this cache's configuration.
func (c *Cache) ImportState(st State) error {
	if st.Sets != len(c.sets) || st.Assoc != c.cfg.Assoc {
		return fmt.Errorf("cache %s: state geometry %dx%d does not match %dx%d",
			c.cfg.Name, st.Sets, st.Assoc, len(c.sets), c.cfg.Assoc)
	}
	if len(st.Lines) != st.Sets*st.Assoc {
		return fmt.Errorf("cache %s: state has %d lines, want %d",
			c.cfg.Name, len(st.Lines), st.Sets*st.Assoc)
	}
	k := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			l := st.Lines[k]
			c.sets[s][i] = line{tag: l.Tag, valid: l.Valid, dirty: l.Dirty, used: l.Used}
			k++
		}
	}
	return nil
}
