package cache

import (
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{Name: "t", SizeBytes: 1024, Assoc: 2, BlockBytes: 32, MissLatency: 6, Ports: 2, WriteBack: true}
}

func TestHitAfterMiss(t *testing.T) {
	c := New(small())
	c.BeginCycle(1)
	extra, ok := c.Access(0x1000, false, 1)
	if !ok || extra != 6 {
		t.Fatalf("cold access: extra %d ok %v", extra, ok)
	}
	extra, ok = c.Access(0x1008, false, 1) // same block
	if !ok || extra != 0 {
		t.Fatalf("same-block access: extra %d", extra)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestPortLimit(t *testing.T) {
	c := New(small())
	c.BeginCycle(1)
	c.Access(0, false, 1)
	c.Access(32, false, 1)
	if _, ok := c.Access(64, false, 1); ok {
		t.Fatal("third access in a cycle succeeded on a 2-port cache")
	}
	if c.Stats().PortStalls != 1 {
		t.Fatalf("port stalls = %d", c.Stats().PortStalls)
	}
	c.BeginCycle(2)
	if _, ok := c.Access(64, false, 2); !ok {
		t.Fatal("port did not replenish")
	}
}

func TestLRUWithinSet(t *testing.T) {
	c := New(small()) // 16 sets, 2-way
	// Three blocks mapping to set 0: block addresses 0, 16*32, 32*32.
	a, b2, d := uint64(0), uint64(16*32), uint64(32*32)
	c.BeginCycle(1)
	c.Access(a, false, 1)
	c.BeginCycle(2)
	c.Access(b2, false, 2)
	c.BeginCycle(3)
	c.Access(a, false, 3) // refresh a; b2 is now LRU
	c.BeginCycle(4)
	c.Access(d, false, 4) // evicts b2
	if !c.Probe(a) {
		t.Fatal("a evicted despite recency")
	}
	if c.Probe(b2) {
		t.Fatal("b2 survived LRU eviction")
	}
}

func TestWritebackCounting(t *testing.T) {
	c := New(small())
	c.BeginCycle(1)
	c.Access(0, true, 1) // dirty block in set 0
	c.BeginCycle(2)
	c.Access(16*32, false, 2)
	c.BeginCycle(3)
	c.Access(32*32, false, 3) // evicts dirty block 0
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestFlush(t *testing.T) {
	c := New(small())
	c.BeginCycle(1)
	c.Access(0, true, 1)
	c.Flush()
	if c.Probe(0) {
		t.Fatal("flush left a line")
	}
	if c.Stats().Writebacks != 1 {
		t.Fatal("flush did not write back the dirty line")
	}
}

func TestDefaultsGeometry(t *testing.T) {
	for _, cfg := range []Config{DefaultICache(), DefaultDCache()} {
		c := New(cfg)
		if c.BlockBytes() != 32 {
			t.Fatalf("%s block bytes %d", cfg.Name, c.BlockBytes())
		}
	}
}

// Property: a probe hits iff the block was accessed and not yet
// evicted; re-accessing any resident block is always a hit.
func TestCacheResidencyProperty(t *testing.T) {
	if err := quick.Check(func(addrs []uint16) bool {
		c := New(small())
		now := int64(0)
		for _, a := range addrs {
			now++
			c.BeginCycle(now)
			paddr := uint64(a) * 8
			c.Access(paddr, false, now)
			if !c.Probe(paddr) {
				return false // just-accessed block must be resident
			}
			now++
			c.BeginCycle(now)
			if extra, _ := c.Access(paddr, false, now); extra != 0 {
				return false // immediate re-access must hit
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
