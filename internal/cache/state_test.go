package cache

import (
	"reflect"
	"testing"
)

// TestWarmAccessNoStats: functional warming must populate the tag array
// without perturbing any counter, and a later timed access to a warmed
// block must hit.
func TestWarmAccessNoStats(t *testing.T) {
	c := New(DefaultDCache())
	for i := 0; i < 100; i++ {
		c.WarmAccess(uint64(i*64), i%3 == 0, int64(i)-100)
	}
	if got := *c.Stats(); got != (Stats{}) {
		t.Fatalf("WarmAccess perturbed stats: %+v", got)
	}
	c.BeginCycle(1)
	extra, ok := c.Access(0, false, 1)
	if !ok || extra != 0 {
		t.Fatalf("timed access to warmed block: extra=%d ok=%v, want hit", extra, ok)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("stats after warmed hit: %+v", s)
	}
}

// TestWarmNegativeStampsAreOlder: a warmed line (negative stamp) must be
// the replacement victim before any measurement-window line.
func TestWarmNegativeStampsAreOlder(t *testing.T) {
	cfg := Config{Name: "tiny", SizeBytes: 128, Assoc: 2, BlockBytes: 64, MissLatency: 6}
	c := New(cfg) // one set, two ways
	c.WarmAccess(0*64, false, -2)
	c.WarmAccess(1*64, false, -1)
	c.BeginCycle(1)
	// Touch block 1 in the window, then allocate a new block: the
	// untouched warm block 0 must be evicted, not block 1.
	if extra, _ := c.Access(1*64, false, 1); extra != 0 {
		t.Fatal("warmed block 1 should hit")
	}
	c.AccessUnported(2*64, false, 1)
	if !c.Probe(1 * 64) {
		t.Fatal("recently touched block was evicted instead of the stale warm block")
	}
	if c.Probe(0 * 64) {
		t.Fatal("stale warm block survived the allocation")
	}
}

func TestCacheStateRoundTrip(t *testing.T) {
	c := New(DefaultICache())
	for i := 0; i < 300; i++ {
		c.WarmAccess(uint64(i*32), false, int64(i)-300)
	}
	st := c.ExportState()
	c2 := New(DefaultICache())
	if err := c2.ImportState(st); err != nil {
		t.Fatal(err)
	}
	if got := c2.ExportState(); !reflect.DeepEqual(got, st) {
		t.Fatal("export-import-export is not a fixed point")
	}
}

func TestCacheImportGeometryMismatch(t *testing.T) {
	st := New(DefaultICache()).ExportState()
	if err := New(Config{Name: "x", SizeBytes: 16 << 10, Assoc: 2, BlockBytes: 32}).ImportState(st); err == nil {
		t.Fatal("ImportState accepted mismatched geometry")
	}
	bad := st
	bad.Lines = st.Lines[:len(st.Lines)-1]
	if err := New(DefaultICache()).ImportState(bad); err == nil {
		t.Fatal("ImportState accepted a short line array")
	}
}
