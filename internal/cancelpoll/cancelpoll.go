// Package cancelpoll is the single definition of cooperative
// cancellation polling for the simulator's long-running loops. Three
// loops honor context cancellation — the cycle simulator (per cycle),
// the interpreted functional emulator (per instruction), and the
// superblock-translated engine (per block) — and all three must agree
// on how often they look at the context: fine-grained enough that a
// cancelled sweep stops within microseconds of wall time, coarse
// enough that the channel poll never shows up in a profile. That
// granularity is specified here, once, as Every, and tested in exactly
// one place (this package's tests) instead of being re-derived as a
// private mask by every loop.
package cancelpoll

import (
	"context"
	"sync/atomic"
)

// Every is the polling granularity in loop steps (cycles for the
// timing core, instructions for the functional engines): a poller is
// Due every Every steps. It is a power of two so the due check is a
// single mask.
//
// The superblock engine bounds its blocks to at most Every
// instructions and polls at every block boundary, so its cancellation
// latency is at most one block — never worse than the interpreted
// loops' Every-instruction granularity.
const Every = 4096

// mask implements Due; Every must stay a power of two.
const mask = Every - 1

// Poller is a context's cancellation state, prepared for cheap polling
// inside a hot loop. The zero Poller (or one built from a nil or
// never-cancellable context) is disabled: Due always reports false and
// Err always returns nil, so the loop's fast path is one nil
// comparison.
type Poller struct {
	ctx     context.Context
	done    <-chan struct{}
	tripped *atomic.Bool
}

// New prepares a poller for ctx. A nil ctx, or one whose Done channel
// is nil (context.Background and friends), yields a disabled poller.
// A context already cancelled at construction trips the poller
// synchronously, so Tripped is deterministic for pre-cancelled
// contexts.
func New(ctx context.Context) Poller {
	if ctx == nil || ctx.Done() == nil {
		return Poller{}
	}
	p := Poller{ctx: ctx, done: ctx.Done(), tripped: new(atomic.Bool)}
	if ctx.Err() != nil {
		p.tripped.Store(true)
	} else {
		t := p.tripped
		context.AfterFunc(ctx, func() { t.Store(true) })
	}
	return p
}

// Enabled reports whether the poller can ever observe a cancellation.
func (p Poller) Enabled() bool { return p.done != nil }

// Due reports whether step is a polling point: every Every steps, and
// never for a disabled poller. Loops call Due with their step counter
// and only pay for a channel poll when it returns true.
func (p Poller) Due(step uint64) bool { return p.done != nil && step&mask == 0 }

// Tripped reports whether the context is known to be cancelled, as one
// atomic load — cheap enough for a superblock dispatch loop to call at
// every block boundary. Unlike Err it can lag a concurrent cancel by
// goroutine-scheduling latency (microseconds); a context cancelled
// before New is observed immediately. Callers follow a true Tripped
// with Err for the context's error.
func (p Poller) Tripped() bool { return p.tripped != nil && p.tripped.Load() }

// Err polls the context without blocking: it returns the context's
// error once cancelled and nil before that (or always nil for a
// disabled poller).
func (p Poller) Err() error {
	if p.done == nil {
		return nil
	}
	select {
	case <-p.done:
		return p.ctx.Err()
	default:
		return nil
	}
}
