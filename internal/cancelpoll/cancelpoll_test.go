package cancelpoll

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestGranularity pins the polling contract every loop shares: due
// exactly every Every steps, and Every is a power of two (the due
// check is a mask).
func TestGranularity(t *testing.T) {
	if Every&(Every-1) != 0 || Every == 0 {
		t.Fatalf("Every = %d must be a power of two", Every)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := New(ctx)
	due := 0
	for step := uint64(0); step < 3*Every; step++ {
		if p.Due(step) {
			due++
			if step%Every != 0 {
				t.Fatalf("due at step %d, want multiples of %d only", step, Every)
			}
		}
	}
	if due != 3 {
		t.Fatalf("due %d times over 3*Every steps, want 3", due)
	}
}

func TestDisabledPoller(t *testing.T) {
	for name, p := range map[string]Poller{
		"zero":       {},
		"nil ctx":    New(nil),
		"background": New(context.Background()),
	} {
		if p.Enabled() {
			t.Errorf("%s: Enabled() = true, want false", name)
		}
		if p.Due(0) || p.Due(Every) {
			t.Errorf("%s: disabled poller reported due", name)
		}
		if err := p.Err(); err != nil {
			t.Errorf("%s: disabled poller returned %v", name, err)
		}
	}
}

// TestTripped pins the cheap-poll contract: a pre-cancelled context is
// observed synchronously at New, a live one stays untripped until
// cancel, and the trip arrives shortly after (AfterFunc latency).
func TestTripped(t *testing.T) {
	if (Poller{}).Tripped() || New(context.Background()).Tripped() {
		t.Fatal("disabled poller reported tripped")
	}

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if !New(pre).Tripped() {
		t.Fatal("poller on pre-cancelled context not tripped at New")
	}

	ctx, cancel := context.WithCancel(context.Background())
	p := New(ctx)
	if p.Tripped() {
		t.Fatal("tripped before cancel")
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for !p.Tripped() {
		if time.Now().After(deadline) {
			t.Fatal("not tripped within 5s of cancel")
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() after trip = %v, want context.Canceled", err)
	}
}

func TestErrObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := New(ctx)
	if !p.Enabled() {
		t.Fatal("poller with cancellable context not enabled")
	}
	if err := p.Err(); err != nil {
		t.Fatalf("Err() before cancel = %v, want nil", err)
	}
	cancel()
	if err := p.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() after cancel = %v, want context.Canceled", err)
	}
}
