package ckpt

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"hbat/internal/bpred"
	"hbat/internal/cache"
	"hbat/internal/cancelpoll"
	"hbat/internal/emu"
	"hbat/internal/emu/sblock"
	"hbat/internal/isa"
	"hbat/internal/mem"
	"hbat/internal/prog"
	"hbat/internal/vm"
)

// DefaultWarmCap bounds the retained distinct-page reference stream.
// Every Table 2 design holds at most 128 base entries plus a small
// shield, so the most recent 1024 distinct pages fully determine any
// design's warmed contents with a wide margin.
const DefaultWarmCap = 1024

// Functional-engine selectors for BuildConfig.Engine.
const (
	// EngineTranslated is the superblock-translated engine (the
	// default): pre-decoded blocks, batched warming, no per-instruction
	// decode. Observationally identical to the interpreter.
	EngineTranslated = "sblock"
	// EngineInterpreted is the reference per-instruction interpreter.
	EngineInterpreted = "interp"
)

// BuildConfig parameterizes the functional warm-up phase. The cache and
// predictor geometries must match the measuring machine's configuration
// or the state import at restore will be rejected.
type BuildConfig struct {
	PageSize    uint64
	FastForward uint64 // instructions to execute functionally (> 0)
	ICache      cache.Config
	DCache      cache.Config
	Branch      bpred.Config
	WarmCap     int // max warm refs retained; 0 means DefaultWarmCap

	// Engine selects the functional execution engine:
	// EngineTranslated (also the "" default) or EngineInterpreted.
	// Both produce byte-identical checkpoints; the interpreter remains
	// as the differential reference and debugging fallback.
	Engine string
}

// buildState is the warming state shared by both functional engines:
// the machine, the tag arrays and predictor being warmed, and the
// distinct-page reference stream.
type buildState struct {
	em      *emu.Machine
	ic, dc  *cache.Cache
	pred    *bpred.Predictor
	n       uint64
	warm    map[uint64]warmInfo
	warmSeq uint64
}

type warmInfo struct {
	seq   uint64
	write bool
}

// Warm-up recency stamps are negative — instruction i of n stamps at
// i-n, in [-n, -1] — so every warmed element is strictly older than
// anything the measurement window (cycles starting at 1) touches.
func (bs *buildState) stamp(i uint64) int64 { return int64(i) - int64(bs.n) }

// consumeRefs replays a batch's data references against the warm
// structures. A reference carrying its physical address (the engine's
// own access translated it) needs no second walk — only the walk
// accounting — and a consecutive run of such references to one cache
// line collapses to a single warm access and a single distinct-page
// update: WarmAccess keeps no statistics, so its tag-array result for
// the run is the last stamp with the OR of the write bits, and the
// warm map's entry for the page is likewise the run's last sequence
// number with OR'd writes — byte-identical to the per-reference loop.
// References without a physical address (interpreter fallback, faulting
// accesses) take the reference path unchanged.
func (bs *buildState) consumeRefs(refs []sblock.MemRef) {
	lineMask := ^uint64(uint64(bs.dc.BlockBytes()) - 1)
	for i := 0; i < len(refs); {
		r := &refs[i]
		if !r.PAOK {
			bs.noteRef(r.Vaddr, r.Write, r.InstIdx)
			i++
			continue
		}
		line := r.PA & lineMask
		write := r.Write
		j := i + 1
		for j < len(refs) && refs[j].PAOK && refs[j].PA&lineMask == line {
			write = write || refs[j].Write
			j++
		}
		k := uint64(j - i)
		last := &refs[j-1]
		bs.em.AS.WalkCount += k
		bs.dc.WarmAccess(last.PA, write, bs.stamp(last.InstIdx))
		vpn := bs.em.AS.VPN(last.Vaddr)
		w := bs.warm[vpn]
		bs.warm[vpn] = warmInfo{seq: bs.warmSeq + k - 1, write: w.write || write}
		bs.warmSeq += k
		i = j
	}
}

// noteRef warms the data cache and the distinct-page stream for one
// data reference. Translating here interleaves demand allocation
// identically with the emulator's own access (which finds the PTE
// already mapped — or, on the translated engine's batched path, the
// access came first and this translate is the one that finds it
// mapped), so the checkpointed page table is exactly what the
// functional phase alone would have produced.
func (bs *buildState) noteRef(vaddr uint64, write bool, instIdx uint64) {
	perm := vm.PermRead
	if write {
		perm = vm.PermWrite
	}
	paddr, terr := bs.em.AS.Translate(vaddr, perm)
	if terr != nil {
		return // the emulator's own access will surface the fault
	}
	bs.dc.WarmAccess(paddr, write, bs.stamp(instIdx))
	vpn := bs.em.AS.VPN(vaddr)
	w := bs.warm[vpn]
	bs.warm[vpn] = warmInfo{seq: bs.warmSeq, write: w.write || write}
	bs.warmSeq++
}

// Build runs the functional phase: it executes the first
// cfg.FastForward instructions of p while functionally warming the
// cache tag arrays, the branch predictor, and the distinct-page
// reference stream, then snapshots everything into a Checkpoint. The
// default engine executes superblock-translated code with batched
// warming; cfg.Engine selects the per-instruction interpreter instead.
// Both engines produce byte-identical checkpoints. The context is
// polled at cancelpoll granularity (per block for the translated
// engine). Build fails with ErrShortProgram if the program halts at or
// before the fast-forward point, leaving no measurement window.
func Build(ctx context.Context, p *prog.Program, cfg BuildConfig) (*Checkpoint, error) {
	if cfg.FastForward == 0 {
		return nil, fmt.Errorf("ckpt: FastForward must be positive")
	}
	translated := true
	switch cfg.Engine {
	case "", EngineTranslated:
	case EngineInterpreted:
		translated = false
	default:
		return nil, fmt.Errorf("ckpt: unknown functional engine %q", cfg.Engine)
	}
	em, err := emu.New(p, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	// Mirror the timed machine's loader semantics: program loading must
	// not leave referenced/dirty bits behind.
	em.AS.ClearStatus()

	bs := &buildState{
		em:   em,
		ic:   cache.New(cfg.ICache),
		dc:   cache.New(cfg.DCache),
		pred: bpred.New(cfg.Branch),
		n:    cfg.FastForward,
		warm: make(map[uint64]warmInfo),
	}

	if translated {
		err = bs.runTranslated(ctx)
	} else {
		err = bs.runInterpreted(ctx)
	}
	if err != nil {
		return nil, err
	}
	return bs.snapshot(cfg), nil
}

// runInterpreted is the reference warm loop: one emu.Step per
// instruction, warming the icache on the fetch path, the dcache and
// warm stream via the OnMemRef hook, and the predictor on resolved
// control flow.
func (bs *buildState) runInterpreted(ctx context.Context) error {
	em, n := bs.em, bs.n
	poll := cancelpoll.New(ctx)
	em.OnMemRef = func(vaddr uint64, write bool) {
		bs.noteRef(vaddr, write, em.InstCount)
	}
	defer func() { em.OnMemRef = nil }()

	for em.InstCount < n {
		if poll.Due(em.InstCount) {
			if cerr := poll.Err(); cerr != nil {
				return fmt.Errorf("ckpt: build interrupted: %w", cerr)
			}
		}
		if em.Halted {
			return fmt.Errorf("%w: halted after %d of %d instructions",
				ErrShortProgram, em.InstCount, n)
		}

		pcBefore := em.PC
		in := em.Prog.InstAt(pcBefore)
		if in == nil {
			return fmt.Errorf("ckpt: PC 0x%x outside text segment", pcBefore)
		}
		// Warm the instruction cache along the fetch path. Walking (not
		// probing) demand-allocates text pages exactly as the timed
		// machine's fetch stage does, keeping frame allocation in step.
		if pte, werr := em.AS.Walk(em.AS.VPN(pcBefore)); werr == nil {
			paddr := pte.PFN<<em.AS.PageBits() | em.AS.PageOffset(pcBefore)
			bs.ic.WarmAccess(paddr, false, bs.stamp(em.InstCount))
		}

		if serr := em.Step(); serr != nil {
			return fmt.Errorf("ckpt: functional phase: %w", serr)
		}

		// Train the branch predictor on the resolved control flow.
		switch in.Class() {
		case isa.ClassBranch:
			taken := em.PC != pcBefore+isa.InstBytes
			bs.pred.WarmCond(pcBefore, taken)
			if taken {
				bs.pred.UpdateTarget(pcBefore, em.PC)
			}
		case isa.ClassJump:
			bs.pred.UpdateTarget(pcBefore, em.PC)
		}
	}
	if em.Halted {
		return fmt.Errorf("%w: halted exactly at the fast-forward point (%d instructions)",
			ErrShortProgram, n)
	}
	return nil
}

// runTranslated is the batched warm loop: the superblock engine
// executes whole blocks and reports each one's fetch stream, data
// references, and control outcome in a Batch, which consumeBatch then
// replays against the warm structures. The observable result — warmed
// tag arrays, predictor state, warm stream, page table, walk counts —
// is identical to runInterpreted's; the differential battery in this
// package pins that, byte for byte, through ckpt.Encode.
func (bs *buildState) runTranslated(ctx context.Context) error {
	em, n := bs.em, bs.n
	eng := sblock.New(em)
	eng.SetCancel(ctx)
	var batch sblock.Batch
	for em.InstCount < n {
		if em.Halted {
			return fmt.Errorf("%w: halted after %d of %d instructions",
				ErrShortProgram, em.InstCount, n)
		}
		if rerr := eng.RunBlock(n, &batch); rerr != nil {
			if cerr := ctx.Err(); cerr != nil && errors.Is(rerr, cerr) {
				return fmt.Errorf("ckpt: build interrupted: %w", cerr)
			}
			var outside sblock.OutsideTextError
			if errors.As(rerr, &outside) {
				return fmt.Errorf("ckpt: PC 0x%x outside text segment", uint64(outside))
			}
			return fmt.Errorf("ckpt: functional phase: %w", rerr)
		}
		bs.consumeBatch(&batch)
	}
	if em.Halted {
		return fmt.Errorf("%w: halted exactly at the fast-forward point (%d instructions)",
			ErrShortProgram, n)
	}
	return nil
}

// consumeBatch replays one block execution's side-band records against
// the warm structures, reproducing the interpreted loop's observable
// effects:
//
//   - the fetch stream walks once per instruction (the engine's block
//     pre-walk already counted one, and placed the text page's demand
//     allocation exactly where the interpreter's first fetch walk
//     would) and warms the icache per fetched line — consecutive
//     fetches to one line collapse to a single WarmAccess at the run's
//     last address and stamp, which is exact because WarmAccess keeps
//     no statistics and nothing else touches the set mid-run;
//   - each data reference gets the interpreter's second translate (the
//     engine's access already did the first) and its dcache/warm-stream
//     update, in program order with the interpreter's stamps;
//   - the terminating control transfer trains the predictor.
func (bs *buildState) consumeBatch(batch *sblock.Batch) {
	if batch.Count == 0 {
		return
	}
	em := bs.em
	if batch.FetchOK {
		em.AS.WalkCount += batch.Count - 1
		line := uint64(bs.ic.BlockBytes())
		for j := uint64(0); j < batch.Count; {
			end := j + (line-(batch.FetchPA+isa.InstBytes*j)%line)/isa.InstBytes
			if end == j {
				end = j + 1
			}
			if end > batch.Count {
				end = batch.Count
			}
			bs.ic.WarmAccess(batch.FetchPA+isa.InstBytes*(end-1), false, bs.stamp(batch.InstIdx0+end-1))
			j = end
		}
	}
	bs.consumeRefs(batch.Refs)
	if batch.Ctrl != sblock.CtrlNone {
		ctrlPC := batch.PC0 + isa.InstBytes*(batch.Count-1)
		switch batch.Ctrl {
		case sblock.CtrlBranch:
			bs.pred.WarmCond(ctrlPC, batch.Taken)
			if batch.Taken {
				bs.pred.UpdateTarget(ctrlPC, batch.NextPC)
			}
		case sblock.CtrlJump:
			bs.pred.UpdateTarget(ctrlPC, batch.NextPC)
		}
	}
}

// snapshot assembles the checkpoint from the warmed state.
func (bs *buildState) snapshot(cfg BuildConfig) *Checkpoint {
	em := bs.em
	c := &Checkpoint{
		PageSize:    cfg.PageSize,
		FastForward: bs.n,
		Regs:        em.Regs,
		PC:          em.PC,
		InstCount:   em.InstCount,
		LoadCount:   em.LoadCount,
		StoreCount:  em.StoreCount,
		BranchCount: em.BranchCount,
		TakenCount:  em.TakenCount,
		Pages:       em.AS.ExportPages(),
		NextFrame:   em.AS.NextFrame(),
		Frames:      em.Mem.ExportFrames(),
		ICache:      bs.ic.ExportState(),
		DCache:      bs.dc.ExportState(),
		Pred:        bs.pred.ExportState(),
	}

	// Order the distinct-page stream oldest-first by most recent use and
	// cap it to the most recent WarmCap pages.
	warmCap := cfg.WarmCap
	if warmCap <= 0 {
		warmCap = DefaultWarmCap
	}
	type kv struct {
		vpn uint64
		warmInfo
	}
	ordered := make([]kv, 0, len(bs.warm))
	for vpn, w := range bs.warm {
		ordered = append(ordered, kv{vpn, w})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
	if len(ordered) > warmCap {
		ordered = ordered[len(ordered)-warmCap:]
	}
	c.WarmRefs = make([]WarmRef, len(ordered))
	for i, o := range ordered {
		c.WarmRefs[i] = WarmRef{VPN: o.vpn, Write: o.write}
	}
	return c
}

// RestoreEmu reconstructs a functional machine at the checkpoint, bound
// to p. The timing machine uses it as the lockstep golden reference for
// the measurement window; tests use it to continue functional execution
// from the handoff point.
func (c *Checkpoint) RestoreEmu(p *prog.Program) *emu.Machine {
	as := vm.NewAddressSpace(c.PageSize)
	for _, r := range p.Regions {
		as.AddRegion(r)
	}
	as.ImportPages(c.Pages, c.NextFrame)
	m := &emu.Machine{
		Prog:        p,
		AS:          as,
		Mem:         mem.New(),
		Regs:        c.Regs,
		PC:          c.PC,
		InstCount:   c.InstCount,
		LoadCount:   c.LoadCount,
		StoreCount:  c.StoreCount,
		BranchCount: c.BranchCount,
		TakenCount:  c.TakenCount,
	}
	m.Mem.ImportFrames(c.Frames)
	return m
}
