package ckpt

import (
	"context"
	"fmt"
	"sort"

	"hbat/internal/bpred"
	"hbat/internal/cache"
	"hbat/internal/emu"
	"hbat/internal/isa"
	"hbat/internal/mem"
	"hbat/internal/prog"
	"hbat/internal/vm"
)

// DefaultWarmCap bounds the retained distinct-page reference stream.
// Every Table 2 design holds at most 128 base entries plus a small
// shield, so the most recent 1024 distinct pages fully determine any
// design's warmed contents with a wide margin.
const DefaultWarmCap = 1024

// buildCancelMask matches the cycle loop's cancellation granularity:
// the context is polled every 4096 instructions.
const buildCancelMask = 4096 - 1

// BuildConfig parameterizes the functional warm-up phase. The cache and
// predictor geometries must match the measuring machine's configuration
// or the state import at restore will be rejected.
type BuildConfig struct {
	PageSize    uint64
	FastForward uint64 // instructions to execute functionally (> 0)
	ICache      cache.Config
	DCache      cache.Config
	Branch      bpred.Config
	WarmCap     int // max warm refs retained; 0 means DefaultWarmCap
}

// Build runs the functional phase: it executes the first
// cfg.FastForward instructions of p on the emulator while functionally
// warming the cache tag arrays, the branch predictor, and the
// distinct-page reference stream, then snapshots everything into a
// Checkpoint. The context is polled every 4096 instructions, matching
// the cycle loop's cancellation granularity. Build fails with
// ErrShortProgram if the program halts at or before the fast-forward
// point, leaving no measurement window.
func Build(ctx context.Context, p *prog.Program, cfg BuildConfig) (*Checkpoint, error) {
	if cfg.FastForward == 0 {
		return nil, fmt.Errorf("ckpt: FastForward must be positive")
	}
	em, err := emu.New(p, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	// Mirror the timed machine's loader semantics: program loading must
	// not leave referenced/dirty bits behind.
	em.AS.ClearStatus()

	ic := cache.New(cfg.ICache)
	dc := cache.New(cfg.DCache)
	pred := bpred.New(cfg.Branch)

	n := cfg.FastForward
	// Warm-up recency stamps are negative — instruction i of n stamps at
	// i-n, in [-n, -1] — so every warmed element is strictly older than
	// anything the measurement window (cycles starting at 1) touches.
	stamp := func(i uint64) int64 { return int64(i) - int64(n) }

	type warmInfo struct {
		seq   uint64
		write bool
	}
	warm := make(map[uint64]warmInfo)
	warmSeq := uint64(0)

	em.OnMemRef = func(vaddr uint64, write bool) {
		perm := vm.PermRead
		if write {
			perm = vm.PermWrite
		}
		// Pre-translating here interleaves demand allocation identically
		// with the emulator's own translate (which finds the PTE already
		// mapped), so the checkpointed page table is exactly what the
		// functional phase alone would have produced.
		paddr, terr := em.AS.Translate(vaddr, perm)
		if terr != nil {
			return // the emulator's own access will surface the fault
		}
		dc.WarmAccess(paddr, write, stamp(em.InstCount))
		vpn := em.AS.VPN(vaddr)
		w := warm[vpn]
		warm[vpn] = warmInfo{seq: warmSeq, write: w.write || write}
		warmSeq++
	}

	for em.InstCount < n {
		if em.InstCount&buildCancelMask == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("ckpt: build interrupted: %w", cerr)
			}
		}
		if em.Halted {
			return nil, fmt.Errorf("%w: halted after %d of %d instructions",
				ErrShortProgram, em.InstCount, n)
		}

		pcBefore := em.PC
		in := em.Prog.InstAt(pcBefore)
		if in == nil {
			return nil, fmt.Errorf("ckpt: PC 0x%x outside text segment", pcBefore)
		}
		// Warm the instruction cache along the fetch path. Walking (not
		// probing) demand-allocates text pages exactly as the timed
		// machine's fetch stage does, keeping frame allocation in step.
		if pte, werr := em.AS.Walk(em.AS.VPN(pcBefore)); werr == nil {
			paddr := pte.PFN<<em.AS.PageBits() | em.AS.PageOffset(pcBefore)
			ic.WarmAccess(paddr, false, stamp(em.InstCount))
		}

		if serr := em.Step(); serr != nil {
			return nil, fmt.Errorf("ckpt: functional phase: %w", serr)
		}

		// Train the branch predictor on the resolved control flow.
		switch in.Class() {
		case isa.ClassBranch:
			taken := em.PC != pcBefore+isa.InstBytes
			pred.WarmCond(pcBefore, taken)
			if taken {
				pred.UpdateTarget(pcBefore, em.PC)
			}
		case isa.ClassJump:
			pred.UpdateTarget(pcBefore, em.PC)
		}
	}
	if em.Halted {
		return nil, fmt.Errorf("%w: halted exactly at the fast-forward point (%d instructions)",
			ErrShortProgram, n)
	}

	c := &Checkpoint{
		PageSize:    cfg.PageSize,
		FastForward: n,
		Regs:        em.Regs,
		PC:          em.PC,
		InstCount:   em.InstCount,
		LoadCount:   em.LoadCount,
		StoreCount:  em.StoreCount,
		BranchCount: em.BranchCount,
		TakenCount:  em.TakenCount,
		Pages:       em.AS.ExportPages(),
		NextFrame:   em.AS.NextFrame(),
		Frames:      em.Mem.ExportFrames(),
		ICache:      ic.ExportState(),
		DCache:      dc.ExportState(),
		Pred:        pred.ExportState(),
	}

	// Order the distinct-page stream oldest-first by most recent use and
	// cap it to the most recent WarmCap pages.
	warmCap := cfg.WarmCap
	if warmCap <= 0 {
		warmCap = DefaultWarmCap
	}
	type kv struct {
		vpn uint64
		warmInfo
	}
	ordered := make([]kv, 0, len(warm))
	for vpn, w := range warm {
		ordered = append(ordered, kv{vpn, w})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
	if len(ordered) > warmCap {
		ordered = ordered[len(ordered)-warmCap:]
	}
	c.WarmRefs = make([]WarmRef, len(ordered))
	for i, o := range ordered {
		c.WarmRefs[i] = WarmRef{VPN: o.vpn, Write: o.write}
	}
	return c, nil
}

// RestoreEmu reconstructs a functional machine at the checkpoint, bound
// to p. The timing machine uses it as the lockstep golden reference for
// the measurement window; tests use it to continue functional execution
// from the handoff point.
func (c *Checkpoint) RestoreEmu(p *prog.Program) *emu.Machine {
	as := vm.NewAddressSpace(c.PageSize)
	for _, r := range p.Regions {
		as.AddRegion(r)
	}
	as.ImportPages(c.Pages, c.NextFrame)
	m := &emu.Machine{
		Prog:        p,
		AS:          as,
		Mem:         mem.New(),
		Regs:        c.Regs,
		PC:          c.PC,
		InstCount:   c.InstCount,
		LoadCount:   c.LoadCount,
		StoreCount:  c.StoreCount,
		BranchCount: c.BranchCount,
		TakenCount:  c.TakenCount,
	}
	m.Mem.ImportFrames(c.Frames)
	return m
}
