package ckpt

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"hbat/internal/prog"
	"hbat/internal/workload"
)

// TestBuildEnginesByteIdentical is the headline differential battery
// for the superblock-translated functional engine: over every workload
// in the registry, at representative fast-forward budgets, the
// translated and interpreted engines must produce byte-identical
// checkpoints — same architectural state, same page table and frame
// images, same warmed tag arrays and predictor, same WarmRef stream in
// the same order. Comparing through Encode covers every field at once
// and pins the contract the two-phase methodology rests on: the warmed
// measurement window cannot depend on which engine fast-forwarded.
func TestBuildEnginesByteIdentical(t *testing.T) {
	budgets := []uint64{1, 500, 5_000}
	if testing.Short() {
		budgets = []uint64{500}
	}
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p, err := w.Build(prog.Budget32, workload.ScaleTest)
			if err != nil {
				t.Fatalf("build workload: %v", err)
			}
			for _, ff := range budgets {
				cfg := testBuildConfig(ff)
				cfg.Engine = EngineInterpreted
				want, ierr := Build(context.Background(), p, cfg)
				cfg.Engine = EngineTranslated
				got, terr := Build(context.Background(), p, cfg)
				if (ierr == nil) != (terr == nil) || (ierr != nil && ierr.Error() != terr.Error()) {
					t.Fatalf("ff %d: interpreted err %v, translated err %v", ff, ierr, terr)
				}
				if ierr != nil {
					continue // both failed identically (e.g. short program)
				}
				compareCheckpoints(t, ff, want, got)

				// The "" default must be the translated engine.
				cfg.Engine = ""
				def, derr := Build(context.Background(), p, cfg)
				if derr != nil {
					t.Fatalf("ff %d: default engine: %v", ff, derr)
				}
				if !bytes.Equal(def.Encode(), want.Encode()) {
					t.Fatalf("ff %d: default-engine checkpoint differs", ff)
				}
			}
		})
	}
}

// compareCheckpoints reports field-level detail before failing on the
// byte comparison, so a divergence names the state that moved instead
// of just "bytes differ".
func compareCheckpoints(t *testing.T, ff uint64, want, got *Checkpoint) {
	t.Helper()
	if want.PC != got.PC || want.Regs != got.Regs {
		t.Errorf("ff %d: architectural state differs: PC %#x/%#x", ff, want.PC, got.PC)
	}
	if want.InstCount != got.InstCount || want.LoadCount != got.LoadCount ||
		want.StoreCount != got.StoreCount || want.BranchCount != got.BranchCount ||
		want.TakenCount != got.TakenCount {
		t.Errorf("ff %d: counts differ: inst %d/%d ld %d/%d st %d/%d br %d/%d tk %d/%d",
			ff, want.InstCount, got.InstCount, want.LoadCount, got.LoadCount,
			want.StoreCount, got.StoreCount, want.BranchCount, got.BranchCount,
			want.TakenCount, got.TakenCount)
	}
	if want.NextFrame != got.NextFrame || len(want.Pages) != len(got.Pages) {
		t.Errorf("ff %d: page table differs: %d/%d pages, next frame %d/%d",
			ff, len(want.Pages), len(got.Pages), want.NextFrame, got.NextFrame)
	} else {
		for i := range want.Pages {
			if want.Pages[i] != got.Pages[i] {
				t.Errorf("ff %d: page %d differs: %+v vs %+v", ff, i, want.Pages[i], got.Pages[i])
				break
			}
		}
	}
	if len(want.WarmRefs) != len(got.WarmRefs) {
		t.Errorf("ff %d: warm stream length %d/%d", ff, len(want.WarmRefs), len(got.WarmRefs))
	} else {
		for i := range want.WarmRefs {
			if want.WarmRefs[i] != got.WarmRefs[i] {
				t.Errorf("ff %d: warm ref %d differs: %+v vs %+v (order matters)",
					ff, i, want.WarmRefs[i], got.WarmRefs[i])
				break
			}
		}
	}
	wb, gb := want.Encode(), got.Encode()
	if !bytes.Equal(wb, gb) {
		for i := 0; i < len(wb) && i < len(gb); i++ {
			if wb[i] != gb[i] {
				t.Fatalf("ff %d: checkpoints diverge at byte %d of %d/%d", ff, i, len(wb), len(gb))
			}
		}
		t.Fatalf("ff %d: checkpoint sizes differ: %d vs %d bytes", ff, len(wb), len(gb))
	}
}

// TestBuildEngineErrors pins the engine-independent error surface: the
// short-program sentinel, the bad-engine rejection, and cancellation
// all report identically.
func TestBuildEngineErrors(t *testing.T) {
	p, err := workload.All()[0].Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}

	cfg := testBuildConfig(1)
	cfg.Engine = "jit"
	if _, err := Build(context.Background(), p, cfg); err == nil {
		t.Error("unknown engine accepted")
	}

	// Fast-forward far past the program's halt: both engines must
	// report ErrShortProgram with the same instruction count.
	cfg = testBuildConfig(1 << 40)
	cfg.Engine = EngineInterpreted
	_, ierr := Build(context.Background(), p, cfg)
	cfg.Engine = EngineTranslated
	_, terr := Build(context.Background(), p, cfg)
	if ierr == nil || terr == nil || ierr.Error() != terr.Error() {
		t.Errorf("short-program errors differ:\n  interpreted: %v\n  translated:  %v", ierr, terr)
	}

	// A cancelled context stops both engines with the interrupt wrapper.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range []string{EngineInterpreted, EngineTranslated} {
		cfg := testBuildConfig(1 << 40)
		cfg.Engine = eng
		_, cerr := Build(ctx, p, cfg)
		want := fmt.Sprintf("ckpt: build interrupted: %v", context.Canceled)
		if cerr == nil || cerr.Error() != want {
			t.Errorf("%s: cancelled build error = %v, want %q", eng, cerr, want)
		}
	}
}
