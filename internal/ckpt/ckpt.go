// Package ckpt implements two-phase simulation checkpoints: the state
// handoff between a fast functional warm-up phase (internal/emu plus
// functional-touch updates of the cache/TLB/branch-predictor arrays) and
// the cycle-accurate measurement window (internal/cpu). A Checkpoint is
// a versioned, deterministic serialization of architectural state
// (registers, PC, page table, physical memory) plus warmed
// microarchitectural state (cache tag arrays, predictor tables, and the
// recency-ordered page-reference stream that re-warms any TLB design),
// so one checkpoint per (workload, budget, scale) serves all thirteen
// Table 2 designs of a sweep and survives process crashes on disk.
//
// The encoding is byte-stable: Encode(Decode(b)) == b for any valid b,
// and the same state always encodes to the same bytes. Corrupt input is
// rejected with a typed error, never a panic.
package ckpt

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"hbat/internal/bpred"
	"hbat/internal/cache"
	"hbat/internal/isa"
	"hbat/internal/mem"
	"hbat/internal/vm"
)

// Format constants.
const (
	// Magic identifies a checkpoint file.
	Magic = "HBATCKPT"
	// Version is the current encoding version. Any change to the layout
	// below must bump it; decoders reject other versions outright rather
	// than guessing.
	Version = 1
)

// Typed decode errors. All decoding failures wrap one of these.
var (
	// ErrBadMagic reports input that is not a checkpoint at all.
	ErrBadMagic = errors.New("ckpt: bad magic")
	// ErrVersion reports a checkpoint from an incompatible format version.
	ErrVersion = errors.New("ckpt: unsupported version")
	// ErrTruncated reports input shorter than its structure requires.
	ErrTruncated = errors.New("ckpt: truncated input")
	// ErrCorrupt reports a checksum mismatch or an impossible field value.
	ErrCorrupt = errors.New("ckpt: corrupt input")
)

// ErrShortProgram reports that the functional phase halted at or before
// the requested fast-forward point, leaving nothing to measure.
var ErrShortProgram = errors.New("ckpt: program halted before fast-forward point")

// WarmRef is one entry of the distinct-page reference stream: the
// virtual page number of a data access made during the functional phase
// and whether the most recent access to it was a store. The stream is
// ordered oldest-first by most-recent use, so replaying it through any
// TLB design's Warm hook reproduces a realistic recency ordering.
type WarmRef struct {
	VPN   uint64
	Write bool
}

// Checkpoint is the complete state handoff at the fast-forward point.
type Checkpoint struct {
	PageSize    uint64
	FastForward uint64 // instructions executed by the functional phase

	// Architectural state.
	Regs [isa.NumRegs]uint64
	PC   uint64

	// Retired-operation counts at the handoff (emulator semantics).
	InstCount   uint64
	LoadCount   uint64
	StoreCount  uint64
	BranchCount uint64
	TakenCount  uint64

	// Memory state: the page table (with referenced/dirty status as the
	// functional phase left it), the frame allocator cursor, and every
	// non-zero physical frame.
	Pages     []vm.PTE
	NextFrame uint64
	Frames    []mem.FrameImage

	// Warmed microarchitectural state. Recency stamps inside are
	// negative (instruction index minus phase length) so every warmed
	// element is older than anything the measurement window touches.
	ICache cache.State
	DCache cache.State
	Pred   bpred.State

	// WarmRefs re-warms TLB state. It is stored design-independently —
	// as the reference stream rather than per-design arrays — precisely
	// so one checkpoint serves all thirteen designs.
	WarmRefs []WarmRef
}

// Encode serializes the checkpoint deterministically: magic, version,
// little-endian payload, SHA-256 trailer over everything before it.
func (c *Checkpoint) Encode() []byte {
	e := &encoder{}
	e.bytes([]byte(Magic))
	e.u32(Version)

	e.u64(c.PageSize)
	e.u64(c.FastForward)
	for _, r := range c.Regs {
		e.u64(r)
	}
	e.u64(c.PC)
	e.u64(c.InstCount)
	e.u64(c.LoadCount)
	e.u64(c.StoreCount)
	e.u64(c.BranchCount)
	e.u64(c.TakenCount)

	e.u64(c.NextFrame)
	e.u64(uint64(len(c.Pages)))
	for _, p := range c.Pages {
		e.u64(p.VPN)
		e.u64(p.PFN)
		e.u8(uint8(p.Perm))
		e.u8(boolBits(p.Ref, p.Dirty))
	}
	e.u64(uint64(len(c.Frames)))
	for i := range c.Frames {
		e.u64(c.Frames[i].Index)
		e.bytes(c.Frames[i].Data[:])
	}

	e.cacheState(c.ICache)
	e.cacheState(c.DCache)

	e.u64(uint64(len(c.Pred.PHT)))
	e.bytes(c.Pred.PHT)
	e.u64(c.Pred.GHR)
	e.u64(uint64(len(c.Pred.BTB)))
	for _, b := range c.Pred.BTB {
		e.u64(b.PC)
		e.u64(b.Target)
		e.u8(boolBits(b.Valid, false))
	}

	e.u64(uint64(len(c.WarmRefs)))
	for _, w := range c.WarmRefs {
		e.u64(w.VPN)
		e.u8(boolBits(w.Write, false))
	}

	sum := sha256.Sum256(e.buf)
	return append(e.buf, sum[:]...)
}

// Decode parses a checkpoint produced by Encode. Any malformed input —
// wrong magic, wrong version, bad checksum, truncation, impossible
// counts — is rejected with an error wrapping one of the typed errors
// above; Decode never panics.
func Decode(data []byte) (*Checkpoint, error) {
	const trailer = sha256.Size
	if len(data) < len(Magic)+4+trailer {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	body, sum := data[:len(data)-trailer], data[len(data)-trailer:]
	if got := sha256.Sum256(body); string(got[:]) != string(sum) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	d := &decoder{buf: body[len(Magic):]}
	if v := d.u32(); v != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, Version)
	}

	c := &Checkpoint{}
	c.PageSize = d.u64()
	c.FastForward = d.u64()
	for i := range c.Regs {
		c.Regs[i] = d.u64()
	}
	c.PC = d.u64()
	c.InstCount = d.u64()
	c.LoadCount = d.u64()
	c.StoreCount = d.u64()
	c.BranchCount = d.u64()
	c.TakenCount = d.u64()

	c.NextFrame = d.u64()
	nPages := d.count(8 + 8 + 1 + 1)
	c.Pages = make([]vm.PTE, nPages)
	for i := range c.Pages {
		c.Pages[i].VPN = d.u64()
		c.Pages[i].PFN = d.u64()
		c.Pages[i].Perm = vm.Perm(d.u8())
		c.Pages[i].Ref, c.Pages[i].Dirty = bits2(d.u8())
	}
	nFrames := d.count(8 + mem.FrameSize)
	c.Frames = make([]mem.FrameImage, nFrames)
	for i := range c.Frames {
		c.Frames[i].Index = d.u64()
		copy(c.Frames[i].Data[:], d.bytes(mem.FrameSize))
	}

	c.ICache = d.cacheState()
	c.DCache = d.cacheState()

	c.Pred.PHT = append([]uint8(nil), d.bytes(int(d.count(1)))...)
	c.Pred.GHR = d.u64()
	nBTB := d.count(8 + 8 + 1)
	c.Pred.BTB = make([]bpred.BTBState, nBTB)
	for i := range c.Pred.BTB {
		c.Pred.BTB[i].PC = d.u64()
		c.Pred.BTB[i].Target = d.u64()
		c.Pred.BTB[i].Valid, _ = bits2(d.u8())
	}

	nWarm := d.count(8 + 1)
	c.WarmRefs = make([]WarmRef, nWarm)
	for i := range c.WarmRefs {
		c.WarmRefs[i].VPN = d.u64()
		c.WarmRefs[i].Write, _ = bits2(d.u8())
	}

	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return c, nil
}

// SaveFile atomically writes the checkpoint to path (tmp + rename), so
// a crash mid-write never leaves a torn checkpoint behind.
func (c *Checkpoint) SaveFile(path string) error {
	data := c.Encode()
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile reads and decodes a checkpoint file.
func LoadFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// --- low-level codec ---

func boolBits(a, b bool) uint8 {
	v := uint8(0)
	if a {
		v |= 1
	}
	if b {
		v |= 2
	}
	return v
}

func bits2(v uint8) (a, b bool) { return v&1 != 0, v&2 != 0 }

type encoder struct{ buf []byte }

func (e *encoder) bytes(b []byte) { e.buf = append(e.buf, b...) }
func (e *encoder) u8(v uint8)     { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32)   { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64)   { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)    { e.u64(uint64(v)) }

func (e *encoder) cacheState(st cache.State) {
	e.u64(uint64(st.Sets))
	e.u64(uint64(st.Assoc))
	e.u64(uint64(len(st.Lines)))
	for _, l := range st.Lines {
		e.u64(l.Tag)
		e.i64(l.Used)
		e.u8(boolBits(l.Valid, l.Dirty))
	}
}

// decoder reads the payload with sticky-error, bounds-checked cursor
// semantics: after the first short read every further read returns
// zeros, and the error surfaces once at the end of Decode.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: payload ends at offset %d", ErrTruncated, d.off)
	}
}

func (d *decoder) bytes(n int) []byte {
	if n < 0 || d.off+n > len(d.buf) || d.off+n < d.off {
		d.fail()
		return make([]byte, maxInt(n, 0))
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8   { return d.bytes(1)[0] }
func (d *decoder) u32() uint32 { return binary.LittleEndian.Uint32(d.bytes(4)) }
func (d *decoder) u64() uint64 { return binary.LittleEndian.Uint64(d.bytes(8)) }
func (d *decoder) i64() int64  { return int64(d.u64()) }

// count reads an element count and validates it against the bytes
// actually remaining (each element needs at least elemSize bytes), so a
// corrupt length can never trigger a huge allocation.
func (d *decoder) count(elemSize int) uint64 {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if remaining := uint64(len(d.buf) - d.off); elemSize > 0 && n > remaining/uint64(elemSize) {
		if d.err == nil {
			d.err = fmt.Errorf("%w: count %d exceeds remaining payload", ErrCorrupt, n)
		}
		return 0
	}
	return n
}

func (d *decoder) cacheState() cache.State {
	st := cache.State{Sets: int(d.u64()), Assoc: int(d.u64())}
	n := d.count(8 + 8 + 1)
	st.Lines = make([]cache.LineState, n)
	for i := range st.Lines {
		st.Lines[i].Tag = d.u64()
		st.Lines[i].Used = d.i64()
		st.Lines[i].Valid, st.Lines[i].Dirty = bits2(d.u8())
	}
	return st
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
