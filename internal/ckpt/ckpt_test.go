package ckpt

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hbat/internal/bpred"
	"hbat/internal/cache"
	"hbat/internal/prog"
	"hbat/internal/workload"
)

// testBuildConfig is the baseline geometry (Table 1) used by the codec
// tests.
func testBuildConfig(n uint64) BuildConfig {
	return BuildConfig{
		PageSize:    4096,
		FastForward: n,
		ICache:      cache.DefaultICache(),
		DCache:      cache.DefaultDCache(),
		Branch:      bpred.DefaultConfig(),
	}
}

// buildTestCheckpoint runs the functional phase over half of the first
// workload at test scale.
func buildTestCheckpoint(t *testing.T) (*Checkpoint, *prog.Program) {
	t.Helper()
	w := workload.All()[0]
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(context.Background(), p, testBuildConfig(5000))
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestCheckpointRoundTrip(t *testing.T) {
	c, _ := buildTestCheckpoint(t)
	data := c.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatal("decoded checkpoint differs from original")
	}
	if re := got.Encode(); !bytes.Equal(re, data) {
		t.Fatal("re-encode is not byte-identical")
	}
}

func TestBuildDeterministic(t *testing.T) {
	c1, _ := buildTestCheckpoint(t)
	c2, _ := buildTestCheckpoint(t)
	if !bytes.Equal(c1.Encode(), c2.Encode()) {
		t.Fatal("two builds of the same (workload, budget, scale, ffwd) encode differently")
	}
}

// reseal recomputes the SHA-256 trailer after a deliberate payload
// mutation, so tests reach the structural checks behind the checksum.
func reseal(data []byte) []byte {
	body := data[:len(data)-sha256.Size]
	sum := sha256.Sum256(body)
	return append(append([]byte(nil), body...), sum[:]...)
}

func TestDecodeRejectsMalformed(t *testing.T) {
	c, _ := buildTestCheckpoint(t)
	valid := c.Encode()

	flip := append([]byte(nil), valid...)
	flip[len(Magic)+100] ^= 0xFF

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'

	badVersion := append([]byte(nil), valid...)
	badVersion[len(Magic)] = 0xEE

	hugeCount := append([]byte(nil), valid...)
	// The page count sits right after the fixed header fields:
	// magic + version + (2 + 64 + 6 + 1) u64s.
	countOff := len(Magic) + 4 + 8*(2+64+6+1)
	for i := 0; i < 8; i++ {
		hugeCount[countOff+i] = 0xFF
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", []byte("HBAT"), ErrTruncated},
		{"bad magic", badMagic, ErrBadMagic},
		{"bit flip", flip, ErrCorrupt},
		{"truncated tail", valid[:len(valid)-7], ErrCorrupt},
		{"future version resealed", reseal(badVersion), ErrVersion},
		{"huge count resealed", reseal(hugeCount), ErrCorrupt},
		{"trailing garbage resealed", reseal(append(append([]byte(nil), valid...), 0, 1, 2)), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.data); !errors.Is(err, tc.want) {
				t.Fatalf("Decode = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestSaveLoadFile(t *testing.T) {
	c, _ := buildTestCheckpoint(t)
	path := filepath.Join(t.TempDir(), "w.ckpt")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatal("loaded checkpoint differs")
	}

	// A torn/corrupt file must be rejected, not misread.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("LoadFile accepted a torn checkpoint")
	}
}

// TestRestoreEmuContinues proves the checkpoint captures complete
// architectural state: a restored emulator continued to halt must reach
// exactly the state of an uninterrupted functional run.
func TestRestoreEmuContinues(t *testing.T) {
	c, p := buildTestCheckpoint(t)
	restored := c.RestoreEmu(p)
	if err := restored.Run(0); err != nil {
		t.Fatalf("continuing from checkpoint: %v", err)
	}

	ref := mustRun(t, p)
	if restored.InstCount != ref.InstCount {
		t.Fatalf("restored run retired %d insts, reference %d", restored.InstCount, ref.InstCount)
	}
	if restored.Regs != ref.Regs {
		t.Fatal("restored run's final registers differ from the reference")
	}
	if restored.PC != ref.PC || restored.Halted != ref.Halted {
		t.Fatalf("restored end state pc=0x%x halted=%v, reference pc=0x%x halted=%v",
			restored.PC, restored.Halted, ref.PC, ref.Halted)
	}
}

func TestBuildShortProgram(t *testing.T) {
	_, p := buildTestCheckpoint(t)
	ref := mustRun(t, p)
	if _, err := Build(context.Background(), p, testBuildConfig(ref.InstCount)); !errors.Is(err, ErrShortProgram) {
		t.Fatalf("Build at program length = %v, want ErrShortProgram", err)
	}
	if _, err := Build(context.Background(), p, testBuildConfig(ref.InstCount+100)); !errors.Is(err, ErrShortProgram) {
		t.Fatalf("Build past program length = %v, want ErrShortProgram", err)
	}
}

func TestBuildCancellation(t *testing.T) {
	_, p := buildTestCheckpoint(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, p, testBuildConfig(5000)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Build with cancelled context = %v, want context.Canceled", err)
	}
}
