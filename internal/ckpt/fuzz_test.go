package ckpt

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"hbat/internal/emu"
	"hbat/internal/prog"
	"hbat/internal/workload"
)

// mustRun executes p functionally to halt (shared by tests needing the
// reference end state).
func mustRun(t *testing.T, p *prog.Program) *emu.Machine {
	t.Helper()
	em, err := emu.New(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	em.AS.ClearStatus()
	if err := em.Run(0); err != nil {
		t.Fatal(err)
	}
	return em
}

// FuzzCheckpointRoundTrip is the codec's robustness fuzz target: any
// input either decodes — in which case re-encoding must reproduce the
// exact input bytes — or is rejected with one of the typed errors.
// Panics, unbounded allocations, and untyped errors are all failures.
func FuzzCheckpointRoundTrip(f *testing.F) {
	// Seed with a real encoded checkpoint plus edge shapes; the on-disk
	// corpus under testdata/fuzz adds pre-mutated variants.
	w := workload.All()[0]
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		f.Fatal(err)
	}
	c, err := Build(context.Background(), p, testBuildConfig(2000))
	if err != nil {
		f.Fatal(err)
	}
	valid := c.Encode()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(append([]byte(Magic), make([]byte, 40)...))
	f.Add(valid[:len(valid)-1])
	f.Add(reseal(append([]byte(nil), valid...)))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if re := got.Encode(); !bytes.Equal(re, data) {
			t.Fatalf("accepted input is not canonical: re-encode differs (%d vs %d bytes)", len(re), len(data))
		}
	})
}
