package cpu

import (
	"testing"

	"hbat/internal/isa"
	"hbat/internal/prog"
	"hbat/internal/tlb"
	"hbat/internal/vm"
)

// countingTLB wraps a Device to observe the core's request stream.
type countingTLB struct {
	tlb.Device
	lookups []tlb.Request
}

func (c *countingTLB) Lookup(req tlb.Request, now int64) tlb.Result {
	c.lookups = append(c.lookups, req)
	return c.Device.Lookup(req, now)
}

func runProg(t *testing.T, build func(b *prog.Builder), cfg Config, design string) *Machine {
	t.Helper()
	b := prog.NewBuilder("test")
	build(b)
	p, err := b.Finalize(prog.Budget32)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewWithDesign(p, cfg, design)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, m.DebugHead())
	}
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	return m
}

// TestTLBMissCostsFixedLatency: a single cold page's first access pays
// the 30-cycle walk; a warm re-run of the same access stream does not.
func TestTLBMissCostsFixedLatency(t *testing.T) {
	build := func(n int) func(*prog.Builder) {
		return func(b *prog.Builder) {
			b.Alloc("arr", 4096*8, 8)
			p := b.IVar("p")
			v := b.IVar("v")
			b.La(p, "arr")
			for i := 0; i < n; i++ {
				b.Ld(v, p, 0) // same page every time
			}
			b.Halt()
		}
	}
	m1 := runProg(t, build(1), DefaultConfig(), "T4")
	m2 := runProg(t, build(2), DefaultConfig(), "T4")
	// The second load hits the warm TLB: the incremental cost of one
	// more same-page load must be tiny, while the first run's cycle
	// count includes one full walk.
	if m2.Stats().Cycles > m1.Stats().Cycles+3 {
		t.Fatalf("second same-page load cost %d extra cycles", m2.Stats().Cycles-m1.Stats().Cycles)
	}
	if m1.Stats().TLBWalks < 1 {
		t.Fatal("no walk recorded")
	}
	if m1.Stats().Cycles < DefaultConfig().TLBMissLatency {
		t.Fatalf("run of %d cycles cannot contain a %d-cycle walk",
			m1.Stats().Cycles, DefaultConfig().TLBMissLatency)
	}
}

// TestDispatchStallsOnTLBMiss: the paper's policy — dispatch stalls
// while a detected TLB miss is outstanding.
func TestDispatchStallsOnTLBMiss(t *testing.T) {
	m := runProg(t, func(b *prog.Builder) {
		b.Alloc("arr", 64*4096, 8)
		p := b.IVar("p")
		v := b.IVar("v")
		b.La(p, "arr")
		for i := 0; i < 8; i++ {
			b.Ld(v, p, int32(i*4096)) // eight cold pages
		}
		b.Halt()
	}, DefaultConfig(), "T4")
	if m.Stats().DispatchTLBStalls == 0 {
		t.Fatal("no dispatch stalls recorded for cold TLB misses")
	}
	if m.Stats().TLBWalks != 8 {
		t.Fatalf("walks = %d, want 8", m.Stats().TLBWalks)
	}
}

// TestAgeOrderPortPriority: when more requests arrive than ports, the
// earliest-issued instruction wins the port; later ones retry. The
// program's final state must be identical either way (checked via the
// integration tests); here we check the retry counter moves on T1.
func TestAgeOrderPortPriority(t *testing.T) {
	build := func(b *prog.Builder) {
		b.Alloc("arr", 8*4096, 8)
		p := b.IVar("p")
		v1 := b.IVar("v1")
		v2 := b.IVar("v2")
		v3 := b.IVar("v3")
		v4 := b.IVar("v4")
		b.La(p, "arr")
		// Touch the pages once (pay the walks), then issue bursts.
		b.Ld(v1, p, 0)
		b.Ld(v1, p, 4096)
		b.Ld(v1, p, 8192)
		b.Ld(v1, p, 12288)
		for i := 0; i < 32; i++ {
			b.Ld(v1, p, 0)
			b.Ld(v2, p, 4096)
			b.Ld(v3, p, 8192)
			b.Ld(v4, p, 12288)
		}
		b.Halt()
	}
	m4 := runProg(t, build, DefaultConfig(), "T4")
	m1 := runProg(t, build, DefaultConfig(), "T1")
	if m1.Stats().TLBRetries == 0 {
		t.Fatal("T1 never rejected a request under 4-wide load bursts")
	}
	if m1.Stats().Cycles <= m4.Stats().Cycles {
		t.Fatalf("T1 (%d cycles) not slower than T4 (%d cycles)",
			m1.Stats().Cycles, m4.Stats().Cycles)
	}
}

// TestPiggybackReducesRetries: the same-page burst that starves T1 is
// absorbed by PB1's piggyback ports.
func TestPiggybackReducesRetries(t *testing.T) {
	build := func(b *prog.Builder) {
		b.Alloc("arr", 4096, 8)
		p := b.IVar("p")
		v1 := b.IVar("v1")
		v2 := b.IVar("v2")
		v3 := b.IVar("v3")
		v4 := b.IVar("v4")
		b.La(p, "arr")
		for i := 0; i < 32; i++ {
			b.Ld(v1, p, 0)
			b.Ld(v2, p, 8)
			b.Ld(v3, p, 16)
			b.Ld(v4, p, 24)
		}
		b.Halt()
	}
	mPB := runProg(t, build, DefaultConfig(), "PB1")
	mT1 := runProg(t, build, DefaultConfig(), "T1")
	if mPB.DTLB.Stats().Piggybacks == 0 {
		t.Fatal("no piggybacks on a same-page burst")
	}
	if mPB.Stats().Cycles >= mT1.Stats().Cycles {
		t.Fatalf("PB1 (%d cycles) not faster than T1 (%d cycles) on same-page bursts",
			mPB.Stats().Cycles, mT1.Stats().Cycles)
	}
}

// TestStoreForwarding: a load of a just-stored location must see the
// stored value before the store commits to memory.
func TestStoreForwarding(t *testing.T) {
	m := runProg(t, func(b *prog.Builder) {
		b.Alloc("arr", 4096, 8)
		p := b.IVar("p")
		v := b.IVar("v")
		w := b.IVar("w")
		b.La(p, "arr")
		b.Li(v, 0x1234)
		b.Sd(v, p, 0)
		b.Ld(w, p, 0)
		b.Addi(w, w, 1)
		b.Sd(w, p, 8)
		b.Halt()
	}, DefaultConfig(), "T4")
	var buf [16]byte
	if err := m.ReadVirt(prog.DataBase, buf[:]); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x34 || buf[1] != 0x12 || buf[8] != 0x35 {
		t.Fatalf("memory %v", buf)
	}
}

// TestMispredictRecovery: a data-dependent branch pattern that defeats
// the predictor must still produce correct architectural results, and
// squashes must be recorded.
func TestMispredictRecovery(t *testing.T) {
	m := runProg(t, func(b *prog.Builder) {
		seedData := b.Alloc("rand", 256, 8)
		bs := make([]byte, 256)
		s := uint32(12345)
		for i := range bs {
			s = s*1103515245 + 12345
			bs[i] = byte(s >> 16)
		}
		b.SetData(seedData, bs)
		b.Alloc("out", 8, 8)
		p := b.IVar("p")
		v := b.IVar("v")
		acc := b.IVar("acc")
		n := b.IVar("n")
		tst := b.IVar("t")
		b.La(p, "rand")
		b.Li(acc, 0)
		b.Li(n, 256)
		b.Label("loop")
		b.LbuPost(v, p, 1)
		b.Andi(tst, v, 1)
		b.Beq(tst, prog.RegZero, "even")
		b.Addi(acc, acc, 3)
		b.J("next")
		b.Label("even")
		b.Addi(acc, acc, 1)
		b.Label("next")
		b.Addi(n, n, -1)
		b.Bgtz(n, "loop")
		b.La(tst, "out")
		b.Sd(acc, tst, 0)
		b.Halt()
	}, DefaultConfig(), "T4")
	if m.Stats().Squashed == 0 {
		t.Fatal("random branches produced no squashes")
	}
	// acc = 3*odd + even; verify against host computation.
	s := uint32(12345)
	want := uint64(0)
	for i := 0; i < 256; i++ {
		s = s*1103515245 + 12345
		if (s>>16)&1 == 1 {
			want += 3
		} else {
			want++
		}
	}
	var buf [8]byte
	if err := m.ReadVirt(prog.DataBase+256, buf[:]); err != nil {
		t.Fatal(err)
	}
	got := uint64(buf[0]) | uint64(buf[1])<<8
	if got != want {
		t.Fatalf("acc = %d, want %d", got, want)
	}
}

// TestSpeculativeLoadsTranslate: wrong-path loads consult the TLB (the
// paper's bandwidth accounting includes them), visible as more lookups
// than committed memory operations.
func TestSpeculativeLoadsTranslate(t *testing.T) {
	m := runProg(t, func(b *prog.Builder) {
		b.Alloc("arr", 4096, 8)
		p := b.IVar("p")
		v := b.IVar("v")
		n := b.IVar("n")
		tst := b.IVar("t")
		b.La(p, "arr")
		b.Li(n, 200)
		b.Label("loop")
		b.Ld(v, p, 0)
		b.Andi(tst, v, 1) // always 0: branch never taken...
		b.Bgtz(tst, "skip")
		b.Ld(v, p, 8) // correct path
		b.Label("skip")
		b.Ld(v, p, 16) // wrong path starts here when mispredicted
		b.Addi(n, n, -1)
		b.Bgtz(n, "loop")
		b.Halt()
	}, DefaultConfig(), "T4")
	if m.Stats().IssuedMem <= m.Stats().CommittedLoads+m.Stats().CommittedStores {
		t.Skip("no speculative memory issue observed (predictor too good here)")
	}
}

// TestInOrderStallsOnWAW: the in-order model's no-renaming rule.
func TestInOrderWAWOrdering(t *testing.T) {
	build := func(b *prog.Builder) {
		f1 := b.FVar("f1")
		f2 := b.FVar("f2")
		f3 := b.FVar("f3")
		b.LiF(f1, 2.0)
		b.LiF(f2, 3.0)
		for i := 0; i < 50; i++ {
			b.DivF(f3, f1, f2) // long latency writer of f3
			b.AddF(f3, f1, f2) // WAW on f3: must stall in-order
		}
		b.Halt()
	}
	cfg := DefaultConfig()
	cfg.InOrder = true
	mIO := runProg(t, build, cfg, "T4")
	mOO := runProg(t, build, DefaultConfig(), "T4")
	if mIO.Stats().Cycles <= mOO.Stats().Cycles {
		t.Fatalf("in-order (%d) not slower than OoO (%d) on WAW chains",
			mIO.Stats().Cycles, mOO.Stats().Cycles)
	}
	// The architectural result is the AddF value in both models.
	if mIO.Reg(isa.F(2)) != mOO.Reg(isa.F(2)) {
		t.Fatal("models disagree architecturally")
	}
}

// TestUnlimitedRegionFill sanity-checks New's TLB factory hook with a
// custom device (also demonstrating the extension point the customtlb
// example uses).
func TestCustomDeviceFactory(t *testing.T) {
	b := prog.NewBuilder("tiny")
	b.Alloc("x", 8, 8)
	p := b.IVar("p")
	v := b.IVar("v")
	b.La(p, "x")
	b.Li(v, 9)
	b.Sd(v, p, 0)
	b.Halt()
	pr, err := b.Finalize(prog.Budget32)
	if err != nil {
		t.Fatal(err)
	}
	var wrapped *countingTLB
	m, err := New(pr, DefaultConfig(), func(as *vm.AddressSpace) tlb.Device {
		inner := tlb.NewMultiported("T4", as, 128, 4, 0, tlb.Random, 1)
		wrapped = &countingTLB{Device: inner}
		return wrapped
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(wrapped.lookups) == 0 {
		t.Fatal("custom device saw no requests")
	}
	if !wrapped.lookups[len(wrapped.lookups)-1].Write && wrapped.lookups[0].VPN == 0 {
		t.Fatal("unexpected request stream")
	}
}
