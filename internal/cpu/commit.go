package cpu

import (
	"fmt"

	"hbat/internal/isa"
	"hbat/internal/ptrace"
)

// commit retires up to CommitWidth completed instructions in program
// order: architected registers are written, committed stores write the
// data cache (claiming a port) and physical memory, and — for
// pretranslation designs — register-tracking hooks fire so attached
// translations follow only architecturally real pointer values.
func (m *Machine) commit() {
	headIdx := m.rob.head
	for w := 0; w < m.cfg.CommitWidth; w++ {
		e := m.rob.headEntry()
		if e == nil || e.state != sDone || m.cycle < e.doneAt {
			return
		}
		headIdx = m.rob.head

		if e.inst == nil {
			m.err = fmt.Errorf("cpu: committed fetch from outside text segment at pc 0x%x", e.pc)
			return
		}
		if e.faulted() {
			if m.tracer != nil {
				m.tracer.Emit(e.seq, m.cycle, ptrace.KFault, e.pc, e.inst, 1)
			}
			m.err = fmt.Errorf("cpu: protection fault at pc 0x%x (%s, addr 0x%x)", e.pc, e.inst, e.effAddr)
			return
		}
		if e.inst.Op == isa.Halt {
			if m.testCommitHook != nil {
				m.testCommitHook(m, e)
			}
			if m.lockstep != nil && !m.lockstepCheck(e) {
				return
			}
			m.stats.Committed++
			if m.tracer != nil {
				m.tracer.Emit(e.seq, m.cycle, ptrace.KCommit, e.pc, e.inst, 0)
			}
			m.halted = true
			m.lastCommitCycle = m.cycle
			m.rob.pop()
			return
		}

		if e.isStore {
			// The architected memory write happens at commit and needs
			// a data-cache port (shared with executing loads). A
			// virtually-indexed cache is addressed by virtual address;
			// physical memory always by the translated one.
			cacheAddr := e.paddr
			if m.cfg.VirtualCache {
				cacheAddr = e.effAddr
			}
			if _, ok := m.dcache.Access(cacheAddr, true, m.cycle); !ok {
				m.metrics.commitStoreRetry.Inc()
				if m.tracer != nil {
					m.tracer.Emit(e.seq, m.cycle, ptrace.KCommitRetry, e.pc, e.inst, 0)
				}
				return // retry next cycle
			}
			m.writeMem(e.paddr, e.memWidth, e.storeVal)
		}

		for i := 0; i < e.ndest; i++ {
			d := &e.dests[i]
			if d.reg != isa.Zero {
				m.regs[d.reg] = d.val
				if m.rename[d.reg] == int32(headIdx) && m.renameSlot[d.reg] == int8(i) {
					m.rename[d.reg] = -1
				}
			}
		}

		if m.tracker != nil {
			m.trackRegisters(e)
		}

		// The entry's architected effects are all applied; check them
		// against the golden emulator before retiring the entry. The
		// test hook runs first so negative tests can corrupt the state
		// the checker is about to inspect.
		if m.testCommitHook != nil {
			m.testCommitHook(m, e)
		}
		if m.lockstep != nil && !m.lockstepCheck(e) {
			return
		}

		m.stats.Committed++
		if m.tracer != nil {
			m.tracer.Emit(e.seq, m.cycle, ptrace.KCommit, e.pc, e.inst, 0)
		}
		switch {
		case e.isLoad:
			m.stats.CommittedLoads++
		case e.isStore:
			m.stats.CommittedStores++
		case e.isCtrl:
			m.stats.CommittedBranches++
		}
		if e.missCharged() {
			m.tlbMissOutstanding--
		}
		if e.inst.IsMem() {
			m.lsqCount--
		}
		m.lastCommitCycle = m.cycle
		m.rob.pop()
		if m.halted {
			return
		}
	}
}

// pointerArith reports whether op is the kind of integer arithmetic the
// pretranslation design treats as pointer-creating (Section 3.5): the
// attached translation of an operand propagates to the result.
func pointerArith(op isa.Op) bool {
	switch op {
	case isa.Add, isa.Addi, isa.Sub, isa.Or, isa.Ori, isa.And, isa.Andi:
		return true
	}
	return false
}

// trackRegisters drives the RegisterTracker hooks at commit.
func (m *Machine) trackRegisters(e *robEntry) {
	in := e.inst
	switch in.Class() {
	case isa.ClassLoad:
		// The loaded value is unrelated to any tracked pointer; a
		// post-update base keeps its attachment (in-place arithmetic).
		m.tracker.InvalidateReg(in.Rd)
	case isa.ClassStore:
		// Stores write no integer register (post-update base keeps
		// its attachment).
	case isa.ClassIntALU:
		if pointerArith(in.Op) {
			src2 := isa.Reg(255)
			switch in.Op {
			case isa.Add, isa.Sub, isa.Or, isa.And:
				src2 = in.Rt
			}
			m.tracker.Propagate(in.Rd, in.Rs, src2)
		} else {
			m.tracker.InvalidateReg(in.Rd)
		}
	case isa.ClassIntMult, isa.ClassIntDiv:
		m.tracker.InvalidateReg(in.Rd)
	case isa.ClassJump:
		if in.Op == isa.Jal {
			m.tracker.InvalidateReg(isa.RA)
		}
		if in.Op == isa.Jalr {
			m.tracker.InvalidateReg(in.Rd)
		}
	case isa.ClassFPAdd:
		if in.Op == isa.CvtFI || in.Op == isa.MFF {
			m.tracker.InvalidateReg(in.Rd)
		}
	}
}
