// Package cpu implements the execution-driven cycle-timing simulator of
// the paper's baseline machine (Table 1): an 8-way superscalar with
// either out-of-order issue (64-entry re-order buffer, 32-entry
// load/store queue, renaming, speculative execution down predicted
// paths with squash recovery) or in-order issue (no renaming, stall on
// register hazards, out-of-order completion). Data-memory address
// translation goes through a pluggable tlb.Device, which is how each of
// the paper's thirteen designs is evaluated.
package cpu

import (
	"hbat/internal/bpred"
	"hbat/internal/cache"
	"hbat/internal/ckpt"
)

// Config parameterizes a machine. DefaultConfig reproduces Table 1.
type Config struct {
	// Issue model.
	InOrder     bool
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROBSize     int
	LSQSize     int
	FetchQueue  int

	// Functional units (counts of fully pipelined units).
	IntALUs   int
	LdStUnits int
	FPAdders  int
	// Latencies (total cycles; MULT/DIV units are single instances,
	// divides are unpipelined).
	IntALULat  int64
	LoadLat    int64 // total load latency on all-hit path
	IntMultLat int64
	IntDivLat  int64
	FPAddLat   int64
	FPMultLat  int64
	FPDivLat   int64

	// Control prediction.
	Branch bpred.Config
	// MaxBranchesPerFetch is the collapsing-buffer variant's prediction
	// budget per cycle (Section 4.1: two predictions per cycle within
	// the same instruction cache block).
	MaxBranchesPerFetch int

	// Memory hierarchy.
	ICache cache.Config
	DCache cache.Config

	// Virtual memory.
	PageSize       uint64
	TLBMissLatency int64 // fixed walk latency after earlier instructions complete

	// Instruction-fetch translation. The paper scopes fetch translation
	// out ("well served by a single-ported instruction TLB or a small
	// micro-TLB over a unified TLB", Section 1) and the default model
	// treats it as free. Setting ModelITLB true adds a single-ported
	// micro-ITLB of ITLBEntries entries (LRU): a miss stalls fetch for
	// ITLBRefillLatency cycles (the unified-TLB refill path), letting
	// experiments validate the paper's scoping claim.
	ModelITLB         bool
	ITLBEntries       int
	ITLBRefillLatency int64
	// UnifiedTLB routes micro-ITLB refills through the *data*
	// translation device (the CBJ92-style "micro-TLB over a unified
	// instruction and data TLB" the paper mentions): refills then
	// compete with data requests for the device's ports, letting
	// experiments measure the interference the paper's scoping assumed
	// negligible. Requires ModelITLB.
	UnifiedTLB bool

	// VirtualCache switches the data cache to a virtually-indexed,
	// virtually-tagged organization (Section 3's "road not taken"):
	// cache hits complete without any translation, and the translation
	// device is consulted only on cache misses, when physical storage
	// must be addressed. The model grants protection checking for free
	// (the paper notes a real design would still need a TLB-like
	// protection structure with high bandwidth — this switch measures
	// only the translation-bandwidth relief). Synonyms do not arise in
	// the single-address-space workloads.
	VirtualCache bool

	// FlushTLBEvery, when non-zero, flushes the whole translation
	// device every N committed instructions, modeling the context-
	// switch pressure of a multiprogrammed system (one of the workload
	// trends the paper's introduction motivates the designs with).
	FlushTLBEvery uint64

	// Lockstep runs the untimed golden emulator (internal/emu) in
	// commit-order lockstep with the pipeline: at every commit the
	// architected register file, the committed PC, and committed store
	// values are compared, and Run returns a *DivergenceError decoding
	// the first mismatch with a context window of recent commits.
	// Translation designs may only change timing, never architecture,
	// so the checker holds for every Table 2 device and Config switch.
	Lockstep bool

	// FastForward enables two-phase simulation: the first FastForward
	// instructions execute on the fast functional emulator (warming the
	// TLB/cache/branch-predictor state without timing) and only the
	// remainder is measured cycle-accurately. MaxInsts still counts
	// committed instructions of the measurement window only. When
	// Checkpoint is nil the warm-up runs inline; supplying a pre-built
	// (possibly disk-cached) Checkpoint skips it, which is how a sweep
	// amortizes one warm-up across all thirteen TLB designs.
	FastForward uint64
	Checkpoint  *ckpt.Checkpoint
	// FFwdEngine selects the functional engine for an inline warm-up
	// (ckpt.BuildConfig.Engine): "" or ckpt.EngineTranslated for the
	// superblock-translated engine, ckpt.EngineInterpreted for the
	// reference interpreter. Both produce byte-identical checkpoints, so
	// the choice affects wall time only; it is ignored when Checkpoint
	// is supplied.
	FFwdEngine string

	// Run limits.
	MaxInsts  uint64 // committed-instruction budget (0 = until Halt)
	MaxCycles int64  // safety limit (0 = none)

	// Seed drives every randomized structure for reproducibility.
	Seed uint64
}

// DefaultConfig returns the paper's baseline machine (Table 1): 8-way
// out-of-order issue, 64-entry ROB, 32-entry load/store queue, GAp
// predictor, 32 KB 2-way L1 caches with 6-cycle miss latency, 4 KB
// pages, and a 30-cycle TLB miss latency.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  8,
		IssueWidth:  8,
		CommitWidth: 8,
		ROBSize:     64,
		LSQSize:     32,
		FetchQueue:  16,

		IntALUs:   8,
		LdStUnits: 4,
		FPAdders:  4,

		IntALULat:  1,
		LoadLat:    2,
		IntMultLat: 3,
		IntDivLat:  12,
		FPAddLat:   2,
		FPMultLat:  4,
		FPDivLat:   12,

		Branch:              bpred.DefaultConfig(),
		MaxBranchesPerFetch: 2,

		ICache: cache.DefaultICache(),
		DCache: cache.DefaultDCache(),

		PageSize:       4096,
		TLBMissLatency: 30,

		ITLBEntries:       4,
		ITLBRefillLatency: 2,

		Seed: 1,
	}
}

// Stats aggregates a run's results. With Config.FastForward set, every
// field describes the measurement window only; the skipped prefix is
// reported separately as FastForwarded.
type Stats struct {
	Cycles int64

	// FastForwarded counts instructions executed by the functional
	// warm-up phase (zero without Config.FastForward).
	FastForwarded uint64

	// Committed (non-speculative) operation counts.
	Committed         uint64
	CommittedLoads    uint64
	CommittedStores   uint64
	CommittedBranches uint64

	// Issued operation counts (including wrong-path work).
	Issued    uint64
	IssuedMem uint64

	Fetched  uint64
	Squashed uint64

	// Branch prediction (direction, conditional branches only).
	BranchLookups uint64
	BranchCorrect uint64

	// Address-translation behaviour seen from the core.
	TLBWalks          uint64 // page-table walks performed
	TLBWalkCycles     int64  // cycles spent with a walk in progress at the ROB head
	DispatchTLBStalls int64  // cycles dispatch was stalled by an outstanding TLB miss
	TLBRetries        uint64 // lookups rejected for want of a port (retried)

	// Instruction-fetch translation (only when Config.ModelITLB).
	ITLBAccesses      uint64
	ITLBMisses        uint64
	ITLBRefillRejects uint64 // unified-TLB refills rejected for want of a port

	// ContextFlushes counts FlushTLBEvery-induced full TLB flushes.
	ContextFlushes uint64

	// Stall breakdown (cycles; categories can overlap with useful work
	// elsewhere in the machine — they describe one stage each).
	FetchStallCycles    int64 // front end blocked (redirect penalty, I-cache or ITLB miss)
	DispatchROBFull     int64 // dispatch blocked on a full re-order buffer
	DispatchLSQFull     int64 // dispatch blocked on a full load/store queue
	DispatchEmptyCycles int64 // dispatch starved by the front end
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// IssueIPC returns issued operations per cycle (speculative included).
func (s *Stats) IssueIPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Issued) / float64(s.Cycles)
}

// MemPerCycle returns committed loads+stores per cycle.
func (s *Stats) MemPerCycle() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.CommittedLoads+s.CommittedStores) / float64(s.Cycles)
}

// IssuedMemPerCycle returns issued loads+stores per cycle.
func (s *Stats) IssuedMemPerCycle() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.IssuedMem) / float64(s.Cycles)
}

// BranchRate returns the conditional-branch prediction rate.
func (s *Stats) BranchRate() float64 {
	if s.BranchLookups == 0 {
		return 0
	}
	return float64(s.BranchCorrect) / float64(s.BranchLookups)
}
