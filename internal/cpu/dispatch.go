package cpu

import (
	"math"

	"hbat/internal/isa"
	"hbat/internal/ptrace"
)

// dispatch renames up to IssueWidth fetched instructions per cycle into
// the re-order buffer (and, for memory operations, the load/store
// queue). Per Section 4.1, dispatch stalls while any detected TLB miss
// is outstanding: speculative misses are never serviced, so the machine
// waits until the missing instruction is squashed or committed.
func (m *Machine) dispatch() {
	if m.tlbMissOutstanding > 0 {
		m.stats.DispatchTLBStalls++
		return
	}
	for w := 0; w < m.cfg.IssueWidth; w++ {
		fi := m.peekFetched()
		if fi == nil {
			if w == 0 {
				m.stats.DispatchEmptyCycles++
			}
			return
		}
		if m.rob.full() {
			if w == 0 {
				m.stats.DispatchROBFull++
			}
			return
		}
		isMem := fi.inst != nil && fi.inst.IsMem()
		if isMem && m.lsqCount >= m.cfg.LSQSize {
			if w == 0 {
				m.stats.DispatchLSQFull++
			}
			return
		}
		m.popFetched()

		idx := m.rob.push()
		e := m.rob.at(idx)
		e.seq = m.seq
		m.seq++
		e.pc = fi.pc
		e.inst = fi.inst
		e.predNextPC = fi.predNextPC
		e.predTaken = fi.predTaken
		e.ghrSnap = fi.ghrSnap
		if m.tracer != nil {
			m.tracer.Emit(e.seq, fi.fetchCycle, ptrace.KFetch, e.pc, e.inst, 0)
			m.tracer.Emit(e.seq, m.cycle, ptrace.KDispatch, e.pc, e.inst, int64(m.rob.count))
		}

		if fi.inst == nil {
			// Wrong-path fetch beyond the text segment: a placeholder
			// that completes immediately and must be squashed before
			// commit.
			e.state = sDone
			e.nextPC = fi.pc + isa.InstBytes
			if m.tracer != nil {
				m.tracer.Emit(e.seq, m.cycle, ptrace.KComplete, e.pc, e.inst, 0)
			}
			continue
		}
		in := fi.inst
		switch in.Class() {
		case isa.ClassNop, isa.ClassHalt:
			e.state = sDone
			e.nextPC = fi.pc + isa.InstBytes
			if m.tracer != nil {
				m.tracer.Emit(e.seq, m.cycle, ptrace.KComplete, e.pc, e.inst, 0)
			}
			continue
		}
		e.isCtrl = in.IsCtrl()
		e.isLoad = in.IsLoad()
		e.isStore = in.IsStore()

		var buf [4]isa.Reg
		for _, r := range in.Sources(buf[:0]) {
			op := operand{reg: r, producer: -1}
			if r != isa.Zero {
				if p := m.rename[r]; p >= 0 {
					op.producer = p
					op.slot = m.renameSlot[r]
					op.seq = m.rob.at(int(p)).seq
				} else {
					op.val = m.regs[r]
				}
			}
			e.srcs[e.nsrc] = op
			e.nsrc++
		}
		for _, r := range in.Dests(buf[:0]) {
			e.dests[e.ndest] = dest{reg: r, readyAt: math.MaxInt64}
			if r != isa.Zero {
				m.rename[r] = int32(idx)
				m.renameSlot[r] = int8(e.ndest)
			}
			e.ndest++
		}
		if isMem {
			m.lsqCount++
			e.memWidth = in.MemBytes()
			if e.isStore {
				m.nStoreNoAddr++
			}
		}
		e.state = sWaiting
		m.nWaiting++
	}
}
