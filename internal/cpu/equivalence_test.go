package cpu

import (
	"hash/fnv"
	"testing"

	"hbat/internal/isa"
	"hbat/internal/prog"
	"hbat/internal/tlb"
	"hbat/internal/workload"
)

// archState is the architected outcome of a run: everything a
// translation design is forbidden to change.
type archState struct {
	committed uint64
	loads     uint64
	stores    uint64
	regs      [isa.NumRegs]uint64
	dataHash  uint64
}

// dataDigest hashes the workload's data region through virtual
// addresses. Virtual (not physical) is essential: wrong-path fetches
// map code pages in a timing-dependent order, so physical frame
// numbers legitimately differ between designs while the virtual image
// must not.
func dataDigest(t *testing.T, m *Machine, p *prog.Program) uint64 {
	t.Helper()
	h := fnv.New64a()
	buf := make([]byte, 4096)
	for _, r := range p.Regions {
		if r.Name != "data" {
			continue
		}
		for off := uint64(0); off < r.Size; off += uint64(len(buf)) {
			n := uint64(len(buf))
			if r.Size-off < n {
				n = r.Size - off
			}
			if err := m.ReadVirt(r.Base+off, buf[:n]); err != nil {
				t.Fatalf("reading data region at 0x%x: %v", r.Base+off, err)
			}
			h.Write(buf[:n])
		}
	}
	return h.Sum64()
}

func captureArch(t *testing.T, m *Machine, p *prog.Program) archState {
	t.Helper()
	st := archState{
		committed: m.Stats().Committed,
		loads:     m.Stats().CommittedLoads,
		stores:    m.Stats().CommittedStores,
		dataHash:  dataDigest(t, m, p),
	}
	for r := 0; r < isa.NumRegs; r++ {
		st.regs[r] = m.Reg(isa.Reg(r))
	}
	return st
}

// TestAllDesignsArchEquivalent is the cross-design equivalence table:
// every Table 2 translation design, run on every workload, must retire
// the same instruction stream to the same architected state — designs
// may only change timing. Each run also carries the lockstep checker,
// so every (design, workload) cell is additionally verified commit-by-
// commit against the golden emulator.
func TestAllDesignsArchEquivalent(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p, err := w.Build(prog.Budget32, workload.ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			var want archState
			for i, design := range tlb.DesignOrder {
				cfg := DefaultConfig()
				cfg.Lockstep = true
				m, err := NewWithDesign(p, cfg, design)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Run(); err != nil {
					t.Fatalf("%s: %v", design, err)
				}
				if !m.Halted() {
					t.Fatalf("%s: did not halt", design)
				}
				got := captureArch(t, m, p)
				if i == 0 {
					want = got
					continue
				}
				ref := tlb.DesignOrder[0]
				if got.committed != want.committed || got.loads != want.loads || got.stores != want.stores {
					t.Errorf("%s committed %d insts (%d loads, %d stores); %s committed %d (%d, %d)",
						design, got.committed, got.loads, got.stores, ref, want.committed, want.loads, want.stores)
				}
				for r := 0; r < isa.NumRegs; r++ {
					if got.regs[r] != want.regs[r] {
						t.Errorf("%s: final %s = 0x%x, %s has 0x%x",
							design, isa.Reg(r), got.regs[r], ref, want.regs[r])
						break
					}
				}
				if got.dataHash != want.dataHash {
					t.Errorf("%s: final data-region digest %#x differs from %s's %#x",
						design, got.dataHash, ref, want.dataHash)
				}
			}
		})
	}
}
