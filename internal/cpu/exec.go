package cpu

import (
	"fmt"

	"hbat/internal/isa"
	"hbat/internal/ptrace"
	"hbat/internal/tlb"
	"hbat/internal/vm"
)

// operandReady reports whether source operand i of e is available this
// cycle, reading its value into the operand record when it is.
func (m *Machine) operandReady(e *robEntry, i int) bool {
	op := &e.srcs[i]
	if op.producer < 0 {
		return true
	}
	p := m.rob.at(int(op.producer))
	if !p.valid || p.seq != op.seq {
		// The producer has committed (its slot may have been
		// recycled); the architected register file holds its value.
		// No younger writer can have overwritten it: writers
		// younger than this instruction commit after it.
		op.val = m.regs[op.reg]
		op.producer = -1
		return true
	}
	d := &p.dests[op.slot]
	if d.readyAt > m.cycle {
		return false
	}
	op.val = d.val
	op.producer = -1
	return true
}

// issueOperandsReady reports whether the operands needed to ISSUE e are
// available. Stores issue on their address operands alone (Table 1:
// store addresses become known to the load/store queue as soon as they
// can be computed); the data value is captured later, before commit.
func (m *Machine) issueOperandsReady(e *robEntry) bool {
	first := 0
	if e.isStore {
		first = 1 // srcs[0] is the store value
	}
	ready := true
	for i := first; i < e.nsrc; i++ {
		if !m.operandReady(e, i) {
			ready = false
		}
	}
	return ready
}

// wawHazard implements the in-order model's "no renaming" stall: an
// instruction may not issue while an older, incomplete instruction
// writes one of its destination registers.
func (m *Machine) wawHazard(idx int, e *robEntry) bool {
	hazard := false
	m.rob.forEach(func(j int, o *robEntry) bool {
		if j == idx {
			return false
		}
		if o.state == sDone && m.cycle >= o.doneAt {
			return true
		}
		for a := 0; a < o.ndest; a++ {
			if o.dests[a].readyAt <= m.cycle {
				continue
			}
			for b := 0; b < e.ndest; b++ {
				if o.dests[a].reg == e.dests[b].reg && o.dests[a].reg != isa.Zero {
					hazard = true
					return false
				}
			}
		}
		return true
	})
	return hazard
}

// olderStoreAddrsKnown implements the load/store queue's ordering rule
// (Table 1): a load may execute only when every prior store address has
// been computed.
func (m *Machine) olderStoreAddrsKnown(idx int) bool {
	if m.nStoreNoAddr == 0 {
		return true
	}
	known := true
	m.rob.forEach(func(j int, o *robEntry) bool {
		if j == idx {
			return false
		}
		if o.isStore && !o.addrReady {
			known = false
			return false
		}
		return true
	})
	return known
}

// acquireFU claims a functional unit for e's class this cycle,
// modeling Table 1's pool: 8 integer ALUs, 4 load/store units, 4 FP
// adders, and single integer and FP multiply/divide units whose divides
// are unpipelined (issue interval = latency).
func (m *Machine) acquireFU(e *robEntry) (lat int64, ok bool) {
	switch e.inst.Class() {
	case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump:
		if m.intALUUsed >= m.cfg.IntALUs {
			return 0, false
		}
		m.intALUUsed++
		return m.cfg.IntALULat, true
	case isa.ClassIntMult:
		if m.intMDFree > m.cycle {
			return 0, false
		}
		m.intMDFree = m.cycle + 1
		return m.cfg.IntMultLat, true
	case isa.ClassIntDiv:
		if m.intMDFree > m.cycle {
			return 0, false
		}
		m.intMDFree = m.cycle + m.cfg.IntDivLat
		return m.cfg.IntDivLat, true
	case isa.ClassFPAdd:
		if m.fpAddUsed >= m.cfg.FPAdders {
			return 0, false
		}
		m.fpAddUsed++
		return m.cfg.FPAddLat, true
	case isa.ClassFPMult:
		if m.fpMDFree > m.cycle {
			return 0, false
		}
		m.fpMDFree = m.cycle + 1
		return m.cfg.FPMultLat, true
	case isa.ClassFPDiv:
		if m.fpMDFree > m.cycle {
			return 0, false
		}
		m.fpMDFree = m.cycle + m.cfg.FPDivLat
		return m.cfg.FPDivLat, true
	case isa.ClassLoad, isa.ClassStore:
		if m.ldstUsed >= m.cfg.LdStUnits {
			return 0, false
		}
		m.ldstUsed++
		return m.cfg.LoadLat, true
	}
	return m.cfg.IntALULat, true
}

// issue selects up to IssueWidth ready instructions. The out-of-order
// model scans the whole ROB oldest-first; the in-order model stops at
// the first instruction that cannot issue (stall-on-hazard, Table 1).
func (m *Machine) issue() {
	if m.nWaiting == 0 {
		return
	}
	issued := 0
	seenWaiting := 0
	m.rob.forEach(func(idx int, e *robEntry) bool {
		if issued >= m.cfg.IssueWidth || seenWaiting == m.nWaiting {
			return false
		}
		if e.state != sWaiting {
			return true
		}
		seenWaiting++
		canIssue := m.issueOperandsReady(e)
		if canIssue && m.cfg.InOrder && m.wawHazard(idx, e) {
			canIssue = false
		}
		if canIssue && e.isLoad && !m.olderStoreAddrsKnown(idx) {
			canIssue = false
		}
		var lat int64
		if canIssue {
			var ok bool
			lat, ok = m.acquireFU(e)
			canIssue = ok
		}
		if !canIssue {
			// In-order issue stalls the pipeline at the first hazard.
			return !m.cfg.InOrder
		}
		issued++
		seenWaiting-- // the entry leaves sWaiting
		m.nWaiting--
		m.stats.Issued++
		if m.tracer != nil {
			m.tracer.Emit(e.seq, m.cycle, ptrace.KIssue, e.pc, e.inst, lat)
		}
		m.execute(idx, e, lat)
		return true
	})
}

// execute computes an issued instruction's results (execution-driven:
// actual values, even on wrong paths) and schedules its completion.
func (m *Machine) execute(idx int, e *robEntry, lat int64) {
	in := e.inst
	switch in.Class() {
	case isa.ClassBranch:
		rs, rt := e.srcs[0].val, uint64(0)
		if e.nsrc > 1 {
			rt = e.srcs[1].val
		}
		taken := isa.BranchTaken(in, rs, rt)
		e.nextPC = e.pc + isa.InstBytes
		if taken {
			e.nextPC = in.Target
		}
		e.actualTaken(taken)
		e.state = sExecuting
		m.nExec++
		e.doneAt = m.cycle + lat

	case isa.ClassJump:
		switch in.Op {
		case isa.J:
			e.nextPC = in.Target
		case isa.Jal:
			e.nextPC = in.Target
			e.dests[0].val = e.pc + isa.InstBytes
			e.dests[0].readyAt = m.cycle + lat
		case isa.Jr:
			e.nextPC = e.srcs[0].val
		case isa.Jalr:
			e.nextPC = e.srcs[0].val
			e.dests[0].val = e.pc + isa.InstBytes
			e.dests[0].readyAt = m.cycle + lat
		}
		e.state = sExecuting
		m.nExec++
		e.doneAt = m.cycle + lat

	case isa.ClassLoad:
		base := e.srcs[0].val
		idxv := uint64(0)
		if in.Mode == isa.AMReg {
			idxv = e.srcs[1].val
		}
		addr, newBase, upd := isa.EffAddr(in, base, idxv)
		e.effAddr = addr
		e.addrReady = true
		if upd {
			// The base update is ready at address generation.
			e.dests[1].val = newBase
			e.dests[1].readyAt = m.cycle + 1
		}
		e.state = sMemReq
		m.nMem++
		e.memReqAt = m.cycle + 1
		m.stats.IssuedMem++

	case isa.ClassStore:
		base := e.srcs[1].val
		idxv := uint64(0)
		if in.Mode == isa.AMReg {
			idxv = e.srcs[2].val
		}
		addr, newBase, upd := isa.EffAddr(in, base, idxv)
		e.effAddr = addr
		e.addrReady = true
		m.nStoreNoAddr--
		if upd {
			e.dests[0].val = newBase
			e.dests[0].readyAt = m.cycle + 1
		}
		e.state = sMemReq
		m.nMem++
		e.memReqAt = m.cycle + 1
		m.stats.IssuedMem++

	default: // integer and FP computation
		rs, rt := uint64(0), uint64(0)
		if e.nsrc > 0 {
			rs = e.srcs[0].val
		}
		if e.nsrc > 1 {
			rt = e.srcs[1].val
		}
		e.dests[0].val = isa.ALUEval(in, rs, rt, e.pc)
		e.dests[0].readyAt = m.cycle + lat
		e.state = sExecuting
		m.nExec++
		e.doneAt = m.cycle + lat
	}
}

// memExecute advances memory operations past address generation: the
// TLB request (in instruction age order, so port arbitration favors
// the earliest issued instruction), page-table walks, store-forwarding,
// and data-cache access.
func (m *Machine) memExecute() {
	if m.nMem == 0 {
		return
	}
	m.rob.forEach(func(idx int, e *robEntry) bool {
		switch e.state {
		case sMemWalk:
			m.advanceWalk(idx, e)
		case sMemReq:
			if m.cycle >= e.memReqAt {
				m.memRequest(idx, e)
			}
		case sStoreData:
			if m.operandReady(e, 0) {
				e.storeVal = e.srcs[0].val
				e.state = sDone
				m.nMem--
				if e.doneAt < m.cycle {
					e.doneAt = m.cycle
				}
				if m.tracer != nil {
					m.tracer.Emit(e.seq, m.cycle, ptrace.KComplete, e.pc, e.inst, 0)
				}
			}
		}
		return m.err == nil
	})
}

// advanceWalk handles an entry whose translation missed the TLB. Per
// Section 4.1, the walk begins only when the instruction is no longer
// speculative (it has reached the ROB head, i.e. all earlier-issued
// instructions have completed) and takes a fixed TLBMissLatency.
func (m *Machine) advanceWalk(idx int, e *robEntry) {
	if !e.walking {
		if m.rob.headEntry() == e {
			e.walking = true
			e.walkDone = m.cycle + m.cfg.TLBMissLatency
			if m.tracer != nil {
				m.tracer.Emit(e.seq, m.cycle, ptrace.KWalkStart, e.pc, e.inst, m.cfg.TLBMissLatency)
			}
		}
		return
	}
	m.stats.TLBWalkCycles++
	if m.cycle < e.walkDone {
		return
	}
	vpn := e.effAddr >> m.pageBits
	if _, err := m.DTLB.Fill(vpn, m.cycle); err != nil {
		m.err = fmt.Errorf("cpu: pc 0x%x %s addr 0x%x: %w", e.pc, e.inst, e.effAddr, err)
		return
	}
	if m.tracer != nil {
		m.tracer.Emit(e.seq, m.cycle, ptrace.KWalkEnd, e.pc, e.inst, m.cfg.TLBMissLatency)
	}
	e.walking = false
	e.state = sMemReq
	e.memReqAt = m.cycle + 1
	// Younger instructions that missed on the same page were waiting on
	// this walk; send them back to the TLB rather than walking again.
	m.rob.forEach(func(_ int, o *robEntry) bool {
		if o.state == sMemWalk && !o.walking && o.effAddr>>m.pageBits == vpn {
			o.state = sMemReq
			o.memReqAt = m.cycle + 1
		}
		return true
	})
}

func offHiOf(in *isa.Inst) uint8 {
	if in.IsLoad() && in.Mode == isa.AMImm {
		return uint8(uint16(in.Imm)>>12) & 0xF
	}
	return 0
}

// memRequest performs one attempt at translating and accessing memory
// for a load or store whose address is generated.
func (m *Machine) memRequest(idx int, e *robEntry) {
	if m.cfg.VirtualCache {
		m.memRequestVC(idx, e)
		return
	}
	req := tlb.Request{
		VPN:   e.effAddr >> m.pageBits,
		Write: e.isStore,
		Base:  e.inst.Rs,
		OffHi: offHiOf(e.inst),
		Load:  e.isLoad,
	}
	res := m.DTLB.Lookup(req, m.cycle)
	switch res.Outcome {
	case tlb.NoPort:
		m.stats.TLBRetries++
		m.metrics.replayTLBNoPort.Inc()
		m.metrics.noPortThisCycle++
		if m.tracer != nil {
			m.tracer.Emit(e.seq, m.cycle, ptrace.KTLBNoPort, e.pc, e.inst, 0)
		}
		return
	case tlb.Miss:
		e.state = sMemWalk
		e.walking = false
		if m.tracer != nil {
			m.tracer.Emit(e.seq, m.cycle, ptrace.KTLBMiss, e.pc, e.inst, 0)
		}
		if !e.missCharged() {
			e.setMissCharged()
			m.tlbMissOutstanding++
		}
		return
	}
	m.metrics.transExtra.Observe(res.Extra)
	if m.tracer != nil {
		m.tracer.Emit(e.seq, m.cycle, ptrace.KTLBHit, e.pc, e.inst, res.Extra)
	}

	pte := res.PTE
	need := vm.PermRead
	if e.isStore {
		need = vm.PermWrite
	}
	if pte.Perm&need != need {
		// Protection fault: fatal if this instruction commits;
		// wrong-path faults are squashed harmlessly.
		e.setFaulted()
		e.state = sDone
		m.nMem--
		e.doneAt = m.cycle + 1
		if m.tracer != nil {
			m.tracer.Emit(e.seq, m.cycle, ptrace.KFault, e.pc, e.inst, 0)
			m.tracer.Emit(e.seq, m.cycle, ptrace.KComplete, e.pc, e.inst, 0)
		}
		return
	}
	e.paddr = pte.PFN<<m.pageBits | (e.effAddr & m.pageMask)

	if e.isStore {
		// Translated: the address is in the store queue. The store
		// completes once its data value arrives; the data-cache write
		// happens at commit.
		e.doneAt = m.cycle + 1 + res.Extra
		if m.operandReady(e, 0) {
			e.storeVal = e.srcs[0].val
			e.state = sDone
			m.nMem--
			if m.tracer != nil {
				m.tracer.Emit(e.seq, m.cycle, ptrace.KComplete, e.pc, e.inst, 0)
			}
		} else {
			e.state = sStoreData
		}
		return
	}

	// Load: try store-forwarding from the youngest older overlapping
	// store, else access the data cache.
	fwdVal, fwdOK, mustWait := m.forwardFromStore(idx, e)
	if mustWait {
		// Partially overlapping older store: wait for it to commit.
		// Re-requesting next cycle re-translates, which is what a
		// replayed access does.
		m.metrics.replayStoreWait.Inc()
		if m.tracer != nil {
			m.tracer.Emit(e.seq, m.cycle, ptrace.KStoreWait, e.pc, e.inst, 0)
		}
		return
	}
	var extraCache int64
	if !fwdOK {
		var ok bool
		extraCache, ok = m.dcache.Access(e.paddr, false, m.cycle)
		if !ok {
			m.metrics.replayCachePort.Inc()
			if m.tracer != nil {
				m.tracer.Emit(e.seq, m.cycle, ptrace.KDCachePort, e.pc, e.inst, 0)
			}
			return // no data-cache port; retry next cycle
		}
		fwdVal = m.readMem(e.paddr, e.memWidth)
		if m.tracer != nil {
			k := ptrace.KDCacheHit
			if extraCache > 0 {
				k = ptrace.KDCacheMiss
			}
			m.tracer.Emit(e.seq, m.cycle, k, e.pc, e.inst, extraCache)
		}
	}
	e.dests[0].val = isa.LoadExtend(e.inst.Op, fwdVal)
	done := m.cycle + 1 + res.Extra + extraCache
	e.dests[0].readyAt = done
	e.state = sDone
	m.nMem--
	e.doneAt = done
	if m.tracer != nil {
		m.tracer.Emit(e.seq, m.cycle, ptrace.KComplete, e.pc, e.inst, done-m.cycle)
	}
}

// memRequestVC is the virtual-address-cache variant of memRequest:
// the cache is probed by virtual address first, and the translation
// device is involved only when the access misses the cache (or the
// line was warmed by a wrong-path access to a page with no mapping).
func (m *Machine) memRequestVC(idx int, e *robEntry) {
	vpn := e.effAddr >> m.pageBits

	// Store-forwarding is entirely virtual: a forwarded load needs no
	// translation at all in this organization.
	if e.isLoad {
		fwdVal, fwdOK, mustWait := m.forwardFromStore(idx, e)
		if mustWait {
			m.metrics.replayStoreWait.Inc()
			if m.tracer != nil {
				m.tracer.Emit(e.seq, m.cycle, ptrace.KStoreWait, e.pc, e.inst, 0)
			}
			return
		}
		if fwdOK {
			e.dests[0].val = isa.LoadExtend(e.inst.Op, fwdVal)
			done := m.cycle + 1
			e.dests[0].readyAt = done
			e.state = sDone
			m.nMem--
			e.doneAt = done
			if m.tracer != nil {
				m.tracer.Emit(e.seq, m.cycle, ptrace.KComplete, e.pc, e.inst, 1)
			}
			return
		}
	}

	if m.dcache.Probe(e.effAddr) {
		if pte, ok := m.AS.Probe(vpn); ok {
			need := vm.PermRead
			if e.isStore {
				need = vm.PermWrite
			}
			if pte.Perm&need != need {
				e.setFaulted()
				e.state = sDone
				m.nMem--
				e.doneAt = m.cycle + 1
				if m.tracer != nil {
					m.tracer.Emit(e.seq, m.cycle, ptrace.KFault, e.pc, e.inst, 0)
					m.tracer.Emit(e.seq, m.cycle, ptrace.KComplete, e.pc, e.inst, 0)
				}
				return
			}
			e.paddr = pte.PFN<<m.pageBits | (e.effAddr & m.pageMask)
			if e.isStore {
				e.doneAt = m.cycle + 1
				if m.operandReady(e, 0) {
					e.storeVal = e.srcs[0].val
					e.state = sDone
					m.nMem--
					if m.tracer != nil {
						m.tracer.Emit(e.seq, m.cycle, ptrace.KComplete, e.pc, e.inst, 0)
					}
				} else {
					e.state = sStoreData
				}
				return
			}
			extraC, ok := m.dcache.Access(e.effAddr, false, m.cycle)
			if !ok {
				m.metrics.replayCachePort.Inc()
				if m.tracer != nil {
					m.tracer.Emit(e.seq, m.cycle, ptrace.KDCachePort, e.pc, e.inst, 0)
				}
				return // no port; retry
			}
			done := m.cycle + 1 + extraC
			e.dests[0].val = isa.LoadExtend(e.inst.Op, m.readMem(e.paddr, e.memWidth))
			e.dests[0].readyAt = done
			e.state = sDone
			m.nMem--
			e.doneAt = done
			if m.tracer != nil {
				k := ptrace.KDCacheHit
				if extraC > 0 {
					k = ptrace.KDCacheMiss
				}
				m.tracer.Emit(e.seq, m.cycle, k, e.pc, e.inst, extraC)
				m.tracer.Emit(e.seq, m.cycle, ptrace.KComplete, e.pc, e.inst, done-m.cycle)
			}
			return
		}
		// A wrong-path access warmed this line before its page was ever
		// mapped; fall through to the translating path so a correct-path
		// access takes the walk.
	}

	// Cache miss: physical storage must be addressed, so the
	// translation device is consulted (with its usual port and walk
	// behaviour) — the only time this organization pays for translation.
	req := tlb.Request{
		VPN:   vpn,
		Write: e.isStore,
		Base:  e.inst.Rs,
		OffHi: offHiOf(e.inst),
		Load:  e.isLoad,
	}
	res := m.DTLB.Lookup(req, m.cycle)
	switch res.Outcome {
	case tlb.NoPort:
		m.stats.TLBRetries++
		m.metrics.replayTLBNoPort.Inc()
		m.metrics.noPortThisCycle++
		if m.tracer != nil {
			m.tracer.Emit(e.seq, m.cycle, ptrace.KTLBNoPort, e.pc, e.inst, 0)
		}
		return
	case tlb.Miss:
		e.state = sMemWalk
		e.walking = false
		if m.tracer != nil {
			m.tracer.Emit(e.seq, m.cycle, ptrace.KTLBMiss, e.pc, e.inst, 0)
		}
		if !e.missCharged() {
			e.setMissCharged()
			m.tlbMissOutstanding++
		}
		return
	}
	m.metrics.transExtra.Observe(res.Extra)
	if m.tracer != nil {
		m.tracer.Emit(e.seq, m.cycle, ptrace.KTLBHit, e.pc, e.inst, res.Extra)
	}
	pte := res.PTE
	need := vm.PermRead
	if e.isStore {
		need = vm.PermWrite
	}
	if pte.Perm&need != need {
		e.setFaulted()
		e.state = sDone
		m.nMem--
		e.doneAt = m.cycle + 1
		if m.tracer != nil {
			m.tracer.Emit(e.seq, m.cycle, ptrace.KFault, e.pc, e.inst, 0)
			m.tracer.Emit(e.seq, m.cycle, ptrace.KComplete, e.pc, e.inst, 0)
		}
		return
	}
	e.paddr = pte.PFN<<m.pageBits | (e.effAddr & m.pageMask)
	if e.isStore {
		e.doneAt = m.cycle + 1 + res.Extra
		if m.operandReady(e, 0) {
			e.storeVal = e.srcs[0].val
			e.state = sDone
			m.nMem--
			if m.tracer != nil {
				m.tracer.Emit(e.seq, m.cycle, ptrace.KComplete, e.pc, e.inst, 0)
			}
		} else {
			e.state = sStoreData
		}
		return
	}
	extraC, ok := m.dcache.Access(e.effAddr, false, m.cycle)
	if !ok {
		m.metrics.replayCachePort.Inc()
		if m.tracer != nil {
			m.tracer.Emit(e.seq, m.cycle, ptrace.KDCachePort, e.pc, e.inst, 0)
		}
		return
	}
	done := m.cycle + 1 + res.Extra + extraC
	e.dests[0].val = isa.LoadExtend(e.inst.Op, m.readMem(e.paddr, e.memWidth))
	e.dests[0].readyAt = done
	e.state = sDone
	m.nMem--
	e.doneAt = done
	if m.tracer != nil {
		k := ptrace.KDCacheHit
		if extraC > 0 {
			k = ptrace.KDCacheMiss
		}
		m.tracer.Emit(e.seq, m.cycle, k, e.pc, e.inst, extraC)
		m.tracer.Emit(e.seq, m.cycle, ptrace.KComplete, e.pc, e.inst, done-m.cycle)
	}
}

// forwardFromStore searches older in-flight stores for one covering
// this load. Exact address+width matches forward the raw value;
// partial overlaps force the load to wait (mustWait).
func (m *Machine) forwardFromStore(idx int, e *robEntry) (val uint64, ok, mustWait bool) {
	lo, hi := e.effAddr, e.effAddr+uint64(e.memWidth)
	m.rob.forEach(func(j int, o *robEntry) bool {
		if j == idx {
			return false
		}
		if !o.isStore || !o.addrReady {
			return true
		}
		slo, shi := o.effAddr, o.effAddr+uint64(o.memWidth)
		if hi <= slo || shi <= lo {
			return true
		}
		if slo == lo && o.memWidth == e.memWidth && o.state == sDone {
			val, ok, mustWait = o.storeVal, true, false
		} else {
			// Partial overlap, or the store's data isn't ready yet.
			val, ok, mustWait = 0, false, true
		}
		return true // keep scanning: the youngest older match wins
	})
	return val, ok, mustWait
}

// complete finishes executing instructions whose latency has elapsed
// and resolves control flow, triggering misprediction recovery.
func (m *Machine) complete() {
	if m.nExec == 0 {
		return
	}
	recovered := false
	m.rob.forEach(func(idx int, e *robEntry) bool {
		if e.state == sExecuting && m.cycle >= e.doneAt {
			e.state = sDone
			m.nExec--
			if m.tracer != nil {
				m.tracer.Emit(e.seq, m.cycle, ptrace.KComplete, e.pc, e.inst, 0)
			}
			if e.isCtrl && !e.resolved {
				e.resolved = true
				m.resolveControl(idx, e)
				if e.nextPC != e.predNextPC {
					m.recover(idx, e)
					recovered = true
					return false
				}
			}
		}
		return true
	})
	_ = recovered
}

// resolveControl trains the predictor with the actual outcome.
func (m *Machine) resolveControl(idx int, e *robEntry) {
	in := e.inst
	if in.IsCondBranch() {
		taken := e.takenActual()
		correct := m.pred.Resolve(e.pc, e.predTaken, taken, e.ghrSnap)
		m.stats.BranchLookups++
		if correct {
			m.stats.BranchCorrect++
		}
		if taken {
			m.pred.UpdateTarget(e.pc, e.nextPC)
		}
		return
	}
	if in.Op == isa.Jr || in.Op == isa.Jalr {
		// Indirect jumps count against the prediction rate: their
		// target comes from the BTB and is frequently wrong for
		// interpreter-style dispatch.
		m.stats.BranchLookups++
		if e.nextPC == e.predNextPC {
			m.stats.BranchCorrect++
		}
		m.pred.UpdateTarget(e.pc, e.nextPC)
	}
}

// recover squashes everything younger than the mispredicted control
// instruction, rebuilds the rename map and queue occupancy from the
// surviving entries, and redirects fetch with the misprediction
// penalty.
func (m *Machine) recover(idx int, e *robEntry) {
	if m.tracer != nil {
		past := false
		m.rob.forEach(func(j int, o *robEntry) bool {
			if past {
				m.tracer.Emit(o.seq, m.cycle, ptrace.KSquash, o.pc, o.inst, 0)
			}
			if j == idx {
				past = true
			}
			return true
		})
	}
	n := m.rob.squashAfter(idx)
	m.stats.Squashed += uint64(n)
	m.metrics.squashRecoveries.Inc()
	m.metrics.squashedInsts.Add(uint64(n))

	for r := range m.rename {
		m.rename[r] = -1
	}
	m.lsqCount = 0
	m.tlbMissOutstanding = 0
	m.nWaiting, m.nExec, m.nMem, m.nStoreNoAddr = 0, 0, 0, 0
	m.rob.forEach(func(i int, o *robEntry) bool {
		if o.isStore && !o.addrReady {
			m.nStoreNoAddr++
		}
		switch o.state {
		case sWaiting:
			m.nWaiting++
		case sExecuting:
			m.nExec++
		case sMemReq, sMemWalk, sStoreData:
			m.nMem++
		}
		for s := 0; s < o.ndest; s++ {
			if o.dests[s].reg != isa.Zero {
				m.rename[o.dests[s].reg] = int32(i)
				m.renameSlot[o.dests[s].reg] = int8(s)
			}
		}
		if o.inst != nil && o.inst.IsMem() {
			m.lsqCount++
		}
		if o.missCharged() {
			m.tlbMissOutstanding++
		}
		return true
	})

	m.flushFetchQ()
	m.haltPending = false
	m.fetchPC = e.nextPC
	stall := m.cycle + m.pred.MispredictPenalty() - 1
	if stall > m.fetchStallUntil {
		m.fetchStallUntil = stall
		m.fetchStallCause = stallRedirect
	}
}
