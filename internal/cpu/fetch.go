package cpu

import (
	"hbat/internal/isa"
	"hbat/internal/ptrace"
	"hbat/internal/tlb"
)

// fetch models the front end of Table 1 with the collapsing-buffer
// variant of Section 4.1: up to FetchWidth instructions per cycle from
// a single instruction-cache block, with up to MaxBranchesPerFetch
// control-flow predictions; a predicted-taken branch whose target falls
// in the same block keeps the fetch run going ("collapsing").
func (m *Machine) fetch() {
	if m.haltPending {
		return
	}
	if m.cycle < m.fetchStallUntil {
		m.stats.FetchStallCycles++
		m.countFetchStall()
		return
	}
	if m.fetchQLen() >= m.cfg.FetchQueue {
		m.metrics.stallQueueFull.Inc()
		return
	}
	blockMask := uint64(m.icache.BlockBytes() - 1)
	block := m.fetchPC &^ blockMask

	// Optional micro-ITLB: one fetch translation per cycle; a miss
	// stalls the front end while the translation is refilled.
	if m.itlb != nil {
		vpn := m.fetchPC >> m.pageBits
		m.stats.ITLBAccesses++
		if _, ok := m.itlb.Lookup(vpn, m.cycle); !ok {
			m.stats.ITLBMisses++
			if m.tracer != nil {
				m.tracer.Emit(-1, m.cycle, ptrace.KITLBMiss, m.fetchPC, nil, 0)
			}
			if m.cfg.UnifiedTLB {
				// The refill goes through the shared translation
				// device, competing with data requests for a port.
				res := m.DTLB.Lookup(tlb.Request{VPN: vpn}, m.cycle)
				switch res.Outcome {
				case tlb.NoPort:
					// Retry next cycle; the data side kept the ports.
					m.stats.ITLBRefillRejects++
					m.stats.ITLBMisses-- // counted again on the retry
					m.stats.ITLBAccesses--
					return
				case tlb.Miss:
					// Code pages are in the page table (the loader put
					// them there); a shared-TLB capacity miss still
					// costs a full walk.
					if _, err := m.DTLB.Fill(vpn, m.cycle); err != nil {
						// Wrong-path fetch outside any region: treat as
						// unmapped; the bogus path will be squashed.
						m.fetchStallUntil = m.cycle + m.cfg.ITLBRefillLatency
						m.fetchStallCause = stallITLBMiss
						m.itlb.Insert(vpn, nil, m.cycle)
						return
					}
					m.itlb.Insert(vpn, nil, m.cycle)
					m.fetchStallUntil = m.cycle + m.cfg.TLBMissLatency
					m.fetchStallCause = stallITLBMiss
					return
				default:
					m.itlb.Insert(vpn, nil, m.cycle)
					m.fetchStallUntil = m.cycle + m.cfg.ITLBRefillLatency + res.Extra
					m.fetchStallCause = stallITLBMiss
					return
				}
			}
			m.itlb.Insert(vpn, nil, m.cycle)
			m.fetchStallUntil = m.cycle + m.cfg.ITLBRefillLatency
			m.fetchStallCause = stallITLBMiss
			return
		}
	}

	// One I-cache block access per fetch cycle.
	if extra := m.icache.AccessUnported(m.fetchPaddr(m.fetchPC), false, m.cycle); extra > 0 {
		m.fetchStallUntil = m.cycle + extra
		m.fetchStallCause = stallICacheMiss
		return
	}

	branches := 0
	pc := m.fetchPC
	for n := 0; n < m.cfg.FetchWidth && m.fetchQLen() < m.cfg.FetchQueue; n++ {
		if pc&^blockMask != block {
			break
		}
		in := m.prog.InstAt(pc)
		fi := fetchedInst{pc: pc, inst: in, predNextPC: pc + isa.InstBytes, fetchCycle: m.cycle}

		if in != nil {
			switch in.Class() {
			case isa.ClassBranch:
				if branches >= m.cfg.MaxBranchesPerFetch {
					// Prediction budget exhausted; this branch waits
					// for next cycle.
					m.fetchPC = pc
					return
				}
				branches++
				taken, snap := m.pred.PredictDir(pc)
				fi.predTaken, fi.ghrSnap, fi.isCond = taken, snap, true
				if taken {
					fi.predNextPC = in.Target
				}
			case isa.ClassJump:
				if branches >= m.cfg.MaxBranchesPerFetch {
					m.fetchPC = pc
					return
				}
				branches++
				switch in.Op {
				case isa.J, isa.Jal:
					// Direct targets are available from the decoded
					// instruction; no prediction needed.
					fi.predNextPC = in.Target
				case isa.Jr, isa.Jalr:
					// Indirect: predict through the BTB; on a BTB miss
					// fetch falls through and the (near-certain)
					// misprediction is repaired at execute.
					if tgt, ok := m.pred.PredictTarget(pc); ok {
						fi.predNextPC = tgt
					}
				}
			case isa.ClassHalt:
				m.pushFetched(fi)
				m.stats.Fetched++
				m.haltPending = true
				m.fetchPC = pc + isa.InstBytes
				return
			}
		}

		m.pushFetched(fi)
		m.stats.Fetched++
		pc = fi.predNextPC
	}
	m.fetchPC = pc
}

func (m *Machine) fetchQLen() int { return len(m.fetchQ) - m.fetchQHead }

func (m *Machine) pushFetched(fi fetchedInst) {
	if m.fetchQHead > 0 && m.fetchQHead == len(m.fetchQ) {
		m.fetchQ = m.fetchQ[:0]
		m.fetchQHead = 0
	}
	m.fetchQ = append(m.fetchQ, fi)
}

func (m *Machine) peekFetched() *fetchedInst {
	if m.fetchQLen() == 0 {
		return nil
	}
	return &m.fetchQ[m.fetchQHead]
}

func (m *Machine) popFetched() fetchedInst {
	fi := m.fetchQ[m.fetchQHead]
	m.fetchQHead++
	if m.fetchQHead == len(m.fetchQ) {
		m.fetchQ = m.fetchQ[:0]
		m.fetchQHead = 0
	}
	return fi
}

func (m *Machine) flushFetchQ() {
	m.fetchQ = m.fetchQ[:0]
	m.fetchQHead = 0
}
