package cpu

import (
	"context"
	"fmt"

	"hbat/internal/ckpt"
	"hbat/internal/tlb"
)

// ctx0 substitutes Background for the nil context SetCancel leaves
// behind when cancellation is disabled.
func ctx0(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// FastForward performs the two-phase simulation's functional warm-up
// (or checkpoint restore) ahead of the first simulated cycle. Run
// calls it automatically; callers that want to time the warm-up
// separately from the cycle loop (the harness's span tracer does)
// may invoke it explicitly first — it is idempotent, and any error
// it returns is sticky and re-reported by Run.
func (m *Machine) FastForward() error {
	if m.err == nil {
		if err := m.maybeFastForward(); err != nil {
			m.err = fmt.Errorf("cpu: fast-forward: %w", err)
		}
	}
	return m.err
}

// maybeFastForward runs (or restores) the two-phase simulation's
// functional warm-up. Called once at the top of Run: with
// Config.FastForward set, the machine's architectural and warmed
// microarchitectural state is replaced by the checkpoint's before the
// first cycle is simulated. With Config.Checkpoint nil the warm-up runs
// inline on the functional emulator, honoring SetCancel's context at the
// same 4096-step granularity as the cycle loop.
func (m *Machine) maybeFastForward() error {
	if m.cfg.FastForward == 0 || m.stats.FastForwarded != 0 {
		return nil
	}
	c := m.cfg.Checkpoint
	if c == nil {
		ctx := m.cancelCtx
		built, err := ckpt.Build(ctx0(ctx), m.prog, ckpt.BuildConfig{
			PageSize:    m.cfg.PageSize,
			FastForward: m.cfg.FastForward,
			ICache:      m.cfg.ICache,
			DCache:      m.cfg.DCache,
			Branch:      m.cfg.Branch,
			Engine:      m.cfg.FFwdEngine,
		})
		if err != nil {
			return err
		}
		c = built
	}
	return m.restoreCheckpoint(c)
}

// restoreCheckpoint injects a warmed checkpoint into the machine. The
// address space is mutated in place — the TLB device captured its
// pointer at construction — while physical memory, which nothing
// aliases, is replaced wholesale (the loader-written frames must not
// survive: the checkpoint's zero-frame omission assumes a fresh store).
func (m *Machine) restoreCheckpoint(c *ckpt.Checkpoint) error {
	if c.PageSize != m.cfg.PageSize {
		return fmt.Errorf("cpu: checkpoint page size %d does not match config %d", c.PageSize, m.cfg.PageSize)
	}
	if c.FastForward != m.cfg.FastForward {
		return fmt.Errorf("cpu: checkpoint fast-forward %d does not match config %d", c.FastForward, m.cfg.FastForward)
	}

	// Architectural state.
	m.regs = c.Regs
	m.fetchPC = c.PC
	m.AS.ImportPages(c.Pages, c.NextFrame)
	m.Mem.ImportFrames(c.Frames)

	// Warmed microarchitectural state. The instruction cache always
	// imports; the data cache's checkpointed image is physically indexed,
	// so a virtually-indexed configuration starts it cold instead.
	if err := m.icache.ImportState(c.ICache); err != nil {
		return fmt.Errorf("cpu: restoring icache: %w", err)
	}
	if !m.cfg.VirtualCache {
		if err := m.dcache.ImportState(c.DCache); err != nil {
			return fmt.Errorf("cpu: restoring dcache: %w", err)
		}
	}
	if err := m.pred.ImportState(c.Pred); err != nil {
		return fmt.Errorf("cpu: restoring predictor: %w", err)
	}

	// TLB warm-up: replay the distinct-page reference stream oldest
	// first with negative recency stamps, resolving each VPN against the
	// freshly imported page table. Designs that cannot warm (none of the
	// Table 2 set) simply start cold. The micro-ITLB is left cold: its
	// four entries warm within a handful of fetches.
	if w, ok := m.DTLB.(tlb.Warmer); ok {
		refs := c.WarmRefs
		for i, ref := range refs {
			pte, ok := m.AS.Lookup(ref.VPN)
			if !ok {
				return fmt.Errorf("cpu: warm ref vpn 0x%x not in checkpointed page table", ref.VPN)
			}
			w.Warm(ref.VPN, pte, int64(i)-int64(len(refs)))
		}
	}

	// The lockstep golden reference must start at the handoff point, not
	// at program entry.
	if m.lockstep != nil {
		m.lockstep.ref = c.RestoreEmu(m.prog)
	}

	m.stats.FastForwarded = c.FastForward
	return nil
}
