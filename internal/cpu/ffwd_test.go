package cpu

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"hbat/internal/ckpt"
	"hbat/internal/emu"
	"hbat/internal/isa"
	"hbat/internal/prog"
	"hbat/internal/workload"
)

// ffwdDesigns spans all four device families: multiported,
// multi-level, interleaved, and pretranslation.
var ffwdDesigns = []string{"T4", "M8", "I4", "P8"}

// Stated tolerances of the two-phase mode: warmed state approximates
// (never replays) the skipped prefix's exact microarchitectural history,
// so the measurement window's timing may drift within these bounds while
// architectural state stays bit-identical.
const (
	ffwdIPCTol  = 0.05  // relative, window IPC
	ffwdMissTol = 0.005 // absolute, window TLB miss rate
)

// functionalLength runs the workload on the emulator and returns its
// total instruction count.
func functionalLength(t *testing.T, p *prog.Program) uint64 {
	t.Helper()
	em, err := emu.New(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := em.Run(0); err != nil {
		t.Fatal(err)
	}
	return em.InstCount
}

// TestFastForwardDifferential is the two-phase mode's correctness table:
// for every workload and a design from each device family, a full
// cycle-accurate run and a fast-forward+measure run of the same
// measurement window must produce bit-identical architectural state
// (registers, data image, retirement counts — the fast-forward runs
// carry the lockstep checker from the handoff point, so every measured
// commit is additionally verified against the restored golden emulator)
// and window IPC / TLB miss rate within the stated tolerances.
func TestFastForwardDifferential(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p, err := w.Build(prog.Budget32, workload.ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			total := functionalLength(t, p)
			n := total / 2
			if n == 0 {
				t.Fatalf("workload too short to split: %d insts", total)
			}

			for _, design := range ffwdDesigns {
				// Full cycle-accurate run, program entry to halt.
				fullCfg := DefaultConfig()
				fullCfg.Lockstep = true
				full, err := NewWithDesign(p, fullCfg, design)
				if err != nil {
					t.Fatal(err)
				}
				if err := full.Run(); err != nil {
					t.Fatalf("%s full run: %v", design, err)
				}
				if !full.Halted() {
					t.Fatalf("%s full run did not halt", design)
				}

				// Prefix run: the same machine configuration stopped at
				// the fast-forward point, to difference the full run's
				// stats down to the measurement window.
				prefixCfg := DefaultConfig()
				prefixCfg.MaxInsts = n
				prefix, err := NewWithDesign(p, prefixCfg, design)
				if err != nil {
					t.Fatal(err)
				}
				if err := prefix.Run(); err != nil {
					t.Fatalf("%s prefix run: %v", design, err)
				}

				// Two-phase run: functional fast-forward over the prefix,
				// cycle-accurate measurement to halt, lockstep-checked
				// against the restored golden reference.
				ffwdCfg := DefaultConfig()
				ffwdCfg.FastForward = n
				ffwdCfg.Lockstep = true
				ffwd, err := NewWithDesign(p, ffwdCfg, design)
				if err != nil {
					t.Fatal(err)
				}
				if err := ffwd.Run(); err != nil {
					t.Fatalf("%s fast-forward run: %v", design, err)
				}
				if !ffwd.Halted() {
					t.Fatalf("%s fast-forward run did not halt", design)
				}
				if got := ffwd.Stats().FastForwarded; got != n {
					t.Fatalf("%s: FastForwarded = %d, want %d", design, got, n)
				}

				// Architectural state: bit-identical.
				if got, want := ffwd.Stats().FastForwarded+ffwd.Stats().Committed, full.Stats().Committed; got != want {
					t.Errorf("%s: fast-forwarded %d + committed %d = %d insts, full run committed %d",
						design, ffwd.Stats().FastForwarded, ffwd.Stats().Committed, got, want)
				}
				for r := 0; r < isa.NumRegs; r++ {
					if got, want := ffwd.Reg(isa.Reg(r)), full.Reg(isa.Reg(r)); got != want {
						t.Errorf("%s: final %s = 0x%x, full run has 0x%x", design, isa.Reg(r), got, want)
						break
					}
				}
				if got, want := dataDigest(t, ffwd, p), dataDigest(t, full, p); got != want {
					t.Errorf("%s: final data-region digest %#x differs from full run's %#x", design, got, want)
				}

				// Timing: the fast-forward run's measurement window vs
				// the same window of the full run (full minus prefix).
				winCommitted := full.Stats().Committed - prefix.Stats().Committed
				winCycles := full.Stats().Cycles - prefix.Stats().Cycles
				if winCycles <= 0 {
					t.Fatalf("%s: empty measurement window in full run", design)
				}
				wantIPC := float64(winCommitted) / float64(winCycles)
				gotIPC := ffwd.Stats().IPC()
				if rel := math.Abs(gotIPC-wantIPC) / wantIPC; rel > ffwdIPCTol {
					t.Errorf("%s: window IPC %.4f vs full run's %.4f (rel err %.3f > %.2f)",
						design, gotIPC, wantIPC, rel, ffwdIPCTol)
				}

				fullTLB, prefTLB := full.DTLB.Stats(), prefix.DTLB.Stats()
				winLookups := fullTLB.Lookups - prefTLB.Lookups
				wantMiss := 0.0
				if winLookups > 0 {
					wantMiss = float64(fullTLB.Misses-prefTLB.Misses) / float64(winLookups)
				}
				gotMiss := ffwd.DTLB.Stats().MissRate()
				if diff := math.Abs(gotMiss - wantMiss); diff > ffwdMissTol {
					t.Errorf("%s: window TLB miss rate %.4f vs full run's %.4f (abs err %.4f > %.3f)",
						design, gotMiss, wantMiss, diff, ffwdMissTol)
				}
			}
		})
	}
}

// TestFastForwardShortProgram: fast-forwarding past the program's end
// must fail with the typed error, not measure an empty window.
func TestFastForwardShortProgram(t *testing.T) {
	p, err := workload.All()[0].Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	total := functionalLength(t, p)
	cfg := DefaultConfig()
	cfg.FastForward = total + 1
	m, err := NewWithDesign(p, cfg, "T4")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); !errors.Is(err, ckpt.ErrShortProgram) {
		t.Fatalf("Run = %v, want ErrShortProgram", err)
	}
}

// spinProgram builds a program that never halts: the functional phase
// can only end via cancellation.
func spinProgram(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("spin")
	x := b.IVar("x")
	b.Move(x, isa.Zero)
	b.Label("loop")
	b.Addi(x, x, 1)
	b.J("loop")
	b.Halt()
	p, err := b.Finalize(prog.Budget32)
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return p
}

// TestFastForwardCancellation mirrors the sweep engine's in-flight
// cancellation test: SetCancel's context must interrupt the functional
// fast-forward phase — not just the cycle loop — promptly.
func TestFastForwardCancellation(t *testing.T) {
	p := spinProgram(t)
	cfg := DefaultConfig()
	cfg.FastForward = 1 << 40
	m, err := NewWithDesign(p, cfg, "T4")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m.SetCancel(ctx)
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = m.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt interruption of the warm-up", el)
	}
}

// TestFastForwardAlreadyCancelled: a context cancelled before Run must
// stop the warm-up at its first poll.
func TestFastForwardAlreadyCancelled(t *testing.T) {
	p := spinProgram(t)
	cfg := DefaultConfig()
	cfg.FastForward = 1 << 40
	m, err := NewWithDesign(p, cfg, "T4")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.SetCancel(ctx)
	if err := m.Run(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
}
