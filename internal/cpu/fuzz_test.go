package cpu

import (
	"fmt"
	"testing"

	"hbat/internal/emu"
	"hbat/internal/prog"
	"hbat/internal/progen"
)

// TestRandomProgramsDifferential generates random programs and checks
// that the out-of-order pipeline (on several TLB designs) and the
// in-order pipeline retire exactly the functional emulator's state:
// same instruction counts, same registers, same memory. This is the
// net that catches forwarding, squash, renaming, and device bugs the
// directed tests miss.
func TestRandomProgramsDifferential(t *testing.T) {
	designs := []string{"T4", "T1", "M4", "P8", "I4/PB"}
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for s := 0; s < seeds; s++ {
		s := s
		t.Run(fmt.Sprintf("seed%d", s), func(t *testing.T) {
			t.Parallel()
			p, err := progen.Generate(uint64(s)*2654435761+17, 150, prog.Budget32, progen.Flavor(s)%progen.NumFlavors)
			if err != nil {
				t.Fatalf("gen: %v", err)
			}
			ref, err := emu.New(p, 4096)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Run(10_000_000); err != nil {
				t.Fatalf("emu: %v", err)
			}
			want := make([]byte, 4096+64)
			if err := ref.ReadVirt(prog.DataBase, want); err != nil {
				t.Fatal(err)
			}

			check := func(name string, m *Machine) {
				if err := m.Run(); err != nil {
					t.Fatalf("%s: %v\n%s", name, err, m.DebugHead())
				}
				if m.Stats().Committed != ref.InstCount {
					t.Errorf("%s: committed %d, emu %d", name, m.Stats().Committed, ref.InstCount)
				}
				got := make([]byte, len(want))
				if err := m.ReadVirt(prog.DataBase, got); err != nil {
					t.Fatal(err)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%s: memory differs at +%d (%#x vs %#x)", name, i, got[i], want[i])
						return
					}
				}
			}

			// Every machine also runs the lockstep checker, so a
			// divergence is caught at the offending commit (with a
			// decoded context window) instead of at the final-state
			// comparison below.
			design := designs[s%len(designs)]
			cfg := DefaultConfig()
			cfg.Lockstep = true
			m, err := NewWithDesign(p, cfg, design)
			if err != nil {
				t.Fatal(err)
			}
			check(design, m)

			cfg = DefaultConfig()
			cfg.Lockstep = true
			cfg.InOrder = true
			mi, err := NewWithDesign(p, cfg, design)
			if err != nil {
				t.Fatal(err)
			}
			check(design+"/inorder", mi)

			cfg = DefaultConfig()
			cfg.Lockstep = true
			cfg.VirtualCache = true
			mv, err := NewWithDesign(p, cfg, design)
			if err != nil {
				t.Fatal(err)
			}
			check(design+"/vcache", mv)
		})
	}
}

// FuzzLockstep feeds generated programs through the timed pipeline with
// the lockstep differential checker enabled: every commit is compared
// against the golden emulator, so any divergence the fuzzer provokes is
// reported at the exact instruction, not as a garbled final state. The
// seed corpus pins the three hazard classes the checker exists for:
// store-forwarding pressure, wrong-path squash recovery, and the 8/8
// register budget's spill/reload traffic.
func FuzzLockstep(f *testing.F) {
	// seed, length, design index, flavor, flags (1=Budget8, 2=inorder, 4=vcache)
	f.Add(uint64(17), uint16(150), uint8(0), progen.FlavorMixed, uint8(0))
	f.Add(uint64(4242), uint16(220), uint8(1), progen.FlavorMem, uint8(0))     // store-forwarding heavy on a 1-port TLB
	f.Add(uint64(907), uint16(220), uint8(2), progen.FlavorBranchy, uint8(0))  // squash heavy on the multi-level TLB
	f.Add(uint64(1251), uint16(180), uint8(3), progen.FlavorMixed, uint8(1))   // spill/reload under the 8/8 budget
	f.Add(uint64(77), uint16(160), uint8(4), progen.FlavorMem, uint8(1|2))     // Budget8 + in-order piggyback TLB
	f.Add(uint64(3301), uint16(160), uint8(0), progen.FlavorBranchy, uint8(4)) // virtually-indexed cache path
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, designIdx, flavor, flags uint8) {
		designs := []string{"T4", "T1", "M4", "P8", "I4/PB"}
		nInsts := 20 + int(n)%400
		budget := prog.Budget32
		if flags&1 != 0 {
			budget = prog.Budget8
		}
		p, err := progen.Generate(seed, nInsts, budget, flavor%progen.NumFlavors)
		if err != nil {
			t.Fatalf("gen: %v", err)
		}
		cfg := DefaultConfig()
		cfg.Lockstep = true
		cfg.InOrder = flags&2 != 0
		cfg.VirtualCache = flags&4 != 0
		m, err := NewWithDesign(p, cfg, designs[int(designIdx)%len(designs)])
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("lockstep: %v\n%s", err, m.DebugHead())
		}
		if !m.Halted() {
			t.Fatal("machine did not halt")
		}
	})
}
