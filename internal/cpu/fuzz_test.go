package cpu

import (
	"fmt"
	"testing"

	"hbat/internal/emu"
	"hbat/internal/isa"
	"hbat/internal/prog"
)

// randProgRNG is a deterministic generator for the differential fuzz
// test below.
type randProgRNG uint64

func (r *randProgRNG) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = randProgRNG(x)
	return x
}

func (r *randProgRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// Generator flavors: each biases the opcode mix toward one class of
// pipeline hazard. The fuzz corpus seeds one entry per flavor.
const (
	flavorMixed   uint8 = iota // uniform mix (the original distribution)
	flavorMem                  // load/store heavy: store-forwarding and port pressure
	flavorBranchy              // branch heavy: wrong-path fetch and squash recovery
)

// opMix returns the op-case lottery for a flavor; duplicated entries
// raise that case's probability.
func opMix(flavor uint8) []int {
	mixed := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	switch flavor {
	case flavorMem:
		return append(mixed, 6, 7, 7, 8, 8, 8, 9, 7)
	case flavorBranchy:
		return append(mixed, 11, 11, 11, 0, 11)
	}
	return mixed
}

// genRandomProgram builds a random but well-formed program: arithmetic
// over a handful of registers, loads and stores confined to a private
// buffer, forward (data-dependent) branches, and post-increment walks
// that stay in bounds. Every generated program halts. Under
// prog.Budget8 the allocator adds spill/reload traffic around the same
// instruction stream, which is exactly the paper's Figure 9 pressure.
func genRandomProgram(seed uint64, nInsts int, budget prog.RegBudget, flavor uint8) (*prog.Program, error) {
	r := randProgRNG(seed | 1)
	mix := opMix(flavor)
	b := prog.NewBuilder(fmt.Sprintf("fuzz%d", seed))
	const bufWords = 512
	b.Alloc("buf", bufWords*8, 8)

	base := b.IVar("base")
	walk := b.IVar("walk")
	var regs [6]isa.Reg
	for i := range regs {
		regs[i] = b.IVar(fmt.Sprintf("r%d", i))
	}
	b.La(base, "buf")
	b.La(walk, "buf")
	for i := range regs {
		b.Li(regs[i], int64(r.intn(1000)))
	}

	pick := func() isa.Reg { return regs[r.intn(len(regs))] }
	label := 0
	pendingLabel := -1
	walkBudget := 0
	loopCounter := b.IVar("loopctr")
	inLoop := false
	loopLabel := ""

	for i := 0; i < nInsts; i++ {
		if pendingLabel >= 0 && r.intn(4) == 0 {
			b.Label(fmt.Sprintf("skip%d", pendingLabel))
			pendingLabel = -1
		}
		// Occasionally open a bounded backward loop (counted, so the
		// program always terminates); close it a few instructions later.
		if !inLoop && pendingLabel < 0 && r.intn(24) == 0 {
			loopLabel = fmt.Sprintf("loop%d", label)
			label++
			b.Li(loopCounter, int64(2+r.intn(6)))
			b.Label(loopLabel)
			inLoop = true
		} else if inLoop && r.intn(6) == 0 {
			b.Addi(loopCounter, loopCounter, -1)
			b.Bgtz(loopCounter, loopLabel)
			inLoop = false
		}
		switch mix[r.intn(len(mix))] {
		case 0:
			b.Add(pick(), pick(), pick())
		case 1:
			b.Sub(pick(), pick(), pick())
		case 2:
			b.Xor(pick(), pick(), pick())
		case 3:
			b.Addi(pick(), pick(), int32(r.intn(2000)-1000))
		case 4:
			b.Sll(pick(), pick(), int32(r.intn(8)))
		case 5:
			b.Mult(pick(), pick(), pick())
		case 6:
			b.Ld(pick(), base, int32(r.intn(bufWords))*8)
		case 7:
			b.Sd(pick(), base, int32(r.intn(bufWords))*8)
		case 8:
			// Bounded post-increment walk: reset the pointer when the
			// budget runs out so it never leaves the buffer.
			if walkBudget == 0 {
				b.La(walk, "buf")
				walkBudget = bufWords / 2
			}
			if r.intn(2) == 0 {
				b.LdPost(pick(), walk, 8)
			} else {
				b.SdPost(pick(), walk, 8)
			}
			walkBudget--
		case 9:
			b.LwX(pick(), base, regAnd(b, &r, pick(), bufWords))
		case 10:
			b.Div(pick(), pick(), pick())
		case 11:
			// Forward data-dependent branch over the next few
			// instructions (exercises prediction and squash).
			if pendingLabel < 0 {
				b.Bgtz(pick(), fmt.Sprintf("skip%d", label))
				pendingLabel = label
				label++
			} else {
				b.Addi(pick(), pick(), 1)
			}
		}
	}
	if inLoop {
		b.Addi(loopCounter, loopCounter, -1)
		b.Bgtz(loopCounter, loopLabel)
	}
	if pendingLabel >= 0 {
		b.Label(fmt.Sprintf("skip%d", pendingLabel))
	}
	// Make the final state observable: store every register.
	b.Alloc("final", uint64(8*len(regs)), 8)
	out := b.IVar("out")
	b.La(out, "final")
	for i, reg := range regs {
		b.Sd(reg, out, int32(8*i))
	}
	b.Halt()
	return b.Finalize(budget)
}

// regAnd emits a masked index: t = reg & mask (word-aligned, in range).
func regAnd(b *prog.Builder, r *randProgRNG, src isa.Reg, bufWords int) isa.Reg {
	t := b.IVar("idxTmp")
	b.Andi(t, src, int32(bufWords-1)*8)
	b.Andi(t, t, ^7)
	return t
}

// TestRandomProgramsDifferential generates random programs and checks
// that the out-of-order pipeline (on several TLB designs) and the
// in-order pipeline retire exactly the functional emulator's state:
// same instruction counts, same registers, same memory. This is the
// net that catches forwarding, squash, renaming, and device bugs the
// directed tests miss.
func TestRandomProgramsDifferential(t *testing.T) {
	designs := []string{"T4", "T1", "M4", "P8", "I4/PB"}
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for s := 0; s < seeds; s++ {
		s := s
		t.Run(fmt.Sprintf("seed%d", s), func(t *testing.T) {
			t.Parallel()
			p, err := genRandomProgram(uint64(s)*2654435761+17, 150, prog.Budget32, uint8(s)%3)
			if err != nil {
				t.Fatalf("gen: %v", err)
			}
			ref, err := emu.New(p, 4096)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Run(10_000_000); err != nil {
				t.Fatalf("emu: %v", err)
			}
			want := make([]byte, 4096+64)
			if err := ref.ReadVirt(prog.DataBase, want); err != nil {
				t.Fatal(err)
			}

			check := func(name string, m *Machine) {
				if err := m.Run(); err != nil {
					t.Fatalf("%s: %v\n%s", name, err, m.DebugHead())
				}
				if m.Stats().Committed != ref.InstCount {
					t.Errorf("%s: committed %d, emu %d", name, m.Stats().Committed, ref.InstCount)
				}
				got := make([]byte, len(want))
				if err := m.ReadVirt(prog.DataBase, got); err != nil {
					t.Fatal(err)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%s: memory differs at +%d (%#x vs %#x)", name, i, got[i], want[i])
						return
					}
				}
			}

			// Every machine also runs the lockstep checker, so a
			// divergence is caught at the offending commit (with a
			// decoded context window) instead of at the final-state
			// comparison below.
			design := designs[s%len(designs)]
			cfg := DefaultConfig()
			cfg.Lockstep = true
			m, err := NewWithDesign(p, cfg, design)
			if err != nil {
				t.Fatal(err)
			}
			check(design, m)

			cfg = DefaultConfig()
			cfg.Lockstep = true
			cfg.InOrder = true
			mi, err := NewWithDesign(p, cfg, design)
			if err != nil {
				t.Fatal(err)
			}
			check(design+"/inorder", mi)

			cfg = DefaultConfig()
			cfg.Lockstep = true
			cfg.VirtualCache = true
			mv, err := NewWithDesign(p, cfg, design)
			if err != nil {
				t.Fatal(err)
			}
			check(design+"/vcache", mv)
		})
	}
}

// FuzzLockstep feeds generated programs through the timed pipeline with
// the lockstep differential checker enabled: every commit is compared
// against the golden emulator, so any divergence the fuzzer provokes is
// reported at the exact instruction, not as a garbled final state. The
// seed corpus pins the three hazard classes the checker exists for:
// store-forwarding pressure, wrong-path squash recovery, and the 8/8
// register budget's spill/reload traffic.
func FuzzLockstep(f *testing.F) {
	// seed, length, design index, flavor, flags (1=Budget8, 2=inorder, 4=vcache)
	f.Add(uint64(17), uint16(150), uint8(0), flavorMixed, uint8(0))
	f.Add(uint64(4242), uint16(220), uint8(1), flavorMem, uint8(0))     // store-forwarding heavy on a 1-port TLB
	f.Add(uint64(907), uint16(220), uint8(2), flavorBranchy, uint8(0))  // squash heavy on the multi-level TLB
	f.Add(uint64(1251), uint16(180), uint8(3), flavorMixed, uint8(1))   // spill/reload under the 8/8 budget
	f.Add(uint64(77), uint16(160), uint8(4), flavorMem, uint8(1|2))     // Budget8 + in-order piggyback TLB
	f.Add(uint64(3301), uint16(160), uint8(0), flavorBranchy, uint8(4)) // virtually-indexed cache path
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, designIdx, flavor, flags uint8) {
		designs := []string{"T4", "T1", "M4", "P8", "I4/PB"}
		nInsts := 20 + int(n)%400
		budget := prog.Budget32
		if flags&1 != 0 {
			budget = prog.Budget8
		}
		p, err := genRandomProgram(seed, nInsts, budget, flavor%3)
		if err != nil {
			t.Fatalf("gen: %v", err)
		}
		cfg := DefaultConfig()
		cfg.Lockstep = true
		cfg.InOrder = flags&2 != 0
		cfg.VirtualCache = flags&4 != 0
		m, err := NewWithDesign(p, cfg, designs[int(designIdx)%len(designs)])
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("lockstep: %v\n%s", err, m.DebugHead())
		}
		if !m.Halted() {
			t.Fatal("machine did not halt")
		}
	})
}
