package cpu

import (
	"testing"

	"hbat/internal/emu"
	"hbat/internal/prog"
	"hbat/internal/workload"
)

// TestPipelineMatchesEmulatorAllWorkloads is the golden correctness
// test: for every workload, the timing pipeline must commit exactly the
// emulator's instruction/load/store counts and produce identical
// architectural memory, for a representative set of TLB designs and
// both issue models. Any wrong-path leak, forwarding bug, squash error,
// or TLB-device misbehaviour shows up here.
func TestPipelineMatchesEmulatorAllWorkloads(t *testing.T) {
	designs := []string{"T4", "T1", "M4", "P8", "PB1", "I4/PB"}
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p, err := w.Build(prog.Budget32, workload.ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := emu.New(p, 4096)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Run(50_000_000); err != nil {
				t.Fatal(err)
			}

			for _, design := range designs {
				m, err := NewWithDesign(p, DefaultConfig(), design)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Run(); err != nil {
					t.Fatalf("%s: %v\n%s", design, err, m.DebugHead())
				}
				if !m.Halted() {
					t.Fatalf("%s: did not halt", design)
				}
				s := m.Stats()
				if s.Committed != ref.InstCount {
					t.Errorf("%s: committed %d, emulator %d", design, s.Committed, ref.InstCount)
				}
				if s.CommittedLoads != ref.LoadCount || s.CommittedStores != ref.StoreCount {
					t.Errorf("%s: loads/stores %d/%d, emulator %d/%d",
						design, s.CommittedLoads, s.CommittedStores, ref.LoadCount, ref.StoreCount)
				}
				// Architectural memory: compare 4 KB spanning the
				// data base (where checksums and tables live).
				got := make([]byte, 4096)
				want := make([]byte, 4096)
				if err := m.ReadVirt(prog.DataBase, got); err != nil {
					t.Fatal(err)
				}
				if err := ref.ReadVirt(prog.DataBase, want); err != nil {
					t.Fatal(err)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%s: memory differs at data+%d: %#x vs %#x", design, i, got[i], want[i])
						break
					}
				}
			}

			// In-order model, T4 only (it is 5-10x slower).
			cfg := DefaultConfig()
			cfg.InOrder = true
			m, err := NewWithDesign(p, cfg, "T4")
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(); err != nil {
				t.Fatalf("inorder: %v", err)
			}
			if m.Stats().Committed != ref.InstCount {
				t.Errorf("inorder: committed %d, emulator %d", m.Stats().Committed, ref.InstCount)
			}
		})
	}
}

// TestFewRegistersPipelineCorrectness runs the Budget8 builds through
// the pipeline too (spill code stresses store-forwarding hard).
func TestFewRegistersPipelineCorrectness(t *testing.T) {
	for _, name := range []string{"compress", "tfft", "perl", "xlisp"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := w.Build(prog.Budget8, workload.ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			ref, _ := emu.New(p, 4096)
			if err := ref.Run(100_000_000); err != nil {
				t.Fatal(err)
			}
			m, err := NewWithDesign(p, DefaultConfig(), "P8")
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if m.Stats().Committed != ref.InstCount {
				t.Errorf("committed %d, emulator %d", m.Stats().Committed, ref.InstCount)
			}
		})
	}
}

// TestPageSize8kCorrectness runs with the Figure 8 page size.
func TestPageSize8kCorrectness(t *testing.T) {
	w, _ := workload.ByName("mpeg_play")
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := emu.New(p, 8192)
	if err := ref.Run(0); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.PageSize = 8192
	m, err := NewWithDesign(p, cfg, "M8")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Committed != ref.InstCount {
		t.Errorf("committed %d, emulator %d", m.Stats().Committed, ref.InstCount)
	}
}
