package cpu

import (
	"testing"

	"hbat/internal/prog"
	"hbat/internal/workload"
)

// TestMicroITLBValidatesPaperScoping reproduces the paper's Section 1
// claim: instruction-fetch translation is well served by a tiny
// single-ported micro-TLB, because fetch touches one page per cycle and
// code has strong page locality. With even a 2-entry ITLB the slowdown
// versus free fetch translation must be marginal.
func TestMicroITLBValidatesPaperScoping(t *testing.T) {
	w, err := workload.ByName("gcc") // largest, most irregular code footprint
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}

	base, err := NewWithDesign(p, DefaultConfig(), "T4")
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}

	for _, entries := range []int{2, 4} {
		cfg := DefaultConfig()
		cfg.ModelITLB = true
		cfg.ITLBEntries = entries
		m, err := NewWithDesign(p, cfg, "T4")
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if m.Stats().Committed != base.Stats().Committed {
			t.Fatalf("ITLB model changed architecture: %d vs %d insts",
				m.Stats().Committed, base.Stats().Committed)
		}
		if m.Stats().ITLBAccesses == 0 {
			t.Fatal("ITLB never consulted")
		}
		missRate := float64(m.Stats().ITLBMisses) / float64(m.Stats().ITLBAccesses)
		if missRate > 0.02 {
			t.Errorf("%d-entry ITLB miss rate %.4f, expected near zero", entries, missRate)
		}
		slowdown := float64(m.Stats().Cycles)/float64(base.Stats().Cycles) - 1
		if slowdown > 0.03 {
			t.Errorf("%d-entry ITLB slowed the machine %.1f%%, expected marginal", entries, 100*slowdown)
		}
		t.Logf("%d-entry ITLB: miss rate %.5f, slowdown %.2f%%", entries, missRate, 100*slowdown)
	}
}

// TestMicroITLBSingleEntryThrashes: with a single entry, taken branches
// crossing page boundaries force refills, so misses must be visible.
func TestMicroITLBSingleEntry(t *testing.T) {
	w, _ := workload.ByName("gcc")
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ModelITLB = true
	cfg.ITLBEntries = 1
	m, err := NewWithDesign(p, cfg, "T4")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().ITLBMisses == 0 {
		t.Skip("code fits one page at this scale")
	}
}
