package cpu

import (
	"bytes"
	"fmt"
	"strings"

	"hbat/internal/emu"
	"hbat/internal/isa"
	"hbat/internal/prog"
)

// lockstepWindow is how many recently committed instructions the
// checker keeps for the divergence report's context window.
const lockstepWindow = 8

// DivergenceError reports the first point where the timed pipeline's
// committed architected state departed from the functional emulator's.
// It is returned by Machine.Run when Config.Lockstep is set and a
// commit-stage bug (mis-renamed register, dropped store, wrong-path
// commit, ...) corrupts architected state — the aggregate statistics
// the paper's figures are built from would silently absorb such a bug.
type DivergenceError struct {
	Cycle  int64    // cycle of the diverging commit
	Commit uint64   // how many instructions had committed cleanly before it
	PC     uint64   // program counter of the diverging instruction
	Inst   string   // decoded instruction (empty when fetch itself diverged)
	Reason string   // what differed, with expected/actual values
	Window []string // decoded context: the last few commits, oldest first
}

func (e *DivergenceError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cpu: lockstep divergence at commit %d (cycle %d, pc 0x%x", e.Commit, e.Cycle, e.PC)
	if e.Inst != "" {
		fmt.Fprintf(&sb, ", %s", e.Inst)
	}
	fmt.Fprintf(&sb, "): %s", e.Reason)
	if len(e.Window) > 0 {
		sb.WriteString("\n  recent commits (oldest first):")
		for _, w := range e.Window {
			sb.WriteString("\n    ")
			sb.WriteString(w)
		}
	}
	return sb.String()
}

// lockstepCommit is one ring-buffer record for the context window.
type lockstepCommit struct {
	pc   uint64
	inst *isa.Inst
}

// lockstep runs the functional emulator in commit-order lockstep with
// the pipeline: one emulator step per committed instruction, with the
// full architected register file, the committed PC, and committed store
// values compared at every step.
type lockstep struct {
	ref    *emu.Machine
	window [lockstepWindow]lockstepCommit
	n      uint64 // commits checked (also indexes the ring)
}

// newLockstep builds the golden reference for p.
func newLockstep(p *prog.Program, pageSize uint64) (*lockstep, error) {
	ref, err := emu.New(p, pageSize)
	if err != nil {
		return nil, err
	}
	return &lockstep{ref: ref}, nil
}

// contextWindow renders the ring of recent commits, oldest first.
func (ls *lockstep) contextWindow() []string {
	n := int(ls.n)
	if n > lockstepWindow {
		n = lockstepWindow
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		rec := ls.window[(int(ls.n)-n+i)%lockstepWindow]
		out = append(out, fmt.Sprintf("#%d pc=0x%x %v", int(ls.n)-n+i, rec.pc, rec.inst))
	}
	return out
}

// diverge records the failure as the machine's terminal error.
func (m *Machine) diverge(e *robEntry, reason string) bool {
	inst := ""
	if e.inst != nil {
		inst = e.inst.String()
	}
	m.err = &DivergenceError{
		Cycle:  m.cycle,
		Commit: m.lockstep.n,
		PC:     e.pc,
		Inst:   inst,
		Reason: reason,
		Window: m.lockstep.contextWindow(),
	}
	return false
}

// lockstepCheck verifies one committed instruction against the golden
// emulator. It is called from commit after the entry's architected
// effects (register writes, the store's memory write) have been
// applied. It returns false — with m.err set to a *DivergenceError —
// on the first mismatch.
func (m *Machine) lockstepCheck(e *robEntry) bool {
	ls := m.lockstep
	ref := ls.ref

	if ref.Halted {
		return m.diverge(e, "pipeline committed an instruction after the reference emulator halted")
	}
	if ref.PC != e.pc {
		return m.diverge(e, fmt.Sprintf("committed pc 0x%x, but the reference's next instruction is at 0x%x (commit-order break)", e.pc, ref.PC))
	}
	if err := ref.Step(); err != nil {
		return m.diverge(e, fmt.Sprintf("reference emulator faulted where the pipeline committed: %v", err))
	}

	// The committed architected register file must match the
	// reference's after the same instruction.
	for r := 0; r < isa.NumRegs; r++ {
		if m.regs[r] != ref.Regs[r] {
			return m.diverge(e, fmt.Sprintf("register %s = 0x%x, reference has 0x%x",
				isa.Reg(r), m.regs[r], ref.Regs[r]))
		}
	}

	// A committed store must have written the same bytes to the same
	// virtual location. Both sides are read back virtually, so a wrong
	// physical translation shows up too.
	if e.isStore {
		var got, want [8]byte
		w := e.memWidth
		if err := m.ReadVirt(e.effAddr, got[:w]); err != nil {
			return m.diverge(e, fmt.Sprintf("committed store at 0x%x unreadable: %v", e.effAddr, err))
		}
		if err := ref.ReadVirt(e.effAddr, want[:w]); err != nil {
			return m.diverge(e, fmt.Sprintf("reference memory at 0x%x unreadable: %v", e.effAddr, err))
		}
		if !bytes.Equal(got[:w], want[:w]) {
			return m.diverge(e, fmt.Sprintf("store wrote % x at 0x%x, reference has % x",
				got[:w], e.effAddr, want[:w]))
		}
	}

	ls.window[ls.n%lockstepWindow] = lockstepCommit{pc: e.pc, inst: e.inst}
	ls.n++
	return true
}

// lockstepFinish runs the end-of-run cross-checks: every commit must
// have been checked, and a clean halt must find the reference halted
// with the same retirement count.
func (m *Machine) lockstepFinish() {
	if m.err != nil {
		return
	}
	ls := m.lockstep
	if m.stats.Committed != ls.n {
		m.err = &DivergenceError{
			Cycle:  m.cycle,
			Commit: ls.n,
			Reason: fmt.Sprintf("%d instructions committed but %d were lockstep-checked (a commit path bypassed the checker)", m.stats.Committed, ls.n),
			Window: ls.contextWindow(),
		}
		return
	}
	if m.halted && !ls.ref.Halted {
		m.err = &DivergenceError{
			Cycle:  m.cycle,
			Commit: ls.n,
			Reason: fmt.Sprintf("pipeline halted after %d commits but the reference (pc 0x%x) has not", ls.n, ls.ref.PC),
			Window: ls.contextWindow(),
		}
	}
}
