package cpu

import (
	"errors"
	"strings"
	"testing"

	"hbat/internal/isa"
	"hbat/internal/prog"
	"hbat/internal/workload"
)

func lockstepProgram(t *testing.T, name string, budget prog.RegBudget) *prog.Program {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(budget, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLockstepCleanRun proves the checker is quiet on correct machines:
// the full pipeline commits in lockstep with the emulator across
// representative designs and issue/cache/flush variants, to a clean
// halt with every commit checked.
func TestLockstepCleanRun(t *testing.T) {
	p := lockstepProgram(t, "compress", prog.Budget32)
	for _, design := range []string{"T4", "T1", "PB1", "M4", "P8"} {
		cfg := DefaultConfig()
		cfg.Lockstep = true
		m, err := NewWithDesign(p, cfg, design)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("%s: %v", design, err)
		}
		if !m.Halted() {
			t.Fatalf("%s: did not halt", design)
		}
	}
}

// TestLockstepConfigVariants covers the timing switches that most
// distort commit behaviour: in-order issue, the virtual data cache, and
// periodic full-TLB flushes. None may change architected state.
func TestLockstepConfigVariants(t *testing.T) {
	variants := map[string]func(*Config){
		"inorder": func(c *Config) { c.InOrder = true },
		"vcache":  func(c *Config) { c.VirtualCache = true },
		"flush":   func(c *Config) { c.FlushTLBEvery = 1000 },
		"itlb":    func(c *Config) { c.ModelITLB = true; c.UnifiedTLB = true },
	}
	p := lockstepProgram(t, "tfft", prog.Budget8)
	for name, mod := range variants {
		name, mod := name, mod
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			cfg.Lockstep = true
			mod(&cfg)
			m, err := NewWithDesign(p, cfg, "T2")
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if !m.Halted() {
				t.Fatal("did not halt")
			}
		})
	}
}

// runWithInjectedFault runs xlisp under lockstep with a commit-stage
// fault injector installed and returns the resulting error.
func runWithInjectedFault(t *testing.T, hook func(*Machine, *robEntry)) error {
	t.Helper()
	p := lockstepProgram(t, "xlisp", prog.Budget32)
	cfg := DefaultConfig()
	cfg.Lockstep = true
	m, err := NewWithDesign(p, cfg, "T4")
	if err != nil {
		t.Fatal(err)
	}
	m.testCommitHook = hook
	return m.Run()
}

func wantDivergence(t *testing.T, err error, reasonWord string) *DivergenceError {
	t.Helper()
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("wanted a *DivergenceError, got %v", err)
	}
	if !strings.Contains(div.Reason, reasonWord) {
		t.Errorf("reason %q does not mention %q", div.Reason, reasonWord)
	}
	if len(div.Window) == 0 && div.Commit > 0 {
		t.Error("divergence report has no context window")
	}
	if !strings.Contains(div.Error(), div.Reason) {
		t.Error("Error() does not render the reason")
	}
	return div
}

// TestLockstepDetectsRegisterCorruption is the acceptance-criterion
// negative test: a deliberately injected commit-stage bug (a destination
// register silently flipped at retirement) must surface as a
// DivergenceError naming the register, not be absorbed into statistics.
func TestLockstepDetectsRegisterCorruption(t *testing.T) {
	injected := false
	err := runWithInjectedFault(t, func(m *Machine, e *robEntry) {
		if injected || e.inst.Op == isa.Halt {
			return
		}
		for i := 0; i < e.ndest; i++ {
			if r := e.dests[i].reg; r != isa.Zero {
				m.regs[r] ^= 0x40
				injected = true
				return
			}
		}
	})
	if !injected {
		t.Fatal("fault was never injected")
	}
	div := wantDivergence(t, err, "register")
	if div.Inst == "" {
		t.Error("divergence did not decode the committing instruction")
	}
}

// TestLockstepDetectsStoreCorruption injects a commit-stage memory bug:
// the store's architected write lands with a flipped byte.
func TestLockstepDetectsStoreCorruption(t *testing.T) {
	injected := false
	err := runWithInjectedFault(t, func(m *Machine, e *robEntry) {
		if injected || !e.isStore {
			return
		}
		m.writeMem(e.paddr, e.memWidth, e.storeVal^0xFF)
		injected = true
	})
	if !injected {
		t.Fatal("fault was never injected")
	}
	wantDivergence(t, err, "store")
}

// TestLockstepDetectsCommitOrderBreak injects a wrong-path commit (the
// retiring entry claims a PC the reference is not at).
func TestLockstepDetectsCommitOrderBreak(t *testing.T) {
	injected := false
	err := runWithInjectedFault(t, func(m *Machine, e *robEntry) {
		if injected {
			return
		}
		e.pc += isa.InstBytes
		injected = true
	})
	wantDivergence(t, err, "commit-order")
}
