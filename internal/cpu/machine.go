package cpu

import (
	"context"
	"errors"
	"fmt"

	"hbat/internal/bpred"
	"hbat/internal/cache"
	"hbat/internal/cancelpoll"
	"hbat/internal/isa"
	"hbat/internal/mem"
	"hbat/internal/prog"
	"hbat/internal/ptrace"
	"hbat/internal/stats"
	"hbat/internal/tlb"
	"hbat/internal/vm"
)

// ErrDeadlock reports that the pipeline made no forward progress for an
// implausibly long time — always a simulator or workload bug.
var ErrDeadlock = errors.New("cpu: no commit progress (deadlock)")

type fetchedInst struct {
	pc         uint64
	inst       *isa.Inst
	predNextPC uint64
	predTaken  bool
	isCond     bool
	ghrSnap    uint64
	fetchCycle int64
}

// Machine is one simulated processor bound to a program and a TLB
// design. Create it with New, run it with Run, and read Stats/TLB
// statistics afterwards.
type Machine struct {
	cfg  Config
	prog *prog.Program

	// Architected and memory state.
	AS   *vm.AddressSpace
	Mem  *mem.Memory
	regs [isa.NumRegs]uint64

	// Translation and memory hierarchy.
	DTLB    tlb.Device
	tracker tlb.RegisterTracker
	icache  *cache.Cache
	dcache  *cache.Cache
	pred    *bpred.Predictor

	// Pipeline state.
	rob        *rob
	rename     [isa.NumRegs]int32
	renameSlot [isa.NumRegs]int8
	lsqCount   int
	seq        int64
	cycle      int64

	fetchPC         uint64
	fetchStallUntil int64
	fetchStallCause uint8 // why fetchStallUntil was last raised (stall* constants)
	fetchQ          []fetchedInst
	fetchQHead      int
	haltPending     bool

	// Per-cycle functional unit budgets and unit timelines.
	intALUUsed, ldstUsed, fpAddUsed int
	intMDFree, fpMDFree             int64

	itlb *tlb.Bank // micro instruction TLB (nil unless Config.ModelITLB)

	tlbMissOutstanding int
	lastCommitCycle    int64
	nextFlushAt        uint64

	// Scan accelerators: how many ROB entries are in each live state.
	// They let the per-cycle stages skip or truncate full-ROB scans.
	nWaiting     int // sWaiting
	nExec        int // sExecuting
	nMem         int // sMemReq, sMemWalk, sStoreData
	nStoreNoAddr int // stores whose address is not yet generated

	pageBits uint
	pageMask uint64

	halted bool
	err    error
	stats  Stats

	// lockstep is the golden-model checker (nil unless Config.Lockstep).
	lockstep *lockstep
	// testCommitHook, when non-nil, observes (and may corrupt) each
	// entry at commit just before the lockstep check — the fault-
	// injection point negative tests use to prove the checker catches
	// commit-stage bugs. Tests set it directly; it is never set in
	// production paths.
	testCommitHook func(*Machine, *robEntry)

	metrics coreMetrics

	// tracer, when non-nil, records cycle-accurate pipeline events
	// (nil by default: every emit site is guarded by a nil check, so
	// the hot path pays one predictable branch and zero allocations).
	tracer *ptrace.Recorder

	// interval, when non-nil, accumulates the periodic time-series
	// samples configured by EnableIntervalSampling.
	interval       *stats.IntervalSeries
	intervalPrev   intervalBase
	intervalNoPort int64

	// progress, when non-nil, is called every progressEvery cycles
	// (long-run heartbeat; see SetProgress).
	progress      func(cycle int64, committed uint64)
	progressEvery int64

	// cancelCtx/cancelPoll implement cooperative cancellation: Run
	// polls the context every cancelpoll.Every cycles and stops with
	// its error once cancelled (see SetCancel). cancelCtx is retained
	// so the functional fast-forward phase can hand the same context
	// to ckpt.Build.
	cancelCtx  context.Context
	cancelPoll cancelpoll.Poller
}

// intervalBase snapshots the counters an interval sample differences
// against.
type intervalBase struct {
	cycle     int64
	committed uint64
	lookups   uint64
	misses    uint64
}

// New builds a machine running p with the given TLB design factory.
// The factory receives the machine's address space (devices walk it on
// fills); use tlb.NewFromSpec mnemonics via NewWithDesign for the
// standard Table 2 designs.
func New(p *prog.Program, cfg Config, buildTLB func(*vm.AddressSpace) tlb.Device) (*Machine, error) {
	if cfg.PageSize == 0 {
		return nil, fmt.Errorf("cpu: zero page size")
	}
	m := &Machine{
		cfg:    cfg,
		prog:   p,
		AS:     vm.NewAddressSpace(cfg.PageSize),
		Mem:    mem.New(),
		icache: cache.New(cfg.ICache),
		dcache: cache.New(cfg.DCache),
		pred:   bpred.New(cfg.Branch),
		rob:    newROB(cfg.ROBSize),
		fetchQ: make([]fetchedInst, 0, cfg.FetchQueue),
	}
	m.metrics = newCoreMetrics()
	if cfg.Lockstep {
		ls, err := newLockstep(p, cfg.PageSize)
		if err != nil {
			return nil, fmt.Errorf("cpu: building lockstep reference: %w", err)
		}
		m.lockstep = ls
	}
	m.pageBits = m.AS.PageBits()
	m.pageMask = cfg.PageSize - 1
	for _, r := range p.Regions {
		m.AS.AddRegion(r)
	}
	m.DTLB = buildTLB(m.AS)
	m.tracker, _ = m.DTLB.(tlb.RegisterTracker)
	if cfg.ModelITLB {
		n := cfg.ITLBEntries
		if n <= 0 {
			n = 4
		}
		m.itlb = tlb.NewBank(n, tlb.LRU, cfg.Seed+0x171b)
	}
	for reg, v := range p.InitRegs {
		m.regs[reg] = v
	}
	for i := range m.rename {
		m.rename[i] = -1
	}
	m.fetchPC = p.Entry
	m.nextFlushAt = cfg.FlushTLBEvery
	for _, seg := range p.Data {
		if err := m.writeVirt(seg.Addr, seg.Bytes); err != nil {
			return nil, fmt.Errorf("cpu: loading data segment at 0x%x: %w", seg.Addr, err)
		}
	}
	// Loading the initial images is the loader's work, not the
	// program's: clear the status bits so the simulated machine's own
	// first references and writes set them (and generate the paper's
	// status write-through traffic).
	m.AS.ClearStatus()
	return m, nil
}

// NewWithDesign builds a machine using a Table 2 design mnemonic.
func NewWithDesign(p *prog.Program, cfg Config, design string) (*Machine, error) {
	spec, err := tlb.LookupSpec(design)
	if err != nil {
		return nil, err
	}
	return New(p, cfg, func(as *vm.AddressSpace) tlb.Device {
		return spec.Build(as, cfg.Seed)
	})
}

func (m *Machine) writeVirt(vaddr uint64, b []byte) error {
	ps := m.AS.PageSize()
	for len(b) > 0 {
		pa, err := m.AS.Translate(vaddr, vm.PermWrite)
		if err != nil {
			return err
		}
		n := ps - m.AS.PageOffset(vaddr)
		if uint64(len(b)) < n {
			n = uint64(len(b))
		}
		m.Mem.Write(pa, b[:n])
		b = b[n:]
		vaddr += n
	}
	return nil
}

func (m *Machine) readMem(paddr uint64, width int) uint64 {
	switch width {
	case 1:
		return uint64(m.Mem.ByteAt(paddr))
	case 2:
		return uint64(m.Mem.Read16(paddr))
	case 4:
		return uint64(m.Mem.Read32(paddr))
	default:
		return m.Mem.Read64(paddr)
	}
}

func (m *Machine) writeMem(paddr uint64, width int, v uint64) {
	switch width {
	case 1:
		m.Mem.SetByte(paddr, byte(v))
	case 2:
		m.Mem.Write16(paddr, uint16(v))
	case 4:
		m.Mem.Write32(paddr, uint32(v))
	default:
		m.Mem.Write64(paddr, v)
	}
}

// fetchPaddr translates an instruction address for I-cache indexing.
// Instruction fetch translation is outside the paper's scope (a
// single-ported instruction TLB suffices, Section 1), so it is modeled
// as free: the page table is consulted directly. Wrong-path addresses
// outside the text region index the cache by virtual address.
func (m *Machine) fetchPaddr(vaddr uint64) uint64 {
	vpn := vaddr >> m.pageBits
	if pte, ok := m.AS.Probe(vpn); ok {
		return pte.PFN<<m.pageBits | (vaddr & m.pageMask)
	}
	pte, err := m.AS.Walk(vpn)
	if err != nil {
		return vaddr
	}
	return pte.PFN<<m.pageBits | (vaddr & m.pageMask)
}

// tick advances the machine one cycle. Stage order within a tick runs
// from the back of the pipeline forward so each instruction spends at
// least one cycle per stage.
func (m *Machine) tick() {
	m.cycle++
	m.DTLB.BeginCycle(m.cycle)
	m.dcache.BeginCycle(m.cycle)
	m.icache.BeginCycle(m.cycle)
	m.intALUUsed, m.ldstUsed, m.fpAddUsed = 0, 0, 0

	m.complete()
	m.commit()
	if m.halted || m.err != nil {
		m.observeCycle()
		return
	}
	if m.cfg.FlushTLBEvery > 0 && m.stats.Committed >= m.nextFlushAt {
		// Context switch: every cached translation dies (the paper's
		// multiprogramming scenario). The micro-ITLB goes too.
		m.DTLB.FlushAll()
		if m.itlb != nil {
			m.itlb.Flush()
		}
		m.stats.ContextFlushes++
		m.nextFlushAt = m.stats.Committed + m.cfg.FlushTLBEvery
	}
	m.memExecute()
	m.issue()
	m.dispatch()
	m.fetch()
	m.observeCycle()

	if m.cycle-m.lastCommitCycle > 50000 {
		m.err = fmt.Errorf("%w at cycle %d (pc 0x%x, rob %d entries)",
			ErrDeadlock, m.cycle, m.fetchPC, m.rob.count)
	}
}

// Run simulates until the program halts, a limit is reached, the
// machine's context (SetCancel) is cancelled, or an error occurs. It
// returns nil on a clean halt or on reaching the committed-instruction
// budget, and the context's error when cancelled.
func (m *Machine) Run() error {
	// Two-phase mode: functional fast-forward (or checkpoint restore)
	// happens before the first simulated cycle. Run, not New, hosts
	// it so SetCancel's context covers the warm-up too.
	m.FastForward()
	for !m.halted && m.err == nil {
		if m.cfg.MaxInsts > 0 && m.stats.Committed >= m.cfg.MaxInsts {
			break
		}
		if m.cfg.MaxCycles > 0 && m.cycle >= m.cfg.MaxCycles {
			break
		}
		if m.cancelPoll.Due(uint64(m.cycle)) {
			if err := m.cancelPoll.Err(); err != nil {
				m.err = err
				break
			}
		}
		m.tick()
	}
	m.stats.Cycles = m.cycle
	m.stats.TLBWalks = m.DTLB.Stats().Fills
	if m.lockstep != nil {
		m.lockstepFinish()
	}
	if m.interval != nil && m.cycle > m.intervalPrev.cycle {
		m.sampleInterval() // flush the final partial interval
	}
	m.syncAggregateMetrics()
	return m.err
}

// SetCancel arranges for Run to stop with ctx.Err() once ctx is
// cancelled, checked every cancelpoll.Every cycles so an in-flight
// simulation is interrupted promptly. The same context covers the
// functional fast-forward phase, which polls it at the granularity
// cancelpoll specifies (per instruction batch for the interpreted
// engine, per superblock for the translated one). Call before Run; a
// nil ctx (or one that can never be cancelled) disables the check
// entirely, which keeps the run loop's fast path a single nil
// comparison.
func (m *Machine) SetCancel(ctx context.Context) {
	m.cancelPoll = cancelpoll.New(ctx)
	if !m.cancelPoll.Enabled() {
		m.cancelCtx = nil
		return
	}
	m.cancelCtx = ctx
}

// SetTracer attaches a pipeline event recorder (nil detaches). With no
// tracer attached — the default — the pipeline's emit sites reduce to
// one nil check each.
func (m *Machine) SetTracer(r *ptrace.Recorder) { m.tracer = r }

// Tracer returns the attached pipeline event recorder (nil when
// tracing is off).
func (m *Machine) Tracer() *ptrace.Recorder { return m.tracer }

// EnableIntervalSampling arranges for a time-series sample every N
// cycles: committed IPC, TLB miss rate, ROB occupancy, and TLB-port
// queue depth over each interval. Call before Run; read the series
// with Intervals afterwards.
func (m *Machine) EnableIntervalSampling(every int64) {
	if every <= 0 {
		return
	}
	m.interval = stats.NewIntervalSeries(every,
		"cycle", "ipc", "tlb.miss_rate", "rob.occupancy", "tlb.port_queue_depth")
	m.intervalPrev = intervalBase{}
	m.intervalNoPort = 0
}

// Intervals returns the interval time series (nil unless
// EnableIntervalSampling was called).
func (m *Machine) Intervals() *stats.IntervalSeries { return m.interval }

// SetProgress installs a heartbeat callback invoked every `every`
// cycles during Run (both nil/0 disable it). The callback runs on the
// simulation goroutine; keep it cheap.
func (m *Machine) SetProgress(every int64, fn func(cycle int64, committed uint64)) {
	if every <= 0 || fn == nil {
		m.progress, m.progressEvery = nil, 0
		return
	}
	m.progress, m.progressEvery = fn, every
}

// sampleInterval appends one time-series row covering the cycles since
// the previous sample.
func (m *Machine) sampleInterval() {
	prev := &m.intervalPrev
	dCycles := m.cycle - prev.cycle
	if dCycles <= 0 {
		return
	}
	ts := m.DTLB.Stats()
	ipc := float64(m.stats.Committed-prev.committed) / float64(dCycles)
	missRate := 0.0
	if dLook := ts.Lookups - prev.lookups; dLook > 0 {
		missRate = float64(ts.Misses-prev.misses) / float64(dLook)
	}
	queueDepth := float64(m.intervalNoPort) / float64(dCycles)
	m.interval.Append(float64(m.cycle), ipc, missRate, float64(m.rob.count), queueDepth)
	*prev = intervalBase{cycle: m.cycle, committed: m.stats.Committed, lookups: ts.Lookups, misses: ts.Misses}
	m.intervalNoPort = 0
}

// Stats returns the run's statistics (valid after Run).
func (m *Machine) Stats() *Stats { return &m.stats }

// Halted reports whether the program executed Halt.
func (m *Machine) Halted() bool { return m.halted }

// Cycle returns the current cycle number.
func (m *Machine) Cycle() int64 { return m.cycle }

// Reg returns an architected register's value (for tests).
func (m *Machine) Reg(r isa.Reg) uint64 { return m.regs[r] }

// ReadVirt reads virtual memory (for result assertions in tests).
func (m *Machine) ReadVirt(vaddr uint64, buf []byte) error {
	ps := m.AS.PageSize()
	for len(buf) > 0 {
		pa, err := m.AS.Translate(vaddr, vm.PermRead)
		if err != nil {
			return err
		}
		n := ps - m.AS.PageOffset(vaddr)
		if uint64(len(buf)) < n {
			n = uint64(len(buf))
		}
		m.Mem.Read(pa, buf[:n])
		buf = buf[n:]
		vaddr += n
	}
	return nil
}

// ICacheStats and DCacheStats expose cache counters.
func (m *Machine) ICacheStats() *cache.Stats { return m.icache.Stats() }

// DCacheStats exposes data-cache counters.
func (m *Machine) DCacheStats() *cache.Stats { return m.dcache.Stats() }

// PredStats exposes branch predictor counters.
func (m *Machine) PredStats() *bpred.Stats { return m.pred.Stats() }

// DebugHead renders the ROB head entry for diagnosing stalls (used by
// development tooling and deadlock reports).
func (m *Machine) DebugHead() string {
	e := m.rob.headEntry()
	if e == nil {
		return fmt.Sprintf("rob empty; fetchPC=0x%x stall=%d haltPending=%v qlen=%d tlbMiss=%d",
			m.fetchPC, m.fetchStallUntil, m.haltPending, m.fetchQLen(), m.tlbMissOutstanding)
	}
	return fmt.Sprintf("head pc=0x%x %v state=%d doneAt=%d addrReady=%v walking=%v walkDone=%d memReqAt=%d effAddr=0x%x cycle=%d count=%d lsq=%d tlbMiss=%d",
		e.pc, e.inst, e.state, e.doneAt, e.addrReady, e.walking, e.walkDone, e.memReqAt, e.effAddr, m.cycle, m.rob.count, m.lsqCount, m.tlbMissOutstanding)
}
