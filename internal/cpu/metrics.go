package cpu

import (
	"hbat/internal/stats"
)

// coreMetrics holds the pipeline's handles into the machine's metrics
// registry. The aggregate counters of cpu.Stats answer "how much"; the
// registry answers "how distributed" (translation-latency and queue-
// depth histograms) and records event classes Stats never separated
// (replay causes, fetch-stall causes). Behavior tests assert on these
// instead of only final IPC.
type coreMetrics struct {
	reg *stats.Registry

	// Distributions, observed live.
	transExtra *stats.Histogram // extra translation latency per TLB hit
	queueDepth *stats.Histogram // TLB-port rejections per cycle (port queue depth)
	robOccup   *stats.Histogram // ROB occupancy per cycle

	// Replay causes: a memory op in sMemReq that could not finish this
	// cycle and will re-request.
	replayTLBNoPort  *stats.Counter
	replayCachePort  *stats.Counter
	replayStoreWait  *stats.Counter
	commitStoreRetry *stats.Counter

	// Squash events.
	squashRecoveries *stats.Counter
	squashedInsts    *stats.Counter

	// Fetch-stall cycles, split by cause (cpu.Stats lumps them).
	stallRedirect  *stats.Counter
	stallICache    *stats.Counter
	stallITLB      *stats.Counter
	stallQueueFull *stats.Counter

	// Scratch: data-side NoPort rejections seen this cycle.
	noPortThisCycle int64
}

// fetch-stall causes (machine.fetchStallCause).
const (
	stallNone uint8 = iota
	stallRedirect
	stallICacheMiss
	stallITLBMiss
)

func newCoreMetrics() coreMetrics {
	reg := stats.NewRegistry()
	return coreMetrics{
		reg: reg,

		transExtra: reg.Histogram("tlb.translate_extra_cycles", []int64{0, 1, 2, 3, 4, 7, 15, 31}),
		queueDepth: reg.Histogram("tlb.port_queue_depth", []int64{0, 1, 2, 3, 4, 7, 15}),
		robOccup:   reg.Histogram("rob.occupancy", []int64{0, 8, 16, 24, 32, 40, 48, 56, 63}),

		replayTLBNoPort:  reg.Counter("cpu.replay_tlb_noport"),
		replayCachePort:  reg.Counter("cpu.replay_dcache_noport"),
		replayStoreWait:  reg.Counter("cpu.replay_store_forward_wait"),
		commitStoreRetry: reg.Counter("commit.store_port_retries"),

		squashRecoveries: reg.Counter("cpu.squash_recoveries"),
		squashedInsts:    reg.Counter("cpu.squash_insts"),

		stallRedirect:  reg.Counter("fetch.stall_redirect_cycles"),
		stallICache:    reg.Counter("fetch.stall_icache_cycles"),
		stallITLB:      reg.Counter("fetch.stall_itlb_cycles"),
		stallQueueFull: reg.Counter("fetch.stall_queue_full_cycles"),
	}
}

// Metrics returns the machine's metrics registry (populated during Run;
// aggregate mirrors are synced when Run returns).
func (m *Machine) Metrics() *stats.Registry { return m.metrics.reg }

// observeCycle records the per-cycle gauges. Called once per tick after
// the memory stage, so the queue-depth sample reflects this cycle's
// completed port arbitration. The interval sampler and progress
// heartbeat piggyback here (both nil/off by default).
func (m *Machine) observeCycle() {
	m.metrics.robOccup.Observe(int64(m.rob.count))
	m.metrics.queueDepth.Observe(m.metrics.noPortThisCycle)
	if m.interval != nil {
		m.intervalNoPort += m.metrics.noPortThisCycle
		if m.cycle-m.intervalPrev.cycle >= m.interval.Every() {
			m.sampleInterval()
		}
	}
	m.metrics.noPortThisCycle = 0
	if m.progress != nil && m.cycle%m.progressEvery == 0 {
		m.progress(m.cycle, m.stats.Committed)
	}
}

// countFetchStall attributes one stalled fetch cycle to its cause.
func (m *Machine) countFetchStall() {
	switch m.fetchStallCause {
	case stallRedirect:
		m.metrics.stallRedirect.Inc()
	case stallICacheMiss:
		m.metrics.stallICache.Inc()
	case stallITLBMiss:
		m.metrics.stallITLB.Inc()
	}
}

// syncAggregateMetrics mirrors the end-of-run aggregates (cpu.Stats,
// the translation device's tlb.Stats, and both caches) into the
// registry so one snapshot is a self-contained export.
func (m *Machine) syncAggregateMetrics() {
	reg := m.metrics.reg
	reg.Counter("commit.insts").Set(m.stats.Committed)
	reg.Counter("commit.loads").Set(m.stats.CommittedLoads)
	reg.Counter("commit.stores").Set(m.stats.CommittedStores)
	reg.Counter("commit.branches").Set(m.stats.CommittedBranches)
	reg.Counter("cpu.cycles").Set(uint64(m.stats.Cycles))
	reg.Counter("cpu.issued").Set(m.stats.Issued)
	reg.Counter("cpu.fetched").Set(m.stats.Fetched)
	reg.Counter("cpu.context_flushes").Set(m.stats.ContextFlushes)

	reg.Counter("dispatch.stall_tlb_miss_cycles").Set(uint64(m.stats.DispatchTLBStalls))
	reg.Counter("dispatch.stall_rob_full_cycles").Set(uint64(m.stats.DispatchROBFull))
	reg.Counter("dispatch.stall_lsq_full_cycles").Set(uint64(m.stats.DispatchLSQFull))
	reg.Counter("dispatch.stall_empty_cycles").Set(uint64(m.stats.DispatchEmptyCycles))

	ts := m.DTLB.Stats()
	reg.Counter("tlb.lookups").Set(ts.Lookups)
	reg.Counter("tlb.hits").Set(ts.Hits)
	reg.Counter("tlb.misses").Set(ts.Misses)
	reg.Counter("tlb.noport").Set(ts.NoPorts)
	reg.Counter("tlb.piggyback_hits").Set(ts.Piggybacks)
	reg.Counter("tlb.shield_hits").Set(ts.ShieldHits)
	reg.Counter("tlb.shield_misses").Set(ts.ShieldMisses)
	reg.Counter("tlb.queue_cycles").Set(ts.QueueCycles)
	reg.Counter("tlb.status_writes").Set(ts.StatusWrites)
	reg.Counter("tlb.walks").Set(ts.Fills)
	reg.Counter("tlb.walk_cycles").Set(uint64(m.stats.TLBWalkCycles))

	for name, cs := range map[string]*struct {
		hits, misses, portStalls, writebacks uint64
	}{
		"dcache": {m.dcache.Stats().Hits, m.dcache.Stats().Misses, m.dcache.Stats().PortStalls, m.dcache.Stats().Writebacks},
		"icache": {m.icache.Stats().Hits, m.icache.Stats().Misses, m.icache.Stats().PortStalls, m.icache.Stats().Writebacks},
	} {
		reg.Counter(name + ".hits").Set(cs.hits)
		reg.Counter(name + ".misses").Set(cs.misses)
		reg.Counter(name + ".port_stalls").Set(cs.portStalls)
		reg.Counter(name + ".writebacks").Set(cs.writebacks)
	}
}
