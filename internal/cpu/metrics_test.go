package cpu

import (
	"testing"

	"hbat/internal/prog"
	"hbat/internal/workload"
)

// TestMetricsRegistryPopulated runs a real workload on the single-
// ported T1 design (maximum port pressure) and cross-checks the metrics
// registry against the aggregate counters it must agree with: every
// cycle sampled into the per-cycle histograms, every TLB hit into the
// translation-latency histogram, and every port rejection into both the
// queue-depth histogram and the replay counter.
func TestMetricsRegistryPopulated(t *testing.T) {
	w, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewWithDesign(p, DefaultConfig(), "T1")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	snap := m.Metrics().Snapshot()

	rob, ok := snap.Get("rob.occupancy")
	if !ok || rob.Count != uint64(s.Cycles) {
		t.Errorf("rob.occupancy sampled %d cycles, ran %d", rob.Count, s.Cycles)
	}
	qd, ok := snap.Get("tlb.port_queue_depth")
	if !ok || qd.Count != uint64(s.Cycles) {
		t.Errorf("tlb.port_queue_depth sampled %d cycles, ran %d", qd.Count, s.Cycles)
	}
	if qd.Sum != int64(s.TLBRetries) {
		t.Errorf("queue-depth sum %d, TLBRetries %d", qd.Sum, s.TLBRetries)
	}
	if s.TLBRetries == 0 {
		t.Error("T1 ran without a single port rejection; the test exerts no pressure")
	}

	lat, ok := snap.Get("tlb.translate_extra_cycles")
	if !ok || lat.Count != m.DTLB.Stats().Hits {
		t.Errorf("translation-latency histogram has %d samples, device hit %d times",
			lat.Count, m.DTLB.Stats().Hits)
	}

	for name, want := range map[string]uint64{
		"cpu.replay_tlb_noport": s.TLBRetries,
		"commit.insts":          s.Committed,
		"cpu.cycles":            uint64(s.Cycles),
		"cpu.squash_insts":      s.Squashed,
		"tlb.noport":            m.DTLB.Stats().NoPorts,
		"tlb.hits":              m.DTLB.Stats().Hits,
		"dcache.hits":           m.DCacheStats().Hits,
	} {
		if got := snap.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestMetricsExtraLatencyDistribution checks the device-side histogram:
// on a multi-level design every hit lands in a bucket and slow (L2)
// hits appear above bucket zero.
func TestMetricsExtraLatencyDistribution(t *testing.T) {
	w, _ := workload.ByName("xlisp")
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewWithDesign(p, DefaultConfig(), "M4")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	ts := m.DTLB.Stats()
	var histTotal, slow uint64
	for i, n := range ts.ExtraHist {
		histTotal += n
		if i >= 2 {
			slow += n
		}
	}
	if histTotal != ts.Hits {
		t.Errorf("ExtraHist holds %d samples, device hit %d times", histTotal, ts.Hits)
	}
	if slow == 0 {
		t.Error("M4 produced no >=2-cycle hits; L2 latency is not being observed")
	}
	if ts.ExtraHist[0] == 0 {
		t.Error("M4 produced no zero-latency L1 hits")
	}
}

// TestMetricsFetchStallCauses checks that the split fetch-stall counters
// cover the lumped aggregate.
func TestMetricsFetchStallCauses(t *testing.T) {
	w, _ := workload.ByName("gcc")
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ModelITLB = true
	m, err := NewWithDesign(p, cfg, "T4")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	snap := m.Metrics().Snapshot()
	byCause := snap.CounterValue("fetch.stall_redirect_cycles") +
		snap.CounterValue("fetch.stall_icache_cycles") +
		snap.CounterValue("fetch.stall_itlb_cycles")
	if byCause != uint64(m.Stats().FetchStallCycles) {
		t.Errorf("stall causes sum to %d, aggregate is %d", byCause, m.Stats().FetchStallCycles)
	}
	if snap.CounterValue("fetch.stall_redirect_cycles") == 0 {
		t.Error("gcc ran without a single mispredict-redirect stall")
	}
}
