package cpu

import (
	"testing"

	"hbat/internal/isa"
	"hbat/internal/prog"
)

// TestPostIncrementDualDestination: a post-increment load writes both
// its value register and its base register; consumers of either must
// see the right value with the right timing (the base update is ready
// at address generation, a cycle before the loaded value).
func TestPostIncrementDualDestination(t *testing.T) {
	m := runProg(t, func(b *prog.Builder) {
		arr := b.Alloc("arr", 64, 8)
		_ = arr
		b.SetWords(b.Addr("arr"), []uint64{111, 222, 333})
		b.Alloc("out", 32, 8)
		p := b.IVar("p")
		v := b.IVar("v")
		pcopy := b.IVar("pcopy")
		o := b.IVar("o")
		b.La(p, "arr")
		b.LdPost(v, p, 8) // v=111, p=arr+8
		b.Move(pcopy, p)  // consumer of the base update
		b.LdPost(v, p, 8) // v=222, p=arr+16
		b.La(o, "out")
		b.Sd(v, o, 0)
		b.Sd(pcopy, o, 8)
		b.Halt()
	}, DefaultConfig(), "T4")
	var buf [16]byte
	if err := m.ReadVirt(prog.DataBase+64, buf[:]); err != nil {
		t.Fatal(err)
	}
	v := uint64(buf[0]) | uint64(buf[1])<<8
	if v != 222 {
		t.Fatalf("second post-inc load got %d, want 222", v)
	}
	pc := uint64(buf[8]) | uint64(buf[9])<<8 | uint64(buf[10])<<16 | uint64(buf[11])<<24 |
		uint64(buf[12])<<32
	if pc != prog.DataBase+8 {
		t.Fatalf("base copy = %#x, want %#x", pc, uint64(prog.DataBase+8))
	}
}

// TestUnpipelinedDivideSerializes: the single integer MULT/DIV unit's
// divide has issue interval = latency (12), so back-to-back independent
// divides cost ~12 cycles each, while back-to-back multiplies pipeline.
func TestUnpipelinedDivideSerializes(t *testing.T) {
	build := func(op func(b *prog.Builder, rd, rs, rt isa.Reg)) func(*prog.Builder) {
		return func(b *prog.Builder) {
			a := b.IVar("a")
			c := b.IVar("c")
			var outs [8]isa.Reg
			for i := range outs {
				outs[i] = b.IVar(string(rune('p' + i)))
			}
			b.Li(a, 1000)
			b.Li(c, 3)
			for i := 0; i < 16; i++ {
				op(b, outs[i%8], a, c) // independent ops
			}
			b.Halt()
		}
	}
	mDiv := runProg(t, build(func(b *prog.Builder, rd, rs, rt isa.Reg) { b.Div(rd, rs, rt) }), DefaultConfig(), "T4")
	mMul := runProg(t, build(func(b *prog.Builder, rd, rs, rt isa.Reg) { b.Mult(rd, rs, rt) }), DefaultConfig(), "T4")
	// 16 divides at 12-cycle issue interval ≈ 192+ cycles; 16 multiplies
	// pipeline at 1/cycle ≈ 20-30 cycles.
	if mDiv.Stats().Cycles < 16*DefaultConfig().IntDivLat {
		t.Fatalf("divides took %d cycles; unpipelined unit requires >= %d",
			mDiv.Stats().Cycles, 16*DefaultConfig().IntDivLat)
	}
	if mMul.Stats().Cycles*3 > mDiv.Stats().Cycles {
		t.Fatalf("multiplies (%d cycles) not much faster than divides (%d)",
			mMul.Stats().Cycles, mDiv.Stats().Cycles)
	}
}

// TestLSQCapacityStallsDispatch: more in-flight memory operations than
// LSQ entries must throttle dispatch, visible as LSQ-full stalls.
func TestLSQCapacityStallsDispatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LSQSize = 4
	m := runProg(t, func(b *prog.Builder) {
		b.Alloc("arr", 4096, 8)
		p := b.IVar("p")
		v := b.IVar("v")
		b.La(p, "arr")
		// A slow divide feeding an address makes younger loads pile up.
		d := b.IVar("d")
		e := b.IVar("e")
		b.Li(d, 4096)
		b.Li(e, 64)
		for i := 0; i < 10; i++ {
			b.Div(d, d, e) // long chain
		}
		b.Andi(d, d, 0)
		b.Add(p, p, d)
		for i := 0; i < 12; i++ {
			b.Ld(v, p, int32(8*i))
		}
		b.Halt()
	}, cfg, "T4")
	if m.Stats().DispatchLSQFull == 0 {
		t.Fatal("no LSQ-full stalls with a 4-entry LSQ and 12 pending loads")
	}
}

// TestCollapsingBufferPredictionBandwidth: with one prediction per
// cycle, fetch ends at each branch; the collapsing-buffer variant's two
// predictions let branch-dense, otherwise-independent code fetch (and
// therefore execute) faster — the front-end bottleneck Section 4.1
// says motivated the variant.
func TestCollapsingBufferPredictionBandwidth(t *testing.T) {
	build := func(b *prog.Builder) {
		var regs [8]isa.Reg
		for i := range regs {
			regs[i] = b.IVar(string(rune('a' + i)))
		}
		// Straight-line code: every third instruction is a never-taken
		// branch; the surrounding work is fully independent, so the
		// machine is fetch-bound.
		for i := 0; i < 200; i++ {
			b.Li(regs[i%8], int64(i))
			b.Li(regs[(i+1)%8], int64(i+1))
			b.Bltz(prog.RegZero, "never")
		}
		b.Halt()
		b.Label("never")
		b.Halt()
	}
	one := DefaultConfig()
	one.MaxBranchesPerFetch = 1
	mOne := runProg(t, build, one, "T4")
	mTwo := runProg(t, build, DefaultConfig(), "T4")
	if mTwo.Stats().Cycles >= mOne.Stats().Cycles {
		t.Fatalf("two predictions/cycle (%d cycles) not faster than one (%d cycles)",
			mTwo.Stats().Cycles, mOne.Stats().Cycles)
	}
}

// TestRegisterPlusRegisterAddressing: the paper's extended addressing
// mode computes base+index correctly through the pipeline.
func TestRegisterPlusRegisterAddressing(t *testing.T) {
	m := runProg(t, func(b *prog.Builder) {
		arr := b.Alloc("arr", 256, 8)
		_ = arr
		words := make([]uint64, 32)
		for i := range words {
			words[i] = uint64(i * 5)
		}
		b.SetWords(b.Addr("arr"), words)
		b.Alloc("out", 8, 8)
		base := b.IVar("base")
		idx := b.IVar("idx")
		v := b.IVar("v")
		sum := b.IVar("sum")
		o := b.IVar("o")
		b.La(base, "arr")
		b.Li(sum, 0)
		for i := 0; i < 8; i++ {
			b.Li(idx, int64(8*i*2))
			b.LdX(v, base, idx)
			b.Add(sum, sum, v)
		}
		b.La(o, "out")
		b.Sd(sum, o, 0)
		b.Halt()
	}, DefaultConfig(), "T4")
	var buf [8]byte
	if err := m.ReadVirt(prog.DataBase+256, buf[:]); err != nil {
		t.Fatal(err)
	}
	got := uint64(buf[0]) | uint64(buf[1])<<8
	want := uint64(0)
	for i := 0; i < 8; i++ {
		want += uint64(2 * i * 5)
	}
	if got != want {
		t.Fatalf("register+register sum = %d, want %d", got, want)
	}
}
