package cpu

import "hbat/internal/isa"

// entry states.
const (
	sWaiting   uint8 = iota // in ROB, not yet issued
	sExecuting              // on a functional unit; result at doneAt
	sMemReq                 // memory op: address generated, needs TLB+cache
	sMemWalk                // memory op: TLB miss detected, awaiting walk
	sStoreData              // store: translated, waiting for its data value
	sDone                   // complete; eligible to commit
)

// dest is one destination register write carried by a ROB entry.
// Post-update memory operations have two (value and new base), with
// independent ready times: the base update is ready at address
// generation, the load value when memory responds.
type dest struct {
	reg     isa.Reg
	val     uint64
	readyAt int64
}

// operand identifies where a source value comes from: the architected
// register file (producer < 0, val already read) or a ROB producer's
// destination slot.
type operand struct {
	reg      isa.Reg
	producer int32 // ROB slot index, -1 = register file
	slot     int8  // producer's destination slot
	seq      int64 // producer's sequence number (slot-recycling guard)
	val      uint64
}

// robEntry is one in-flight instruction.
type robEntry struct {
	valid bool
	seq   int64
	pc    uint64
	inst  *isa.Inst
	state uint8

	doneAt int64

	srcs [3]operand
	nsrc int

	dests [2]dest
	ndest int

	// Control.
	isCtrl     bool
	predNextPC uint64
	nextPC     uint64 // actual (set at execute)
	predTaken  bool
	ghrSnap    uint64
	resolved   bool

	flags uint8

	// Memory.
	isLoad    bool
	isStore   bool
	addrReady bool
	effAddr   uint64
	paddr     uint64
	memWidth  int
	storeVal  uint64
	memReqAt  int64 // first cycle the TLB/cache request may be made
	walkDone  int64 // cycle the page-table walk completes (sMemWalk)
	walking   bool
	fwdFrom   int32 // ROB slot of forwarding store (-1 none)
}

// robEntry flag bits.
const (
	fTaken       uint8 = 1 << iota // conditional branch actually taken
	fMissCharged                   // counted in tlbMissOutstanding
	fFaulted                       // protection fault (fatal if committed)
)

func (e *robEntry) actualTaken(t bool) {
	if t {
		e.flags |= fTaken
	} else {
		e.flags &^= fTaken
	}
}
func (e *robEntry) takenActual() bool { return e.flags&fTaken != 0 }
func (e *robEntry) setMissCharged()   { e.flags |= fMissCharged }
func (e *robEntry) missCharged() bool { return e.flags&fMissCharged != 0 }
func (e *robEntry) setFaulted()       { e.flags |= fFaulted }
func (e *robEntry) faulted() bool     { return e.flags&fFaulted != 0 }

// rob is a ring buffer of in-flight instructions in program order.
type rob struct {
	entries []robEntry
	head    int // oldest
	count   int
}

func newROB(size int) *rob {
	return &rob{entries: make([]robEntry, size)}
}

func (r *rob) full() bool  { return r.count == len(r.entries) }
func (r *rob) empty() bool { return r.count == 0 }

// push allocates the next entry and returns its slot index.
func (r *rob) push() int {
	idx := (r.head + r.count) % len(r.entries)
	r.count++
	r.entries[idx] = robEntry{valid: true, fwdFrom: -1}
	return idx
}

// pop retires the head entry.
func (r *rob) pop() {
	r.entries[r.head].valid = false
	r.head = (r.head + 1) % len(r.entries)
	r.count--
}

// at returns the entry at slot idx.
func (r *rob) at(idx int) *robEntry { return &r.entries[idx] }

// headEntry returns the oldest entry (nil when empty).
func (r *rob) headEntry() *robEntry {
	if r.count == 0 {
		return nil
	}
	return &r.entries[r.head]
}

// forEach visits entries oldest to youngest; the visitor returns false
// to stop early.
func (r *rob) forEach(f func(idx int, e *robEntry) bool) {
	for i := 0; i < r.count; i++ {
		idx := (r.head + i) % len(r.entries)
		if !f(idx, &r.entries[idx]) {
			return
		}
	}
}

// squashAfter invalidates every entry younger than slot keepIdx and
// returns how many were squashed.
func (r *rob) squashAfter(keepIdx int) int {
	// Find keepIdx's position from head.
	pos := (keepIdx - r.head + len(r.entries)) % len(r.entries)
	squashed := r.count - pos - 1
	for i := pos + 1; i < r.count; i++ {
		idx := (r.head + i) % len(r.entries)
		r.entries[idx].valid = false
	}
	r.count = pos + 1
	return squashed
}

// olderThan reports whether slot a holds an older instruction than b.
func (r *rob) olderThan(a, b int) bool {
	pa := (a - r.head + len(r.entries)) % len(r.entries)
	pb := (b - r.head + len(r.entries)) % len(r.entries)
	return pa < pb
}
