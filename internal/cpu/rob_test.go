package cpu

import (
	"fmt"
	"testing"
	"testing/quick"

	"hbat/internal/prog"
	"hbat/internal/workload"
)

func TestROBRingBasics(t *testing.T) {
	r := newROB(4)
	if !r.empty() || r.full() {
		t.Fatal("fresh ROB state wrong")
	}
	idxs := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		idx := r.push()
		r.at(idx).seq = int64(i)
		idxs = append(idxs, idx)
	}
	if !r.full() {
		t.Fatal("ROB should be full")
	}
	if r.headEntry().seq != 0 {
		t.Fatal("head is not the oldest")
	}
	r.pop()
	if r.full() || r.headEntry().seq != 1 {
		t.Fatal("pop did not advance")
	}
	// Wrap-around.
	idx := r.push()
	r.at(idx).seq = 4
	seqs := []int64{}
	r.forEach(func(_ int, e *robEntry) bool {
		seqs = append(seqs, e.seq)
		return true
	})
	want := []int64{1, 2, 3, 4}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("forEach order %v, want %v", seqs, want)
		}
	}
	if !r.olderThan(idxs[1], idx) {
		t.Fatal("olderThan wrong across wrap")
	}
}

func TestROBSquashAfter(t *testing.T) {
	r := newROB(8)
	var idxs []int
	for i := 0; i < 6; i++ {
		idx := r.push()
		r.at(idx).seq = int64(i)
		idxs = append(idxs, idx)
	}
	n := r.squashAfter(idxs[2])
	if n != 3 {
		t.Fatalf("squashed %d, want 3", n)
	}
	if r.count != 3 {
		t.Fatalf("count %d, want 3", r.count)
	}
	last := int64(-1)
	r.forEach(func(_ int, e *robEntry) bool {
		last = e.seq
		return true
	})
	if last != 2 {
		t.Fatalf("youngest surviving seq %d, want 2", last)
	}
	for _, i := range idxs[3:] {
		if r.at(i).valid {
			t.Fatal("squashed entry still valid")
		}
	}
}

// Property: any push/pop/squash sequence keeps the ring consistent:
// count matches the number of valid entries seen by forEach, in
// strictly increasing seq order.
func TestROBConsistencyProperty(t *testing.T) {
	check := func(ops []uint8) bool {
		r := newROB(8)
		seq := int64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if !r.full() {
					idx := r.push()
					r.at(idx).seq = seq
					r.at(idx).state = sDone
					seq++
				}
			case 1:
				if !r.empty() {
					r.pop()
				}
			case 2:
				if r.count > 1 {
					// Squash after the head.
					r.squashAfter(r.head)
				}
			}
			// Invariants.
			n := 0
			last := int64(-1)
			okOrder := true
			r.forEach(func(_ int, e *robEntry) bool {
				if !e.valid || e.seq <= last {
					okOrder = false
				}
				last = e.seq
				n++
				return true
			})
			if n != r.count || !okOrder {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFetchQueueRing(t *testing.T) {
	m := &Machine{fetchQ: make([]fetchedInst, 0, 4)}
	m.cfg.FetchQueue = 4
	for i := 0; i < 3; i++ {
		m.pushFetched(fetchedInst{pc: uint64(i)})
	}
	if m.fetchQLen() != 3 {
		t.Fatalf("len %d", m.fetchQLen())
	}
	if m.peekFetched().pc != 0 {
		t.Fatal("peek wrong")
	}
	if m.popFetched().pc != 0 || m.popFetched().pc != 1 {
		t.Fatal("pop order wrong")
	}
	m.pushFetched(fetchedInst{pc: 9}) // triggers compaction path
	if m.fetchQLen() != 2 || m.peekFetched().pc != 2 {
		t.Fatal("state after compaction wrong")
	}
	m.flushFetchQ()
	if m.fetchQLen() != 0 || m.peekFetched() != nil {
		t.Fatal("flush wrong")
	}
}

// TestDeterminism: identical configurations produce identical cycle
// counts and statistics (required for reproducible experiments).
func TestDeterminism(t *testing.T) {
	p := buildSumProgram(t, 200, prog.Budget32)
	var cycles [2]int64
	var walks [2]uint64
	for i := range cycles {
		m, err := NewWithDesign(p, DefaultConfig(), "M8")
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		cycles[i] = m.Stats().Cycles
		walks[i] = m.Stats().TLBWalks
	}
	if cycles[0] != cycles[1] || walks[0] != walks[1] {
		t.Fatalf("nondeterministic: %v %v", cycles, walks)
	}
}

// checkStateCounters verifies the scan-accelerator counters against a
// full ROB scan.
func (m *Machine) checkStateCounters() error {
	w, x, mm, sna := 0, 0, 0, 0
	m.rob.forEach(func(_ int, e *robEntry) bool {
		switch e.state {
		case sWaiting:
			w++
		case sExecuting:
			x++
		case sMemReq, sMemWalk, sStoreData:
			mm++
		}
		if e.isStore && !e.addrReady {
			sna++
		}
		return true
	})
	if w != m.nWaiting || x != m.nExec || mm != m.nMem || sna != m.nStoreNoAddr {
		return fmt.Errorf("counters drifted: waiting %d/%d exec %d/%d mem %d/%d storeNoAddr %d/%d",
			m.nWaiting, w, m.nExec, x, m.nMem, mm, m.nStoreNoAddr, sna)
	}
	return nil
}

// TestStateCountersStayConsistent drives a branchy, memory-heavy
// workload tick by tick and validates the scan-accelerator counters
// against a full scan throughout.
func TestStateCountersStayConsistent(t *testing.T) {
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewWithDesign(p, DefaultConfig(), "M4")
	if err != nil {
		t.Fatal(err)
	}
	for !m.halted && m.err == nil && m.cycle < 30000 {
		m.tick()
		if m.cycle%64 == 0 {
			if err := m.checkStateCounters(); err != nil {
				t.Fatalf("cycle %d: %v", m.cycle, err)
			}
		}
	}
	if m.err != nil {
		t.Fatal(m.err)
	}
}
