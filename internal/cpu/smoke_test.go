package cpu

import (
	"testing"

	"hbat/internal/emu"
	"hbat/internal/isa"
	"hbat/internal/prog"
)

// buildSumProgram builds a loop that sums array elements and stores the
// result, exercising loads, stores, branches, and pointer arithmetic.
func buildSumProgram(t *testing.T, n int, budget prog.RegBudget) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("sum")
	arr := b.Alloc("arr", uint64(8*n), 8)
	words := make([]uint64, n)
	for i := range words {
		words[i] = uint64(i * 3)
	}
	b.SetWords(arr, words)
	b.Alloc("result", 8, 8)

	p := b.IVar("p")
	end := b.IVar("end")
	sum := b.IVar("sum")
	v := b.IVar("v")
	res := b.IVar("res")

	b.La(p, "arr")
	b.Addi(end, p, int32(8*n))
	b.Move(sum, isa.Zero)
	b.Label("loop")
	b.LdPost(v, p, 8)
	b.Add(sum, sum, v)
	b.Bne(p, end, "loop")
	b.La(res, "result")
	b.Sd(sum, res, 0)
	b.Halt()

	pr, err := b.Finalize(budget)
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return pr
}

func TestSmokeOutOfOrderMatchesEmulator(t *testing.T) {
	for _, design := range []string{"T4", "T1", "M8", "P8", "PB1", "I4", "I4/PB", "X4", "M4"} {
		t.Run(design, func(t *testing.T) {
			p := buildSumProgram(t, 100, prog.Budget32)

			ref, err := emu.New(p, 4096)
			if err != nil {
				t.Fatalf("emu.New: %v", err)
			}
			if err := ref.Run(0); err != nil {
				t.Fatalf("emu.Run: %v", err)
			}

			cfg := DefaultConfig()
			m, err := NewWithDesign(p, cfg, design)
			if err != nil {
				t.Fatalf("NewWithDesign: %v", err)
			}
			if err := m.Run(); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !m.Halted() {
				t.Fatalf("machine did not halt (cycles=%d committed=%d)", m.Cycle(), m.Stats().Committed)
			}
			if got, want := m.Stats().Committed, ref.InstCount; got != want {
				t.Errorf("committed %d insts, emulator retired %d", got, want)
			}

			var got, want [8]byte
			if err := m.ReadVirt(prog.DataBase+800, got[:]); err != nil {
				t.Fatalf("ReadVirt: %v", err)
			}
			if err := ref.ReadVirt(prog.DataBase+800, want[:]); err != nil {
				t.Fatalf("emu ReadVirt: %v", err)
			}
			if got != want {
				t.Errorf("result mismatch: cpu %v emu %v", got, want)
			}
		})
	}
}

func TestSmokeInOrder(t *testing.T) {
	p := buildSumProgram(t, 100, prog.Budget32)
	cfg := DefaultConfig()
	cfg.InOrder = true
	m, err := NewWithDesign(p, cfg, "T4")
	if err != nil {
		t.Fatalf("NewWithDesign: %v", err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !m.Halted() {
		t.Fatal("in-order machine did not halt")
	}

	ooo, _ := NewWithDesign(p, DefaultConfig(), "T4")
	if err := ooo.Run(); err != nil {
		t.Fatalf("ooo Run: %v", err)
	}
	if m.Stats().Cycles <= ooo.Stats().Cycles {
		t.Errorf("in-order (%d cycles) should be slower than out-of-order (%d cycles)",
			m.Stats().Cycles, ooo.Stats().Cycles)
	}
}

func TestSmokeFewRegisters(t *testing.T) {
	p32 := buildSumProgram(t, 100, prog.Budget32)
	p8 := buildSumProgram(t, 100, prog.Budget8)
	if p8.SpillSlots == 0 {
		t.Skip("sum program fits in 8 registers; spilling not exercised here")
	}
	m32, _ := NewWithDesign(p32, DefaultConfig(), "T4")
	m8, _ := NewWithDesign(p8, DefaultConfig(), "T4")
	if err := m32.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m8.Run(); err != nil {
		t.Fatal(err)
	}
	if m8.Stats().CommittedLoads <= m32.Stats().CommittedLoads {
		t.Errorf("8-register build should issue more loads (%d vs %d)",
			m8.Stats().CommittedLoads, m32.Stats().CommittedLoads)
	}
}
