package cpu

import (
	"testing"

	"hbat/internal/prog"
	"hbat/internal/ptrace"
	"hbat/internal/workload"
)

func traceTestMachine(t *testing.T, design string) *Machine {
	t.Helper()
	w, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewWithDesign(p, DefaultConfig(), design)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTraceCoversPipeline runs a port-pressured design with a large
// buffer and checks the recorder saw every lifecycle stage, agreeing
// with the aggregate counters where an exact correspondence exists.
func TestTraceCoversPipeline(t *testing.T) {
	m := traceTestMachine(t, "T1")
	m.SetTracer(ptrace.New(ptrace.Config{Cap: 1 << 20}))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tr := m.Tracer()
	if tr.Dropped() != 0 {
		t.Fatalf("buffer wrapped (%d dropped); enlarge Cap so counts are exact", tr.Dropped())
	}
	var counts [64]uint64
	for _, e := range tr.Events() {
		counts[e.Kind]++
	}
	s := m.Stats()
	if counts[ptrace.KCommit] != s.Committed {
		t.Errorf("commit events %d, committed %d", counts[ptrace.KCommit], s.Committed)
	}
	if counts[ptrace.KSquash] != s.Squashed {
		t.Errorf("squash events %d, squashed %d", counts[ptrace.KSquash], s.Squashed)
	}
	if counts[ptrace.KIssue] != s.Issued {
		t.Errorf("issue events %d, issued %d", counts[ptrace.KIssue], s.Issued)
	}
	if counts[ptrace.KTLBNoPort] != s.TLBRetries {
		t.Errorf("tlb-noport events %d, retries %d", counts[ptrace.KTLBNoPort], s.TLBRetries)
	}
	if counts[ptrace.KWalkEnd] == 0 {
		t.Error("no page-table walks recorded")
	}
	if counts[ptrace.KWalkStart] != counts[ptrace.KWalkEnd] {
		t.Errorf("walk starts %d != walk ends %d", counts[ptrace.KWalkStart], counts[ptrace.KWalkEnd])
	}
	for _, k := range []ptrace.Kind{
		ptrace.KFetch, ptrace.KDispatch, ptrace.KComplete,
		ptrace.KTLBHit, ptrace.KTLBMiss, ptrace.KDCacheHit, ptrace.KDCacheMiss,
	} {
		if counts[k] == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}
	// Dispatch events must never outnumber fetch events: every dispatched
	// instruction's fetch was back-filled from the fetch queue.
	if counts[ptrace.KDispatch] > counts[ptrace.KFetch] {
		t.Errorf("dispatch %d > fetch %d", counts[ptrace.KDispatch], counts[ptrace.KFetch])
	}
}

// TestTraceWindow checks cycle-range windowing against a full recording
// of the same deterministic run.
func TestTraceWindow(t *testing.T) {
	m := traceTestMachine(t, "T4")
	m.SetTracer(ptrace.New(ptrace.Config{Cap: 1 << 20, Start: 200, End: 400}))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	evs := m.Tracer().Events()
	if len(evs) == 0 {
		t.Fatal("window recorded nothing")
	}
	for _, e := range evs {
		if e.Cycle < 200 || e.Cycle > 400 {
			t.Fatalf("event at cycle %d escaped window [200,400]", e.Cycle)
		}
	}
}

// TestTraceEmptyWindow: an inverted window is valid and records nothing.
func TestTraceEmptyWindow(t *testing.T) {
	m := traceTestMachine(t, "T4")
	m.SetTracer(ptrace.New(ptrace.Config{Cap: 1 << 10, Start: 500, End: 100}))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if n := m.Tracer().Len(); n != 0 {
		t.Errorf("empty window recorded %d events", n)
	}
}

// TestTickNoAllocs pins the hot path: after warmup, a simulation cycle
// performs zero heap allocations — with tracing off and with a tracer
// attached (the ring buffer is preallocated).
func TestTickNoAllocs(t *testing.T) {
	for _, tc := range []struct {
		name   string
		tracer *ptrace.Recorder
	}{
		{"tracing-off", nil},
		{"tracing-on", ptrace.New(ptrace.Config{Cap: 1 << 20})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := traceTestMachine(t, "T4")
			m.SetTracer(tc.tracer)
			for i := 0; i < 2000 && !m.halted && m.err == nil; i++ {
				m.tick() // warm up: queues, ROB, cache state reach steady shape
			}
			if m.halted || m.err != nil {
				t.Fatalf("machine stopped during warmup: halted=%v err=%v", m.halted, m.err)
			}
			allocs := testing.AllocsPerRun(500, func() {
				if !m.halted && m.err == nil {
					m.tick()
				}
			})
			if allocs != 0 {
				t.Errorf("tick allocates %.2f per cycle, want 0", allocs)
			}
		})
	}
}

// TestIntervalSampling checks the time-series rows cover the run and a
// final partial interval is flushed.
func TestIntervalSampling(t *testing.T) {
	m := traceTestMachine(t, "T4")
	m.EnableIntervalSampling(1000)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	iv := m.Intervals()
	if iv == nil {
		t.Fatal("no interval series")
	}
	rows := make([][]float64, iv.Len())
	for i := range rows {
		rows[i] = iv.Row(i)
	}
	if len(rows) == 0 {
		t.Fatal("no interval rows")
	}
	cycles := m.Stats().Cycles
	wantRows := int(cycles / 1000)
	if cycles%1000 != 0 {
		wantRows++ // the flushed partial interval
	}
	if len(rows) != wantRows {
		t.Errorf("rows = %d, want %d for %d cycles", len(rows), wantRows, cycles)
	}
	last := rows[len(rows)-1]
	if int64(last[0]) != cycles {
		t.Errorf("last sample at cycle %v, run ended at %d", last[0], cycles)
	}
	// Committed-IPC column must integrate back to the aggregate count.
	var insts float64
	prev := 0.0
	for _, r := range rows {
		insts += r[1] * (r[0] - prev)
		prev = r[0]
	}
	if got, want := uint64(insts+0.5), m.Stats().Committed; got != want {
		t.Errorf("interval IPC integrates to %d insts, committed %d", got, want)
	}
}

// TestProgressHeartbeat checks the callback cadence.
func TestProgressHeartbeat(t *testing.T) {
	m := traceTestMachine(t, "T4")
	var calls int
	var lastCycle int64
	m.SetProgress(1000, func(cycle int64, committed uint64) {
		calls++
		lastCycle = cycle
		if cycle%1000 != 0 {
			t.Errorf("heartbeat at cycle %d, not a multiple of 1000", cycle)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := int(m.Stats().Cycles / 1000)
	if calls != want {
		t.Errorf("heartbeat fired %d times over %d cycles, want %d", calls, m.Stats().Cycles, want)
	}
	if calls > 0 && lastCycle == 0 {
		t.Error("heartbeat never reported a nonzero cycle")
	}
}
