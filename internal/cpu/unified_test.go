package cpu

import (
	"testing"

	"hbat/internal/prog"
	"hbat/internal/workload"
)

// TestUnifiedTLBInterference: routing micro-ITLB refills through the
// shared translation device must stay architecturally transparent and,
// on a bandwidth-starved device (T1), can only slow the machine down.
func TestUnifiedTLBInterference(t *testing.T) {
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}

	base, err := NewWithDesign(p, DefaultConfig(), "T1")
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.ModelITLB = true
	cfg.ITLBEntries = 2
	cfg.UnifiedTLB = true
	m, err := NewWithDesign(p, cfg, "T1")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Committed != base.Stats().Committed {
		t.Fatalf("unified TLB changed architecture: %d vs %d",
			m.Stats().Committed, base.Stats().Committed)
	}
	if m.Stats().ITLBMisses == 0 {
		t.Skip("no ITLB misses at this scale")
	}
	if m.Stats().Cycles < base.Stats().Cycles {
		t.Fatalf("unified refills made the machine faster (%d vs %d cycles)",
			m.Stats().Cycles, base.Stats().Cycles)
	}
	t.Logf("ITLB misses %d, refill rejections %d, slowdown %.2f%%",
		m.Stats().ITLBMisses, m.Stats().ITLBRefillRejects,
		100*(float64(m.Stats().Cycles)/float64(base.Stats().Cycles)-1))
}

// TestContextSwitchFlushes: periodic full flushes must occur at the
// configured interval and can only cost cycles, never change
// architecture.
func TestContextSwitchFlushes(t *testing.T) {
	w, err := workload.ByName("xlisp")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewWithDesign(p, DefaultConfig(), "M8")
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.FlushTLBEvery = 5000
	m, err := NewWithDesign(p, cfg, "M8")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Committed != base.Stats().Committed {
		t.Fatalf("flushes changed architecture: %d vs %d",
			m.Stats().Committed, base.Stats().Committed)
	}
	wantFlushes := base.Stats().Committed / 5000
	if m.Stats().ContextFlushes < wantFlushes/2 || m.Stats().ContextFlushes > wantFlushes+2 {
		t.Fatalf("flushes = %d, expected about %d", m.Stats().ContextFlushes, wantFlushes)
	}
	if m.Stats().TLBWalks <= base.Stats().TLBWalks {
		t.Fatal("flushing did not increase walks")
	}
	if m.Stats().Cycles < base.Stats().Cycles {
		t.Fatal("flushing made the machine faster")
	}
	t.Logf("flushes %d, walks %d->%d, cycles %d->%d",
		m.Stats().ContextFlushes, base.Stats().TLBWalks, m.Stats().TLBWalks,
		base.Stats().Cycles, m.Stats().Cycles)
}
