package cpu

import (
	"testing"

	"hbat/internal/emu"
	"hbat/internal/prog"
	"hbat/internal/workload"
)

// TestVirtualCacheCorrectness: the virtually-indexed organization must
// be architecturally identical to the physical one for every workload.
func TestVirtualCacheCorrectness(t *testing.T) {
	for _, name := range []string{"espresso", "xlisp", "compress", "perl"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := w.Build(prog.Budget32, workload.ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := emu.New(p, 4096)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Run(0); err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.VirtualCache = true
			m, err := NewWithDesign(p, cfg, "T1")
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(); err != nil {
				t.Fatalf("%v\n%s", err, m.DebugHead())
			}
			if m.Stats().Committed != ref.InstCount {
				t.Fatalf("committed %d, emulator %d", m.Stats().Committed, ref.InstCount)
			}
			got := make([]byte, 2048)
			want := make([]byte, 2048)
			if err := m.ReadVirt(prog.DataBase, got); err != nil {
				t.Fatal(err)
			}
			if err := ref.ReadVirt(prog.DataBase, want); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("memory differs at data+%d", i)
				}
			}
		})
	}
}

// TestVirtualCacheRelievesBandwidth reproduces the paper's Section 3
// observation: with a virtual cache, translation is needed only on
// cache misses, so even a single-ported TLB stops being a bottleneck.
// espresso — the workload most starved by T1 — must recover nearly all
// of the performance it loses to translation bandwidth.
func TestVirtualCacheRelievesBandwidth(t *testing.T) {
	w, err := workload.ByName("espresso")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	run := func(vc bool) *Stats {
		cfg := DefaultConfig()
		cfg.VirtualCache = vc
		m, err := NewWithDesign(p, cfg, "T1")
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if vc {
			// Translation requests must have collapsed to roughly the
			// cache miss count.
			dev := m.DTLB.Stats()
			if dev.Lookups >= (m.Stats().CommittedLoads+m.Stats().CommittedStores)/2 {
				t.Errorf("virtual cache still translated %d of %d refs",
					dev.Lookups, m.Stats().CommittedLoads+m.Stats().CommittedStores)
			}
		}
		return m.Stats()
	}
	phys := run(false)
	virt := run(true)
	if virt.IPC() <= phys.IPC()*1.2 {
		t.Fatalf("virtual cache IPC %.3f vs physical %.3f: expected a large recovery on T1",
			virt.IPC(), phys.IPC())
	}
	t.Logf("T1 IPC: physical-cache %.3f, virtual-cache %.3f", phys.IPC(), virt.IPC())
}
