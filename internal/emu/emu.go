// Package emu is the functional (untimed) emulator for the simulated
// ISA. It defines the architected behaviour of a program: the timing
// pipelines in internal/cpu must commit exactly the instruction stream
// and final state this emulator produces, which the integration tests
// check. It also drives trace-based studies (the paper's Figure 6 TLB
// miss-rate experiment) via the OnMemRef hook.
package emu

import (
	"errors"
	"fmt"

	"hbat/internal/isa"
	"hbat/internal/mem"
	"hbat/internal/prog"
	"hbat/internal/vm"
)

// ErrHalted is returned by Step once the program has executed Halt.
var ErrHalted = errors.New("emu: machine halted")

// Machine is a functional processor state bound to one program.
type Machine struct {
	Prog *prog.Program
	AS   *vm.AddressSpace
	Mem  *mem.Memory

	Regs [isa.NumRegs]uint64
	PC   uint64

	Halted bool

	// Counts of retired operations.
	InstCount   uint64
	LoadCount   uint64
	StoreCount  uint64
	BranchCount uint64
	TakenCount  uint64

	// OnMemRef, when non-nil, observes every data reference (virtual
	// address, write flag) in program order.
	OnMemRef func(vaddr uint64, write bool)
}

// New loads prog into a fresh machine with the given page size.
func New(p *prog.Program, pageSize uint64) (*Machine, error) {
	m := &Machine{
		Prog: p,
		AS:   vm.NewAddressSpace(pageSize),
		Mem:  mem.New(),
		PC:   p.Entry,
	}
	for _, r := range p.Regions {
		m.AS.AddRegion(r)
	}
	for reg, v := range p.InitRegs {
		m.Regs[reg] = v
	}
	for _, seg := range p.Data {
		if err := m.writeVirt(seg.Addr, seg.Bytes); err != nil {
			return nil, fmt.Errorf("emu: loading data segment at 0x%x: %w", seg.Addr, err)
		}
	}
	return m, nil
}

// writeVirt copies bytes into virtual memory page by page.
func (m *Machine) writeVirt(vaddr uint64, b []byte) error {
	ps := m.AS.PageSize()
	for len(b) > 0 {
		pa, err := m.AS.Translate(vaddr, vm.PermWrite)
		if err != nil {
			return err
		}
		n := ps - m.AS.PageOffset(vaddr)
		if uint64(len(b)) < n {
			n = uint64(len(b))
		}
		m.Mem.Write(pa, b[:n])
		b = b[n:]
		vaddr += n
	}
	return nil
}

func (m *Machine) loadRaw(vaddr uint64, width int) (uint64, error) {
	pa, err := m.AS.Translate(vaddr, vm.PermRead)
	if err != nil {
		return 0, err
	}
	switch width {
	case 1:
		return uint64(m.Mem.ByteAt(pa)), nil
	case 2:
		return uint64(m.Mem.Read16(pa)), nil
	case 4:
		return uint64(m.Mem.Read32(pa)), nil
	default:
		return m.Mem.Read64(pa), nil
	}
}

func (m *Machine) storeRaw(vaddr uint64, width int, v uint64) error {
	pa, err := m.AS.Translate(vaddr, vm.PermWrite)
	if err != nil {
		return err
	}
	switch width {
	case 1:
		m.Mem.SetByte(pa, byte(v))
	case 2:
		m.Mem.Write16(pa, uint16(v))
	case 4:
		m.Mem.Write32(pa, uint32(v))
	default:
		m.Mem.Write64(pa, v)
	}
	return nil
}

// Step executes one instruction.
func (m *Machine) Step() error {
	if m.Halted {
		return ErrHalted
	}
	in := m.Prog.InstAt(m.PC)
	if in == nil {
		return fmt.Errorf("emu: PC 0x%x outside text segment", m.PC)
	}
	next := m.PC + isa.InstBytes

	switch in.Class() {
	case isa.ClassNop:
		// nothing
	case isa.ClassHalt:
		m.Halted = true
		m.InstCount++
		return nil
	case isa.ClassLoad:
		addr, newBase, upd := isa.EffAddr(in, m.Regs[in.Rs], m.Regs[in.Rt])
		if m.OnMemRef != nil {
			m.OnMemRef(addr, false)
		}
		raw, err := m.loadRaw(addr, in.MemBytes())
		if err != nil {
			return fmt.Errorf("emu: %s at pc 0x%x: %w", in, m.PC, err)
		}
		m.setReg(in.Rd, isa.LoadExtend(in.Op, raw))
		if upd {
			m.setReg(in.Rs, newBase)
		}
		m.LoadCount++
	case isa.ClassStore:
		addr, newBase, upd := isa.EffAddr(in, m.Regs[in.Rs], m.Regs[in.Rt])
		if m.OnMemRef != nil {
			m.OnMemRef(addr, true)
		}
		if err := m.storeRaw(addr, in.MemBytes(), m.Regs[in.Rd]); err != nil {
			return fmt.Errorf("emu: %s at pc 0x%x: %w", in, m.PC, err)
		}
		if upd {
			m.setReg(in.Rs, newBase)
		}
		m.StoreCount++
	case isa.ClassBranch:
		m.BranchCount++
		if isa.BranchTaken(in, m.Regs[in.Rs], m.Regs[in.Rt]) {
			next = in.Target
			m.TakenCount++
		}
	case isa.ClassJump:
		m.BranchCount++
		m.TakenCount++
		switch in.Op {
		case isa.J:
			next = in.Target
		case isa.Jal:
			m.setReg(isa.RA, m.PC+isa.InstBytes)
			next = in.Target
		case isa.Jr:
			next = m.Regs[in.Rs]
		case isa.Jalr:
			m.setReg(in.Rd, m.PC+isa.InstBytes)
			next = m.Regs[in.Rs]
		}
	default:
		m.setReg(in.Rd, isa.ALUEval(in, m.Regs[in.Rs], m.Regs[in.Rt], m.PC))
	}

	m.PC = next
	m.InstCount++
	return nil
}

func (m *Machine) setReg(r isa.Reg, v uint64) {
	if r == isa.Zero {
		return
	}
	m.Regs[r] = v
}

// Run executes until Halt or maxInsts instructions (0 = unlimited).
// It returns nil on a clean halt.
func (m *Machine) Run(maxInsts uint64) error {
	for !m.Halted {
		if maxInsts > 0 && m.InstCount >= maxInsts {
			return fmt.Errorf("emu: instruction budget %d exhausted at pc 0x%x", maxInsts, m.PC)
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// ReadVirt reads len(buf) bytes of virtual memory (for test assertions
// on program results).
func (m *Machine) ReadVirt(vaddr uint64, buf []byte) error {
	ps := m.AS.PageSize()
	for len(buf) > 0 {
		pa, err := m.AS.Translate(vaddr, vm.PermRead)
		if err != nil {
			return err
		}
		n := ps - m.AS.PageOffset(vaddr)
		if uint64(len(buf)) < n {
			n = uint64(len(buf))
		}
		m.Mem.Read(pa, buf[:n])
		buf = buf[n:]
		vaddr += n
	}
	return nil
}
