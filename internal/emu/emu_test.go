package emu

import (
	"errors"
	"math"
	"testing"

	"hbat/internal/isa"
	"hbat/internal/prog"
)

func fib(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("fib")
	out := b.Alloc("out", 8, 8)
	_ = out
	n := b.IVar("n")
	a := b.IVar("a")
	c := b.IVar("c")
	tmp := b.IVar("tmp")
	ptr := b.IVar("ptr")
	b.Li(n, 20)
	b.Li(a, 0)
	b.Li(c, 1)
	b.Label("loop")
	b.Add(tmp, a, c)
	b.Move(a, c)
	b.Move(c, tmp)
	b.Addi(n, n, -1)
	b.Bgtz(n, "loop")
	b.La(ptr, "out")
	b.Sd(a, ptr, 0)
	b.Halt()
	p, err := b.Finalize(prog.Budget32)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFibonacci(t *testing.T) {
	m, err := New(fib(t), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	var buf [8]byte
	if err := m.ReadVirt(prog.DataBase, buf[:]); err != nil {
		t.Fatal(err)
	}
	got := uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16
	if got != 6765 { // fib(20)
		t.Fatalf("fib(20) = %d, want 6765", got)
	}
	if !m.Halted {
		t.Fatal("not halted")
	}
}

func TestStepAfterHalt(t *testing.T) {
	b := prog.NewBuilder("h")
	b.Halt()
	p, _ := b.Finalize(prog.Budget32)
	m, _ := New(p, 4096)
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); !errors.Is(err, ErrHalted) {
		t.Fatalf("step after halt: %v", err)
	}
}

func TestInstructionBudget(t *testing.T) {
	b := prog.NewBuilder("inf")
	b.Label("x")
	b.J("x")
	p, _ := b.Finalize(prog.Budget32)
	m, _ := New(p, 4096)
	if err := m.Run(100); err == nil {
		t.Fatal("infinite loop ran to completion?")
	}
	if m.InstCount != 100 {
		t.Fatalf("inst count %d", m.InstCount)
	}
}

func TestPCEscapeFails(t *testing.T) {
	b := prog.NewBuilder("esc")
	b.Nop() // falls off the end
	p, _ := b.Finalize(prog.Budget32)
	p.Code = p.Code[:1]
	m, _ := New(p, 4096)
	m.Step()
	if err := m.Step(); err == nil {
		t.Fatal("PC escape not detected")
	}
}

func TestMemRefHookSeesProgramOrder(t *testing.T) {
	b := prog.NewBuilder("refs")
	arr := b.Alloc("arr", 64, 8)
	_ = arr
	pR := b.IVar("p")
	v := b.IVar("v")
	b.La(pR, "arr")
	b.Li(v, 7)
	b.Sd(v, pR, 0)
	b.Ld(v, pR, 0)
	b.Sd(v, pR, 8)
	b.Halt()
	p, _ := b.Finalize(prog.Budget32)
	m, _ := New(p, 4096)
	var refs []struct {
		addr  uint64
		write bool
	}
	m.OnMemRef = func(vaddr uint64, write bool) {
		refs = append(refs, struct {
			addr  uint64
			write bool
		}{vaddr, write})
	}
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []struct {
		addr  uint64
		write bool
	}{
		{prog.DataBase, true},
		{prog.DataBase, false},
		{prog.DataBase + 8, true},
	}
	if len(refs) != len(want) {
		t.Fatalf("refs = %v", refs)
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Fatalf("ref %d = %+v, want %+v", i, refs[i], want[i])
		}
	}
}

func TestCallAndReturn(t *testing.T) {
	b := prog.NewBuilder("call")
	v := b.IVar("v")
	b.Li(v, 1)
	b.Jal("double")
	b.Jal("double")
	b.Halt()
	b.Label("double")
	b.Add(v, v, v)
	b.Ret()
	p, err := b.Finalize(prog.Budget32)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(p, 4096)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	// v is allocated to the first pool register (AT).
	if got := m.Regs[isa.AT]; got != 4 {
		t.Fatalf("after two doublings: %d, want 4", got)
	}
}

// TestFloatingPointProgram drives the FP builder helpers end to end:
// constants, arithmetic, compares, conversions, and FP memory ops.
func TestFloatingPointProgram(t *testing.T) {
	b := prog.NewBuilder("fp")
	in := b.Alloc("in", 8*4, 8)
	b.SetFloats(in, []float64{1.5, -2.25, 8.0, 0.5})
	b.Alloc("out", 8*4, 8)

	p := b.IVar("p")
	o := b.IVar("o")
	cmp := b.IVar("cmp")
	n := b.IVar("n")
	x := b.FVar("x")
	y := b.FVar("y")
	z := b.FVar("z")
	k := b.FVar("k")

	b.La(p, "in")
	b.La(o, "out")
	b.LiF(k, 2.0)
	b.LdF(x, p, 0)  // 1.5
	b.LdF(y, p, 8)  // -2.25
	b.AddF(z, x, y) // -0.75
	b.MulF(z, z, k) // -1.5
	b.AbsF(z, z)    // 1.5
	b.StF(z, o, 0)
	b.LdF(x, p, 16) // 8.0
	b.LdF(y, p, 24) // 0.5
	b.DivF(z, x, y) // 16.0
	b.SubF(z, z, k) // 14.0
	b.NegF(z, z)    // -14.0
	b.StF(z, o, 8)
	// Compare-and-branch: |x| > |z|? (8 vs 14) -> not taken path.
	b.CmpLtF(cmp, x, z)
	b.Bne(cmp, prog.RegZero, "less")
	b.CvtFI(n, x) // 8
	b.CvtIF(z, n) // 8.0
	b.MovF(y, z)
	b.StF(y, o, 16)
	b.Label("less")
	b.Halt()
	pr, err := b.Finalize(prog.Budget32)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(pr, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	var buf [24]byte
	// "out" follows "in" in the data segment (DataBase+32).
	if err := m.ReadVirt(prog.DataBase+32, buf[:]); err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 3)
	for i := range vals {
		bits := uint64(0)
		for j := 0; j < 8; j++ {
			bits |= uint64(buf[i*8+j]) << (8 * j)
		}
		vals[i] = math.Float64frombits(bits)
	}
	want := []float64{1.5, -14.0, 8.0}
	for i, w := range want {
		if vals[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, vals[i], w)
		}
	}
}

// TestByteHalfwordAccess covers the narrow load/store widths and their
// sign extensions through memory.
func TestByteHalfwordAccess(t *testing.T) {
	b := prog.NewBuilder("narrow")
	b.Alloc("buf", 64, 8)
	b.Alloc("res", 8*4, 8)
	p := b.IVar("p")
	o := b.IVar("o")
	v := b.IVar("v")
	b.La(p, "buf")
	b.La(o, "res")
	b.Li(v, 0x8081)
	b.Sh(v, p, 0) // halfword 0x8081
	b.Lh(v, p, 0) // sign-extends
	b.Sd(v, o, 0)
	b.Li(v, 0x80)
	b.Sb(v, p, 8)
	b.Lbu(v, p, 8) // zero-extends
	b.Sd(v, o, 8)
	b.Lb(v, p, 8) // sign-extends
	b.Sd(v, o, 16)
	b.Halt()
	pr, err := b.Finalize(prog.Budget32)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(pr, 4096)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	var buf [24]byte
	if err := m.ReadVirt(prog.DataBase+64, buf[:]); err != nil {
		t.Fatal(err)
	}
	get := func(i int) uint64 {
		bits := uint64(0)
		for j := 0; j < 8; j++ {
			bits |= uint64(buf[i*8+j]) << (8 * j)
		}
		return bits
	}
	if get(0) != 0xFFFFFFFFFFFF8081 {
		t.Errorf("lh sign extension: %#x", get(0))
	}
	if get(1) != 0x80 {
		t.Errorf("lbu zero extension: %#x", get(1))
	}
	if get(2) != 0xFFFFFFFFFFFFFF80 {
		t.Errorf("lb sign extension: %#x", get(2))
	}
}
