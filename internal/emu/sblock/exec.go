package sblock

import (
	"encoding/binary"
	"fmt"
	"math"

	"hbat/internal/emu"
	"hbat/internal/isa"
	"hbat/internal/mem"
	"hbat/internal/prog"
)

// regMask masks a decoded register index for bounds-check-free access
// to the register file; isa.NumRegs is a power of two and decoded
// indices are already in range, so the mask never changes a value.
const regMask = isa.NumRegs - 1

// CtrlKind classifies the control-flow instruction that closed a batch
// record, for the consumer's branch-predictor training.
type CtrlKind uint8

// Batch control kinds.
const (
	CtrlNone   CtrlKind = iota // no control instruction executed
	CtrlBranch                 // conditional branch
	CtrlJump                   // unconditional jump (J, Jal, Jr, Jalr)
)

// MemRef is one data reference in program order: the virtual address,
// the write flag, and the index of the referencing instruction (the
// machine's InstCount before it retired — the warm-up stamp basis).
// When the engine's own access translated successfully it also carries
// the physical address, letting the warming consumer account the
// reference's page-table walk without repeating it: the engine's
// translate already demand-allocated the page and set its sticky
// Ref/Dirty bits with the same permission, so a second walk could only
// return the same frame. A ref without PAOK (a faulting access, or the
// per-instruction interpreter fallback) leaves the consumer to
// translate — and surface page state — exactly as before.
type MemRef struct {
	Vaddr   uint64
	PA      uint64
	InstIdx uint64
	Write   bool
	PAOK    bool
}

// Batch is one block execution's side-band record for batched warming.
// The checkpoint builder drains it after each RunBlock call instead of
// receiving per-instruction callbacks: the fetch stream is implied by
// (PC0, FetchPA, Count), the data references arrive as a vector, and
// the terminating control transfer is summarized for predictor
// training. Refs keeps its capacity across calls.
type Batch struct {
	PC0      uint64 // address of the first executed instruction
	InstIdx0 uint64 // machine InstCount on entry
	Count    uint64 // instructions executed (may stop short of the block)
	FetchPA  uint64 // physical address of PC0 (valid when FetchOK)
	FetchOK  bool
	Ctrl     CtrlKind
	Taken    bool
	NextPC   uint64 // PC after the batch (branch outcome for training)
	Refs     []MemRef
}

// Run executes until Halt or maxInsts instructions (0 = unlimited),
// mirroring emu.Machine.Run exactly — same final state, same error
// text on budget exhaustion or faults, same OnMemRef callback order.
// If a cancellation context is armed (SetCancel), it is polled at
// every block boundary and Run returns the context's error.
func (e *Engine) Run(maxInsts uint64) error {
	m := e.m
	for !m.Halted {
		if maxInsts > 0 && m.InstCount >= maxInsts {
			return fmt.Errorf("emu: instruction budget %d exhausted at pc 0x%x", maxInsts, m.PC)
		}
		// Exact (select-based) poll: block chaining makes this loop's
		// iterations rare, and a cancel arriving before Run must stop
		// it before any instruction executes. The hot per-block check
		// is the atomic Tripped inside execBlock's chain step.
		if err := e.poll.Err(); err != nil {
			return err
		}
		if e.pendingInterp > 0 {
			e.pendingInterp--
			e.stats.InterpSteps++
			e.hint = nil
			if err := m.Step(); err != nil {
				return err
			}
			continue
		}
		b := e.hint
		if b == nil || b.pc0 != m.PC {
			b = e.lookupBuild(m.PC)
			if b == nil {
				return OutsideTextError(m.PC)
			}
		}
		nb, err := e.execBlock(b, maxInsts, nil, m.OnMemRef)
		if err != nil {
			return err
		}
		e.hint = nb
	}
	return nil
}

// RunBlock executes at most one superblock (bounded so InstCount never
// exceeds limit; limit 0 = unbounded) and fills batch with the records
// the checkpoint builder needs. It allocates nothing in steady state.
// A limit already reached yields Count == 0 and a nil error; a machine
// already halted yields emu.ErrHalted.
func (e *Engine) RunBlock(limit uint64, batch *Batch) error {
	m := e.m
	batch.Refs = batch.Refs[:0]
	batch.Count = 0
	batch.Ctrl = CtrlNone
	batch.Taken = false
	batch.FetchOK = false
	batch.PC0 = m.PC
	batch.InstIdx0 = m.InstCount
	if m.Halted {
		return emu.ErrHalted
	}
	if limit > 0 && m.InstCount >= limit {
		return nil
	}
	if err := e.poll.Err(); err != nil {
		return err
	}
	if e.pendingInterp > 0 {
		err := e.interpStepBatch(batch)
		batch.Count = m.InstCount - batch.InstIdx0
		batch.NextPC = m.PC
		return err
	}
	b := e.hint
	if b == nil || b.pc0 != m.PC {
		b = e.lookupBuild(m.PC)
		if b == nil {
			return OutsideTextError(m.PC)
		}
	}
	// Pre-walk the block's text page so its demand allocation lands
	// before any of the block's data-page allocations, exactly where
	// the interpreted warm loop's first-instruction fetch walk would
	// put it. Blocks never span a page, so one walk covers the whole
	// batch; the consumer accounts the remaining Count-1 walks. The
	// one-entry cache skips the page-table lookup when consecutive
	// blocks share a page (a repeat walk only increments WalkCount).
	if vpn := m.PC >> e.pageBits; e.textVPNP1 == vpn+1 {
		m.AS.WalkCount++
		batch.FetchPA = e.textBase | (m.PC & e.pageMask)
		batch.FetchOK = true
	} else if pte, werr := m.AS.Walk(vpn); werr == nil {
		e.textVPNP1, e.textBase = vpn+1, pte.PFN<<e.pageBits
		batch.FetchPA = e.textBase | (m.PC & e.pageMask)
		batch.FetchOK = true
	}
	nb, err := e.execBlock(b, limit, batch, nil)
	batch.Count = m.InstCount - batch.InstIdx0
	batch.NextPC = m.PC
	if err != nil {
		return err
	}
	e.hint = nb
	return nil
}

// interpStepBatch delegates one instruction to emu.Step after a block
// invalidation, reproducing the batched bookkeeping (fetch walk, ref
// capture, control summary) for that instruction.
func (e *Engine) interpStepBatch(batch *Batch) error {
	m := e.m
	e.pendingInterp--
	e.stats.InterpSteps++
	e.hint = nil
	pc := m.PC
	in := m.Prog.InstAt(pc)
	if in == nil {
		return OutsideTextError(pc)
	}
	if pte, werr := m.AS.Walk(pc >> e.pageBits); werr == nil {
		batch.FetchPA = pte.PFN<<e.pageBits | (pc & e.pageMask)
		batch.FetchOK = true
	}
	saved := m.OnMemRef
	m.OnMemRef = func(vaddr uint64, write bool) {
		batch.Refs = append(batch.Refs, MemRef{Vaddr: vaddr, InstIdx: m.InstCount, Write: write})
	}
	err := m.Step()
	m.OnMemRef = saved
	if err != nil {
		return err
	}
	switch in.Class() {
	case isa.ClassBranch:
		batch.Ctrl = CtrlBranch
		batch.Taken = m.PC != pc+isa.InstBytes
	case isa.ClassJump:
		batch.Ctrl = CtrlJump
		batch.Taken = true
	}
	return nil
}

// execBlock dispatches pre-decoded uops against the machine state,
// bounded by limit. In batch mode (batch non-nil) exactly one block
// executes, data references are appended to batch.Refs, and the
// terminator outcome is summarized; with batch nil the engine chains
// through memoized successors without returning to the caller,
// re-checking the budget and the cancellation flag at every block
// boundary. In hook mode the machine's OnMemRef fires per reference,
// interpreter-identically. It returns the memoized successor block of
// the last block executed, when its terminator resolved one.
//
// The machine's retirement counters and the address space's walk count
// are held in locals for the duration and flushed on every exit, so
// the dispatch loop performs no per-instruction stores outside the
// register file.
func (e *Engine) execBlock(b *block, limit uint64, batch *Batch, hook func(uint64, bool)) (*block, error) {
	m := e.m
	regs := &m.Regs
	chain := batch == nil
	pageBits, pageMask := e.pageBits, e.pageMask
	tlb := &e.tlb

	ic := m.InstCount
	lc, sc := m.LoadCount, m.StoreCount
	bc, tc := m.BranchCount, m.TakenCount
	var wcd, fh, be uint64
	var next *block
	var reterr error

blockLoop:
	for {
		be++
		bodyRun := uint64(len(b.body))
		runTerm := b.hasTerm
		if limit > 0 {
			if rem := limit - ic; rem <= bodyRun {
				bodyRun = rem
				runTerm = false
			}
		}

		// icb+j is the retiring instruction's index, materialized only
		// where an instruction needs it; ic is re-synced at every exit.
		body := b.body[:bodyRun]
		icb := ic
		for j := 0; j < len(body); j++ {
			u := body[j]
			switch u.op {
			// Non-memory body ops with rd == 0 were translated to Nop
			// (their only effect is the register write), so every ALU
			// case below writes its destination unconditionally.
			case isa.Nop:
			case isa.Add:
				regs[u.rd&regMask] = regs[u.rs&regMask] + regs[u.rt&regMask]
			case isa.Sub:
				regs[u.rd&regMask] = regs[u.rs&regMask] - regs[u.rt&regMask]
			case isa.And:
				regs[u.rd&regMask] = regs[u.rs&regMask] & regs[u.rt&regMask]
			case isa.Or:
				regs[u.rd&regMask] = regs[u.rs&regMask] | regs[u.rt&regMask]
			case isa.Xor:
				regs[u.rd&regMask] = regs[u.rs&regMask] ^ regs[u.rt&regMask]
			case isa.Nor:
				regs[u.rd&regMask] = ^(regs[u.rs&regMask] | regs[u.rt&regMask])
			case isa.Sllv:
				regs[u.rd&regMask] = regs[u.rs&regMask] << (regs[u.rt&regMask] & 63)
			case isa.Srlv:
				regs[u.rd&regMask] = regs[u.rs&regMask] >> (regs[u.rt&regMask] & 63)
			case isa.Srav:
				regs[u.rd&regMask] = uint64(int64(regs[u.rs&regMask]) >> (regs[u.rt&regMask] & 63))
			case isa.Slt:
				regs[u.rd&regMask] = b2u(int64(regs[u.rs&regMask]) < int64(regs[u.rt&regMask]))
			case isa.Sltu:
				regs[u.rd&regMask] = b2u(regs[u.rs&regMask] < regs[u.rt&regMask])
			case isa.Addi:
				regs[u.rd&regMask] = regs[u.rs&regMask] + u.imm
			case isa.Andi:
				regs[u.rd&regMask] = regs[u.rs&regMask] & u.imm
			case isa.Ori:
				regs[u.rd&regMask] = regs[u.rs&regMask] | u.imm
			case isa.Xori:
				regs[u.rd&regMask] = regs[u.rs&regMask] ^ u.imm
			case isa.Slti:
				regs[u.rd&regMask] = b2u(int64(regs[u.rs&regMask]) < int64(u.imm))
			case isa.Sltiu:
				regs[u.rd&regMask] = b2u(regs[u.rs&regMask] < u.imm)
			case isa.Sll:
				regs[u.rd&regMask] = regs[u.rs&regMask] << u.imm
			case isa.Srl:
				regs[u.rd&regMask] = regs[u.rs&regMask] >> u.imm
			case isa.Sra:
				regs[u.rd&regMask] = uint64(int64(regs[u.rs&regMask]) >> u.imm)
			case isa.Lui:
				regs[u.rd&regMask] = u.imm
			case isa.Mult:
				regs[u.rd&regMask] = regs[u.rs&regMask] * regs[u.rt&regMask]
			case isa.Div:
				if regs[u.rt&regMask] == 0 {
					regs[u.rd&regMask] = 0
				} else {
					regs[u.rd&regMask] = uint64(int64(regs[u.rs&regMask]) / int64(regs[u.rt&regMask]))
				}
			case isa.Rem:
				if regs[u.rt&regMask] == 0 {
					regs[u.rd&regMask] = 0
				} else {
					regs[u.rd&regMask] = uint64(int64(regs[u.rs&regMask]) % int64(regs[u.rt&regMask]))
				}
			case isa.AddF:
				regs[u.rd&regMask] = math.Float64bits(math.Float64frombits(regs[u.rs&regMask]) + math.Float64frombits(regs[u.rt&regMask]))
			case isa.SubF:
				regs[u.rd&regMask] = math.Float64bits(math.Float64frombits(regs[u.rs&regMask]) - math.Float64frombits(regs[u.rt&regMask]))
			case isa.MulF:
				regs[u.rd&regMask] = math.Float64bits(math.Float64frombits(regs[u.rs&regMask]) * math.Float64frombits(regs[u.rt&regMask]))
			case isa.DivF:
				regs[u.rd&regMask] = math.Float64bits(math.Float64frombits(regs[u.rs&regMask]) / math.Float64frombits(regs[u.rt&regMask]))
			case isa.AbsF:
				regs[u.rd&regMask] = math.Float64bits(math.Abs(math.Float64frombits(regs[u.rs&regMask])))
			case isa.NegF:
				regs[u.rd&regMask] = math.Float64bits(-math.Float64frombits(regs[u.rs&regMask]))
			case isa.MovF:
				regs[u.rd&regMask] = regs[u.rs&regMask]
			case isa.CvtIF:
				regs[u.rd&regMask] = math.Float64bits(float64(int64(regs[u.rs&regMask])))
			case isa.CvtFI:
				f := math.Float64frombits(regs[u.rs&regMask])
				if math.IsNaN(f) {
					regs[u.rd&regMask] = 0
				} else {
					regs[u.rd&regMask] = uint64(int64(f))
				}
			case isa.MTF:
				regs[u.rd&regMask] = regs[u.rs&regMask]
			case isa.MFF:
				regs[u.rd&regMask] = regs[u.rs&regMask]
			case isa.CmpLtF:
				regs[u.rd&regMask] = b2u(math.Float64frombits(regs[u.rs&regMask]) < math.Float64frombits(regs[u.rt&regMask]))
			case isa.CmpLeF:
				regs[u.rd&regMask] = b2u(math.Float64frombits(regs[u.rs&regMask]) <= math.Float64frombits(regs[u.rt&regMask]))
			case isa.CmpEqF:
				regs[u.rd&regMask] = b2u(math.Float64frombits(regs[u.rs&regMask]) == math.Float64frombits(regs[u.rt&regMask]))
			case isa.Lb, isa.Lbu, isa.Lh, isa.Lhu, isa.Lw, isa.Ld, isa.LdF:
				addr, newBase, upd := effAddr(u, regs)
				if batch != nil {
					batch.Refs = append(batch.Refs, MemRef{Vaddr: addr, InstIdx: icb + uint64(j), Write: false})
				} else if hook != nil {
					// The hook observes the machine (the differential
					// battery stamps refs with InstCount), so flush the
					// hoisted counters first.
					ic = icb + uint64(j)
					m.InstCount = ic
					m.LoadCount, m.StoreCount = lc, sc
					m.BranchCount, m.TakenCount = bc, tc
					m.AS.WalkCount += wcd
					wcd = 0
					hook(addr, false)
				}
				// Inline translation-cache fast path; e.load is the
				// uncommon rest (cache miss, unframed page, frame-tail
				// access) and keeps the exact same observable effects.
				var raw, pa uint64
				vpn := addr >> pageBits
				en := &tlb[vpn&tlbMask]
				if fr := en.fr; fr != nil && en.vpnP1 == vpn+1 && en.readOK && (en.base|(addr&pageMask))&(mem.FrameSize-1) <= mem.FrameSize-8 {
					pa = en.base | (addr & pageMask)
					off := pa & (mem.FrameSize - 1)
					wcd++
					fh++
					switch u.width {
					case 1:
						raw = uint64(fr[off])
					case 2:
						raw = uint64(binary.LittleEndian.Uint16(fr[off:]))
					case 4:
						raw = uint64(binary.LittleEndian.Uint32(fr[off:]))
					default:
						raw = binary.LittleEndian.Uint64(fr[off:])
					}
				} else {
					var lerr error
					if raw, pa, lerr = e.load(addr, u.width); lerr != nil {
						ic = icb + uint64(j)
						reterr = e.faultErr(b.pc0+isa.InstBytes*uint64(j), lerr)
						next = nil
						break blockLoop
					}
				}
				if batch != nil {
					r := &batch.Refs[len(batch.Refs)-1]
					r.PA, r.PAOK = pa, true
				}
				if u.rd != 0 {
					regs[u.rd&regMask] = isa.LoadExtend(u.op, raw)
				}
				if upd && u.rs != 0 {
					regs[u.rs&regMask] = newBase
				}
				lc++
			case isa.Sb, isa.Sh, isa.Sw, isa.Sd, isa.StF:
				addr, newBase, upd := effAddr(u, regs)
				if batch != nil {
					batch.Refs = append(batch.Refs, MemRef{Vaddr: addr, InstIdx: icb + uint64(j), Write: true})
				} else if hook != nil {
					ic = icb + uint64(j)
					m.InstCount = ic
					m.LoadCount, m.StoreCount = lc, sc
					m.BranchCount, m.TakenCount = bc, tc
					m.AS.WalkCount += wcd
					wcd = 0
					hook(addr, true)
				}
				v := regs[u.rd&regMask]
				var pa uint64
				vpn := addr >> pageBits
				en := &tlb[vpn&tlbMask]
				if fr := en.fr; fr != nil && en.vpnP1 == vpn+1 && en.writeOK && (en.base|(addr&pageMask))&(mem.FrameSize-1) <= mem.FrameSize-8 {
					pa = en.base | (addr & pageMask)
					off := pa & (mem.FrameSize - 1)
					wcd++
					fh++
					switch u.width {
					case 1:
						fr[off] = byte(v)
					case 2:
						binary.LittleEndian.PutUint16(fr[off:], uint16(v))
					case 4:
						binary.LittleEndian.PutUint32(fr[off:], uint32(v))
					default:
						binary.LittleEndian.PutUint64(fr[off:], v)
					}
				} else {
					var serr error
					if pa, serr = e.store(addr, u.width, v); serr != nil {
						ic = icb + uint64(j)
						reterr = e.faultErr(b.pc0+isa.InstBytes*uint64(j), serr)
						next = nil
						break blockLoop
					}
				}
				if batch != nil {
					r := &batch.Refs[len(batch.Refs)-1]
					r.PA, r.PAOK = pa, true
				}
				if upd && u.rs != 0 {
					regs[u.rs&regMask] = newBase
				}
				sc++
				if addr < e.codeEnd && addr+uint64(u.width) > prog.CodeBase {
					ic = icb + uint64(j) + 1
					m.PC = b.pc0 + isa.InstBytes*(uint64(j)+1)
					e.invalidate(addr, u.width)
					next = nil
					break blockLoop
				}
			default:
				// Unreachable for well-formed programs: every non-control
				// op is enumerated above. Mirror emu.Step's default (ALU
				// path writes ALUEval's zero result); rd == 0 was folded
				// to Nop at translation.
				regs[u.rd&regMask] = 0
			}
		}
		ic = icb + bodyRun

		next = nil
		if !runTerm {
			m.PC = b.pc0 + isa.InstBytes*bodyRun
			if !b.hasTerm && bodyRun == uint64(len(b.body)) {
				if b.fall == nil {
					b.fall = e.lookupBuild(b.end)
				}
				next = b.fall
			}
		} else {
			// Terminator: the block's one control-flow (or halt)
			// instruction.
			t := &b.term
			termPC := b.pc0 + isa.InstBytes*uint64(len(b.body))
			switch t.op {
			case isa.Halt:
				// emu.Step leaves the PC at the halt instruction.
				m.Halted = true
				ic++
				m.PC = termPC
			case isa.Beq, isa.Bne, isa.Blez, isa.Bgtz, isa.Bltz, isa.Bgez:
				bc++
				var taken bool
				switch t.op {
				case isa.Beq:
					taken = regs[t.rs&regMask] == regs[t.rt&regMask]
				case isa.Bne:
					taken = regs[t.rs&regMask] != regs[t.rt&regMask]
				case isa.Blez:
					taken = int64(regs[t.rs&regMask]) <= 0
				case isa.Bgtz:
					taken = int64(regs[t.rs&regMask]) > 0
				case isa.Bltz:
					taken = int64(regs[t.rs&regMask]) < 0
				case isa.Bgez:
					taken = int64(regs[t.rs&regMask]) >= 0
				}
				if taken {
					tc++
					m.PC = b.target
					if b.taken == nil {
						b.taken = e.lookupBuild(b.target)
					}
					next = b.taken
				} else {
					m.PC = termPC + isa.InstBytes
					if b.fall == nil {
						b.fall = e.lookupBuild(m.PC)
					}
					next = b.fall
				}
				if batch != nil {
					batch.Ctrl = CtrlBranch
					batch.Taken = taken
				}
				ic++
			case isa.J, isa.Jal:
				bc++
				tc++
				if t.op == isa.Jal {
					regs[isa.RA] = termPC + isa.InstBytes
				}
				m.PC = b.target
				if b.taken == nil {
					b.taken = e.lookupBuild(b.target)
				}
				next = b.taken
				if batch != nil {
					batch.Ctrl = CtrlJump
					batch.Taken = true
				}
				ic++
			case isa.Jr, isa.Jalr:
				bc++
				tc++
				// emu.Step writes the link register before reading the
				// jump base, so jalr with rd == rs jumps to the link
				// value.
				if t.op == isa.Jalr && t.rd != 0 {
					regs[t.rd&regMask] = termPC + isa.InstBytes
				}
				tgt := regs[t.rs&regMask]
				m.PC = tgt
				if b.jrBlk != nil && b.jrPC == tgt {
					next = b.jrBlk
				} else {
					next = e.lookupBuild(tgt)
					b.jrPC, b.jrBlk = tgt, next
				}
				if batch != nil {
					batch.Ctrl = CtrlJump
					batch.Taken = true
				}
				ic++
			}
		}

		// Chain to the memoized successor (plain-Run mode only), with
		// the same budget and cancellation checks the Run loop would
		// perform between blocks.
		if !chain || next == nil || m.Halted {
			break
		}
		if limit > 0 && ic >= limit {
			break
		}
		if e.poll.Tripped() {
			break
		}
		b = next
	}

	m.InstCount = ic
	m.LoadCount, m.StoreCount = lc, sc
	m.BranchCount, m.TakenCount = bc, tc
	m.AS.WalkCount += wcd
	e.stats.FastHits += fh
	e.stats.BlockExecs += be
	return next, reterr
}

// effAddr mirrors isa.EffAddr on a pre-decoded uop.
func effAddr(u uop, regs *[isa.NumRegs]uint64) (addr, newBase uint64, updates bool) {
	rs := u.rs & regMask
	switch u.mode {
	case isa.AMImm:
		return regs[rs] + u.imm, 0, false
	case isa.AMReg:
		return regs[rs] + regs[u.rt&regMask], 0, false
	case isa.AMPostInc:
		return regs[rs], regs[rs] + u.imm, true
	case isa.AMPostDec:
		return regs[rs], regs[rs] - u.imm, true
	}
	return regs[rs], 0, false
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
