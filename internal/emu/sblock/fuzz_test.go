package sblock_test

import (
	"testing"

	"hbat/internal/emu"
	"hbat/internal/emu/sblock"
	"hbat/internal/prog"
	"hbat/internal/progen"
)

// FuzzSuperblockExec feeds generated programs through the translated
// engine and the interpreter and requires bit-identical outcomes:
// final registers and PC, retirement counts, page-table contents and
// allocation order, memory frames, walk counts, and error text. The
// generator's flavors steer the search toward the engine's risk areas
// (dense branching for block-boundary bugs, dense memory traffic for
// translation-cache bugs); the flags byte toggles register pressure,
// page size, and a mid-run budget stop so partial-block execution is
// fuzzed too.
func FuzzSuperblockExec(f *testing.F) {
	// seed, length, flavor, flags (1=Budget8, 2=8K pages, 4=partial budget)
	f.Add(uint64(17), uint16(150), progen.FlavorMixed, uint8(0))
	f.Add(uint64(4242), uint16(220), progen.FlavorMem, uint8(0))     // translation-cache pressure
	f.Add(uint64(907), uint16(220), progen.FlavorBranchy, uint8(0))  // block-boundary pressure
	f.Add(uint64(1251), uint16(180), progen.FlavorMixed, uint8(1))   // spill/reload traffic
	f.Add(uint64(77), uint16(160), progen.FlavorMem, uint8(2))       // 8K pages: frame-cache geometry
	f.Add(uint64(3301), uint16(200), progen.FlavorBranchy, uint8(4)) // budget stops mid-block
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, flavor, flags uint8) {
		nInsts := 20 + int(n)%400
		budget := prog.Budget32
		if flags&1 != 0 {
			budget = prog.Budget8
		}
		pageSize := uint64(4096)
		if flags&2 != 0 {
			pageSize = 8192
		}
		p, err := progen.Generate(seed, nInsts, budget, flavor%progen.NumFlavors)
		if err != nil {
			t.Fatalf("gen: %v", err)
		}
		ref, err := emu.New(p, pageSize)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := emu.New(p, pageSize)
		if err != nil {
			t.Fatal(err)
		}
		eng := sblock.New(tr)
		var maxInsts uint64
		if flags&4 != 0 {
			maxInsts = uint64(seed%997) + 1
		}
		rerr := ref.Run(maxInsts)
		gerr := eng.Run(maxInsts)
		if errString(rerr) != errString(gerr) {
			t.Fatalf("error mismatch: interpreted %q, translated %q", errString(rerr), errString(gerr))
		}
		compareState(t, ref, tr)
	})
}
