//go:build !race

package sblock_test

import (
	"testing"

	"hbat/internal/emu"
	"hbat/internal/emu/sblock"
	"hbat/internal/prog"
)

// steadyLoopProgram builds an endless loop with live memory traffic:
// every iteration loads and stores through a small buffer and takes a
// backward branch, so repeated RunBlock calls exercise the block
// dispatcher, the software translation cache, and the batch ref vector
// — the whole fast path.
func steadyLoopProgram(t testing.TB) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("steady")
	buf := b.Alloc("buf", 4096, 8)
	base := b.IVar("base")
	v := b.IVar("v")
	i := b.IVar("i")
	b.Li(base, int64(buf))
	b.Li(v, 1)
	b.Li(i, 0)
	b.Label("loop")
	b.Sd(v, base, 0)
	b.Ld(v, base, 8)
	b.Addi(v, v, 3)
	b.Sd(v, base, 8)
	b.Addi(i, i, 1)
	b.Bgtz(i, "loop")
	p, err := b.Finalize(prog.Budget32)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return p
}

// TestRunBlockSteadyStateAllocs pins the fast-forward cost model: once
// the block cache and translation cache are warm, dispatching blocks
// through RunBlock allocates nothing — the batched warm path's
// per-instruction cost is pure compute. (Excluded under -race: the
// race runtime adds its own allocations to instrumented code.)
func TestRunBlockSteadyStateAllocs(t *testing.T) {
	m, err := emu.New(steadyLoopProgram(t), 4096)
	if err != nil {
		t.Fatal(err)
	}
	e := sblock.New(m)
	var batch sblock.Batch
	// Warm-up: translate the loop's blocks, fill the translation
	// cache, and grow batch.Refs to its steady capacity.
	for i := 0; i < 64; i++ {
		if err := e.RunBlock(0, &batch); err != nil {
			t.Fatalf("warm-up RunBlock: %v", err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := e.RunBlock(0, &batch); err != nil {
			t.Fatalf("RunBlock: %v", err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state RunBlock allocates %.2f times per dispatch, want 0", avg)
	}
}

// TestEngineRunSteadyStateAllocs is the same guard for the plain Run
// loop (driven in budget slices, as the checkpoint-less caller would).
func TestEngineRunSteadyStateAllocs(t *testing.T) {
	m, err := emu.New(steadyLoopProgram(t), 4096)
	if err != nil {
		t.Fatal(err)
	}
	e := sblock.New(m)
	if rerr := e.Run(10_000); rerr == nil {
		t.Fatal("expected budget stop")
	}
	next := m.InstCount
	avg := testing.AllocsPerRun(200, func() {
		next += 500
		if rerr := e.Run(next); rerr == nil {
			t.Fatal("expected budget stop")
		}
	})
	if avg == 0 {
		return
	}
	// Run's budget stop returns a formatted error; tolerate only that
	// one fmt.Errorf (boxed operands + message + wrapper), nothing
	// from the dispatch path itself.
	if avg > 5 {
		t.Errorf("steady-state Run allocates %.2f times per slice, want <= 5 (the budget error)", avg)
	}
}
