package sblock

import (
	"context"
	"testing"
	"time"

	"hbat/internal/cancelpoll"
	"hbat/internal/emu"
	"hbat/internal/isa"
	"hbat/internal/prog"
	"hbat/internal/progen"
	"hbat/internal/vm"
)

func isCtrl(op isa.Op) bool {
	switch op {
	case isa.Beq, isa.Bne, isa.Blez, isa.Bgtz, isa.Bltz, isa.Bgez,
		isa.J, isa.Jal, isa.Jr, isa.Jalr, isa.Halt:
		return true
	}
	return false
}

// TestBlockInvariants runs branchy generated programs to steady state
// and then audits every cached superblock against the structural
// invariants the batched checkpoint consumer depends on:
//
//   - no block interior is a static branch target (blocks end AT
//     targets, so warm-up sees the same block boundaries the
//     interpreter's control flow would);
//   - no block spans a page boundary (one pre-walk covers the whole
//     fetch stream of a batch, and text pages demand-allocate in the
//     interpreter's order);
//   - block bodies contain no control flow — only the terminator may
//     transfer;
//   - block length is bounded by the page's instruction capacity and
//     stays under the cancellation-poll interval, so per-block polling
//     is at least as responsive as the interpreted loops'
//     cancelpoll.Every granularity.
func TestBlockInvariants(t *testing.T) {
	for _, pageSize := range []uint64{4096, 8192} {
		for seed := uint64(0); seed < 6; seed++ {
			p, err := progen.Generate(seed*31+7, 250, prog.Budget32, progen.FlavorBranchy)
			if err != nil {
				t.Fatalf("gen: %v", err)
			}
			m, err := emu.New(p, pageSize)
			if err != nil {
				t.Fatal(err)
			}
			e := New(m)
			if err := e.Run(0); err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(e.blocks) == 0 {
				t.Fatal("no blocks cached")
			}
			maxInsts := pageSize / isa.InstBytes
			for pc0, b := range e.blocks {
				if pc0 != b.pc0 {
					t.Fatalf("block keyed at %#x has pc0 %#x", pc0, b.pc0)
				}
				if b.nInsts == 0 {
					t.Fatalf("block %#x is empty", pc0)
				}
				if b.nInsts > maxInsts {
					t.Errorf("block %#x: %d insts exceeds page capacity %d", pc0, b.nInsts, maxInsts)
				}
				if b.nInsts >= cancelpoll.Every {
					t.Errorf("block %#x: %d insts reaches the %d-inst poll interval", pc0, b.nInsts, cancelpoll.Every)
				}
				if (b.end-1)>>e.pageBits != pc0>>e.pageBits {
					t.Errorf("block %#x..%#x spans a %d-byte page boundary", pc0, b.end, pageSize)
				}
				for k := uint64(1); k < b.nInsts; k++ {
					if _, hit := e.targets[pc0+isa.InstBytes*k]; hit {
						t.Errorf("block %#x: interior pc %#x is a static branch target", pc0, pc0+isa.InstBytes*k)
					}
				}
				for i := range b.body {
					if isCtrl(b.body[i].op) {
						t.Errorf("block %#x: body[%d] is control flow (%v)", pc0, i, b.body[i].op)
					}
				}
			}
		}
	}
}

// writableTextProgram hand-builds a program whose text region is
// mapped read-write-execute so a store into the code segment is legal
// and must trigger block invalidation rather than a protection fault.
// r8 holds CodeBase; the Sw at index 1 overwrites the (already
// decoded, hence immutable) halt slot's bytes in simulated memory.
func writableTextProgram() *prog.Program {
	const r8, r9 = isa.Reg(8), isa.Reg(9)
	code := []isa.Inst{
		{Op: isa.Addi, Rd: r9, Rs: isa.Zero, Imm: 1},
		{Op: isa.Sw, Mode: isa.AMImm, Rd: r9, Rs: r8, Imm: 24},
		{Op: isa.Addi, Rd: r9, Rs: r9, Imm: 2},
		{Op: isa.Addi, Rd: r9, Rs: r9, Imm: 4},
		{Op: isa.Addi, Rd: r9, Rs: r9, Imm: 8},
		{Op: isa.Addi, Rd: r9, Rs: r9, Imm: 16},
		{Op: isa.Halt},
	}
	return &prog.Program{
		Name:  "writable-text",
		Code:  code,
		Entry: prog.CodeBase,
		Regions: []vm.Region{
			{Name: "text", Base: prog.CodeBase, Size: prog.CodeSize, Perm: vm.PermRead | vm.PermWrite | vm.PermExec},
			{Name: "data", Base: prog.DataBase, Size: prog.DataSize, Perm: vm.PermRW},
		},
		InitRegs: map[isa.Reg]uint64{8: prog.CodeBase},
	}
}

// TestStoreToCodeInvalidates pins the self-modifying-store contract: a
// store that lands in the text segment discards every cached block on
// the written page, the next instruction is delegated to the
// interpreter, and execution then re-translates and converges with a
// pure emu.Machine run of the same program.
func TestStoreToCodeInvalidates(t *testing.T) {
	p := writableTextProgram()
	ref, err := emu.New(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(0); err != nil {
		t.Fatalf("interpreted: %v", err)
	}
	m, err := emu.New(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	e := New(m)
	if err := e.Run(0); err != nil {
		t.Fatalf("translated: %v", err)
	}
	st := e.Stats()
	if st.Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", st.Invalidations)
	}
	if st.InterpSteps != 1 {
		t.Errorf("InterpSteps = %d, want 1 (one instruction delegated after invalidation)", st.InterpSteps)
	}
	if st.BlocksBuilt < 2 {
		t.Errorf("BlocksBuilt = %d, want >= 2 (re-translation after the flush)", st.BlocksBuilt)
	}
	if m.Regs != ref.Regs || m.PC != ref.PC || m.InstCount != ref.InstCount {
		t.Errorf("state diverged after invalidation: pc %#x/%#x inst %d/%d",
			m.PC, ref.PC, m.InstCount, ref.InstCount)
	}
	// The written word must be visible in simulated memory even though
	// the decoded instruction stream is immutable.
	if got := m.Mem.Read32(mustTranslate(t, m, prog.CodeBase+24)); got != 1 {
		t.Errorf("stored word = %d, want 1", got)
	}
}

func mustTranslate(t *testing.T, m *emu.Machine, vaddr uint64) uint64 {
	t.Helper()
	pa, err := m.AS.Translate(vaddr, vm.PermRead)
	if err != nil {
		t.Fatalf("translate %#x: %v", vaddr, err)
	}
	return pa
}

// TestInvalidationDropsPageBlocks checks the cache-hygiene half of
// invalidation directly: after the store the written page's block list
// is empty and no surviving block holds a memoized link to a dead one.
func TestInvalidationDropsPageBlocks(t *testing.T) {
	p := writableTextProgram()
	m, err := emu.New(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	e := New(m)
	// Execute just past the invalidating store (instructions 1..2).
	if err := e.Run(2); err == nil {
		t.Fatal("expected budget exhaustion")
	}
	page := uint64(prog.CodeBase+24) >> e.pageBits
	if n := len(e.byPage[page]); n != 0 {
		t.Errorf("written page still holds %d cached blocks", n)
	}
	if e.pendingInterp != 1 {
		t.Errorf("pendingInterp = %d, want 1", e.pendingInterp)
	}
	for pc0, b := range e.blocks {
		if b.dead {
			t.Errorf("dead block %#x still reachable from the cache", pc0)
		}
		if b.fall != nil && b.fall.dead {
			t.Errorf("block %#x keeps a dead fallthrough link", pc0)
		}
		if b.taken != nil && b.taken.dead {
			t.Errorf("block %#x keeps a dead taken link", pc0)
		}
		if b.jrBlk != nil && b.jrBlk.dead {
			t.Errorf("block %#x keeps a dead jr link", pc0)
		}
	}
}

// spinProgram builds an endless branch loop for cancellation tests.
func spinProgram(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("spin")
	r := b.IVar("r")
	b.Li(r, 1)
	b.Label("loop")
	b.Addi(r, r, 1)
	b.Bgtz(r, "loop")
	p, err := b.Finalize(prog.Budget32)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return p
}

// TestCancelObservedAtBlockBoundary pins cancellation latency: an
// already-cancelled context stops Run before any instruction executes,
// and RunBlock reports the cancellation with an empty batch.
func TestCancelObservedAtBlockBoundary(t *testing.T) {
	m, err := emu.New(spinProgram(t), 4096)
	if err != nil {
		t.Fatal(err)
	}
	e := New(m)
	ctx, cancel := context.WithCancel(context.Background())
	e.SetCancel(ctx)
	cancel()
	if err := e.Run(0); err != context.Canceled {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if m.InstCount != 0 {
		t.Errorf("InstCount = %d after pre-cancelled Run, want 0", m.InstCount)
	}
	var batch Batch
	if err := e.RunBlock(0, &batch); err != context.Canceled {
		t.Fatalf("RunBlock = %v, want context.Canceled", err)
	}
	if batch.Count != 0 || len(batch.Refs) != 0 {
		t.Errorf("cancelled RunBlock produced work: count %d, %d refs", batch.Count, len(batch.Refs))
	}
}

// TestCancelStopsSpinLoop proves a running translated loop observes a
// concurrent cancellation: the poll happens at every block entry, so
// Run returns promptly instead of spinning forever.
func TestCancelStopsSpinLoop(t *testing.T) {
	m, err := emu.New(spinProgram(t), 4096)
	if err != nil {
		t.Fatal(err)
	}
	e := New(m)
	ctx, cancel := context.WithCancel(context.Background())
	e.SetCancel(ctx)
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	if err := e.Run(0); err != context.Canceled {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if m.InstCount == 0 {
		t.Error("loop made no progress before cancellation")
	}
}

// TestFlushRetranslates checks Flush's contract: discarding all cached
// state mid-run is invisible to the architectural outcome.
func TestFlushRetranslates(t *testing.T) {
	p, err := progen.Generate(321, 150, prog.Budget32, progen.FlavorMixed)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	ref, err := emu.New(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(0); err != nil {
		t.Fatalf("interpreted: %v", err)
	}
	m, err := emu.New(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	e := New(m)
	for !m.Halted {
		if err := e.Run(m.InstCount + 50); err != nil && !m.Halted {
			if _, ok := err.(OutsideTextError); ok {
				t.Fatalf("run: %v", err)
			}
		}
		e.Flush()
	}
	if m.Regs != ref.Regs || m.PC != ref.PC || m.InstCount != ref.InstCount ||
		m.AS.WalkCount != ref.AS.WalkCount {
		t.Errorf("flush changed the outcome: inst %d/%d walks %d/%d",
			m.InstCount, ref.InstCount, m.AS.WalkCount, ref.AS.WalkCount)
	}
}

// TestRunBlockHalted pins RunBlock's terminal contract.
func TestRunBlockHalted(t *testing.T) {
	b := prog.NewBuilder("halt")
	b.Halt()
	p, err := b.Finalize(prog.Budget32)
	if err != nil {
		t.Fatal(err)
	}
	m, err := emu.New(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	e := New(m)
	var batch Batch
	if err := e.RunBlock(0, &batch); err != nil {
		t.Fatalf("first RunBlock: %v", err)
	}
	if !m.Halted || batch.Count != 1 {
		t.Fatalf("halt block: halted=%v count=%d", m.Halted, batch.Count)
	}
	if err := e.RunBlock(0, &batch); err != emu.ErrHalted {
		t.Fatalf("RunBlock on halted machine = %v, want emu.ErrHalted", err)
	}
	if err := e.RunBlock(0, &batch); err != emu.ErrHalted {
		t.Fatalf("repeat RunBlock = %v, want emu.ErrHalted", err)
	}
}
