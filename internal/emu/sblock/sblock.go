// Package sblock is the superblock-translated execution engine for the
// functional phase. It pre-decodes the program into cached superblocks
// — straight-line runs that end at a control-flow instruction, a Halt,
// a static branch target, or a page boundary — with operand immediates
// resolved at translation time, and executes whole blocks through one
// dispatch loop instead of re-decoding every instruction. A direct-
// mapped software translation cache short-circuits the page-table walk
// and the physical frame-map lookup on the memory fast path, and block
// successors (fallthrough, taken target, last indirect target) are
// memoized so steady-state dispatch touches no maps.
//
// The engine operates directly on an emu.Machine's architectural state
// and is observationally identical to the interpreter: registers, PC,
// retirement counts, page-table contents and status bits, physical
// frame-allocation order, memory contents, fault behaviour, and
// AddressSpace.WalkCount all match emu.Machine.Run bit for bit (the
// differential battery in this package and internal/ckpt enforces
// this). The only permitted difference is wall time.
//
// The design follows the pre-decoded translation approach of "Fast TLB
// Simulation for RISC-V Systems" (arXiv:1905.06825): fold translation
// into fast-path lookups and keep exactness by construction, so the
// checkpoint builder can fast-forward billions of instructions without
// per-instruction decode or map traffic.
package sblock

import (
	"context"
	"encoding/binary"
	"fmt"

	"hbat/internal/cancelpoll"
	"hbat/internal/emu"
	"hbat/internal/isa"
	"hbat/internal/mem"
	"hbat/internal/vm"
)

// OutsideTextError reports a PC outside the text segment. Its message
// is identical to the interpreter's, so plain-mode callers see the
// same error text; the checkpoint builder unwraps it to reproduce its
// own wrapper verbatim.
type OutsideTextError uint64

func (e OutsideTextError) Error() string {
	return fmt.Sprintf("emu: PC 0x%x outside text segment", uint64(e))
}

// uop is one pre-decoded instruction: operands extracted, immediates
// sign- or zero-extended per the op's semantics, shift amounts
// pre-masked, and memory width resolved — everything emu.Step derives
// per execution is derived once here.
type uop struct {
	op         isa.Op
	mode       isa.AMode
	rd, rs, rt isa.Reg
	width      uint8
	imm        uint64
}

func translate(in *isa.Inst) uop {
	u := uop{op: in.Op, mode: in.Mode, rd: in.Rd, rs: in.Rs, rt: in.Rt}
	switch in.Op {
	case isa.Addi, isa.Slti, isa.Sltiu:
		u.imm = uint64(int64(in.Imm))
	case isa.Andi, isa.Ori, isa.Xori:
		u.imm = uint64(uint32(in.Imm))
	case isa.Sll, isa.Srl, isa.Sra:
		u.imm = uint64(uint32(in.Imm) & 63)
	case isa.Lui:
		u.imm = uint64(int64(in.Imm)) << 16
	default:
		if in.IsMem() {
			u.imm = uint64(int64(in.Imm))
			u.width = uint8(in.MemBytes())
		}
	}
	return u
}

// block is one cached superblock: a straight-line run of body uops
// (never control flow) optionally closed by a terminator (branch,
// jump, or halt). A block never spans a page boundary — that keeps
// text-page demand allocation in program order when the checkpoint
// builder pre-walks the page — and never contains a static branch
// target past its first instruction, so blocks partition rather than
// overlap the reachable code.
type block struct {
	pc0     uint64
	body    []uop
	term    uop
	target  uint64 // static branch/jump target of term
	hasTerm bool
	nInsts  uint64
	end     uint64 // pc0 + 4*nInsts: the fallthrough PC

	// Memoized successors; cleared when the pointee is invalidated.
	fall, taken *block
	jrPC        uint64
	jrBlk       *block
	dead        bool
}

// Stats counts engine activity; tests use it to assert the fast paths
// actually engage and the fallbacks actually fire.
type Stats struct {
	BlocksBuilt   uint64 // superblocks translated
	BlockExecs    uint64 // block dispatches (full or partial)
	InterpSteps   uint64 // instructions delegated to emu.Step
	Invalidations uint64 // store-to-code events that flushed blocks
	FastHits      uint64 // memory accesses served by the software TLB
	SlowFills     uint64 // memory accesses that took the page-table walk
}

const (
	tlbBits = 8
	tlbSize = 1 << tlbBits
	tlbMask = tlbSize - 1
)

// tlbEnt is one software-translation-cache entry. readOK/writeOK are
// proof bits: they are set only after a successful slow-path
// AddressSpace.Translate with that permission, which also set the
// page's sticky Ref/Dirty status — so a fast-path access needs no
// status update to stay exact. fr caches the backing frame when the
// whole page fits in one frame (page size <= mem.FrameSize; both are
// powers of two, so the aligned page never straddles a frame).
type tlbEnt struct {
	vpnP1   uint64 // vpn+1; 0 means invalid
	base    uint64 // physical page base (PFN << pageBits)
	fr      *[mem.FrameSize]byte
	readOK  bool
	writeOK bool
}

// Engine executes an emu.Machine's program via cached superblocks. It
// must be attached after the machine is fully loaded (and after any
// ClearStatus); external mutation of the machine's AddressSpace or
// Memory backing store afterwards requires a Flush.
type Engine struct {
	m         *emu.Machine
	pageBits  uint
	pageMask  uint64
	codeEnd   uint64
	frameable bool

	targets map[uint64]struct{} // static branch/jump targets
	blocks  map[uint64]*block
	byPage  map[uint64][]*block
	hint    *block // predicted next block (chained from the last exec)

	poll          cancelpoll.Poller
	pendingInterp int

	// One-entry fetch-walk cache for RunBlock's per-block text-page
	// pre-walk: a successful Walk of a mapped page has no effect beyond
	// incrementing WalkCount (the PFN is immutable and nothing unmaps
	// during a run), so repeat walks of the same page are accounted
	// without the page-table lookup.
	textVPNP1 uint64 // cached text VPN + 1 (0 = empty)
	textBase  uint64 // PFN << pageBits for the cached page

	tlb   [tlbSize]tlbEnt
	stats Stats
}

// New attaches a translated engine to m. The machine's program is
// scanned once for static control-flow targets; blocks themselves are
// translated lazily on first execution.
func New(m *emu.Machine) *Engine {
	e := &Engine{
		m:         m,
		pageBits:  m.AS.PageBits(),
		pageMask:  m.AS.PageSize() - 1,
		codeEnd:   m.Prog.CodeEnd(),
		frameable: m.AS.PageSize() <= mem.FrameSize,
		targets:   make(map[uint64]struct{}),
		blocks:    make(map[uint64]*block),
		byPage:    make(map[uint64][]*block),
	}
	for i := range m.Prog.Code {
		in := &m.Prog.Code[i]
		switch in.Op {
		case isa.Beq, isa.Bne, isa.Blez, isa.Bgtz, isa.Bltz, isa.Bgez, isa.J, isa.Jal:
			e.targets[in.Target] = struct{}{}
		}
	}
	return e
}

// SetCancel arms cooperative cancellation: the engine polls ctx at
// every block boundary. Blocks are bounded by one page (at most
// page-size/4 instructions, well under cancelpoll.Every), so
// cancellation latency is at most one block — never worse than the
// interpreted loops' cancelpoll granularity.
func (e *Engine) SetCancel(ctx context.Context) { e.poll = cancelpoll.New(ctx) }

// Stats returns a copy of the engine's activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// Flush discards every cached block and translation entry. Required
// after external mutation of the machine's page table or memory
// backing store (Unmap, ImportPages, ImportFrames).
func (e *Engine) Flush() {
	e.blocks = make(map[uint64]*block)
	e.byPage = make(map[uint64][]*block)
	e.hint = nil
	e.tlb = [tlbSize]tlbEnt{}
}

// lookupBuild returns the cached block starting at pc, translating it
// on first use. It returns nil when pc is outside the text segment.
func (e *Engine) lookupBuild(pc uint64) *block {
	if b, ok := e.blocks[pc]; ok {
		return b
	}
	if e.m.Prog.InstAt(pc) == nil {
		return nil
	}
	return e.build(pc)
}

func (e *Engine) build(pc0 uint64) *block {
	b := &block{pc0: pc0}
	page := pc0 >> e.pageBits
	pc := pc0
	for {
		in := e.m.Prog.InstAt(pc)
		if in == nil {
			break
		}
		if pc != pc0 {
			if _, tgt := e.targets[pc]; tgt {
				break
			}
		}
		switch in.Class() {
		case isa.ClassBranch, isa.ClassJump, isa.ClassHalt:
			b.term = translate(in)
			b.target = in.Target
			b.hasTerm = true
			pc += isa.InstBytes
		default:
			u := translate(in)
			// A non-memory body op's only architectural effect is its
			// register write, so a zero-register destination makes it a
			// no-op — resolve that here instead of branching on rd in
			// the dispatch loop. (Memory ops keep their access: counts,
			// demand allocation, and faults happen regardless of rd.)
			if u.rd == 0 && !in.IsMem() {
				u.op = isa.Nop
			}
			b.body = append(b.body, u)
			pc += isa.InstBytes
			if pc>>e.pageBits == page {
				continue
			}
		}
		break
	}
	b.nInsts = uint64(len(b.body))
	if b.hasTerm {
		b.nInsts++
	}
	b.end = pc0 + isa.InstBytes*b.nInsts
	e.blocks[pc0] = b
	e.byPage[page] = append(e.byPage[page], b)
	e.stats.BlocksBuilt++
	return b
}

// invalidate handles a store whose written range [vaddr, vaddr+width)
// overlaps the text segment: every cached block on the written page(s)
// is discarded, memoized links into them are cleared, and the engine
// falls back to the interpreter for the next instruction before
// re-translating. Decoded code is immutable in this ISA (fetch reads
// prog.Code, not simulated memory), so this is hygiene that keeps the
// block cache trivially coherent rather than a correctness
// requirement — but it is the contract a translated engine must have,
// and the property tests pin it.
func (e *Engine) invalidate(vaddr uint64, width uint8) {
	first := vaddr >> e.pageBits
	last := (vaddr + uint64(width) - 1) >> e.pageBits
	for page := first; page <= last; page++ {
		for _, b := range e.byPage[page] {
			b.dead = true
			delete(e.blocks, b.pc0)
		}
		delete(e.byPage, page)
	}
	for _, b := range e.blocks {
		if b.fall != nil && b.fall.dead {
			b.fall = nil
		}
		if b.taken != nil && b.taken.dead {
			b.taken = nil
		}
		if b.jrBlk != nil && b.jrBlk.dead {
			b.jrBlk = nil
		}
	}
	if e.hint != nil && e.hint.dead {
		e.hint = nil
	}
	e.stats.Invalidations++
	e.pendingInterp = 1
}

// ---- software translation cache ----

func (e *Engine) memRead(pa uint64, width uint8) uint64 {
	switch width {
	case 1:
		return uint64(e.m.Mem.ByteAt(pa))
	case 2:
		return uint64(e.m.Mem.Read16(pa))
	case 4:
		return uint64(e.m.Mem.Read32(pa))
	default:
		return e.m.Mem.Read64(pa)
	}
}

func (e *Engine) memWrite(pa uint64, width uint8, v uint64) {
	switch width {
	case 1:
		e.m.Mem.SetByte(pa, byte(v))
	case 2:
		e.m.Mem.Write16(pa, uint16(v))
	case 4:
		e.m.Mem.Write32(pa, uint32(v))
	default:
		e.m.Mem.Write64(pa, v)
	}
}

// fill is the slow path: one authoritative Translate (which walks,
// demand-allocates, counts, and sets sticky Ref/Dirty exactly as the
// interpreter's access would) followed by installing the proof bits in
// the translation cache.
func (e *Engine) fill(vaddr uint64, write bool) (uint64, error) {
	perm := vm.PermRead
	if write {
		perm = vm.PermWrite
	}
	pa, err := e.m.AS.Translate(vaddr, perm)
	if err != nil {
		return 0, err
	}
	vpn := vaddr >> e.pageBits
	en := &e.tlb[vpn&tlbMask]
	if en.vpnP1 != vpn+1 {
		*en = tlbEnt{vpnP1: vpn + 1, base: pa &^ e.pageMask}
		if e.frameable {
			en.fr = e.m.Mem.Frame(en.base)
		}
	}
	if write {
		en.writeOK = true
	} else {
		en.readOK = true
	}
	e.stats.SlowFills++
	return pa, nil
}

// load performs one data load. The fast path needs the proof bit and
// mirrors the interpreter's observable effects: WalkCount advances by
// exactly one per access (the interpreter's Translate always walks),
// and the access reads physically contiguous bytes from the translated
// address of the first byte, page-crossing quirk included.
func (e *Engine) load(vaddr uint64, width uint8) (uint64, uint64, error) {
	vpn := vaddr >> e.pageBits
	en := &e.tlb[vpn&tlbMask]
	if en.vpnP1 == vpn+1 && en.readOK {
		e.m.AS.WalkCount++
		e.stats.FastHits++
		pa := en.base | (vaddr & e.pageMask)
		if f := en.fr; f != nil {
			off := pa & (mem.FrameSize - 1)
			switch width {
			case 1:
				return uint64(f[off]), pa, nil
			case 2:
				if off <= mem.FrameSize-2 {
					return uint64(binary.LittleEndian.Uint16(f[off:])), pa, nil
				}
			case 4:
				if off <= mem.FrameSize-4 {
					return uint64(binary.LittleEndian.Uint32(f[off:])), pa, nil
				}
			default:
				if off <= mem.FrameSize-8 {
					return binary.LittleEndian.Uint64(f[off:]), pa, nil
				}
			}
		}
		return e.memRead(pa, width), pa, nil
	}
	pa, err := e.fill(vaddr, false)
	if err != nil {
		return 0, 0, err
	}
	return e.memRead(pa, width), pa, nil
}

// store performs one data store, with the same fast-path contract as
// load.
func (e *Engine) store(vaddr uint64, width uint8, v uint64) (uint64, error) {
	vpn := vaddr >> e.pageBits
	en := &e.tlb[vpn&tlbMask]
	if en.vpnP1 == vpn+1 && en.writeOK {
		e.m.AS.WalkCount++
		e.stats.FastHits++
		pa := en.base | (vaddr & e.pageMask)
		if f := en.fr; f != nil {
			off := pa & (mem.FrameSize - 1)
			switch width {
			case 1:
				f[off] = byte(v)
				return pa, nil
			case 2:
				if off <= mem.FrameSize-2 {
					binary.LittleEndian.PutUint16(f[off:], uint16(v))
					return pa, nil
				}
			case 4:
				if off <= mem.FrameSize-4 {
					binary.LittleEndian.PutUint32(f[off:], uint32(v))
					return pa, nil
				}
			default:
				if off <= mem.FrameSize-8 {
					binary.LittleEndian.PutUint64(f[off:], v)
					return pa, nil
				}
			}
		}
		e.memWrite(pa, width, v)
		return pa, nil
	}
	pa, err := e.fill(vaddr, true)
	if err != nil {
		return 0, err
	}
	e.memWrite(pa, width, v)
	return pa, nil
}

// faultErr reproduces emu.Step's fault behaviour at instruction pc:
// the PC stays at the faulting instruction, previously executed block
// instructions remain retired, and the error text matches the
// interpreter's byte for byte.
func (e *Engine) faultErr(pc uint64, err error) error {
	e.m.PC = pc
	in := e.m.Prog.InstAt(pc)
	return fmt.Errorf("emu: %s at pc 0x%x: %w", in, pc, err)
}
