package sblock_test

import (
	"fmt"
	"reflect"
	"testing"

	"hbat/internal/emu"
	"hbat/internal/emu/sblock"
	"hbat/internal/prog"
	"hbat/internal/progen"
)

// newPair builds two identical machines from one program and attaches
// the translated engine to the second.
func newPair(t *testing.T, p *prog.Program, pageSize uint64) (*emu.Machine, *emu.Machine, *sblock.Engine) {
	t.Helper()
	ref, err := emu.New(p, pageSize)
	if err != nil {
		t.Fatalf("emu.New ref: %v", err)
	}
	tr, err := emu.New(p, pageSize)
	if err != nil {
		t.Fatalf("emu.New translated: %v", err)
	}
	return ref, tr, sblock.New(tr)
}

// compareState asserts every architecturally observable piece of state
// matches between the interpreted reference and the translated machine:
// registers, PC, halt flag, retirement counts, page-table contents
// (including Ref/Dirty status and frame-allocation order), the frame
// allocator position, walk/fault counters, and memory contents.
func compareState(t *testing.T, ref, got *emu.Machine) {
	t.Helper()
	if ref.Regs != got.Regs {
		for i := range ref.Regs {
			if ref.Regs[i] != got.Regs[i] {
				t.Errorf("reg %d: interpreted %#x, translated %#x", i, ref.Regs[i], got.Regs[i])
			}
		}
	}
	if ref.PC != got.PC {
		t.Errorf("PC: interpreted %#x, translated %#x", ref.PC, got.PC)
	}
	if ref.Halted != got.Halted {
		t.Errorf("Halted: interpreted %v, translated %v", ref.Halted, got.Halted)
	}
	if ref.InstCount != got.InstCount || ref.LoadCount != got.LoadCount ||
		ref.StoreCount != got.StoreCount || ref.BranchCount != got.BranchCount ||
		ref.TakenCount != got.TakenCount {
		t.Errorf("counts: interpreted inst=%d ld=%d st=%d br=%d tk=%d, translated inst=%d ld=%d st=%d br=%d tk=%d",
			ref.InstCount, ref.LoadCount, ref.StoreCount, ref.BranchCount, ref.TakenCount,
			got.InstCount, got.LoadCount, got.StoreCount, got.BranchCount, got.TakenCount)
	}
	if ref.AS.WalkCount != got.AS.WalkCount {
		t.Errorf("WalkCount: interpreted %d, translated %d", ref.AS.WalkCount, got.AS.WalkCount)
	}
	if ref.AS.Faults != got.AS.Faults {
		t.Errorf("Faults: interpreted %d, translated %d", ref.AS.Faults, got.AS.Faults)
	}
	if ref.AS.NextFrame() != got.AS.NextFrame() {
		t.Errorf("NextFrame: interpreted %d, translated %d", ref.AS.NextFrame(), got.AS.NextFrame())
	}
	if rp, gp := ref.AS.ExportPages(), got.AS.ExportPages(); !reflect.DeepEqual(rp, gp) {
		t.Errorf("page tables differ: interpreted %d pages, translated %d pages\n%v\nvs\n%v",
			len(rp), len(gp), rp, gp)
	}
	rf, gf := ref.Mem.ExportFrames(), got.Mem.ExportFrames()
	if len(rf) != len(gf) {
		t.Fatalf("frames: interpreted %d, translated %d", len(rf), len(gf))
	}
	for i := range rf {
		if rf[i].Index != gf[i].Index {
			t.Fatalf("frame %d index: interpreted %d, translated %d", i, rf[i].Index, gf[i].Index)
		}
		if rf[i].Data != gf[i].Data {
			t.Errorf("frame %d (index %d) contents differ", i, rf[i].Index)
		}
	}
}

// errString renders an error for exact-match comparison (empty for nil).
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestDifferentialGenerated locksteps the translated engine against the
// interpreter over generated programs spanning every flavor, both
// register budgets, both page sizes, and budgets that cut execution
// mid-block. Errors (including none) must match byte for byte, and the
// whole machine state must be identical afterwards.
func TestDifferentialGenerated(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	budgets := []uint64{0, 1, 7, 97, 1000}
	for s := 0; s < seeds; s++ {
		s := s
		t.Run(fmt.Sprintf("seed%d", s), func(t *testing.T) {
			t.Parallel()
			rb := prog.Budget32
			if s%2 == 1 {
				rb = prog.Budget8
			}
			pageSize := uint64(4096)
			if s%3 == 2 {
				pageSize = 8192
			}
			p, err := progen.Generate(uint64(s)*977+5, 120+s*13, rb, progen.Flavor(s)%progen.NumFlavors)
			if err != nil {
				t.Fatalf("gen: %v", err)
			}
			for _, budget := range budgets {
				ref, tr, eng := newPair(t, p, pageSize)
				rerr := ref.Run(budget)
				gerr := eng.Run(budget)
				if errString(rerr) != errString(gerr) {
					t.Fatalf("budget %d: interpreted err %q, translated err %q", budget, errString(rerr), errString(gerr))
				}
				compareState(t, ref, tr)
				if t.Failed() {
					t.Fatalf("state diverged at budget %d", budget)
				}
			}
		})
	}
}

// TestDifferentialHookOrder checks hook mode: OnMemRef must fire with
// the same (vaddr, write) sequence, at the same instruction counts, as
// the interpreter — the contract trace-based studies (Figure 6) rely
// on.
func TestDifferentialHookOrder(t *testing.T) {
	type ev struct {
		vaddr uint64
		idx   uint64
		write bool
	}
	p, err := progen.Generate(4242, 200, prog.Budget32, progen.FlavorMem)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	ref, tr, eng := newPair(t, p, 4096)
	var refEv, trEv []ev
	ref.OnMemRef = func(vaddr uint64, write bool) {
		refEv = append(refEv, ev{vaddr, ref.InstCount, write})
	}
	tr.OnMemRef = func(vaddr uint64, write bool) {
		trEv = append(trEv, ev{vaddr, tr.InstCount, write})
	}
	if err := ref.Run(0); err != nil {
		t.Fatalf("interpreted: %v", err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatalf("translated: %v", err)
	}
	if len(refEv) == 0 {
		t.Fatal("no memory references observed")
	}
	if !reflect.DeepEqual(refEv, trEv) {
		n := len(refEv)
		if len(trEv) < n {
			n = len(trEv)
		}
		for i := 0; i < n; i++ {
			if refEv[i] != trEv[i] {
				t.Fatalf("ref %d: interpreted %+v, translated %+v", i, refEv[i], trEv[i])
			}
		}
		t.Fatalf("ref count: interpreted %d, translated %d", len(refEv), len(trEv))
	}
	compareState(t, ref, tr)
}

// TestDifferentialFault checks that translation faults surface with the
// interpreter's exact error text and leave the machine in the
// interpreter's exact post-fault state (PC at the faulting
// instruction, prior work retired).
func TestDifferentialFault(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *prog.Builder)
	}{
		{"unmapped load", func(b *prog.Builder) {
			r := b.IVar("r")
			b.Li(r, 0x7000_0000)
			b.Ld(r, r, 0)
			b.Halt()
		}},
		{"unmapped store", func(b *prog.Builder) {
			r := b.IVar("r")
			b.Li(r, 0x7000_0000)
			b.Sd(r, r, 8)
			b.Halt()
		}},
		{"store to text", func(b *prog.Builder) {
			r := b.IVar("r")
			b.Li(r, int64(prog.CodeBase))
			b.Sd(r, r, 0)
			b.Halt()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := prog.NewBuilder(tc.name)
			tc.build(b)
			p, err := b.Finalize(prog.Budget32)
			if err != nil {
				t.Fatalf("finalize: %v", err)
			}
			ref, tr, eng := newPair(t, p, 4096)
			rerr := ref.Run(0)
			gerr := eng.Run(0)
			if rerr == nil {
				t.Fatal("expected a fault")
			}
			if errString(rerr) != errString(gerr) {
				t.Fatalf("interpreted err %q, translated err %q", errString(rerr), errString(gerr))
			}
			compareState(t, ref, tr)
		})
	}
}

// TestDifferentialOutsideText checks the lazily-reported bad-PC error:
// jumping out of the text segment fails on the next dispatch with the
// interpreter's message.
func TestDifferentialOutsideText(t *testing.T) {
	b := prog.NewBuilder("outside")
	r := b.IVar("r")
	b.Li(r, int64(prog.DataBase))
	b.Jr(r)
	p, err := b.Finalize(prog.Budget32)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	ref, tr, eng := newPair(t, p, 4096)
	rerr := ref.Run(0)
	gerr := eng.Run(0)
	if rerr == nil {
		t.Fatal("expected an error")
	}
	if errString(rerr) != errString(gerr) {
		t.Fatalf("interpreted err %q, translated err %q", errString(rerr), errString(gerr))
	}
	compareState(t, ref, tr)
}

// TestResumeAfterBudget checks that a budget-stopped translated machine
// resumes mid-block and still converges with the interpreter — the
// checkpoint builder depends on stopping at an exact instruction count.
func TestResumeAfterBudget(t *testing.T) {
	p, err := progen.Generate(99, 150, prog.Budget32, progen.FlavorBranchy)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	ref, tr, eng := newPair(t, p, 4096)
	if err := ref.Run(0); err != nil {
		t.Fatalf("interpreted: %v", err)
	}
	// Drive the translated machine in awkward increments.
	for budget := uint64(13); !tr.Halted; budget += 13 {
		if err := eng.Run(budget); err != nil {
			if tr.Halted {
				break
			}
			if errString(err) == fmt.Sprintf("emu: instruction budget %d exhausted at pc 0x%x", budget, tr.PC) {
				continue
			}
			t.Fatalf("translated: %v", err)
		}
	}
	compareState(t, ref, tr)
}
