package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"hbat/internal/ckpt"
	"hbat/internal/cpu"
	"hbat/internal/prog"
	"hbat/internal/runspan"
	"hbat/internal/workload"
)

// ckptKey identifies one warmed checkpoint. It deliberately excludes
// the design: checkpoints carry a design-independent warm-reference
// list (see internal/ckpt), so the same functional warm-up serves all
// thirteen TLB designs, the in-order variant, and the virtual-cache
// variant of a grid. It also excludes the functional engine
// (RunSpec.FFwdEngine): both engines produce byte-identical
// checkpoints, so a checkpoint built by either — in memory or on disk
// under CkptDir — is valid for both.
type ckptKey struct {
	workload string
	budget   prog.RegBudget
	scale    workload.Scale
	pageSize uint64
	ffwd     uint64
}

// ckptEntry is one cached (or in-flight) checkpoint build; done closes
// when c/err are valid. A cancelled build removes its entry so a later
// caller retries, mirroring memoEntry.
type ckptEntry struct {
	done chan struct{}
	c    *ckpt.Checkpoint
	err  error
}

// file returns the key's on-disk path under dir: a fingerprint of the
// key fields, so concurrent processes sharing a CkptDir agree on names.
func (k ckptKey) file(dir string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", k)))
	return filepath.Join(dir, "hbat-"+hex.EncodeToString(sum[:8])+".ckpt")
}

// checkpoint returns the warmed checkpoint for spec, building it at
// most once per key (singleflight) and persisting it under CkptDir
// when one is configured. sp, when non-nil, is the run's "checkpoint"
// phase span: it gets a source attribute (memory / disk / build) and
// child spans for singleflight waits, disk loads, and builds.
func (e *Engine) checkpoint(ctx context.Context, spec RunSpec, p *prog.Program, cfg cpu.Config, sp *runspan.Span) (*ckpt.Checkpoint, error) {
	tr := e.Spans()
	rt := sp.Trace()
	key := ckptKey{
		workload: spec.Workload,
		budget:   spec.Budget,
		scale:    spec.Scale,
		pageSize: spec.PageSize,
		ffwd:     spec.FastForward,
	}
	for {
		e.mu.Lock()
		ent := e.ckpts[key]
		if ent == nil {
			ent = &ckptEntry{done: make(chan struct{})}
			e.ckpts[key] = ent
			e.mu.Unlock()
			c, fromDisk, err := e.loadOrBuildCheckpoint(ctx, key, p, cfg, sp)
			if err != nil && isCancelErr(err) {
				// Like a cancelled run: drop the entry so a later
				// caller rebuilds, and wake waiters to retry.
				e.mu.Lock()
				delete(e.ckpts, key)
				e.mu.Unlock()
				ent.err = err
				close(ent.done)
				return nil, err
			}
			if fromDisk {
				e.ckptHits.Add(1)
				sp.SetAttr("source", "disk")
			} else {
				e.ckptMisses.Add(1)
				sp.SetAttr("source", "build")
			}
			ent.c, ent.err = c, err
			close(ent.done)
			return c, err
		}
		e.mu.Unlock()
		// A wait on another run's in-flight warm-up is its own span —
		// opened before the select so /debug/spans shows a stuck
		// singleflight producer as a growing open-span age. A ready
		// entry (done already closed) is a plain memory hit, no span.
		var wsp *runspan.Span
		if tr.Enabled() {
			select {
			case <-ent.done:
			default:
				wsp = tr.Start(rt, sp, "singleflight_wait")
			}
		}
		select {
		case <-ctx.Done():
			wsp.End()
			return nil, ctx.Err()
		case <-ent.done:
		}
		wsp.End()
		if isCancelErr(ent.err) {
			continue // the producer was cancelled, not us: retry
		}
		e.ckptHits.Add(1)
		sp.SetAttr("source", "memory")
		return ent.c, ent.err
	}
}

// loadOrBuildCheckpoint resolves one checkpoint: from CkptDir when a
// valid file exists (fromDisk=true), otherwise by running the
// functional warm-up (and persisting the result, best-effort). A
// corrupt, truncated, or mismatched file is rebuilt and overwritten —
// the checksum inside the codec makes the load failure explicit rather
// than silent. sp is the run's "checkpoint" phase span (may be nil).
func (e *Engine) loadOrBuildCheckpoint(ctx context.Context, key ckptKey, p *prog.Program, cfg cpu.Config, sp *runspan.Span) (c *ckpt.Checkpoint, fromDisk bool, err error) {
	tr := e.Spans()
	rt := sp.Trace()
	path := ""
	if e.ckptDir != "" {
		path = key.file(e.ckptDir)
		lsp := tr.Start(rt, sp, "ckpt_load")
		c, lerr := ckpt.LoadFile(path)
		ok := lerr == nil && c.PageSize == key.pageSize && c.FastForward == key.ffwd
		if lsp != nil {
			lsp.SetAttr("path", path).SetAttr("ok", strconv.FormatBool(ok)).End()
		}
		if ok {
			return c, true, nil
		}
	}
	engine := cfg.FFwdEngine
	if engine == "" {
		engine = ckpt.EngineTranslated
	}
	bsp := tr.Start(rt, sp, "ckpt_build")
	if bsp != nil {
		bsp.SetAttr("engine", engine)
	}
	sp.SetAttr("engine", engine)
	c, err = ckpt.Build(ctx, p, ckpt.BuildConfig{
		PageSize:    key.pageSize,
		FastForward: key.ffwd,
		ICache:      cfg.ICache,
		DCache:      cfg.DCache,
		Branch:      cfg.Branch,
		Engine:      cfg.FFwdEngine,
	})
	bsp.End()
	if err != nil {
		return nil, false, err
	}
	if path != "" {
		if mkerr := os.MkdirAll(e.ckptDir, 0o755); mkerr == nil {
			if werr := c.SaveFile(path); werr != nil {
				if lg := e.Logger(); lg != nil {
					lg.Warn("checkpoint persist failed", "path", path, "error", werr.Error())
				}
			}
		}
	}
	return c, false, nil
}
