// Package engine is the sweep engine layer: it executes RunSpecs with
// workload-build and RunSpec-memoization caches, singleflight
// deduplication, fast-forward checkpoint orchestration, a crash-safe
// resume journal, longest-job-first scheduling, and provenance
// manifests. The harness package layers the paper's figures and tables
// on top of it; internal/transport serves it over HTTP (cmd/hbatd).
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hbat/internal/cpu"
	"hbat/internal/prog"
	"hbat/internal/ptrace"
	"hbat/internal/runspan"
	"hbat/internal/stats"
	"hbat/internal/workload"
)

// Engine is the sweep engine: it executes RunSpecs with two layers of
// caching and a cancellable, load-ordered scheduler.
//
//   - A workload build cache (workload.BuildCache) keyed by (workload,
//     register budget, scale): a 13-design grid builds each program
//     once, not thirteen times. Cached programs are immutable and
//     shared between machines.
//   - A RunSpec memoization cache: simulations are deterministic, so a
//     spec that has already run (same workload, design, machine
//     variant, and seed) is served from memory. Regenerating table3 +
//     fig5 + fig7 + fig8 + fig9 from one process therefore simulates
//     each unique spec exactly once (table3's T4 column is a subset of
//     fig5's grid, for example). Concurrent requests for the same spec
//     deduplicate onto one in-flight run.
//   - Cancellation: every entry point takes a context.Context;
//     cancelling it stops dispatching queued specs and interrupts
//     in-flight machines at a cycle-granular check (cpu.SetCancel).
//   - Scheduling: RunAll dispatches grid specs longest-job-first using
//     per-(workload, scale) wall-time estimates learned from completed
//     runs, which cuts the tail latency of a mixed grid, and reports
//     per-run wall time and a remaining-work ETA through Progress.
//
// The zero value is not usable; create one with New. An Engine is
// safe for concurrent use and is meant to be long-lived: one engine per
// process (or per experiment batch) maximizes reuse.
//
// Result-affecting configuration (caches, checkpoint directory, resume
// journal) is immutable once the engine has run: construct with
// New(opts...) or use the Set* methods before the first Run/RunAll/
// PrewarmBuilds call — afterwards they return ErrStarted instead of
// silently racing the scheduler. Observability sinks (logger, span
// tracer, heartbeat) may be attached at any time.
type Engine struct {
	// noBuildCache disables program-build reuse; noMemo disables
	// RunSpec memoization. Both exist for A/B benchmarking the caches
	// (cmd/hbat-bench-sweep); see WithoutBuildCache / WithoutMemo.
	noBuildCache bool
	noMemo       bool

	// ckptDir, when non-empty, persists fast-forward checkpoints to
	// disk (one file per (workload, budget, scale, page size, N),
	// named by the key's fingerprint). A later process with the same
	// directory skips the functional warm-up entirely. Corrupt or
	// mismatched files are rebuilt and overwritten, never trusted.
	ckptDir string

	// obsMu guards the observability sinks below. Unlike the cache and
	// checkpoint configuration, sinks carry no result-affecting state,
	// so they may be attached or replaced at any time — including
	// mid-sweep; every read goes through Logger/Spans/beat.
	obsMu sync.RWMutex

	// logger, when non-nil, receives structured run-scoped events: one
	// debug record when a simulation starts and one info record when it
	// finishes (or is served from cache), carrying run_id, workload,
	// design, spec_hash, seed, wall_ms, and the cache disposition.
	logger *slog.Logger

	// heartbeatFn, when non-nil, is invoked on every dispatch, on every
	// in-flight machine's progress tick (~1M cycles), and on every run
	// completion — the liveness signal the obs watchdog consumes.
	heartbeatFn func()

	// spans, when non-nil, receives one trace per run (and one per
	// RunAll sweep) with a span per phase: program build, checkpoint
	// load/build, fast-forward, simulate, journal append — cache hits
	// and singleflight waits as distinct spans with hit/miss
	// attributes. nil means disabled and costs nothing on the hot path.
	spans *runspan.Tracer

	// started latches on the first Run/RunAll/PrewarmBuilds call and
	// freezes the result-affecting configuration above — caches,
	// checkpoint directory, resume journal (ErrStarted from then on).
	started atomic.Bool

	builds *workload.BuildCache

	mu   sync.Mutex
	memo map[specKey]*memoEntry
	// ckpts deduplicates in-flight checkpoint builds the same way memo
	// deduplicates simulations: one functional warm-up per (workload,
	// budget, scale, page size, N) serves all thirteen designs.
	ckpts map[ckptKey]*ckptEntry
	// journal, when non-nil, is the crash-safe resume log (SetJournal):
	// completed results keyed by spec fingerprint, consulted before
	// executing and appended to after.
	journal *journal
	// ewma holds learned wall-time estimates in seconds, keyed by the
	// spec features that dominate run length.
	ewma map[costKey]float64
	// agg accumulates every executed run's metrics registry; wallReg
	// holds one wall-time histogram per workload (metric name = the
	// workload). Both are only touched under mu, which is what makes a
	// concurrent /metrics scrape race-free while machines run: live
	// machine registries are never read, only finished snapshots merged.
	agg     *stats.Registry
	wallReg *stats.Registry
	// runLog records every request (executed or cache-served) for the
	// provenance manifest.
	runLog []RunRecord
	// sweep is the most recent RunAll's progress, for live ETA export.
	sweep struct {
		done, total int
		elapsed     time.Duration
		eta         time.Duration
	}

	specHits   atomic.Uint64
	specMisses atomic.Uint64
	ckptHits   atomic.Uint64
	ckptMisses atomic.Uint64
	executed   atomic.Uint64
	runSeq     atomic.Uint64

	queued   atomic.Int64
	active   atomic.Int64
	done     atomic.Int64
	draining atomic.Bool
}

// New returns an empty sweep engine configured by opts.
func New(opts ...Option) *Engine {
	e := &Engine{
		builds:  workload.NewBuildCache(),
		memo:    make(map[specKey]*memoEntry),
		ckpts:   make(map[ckptKey]*ckptEntry),
		ewma:    make(map[costKey]float64),
		agg:     stats.NewRegistry(),
		wallReg: stats.NewRegistry(),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// wallBuckets are the per-workload wall-time histogram bounds in
// milliseconds: 1 ms .. ~33 s, exponential.
var wallBuckets = stats.ExpBuckets(1, 2, 16)

// SetAccepting marks the engine as accepting (true) or draining
// (false); /ready reflects it. Binaries flip it off once their context
// is cancelled so load balancers stop routing work during shutdown.
func (e *Engine) SetAccepting(ok bool) { e.draining.Store(!ok) }

// Accepting reports whether the engine is accepting new work.
func (e *Engine) Accepting() bool { return !e.draining.Load() }

// heartbeat signals liveness to the watchdog, if one is attached.
func (e *Engine) heartbeat() {
	if fn := e.beat(); fn != nil {
		fn()
	}
}

// memoEntry is one memoized (or in-flight) simulation. done closes when
// res is valid; a producer that was cancelled removes its entry so a
// later caller retries.
type memoEntry struct {
	done chan struct{}
	res  RunResult
}

// specKey is the memoization key: every RunSpec field that affects the
// simulation's outcome. Observation-only fields (Progress and its
// period) are deliberately absent — a cached result is identical with
// or without a heartbeat attached. FFwdEngine is likewise absent: both
// functional engines produce byte-identical warm-up state, so a result
// computed under either serves the other.
type specKey struct {
	workload     string
	design       string
	budget       prog.RegBudget
	scale        workload.Scale
	pageSize     uint64
	inOrder      bool
	seed         uint64
	maxInsts     uint64
	virtualCache bool
	ctxSwitch    uint64
	lockstep     bool
	fastForward  uint64
}

func (s RunSpec) key() specKey {
	return specKey{
		workload:     s.Workload,
		design:       s.Design,
		budget:       s.Budget,
		scale:        s.Scale,
		pageSize:     s.PageSize,
		inOrder:      s.InOrder,
		seed:         s.Seed,
		maxInsts:     s.MaxInsts,
		virtualCache: s.VirtualCache,
		ctxSwitch:    s.ContextSwitchEvery,
		lockstep:     s.Lockstep,
		fastForward:  s.FastForward,
	}
}

// cacheable reports whether a spec's result can be memoized: traced and
// interval-sampled runs carry per-run payloads that are not meaningful
// to share, so they always execute.
func (s RunSpec) cacheable() bool {
	return s.Trace == nil && s.IntervalEvery <= 0
}

// Hash returns a short stable fingerprint of the spec's
// outcome-affecting fields (exactly the memoization key), used to
// correlate log records and manifest entries with results.
func (s RunSpec) Hash() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", s.key())))
	return hex.EncodeToString(sum[:6])
}

// costKey groups specs whose wall times are comparable for scheduling
// estimates.
type costKey struct {
	workload string
	scale    workload.Scale
	budget   prog.RegBudget
	inOrder  bool
	lockstep bool
}

func (s RunSpec) costKey() costKey {
	return costKey{workload: s.Workload, scale: s.Scale, budget: s.Budget, inOrder: s.InOrder, lockstep: s.Lockstep}
}

// estimate returns the expected wall time of a spec in seconds: the
// learned average when one exists, otherwise a scale-based default
// (absolute accuracy does not matter — only the relative ordering and
// the ETA use it).
func (e *Engine) estimate(s RunSpec) float64 {
	e.mu.Lock()
	t, ok := e.ewma[s.costKey()]
	e.mu.Unlock()
	if ok {
		return t
	}
	var base float64
	switch s.Scale {
	case workload.ScaleTest:
		base = 1
	case workload.ScaleSmall:
		base = 8
	default:
		base = 40
	}
	if s.Lockstep {
		base *= 2
	}
	return base
}

// observe folds a completed run's wall time into the estimates.
func (e *Engine) observe(s RunSpec, wall time.Duration) {
	sec := wall.Seconds()
	k := s.costKey()
	e.mu.Lock()
	if old, ok := e.ewma[k]; ok {
		e.ewma[k] = 0.5*old + 0.5*sec
	} else {
		e.ewma[k] = sec
	}
	e.mu.Unlock()
}

// CacheStats is a point-in-time read of the engine's cache counters.
type CacheStats struct {
	// BuildHits/BuildMisses count workload build requests served from
	// the build cache vs. actually built.
	BuildHits, BuildMisses uint64
	// SpecHits/SpecMisses count simulation requests served from the
	// RunSpec memo vs. actually simulated.
	SpecHits, SpecMisses uint64
	// CkptHits/CkptMisses count fast-forward checkpoint requests served
	// from the checkpoint cache (in-memory or CkptDir) vs. built by
	// running the functional warm-up.
	CkptHits, CkptMisses uint64
}

// CacheStats returns the engine's cache counters.
func (e *Engine) CacheStats() CacheStats {
	bh, bm := e.builds.Stats()
	return CacheStats{
		BuildHits: bh, BuildMisses: bm,
		SpecHits: e.specHits.Load(), SpecMisses: e.specMisses.Load(),
		CkptHits: e.ckptHits.Load(), CkptMisses: e.ckptMisses.Load(),
	}
}

// MetricsSnapshot exports the engine's counters through the metrics
// registry, in the same Snapshot form per-run metrics use.
func (e *Engine) MetricsSnapshot() stats.Snapshot {
	cs := e.CacheStats()
	reg := stats.NewRegistry()
	reg.Counter("sweep.build_cache_hits").Set(cs.BuildHits)
	reg.Counter("sweep.build_cache_misses").Set(cs.BuildMisses)
	reg.Counter("sweep.spec_cache_hits").Set(cs.SpecHits)
	reg.Counter("sweep.spec_cache_misses").Set(cs.SpecMisses)
	reg.Counter("sweep.ckpt_cache_hits").Set(cs.CkptHits)
	reg.Counter("sweep.ckpt_cache_misses").Set(cs.CkptMisses)
	reg.Counter("sweep.runs_executed").Set(e.executed.Load())
	return reg.Snapshot()
}

// EngineState is a point-in-time read of the engine's live scheduler
// state, exported by the obs server as gauges.
type EngineState struct {
	// Queued/Active/Done count runs: dispatched-but-waiting, currently
	// simulating, and completed (including cache hits and cancellations).
	Queued, Active, Done int64
	// Executed counts actual simulations (memo misses).
	Executed uint64
	// Accepting is false once SetAccepting(false) marked the engine
	// draining.
	Accepting bool
	// Cache is the build/memo counters.
	Cache CacheStats
	// SweepDone/SweepTotal and ElapsedSeconds/ETASeconds mirror the most
	// recent RunAll's progress (EWMA-cost-weighted ETA; zero when no
	// sweep has reported yet).
	SweepDone, SweepTotal int
	ElapsedSeconds        float64
	ETASeconds            float64
}

// State returns the engine's live scheduler state.
func (e *Engine) State() EngineState {
	st := EngineState{
		Queued:    e.queued.Load(),
		Active:    e.active.Load(),
		Done:      e.done.Load(),
		Executed:  e.executed.Load(),
		Accepting: e.Accepting(),
		Cache:     e.CacheStats(),
	}
	e.mu.Lock()
	st.SweepDone, st.SweepTotal = e.sweep.done, e.sweep.total
	st.ElapsedSeconds = e.sweep.elapsed.Seconds()
	st.ETASeconds = e.sweep.eta.Seconds()
	e.mu.Unlock()
	return st
}

// LiveMetrics snapshots the aggregate of every completed run's metrics
// registry. Safe to call while a sweep is in flight: live machine
// registries are never read, only snapshots already merged under the
// engine lock.
func (e *Engine) LiveMetrics() stats.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.agg.Snapshot()
}

// WallTimes snapshots the per-workload wall-time histograms of executed
// runs. Each metric's Name is the workload; samples are milliseconds.
func (e *Engine) WallTimes() stats.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.wallReg.Snapshot()
}

// RunRecord is one entry of the engine's provenance log: a run request
// and how it was satisfied. The spec hash is the memoization-key
// fingerprint (RunSpec.Hash), so identical entries across sweeps and
// processes are identifiable.
type RunRecord struct {
	RunID    uint64  `json:"run_id"`
	Spec     string  `json:"spec"`
	SpecHash string  `json:"spec_hash"`
	Workload string  `json:"workload"`
	Design   string  `json:"design"`
	Seed     uint64  `json:"seed"`
	WallMs   float64 `json:"wall_ms"`
	Cached   bool    `json:"cached"`
	Error    string  `json:"error,omitempty"`
	// PhaseMs breaks WallMs down by phase (program_build, checkpoint,
	// fast_forward, simulate) when span tracing is enabled; nil
	// otherwise.
	PhaseMs map[string]float64 `json:"phase_ms,omitempty"`
	// TraceID is the cross-process trace id the run executed under
	// (runspan.ContextWithTrace) — the same id the submitting client's
	// spans and the serving transport's access log carry. Empty for
	// runs with no propagated trace context.
	TraceID string `json:"trace_id,omitempty"`
}

// RunLog returns a copy of the engine's provenance log: every request
// in completion order, executed and cache-served alike.
func (e *Engine) RunLog() []RunRecord {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]RunRecord(nil), e.runLog...)
}

// record appends a provenance entry and folds an executed run's
// metrics into the live aggregate. Completion doubles as a watchdog
// heartbeat.
func (e *Engine) record(id uint64, spec RunSpec, res *RunResult, cached bool, phases map[string]float64, traceID string) {
	e.heartbeat()
	rec := RunRecord{
		RunID:    id,
		Spec:     spec.String(),
		SpecHash: spec.Hash(),
		Workload: spec.Workload,
		Design:   spec.Design,
		Seed:     spec.Seed,
		WallMs:   float64(res.Wall.Microseconds()) / 1e3,
		Cached:   cached,
		PhaseMs:  phases,
		TraceID:  traceID,
	}
	if res.Err != nil {
		rec.Error = res.Err.Error()
	}
	e.mu.Lock()
	e.runLog = append(e.runLog, rec)
	if !cached && res.Err == nil {
		e.agg.Merge(res.Metrics)
		e.wallReg.Histogram(spec.Workload, wallBuckets).Observe(res.Wall.Milliseconds())
	}
	e.mu.Unlock()
}

// runLogger returns the run-scoped logger (nil when logging is off).
func (e *Engine) runLogger(id uint64, spec RunSpec) *slog.Logger {
	lg := e.Logger()
	if lg == nil {
		return nil
	}
	return lg.With(
		"run_id", id,
		"workload", spec.Workload,
		"design", spec.Design,
		"spec_hash", spec.Hash(),
		"seed", spec.Seed,
	)
}

// buildProgram resolves a spec's program, through the build cache
// unless disabled.
func (e *Engine) buildProgram(spec RunSpec) (*prog.Program, error) {
	p, _, err := e.buildProgramObserved(spec)
	return p, err
}

// buildProgramObserved is buildProgram plus the cache disposition
// (fresh build / ready hit / singleflight wait) for the span tracer.
func (e *Engine) buildProgramObserved(spec RunSpec) (*prog.Program, workload.BuildOutcome, error) {
	if e.noBuildCache {
		w, err := workload.ByName(spec.Workload)
		if err != nil {
			return nil, workload.BuildOutcome{}, err
		}
		p, err := w.Build(spec.Budget, spec.Scale)
		return p, workload.BuildOutcome{}, err
	}
	return e.builds.BuildObserved(spec.Workload, spec.Budget, spec.Scale)
}

// PrewarmBuilds builds every unique program named by specs into the
// engine's build cache, so a timed pass over the same specs measures
// simulation alone rather than program generation.
func (e *Engine) PrewarmBuilds(ctx context.Context, specs []RunSpec) error {
	e.start()
	type buildKey struct {
		workload string
		budget   prog.RegBudget
		scale    workload.Scale
	}
	seen := make(map[buildKey]bool)
	for _, s := range specs {
		k := buildKey{s.Workload, s.Budget, s.Scale}
		if seen[k] {
			continue
		}
		seen[k] = true
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := e.buildProgram(s); err != nil {
			return err
		}
	}
	return nil
}

// Run executes one simulation, serving it from the memo cache when an
// identical spec already ran. A cancelled ctx returns promptly with
// RunResult.Err set to ctx.Err().
func (e *Engine) Run(ctx context.Context, spec RunSpec) RunResult {
	e.start()
	defer e.done.Add(1)
	if err := ctx.Err(); err != nil {
		return RunResult{Spec: spec, Err: err}
	}
	e.heartbeat()
	if e.noMemo || !spec.cacheable() {
		res, _ := e.execute(ctx, spec)
		return res
	}
	key := spec.key()
	for {
		e.mu.Lock()
		ent := e.memo[key]
		if ent == nil {
			// A resume journal from an interrupted sweep satisfies the
			// spec without re-simulating: install the journaled result
			// as a pre-completed memo entry and serve it as a hit.
			if res, ok := e.journal.lookup(spec); ok {
				je := &memoEntry{done: make(chan struct{}), res: res}
				close(je.done)
				e.memo[key] = je
				e.mu.Unlock()
				continue
			}
			ent = &memoEntry{done: make(chan struct{})}
			e.memo[key] = ent
			e.mu.Unlock()
			res, root := e.execute(ctx, spec)
			if isCancelErr(res.Err) {
				// Never memoize a cancelled run: drop the entry so a
				// later caller re-executes, and wake any waiters (they
				// will retry and observe the cancellation themselves).
				e.mu.Lock()
				delete(e.memo, key)
				e.mu.Unlock()
				ent.res = res
				close(ent.done)
				return res
			}
			e.specMisses.Add(1)
			jsp := e.Spans().Start(root.Trace(), root, "journal_append")
			e.journal.append(spec, &res)
			jsp.End()
			ent.res = res
			close(ent.done)
			return res
		}
		e.mu.Unlock()
		waitMark := e.Spans().Now()
		select {
		case <-ctx.Done():
			return RunResult{Spec: spec, Err: ctx.Err()}
		case <-ent.done:
		}
		if isCancelErr(ent.res.Err) {
			continue // the producer was cancelled, not us: retry
		}
		e.specHits.Add(1)
		res := ent.res
		res.Spec = spec
		res.Cached = true
		res.Wall = 0
		id := e.runSeq.Add(1)
		tc, hasTC := runspan.TraceFromContext(ctx)
		if tr := e.Spans(); tr.Enabled() {
			// Memo hits get a minimal trace of their own: a root span
			// covering the (usually zero) wait on the producer, so hit
			// traffic is visible on the timeline next to real runs.
			rt := tr.NewTrace()
			if hasTC {
				rt = tr.NewTraceWith(tc.TraceID, runspan.NewSpanID(), tc.SpanID)
			}
			hroot := tr.StartAt(rt, nil, "run", waitMark).
				SetAttr("workload", spec.Workload).
				SetAttr("design", spec.Design).
				SetAttr("spec_hash", spec.Hash()).
				SetAttr("run_id", strconv.FormatUint(id, 10)).
				SetAttr("cache", "hit")
			tr.StartAt(rt, hroot, "memo_wait", waitMark).End()
			hroot.End()
		}
		e.record(id, spec, &res, true, nil, tc.TraceID)
		if lg := e.runLogger(id, spec); lg != nil {
			if hasTC {
				lg = lg.With("trace_id", tc.TraceID)
			}
			lg.Info("run finished", "wall_ms", 0.0, "cache", "hit")
		}
		return res
	}
}

func isCancelErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// execute performs the simulation (no memoization), recording wall time
// and updating scheduling estimates. When span tracing is on it also
// returns the run's (already ended) root span so the caller can hang
// post-run phases — the resume-journal append — off the same trace;
// with tracing off the returned span is nil.
func (e *Engine) execute(ctx context.Context, spec RunSpec) (RunResult, *runspan.Span) {
	start := time.Now()
	id := e.runSeq.Add(1)
	lg := e.runLogger(id, spec)
	tr := e.Spans()
	tc, hasTC := runspan.TraceFromContext(ctx)
	var (
		rt     runspan.TraceID
		root   *runspan.Span
		phases map[string]float64
	)
	if tr.Enabled() {
		if hasTC {
			// A propagated trace context (a remote submitter, or the
			// fabric service's per-job span) parents this run's root
			// under the caller's span and stamps the shared trace id.
			rt = tr.NewTraceWith(tc.TraceID, runspan.NewSpanID(), tc.SpanID)
		} else {
			rt = tr.NewTrace()
		}
		root = tr.Start(rt, nil, "run").
			SetAttr("workload", spec.Workload).
			SetAttr("design", spec.Design).
			SetAttr("spec_hash", spec.Hash()).
			SetAttr("run_id", strconv.FormatUint(id, 10))
		phases = make(map[string]float64, 4)
		if lg != nil {
			if hasTC {
				lg = lg.With("trace_id", tc.TraceID, "span_id", root.ID())
			} else {
				lg = lg.With("trace_id", uint64(rt), "span_id", root.ID())
			}
		}
	} else if hasTC && lg != nil {
		lg = lg.With("trace_id", tc.TraceID)
	}
	// endPhase closes a phase span and folds its wall time into the
	// manifest's per-phase breakdown. Nil-safe (disabled tracer).
	endPhase := func(sp *runspan.Span, name string) {
		if sp != nil {
			phases[name] = sp.End().Seconds() * 1e3
		}
	}
	if lg != nil {
		lg.Debug("run start")
	}
	e.active.Add(1)
	defer e.active.Add(-1)
	res := RunResult{Spec: spec}
	defer func() {
		if root != nil {
			if res.Err != nil {
				root.SetAttr("error", res.Err.Error())
			}
			root.End()
		}
		e.record(id, spec, &res, false, phases, tc.TraceID)
		if lg != nil {
			switch {
			case res.Err != nil:
				lg.Warn("run failed", "wall_ms", float64(res.Wall.Microseconds())/1e3, "error", res.Err.Error())
			default:
				lg.Info("run finished", "wall_ms", float64(res.Wall.Microseconds())/1e3, "cache", "miss")
			}
		}
	}()
	bsp := tr.Start(rt, root, "program_build")
	bmark := tr.Now()
	p, bout, err := e.buildProgramObserved(spec)
	if bsp != nil {
		if bout.Hit {
			bsp.SetAttr("cache", "hit")
		} else {
			bsp.SetAttr("cache", "miss")
		}
		if bout.Waited {
			// The hit blocked on another goroutine's in-flight build:
			// surface the wait as its own span.
			tr.StartAt(rt, bsp, "singleflight_wait", bmark).End()
		}
		endPhase(bsp, "program_build")
	}
	if err != nil {
		res.Err = err
		return res, root
	}
	cfg := cpu.DefaultConfig()
	cfg.PageSize = spec.PageSize
	cfg.InOrder = spec.InOrder
	cfg.MaxInsts = spec.MaxInsts
	cfg.VirtualCache = spec.VirtualCache
	cfg.FlushTLBEvery = spec.ContextSwitchEvery
	cfg.Lockstep = spec.Lockstep
	cfg.FFwdEngine = spec.FFwdEngine
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	if spec.FastForward > 0 {
		// One warmed checkpoint per (workload, budget, scale, page
		// size, N) serves every design in the grid; the machine then
		// restores it instead of re-running the functional phase.
		csp := tr.Start(rt, root, "checkpoint")
		c, cerr := e.checkpoint(ctx, spec, p, cfg, csp)
		endPhase(csp, "checkpoint")
		if cerr != nil {
			if isCancelErr(cerr) {
				res.Err = cerr
			} else {
				res.Err = fmt.Errorf("%s: checkpoint: %w", spec, cerr)
			}
			return res, root
		}
		cfg.FastForward = spec.FastForward
		cfg.Checkpoint = c
	}
	m, err := cpu.NewWithDesign(p, cfg, spec.Design)
	if err != nil {
		res.Err = err
		return res, root
	}
	m.SetCancel(ctx)
	if spec.Trace != nil {
		m.SetTracer(ptrace.New(*spec.Trace))
	}
	if spec.IntervalEvery > 0 {
		m.EnableIntervalSampling(spec.IntervalEvery)
	}
	if beat := e.beat(); spec.Progress != nil || beat != nil {
		every := spec.ProgressEvery
		if every <= 0 {
			every = 1 << 20
		}
		user := spec.Progress
		m.SetProgress(every, func(cycle int64, committed uint64) {
			if beat != nil {
				beat()
			}
			if user != nil {
				user(cycle, committed)
			}
		})
	}
	if spec.FastForward > 0 {
		// Run would fast-forward implicitly; doing it explicitly here
		// separates warm-up time from cycle-simulation time.
		fsp := tr.Start(rt, root, "fast_forward")
		m.FastForward()
		endPhase(fsp, "fast_forward")
	}
	ssp := tr.Start(rt, root, "simulate")
	err = m.Run()
	if ssp != nil {
		ssp.SetAttr("committed", strconv.FormatUint(m.Stats().Committed, 10))
	}
	res.Stats = *m.Stats()
	res.TLB = *m.DTLB.Stats()
	res.Metrics = m.Metrics().Snapshot()
	res.Trace = m.Tracer()
	res.Intervals = m.Intervals()
	res.Wall = time.Since(start)
	e.executed.Add(1)
	switch {
	case isCancelErr(err):
		res.Err = err // the bare ctx error, per the sweep contract
	case err != nil:
		res.Err = fmt.Errorf("%s: %w", spec, err)
	default:
		e.observe(spec, res.Wall)
	}
	if ssp != nil {
		endPhase(ssp, "simulate")
		if res.Trace != nil {
			// Merge this run's micro pipeline events under its macro
			// simulate span on the exported timeline.
			tr.AttachMicro(ssp, spec.String(), res.Trace)
		}
	}
	return res, root
}

// Progress is one scheduler update, delivered after each completed (or
// cancelled) run.
type Progress struct {
	// Done runs have finished out of Total.
	Done, Total int
	// Result is the run that just finished; Result.Wall is its wall
	// time and Result.Cached reports a memo hit.
	Result *RunResult
	// Elapsed is wall time since the sweep started; ETA estimates the
	// remaining wall time from the per-spec cost model (zero until the
	// first run completes).
	Elapsed, ETA time.Duration
}

// RunAll executes specs with bounded parallelism (0 = GOMAXPROCS),
// dispatching longest-estimated-job-first to minimize tail latency.
// Results are returned in spec order regardless of dispatch order.
// When ctx is cancelled, queued specs are not dispatched, in-flight
// machines are interrupted, every unfinished result carries ctx.Err(),
// and RunAll returns ctx.Err().
func (e *Engine) RunAll(ctx context.Context, specs []RunSpec, parallelism int, progress func(Progress)) ([]RunResult, error) {
	e.start()
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(specs) {
		parallelism = len(specs)
	}
	results := make([]RunResult, len(specs))

	// Longest-job-first: sort a dispatch order by estimated cost,
	// descending. Stable so equal-cost specs keep grid order.
	cost := make([]float64, len(specs))
	var totalCost float64
	for i, s := range specs {
		cost[i] = e.estimate(s)
		totalCost += cost[i]
	}
	order := make([]int, len(specs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return cost[order[a]] > cost[order[b]] })

	start := time.Now()
	e.queued.Add(int64(len(specs)))
	e.mu.Lock()
	e.sweep.done, e.sweep.total = 0, len(specs)
	e.sweep.elapsed, e.sweep.eta = 0, 0
	e.mu.Unlock()
	if lg := e.Logger(); lg != nil {
		lg.Info("sweep start", "runs", len(specs), "parallelism", parallelism)
	}
	tr := e.Spans()
	var (
		sweepTrace runspan.TraceID
		sweepSpan  *runspan.Span
	)
	sweepMark := tr.Now()
	if tr.Enabled() {
		sweepTrace = tr.NewTrace()
		sweepSpan = tr.Start(sweepTrace, nil, "sweep").
			SetAttr("runs", strconv.Itoa(len(specs))).
			SetAttr("parallelism", strconv.Itoa(parallelism))
	}
	var (
		mu       sync.Mutex
		done     int
		doneCost float64
		wg       sync.WaitGroup
		next     atomic.Int64
	)
	worker := func() {
		defer wg.Done()
		for {
			n := int(next.Add(1)) - 1
			if n >= len(order) {
				return
			}
			i := order[n]
			e.queued.Add(-1)
			if tr.Enabled() {
				// The scheduling gap: how long this spec sat queued
				// (sweep start to dispatch) before a worker picked it up.
				tr.StartAt(sweepTrace, sweepSpan, "sched_gap", sweepMark).
					SetAttr("spec", specs[i].String()).End()
			}
			if err := ctx.Err(); err != nil {
				// Cancelled: stop dispatching; mark without running.
				results[i] = RunResult{Spec: specs[i], Err: err}
				e.done.Add(1)
			} else {
				results[i] = e.Run(ctx, specs[i])
			}
			mu.Lock()
			done++
			doneCost += cost[i]
			elapsed := time.Since(start)
			var eta time.Duration
			if doneCost > 0 && done < len(specs) {
				eta = time.Duration(float64(elapsed) * (totalCost - doneCost) / doneCost)
			}
			e.mu.Lock()
			e.sweep.done, e.sweep.total = done, len(specs)
			e.sweep.elapsed, e.sweep.eta = elapsed, eta
			e.mu.Unlock()
			if progress != nil {
				progress(Progress{Done: done, Total: len(specs), Result: &results[i], Elapsed: elapsed, ETA: eta})
			}
			mu.Unlock()
		}
	}
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go worker()
	}
	wg.Wait()
	if sweepSpan != nil {
		if ctx.Err() != nil {
			sweepSpan.SetAttr("cancelled", "true")
		}
		sweepSpan.End()
	}
	if lg := e.Logger(); lg != nil {
		lg.Info("sweep done", "runs", len(specs),
			"elapsed_ms", float64(time.Since(start).Microseconds())/1e3,
			"cancelled", ctx.Err() != nil)
	}
	return results, ctx.Err()
}
