package engine

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"hbat/internal/prog"
	"hbat/internal/workload"
)

// sweepTestSpecs is a small mixed grid for scheduling tests.
func sweepTestSpecs() []RunSpec {
	var specs []RunSpec
	for _, w := range []string{"espresso", "perl"} {
		for _, d := range []string{"T4", "T1", "M8"} {
			specs = append(specs, RunSpec{
				Workload: w, Design: d, Budget: prog.Budget32,
				Scale: workload.ScaleTest, PageSize: 4096, Seed: 1,
			})
		}
	}
	return specs
}

// TestRunAllDeterministicAcrossParallelism asserts the sweep scheduler
// is an optimization, not a semantics change: the same grid produces
// identical results serially and at any parallelism level.
func TestRunAllDeterministicAcrossParallelism(t *testing.T) {
	specs := sweepTestSpecs()

	// Reference: each spec on its own private engine, serially.
	ref := make([]RunResult, len(specs))
	for i, s := range specs {
		ref[i] = Run(s)
		if ref[i].Err != nil {
			t.Fatal(ref[i].Err)
		}
	}

	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		// A fresh engine per level: a shared one would serve repeats from
		// cache and make the comparison vacuous.
		results, err := New().RunAll(context.Background(), specs, par, nil)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("par=%d run %d: %v", par, i, r.Err)
			}
			if !reflect.DeepEqual(r.Stats, ref[i].Stats) {
				t.Errorf("par=%d: %s CPU stats diverge from serial run", par, specs[i])
			}
			if !reflect.DeepEqual(r.TLB, ref[i].TLB) {
				t.Errorf("par=%d: %s TLB stats diverge from serial run", par, specs[i])
			}
			if !reflect.DeepEqual(r.Metrics, ref[i].Metrics) {
				t.Errorf("par=%d: %s metrics diverge from serial run", par, specs[i])
			}
		}
	}
}

// TestRunMemoServesRepeats pins the memo contract: an identical spec is
// served from cache (flagged Cached, same results), and a different
// seed is not.
func TestRunMemoServesRepeats(t *testing.T) {
	eng := New()
	spec := sweepTestSpecs()[0]
	ctx := context.Background()

	first := eng.Run(ctx, spec)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.Cached {
		t.Error("first run flagged as cached")
	}
	second := eng.Run(ctx, spec)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !second.Cached {
		t.Error("repeat run not served from memo")
	}
	if !reflect.DeepEqual(first.Stats, second.Stats) {
		t.Error("cached result differs from original")
	}
	other := spec
	other.Seed = 2
	third := eng.Run(ctx, other)
	if third.Err != nil {
		t.Fatal(third.Err)
	}
	if third.Cached {
		t.Error("different seed served from memo")
	}
	if cs := eng.CacheStats(); cs.SpecHits != 1 || cs.SpecMisses != 2 {
		t.Errorf("counters = %+v, want 1 hit / 2 misses", cs)
	}
}

// TestBuildCacheSharesImmutablePrograms asserts the contract the build
// cache rests on: two designs simulated from one cached program leave
// the program bit-identical, do the same architected work, and still
// diverge in their timing statistics.
func TestBuildCacheSharesImmutablePrograms(t *testing.T) {
	eng := New()
	spec := RunSpec{
		Workload: "compress", Design: "T4", Budget: prog.Budget32,
		Scale: workload.ScaleTest, PageSize: 4096, Seed: 1,
	}
	p, err := eng.buildProgram(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Fingerprint the shared program before any machine touches it.
	codeLen := len(p.Code)
	var dataSum uint64
	for _, seg := range p.Data {
		for _, b := range seg.Bytes {
			dataSum += uint64(b)
		}
	}
	initRegs := make(map[string]uint64)
	for r, v := range p.InitRegs {
		initRegs[r.String()] = v
	}

	t4 := eng.Run(context.Background(), spec)
	t1spec := spec
	t1spec.Design = "T1"
	t1 := eng.Run(context.Background(), t1spec)
	if t4.Err != nil || t1.Err != nil {
		t.Fatal(t4.Err, t1.Err)
	}

	p2, err := eng.buildProgram(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Error("build cache returned a different program for the same key")
	}
	if len(p.Code) != codeLen {
		t.Errorf("code length changed: %d -> %d", codeLen, len(p.Code))
	}
	var dataSum2 uint64
	for _, seg := range p.Data {
		for _, b := range seg.Bytes {
			dataSum2 += uint64(b)
		}
	}
	if dataSum2 != dataSum {
		t.Error("data segments mutated by simulation")
	}
	for r, v := range p.InitRegs {
		if initRegs[r.String()] != v {
			t.Errorf("initial register %s changed", r)
		}
	}
	// Same architected work, different timing.
	if t4.Stats.Committed != t1.Stats.Committed {
		t.Errorf("architected work diverged: T4 committed %d, T1 %d",
			t4.Stats.Committed, t1.Stats.Committed)
	}
	if t4.Stats.Cycles == t1.Stats.Cycles {
		t.Error("T4 and T1 took identical cycles; designs not actually differing")
	}
}

// TestRunCancellationInterruptsInFlight cancels a context while a
// simulation is running and asserts the machine stops at the next
// cycle-granular check with the bare context error.
func TestRunCancellationInterruptsInFlight(t *testing.T) {
	eng := New()
	spec := RunSpec{
		Workload: "compress", Design: "T4", Budget: prog.Budget32,
		Scale: workload.ScaleSmall, PageSize: 4096, Seed: 1,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := eng.Run(ctx, spec)
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", res.Err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; not prompt", elapsed)
	}
	// The cancelled run must not poison the memo: a fresh context
	// re-executes and succeeds.
	res = eng.Run(context.Background(), spec)
	if res.Err != nil {
		t.Fatalf("rerun after cancel: %v", res.Err)
	}
	if res.Cached {
		t.Error("rerun served the cancelled run from cache")
	}
}

// TestRunAllCancellationStopsDispatch cancels a sweep mid-flight:
// RunAll must return ctx.Err(), every unfinished result must carry the
// context error, and the worker goroutines must drain (no leak).
func TestRunAllCancellationStopsDispatch(t *testing.T) {
	var specs []RunSpec
	for _, w := range []string{"compress", "gcc", "tomcatv", "doduc"} {
		specs = append(specs, RunSpec{
			Workload: w, Design: "T4", Budget: prog.Budget32,
			Scale: workload.ScaleSmall, PageSize: 4096, Seed: 1,
		})
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	results, err := New().RunAll(ctx, specs, 2, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAll err = %v, want context.Canceled", err)
	}
	cancelled := 0
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		} else if r.Err != nil {
			t.Errorf("unexpected error: %v", r.Err)
		}
	}
	if cancelled == 0 {
		t.Error("no result carries the cancellation error")
	}
	// Workers must exit promptly once cancelled.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestRunAllProgressCarriesTimings asserts the upgraded progress
// callbacks deliver per-run wall time and monotone Done counts.
func TestRunAllProgressCarriesTimings(t *testing.T) {
	specs := sweepTestSpecs()
	lastDone := 0
	sawWall := false
	results, err := New().RunAll(context.Background(), specs, 2, func(p Progress) {
		if p.Done != lastDone+1 {
			t.Errorf("Done jumped from %d to %d", lastDone, p.Done)
		}
		lastDone = p.Done
		if p.Total != len(specs) {
			t.Errorf("Total = %d", p.Total)
		}
		if p.Result == nil {
			t.Fatal("nil Result in progress")
		}
		if p.Result.Wall > 0 {
			sawWall = true
		}
		if p.ETA < 0 {
			t.Errorf("negative ETA %v", p.ETA)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != len(specs) {
		t.Errorf("final Done = %d, want %d", lastDone, len(specs))
	}
	if !sawWall {
		t.Error("no progress update carried a wall time")
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

// TestEngineDisableFlags pins the benchmarking switches: NoMemo forces
// every spec to execute, NoBuildCache forces every build.
func TestEngineDisableFlags(t *testing.T) {
	eng := New(WithoutMemo(), WithoutBuildCache())
	spec := sweepTestSpecs()[0]
	for i := 0; i < 2; i++ {
		if r := eng.Run(context.Background(), spec); r.Err != nil {
			t.Fatal(r.Err)
		} else if r.Cached {
			t.Error("NoMemo engine served from cache")
		}
	}
	cs := eng.CacheStats()
	if cs.SpecHits != 0 || cs.BuildHits != 0 || cs.BuildMisses != 0 {
		t.Errorf("disabled caches recorded activity: %+v", cs)
	}
}
