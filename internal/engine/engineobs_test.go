package engine

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
)

// TestEngineLiveStateSettles pins the observability surface a finished
// sweep must present: gauges settled (queued=0, active=0, done=N), the
// provenance log complete, run metrics merged into the live aggregate,
// and per-workload wall-time histograms covering every executed run.
func TestEngineLiveStateSettles(t *testing.T) {
	eng := New()
	specs := sweepTestSpecs()
	results, err := eng.RunAll(context.Background(), specs, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	st := eng.State()
	if st.Queued != 0 || st.Active != 0 || st.Done != int64(len(specs)) {
		t.Errorf("state = %+v, want queued 0, active 0, done %d", st, len(specs))
	}
	if !st.Accepting {
		t.Error("engine not accepting after sweep")
	}
	if st.SweepDone != len(specs) || st.SweepTotal != len(specs) {
		t.Errorf("sweep progress %d/%d, want %d/%d", st.SweepDone, st.SweepTotal, len(specs), len(specs))
	}

	log := eng.RunLog()
	if len(log) != len(specs) {
		t.Fatalf("%d run records, want %d", len(log), len(specs))
	}
	seenIDs := map[uint64]bool{}
	for _, r := range log {
		if seenIDs[r.RunID] {
			t.Errorf("duplicate run id %d", r.RunID)
		}
		seenIDs[r.RunID] = true
		if r.SpecHash == "" || r.Workload == "" || r.Design == "" {
			t.Errorf("incomplete record: %+v", r)
		}
	}

	// The aggregate carries every run's core metrics: total TLB lookups
	// across the six runs must match the per-result sum.
	var want uint64
	for _, r := range results {
		for _, m := range r.Metrics {
			if m.Name == "tlb.lookups" {
				want += m.Value
			}
		}
	}
	var got uint64
	for _, m := range eng.LiveMetrics() {
		if m.Name == "tlb.lookups" {
			got = m.Value
		}
	}
	if want == 0 || got != want {
		t.Errorf("aggregated tlb.lookups = %d, want %d (nonzero)", got, want)
	}

	// Wall histograms: one metric per workload, counts covering the
	// executed runs (3 designs each).
	byWorkload := map[string]uint64{}
	for _, m := range eng.WallTimes() {
		byWorkload[m.Name] = m.Count
	}
	if byWorkload["espresso"] != 3 || byWorkload["perl"] != 3 {
		t.Errorf("wall histogram counts = %v, want 3 per workload", byWorkload)
	}
}

// TestEngineRunLoggerEmitsRunScopedRecords checks the slog plumbing:
// with a logger attached, each run emits a structured completion record
// carrying the run-scoped attributes.
func TestEngineRunLoggerEmitsRunScopedRecords(t *testing.T) {
	var buf bytes.Buffer
	eng := New(WithLogger(slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))))

	spec := sweepTestSpecs()[0]
	ctx := context.Background()
	if r := eng.Run(ctx, spec); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := eng.Run(ctx, spec); r.Err != nil {
		t.Fatal(r.Err)
	}

	out := buf.String()
	for _, want := range []string{
		`"msg":"run finished"`,
		`"workload":"espresso"`,
		`"design":"T4"`,
		`"spec_hash":`,
		`"run_id":`,
		`"seed":1`,
		`"cache":"miss"`,
		`"cache":"hit"`,
		`"wall_ms":`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %s:\n%s", want, out)
		}
	}
}

// TestEngineHeartbeatFires checks the watchdog hook: dispatch, progress
// ticks, and completion all touch the heartbeat.
func TestEngineHeartbeatFires(t *testing.T) {
	beats := 0
	eng := New(WithHeartbeat(func() { beats++ })) // Run is called serially here
	spec := sweepTestSpecs()[0]
	spec.ProgressEvery = 1000
	if r := eng.Run(context.Background(), spec); r.Err != nil {
		t.Fatal(r.Err)
	}
	if beats < 3 {
		t.Errorf("heartbeat fired %d times, want >= 3 (dispatch, ticks, completion)", beats)
	}
}
