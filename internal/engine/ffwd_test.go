package engine

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"hbat/internal/prog"
	"hbat/internal/workload"
)

// ffwdSpec is the base two-phase spec the sweep tests vary.
func ffwdSpec(design string) RunSpec {
	return RunSpec{
		Workload: "compress", Design: design, Budget: prog.Budget32,
		Scale: workload.ScaleTest, PageSize: 4096, Seed: 1,
		FastForward: 10000,
	}
}

// TestSweepSharesCheckpoint: one functional warm-up must serve every
// design in a grid — that is the point of keeping the checkpoint
// design-independent.
func TestSweepSharesCheckpoint(t *testing.T) {
	e := New()
	designs := []string{"T4", "M8", "I4", "P8"}
	for _, d := range designs {
		res := e.Run(context.Background(), ffwdSpec(d))
		if res.Err != nil {
			t.Fatalf("%s: %v", d, res.Err)
		}
		if res.Stats.FastForwarded != 10000 {
			t.Fatalf("%s: FastForwarded = %d, want 10000", d, res.Stats.FastForwarded)
		}
	}
	cs := e.CacheStats()
	if cs.CkptMisses != 1 || cs.CkptHits != uint64(len(designs)-1) {
		t.Fatalf("checkpoint cache: %d misses, %d hits; want 1 build shared by %d designs",
			cs.CkptMisses, cs.CkptHits, len(designs))
	}
}

// TestCheckpointDirPersistence: a second engine pointed at the same
// CkptDir must load the warmed checkpoint instead of rebuilding it, and
// a corrupted file must be rebuilt, not trusted.
func TestCheckpointDirPersistence(t *testing.T) {
	dir := t.TempDir()
	spec := ffwdSpec("T4")

	e1 := New(WithCheckpointDir(dir))
	if res := e1.Run(context.Background(), spec); res.Err != nil {
		t.Fatal(res.Err)
	}
	if cs := e1.CacheStats(); cs.CkptMisses != 1 || cs.CkptHits != 0 {
		t.Fatalf("first engine: %+v, want one build", cs)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint files on disk: %v (err %v), want exactly one", files, err)
	}

	e2 := New(WithCheckpointDir(dir))
	r2 := e2.Run(context.Background(), spec)
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if cs := e2.CacheStats(); cs.CkptHits != 1 || cs.CkptMisses != 0 {
		t.Fatalf("second engine: %+v, want a disk hit and no build", cs)
	}

	// Corrupt the file: the next engine must detect it (checksum) and
	// rebuild rather than restore garbage state.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	e3 := New(WithCheckpointDir(dir))
	r3 := e3.Run(context.Background(), spec)
	if r3.Err != nil {
		t.Fatal(r3.Err)
	}
	if cs := e3.CacheStats(); cs.CkptMisses != 1 || cs.CkptHits != 0 {
		t.Fatalf("corrupt file engine: %+v, want a rebuild", cs)
	}

	// Every path must agree on the simulation outcome.
	if r2.Stats != r3.Stats {
		t.Fatal("disk-restored and rebuilt checkpoints produced different stats")
	}
}

// TestFFwdEngineSharesCaches: FFwdEngine must be invisible to both the
// memoization key and the checkpoint cache — the engines produce
// byte-identical checkpoints, so caching per engine would only halve
// the hit rate.
func TestFFwdEngineSharesCaches(t *testing.T) {
	interp := ffwdSpec("T4")
	interp.FFwdEngine = "interp"
	sblock := ffwdSpec("T4")
	sblock.FFwdEngine = "sblock"

	if interp.key() != sblock.key() {
		t.Fatalf("specKey differs by engine:\n%#v\n%#v", interp.key(), sblock.key())
	}
	if interp.Hash() != ffwdSpec("T4").Hash() {
		t.Fatal("Hash differs between explicit and default engine")
	}

	// With memoization off, the same spec runs twice — once per engine —
	// and the second run must reuse the first's checkpoint.
	e := New(WithoutMemo())
	r1 := e.Run(context.Background(), interp)
	r2 := e.Run(context.Background(), sblock)
	if r1.Err != nil || r2.Err != nil {
		t.Fatalf("runs failed: %v / %v", r1.Err, r2.Err)
	}
	if r1.Stats != r2.Stats {
		t.Fatal("interp- and sblock-warmed runs produced different stats")
	}
	if cs := e.CacheStats(); cs.CkptMisses != 1 || cs.CkptHits != 1 {
		t.Fatalf("checkpoint cache: %d misses, %d hits; want the sblock run to reuse the interp build",
			cs.CkptMisses, cs.CkptHits)
	}
}
