package engine

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"sync"

	"hbat/internal/cpu"
	"hbat/internal/tlb"
)

// journalRec is one completed run in the resume journal: the spec's
// memoization fingerprint plus the result fields every renderer
// consumes (cpu and TLB statistics). Per-run metrics snapshots, traces,
// and interval series are deliberately not journaled — they are
// per-run payloads the sweep renderers never read, and the specs that
// carry them are not cacheable in the first place.
type journalRec struct {
	SpecHash string    `json:"spec_hash"`
	Spec     string    `json:"spec"`
	Stats    cpu.Stats `json:"stats"`
	TLB      tlb.Stats `json:"tlb"`
}

// journal is the engine's crash-safe resume log: JSON lines, one per
// completed cacheable run, fsynced as written. Loading tolerates a torn
// final line (a crash mid-append) by truncating back to the last intact
// record. All methods are nil-receiver safe so the engine can call them
// unconditionally.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	seen map[string]journalRec
}

// SetJournal attaches a resume journal at path, creating it when
// absent. Existing records are loaded and served as memo hits, so a
// sweep interrupted mid-run resumes from where it stopped and — because
// simulations are deterministic — renders byte-identical artifacts.
// Returns the number of completed runs resumed. Like the engine's
// other configuration, the journal must be attached before first use:
// once the engine has run, SetJournal returns ErrStarted.
func (e *Engine) SetJournal(path string) (int, error) {
	if e.started.Load() {
		return 0, ErrStarted
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return 0, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return 0, err
	}
	seen := make(map[string]journalRec)
	var good int64
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn final line: drop it
		}
		var rec journalRec
		if json.Unmarshal(data[:nl], &rec) != nil || rec.SpecHash == "" {
			break // corrupt tail: keep only the intact prefix
		}
		seen[rec.SpecHash] = rec
		good += int64(nl) + 1
		data = data[nl+1:]
	}
	// Truncate away any torn tail so appends extend a valid record
	// stream rather than gluing onto a partial line.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return 0, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return 0, err
	}
	e.journal = &journal{f: f, seen: seen}
	return len(seen), nil
}

// lookup returns the journaled result for spec, if one exists.
func (j *journal) lookup(spec RunSpec) (RunResult, bool) {
	if j == nil {
		return RunResult{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.seen[spec.Hash()]
	if !ok {
		return RunResult{}, false
	}
	return RunResult{Spec: spec, Stats: rec.Stats, TLB: rec.TLB}, true
}

// append journals one successfully executed run, fsyncing so the record
// survives a crash immediately after.
func (j *journal) append(spec RunSpec, res *RunResult) {
	if j == nil || res.Err != nil {
		return
	}
	rec := journalRec{
		SpecHash: spec.Hash(),
		Spec:     spec.String(),
		Stats:    res.Stats,
		TLB:      res.TLB,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.seen[rec.SpecHash]; dup {
		return
	}
	j.seen[rec.SpecHash] = rec
	if _, err := j.f.Write(append(line, '\n')); err == nil {
		j.f.Sync()
	}
}
