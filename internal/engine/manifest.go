package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Manifest is the run-provenance record emitted alongside sweep
// artifacts (manifest.json): enough to trace any rendered table or
// figure back to the exact tool build, spec list, and seeds that
// produced it, in the reproducible-design-space-sweep discipline the
// TLB-simulation literature relies on.
type Manifest struct {
	// Tool is the emitting binary; Version/GoVersion/VCS* come from
	// runtime/debug.ReadBuildInfo (VCS stamps are absent for `go test`
	// builds and go-run without VCS metadata).
	Tool        string `json:"tool"`
	Version     string `json:"version,omitempty"`
	GoVersion   string `json:"go_version"`
	OS          string `json:"os"`
	Arch        string `json:"arch"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
	CreatedAt   string `json:"created_at"`

	// Runs is the full spec list with seeds and per-run wall times, in
	// completion order (see Engine.RunLog).
	Runs []RunRecord `json:"runs"`
	// Artifacts lists every rendered output with its SHA-256.
	Artifacts []ManifestArtifact `json:"artifacts"`
}

// ManifestArtifact is one rendered output: Path is "-" for artifacts
// streamed to stdout (the hash still covers the rendered bytes).
type ManifestArtifact struct {
	Name   string `json:"name"`
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// NewManifest returns a manifest stamped with the build's identity and
// the given creation time.
func NewManifest(tool string, now time.Time) *Manifest {
	m := &Manifest{
		Tool:      tool,
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CreatedAt: now.UTC().Format(time.RFC3339),
		Runs:      []RunRecord{},
		Artifacts: []ManifestArtifact{},
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.time":
				m.VCSTime = s.Value
			case "vcs.modified":
				m.VCSModified = s.Value == "true"
			}
		}
	}
	return m
}

// RecordRuns copies the engine's provenance log into the manifest.
func (m *Manifest) RecordRuns(e *Engine) {
	m.Runs = e.RunLog()
}

// AddArtifactBytes records a rendered artifact already held in memory
// (e.g. a report streamed to stdout).
func (m *Manifest) AddArtifactBytes(name, path string, data []byte) {
	sum := sha256.Sum256(data)
	m.Artifacts = append(m.Artifacts, ManifestArtifact{
		Name: name, Path: path,
		SHA256: hex.EncodeToString(sum[:]),
		Bytes:  int64(len(data)),
	})
}

// AddArtifactFile hashes a rendered artifact on disk and records it.
func (m *Manifest) AddArtifactFile(name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return err
	}
	m.Artifacts = append(m.Artifacts, ManifestArtifact{
		Name: name, Path: path,
		SHA256: hex.EncodeToString(h.Sum(nil)),
		Bytes:  n,
	})
	return nil
}

// WriteJSON renders the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
