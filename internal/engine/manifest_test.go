package engine

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"hbat/internal/prog"
	"hbat/internal/workload"
)

// TestManifestProvenance runs a tiny sweep plus a cached repeat and
// checks the manifest records the build identity, every run with its
// seed and cached flag, and exact SHA-256s for file and in-memory
// artifacts.
func TestManifestProvenance(t *testing.T) {
	eng := New()
	spec := RunSpec{
		Workload: "espresso", Design: "T4", Budget: prog.Budget32,
		Scale: workload.ScaleTest, PageSize: 4096, Seed: 7,
	}
	ctx := context.Background()
	if r := eng.Run(ctx, spec); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := eng.Run(ctx, spec); r.Err != nil || !r.Cached {
		t.Fatalf("repeat not served from cache: err=%v cached=%v", r.Err, r.Cached)
	}

	m := NewManifest("hbat-test", time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC))
	m.RecordRuns(eng)

	data := []byte("rendered artifact bytes")
	m.AddArtifactBytes("report.txt", "-", data)
	path := filepath.Join(t.TempDir(), "fig5.csv")
	if err := os.WriteFile(path, []byte("w,d,ipc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.AddArtifactFile("fig5.csv", path); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}

	if got.Tool != "hbat-test" || got.GoVersion != runtime.Version() ||
		got.OS != runtime.GOOS || got.Arch != runtime.GOARCH {
		t.Errorf("build identity wrong: %+v", got)
	}
	if got.CreatedAt != "2026-08-05T12:00:00Z" {
		t.Errorf("CreatedAt = %q", got.CreatedAt)
	}

	if len(got.Runs) != 2 {
		t.Fatalf("%d runs recorded, want 2 (executed + cached)", len(got.Runs))
	}
	for i, r := range got.Runs {
		if r.Workload != "espresso" || r.Design != "T4" || r.Seed != 7 {
			t.Errorf("run %d: %+v", i, r)
		}
		if r.SpecHash == "" || r.RunID == 0 {
			t.Errorf("run %d missing provenance ids: %+v", i, r)
		}
	}
	if got.Runs[0].Cached || !got.Runs[1].Cached {
		t.Errorf("cached flags wrong: %v %v", got.Runs[0].Cached, got.Runs[1].Cached)
	}
	if got.Runs[0].WallMs <= 0 {
		t.Errorf("executed run has no wall time: %+v", got.Runs[0])
	}
	if got.Runs[1].WallMs != 0 {
		t.Errorf("cached run has nonzero wall time: %+v", got.Runs[1])
	}

	if len(got.Artifacts) != 2 {
		t.Fatalf("%d artifacts, want 2", len(got.Artifacts))
	}
	sum := sha256.Sum256(data)
	if a := got.Artifacts[0]; a.SHA256 != hex.EncodeToString(sum[:]) || a.Path != "-" || a.Bytes != int64(len(data)) {
		t.Errorf("bytes artifact: %+v", a)
	}
	csvSum := sha256.Sum256([]byte("w,d,ipc\n"))
	if a := got.Artifacts[1]; a.SHA256 != hex.EncodeToString(csvSum[:]) || a.Bytes != 8 {
		t.Errorf("file artifact: %+v", a)
	}
}

func TestSpecHashStableAndSeedSensitive(t *testing.T) {
	spec := RunSpec{Workload: "perl", Design: "T2P2", Scale: workload.ScaleTest, PageSize: 4096, Seed: 1}
	if spec.Hash() != spec.Hash() {
		t.Error("Hash not deterministic")
	}
	other := spec
	other.Seed = 2
	if spec.Hash() == other.Hash() {
		t.Error("Hash ignores the seed")
	}
	if len(spec.Hash()) != 12 {
		t.Errorf("Hash length %d, want 12 hex chars", len(spec.Hash()))
	}
}
