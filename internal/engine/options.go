package engine

import (
	"errors"
	"log/slog"

	"hbat/internal/prog"
	"hbat/internal/runspan"
)

// ErrStarted is returned by the result-affecting Set* methods
// (SetCheckpointDir, SetJournal) once the engine has executed work:
// that configuration is frozen at first use so a concurrent scheduler
// never observes a half-applied change. Observability sinks
// (SetLogger, SetSpans, SetHeartbeat) are exempt and may be attached
// at any time.
var ErrStarted = errors.New("engine: configuration is frozen after first run")

// Option configures an Engine at construction (New).
type Option func(*Engine)

// WithCheckpointDir persists fast-forward checkpoints under dir (one
// file per warm-up key); a later engine with the same dir skips the
// functional warm-up entirely. Empty keeps checkpoints in memory only.
func WithCheckpointDir(dir string) Option {
	return func(e *Engine) { e.ckptDir = dir }
}

// WithLogger attaches a structured logger receiving run-scoped events.
func WithLogger(l *slog.Logger) Option {
	return func(e *Engine) { e.logger = l }
}

// WithSpans attaches a span tracer receiving one trace per run and per
// sweep. A nil tracer means disabled and costs nothing on the hot path.
func WithSpans(tr *runspan.Tracer) Option {
	return func(e *Engine) { e.spans = tr }
}

// WithHeartbeat attaches a liveness callback invoked on dispatch,
// progress ticks, and run completion — the signal the obs watchdog
// consumes.
func WithHeartbeat(fn func()) Option {
	return func(e *Engine) { e.heartbeatFn = fn }
}

// WithoutBuildCache disables program-build reuse (A/B benchmarking).
func WithoutBuildCache() Option {
	return func(e *Engine) { e.noBuildCache = true }
}

// WithoutMemo disables RunSpec memoization (A/B benchmarking).
func WithoutMemo() Option {
	return func(e *Engine) { e.noMemo = true }
}

// start latches the engine as started, freezing its configuration.
func (e *Engine) start() { e.started.Store(true) }

// setConfig runs apply unless the engine has started.
func (e *Engine) setConfig(apply func()) error {
	if e.started.Load() {
		return ErrStarted
	}
	apply()
	return nil
}

// SetCheckpointDir redirects checkpoint persistence to dir; "" disables
// it. Returns ErrStarted once the engine has run.
func (e *Engine) SetCheckpointDir(dir string) error {
	return e.setConfig(func() { e.ckptDir = dir })
}

// SetLogger replaces the engine's logger (nil disables logging).
// Observability sinks carry no result-affecting state, so unlike the
// cache and checkpoint configuration they may be attached at any time,
// including mid-sweep.
func (e *Engine) SetLogger(l *slog.Logger) {
	e.obsMu.Lock()
	e.logger = l
	e.obsMu.Unlock()
}

// SetSpans replaces the engine's span tracer (nil disables tracing).
// Safe at any time, including mid-sweep; see SetLogger.
func (e *Engine) SetSpans(tr *runspan.Tracer) {
	e.obsMu.Lock()
	e.spans = tr
	e.obsMu.Unlock()
}

// SetHeartbeat replaces the engine's liveness callback (nil detaches
// it). Safe at any time, including mid-sweep; see SetLogger.
func (e *Engine) SetHeartbeat(fn func()) {
	e.obsMu.Lock()
	e.heartbeatFn = fn
	e.obsMu.Unlock()
}

// Spans returns the engine's span tracer (nil when tracing is off).
func (e *Engine) Spans() *runspan.Tracer {
	e.obsMu.RLock()
	defer e.obsMu.RUnlock()
	return e.spans
}

// Logger returns the engine's logger (nil when logging is off).
func (e *Engine) Logger() *slog.Logger {
	e.obsMu.RLock()
	defer e.obsMu.RUnlock()
	return e.logger
}

// beat returns the engine's liveness callback (nil when detached).
func (e *Engine) beat() func() {
	e.obsMu.RLock()
	defer e.obsMu.RUnlock()
	return e.heartbeatFn
}

// CheckpointDir returns the engine's checkpoint directory ("" when
// disk persistence is off).
func (e *Engine) CheckpointDir() string { return e.ckptDir }

// BuildProgram resolves a spec's program through the engine's build
// cache (unless the cache is disabled) — the functional-only entry
// point Figure 6 and tooling use when they need the program without a
// timing run.
func (e *Engine) BuildProgram(spec RunSpec) (*prog.Program, error) {
	e.start()
	return e.buildProgram(spec)
}
