package engine

import (
	"bytes"
	"context"
	"log/slog"
	"strconv"
	"strings"
	"testing"
	"time"

	"hbat/internal/cpu"
	"hbat/internal/prog"
	"hbat/internal/runspan"
	"hbat/internal/workload"
)

// spansByName groups a tracer's finished spans by name.
func spansByName(tr *runspan.Tracer) map[string][]runspan.SpanData {
	out := make(map[string][]runspan.SpanData)
	for _, d := range tr.Spans() {
		out[d.Name] = append(out[d.Name], d)
	}
	return out
}

// TestRunEmitsPhaseSpans pins the per-run span taxonomy: a memo miss
// produces a trace with program_build (cache disposition), simulate
// (committed count), and journal_append under a root "run" span; a
// memo hit produces its own minimal trace flagged cache=hit with the
// wait on the producer as a memo_wait span. The phase wall times land
// in the provenance log.
func TestRunEmitsPhaseSpans(t *testing.T) {
	eng := New()
	tr := runspan.New(runspan.Config{})
	eng.SetSpans(tr)
	spec := sweepTestSpecs()[0]
	ctx := context.Background()

	if r := eng.Run(ctx, spec); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := eng.Run(ctx, spec); r.Err != nil { // memo hit
		t.Fatal(r.Err)
	}

	by := spansByName(tr)
	if len(by["run"]) != 2 {
		t.Fatalf("got %d run spans, want 2 (miss + hit)", len(by["run"]))
	}
	var miss, hit runspan.SpanData
	for _, d := range by["run"] {
		if d.Attrs["cache"] == "hit" {
			hit = d
		} else {
			miss = d
		}
	}
	if miss.Span == 0 || hit.Span == 0 {
		t.Fatalf("missing miss/hit root spans: %+v", by["run"])
	}
	for _, key := range []string{"workload", "design", "spec_hash", "run_id"} {
		if miss.Attrs[key] == "" || hit.Attrs[key] == "" {
			t.Errorf("root spans missing attr %q: miss %v, hit %v", key, miss.Attrs, hit.Attrs)
		}
	}
	if miss.Attrs["workload"] != spec.Workload || miss.Attrs["spec_hash"] != spec.Hash() {
		t.Errorf("miss root attrs = %v", miss.Attrs)
	}

	// The executed run's phases, parented under its root.
	pb := by["program_build"]
	if len(pb) != 1 || pb[0].Parent != miss.Span || pb[0].Attrs["cache"] != "miss" {
		t.Errorf("program_build spans = %+v, want one under miss root with cache=miss", pb)
	}
	sim := by["simulate"]
	if len(sim) != 1 || sim[0].Parent != miss.Span {
		t.Fatalf("simulate spans = %+v, want one under miss root", sim)
	}
	if c, err := strconv.ParseUint(sim[0].Attrs["committed"], 10, 64); err != nil || c == 0 {
		t.Errorf("simulate committed attr = %q, want a positive count", sim[0].Attrs["committed"])
	}
	ja := by["journal_append"]
	if len(ja) != 1 || ja[0].Trace != miss.Trace {
		t.Errorf("journal_append spans = %+v, want one on the miss trace", ja)
	}

	// The hit's wait on the (already finished) producer.
	mw := by["memo_wait"]
	if len(mw) != 1 || mw[0].Parent != hit.Span || mw[0].Trace == miss.Trace {
		t.Errorf("memo_wait spans = %+v, want one under the hit root on its own trace", mw)
	}

	// Phase wall times reach the provenance log: set for the executed
	// run, absent for the cache hit.
	log := eng.RunLog()
	if len(log) != 2 {
		t.Fatalf("%d run records, want 2", len(log))
	}
	if log[0].PhaseMs["simulate"] <= 0 || log[0].PhaseMs["program_build"] < 0 {
		t.Errorf("executed run PhaseMs = %v, want simulate > 0", log[0].PhaseMs)
	}
	if log[1].PhaseMs != nil {
		t.Errorf("cached run PhaseMs = %v, want nil", log[1].PhaseMs)
	}
	if got := miss.Attrs["run_id"]; got != strconv.FormatUint(log[0].RunID, 10) {
		t.Errorf("root run_id attr %q != recorded run id %d", got, log[0].RunID)
	}
}

// TestCheckpointSpans covers the fast-forward path: the first design
// builds the warm-up checkpoint (source=build with a ckpt_build child
// naming the engine), later designs reuse it from memory, and a fresh
// engine sharing the CkptDir loads it from disk (ckpt_load ok=true,
// source=disk).
func TestCheckpointSpans(t *testing.T) {
	dir := t.TempDir()
	mk := func(design string) RunSpec {
		return RunSpec{
			Workload: "espresso", Design: design, Budget: prog.Budget32,
			Scale: workload.ScaleTest, PageSize: 4096, Seed: 1, FastForward: 500,
		}
	}
	ctx := context.Background()

	eng := New(WithCheckpointDir(dir))
	tr := runspan.New(runspan.Config{})
	eng.SetSpans(tr)
	if r := eng.Run(ctx, mk("T4")); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := eng.Run(ctx, mk("T1")); r.Err != nil {
		t.Fatal(r.Err)
	}

	by := spansByName(tr)
	cks := by["checkpoint"]
	if len(cks) != 2 {
		t.Fatalf("got %d checkpoint spans, want 2", len(cks))
	}
	sources := map[string]int{}
	for _, d := range cks {
		sources[d.Attrs["source"]]++
	}
	if sources["build"] != 1 || sources["memory"] != 1 {
		t.Errorf("checkpoint sources = %v, want one build + one memory", sources)
	}
	cb := by["ckpt_build"]
	if len(cb) != 1 || cb[0].Attrs["engine"] == "" {
		t.Errorf("ckpt_build spans = %+v, want one with an engine attr", cb)
	}
	// The cold engine probed the (empty) CkptDir before building.
	cl := by["ckpt_load"]
	if len(cl) != 1 || cl[0].Attrs["ok"] != "false" || cl[0].Attrs["path"] == "" {
		t.Errorf("ckpt_load spans = %+v, want one failed probe with a path", cl)
	}
	ff := by["fast_forward"]
	if len(ff) != 2 {
		t.Errorf("got %d fast_forward spans, want 2", len(ff))
	}
	// Phase breakdown covers the checkpoint and fast-forward phases.
	var rec RunRecord
	for _, r := range eng.RunLog() {
		if !r.Cached && r.Design == "T4" {
			rec = r
		}
	}
	for _, phase := range []string{"program_build", "checkpoint", "fast_forward", "simulate"} {
		if _, ok := rec.PhaseMs[phase]; !ok {
			t.Errorf("PhaseMs missing %q: %v", phase, rec.PhaseMs)
		}
	}

	// A fresh engine sharing the dir serves the checkpoint from disk.
	eng2 := New(WithCheckpointDir(dir))
	tr2 := runspan.New(runspan.Config{})
	eng2.SetSpans(tr2)
	if r := eng2.Run(ctx, mk("T4")); r.Err != nil {
		t.Fatal(r.Err)
	}
	by2 := spansByName(tr2)
	if cks := by2["checkpoint"]; len(cks) != 1 || cks[0].Attrs["source"] != "disk" {
		t.Errorf("warm-dir checkpoint spans = %+v, want one with source=disk", cks)
	}
	if cl := by2["ckpt_load"]; len(cl) != 1 || cl[0].Attrs["ok"] != "true" {
		t.Errorf("warm-dir ckpt_load spans = %+v, want one with ok=true", cl)
	}
	if cb := by2["ckpt_build"]; len(cb) != 0 {
		t.Errorf("warm-dir rebuilt the checkpoint: %+v", cb)
	}
}

// TestSingleflightWaitSpan forces the dedup-wait path deterministically:
// a pre-installed in-flight checkpoint entry makes the next caller a
// waiter, whose blocked time must surface as a singleflight_wait span —
// visible in Open() while blocked, finished once the producer closes
// the entry. A ready entry (the common memory hit) must NOT get one.
func TestSingleflightWaitSpan(t *testing.T) {
	eng := New()
	tr := runspan.New(runspan.Config{})
	eng.SetSpans(tr)
	spec := RunSpec{
		Workload: "espresso", Design: "T4", Budget: prog.Budget32,
		Scale: workload.ScaleTest, PageSize: 4096, Seed: 1, FastForward: 100,
	}
	key := ckptKey{
		workload: spec.Workload, budget: spec.Budget, scale: spec.Scale,
		pageSize: spec.PageSize, ffwd: spec.FastForward,
	}
	ent := &ckptEntry{done: make(chan struct{})}
	eng.ckpts[key] = ent

	rt := tr.NewTrace()
	root := tr.Start(rt, nil, "run")
	csp := tr.Start(rt, root, "checkpoint")
	got := make(chan error, 1)
	go func() {
		_, err := eng.checkpoint(context.Background(), spec, nil, cpu.DefaultConfig(), csp)
		got <- err
	}()

	// The waiter must show up live before the producer finishes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var waiting bool
		for _, o := range tr.Open() {
			if o.Name == "singleflight_wait" && o.Parent == csp.ID() {
				waiting = true
			}
		}
		if waiting {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("singleflight_wait never appeared in Open(): %+v", tr.Open())
		}
		time.Sleep(time.Millisecond)
	}
	close(ent.done) // producer "finishes" (nil checkpoint is fine here)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	csp.End()
	root.End()

	by := spansByName(tr)
	if sf := by["singleflight_wait"]; len(sf) != 1 || sf[0].Parent != csp.ID() {
		t.Fatalf("singleflight_wait spans = %+v, want exactly one under the checkpoint span", sf)
	}
	if csp2 := by["checkpoint"]; csp2[0].Attrs["source"] != "memory" {
		t.Errorf("waiter checkpoint source = %q, want memory", csp2[0].Attrs["source"])
	}

	// Second caller finds the entry ready: a plain memory hit, no wait
	// span.
	csp3 := tr.Start(rt, nil, "checkpoint")
	if _, err := eng.checkpoint(context.Background(), spec, nil, cpu.DefaultConfig(), csp3); err != nil {
		t.Fatal(err)
	}
	csp3.End()
	if sf := spansByName(tr)["singleflight_wait"]; len(sf) != 1 {
		t.Errorf("ready entry produced a wait span: %+v", sf)
	}
}

// TestRunAllSweepSpans checks the sweep-level trace: one root "sweep"
// span carrying the grid size, and a sched_gap span per dispatched
// spec measuring how long it sat queued.
func TestRunAllSweepSpans(t *testing.T) {
	eng := New()
	tr := runspan.New(runspan.Config{})
	eng.SetSpans(tr)
	specs := sweepTestSpecs()
	results, err := eng.RunAll(context.Background(), specs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	by := spansByName(tr)
	sw := by["sweep"]
	if len(sw) != 1 {
		t.Fatalf("got %d sweep spans, want 1", len(sw))
	}
	if sw[0].Attrs["runs"] != strconv.Itoa(len(specs)) || sw[0].Attrs["parallelism"] != "2" {
		t.Errorf("sweep attrs = %v", sw[0].Attrs)
	}
	if _, cancelled := sw[0].Attrs["cancelled"]; cancelled {
		t.Error("clean sweep flagged cancelled")
	}
	gaps := by["sched_gap"]
	if len(gaps) != len(specs) {
		t.Fatalf("got %d sched_gap spans, want %d", len(gaps), len(specs))
	}
	seen := map[string]bool{}
	for _, g := range gaps {
		if g.Parent != sw[0].Span || g.Trace != sw[0].Trace {
			t.Errorf("sched_gap not under sweep span: %+v", g)
		}
		seen[g.Attrs["spec"]] = true
	}
	for _, s := range specs {
		if !seen[s.String()] {
			t.Errorf("no sched_gap for %s", s)
		}
	}
	if len(by["run"]) != len(specs) {
		t.Errorf("got %d run spans, want %d", len(by["run"]), len(specs))
	}
}

// TestRunLoggerCarriesSpanIDs asserts run-scoped slog records are
// correlated with the trace: trace_id and span_id attributes appear
// when span tracing is on.
func TestRunLoggerCarriesSpanIDs(t *testing.T) {
	var buf bytes.Buffer
	eng := New(
		WithLogger(slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))),
		WithSpans(runspan.New(runspan.Config{})),
	)
	if r := eng.Run(context.Background(), sweepTestSpecs()[0]); r.Err != nil {
		t.Fatal(r.Err)
	}
	out := buf.String()
	for _, want := range []string{`"trace_id":1`, `"span_id":1`, `"msg":"run finished"`} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %s:\n%s", want, out)
		}
	}
}
