package engine

import (
	"context"
	"fmt"
	"time"

	"hbat/internal/cpu"
	"hbat/internal/prog"
	"hbat/internal/ptrace"
	"hbat/internal/stats"
	"hbat/internal/tlb"
	"hbat/internal/workload"
)

// RunSpec names one simulation: a workload on one machine configuration
// with one translation design.
type RunSpec struct {
	Workload string
	Design   string
	Budget   prog.RegBudget
	Scale    workload.Scale
	PageSize uint64
	InOrder  bool
	Seed     uint64
	MaxInsts uint64 // optional commit cap (0 = run to Halt)

	// FastForward, when positive, executes the first N instructions on
	// the functional emulator (warming TLB, cache, and predictor state)
	// and measures only the remainder cycle-accurately — the two-phase
	// methodology (cpu.Config.FastForward). An Engine builds one warmed
	// checkpoint per (workload, budget, scale, page size, N) and shares
	// it across every design in a grid; N must be smaller than the
	// workload's functional instruction count.
	FastForward uint64

	// FFwdEngine selects the functional engine for the warm-up
	// (ckpt.BuildConfig.Engine): "" or "sblock" for the superblock-
	// translated engine, "interp" for the reference interpreter. The
	// two engines produce byte-identical checkpoints (a differential
	// battery in internal/ckpt enforces this), so FFwdEngine is
	// deliberately EXCLUDED from both the RunSpec memoization key and
	// the checkpoint cache key: results and checkpoints are shared
	// across engine choices.
	FFwdEngine string

	// Extensions beyond the paper's grid.
	VirtualCache       bool
	ContextSwitchEvery uint64

	// Lockstep turns on the golden-model differential checker
	// (cpu.Config.Lockstep): any architected-state divergence surfaces
	// as the run's Err instead of silently skewing the statistics.
	Lockstep bool

	// Trace, when non-nil, records pipeline events into a ring buffer
	// returned as RunResult.Trace (see internal/ptrace).
	Trace *ptrace.Config
	// IntervalEvery, when positive, samples interval time-series rows
	// every N cycles into RunResult.Intervals.
	IntervalEvery int64
	// Progress, when non-nil, is called every ProgressEvery cycles
	// (default 1<<20) with the live cycle and committed-instruction
	// counts — the -progress heartbeat.
	Progress      func(cycle int64, committed uint64)
	ProgressEvery int64
}

func (s RunSpec) String() string {
	mode := "ooo"
	if s.InOrder {
		mode = "inorder"
	}
	return fmt.Sprintf("%s/%s/%s/%dk-pages/%s", s.Workload, s.Design, mode, s.PageSize/1024, s.Budget)
}

// RunResult is one simulation's outcome.
type RunResult struct {
	Spec    RunSpec
	Stats   cpu.Stats
	TLB     tlb.Stats
	Metrics stats.Snapshot
	Err     error

	// Wall is the run's wall-clock time (zero for memo-cache hits).
	Wall time.Duration
	// Cached reports the result was served from an Engine's RunSpec
	// memoization cache instead of being simulated.
	Cached bool

	// Trace holds the recorded pipeline events when Spec.Trace was set.
	Trace *ptrace.Recorder
	// Intervals holds the sampled time series when Spec.IntervalEvery
	// was positive.
	Intervals *stats.IntervalSeries
}

// Run executes one simulation on a private engine. Callers that run
// more than one spec should use an Engine (or RunAll) to share builds
// and memoized results.
func Run(spec RunSpec) RunResult {
	return RunContext(context.Background(), spec)
}

// RunContext executes one simulation on a private engine, honoring ctx
// cancellation at a cycle-granular check.
func RunContext(ctx context.Context, spec RunSpec) RunResult {
	return New().Run(ctx, spec)
}

// RunAll executes specs on a private engine with bounded parallelism
// (0 = GOMAXPROCS); see Engine.RunAll for the scheduling and
// cancellation contract.
func RunAll(ctx context.Context, specs []RunSpec, parallelism int, progress func(Progress)) ([]RunResult, error) {
	return New().RunAll(ctx, specs, parallelism, progress)
}
