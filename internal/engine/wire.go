package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"hbat/api"
	"hbat/internal/prog"
	"hbat/internal/tlb"
	"hbat/internal/workload"
)

// ParseScale maps a wire scale name to a workload.Scale.
func ParseScale(s string) (workload.Scale, error) {
	switch s {
	case "", "small":
		return workload.ScaleSmall, nil
	case "test":
		return workload.ScaleTest, nil
	case "full":
		return workload.ScaleFull, nil
	}
	return 0, fmt.Errorf("unknown scale %q (test, small, full)", s)
}

// SpecFromWire normalizes an api.SimOptions into a RunSpec, applying
// the same defaults the hbat facade applies (workload "compress",
// design "T4", page size 4096, seed 1, 8-register budget under
// FewRegisters). It is the single normalization point shared by the
// facade and the sweep service, which is what makes a spec submitted
// over the wire hit the memo entry a local run produced — and vice
// versa.
func SpecFromWire(o api.SimOptions) (RunSpec, error) {
	scale, err := ParseScale(o.Scale)
	if err != nil {
		return RunSpec{}, err
	}
	spec := RunSpec{
		Workload:           o.Workload,
		Design:             o.Design,
		Budget:             prog.Budget32,
		Scale:              scale,
		PageSize:           o.PageSize,
		InOrder:            o.InOrder,
		Seed:               o.Seed,
		MaxInsts:           o.MaxInsts,
		FastForward:        o.FastForward,
		FFwdEngine:         o.FFwdEngine,
		VirtualCache:       o.VirtualCache,
		ContextSwitchEvery: o.ContextSwitchEvery,
		Lockstep:           o.Lockstep,
	}
	if spec.Workload == "" {
		spec.Workload = "compress"
	}
	if spec.Design == "" {
		spec.Design = "T4"
	}
	if spec.PageSize == 0 {
		spec.PageSize = 4096
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if o.FewRegisters {
		spec.Budget = prog.Budget8
	}
	if _, err := workload.ByName(spec.Workload); err != nil {
		return RunSpec{}, err
	}
	if _, err := tlb.LookupSpec(spec.Design); err != nil {
		return RunSpec{}, err
	}
	return spec, nil
}

// Wire renders a completed run as the canonical api.Result: the
// deterministic outcome fields only, so every producer of the same
// spec renders the identical artifact.
func Wire(res RunResult) api.Result {
	spec := res.Spec
	return api.Result{
		API:     api.Version,
		SpecKey: spec.Hash(),
		Spec:    spec.String(),

		Design:   spec.Design,
		Workload: spec.Workload,

		Cycles:        res.Stats.Cycles,
		Instructions:  res.Stats.Committed,
		Loads:         res.Stats.CommittedLoads,
		Stores:        res.Stats.CommittedStores,
		FastForwarded: res.Stats.FastForwarded,

		IPC:            res.Stats.IPC(),
		IssueIPC:       res.Stats.IssueIPC(),
		MemPerCycle:    res.Stats.MemPerCycle(),
		BranchPredRate: res.Stats.BranchRate(),

		TLBLookups:    res.TLB.Lookups,
		TLBMisses:     res.TLB.Misses,
		TLBWalks:      res.TLB.Fills,
		Piggybacks:    res.TLB.Piggybacks,
		ShieldHits:    res.TLB.ShieldHits,
		NoPortRetries: res.TLB.NoPorts,
		StatusWrites:  res.TLB.StatusWrites,

		FetchStallCycles:  res.Stats.FetchStallCycles,
		DispatchTLBStalls: res.Stats.DispatchTLBStalls,
		DispatchROBFull:   res.Stats.DispatchROBFull,
		DispatchLSQFull:   res.Stats.DispatchLSQFull,
	}
}

// Artifact renders an api.Result as its canonical byte form — indented
// JSON with a trailing newline. Every layer (facade, store, transport)
// renders through this one function, which is what makes artifact
// SHA-256s comparable across producers.
func Artifact(r api.Result) []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// api.Result contains only marshalable scalars; this is
		// unreachable short of memory corruption.
		panic(err)
	}
	return append(b, '\n')
}

// ArtifactSHA256 returns the hex SHA-256 of an artifact's bytes — the
// store key digest and the HTTP ETag.
func ArtifactSHA256(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
