package fleet_test

// Affinity regression: the coordinator shards by rendezvous hashing on
// a checkpoint-affinity key that deliberately excludes the design, so
// every design of one workload lands on the same worker — its
// fast-forward checkpoint is built once and every subsequent design
// (and subsequent job) warms up from cache. If sharding ever switched
// to hashing the full spec key, these tests would see checkpoints
// rebuilt per design and placements scatter.

import (
	"context"
	"testing"

	"hbat/api"
	"hbat/internal/fleet/fleettest"
)

// ffwdGrid is a workloads × designs grid whose every cell fast-forwards
// (so it needs a checkpoint) at the fast test scale.
func ffwdGrid(designs ...string) *api.Grid {
	return &api.Grid{
		Workloads: []string{"compress", "xlisp"},
		Designs:   designs,
		Template: api.SimOptions{
			CommonOptions: api.CommonOptions{Scale: "test", FastForward: 300},
		},
	}
}

func ckptTotals(rig *fleettest.Rig) (hits, misses uint64) {
	for _, w := range rig.Workers {
		cs := w.Engine.CacheStats()
		hits += cs.CkptHits
		misses += cs.CkptMisses
	}
	return hits, misses
}

// byWorkload maps workload → set of workers its specs ran on, using
// the engines' own run logs (ground truth, not coordinator bookkeeping).
func byWorkload(rig *fleettest.Rig) map[string]map[string]bool {
	placements := make(map[string]map[string]bool)
	for _, w := range rig.Workers {
		for _, rec := range w.Engine.RunLog() {
			if placements[rec.Workload] == nil {
				placements[rec.Workload] = make(map[string]bool)
			}
			placements[rec.Workload][w.Addr] = true
		}
	}
	return placements
}

func TestFleetAffinityColocatesDesignSweeps(t *testing.T) {
	guardGoroutines(t)
	rig := fleettest.New(t, 3)
	_, cl, _ := newCoord(t, rig, nil)
	ctx := context.Background()

	// Job 1: two workloads × two designs, all fast-forwarding.
	acc, err := cl.Submit(ctx, api.JobRequest{Grid: ffwdGrid("T4", "P8")})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, cl, acc.ID); st.State != api.StateDone {
		t.Fatalf("grid job 1 state %s: %+v", st.State, st.Specs)
	}
	for wl, workers := range byWorkload(rig) {
		if len(workers) != 1 {
			t.Errorf("workload %s ran on %d workers, want its whole design sweep on one", wl, len(workers))
		}
	}
	hits1, misses1 := ckptTotals(rig)
	if misses1 != 2 {
		t.Errorf("job 1 built %d checkpoints across the fleet, want exactly 2 (one per workload)", misses1)
	}
	if hits1 != 2 {
		t.Errorf("job 1 saw %d checkpoint hits, want 2 (second design of each workload)", hits1)
	}

	// Job 2: the same workloads under different designs must land on
	// the same workers and reuse their cached checkpoints — cross-job
	// cache reuse, no new checkpoint builds anywhere.
	acc2, err := cl.Submit(ctx, api.JobRequest{Grid: ffwdGrid("T2", "M8")})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, cl, acc2.ID); st.State != api.StateDone {
		t.Fatalf("grid job 2 state %s: %+v", st.State, st.Specs)
	}
	for wl, workers := range byWorkload(rig) {
		if len(workers) != 1 {
			t.Errorf("after job 2, workload %s has run on %d workers, want 1", wl, len(workers))
		}
	}
	hits2, misses2 := ckptTotals(rig)
	if misses2 != misses1 {
		t.Errorf("job 2 built %d new checkpoints, want 0 (cross-job reuse)", misses2-misses1)
	}
	if hits2 <= hits1 {
		t.Errorf("job 2 did not grow checkpoint hits (%d -> %d)", hits1, hits2)
	}
}

// TestFleetAffinityStableAcrossCoordinators: placement is a pure
// function of (affinity key, worker set), so a brand-new coordinator
// over the same fleet assigns the same specs to the same workers —
// restarting hbatc keeps every worker's caches relevant.
func TestFleetAffinityStableAcrossCoordinators(t *testing.T) {
	guardGoroutines(t)
	rig := fleettest.New(t, 3)
	ctx := context.Background()

	// Spread across the fleet: many seeds, each its own affinity group.
	req := api.JobRequest{Specs: seedSpecs(10)}

	placement := func(label string) map[string]string {
		_, cl, _ := newCoord(t, rig, nil)
		acc, err := cl.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		st := waitJob(t, cl, acc.ID)
		if st.State != api.StateDone {
			t.Fatalf("%s job state %s: %+v", label, st.State, st.Specs)
		}
		out := make(map[string]string, len(st.Specs))
		for _, s := range st.Specs {
			out[s.SpecKey] = s.Worker
		}
		return out
	}

	first := placement("first coordinator")
	second := placement("second coordinator")

	same := 0
	for key, w := range first {
		if second[key] == w {
			same++
		}
	}
	if pct := 100 * same / len(first); pct < 90 {
		t.Errorf("only %d%% of specs kept their worker across a coordinator restart, want >= 90%%", pct)
	}

	// The second run never re-simulated anything: every spec was a memo
	// hit on the worker that already ran it.
	var misses uint64
	for _, w := range rig.Workers {
		misses += w.Engine.CacheStats().SpecMisses
	}
	if int(misses) != len(engineRunsOnce(rig)) {
		t.Logf("spec misses across fleet: %d (informational)", misses)
	}
	for key := range first {
		if !engineRanKey(rig, key) {
			t.Errorf("spec %s never appears in any engine run log", key)
		}
	}
}

// engineRunsOnce returns the distinct spec hashes simulated fleet-wide.
func engineRunsOnce(rig *fleettest.Rig) map[string]bool {
	keys := make(map[string]bool)
	for _, w := range rig.Workers {
		for _, rec := range w.Engine.RunLog() {
			keys[rec.SpecHash] = true
		}
	}
	return keys
}

func engineRanKey(rig *fleettest.Rig, key string) bool {
	return engineRunsOnce(rig)[key]
}
