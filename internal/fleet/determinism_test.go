package fleet_test

// End-to-end determinism: the same spec must render byte-identical
// artifacts whether simulated by a local engine, a single hbatd
// worker, or a 3-worker fleet behind a coordinator — and one W3C
// trace id must thread from the submitting client through the
// coordinator into the worker engines' run records. This is the
// property that makes the coordinator transparent: hbat.Dial cannot
// tell (and must not care) what is on the other end.

import (
	"bytes"
	"context"
	"testing"

	"hbat"
	"hbat/api"
	"hbat/internal/engine"
	"hbat/internal/fleet/fleettest"
	"hbat/internal/runspan"
)

// detSpecs is the cross-tier spec set: distinct workloads and designs
// so the 3-worker fleet actually shards.
func detSpecs() []api.SimOptions {
	return []api.SimOptions{
		{CommonOptions: api.CommonOptions{Scale: "test", Seed: 1}, Workload: "compress", Design: "T4"},
		{CommonOptions: api.CommonOptions{Scale: "test", Seed: 2}, Workload: "xlisp", Design: "T2"},
		{CommonOptions: api.CommonOptions{Scale: "test", Seed: 3}, Workload: "espresso", Design: "M8"},
	}
}

// localArtifacts renders every spec through a fresh local engine — the
// ground truth the remote tiers must reproduce byte for byte.
func localArtifacts(t *testing.T, specs []api.SimOptions) map[string][]byte {
	t.Helper()
	eng := engine.New()
	out := make(map[string][]byte, len(specs))
	for _, o := range specs {
		spec, err := engine.SpecFromWire(o)
		if err != nil {
			t.Fatal(err)
		}
		res := eng.Run(context.Background(), spec)
		if res.Err != nil {
			t.Fatalf("local run %s: %v", spec.String(), res.Err)
		}
		out[spec.Hash()] = engine.Artifact(engine.Wire(res))
	}
	return out
}

// fleetArtifacts submits the specs to a coordinator over n workers
// with a caller-minted traceparent and returns the fetched artifacts,
// asserting the trace id threads through to the worker engines.
func fleetArtifacts(t *testing.T, n int, specs []api.SimOptions) map[string][]byte {
	t.Helper()
	rig := fleettest.New(t, n)
	_, cl, _ := newCoord(t, rig, nil)
	ctx := context.Background()

	tc := runspan.NewTraceContext()
	acc, err := cl.Submit(ctx, api.JobRequest{Specs: specs, Traceparent: tc.Traceparent()})
	if err != nil {
		t.Fatal(err)
	}
	if acc.TraceID != tc.TraceID {
		t.Errorf("%d-worker job adopted trace %s, want the client's %s", n, acc.TraceID, tc.TraceID)
	}
	st := waitJob(t, cl, acc.ID)
	if st.State != api.StateDone {
		t.Fatalf("%d-worker job state %s: %+v", n, st.State, st.Specs)
	}
	if st.TraceID != tc.TraceID {
		t.Errorf("%d-worker job status trace %s, want %s", n, st.TraceID, tc.TraceID)
	}

	// The trace reaches the metal: some worker engine recorded a run
	// under the client's trace id (coordinator → worker → engine).
	traced := false
	for _, w := range rig.Workers {
		for _, rec := range w.Engine.RunLog() {
			if rec.TraceID == tc.TraceID {
				traced = true
			}
		}
	}
	if !traced {
		t.Errorf("no worker engine run record carries the client trace id %s", tc.TraceID)
	}

	out := make(map[string][]byte, len(st.Specs))
	for _, s := range st.Specs {
		data, _, err := cl.Result(ctx, s.SpecKey)
		if err != nil {
			t.Fatalf("fetch %s from %d-worker fleet: %v", s.SpecKey, n, err)
		}
		if sha := engine.ArtifactSHA256(data); sha != s.SHA256 {
			t.Errorf("%d-worker artifact %s hashes to %s, status says %s", n, s.SpecKey, sha, s.SHA256)
		}
		out[s.SpecKey] = data
	}
	return out
}

func TestFleetDeterminismAcrossTiers(t *testing.T) {
	guardGoroutines(t)
	specs := detSpecs()
	local := localArtifacts(t, specs)
	single := fleetArtifacts(t, 1, specs)
	fleet3 := fleetArtifacts(t, 3, specs)

	if len(single) != len(local) || len(fleet3) != len(local) {
		t.Fatalf("artifact counts differ: local %d, 1-worker %d, 3-worker %d",
			len(local), len(single), len(fleet3))
	}
	for key, want := range local {
		if got, ok := single[key]; !ok || !bytes.Equal(got, want) {
			t.Errorf("spec %s: 1-worker artifact differs from local (present: %v)", key, ok)
		}
		if got, ok := fleet3[key]; !ok || !bytes.Equal(got, want) {
			t.Errorf("spec %s: 3-worker artifact differs from local (present: %v)", key, ok)
		}
	}
}

// TestFleetDialTransparency: hbat.Dial against a coordinator behaves
// exactly like dialing one worker — remote mode, a populated TraceID,
// and the same artifact bytes a local simulation renders.
func TestFleetDialTransparency(t *testing.T) {
	guardGoroutines(t)
	rig := fleettest.New(t, 3)
	_, cl, _ := newCoord(t, rig, nil)

	srvURL := cl.Base
	fab, err := hbat.Dial(context.Background(), srvURL)
	if err != nil {
		t.Fatal(err)
	}
	if !fab.Remote() {
		t.Fatalf("Dial(%s) fell back to local mode: %v", srvURL, fab.FallbackErr())
	}

	o := hbat.Options{
		CommonOptions: hbat.CommonOptions{Scale: "test", Seed: 4},
		Workload:      "compress",
		Design:        "I8",
	}
	r, err := fab.Simulate(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if r.TraceID == "" {
		t.Error("remote result through the coordinator has no TraceID")
	}

	spec, err := engine.SpecFromWire(api.SimOptions{
		CommonOptions: api.CommonOptions{Scale: "test", Seed: 4},
		Workload:      "compress", Design: "I8",
	})
	if err != nil {
		t.Fatal(err)
	}
	res := engine.New().Run(context.Background(), spec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if want := engine.Artifact(engine.Wire(res)); !bytes.Equal(r.Artifact(), want) {
		t.Error("artifact via hbat.Dial(coordinator) differs from a local simulation")
	}
}
