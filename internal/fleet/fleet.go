// Package fleet is the sweep fabric's coordinator tier: one hbatc
// process that fans v1 jobs out across many hbatd workers. It speaks
// the exact same wire contract as a single worker — hbat.Dial and curl
// cannot tell the difference — but behind the API it keeps a live
// worker registry (static -worker list plus registrations, health-
// probed into an up/draining/down state machine), shards expanded
// specs across live workers by rendezvous hashing on a checkpoint-
// affinity key, retries failed or timed-out specs on a different
// worker with capped exponential backoff, and serves results through
// its own content-addressed store tier filled exactly once from
// whichever worker computed each artifact.
//
// Sharding uses rendezvous (highest-random-weight) hashing on the
// spec's affinity key — workload, budget, scale, page size, fast-
// forward depth, and seed, deliberately NOT the design — so every
// design of one workload lands on the same worker and that worker's
// checkpoint and program-build caches stay hot across the whole grid.
// Identical specs trivially share an affinity key, so duplicates land
// on one worker and collapse into its engine's singleflight. When a
// worker dies, only its keys re-rank onto survivors; the rest of the
// fleet keeps its assignments (the rendezvous property), which is what
// keeps caches warm through churn.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"sort"
	"sync"
	"time"

	"hbat/api"
	"hbat/internal/engine"
	"hbat/internal/runspan"
	"hbat/internal/store"
	"hbat/internal/transport"
)

// ErrNoWorkers is returned (as a 503 api.Error on the wire) when a
// job's specs cannot be dispatched because no live worker remains.
var ErrNoWorkers = errors.New("fleet: no live workers")

// Config wires a Coordinator. Store is required; Workers may start
// empty (workers can register over POST /v1/workers).
type Config struct {
	// Workers are the static worker base URLs ("http://host:port")
	// probed from startup.
	Workers []string
	// Store is the coordinator's own artifact tier; results fetched
	// from workers are filed here once and served locally after.
	Store *store.Store
	// Client, when non-nil, builds the api.Client for a worker address
	// — the test seam. The default is api.NewClient with
	// RequestTimeout applied.
	Client func(addr string) *api.Client

	// ProbeEvery is the health-probe period (default 1s).
	ProbeEvery time.Duration
	// ProbeTimeout bounds one /ready or /v1/manifest probe (default
	// 500ms).
	ProbeTimeout time.Duration
	// DownAfter is the consecutive-failure count that marks a worker
	// down (default 3). A single successful probe brings it back up.
	DownAfter int

	// RequestTimeout bounds each HTTP request to a worker (default 10s)
	// — a hung worker fails one request at a time instead of wedging a
	// job forever.
	RequestTimeout time.Duration
	// BatchTimeout bounds one dispatched batch end to end (default
	// 2m); a batch that neither completes nor fails by then counts as
	// timed out and its unfinished specs retry elsewhere.
	BatchTimeout time.Duration
	// RetryMax is the attempt cap per spec (default 3: one dispatch
	// plus two retries).
	RetryMax int
	// RetryBackoff is the base backoff between retry waves (default
	// 50ms), doubling per wave and capped at 32x.
	RetryBackoff time.Duration

	// TenantJobs, when > 0, bounds concurrently open jobs per tenant.
	TenantJobs int
	// MaxSpecs, when > 0, bounds specs per job (default 1024).
	MaxSpecs int
	// Logger receives job and fleet transitions.
	Logger *slog.Logger
	// Spans, when non-nil, records the coordinator's own span tree:
	// job roots, per-batch dispatch spans, retry spans, and result
	// fetches, all under the client's propagated trace id.
	Spans *runspan.Tracer
}

// worker is one registry entry. state transitions are driven by the
// prober; dispatched/retried feed the fleet metrics.
type worker struct {
	addr   string
	client *api.Client

	mu         sync.Mutex
	state      string // api.WorkerUp | WorkerDraining | WorkerDown
	tool       string
	fails      int
	lastProbe  time.Time
	dispatched uint64
}

func (w *worker) snapshot() api.Worker {
	w.mu.Lock()
	defer w.mu.Unlock()
	age := int64(-1)
	if !w.lastProbe.IsZero() {
		age = time.Since(w.lastProbe).Milliseconds()
	}
	return api.Worker{
		Addr: w.addr, State: w.state, Tool: w.tool, Fails: w.fails,
		LastProbeMs: age,
	}
}

// Coordinator is a running fleet front end. Create with New, mount
// Handler, stop with Shutdown.
type Coordinator struct {
	cfg    Config
	red    transport.RED
	filler *store.Filler

	mu        sync.Mutex
	workers   map[string]*worker
	jobs      map[string]*job
	byTenant  map[string]int
	draining  bool
	retries   uint64
	noWorkers uint64

	probeCancel context.CancelFunc
	probeDone   chan struct{}
	jobWG       sync.WaitGroup
}

// New builds the coordinator, registers the static workers, and starts
// the prober. Workers start in the down state and are admitted to the
// shard ring by their first successful probe (which New performs
// synchronously once, so a fleet whose workers are already serving is
// dispatchable immediately).
func New(cfg Config) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, errors.New("fleet: Config.Store is required")
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 3
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.BatchTimeout <= 0 {
		cfg.BatchTimeout = 2 * time.Minute
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.MaxSpecs <= 0 {
		cfg.MaxSpecs = 1024
	}
	c := &Coordinator{
		cfg:      cfg,
		workers:  make(map[string]*worker),
		jobs:     make(map[string]*job),
		byTenant: make(map[string]int),
	}
	c.red.Prefix = "hbat_fleet"
	c.filler = &store.Filler{Store: cfg.Store, Fetch: c.fetchFromFleet}
	for _, addr := range cfg.Workers {
		c.addWorker(addr)
	}
	c.probeAll(context.Background())
	probeCtx, cancel := context.WithCancel(context.Background())
	c.probeCancel = cancel
	c.probeDone = make(chan struct{})
	go c.probeLoop(probeCtx)
	return c, nil
}

func (c *Coordinator) log() *slog.Logger {
	if c.cfg.Logger != nil {
		return c.cfg.Logger
	}
	return slog.New(slog.DiscardHandler)
}

func (c *Coordinator) newClient(addr string) *api.Client {
	if c.cfg.Client != nil {
		cl := c.cfg.Client(addr)
		if cl.Timeout == 0 {
			cl.Timeout = c.cfg.RequestTimeout
		}
		return cl
	}
	cl := api.NewClient(addr)
	cl.Timeout = c.cfg.RequestTimeout
	return cl
}

// addWorker registers addr (idempotent) and returns its entry.
func (c *Coordinator) addWorker(addr string) *worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[addr]; ok {
		return w
	}
	w := &worker{addr: addr, client: c.newClient(addr), state: api.WorkerDown}
	c.workers[addr] = w
	return w
}

// AddWorker registers a worker address at runtime and probes it
// immediately, so a registration is dispatchable as soon as the call
// returns (when the worker is healthy).
func (c *Coordinator) AddWorker(ctx context.Context, addr string) api.Worker {
	w := c.addWorker(addr)
	c.probeWorker(ctx, w)
	return w.snapshot()
}

// probeLoop drives the health state machine until Shutdown.
func (c *Coordinator) probeLoop(ctx context.Context) {
	defer close(c.probeDone)
	tick := time.NewTicker(c.cfg.ProbeEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			c.probeAll(ctx)
		}
	}
}

func (c *Coordinator) probeAll(ctx context.Context) {
	c.mu.Lock()
	ws := make([]*worker, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			c.probeWorker(ctx, w)
		}(w)
	}
	wg.Wait()
}

// probeWorker runs one /ready (+ first-contact /v1/manifest) probe and
// advances the worker's state machine: 200 → up, 503 → draining
// (finishing in-flight work, not accepting new), probe error → fails++
// and down at DownAfter consecutive failures.
func (c *Coordinator) probeWorker(ctx context.Context, w *worker) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	ready, err := w.client.Ready(pctx)

	w.mu.Lock()
	prev := w.state
	w.lastProbe = time.Now()
	switch {
	case err != nil:
		w.fails++
		if w.fails >= c.cfg.DownAfter || prev == api.WorkerDown {
			w.state = api.WorkerDown
		}
	case ready:
		w.fails = 0
		w.state = api.WorkerUp
	default:
		w.fails = 0
		w.state = api.WorkerDraining
	}
	state, needTool := w.state, w.tool == "" && err == nil
	w.mu.Unlock()

	if needTool {
		mctx, mcancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
		tool, merr := w.client.Manifest(mctx)
		mcancel()
		if merr == nil {
			w.mu.Lock()
			w.tool = tool
			w.mu.Unlock()
		}
	}
	if state != prev {
		c.log().Info("worker state", "worker", w.addr, "from", prev, "to", state)
	}
}

// live returns the workers currently eligible for new dispatches.
func (c *Coordinator) live() []*worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ws []*worker
	for _, w := range c.workers {
		w.mu.Lock()
		up := w.state == api.WorkerUp
		w.mu.Unlock()
		if up {
			ws = append(ws, w)
		}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].addr < ws[j].addr })
	return ws
}

// affinityKey is the rendezvous input: everything that names a
// worker's warm checkpoint/build state for a spec — and not the
// design, so a whole design sweep of one workload shares a worker.
func affinityKey(spec engine.RunSpec) string {
	return fmt.Sprintf("%s|%v|%d|%d|%d|%d",
		spec.Workload, spec.Budget, spec.Scale, spec.PageSize, spec.FastForward, spec.Seed)
}

// rank orders workers for key by rendezvous (highest-random-weight)
// hashing: every (key, worker) pair gets an independent score and the
// key prefers workers in descending score order. Removing one worker
// only ever moves that worker's keys.
func rank(key string, ws []*worker) []*worker {
	type scored struct {
		w *worker
		s uint64
	}
	out := make([]scored, len(ws))
	for i, w := range ws {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{0})
		h.Write([]byte(w.addr))
		out[i] = scored{w: w, s: h.Sum64()}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].s != out[j].s {
			return out[i].s > out[j].s
		}
		return out[i].w.addr < out[j].w.addr
	})
	ranked := make([]*worker, len(out))
	for i, sc := range out {
		ranked[i] = sc.w
	}
	return ranked
}

// Accepting reports whether the coordinator admits new jobs — the
// /ready answer.
func (c *Coordinator) Accepting() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.draining
}

// WorkersSnapshot returns the registry for GET /v1/workers, sorted by
// address.
func (c *Coordinator) WorkersSnapshot() []api.Worker {
	c.mu.Lock()
	ws := make([]*worker, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	sort.Slice(ws, func(i, j int) bool { return ws[i].addr < ws[j].addr })
	out := make([]api.Worker, len(ws))
	for i, w := range ws {
		out[i] = w.snapshot()
	}
	return out
}

// Shutdown drains the coordinator: no new jobs are admitted, open jobs
// run to completion or ctx expiry, and the prober stops.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		<-c.probeDone
		return nil
	}
	c.draining = true
	open := make([]*job, 0, len(c.jobs))
	for _, j := range c.jobs {
		open = append(open, j)
	}
	c.mu.Unlock()
	c.probeCancel()
	for _, j := range open {
		select {
		case <-j.finished:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	done := make(chan struct{})
	go func() { c.jobWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	<-c.probeDone
	return nil
}

// fetchFromFleet is the store Filler's remote source: it asks live
// workers for the artifact in rendezvous order for the key, so the
// worker most likely to hold it is asked first.
func (c *Coordinator) fetchFromFleet(ctx context.Context, key string) ([]byte, error) {
	ws := c.live()
	if len(ws) == 0 {
		return nil, ErrNoWorkers
	}
	var lastErr error
	for _, w := range rank(key, ws) {
		data, _, err := w.client.Result(ctx, key)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("fleet: no worker holds %s: %w", key, lastErr)
}

// Results serves a stored (or fleet-fillable) artifact — the handler's
// and tests' read path through the coordinator store tier.
func (c *Coordinator) Results(ctx context.Context, key string) ([]byte, string, error) {
	return c.filler.Get(ctx, key)
}
