package fleet_test

// The fleet coordinator's fault-injection battery: every test spins
// real hbatd worker stacks through the fleettest rig, drives them
// through a real coordinator over loopback HTTP, and injects the
// faults a production fleet meets — crash mid-spec, hang, slow,
// corrupt artifact bytes, graceful drain mid-job, and the whole fleet
// going dark. The invariants under test:
//
//   - jobs complete with verifiable artifacts despite single-worker
//     faults (the retry machinery re-runs work elsewhere);
//   - no spec is submitted to two workers unless the coordinator
//     recorded a retry for it (Attempts > 1 and a "retry" span);
//   - all workers down is a typed, fast 503 — not a hang;
//   - nothing leaks goroutines, under -race.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"hbat/api"
	"hbat/internal/engine"
	"hbat/internal/fleet"
	"hbat/internal/fleet/fleettest"
	"hbat/internal/runspan"
	"hbat/internal/store"
)

// guardGoroutines registers a leak check that runs after every other
// cleanup (rig teardown, coordinator shutdown): the goroutine count
// must return to near its pre-test level within a polling deadline.
func guardGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before+3 {
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	})
}

// newCoord builds a coordinator over the rig's workers with test-speed
// probing and retries, serves it over loopback, and returns an API
// client against it plus the coordinator's span tracer.
func newCoord(t *testing.T, rig *fleettest.Rig, mod func(*fleet.Config)) (*fleet.Coordinator, *api.Client, *runspan.Tracer) {
	t.Helper()
	st, err := store.New(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tracer := runspan.New(runspan.Config{})
	cfg := fleet.Config{
		Workers:        rig.Addrs(),
		Store:          st,
		ProbeEvery:     25 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		DownAfter:      2,
		RequestTimeout: 2 * time.Second,
		BatchTimeout:   30 * time.Second,
		RetryMax:       3,
		RetryBackoff:   10 * time.Millisecond,
		Spans:          tracer,
	}
	if mod != nil {
		mod(&cfg)
	}
	coord, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := coord.Shutdown(ctx); err != nil {
			t.Errorf("coordinator shutdown: %v", err)
		}
		srv.Close()
	})
	return coord, api.NewClient(srv.URL), tracer
}

// seedSpecs returns n distinct cheap specs (one per seed), each its
// own affinity group so they spread across the fleet.
func seedSpecs(n int) []api.SimOptions {
	return seedSpecsScale(n, "test")
}

// seedSpecsScale is seedSpecs at a chosen scale — fault tests that
// must catch a worker mid-simulation use "small" (~150ms a spec, a
// real window) where everything else stays on the fast "test" scale.
func seedSpecsScale(n int, scale string) []api.SimOptions {
	specs := make([]api.SimOptions, n)
	for i := range specs {
		specs[i] = api.SimOptions{
			CommonOptions: api.CommonOptions{Scale: scale, Seed: uint64(i + 1)},
			Workload:      "compress",
			Design:        "T4",
		}
	}
	return specs
}

// waitJob waits for a job's terminal status.
func waitJob(t *testing.T, cl *api.Client, id string) api.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := cl.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return st
}

// assertNoDuplicateRuns checks the battery's core invariant: a spec
// submitted to more than one worker must carry a recorded retry.
func assertNoDuplicateRuns(t *testing.T, rig *fleettest.Rig, st api.JobStatus) {
	t.Helper()
	attempts := make(map[string]int)
	for _, s := range st.Specs {
		if s.Attempts > attempts[s.SpecKey] {
			attempts[s.SpecKey] = s.Attempts
		}
	}
	for key, workers := range rig.TotalSubmissions() {
		if workers > 1 && attempts[key] < 2 {
			t.Errorf("spec %s was submitted to %d workers with only %d recorded attempts",
				key, workers, attempts[key])
		}
	}
}

// assertArtifacts fetches every done spec's artifact from the
// coordinator and verifies it hashes to the reported SHA-256.
func assertArtifacts(t *testing.T, cl *api.Client, st api.JobStatus) {
	t.Helper()
	ctx := context.Background()
	for _, s := range st.Specs {
		if s.State != api.StateDone {
			continue
		}
		data, etag, err := cl.Result(ctx, s.SpecKey)
		if err != nil {
			t.Errorf("result %s: %v", s.SpecKey, err)
			continue
		}
		if sha := engine.ArtifactSHA256(data); sha != s.SHA256 || etag != s.SHA256 {
			t.Errorf("spec %s: artifact sha %s, etag %s, status sha %s", s.SpecKey, sha, etag, s.SHA256)
		}
	}
}

// retrySpans returns the coordinator's recorded retry spans for a
// trace, keyed by nothing — callers assert on count and attrs.
func retrySpans(tracer *runspan.Tracer, traceID string) []runspan.SpanData {
	var out []runspan.SpanData
	for _, d := range tracer.SpansForTrace(traceID) {
		if d.Name == "retry" {
			out = append(out, d)
		}
	}
	return out
}

func assertRetrySpans(t *testing.T, tracer *runspan.Tracer, traceID string, wantSome bool) {
	t.Helper()
	spans := retrySpans(tracer, traceID)
	if wantSome && len(spans) == 0 {
		t.Error("no retry spans recorded in the coordinator journal")
	}
	if !wantSome && len(spans) > 0 {
		t.Errorf("unexpected retry spans: %d", len(spans))
	}
	for _, d := range spans {
		if d.Attrs["attempt"] == "" || d.Attrs["worker"] == "" || d.Attrs["spec_key"] == "" {
			t.Errorf("retry span missing attrs: %+v", d.Attrs)
		}
	}
}

// pollStatus polls a job until cond holds (or the deadline passes).
func pollStatus(t *testing.T, cl *api.Client, id string, d time.Duration, cond func(api.JobStatus) bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	for {
		st, err := cl.Job(ctx, id)
		if err == nil && cond(st) {
			return
		}
		select {
		case <-ctx.Done():
			t.Fatalf("condition never held for job %s", id)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestFleetCrashMidSpec kills a worker (listener and connections
// severed, like kill -9) while its engine is mid-simulation. The
// coordinator must retry that worker's unfinished specs elsewhere and
// still complete the job with verifiable artifacts.
func TestFleetCrashMidSpec(t *testing.T) {
	guardGoroutines(t)
	rig := fleettest.New(t, 3)
	_, cl, tracer := newCoord(t, rig, nil)

	ctx := context.Background()
	acc, err := cl.Submit(ctx, api.JobRequest{Specs: seedSpecsScale(8, "small")})
	if err != nil {
		t.Fatal(err)
	}

	// Crash the first worker caught mid-simulation: at "small" scale a
	// spec runs long enough that the poll reliably lands inside one.
	crashed := ""
	deadline := time.Now().Add(10 * time.Second)
	for crashed == "" && time.Now().Before(deadline) {
		for _, w := range rig.Workers {
			if w.Engine.State().Active > 0 {
				w.Crash()
				crashed = w.Addr
				break
			}
		}
	}
	if crashed == "" {
		t.Fatal("no worker was ever observed mid-simulation")
	}

	st := waitJob(t, cl, acc.ID)
	if st.State != api.StateDone {
		t.Fatalf("job state %s after crash, want done: %+v", st.State, st.Specs)
	}
	retried := 0
	for _, s := range st.Specs {
		if s.Attempts > 1 {
			retried++
			if s.Worker == crashed {
				t.Errorf("spec %s retried back onto the crashed worker", s.SpecKey)
			}
		}
	}
	if retried == 0 {
		t.Error("crash mid-spec caused no retries")
	}
	assertRetrySpans(t, tracer, acc.TraceID, true)
	assertNoDuplicateRuns(t, rig, st)
	assertArtifacts(t, cl, st)
}

// TestFleetHungWorker parks every request on the only worker: the
// coordinator's per-request timeout must fail the batch (not hang the
// job), and the retry after the fault clears must complete it. The
// coordinator's merged SSE stream is watched throughout.
func TestFleetHungWorker(t *testing.T) {
	guardGoroutines(t)
	rig := fleettest.New(t, 1)
	w := rig.Workers[0]
	// The coordinator's first synchronous probe must see the worker
	// healthy (a never-probed-up worker would 503 the submission);
	// the hang starts after admission, before any dispatch.
	_, cl, tracer := newCoord(t, rig, func(cfg *fleet.Config) {
		cfg.RequestTimeout = 400 * time.Millisecond
		cfg.DownAfter = 1000 // hung probes must not demote the worker in this test
		cfg.RetryMax = 5
		cfg.RetryBackoff = 50 * time.Millisecond
	})
	w.SetFault(fleettest.FaultHang, 0)

	ctx := context.Background()
	// "small"-scale specs run long enough (~150ms) that the retry
	// dispatch's worker-stream subscription is live while they execute,
	// so forwarded span events reliably reach the merged stream.
	acc, err := cl.Submit(ctx, api.JobRequest{Specs: seedSpecsScale(3, "small")})
	if err != nil {
		t.Fatal(err)
	}

	// Watch the coordinator's merged event stream while the worker is
	// stuck: subscription now, events later, so nothing is lost.
	type seen struct {
		specs, spans, dones int
		workerAttr          bool
	}
	events := make(chan seen, 1)
	go func() {
		var got seen
		_ = cl.Events(context.Background(), acc.ID, func(ev api.Event) bool {
			switch ev.Type {
			case "spec":
				got.specs++
			case "span":
				got.spans++
				if ev.Span != nil && ev.Span.Attrs["worker"] != "" {
					got.workerAttr = true
				}
			case "done":
				got.dones++
			}
			return true
		})
		events <- got
	}()

	// First attempt times out against the hung worker; clear the fault
	// once the coordinator has recorded the failure, then the retry
	// lands on a healthy worker.
	pollStatus(t, cl, acc.ID, 10*time.Second, func(st api.JobStatus) bool {
		for _, s := range st.Specs {
			if s.Error != "" {
				return true
			}
		}
		return false
	})
	w.SetFault(fleettest.FaultNone, 0)

	st := waitJob(t, cl, acc.ID)
	if st.State != api.StateDone {
		t.Fatalf("job state %s after hang recovery, want done: %+v", st.State, st.Specs)
	}
	for _, s := range st.Specs {
		if s.Attempts < 2 {
			t.Errorf("spec %s completed with %d attempts; the hang should have cost at least one", s.SpecKey, s.Attempts)
		}
		if s.Error != "" {
			t.Errorf("done spec %s still carries error %q", s.SpecKey, s.Error)
		}
	}
	assertRetrySpans(t, tracer, acc.TraceID, true)
	assertNoDuplicateRuns(t, rig, st)
	assertArtifacts(t, cl, st)

	select {
	case got := <-events:
		if got.specs == 0 || got.dones != 1 {
			t.Errorf("merged SSE stream: %d spec events, %d done events; want >0 and exactly 1", got.specs, got.dones)
		}
		if got.spans == 0 || !got.workerAttr {
			t.Errorf("merged SSE stream carried %d span events (worker attr present: %v); want forwarded worker spans", got.spans, got.workerAttr)
		}
	case <-time.After(10 * time.Second):
		t.Error("merged SSE stream never terminated")
	}
}

// TestFleetSlowWorker: a uniformly slow worker completes without
// retries — slowness under the request timeout is not a fault.
func TestFleetSlowWorker(t *testing.T) {
	guardGoroutines(t)
	rig := fleettest.New(t, 1)
	rig.Workers[0].SetFault(fleettest.FaultSlow, 50*time.Millisecond)
	_, cl, tracer := newCoord(t, rig, nil)

	acc, err := cl.Submit(context.Background(), api.JobRequest{Specs: seedSpecs(3)})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, cl, acc.ID)
	if st.State != api.StateDone {
		t.Fatalf("job state %s behind a slow worker, want done", st.State)
	}
	for _, s := range st.Specs {
		if s.Attempts != 1 {
			t.Errorf("spec %s took %d attempts behind a merely-slow worker", s.SpecKey, s.Attempts)
		}
	}
	assertRetrySpans(t, tracer, acc.TraceID, false)
	assertNoDuplicateRuns(t, rig, st)
	assertArtifacts(t, cl, st)
}

// TestFleetCorruptArtifact: a worker that flips a byte in its artifact
// responses must never poison the coordinator store — the fetch is
// verified against the worker-reported hash, rejected, and the spec
// retried; once the fault clears, the re-fetch serves clean bytes.
func TestFleetCorruptArtifact(t *testing.T) {
	guardGoroutines(t)
	rig := fleettest.New(t, 1)
	w := rig.Workers[0]
	w.SetFault(fleettest.FaultCorrupt, 0)
	coord, cl, tracer := newCoord(t, rig, func(cfg *fleet.Config) {
		cfg.RetryMax = 5
		cfg.RetryBackoff = 50 * time.Millisecond
	})

	acc, err := cl.Submit(context.Background(), api.JobRequest{Specs: seedSpecs(2)})
	if err != nil {
		t.Fatal(err)
	}
	// Clear the fault only after the coordinator has committed a spec
	// to a retry wave (a "retry" span exists) — clearing on the first
	// visible error could let the same attempt's reconcile re-fetch
	// succeed and complete the batch without any retry.
	retryDeadline := time.Now().Add(10 * time.Second)
	for len(retrySpans(tracer, acc.TraceID)) == 0 {
		if time.Now().After(retryDeadline) {
			t.Fatal("coordinator never recorded a retry for the corrupt artifact")
		}
		time.Sleep(10 * time.Millisecond)
	}
	mid, err := cl.Job(context.Background(), acc.ID)
	if err != nil {
		t.Fatal(err)
	}
	sawCorrupt := false
	for _, s := range mid.Specs {
		if strings.Contains(s.Error, "corrupt artifact from") {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Errorf("no spec carries the corrupt-artifact error mid-retry: %+v", mid.Specs)
	}
	w.SetFault(fleettest.FaultNone, 0)

	st := waitJob(t, cl, acc.ID)
	if st.State != api.StateDone {
		t.Fatalf("job state %s after corrupt-artifact recovery, want done: %+v", st.State, st.Specs)
	}
	for _, s := range st.Specs {
		if s.Attempts < 2 {
			t.Errorf("spec %s: corrupt fetch should have cost an attempt, got %d", s.SpecKey, s.Attempts)
		}
	}
	assertRetrySpans(t, tracer, acc.TraceID, true)
	assertArtifacts(t, cl, st)

	// The corrupt bytes must never have been admitted: every stored
	// artifact still verifies through the coordinator's own read path.
	for _, s := range st.Specs {
		data, sha, err := coord.Results(context.Background(), s.SpecKey)
		if err != nil {
			t.Errorf("coordinator store read %s: %v", s.SpecKey, err)
			continue
		}
		if engine.ArtifactSHA256(data) != sha {
			t.Errorf("coordinator store holds corrupt bytes for %s", s.SpecKey)
		}
	}
}

// TestFleetDrainMidJob: a worker starting its own graceful shutdown
// mid-job finishes its in-flight batch; the prober demotes it to
// draining so later waves avoid it; the job completes cleanly.
func TestFleetDrainMidJob(t *testing.T) {
	guardGoroutines(t)
	rig := fleettest.New(t, 2)
	_, cl, _ := newCoord(t, rig, nil)

	acc, err := cl.Submit(context.Background(), api.JobRequest{Specs: seedSpecs(8)})
	if err != nil {
		t.Fatal(err)
	}

	var drained *fleettest.Worker
	deadline := time.Now().Add(5 * time.Second)
	for drained == nil && time.Now().Before(deadline) {
		for _, w := range rig.Workers {
			if len(w.Submitted()) > 0 {
				drained = w
				break
			}
		}
	}
	if drained == nil {
		t.Fatal("no worker ever received work")
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	drainErr := drained.Drain(dctx)

	st := waitJob(t, cl, acc.ID)
	if st.State != api.StateDone {
		t.Fatalf("job state %s through a drain, want done: %+v", st.State, st.Specs)
	}
	for _, s := range st.Specs {
		if s.State != api.StateDone {
			t.Errorf("spec %s state %s", s.SpecKey, s.State)
		}
	}
	assertNoDuplicateRuns(t, rig, st)
	assertArtifacts(t, cl, st)

	if err := <-drainErr; err != nil {
		t.Errorf("worker drain: %v", err)
	}
	// The registry reflects the drain: /ready 503 probes as draining.
	pollWorkers(t, cl, 5*time.Second, func(ws []api.Worker) bool {
		for _, w := range ws {
			if w.Addr == drained.Addr && w.State == api.WorkerDraining {
				return true
			}
		}
		return false
	})
}

func pollWorkers(t *testing.T, cl *api.Client, d time.Duration, cond func([]api.Worker) bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	for {
		fs, err := cl.Workers(ctx)
		if err == nil && cond(fs.Workers) {
			return
		}
		select {
		case <-ctx.Done():
			t.Fatal("worker registry never reached the expected state")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestFleetAllWorkersDown: with every worker dead, submission is a
// fast typed 503 — and a job in flight when the fleet dies fails its
// remaining specs with the same typed reason instead of hanging.
func TestFleetAllWorkersDown(t *testing.T) {
	guardGoroutines(t)
	rig := fleettest.New(t, 1)
	w := rig.Workers[0]
	_, cl, _ := newCoord(t, rig, func(cfg *fleet.Config) {
		cfg.RequestTimeout = 300 * time.Millisecond
		cfg.RetryMax = 6
		cfg.RetryBackoff = 100 * time.Millisecond
	})
	// Hang the (probed-up) worker before submitting so no spec can
	// complete before the crash below takes the whole fleet down.
	w.SetFault(fleettest.FaultHang, 0)

	// Submit while the worker still probes up, then kill it: the job
	// must fail with the typed no-workers reason once the prober
	// notices, not spin forever.
	acc, err := cl.Submit(context.Background(), api.JobRequest{Specs: seedSpecs(2)})
	if err != nil {
		t.Fatal(err)
	}
	w.Crash()
	st := waitJob(t, cl, acc.ID)
	if st.State != api.StateFailed {
		t.Fatalf("job state %s with the whole fleet down, want failed", st.State)
	}
	sawTyped := false
	for _, s := range st.Specs {
		if s.State != api.StateFailed {
			t.Errorf("spec %s state %s, want failed", s.SpecKey, s.State)
		}
		if strings.Contains(s.Error, fleet.ErrNoWorkers.Error()) {
			sawTyped = true
		}
	}
	if !sawTyped {
		t.Errorf("no spec carries the typed no-workers error; statuses: %+v", st.Specs)
	}

	// With the registry settled on down, a fresh submission is a fast
	// typed 503.
	pollWorkers(t, cl, 5*time.Second, func(ws []api.Worker) bool {
		return len(ws) == 1 && ws[0].State == api.WorkerDown
	})
	start := time.Now()
	_, err = cl.Submit(context.Background(), api.JobRequest{Specs: seedSpecs(1)})
	if err == nil {
		t.Fatal("submission with no live workers accepted")
	}
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit error = %v, want typed 503", err)
	}
	if !strings.Contains(apiErr.Message, fleet.ErrNoWorkers.Error()) {
		t.Fatalf("503 message %q does not carry the typed reason", apiErr.Message)
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("no-workers rejection took %v, want fast-fail", wall)
	}
}
