// Package fleettest is the fault-injection fabric rig behind the fleet
// coordinator's test battery: it spins N real hbatd worker stacks
// (engine, store, transport service, obs endpoints — the exact mount
// cmd/hbatd performs) on loopback httptest servers, wrapped in a
// middleware that can inject the faults a production fleet meets:
//
//   - Crash: the worker's listener and connections drop mid-request,
//     as a kill -9 would; the in-process engine may keep simulating,
//     but no byte leaves the worker again.
//   - Hang: requests park until the client gives up (or the fault is
//     cleared) — the stuck-but-alive worker.
//   - Slow: every request sleeps first — the overloaded worker.
//   - Corrupt: artifact responses come back with a flipped byte — the
//     worker (or path) that silently damages result bytes.
//   - Drain: the worker's own graceful shutdown mid-job, so /ready
//     reports 503 while in-flight work completes.
//
// The middleware also records every spec key each worker was asked to
// run, which is what lets the battery assert the no-duplicate-run
// invariant: no spec executes on two workers unless the coordinator
// recorded a retry for it.
package fleettest

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hbat/api"
	"hbat/internal/engine"
	"hbat/internal/obs"
	"hbat/internal/runspan"
	"hbat/internal/store"
	"hbat/internal/transport"
)

// Fault selects a worker's injected failure mode.
type Fault int

const (
	// FaultNone serves normally.
	FaultNone Fault = iota
	// FaultHang parks every request until the fault is cleared or the
	// client's context ends.
	FaultHang
	// FaultSlow delays every request by the rig's SlowBy.
	FaultSlow
	// FaultCorrupt flips a byte in every /v1/results response body.
	FaultCorrupt
)

// Worker is one live hbatd stack under test.
type Worker struct {
	// Addr is the worker's base URL ("http://127.0.0.1:port").
	Addr string
	// Engine/Store/Service are the worker's real internals — tests
	// reach in to time faults (engine.State().Active) and to assert
	// cache behaviour (engine.CacheStats().CkptHits).
	Engine  *engine.Engine
	Store   *store.Store
	Service *transport.Service
	// Tracer is the worker's span tracer (always on in the rig, so
	// worker journals exist for merged-timeline assertions).
	Tracer *runspan.Tracer

	srv    *httptest.Server
	mu     sync.Mutex
	fault  Fault
	slowBy time.Duration
	// hangers releases parked FaultHang requests when closed; replaced
	// on every SetFault so each hang wave has its own release.
	hangers chan struct{}
	// submitted counts submissions per spec key — the evidence for the
	// no-duplicate-run invariant.
	submitted map[string]int
	crashed   bool
}

// Rig is a loopback fleet of real workers.
type Rig struct {
	Workers []*Worker
	t       *testing.T
}

// New builds n workers and registers their teardown with t.Cleanup
// (drain with a bounded context, then close). Every worker traces
// spans into an in-memory journal.
func New(t *testing.T, n int) *Rig {
	t.Helper()
	r := &Rig{t: t}
	for i := 0; i < n; i++ {
		r.Workers = append(r.Workers, newWorker(t))
	}
	return r
}

// Addrs returns every worker's base URL, in creation order.
func (r *Rig) Addrs() []string {
	addrs := make([]string, len(r.Workers))
	for i, w := range r.Workers {
		addrs[i] = w.Addr
	}
	return addrs
}

func newWorker(t *testing.T) *Worker {
	t.Helper()
	eng := engine.New()
	st, err := store.New(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tracer := runspan.New(runspan.Config{})
	if err := tracer.SetJournal(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	// The engine shares the worker's tracer, exactly as obs.Flags.Setup
	// wires a real hbatd: engine "run" root spans feed the worker's SSE
	// span events, which the coordinator fans into its merged stream.
	eng.SetSpans(tracer)
	svc, err := transport.New(transport.Config{
		Engine: eng,
		Store:  st,
		Logger: slog.New(slog.DiscardHandler),
		Spans:  tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{
		Engine: eng, Store: st, Service: svc, Tracer: tracer,
		hangers:   make(chan struct{}),
		submitted: make(map[string]int),
	}

	// The exact two-table mount cmd/hbatd performs: /v1 job API next to
	// the obs endpoints, /ready tracking the engine's accepting state.
	mux := http.NewServeMux()
	mux.Handle("/v1/", svc.Handler())
	mux.Handle("/", obs.NewHandler(obs.Config{
		Engine: eng,
		Spans:  tracer,
		Extra:  svc.MetricsFamilies,
	}))
	w.srv = httptest.NewServer(w.middleware(mux))
	w.Addr = w.srv.URL

	t.Cleanup(func() {
		w.SetFault(FaultNone, 0) // release any parked hangs
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
		w.mu.Lock()
		crashed := w.crashed
		w.mu.Unlock()
		if !crashed {
			w.srv.Close()
		}
	})
	return w
}

// SetFault switches the worker's failure mode, releasing any requests
// parked by a previous FaultHang.
func (w *Worker) SetFault(f Fault, slowBy time.Duration) {
	w.mu.Lock()
	w.fault = f
	w.slowBy = slowBy
	close(w.hangers)
	w.hangers = make(chan struct{})
	w.mu.Unlock()
}

// Crash drops the worker like a kill -9: the listener closes and every
// open connection is severed. The in-process engine may finish what it
// was simulating, but the worker never answers again.
func (w *Worker) Crash() {
	w.mu.Lock()
	if w.crashed {
		w.mu.Unlock()
		return
	}
	w.crashed = true
	w.mu.Unlock()
	w.srv.Listener.Close()
	w.srv.CloseClientConnections()
}

// Drain starts the worker's own graceful shutdown in the background:
// /ready flips to 503 immediately, in-flight jobs complete.
func (w *Worker) Drain(ctx context.Context) <-chan error {
	done := make(chan error, 1)
	go func() { done <- w.Service.Shutdown(ctx) }()
	return done
}

// Submitted returns a copy of the per-spec-key submission counts this
// worker has seen.
func (w *Worker) Submitted() map[string]int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]int, len(w.submitted))
	for k, n := range w.submitted {
		out[k] = n
	}
	return out
}

// middleware injects the configured fault and records submissions.
func (w *Worker) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		fault, slowBy, hangers := w.fault, w.slowBy, w.hangers
		w.mu.Unlock()

		switch fault {
		case FaultHang:
			select {
			case <-hangers:
			case <-r.Context().Done():
				return
			}
		case FaultSlow:
			select {
			case <-time.After(slowBy):
			case <-r.Context().Done():
				return
			}
		}

		if r.Method == http.MethodPost && r.URL.Path == api.PathJobs {
			w.recordSubmission(r)
		}

		if fault == FaultCorrupt && strings.HasPrefix(r.URL.Path, api.PathResults) {
			rec := httptest.NewRecorder()
			next.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			if rec.Code == http.StatusOK && len(body) > 0 {
				body = append([]byte(nil), body...)
				body[len(body)/2] ^= 0x01
			}
			for k, vs := range rec.Header() {
				for _, v := range vs {
					rw.Header().Add(k, v)
				}
			}
			rw.WriteHeader(rec.Code)
			rw.Write(body)
			return
		}
		next.ServeHTTP(rw, r)
	})
}

// recordSubmission notes every spec key in a job submission, leaving
// the body intact for the real handler.
func (w *Worker) recordSubmission(r *http.Request) {
	body, err := io.ReadAll(r.Body)
	r.Body.Close()
	r.Body = io.NopCloser(bytes.NewReader(body))
	if err != nil {
		return
	}
	var req api.JobRequest
	if json.Unmarshal(body, &req) != nil {
		return
	}
	keys := make(map[string]bool)
	for _, o := range transport.ExpandRequest(&req) {
		if spec, err := engine.SpecFromWire(o); err == nil {
			keys[spec.Hash()] = true
		}
	}
	w.mu.Lock()
	for k := range keys {
		w.submitted[k]++
	}
	w.mu.Unlock()
}

// TotalSubmissions sums, per spec key, how many distinct workers were
// asked to run it — the left side of the no-duplicate-run invariant.
func (r *Rig) TotalSubmissions() map[string]int {
	totals := make(map[string]int)
	for _, w := range r.Workers {
		for k := range w.Submitted() {
			totals[k]++
		}
	}
	return totals
}
