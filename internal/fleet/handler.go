package fleet

// The coordinator's HTTP surface: the exact v1 contract hbatd serves
// (ping, jobs, events, spans, results, manifest) — clients cannot tell
// a coordinator from a worker — plus the fleet-only /v1/workers
// registry. Intake goes through the same transport helpers a worker
// uses, so a spec submitted to either lands in the same key space.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"hbat/api"
	"hbat/internal/engine"
	"hbat/internal/runspan"
	"hbat/internal/store"
	"hbat/internal/transport"
)

// Handler returns the coordinator's routing table wrapped in the
// hbat_fleet RED middleware. Mount at "/" or compose with obs.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathPing, c.handlePing)
	mux.HandleFunc(api.PathJobs, c.handleJobs)
	mux.HandleFunc(api.PathJobs+"/", c.handleJob)
	mux.HandleFunc(api.PathResults, c.handleResult)
	mux.HandleFunc(api.PathManifest, c.handleManifest)
	mux.HandleFunc(api.PathWorkers, c.handleWorkers)
	return c.red.Middleware(c.log(), mux)
}

func (c *Coordinator) handlePing(w http.ResponseWriter, r *http.Request) {
	transport.WriteJSON(w, http.StatusOK, map[string]string{"api": api.Version, "pong": "hbatc"})
}

func (c *Coordinator) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		transport.WriteErr(w, http.StatusMethodNotAllowed, "POST %s", api.PathJobs)
		return
	}
	var req api.JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		transport.WriteErr(w, http.StatusBadRequest, "bad job request: %v", err)
		return
	}
	ten := transport.ResolveTenant(r, &req)
	transport.Annotate(r.Context(), ten, "")
	wire := transport.ExpandRequest(&req)
	if len(wire) == 0 {
		transport.WriteErr(w, http.StatusBadRequest, "job has no specs")
		return
	}
	if len(wire) > c.cfg.MaxSpecs {
		transport.WriteErr(w, http.StatusRequestEntityTooLarge, "%d specs exceeds the %d-spec job limit", len(wire), c.cfg.MaxSpecs)
		return
	}
	runs, sts, err := transport.NormalizeSpecs(wire)
	if err != nil {
		transport.WriteErr(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if len(c.live()) == 0 {
		c.mu.Lock()
		c.noWorkers++
		c.mu.Unlock()
		transport.WriteErr(w, http.StatusServiceUnavailable, "%s", ErrNoWorkers.Error())
		return
	}

	traceID, parentSpan := transport.TraceIdentity(r, &req)
	j := &job{
		id:       newJobID(),
		tenant:   ten,
		traceID:  traceID,
		spanID:   runspan.NewSpanID(),
		wire:     wire,
		runs:     runs,
		specs:    sts,
		tried:    make([]map[string]bool, len(runs)),
		state:    api.StateQueued,
		subs:     make(map[uint64]chan api.Event),
		finished: make(chan struct{}),
	}
	transport.Annotate(r.Context(), "", traceID)

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		transport.WriteErr(w, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	if q := c.cfg.TenantJobs; q > 0 && c.byTenant[ten] >= q {
		c.mu.Unlock()
		transport.WriteErr(w, http.StatusTooManyRequests, "tenant %q has %d open jobs (limit %d)", ten, c.byTenant[ten], c.cfg.TenantJobs)
		return
	}
	c.byTenant[ten]++
	c.jobs[j.id] = j
	c.jobWG.Add(1)
	c.mu.Unlock()

	if tr := c.cfg.Spans; tr.Enabled() {
		j.trace = tr.NewTraceWith(j.traceID, j.spanID, parentSpan)
		j.root = tr.Start(j.trace, nil, "fleet_job").
			SetAttr("job", j.id).
			SetAttr("tenant", ten).
			SetAttr("specs", fmt.Sprintf("%d", len(j.specs)))
	}
	c.log().Info("fleet job accepted", "job", j.id, "tenant", ten,
		"specs", len(j.specs), "trace_id", j.traceID)

	acc := api.JobAccepted{
		API: api.Version, ID: j.id, Tenant: ten, Total: len(j.specs),
		StatusURL: api.PathJobs + "/" + j.id,
		EventsURL: api.PathJobs + "/" + j.id + "/events",
		TraceID:   j.traceID,
	}
	if c.cfg.Spans.Enabled() {
		acc.SpansURL = api.PathJobs + "/" + j.id + "/spans"
	}
	for i := range j.specs {
		acc.SpecKeys = append(acc.SpecKeys, j.specs[i].SpecKey)
	}
	go c.runJob(j)
	transport.WriteJSON(w, http.StatusAccepted, acc)
}

// handleJob serves GET /v1/jobs/{id}, /events, and /spans.
func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		transport.WriteErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, api.PathJobs+"/")
	id, sub, _ := strings.Cut(rest, "/")
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		transport.WriteErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	transport.Annotate(r.Context(), j.tenant, j.traceID)
	switch sub {
	case "":
		transport.WriteJSON(w, http.StatusOK, j.status())
	case "events":
		c.serveEvents(w, r, j)
	case "spans":
		if !c.cfg.Spans.Enabled() {
			transport.WriteErr(w, http.StatusNotFound, "span tracing is disabled on this server (start hbatc with -spans)")
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := c.cfg.Spans.WriteJournalTo(w, j.traceID); err != nil {
			c.log().Warn("span journal write failed", "job", j.id, "error", err.Error())
		}
	default:
		transport.WriteErr(w, http.StatusNotFound, "no such job endpoint %q", sub)
	}
}

// serveEvents streams the coordinator job's merged progress as SSE:
// its own spec completions and done event, plus every worker's span
// events relabeled with the worker that produced them.
func (c *Coordinator) serveEvents(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		transport.WriteErr(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	events, cancel := j.subscribe(64)
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()

	emit := func(ev api.Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-events:
			if !ok {
				st := j.status()
				emit(api.Event{Type: "done", Job: j.id, Done: st.Done, Total: st.Total})
				return
			}
			if !emit(ev) {
				return
			}
			if ev.Type == "done" {
				return
			}
		}
	}
}

// handleResult serves GET /v1/results/{speckey} through the
// coordinator's store tier, filling a local miss from the fleet.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		transport.WriteErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	key := strings.TrimPrefix(r.URL.Path, api.PathResults)
	if !store.Key(key) {
		transport.WriteErr(w, http.StatusBadRequest, "malformed spec key %q", key)
		return
	}
	data, sha, err := c.filler.Get(r.Context(), key)
	if err != nil {
		code := http.StatusNotFound
		if errors.Is(err, ErrNoWorkers) {
			code = http.StatusServiceUnavailable
		}
		transport.WriteErr(w, code, "no result for spec %s: %v", key, err)
		return
	}
	etag := `"` + sha + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/json")
	if match := r.Header.Get("If-None-Match"); match != "" && strings.Contains(match, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Write(data)
}

// handleManifest serves the coordinator's provenance manifest: it runs
// no simulations of its own, so Runs stays empty and Artifacts lists
// the store tier's holdings.
func (c *Coordinator) handleManifest(w http.ResponseWriter, r *http.Request) {
	man := engine.NewManifest("hbatc", time.Now())
	for _, key := range c.cfg.Store.Keys() {
		if data, _, ok := c.cfg.Store.Get(key); ok {
			man.AddArtifactBytes(key+".json", api.PathResults+key, data)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := man.WriteJSON(w); err != nil {
		c.log().Warn("manifest write failed", "error", err.Error())
	}
}

// handleWorkers serves the fleet registry: GET lists every registered
// worker with its probed state; POST registers a new worker address
// and probes it synchronously.
func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		transport.WriteJSON(w, http.StatusOK, api.FleetStatus{
			API: api.Version, Workers: c.WorkersSnapshot(),
		})
	case http.MethodPost:
		var reg api.WorkerRegistration
		if err := json.NewDecoder(r.Body).Decode(&reg); err != nil {
			transport.WriteErr(w, http.StatusBadRequest, "bad registration: %v", err)
			return
		}
		if !strings.HasPrefix(reg.Addr, "http://") && !strings.HasPrefix(reg.Addr, "https://") {
			transport.WriteErr(w, http.StatusBadRequest, "worker addr must be a base URL, got %q", reg.Addr)
			return
		}
		ws := c.AddWorker(r.Context(), strings.TrimSuffix(reg.Addr, "/"))
		c.log().Info("worker registered", "worker", ws.Addr, "state", ws.State)
		transport.WriteJSON(w, http.StatusOK, ws)
	default:
		transport.WriteErr(w, http.StatusMethodNotAllowed, "GET or POST %s", api.PathWorkers)
	}
}
