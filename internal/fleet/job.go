package fleet

// One coordinator job's life: specs shard to live workers by affinity
// rendezvous, each worker group goes out as one batch (a worker-side
// job), worker SSE streams fan back in as merged coordinator events,
// and each completed spec's artifact is fetched exactly once, verified
// against the worker-reported content hash, and filed into the
// coordinator store. A batch that errors, times out, or reports failed
// specs sends those specs into the next retry wave, which re-ranks
// them onto workers not yet tried — with capped exponential backoff
// between waves and a hard per-spec attempt cap. Workers that died
// mid-batch are (independently) demoted by the prober, so the next
// wave's live set no longer contains them: re-sharding on worker death
// falls out of rank() over the survivors.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"time"

	"hbat/api"
	"hbat/internal/engine"
	"hbat/internal/runspan"
)

// job is one submitted coordinator job.
type job struct {
	id      string
	tenant  string
	traceID string // 32-hex cross-process trace id, always set
	spanID  string // job root's wire span id; worker jobs parent under it
	trace   runspan.TraceID
	root    *runspan.Span

	wire []api.SimOptions // normalized inputs, index-aligned with runs
	runs []engine.RunSpec

	mu    sync.Mutex
	specs []api.SpecStatus
	tried []map[string]bool // worker addrs attempted, per spec
	done  int
	state string
	subs  map[uint64]chan api.Event
	// finished closes once every spec is terminal.
	finished chan struct{}
}

func newJobID() string {
	var b [8]byte
	rand.Read(b[:])
	return "f" + hex.EncodeToString(b[:])
}

func (j *job) status() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := api.JobStatus{
		API: api.Version, ID: j.id, Tenant: j.tenant,
		State: j.state, Done: j.done, Total: len(j.specs),
		Specs:   make([]api.SpecStatus, len(j.specs)),
		TraceID: j.traceID,
	}
	copy(st.Specs, j.specs)
	return st
}

// publish fans an event out to subscribers; sends never block.
func (j *job) publish(ev api.Event) {
	j.mu.Lock()
	j.publishLocked(ev)
	j.mu.Unlock()
}

func (j *job) publishLocked(ev api.Event) {
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers an event feed; an already-done job gets an
// immediate "done" and a closed channel. The cancel is idempotent.
func (j *job) subscribe(buf int) (<-chan api.Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan api.Event, buf)
	if j.done == len(j.specs) {
		ch <- api.Event{Type: "done", Job: j.id, Done: j.done, Total: len(j.specs)}
		close(ch)
		return ch, func() {}
	}
	id := uint64(len(j.subs)) + 1
	for {
		if _, taken := j.subs[id]; !taken {
			break
		}
		id++
	}
	j.subs[id] = ch
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(ch)
		}
		j.mu.Unlock()
	}
}

// specDone records one spec's terminal state and publishes it. Fields
// the dispatcher already set (Worker, Attempts) survive.
func (j *job) specDone(idx int, final api.SpecStatus) {
	j.mu.Lock()
	st := &j.specs[idx]
	if st.State == api.StateDone || st.State == api.StateFailed {
		j.mu.Unlock()
		return // duplicate terminal report (reconcile after stream)
	}
	st.State, st.Cached, st.StoreHit = final.State, final.Cached, final.StoreHit
	st.WallMs, st.Error = final.WallMs, final.Error
	st.ResultURL, st.SHA256 = final.ResultURL, final.SHA256
	j.done++
	done, total := j.done, len(j.specs)
	j.publishLocked(api.Event{Type: "spec", Job: j.id, Spec: cloneStatus(*st), Done: done, Total: total})
	j.mu.Unlock()
}

func cloneStatus(st api.SpecStatus) *api.SpecStatus { return &st }

// runJob drives a job to completion through retry waves.
func (c *Coordinator) runJob(j *job) {
	defer c.jobWG.Done()
	pending := make([]int, len(j.runs))
	for i := range pending {
		pending[i] = i
	}
	for wave := 0; len(pending) > 0; wave++ {
		if wave > 0 {
			time.Sleep(c.backoff(wave))
		}
		ws := c.live()
		if len(ws) == 0 {
			c.mu.Lock()
			c.noWorkers++
			c.mu.Unlock()
			c.failPending(j, pending, ErrNoWorkers.Error())
			break
		}

		// Group this wave's specs by their rendezvous-chosen worker: the
		// highest-ranked live worker not yet tried for the spec (all
		// tried → highest-ranked anyway; the attempt cap bounds it).
		groups := make(map[*worker][]int)
		for _, i := range pending {
			ranked := rank(affinityKey(j.runs[i]), ws)
			w := ranked[0]
			for _, cand := range ranked {
				if !j.tried[i][cand.addr] {
					w = cand
					break
				}
			}
			groups[w] = append(groups[w], i)
		}

		var mu sync.Mutex
		var failed []int
		var wg sync.WaitGroup
		for w, idxs := range groups {
			wg.Add(1)
			go func(w *worker, idxs []int) {
				defer wg.Done()
				f := c.dispatch(j, w, idxs)
				mu.Lock()
				failed = append(failed, f...)
				mu.Unlock()
			}(w, idxs)
		}
		wg.Wait()

		// Failed specs either retry on a different worker or, at the
		// attempt cap, fail terminally.
		pending = pending[:0]
		for _, i := range failed {
			j.mu.Lock()
			attempts := j.specs[i].Attempts
			lastWorker := j.specs[i].Worker
			key := j.specs[i].SpecKey
			lastErr := j.specs[i].Error
			j.mu.Unlock()
			if attempts >= c.cfg.RetryMax {
				msg := lastErr
				if msg == "" {
					msg = "all " + strconv.Itoa(attempts) + " attempts failed"
				}
				j.specDone(i, api.SpecStatus{State: api.StateFailed, Error: msg})
				continue
			}
			c.mu.Lock()
			c.retries++
			c.mu.Unlock()
			if sp := c.cfg.Spans.Start(j.trace, j.root, "retry"); sp != nil {
				sp.SetAttr("spec_key", key).
					SetAttr("attempt", strconv.Itoa(attempts+1)).
					SetAttr("worker", lastWorker).
					End()
			}
			c.log().Warn("spec retry", "job", j.id, "spec", key,
				"attempt", attempts+1, "failed_worker", lastWorker)
			pending = append(pending, i)
		}
	}
	c.finalize(j)
}

// backoff returns the pre-wave delay: RetryBackoff doubling per wave,
// capped at 32x.
func (c *Coordinator) backoff(wave int) time.Duration {
	if wave > 5 {
		wave = 5
	}
	return c.cfg.RetryBackoff << (wave - 1)
}

// failPending terminally fails every still-pending spec with msg.
func (c *Coordinator) failPending(j *job, pending []int, msg string) {
	for _, i := range pending {
		j.specDone(i, api.SpecStatus{State: api.StateFailed, Error: msg})
	}
}

// finalize computes the job's terminal state, emits the done event,
// and releases admission.
func (c *Coordinator) finalize(j *job) {
	j.mu.Lock()
	j.state = api.StateDone
	for i := range j.specs {
		if j.specs[i].State == api.StateFailed {
			j.state = api.StateFailed
			break
		}
	}
	done, total := j.done, len(j.specs)
	j.publishLocked(api.Event{Type: "done", Job: j.id, Done: done, Total: total})
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
	state := j.state
	j.mu.Unlock()

	j.root.End()
	close(j.finished)
	c.mu.Lock()
	c.byTenant[j.tenant]--
	if c.byTenant[j.tenant] <= 0 {
		delete(c.byTenant, j.tenant)
	}
	c.mu.Unlock()
	c.log().Info("job finished", "job", j.id, "tenant", j.tenant,
		"state", state, "specs", total, "trace_id", j.traceID)
}

// dispatch sends one batch of specs to one worker as a worker-side job
// and reconciles the outcome. It returns the indices that need another
// attempt: every index on batch-level failure (submit error, stream +
// status loss, timeout), or the subset that individually failed or
// came back with corrupt artifact bytes.
func (c *Coordinator) dispatch(j *job, w *worker, idxs []int) (failed []int) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.BatchTimeout)
	defer cancel()

	// Mark the attempt before any wire traffic, so a crash mid-flight
	// still shows where the spec was.
	byKey := make(map[string][]int, len(idxs))
	req := api.JobRequest{
		Tenant: j.tenant,
		// The coordinator job root is the remote parent: the worker's
		// own job span tree hangs under it, and the engine stamps the
		// shared trace id into its run records.
		Traceparent: "00-" + j.traceID + "-" + j.spanID + "-01",
	}
	j.mu.Lock()
	for _, i := range idxs {
		j.specs[i].State = api.StateRunning
		j.specs[i].Worker = w.addr
		j.specs[i].Attempts++
		if j.tried[i] == nil {
			j.tried[i] = make(map[string]bool, 2)
		}
		j.tried[i][w.addr] = true
		byKey[j.specs[i].SpecKey] = append(byKey[j.specs[i].SpecKey], i)
		req.Specs = append(req.Specs, j.wire[i])
	}
	if j.state == api.StateQueued {
		j.state = api.StateRunning
	}
	j.mu.Unlock()
	w.mu.Lock()
	w.dispatched += uint64(len(idxs))
	w.mu.Unlock()

	sp := c.cfg.Spans.Start(j.trace, j.root, "dispatch")
	if sp != nil {
		sp.SetAttr("worker", w.addr).SetAttr("specs", strconv.Itoa(len(idxs)))
	}
	defer func() {
		if sp != nil {
			sp.SetAttr("failed", strconv.Itoa(len(failed))).End()
		}
	}()

	acc, err := w.client.Submit(ctx, req)
	if err != nil {
		c.noteError(j, idxs, "submit to "+w.addr+": "+err.Error())
		return idxs
	}

	// Fan the worker's SSE stream into the coordinator job: spec
	// completions reconcile (and fetch artifacts) as they happen, and
	// worker span events forward relabeled so one merged stream shows
	// the whole fleet. The stream is lossy and may die with the worker;
	// the final status poll below reconciles whatever it missed.
	handled := make(map[string]bool, len(byKey))
	var hmu sync.Mutex
	_ = w.client.Events(ctx, acc.ID, func(ev api.Event) bool {
		switch ev.Type {
		case "span":
			if ev.Span != nil {
				span := *ev.Span
				if span.Attrs == nil {
					span.Attrs = map[string]string{}
				} else {
					cp := make(map[string]string, len(span.Attrs)+1)
					for k, v := range span.Attrs {
						cp[k] = v
					}
					span.Attrs = cp
				}
				span.Attrs["worker"] = w.addr
				j.publish(api.Event{Type: "span", Job: j.id, Span: &span})
			}
		case "spec":
			if ev.Spec != nil && ev.Spec.State == api.StateDone {
				hmu.Lock()
				seen := handled[ev.Spec.SpecKey]
				handled[ev.Spec.SpecKey] = true
				hmu.Unlock()
				if !seen {
					if is, ok := byKey[ev.Spec.SpecKey]; ok {
						c.completeSpec(ctx, j, w, is, *ev.Spec)
					}
				}
			}
		}
		return true
	})

	// Reconcile: the poll is the source of truth for every spec the
	// stream missed (or the whole batch, when the stream never ran).
	st, err := w.client.Wait(ctx, acc.ID)
	if err != nil {
		return c.unfinished(j, idxs, "worker "+w.addr+" lost mid-batch: "+err.Error())
	}
	final := make(map[string]api.SpecStatus, len(st.Specs))
	for _, s := range st.Specs {
		final[s.SpecKey] = s
	}
	for key, is := range byKey {
		s, ok := final[key]
		if !ok || (s.State != api.StateDone && s.State != api.StateFailed) {
			c.noteError(j, is, "worker "+w.addr+" never finished spec")
			failed = append(failed, is...)
			continue
		}
		if s.State == api.StateFailed {
			c.noteError(j, is, s.Error)
			failed = append(failed, is...)
			continue
		}
		failed = append(failed, c.completeSpec(ctx, j, w, is, s)...)
	}
	return failed
}

// noteError records msg on specs without terminalizing them (they stay
// eligible for retry; the message survives into a terminal failure).
func (c *Coordinator) noteError(j *job, idxs []int, msg string) {
	j.mu.Lock()
	for _, i := range idxs {
		if j.specs[i].State == api.StateRunning {
			j.specs[i].Error = msg
		}
	}
	j.mu.Unlock()
}

// unfinished returns the batch indices that are not yet terminal,
// noting err on them — the retry set after a batch-level loss.
func (c *Coordinator) unfinished(j *job, idxs []int, msg string) []int {
	j.mu.Lock()
	var open []int
	for _, i := range idxs {
		if st := j.specs[i].State; st != api.StateDone && st != api.StateFailed {
			j.specs[i].Error = msg
			open = append(open, i)
		}
	}
	j.mu.Unlock()
	return open
}

// completeSpec finishes one done spec reported by a worker: fetch the
// artifact once, verify it against the worker-reported content hash,
// file it into the coordinator store, and mark every index sharing the
// spec key done. A fetch or verification failure returns the indices
// for retry — corrupt bytes from one worker re-run elsewhere.
func (c *Coordinator) completeSpec(ctx context.Context, j *job, w *worker, idxs []int, s api.SpecStatus) (failed []int) {
	// Idempotence across stream + reconcile: terminal specs are skipped
	// inside specDone, but avoid double fetches up front too.
	j.mu.Lock()
	open := false
	for _, i := range idxs {
		if st := j.specs[i].State; st != api.StateDone && st != api.StateFailed {
			open = true
		}
	}
	j.mu.Unlock()
	if !open {
		return nil
	}
	sha, err := c.fileArtifact(ctx, j, w, s.SpecKey, s.SHA256)
	if err != nil {
		c.noteError(j, idxs, err.Error())
		return idxs
	}
	final := api.SpecStatus{
		State: api.StateDone, Cached: s.Cached, StoreHit: s.StoreHit,
		WallMs: s.WallMs, ResultURL: api.PathResults + s.SpecKey, SHA256: sha,
	}
	for _, i := range idxs {
		j.specDone(i, final)
	}
	return nil
}

// fileArtifact implements fetch-once: a key the coordinator store
// already holds is never re-fetched; otherwise the computing worker is
// asked for the bytes, which must hash to what the worker reported
// before they are admitted.
func (c *Coordinator) fileArtifact(ctx context.Context, j *job, w *worker, key, reported string) (string, error) {
	if _, sha, ok := c.cfg.Store.Get(key); ok {
		return sha, nil
	}
	sp := c.cfg.Spans.Start(j.trace, j.root, "fetch_result")
	if sp != nil {
		defer sp.SetAttr("worker", w.addr).SetAttr("spec_key", key).End()
	}
	data, _, err := w.client.Result(ctx, key)
	if err != nil {
		return "", err
	}
	got := engine.ArtifactSHA256(data)
	if reported != "" && got != reported {
		return "", &corruptError{worker: w.addr, key: key, got: got, want: reported}
	}
	c.filler.Expect(key, got)
	sha, err := c.cfg.Store.Put(j.tenant, key, data)
	if err != nil {
		// Quota/immutability trouble filing locally: the artifact is
		// verified and servable through the fill tier; report the hash
		// we verified.
		return got, nil
	}
	return sha, nil
}

// corruptError reports a worker serving artifact bytes that do not
// hash to what it claimed — the fault the fleet tests inject.
type corruptError struct {
	worker, key, got, want string
}

func (e *corruptError) Error() string {
	return "corrupt artifact from " + e.worker + " for " + e.key +
		": got sha " + e.got[:12] + ", want " + e.want[:12]
}
