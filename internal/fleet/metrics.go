package fleet

// hbat_fleet_* exposition families: the coordinator's RED request
// metrics (same shapes as the worker's hbat_fabric_* families, renamed
// through the shared accumulator's Prefix) plus fleet-state gauges and
// counters — worker registry states, per-worker dispatched specs,
// retries, no-worker rejections, open jobs, and store occupancy. hbatc
// hands MetricsFamilies to obs.Config.Extra, so /metrics serves one
// promcheck-valid exposition.

import (
	"sort"

	"hbat/internal/obs"
)

// MetricsFamilies exports the coordinator's metrics; hand it to
// obs.Config.Extra. Series are emitted in sorted label order so
// scrapes are stable.
func (c *Coordinator) MetricsFamilies() []obs.Family {
	families := c.red.Families()

	c.mu.Lock()
	ws := make([]*worker, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	retries, noWorkers := c.retries, c.noWorkers
	tenants := make([]string, 0, len(c.byTenant))
	for t := range c.byTenant {
		tenants = append(tenants, t)
	}
	byTenant := make(map[string]int, len(c.byTenant))
	for t, n := range c.byTenant {
		byTenant[t] = n
	}
	c.mu.Unlock()
	sort.Slice(ws, func(i, j int) bool { return ws[i].addr < ws[j].addr })
	sort.Strings(tenants)

	workers := obs.Family{
		Name: "hbat_fleet_worker_state", Kind: "gauge",
		Help: "Registered workers by probed state (1 = the worker is in this state).",
	}
	dispatched := obs.Family{
		Name: "hbat_fleet_specs_dispatched", Kind: "counter",
		Help: "Specs dispatched to each worker, including retries.",
	}
	for _, w := range ws {
		snap := w.snapshot()
		w.mu.Lock()
		n := w.dispatched
		w.mu.Unlock()
		workers.Series = append(workers.Series, obs.Series{
			Labels: []obs.Label{{Name: "worker", Value: snap.Addr}, {Name: "state", Value: snap.State}},
			Value:  1,
		})
		dispatched.Series = append(dispatched.Series, obs.Series{
			Labels: []obs.Label{{Name: "worker", Value: snap.Addr}},
			Value:  float64(n),
		})
	}
	if len(workers.Series) == 0 {
		workers.Series = []obs.Series{{Labels: []obs.Label{{Name: "worker", Value: "none"}, {Name: "state", Value: "down"}}, Value: 0}}
		dispatched.Series = []obs.Series{{Labels: []obs.Label{{Name: "worker", Value: "none"}}, Value: 0}}
	}

	retriesF := obs.Family{
		Name: "hbat_fleet_spec_retries", Kind: "counter",
		Help: "Spec attempts re-dispatched to a different worker after a failure or timeout.",
		Series: []obs.Series{{
			Value: float64(retries),
		}},
	}
	noWorkersF := obs.Family{
		Name: "hbat_fleet_no_worker_events", Kind: "counter",
		Help: "Dispatch or submission attempts that found no live worker.",
		Series: []obs.Series{{
			Value: float64(noWorkers),
		}},
	}

	open := obs.Family{
		Name: "hbat_fleet_jobs_open", Kind: "gauge",
		Help: "Open (admitted, not yet finished) coordinator jobs per tenant.",
	}
	for _, t := range tenants {
		open.Series = append(open.Series, obs.Series{
			Labels: []obs.Label{{Name: "tenant", Value: t}},
			Value:  float64(byTenant[t]),
		})
	}
	if len(open.Series) == 0 {
		open.Series = []obs.Series{{Labels: []obs.Label{{Name: "tenant", Value: "default"}}, Value: 0}}
	}

	st := c.cfg.Store.Stats()
	storeF := obs.Family{
		Name: "hbat_fleet_store_entries", Kind: "gauge",
		Help: "Artifacts resident in the coordinator's store tier.",
		Series: []obs.Series{{
			Value: float64(st.Entries),
		}},
	}
	fills := obs.Family{
		Name: "hbat_fleet_store_puts", Kind: "counter",
		Help: "Artifacts filed into the coordinator store (fetched from workers once each).",
		Series: []obs.Series{{
			Value: float64(st.Puts),
		}},
	}
	return append(families, workers, dispatched, retriesF, noWorkersF, open, storeF, fills)
}
