package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"hbat/internal/ckpt"
	"hbat/internal/cpu"
	"hbat/internal/prog"
	"hbat/internal/workload"
)

// ckptKey identifies one warmed checkpoint. It deliberately excludes
// the design: checkpoints carry a design-independent warm-reference
// list (see internal/ckpt), so the same functional warm-up serves all
// thirteen TLB designs, the in-order variant, and the virtual-cache
// variant of a grid. It also excludes the functional engine
// (RunSpec.FFwdEngine): both engines produce byte-identical
// checkpoints, so a checkpoint built by either — in memory or on disk
// under CkptDir — is valid for both.
type ckptKey struct {
	workload string
	budget   prog.RegBudget
	scale    workload.Scale
	pageSize uint64
	ffwd     uint64
}

// ckptEntry is one cached (or in-flight) checkpoint build; done closes
// when c/err are valid. A cancelled build removes its entry so a later
// caller retries, mirroring memoEntry.
type ckptEntry struct {
	done chan struct{}
	c    *ckpt.Checkpoint
	err  error
}

// file returns the key's on-disk path under dir: a fingerprint of the
// key fields, so concurrent processes sharing a CkptDir agree on names.
func (k ckptKey) file(dir string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", k)))
	return filepath.Join(dir, "hbat-"+hex.EncodeToString(sum[:8])+".ckpt")
}

// checkpoint returns the warmed checkpoint for spec, building it at
// most once per key (singleflight) and persisting it under CkptDir
// when one is configured.
func (e *Engine) checkpoint(ctx context.Context, spec RunSpec, p *prog.Program, cfg cpu.Config) (*ckpt.Checkpoint, error) {
	key := ckptKey{
		workload: spec.Workload,
		budget:   spec.Budget,
		scale:    spec.Scale,
		pageSize: spec.PageSize,
		ffwd:     spec.FastForward,
	}
	for {
		e.mu.Lock()
		ent := e.ckpts[key]
		if ent == nil {
			ent = &ckptEntry{done: make(chan struct{})}
			e.ckpts[key] = ent
			e.mu.Unlock()
			c, fromDisk, err := e.loadOrBuildCheckpoint(ctx, key, p, cfg)
			if err != nil && isCancelErr(err) {
				// Like a cancelled run: drop the entry so a later
				// caller rebuilds, and wake waiters to retry.
				e.mu.Lock()
				delete(e.ckpts, key)
				e.mu.Unlock()
				ent.err = err
				close(ent.done)
				return nil, err
			}
			if fromDisk {
				e.ckptHits.Add(1)
			} else {
				e.ckptMisses.Add(1)
			}
			ent.c, ent.err = c, err
			close(ent.done)
			return c, err
		}
		e.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ent.done:
		}
		if isCancelErr(ent.err) {
			continue // the producer was cancelled, not us: retry
		}
		e.ckptHits.Add(1)
		return ent.c, ent.err
	}
}

// loadOrBuildCheckpoint resolves one checkpoint: from CkptDir when a
// valid file exists (fromDisk=true), otherwise by running the
// functional warm-up (and persisting the result, best-effort). A
// corrupt, truncated, or mismatched file is rebuilt and overwritten —
// the checksum inside the codec makes the load failure explicit rather
// than silent.
func (e *Engine) loadOrBuildCheckpoint(ctx context.Context, key ckptKey, p *prog.Program, cfg cpu.Config) (c *ckpt.Checkpoint, fromDisk bool, err error) {
	path := ""
	if e.CkptDir != "" {
		path = key.file(e.CkptDir)
		if c, err := ckpt.LoadFile(path); err == nil &&
			c.PageSize == key.pageSize && c.FastForward == key.ffwd {
			return c, true, nil
		}
	}
	c, err = ckpt.Build(ctx, p, ckpt.BuildConfig{
		PageSize:    key.pageSize,
		FastForward: key.ffwd,
		ICache:      cfg.ICache,
		DCache:      cfg.DCache,
		Branch:      cfg.Branch,
		Engine:      cfg.FFwdEngine,
	})
	if err != nil {
		return nil, false, err
	}
	if path != "" {
		if mkerr := os.MkdirAll(e.CkptDir, 0o755); mkerr == nil {
			if werr := c.SaveFile(path); werr != nil && e.Logger != nil {
				e.Logger.Warn("checkpoint persist failed", "path", path, "error", werr.Error())
			}
		}
	}
	return c, false, nil
}
