package harness

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hbat/internal/prog"
	"hbat/internal/workload"
)

// ffwdSpec is the base two-phase spec the sweep tests vary.
func ffwdSpec(design string) RunSpec {
	return RunSpec{
		Workload: "compress", Design: design, Budget: prog.Budget32,
		Scale: workload.ScaleTest, PageSize: 4096, Seed: 1,
		FastForward: 10000,
	}
}

// TestSweepSharesCheckpoint: one functional warm-up must serve every
// design in a grid — that is the point of keeping the checkpoint
// design-independent.
func TestSweepSharesCheckpoint(t *testing.T) {
	e := NewEngine()
	designs := []string{"T4", "M8", "I4", "P8"}
	for _, d := range designs {
		res := e.Run(context.Background(), ffwdSpec(d))
		if res.Err != nil {
			t.Fatalf("%s: %v", d, res.Err)
		}
		if res.Stats.FastForwarded != 10000 {
			t.Fatalf("%s: FastForwarded = %d, want 10000", d, res.Stats.FastForwarded)
		}
	}
	cs := e.CacheStats()
	if cs.CkptMisses != 1 || cs.CkptHits != uint64(len(designs)-1) {
		t.Fatalf("checkpoint cache: %d misses, %d hits; want 1 build shared by %d designs",
			cs.CkptMisses, cs.CkptHits, len(designs))
	}
}

// TestCheckpointDirPersistence: a second engine pointed at the same
// CkptDir must load the warmed checkpoint instead of rebuilding it, and
// a corrupted file must be rebuilt, not trusted.
func TestCheckpointDirPersistence(t *testing.T) {
	dir := t.TempDir()
	spec := ffwdSpec("T4")

	e1 := NewEngine()
	e1.CkptDir = dir
	if res := e1.Run(context.Background(), spec); res.Err != nil {
		t.Fatal(res.Err)
	}
	if cs := e1.CacheStats(); cs.CkptMisses != 1 || cs.CkptHits != 0 {
		t.Fatalf("first engine: %+v, want one build", cs)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint files on disk: %v (err %v), want exactly one", files, err)
	}

	e2 := NewEngine()
	e2.CkptDir = dir
	r2 := e2.Run(context.Background(), spec)
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if cs := e2.CacheStats(); cs.CkptHits != 1 || cs.CkptMisses != 0 {
		t.Fatalf("second engine: %+v, want a disk hit and no build", cs)
	}

	// Corrupt the file: the next engine must detect it (checksum) and
	// rebuild rather than restore garbage state.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	e3 := NewEngine()
	e3.CkptDir = dir
	r3 := e3.Run(context.Background(), spec)
	if r3.Err != nil {
		t.Fatal(r3.Err)
	}
	if cs := e3.CacheStats(); cs.CkptMisses != 1 || cs.CkptHits != 0 {
		t.Fatalf("corrupt file engine: %+v, want a rebuild", cs)
	}

	// Every path must agree on the simulation outcome.
	if r2.Stats != r3.Stats {
		t.Fatal("disk-restored and rebuilt checkpoints produced different stats")
	}
}

// TestFFwdEngineSharesCaches: FFwdEngine must be invisible to both the
// memoization key and the checkpoint cache — the engines produce
// byte-identical checkpoints, so caching per engine would only halve
// the hit rate.
func TestFFwdEngineSharesCaches(t *testing.T) {
	interp := ffwdSpec("T4")
	interp.FFwdEngine = "interp"
	sblock := ffwdSpec("T4")
	sblock.FFwdEngine = "sblock"

	if interp.key() != sblock.key() {
		t.Fatalf("specKey differs by engine:\n%#v\n%#v", interp.key(), sblock.key())
	}
	if interp.Hash() != ffwdSpec("T4").Hash() {
		t.Fatal("Hash differs between explicit and default engine")
	}

	// With memoization off, the same spec runs twice — once per engine —
	// and the second run must reuse the first's checkpoint.
	e := NewEngine()
	e.NoMemo = true
	r1 := e.Run(context.Background(), interp)
	r2 := e.Run(context.Background(), sblock)
	if r1.Err != nil || r2.Err != nil {
		t.Fatalf("runs failed: %v / %v", r1.Err, r2.Err)
	}
	if r1.Stats != r2.Stats {
		t.Fatal("interp- and sblock-warmed runs produced different stats")
	}
	if cs := e.CacheStats(); cs.CkptMisses != 1 || cs.CkptHits != 1 {
		t.Fatalf("checkpoint cache: %d misses, %d hits; want the sblock run to reuse the interp build",
			cs.CkptMisses, cs.CkptHits)
	}
}

// resumeOpts is the reduced grid the resume test sweeps.
func resumeOpts(e *Engine) Options {
	return Options{
		Scale: workload.ScaleTest, Seed: 1, Engine: e,
		Workloads: []string{"compress", "espresso"},
		Designs:   []string{"T4", "T1", "M8"},
		// Two-phase, to cover checkpoint interplay with the journal.
		FastForward: 5000,
	}
}

// figureCSV renders Figure 5 for opts and returns the CSV bytes — the
// artifact the resume contract promises to reproduce byte-for-byte.
func figureCSV(t *testing.T, opts Options) string {
	t.Helper()
	f, err := Figure5(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	FigureCSV(&sb, f)
	return sb.String()
}

// TestResumeJournalByteIdentical simulates a sweep killed mid-run: the
// journal holds a prefix of the completed runs, and a fresh engine
// resuming from it must (a) not re-simulate the journaled specs and
// (b) render byte-identical artifacts.
func TestResumeJournalByteIdentical(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.journal")

	e1 := NewEngine()
	if n, err := e1.SetJournal(path); err != nil || n != 0 {
		t.Fatalf("fresh journal: resumed %d, err %v", n, err)
	}
	want := figureCSV(t, resumeOpts(e1))
	total := int(e1.executed.Load())
	if total == 0 {
		t.Fatal("no runs executed")
	}

	// "Kill" the sweep partway: keep only the first half of the journal
	// lines, and append a torn partial record as a crash would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("journal too small to truncate meaningfully: %d lines", len(lines))
	}
	keep := len(lines) / 2
	torn := strings.Join(lines[:keep], "") + `{"spec_hash":"dead`
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine()
	n, err := e2.SetJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != keep {
		t.Fatalf("resumed %d journaled runs, want %d (torn tail dropped)", n, keep)
	}
	got := figureCSV(t, resumeOpts(e2))
	if got != want {
		t.Fatalf("resumed sweep rendered different CSV:\n got: %q\nwant: %q", got, want)
	}
	if exec := int(e2.executed.Load()); exec != total-keep {
		t.Fatalf("resumed sweep executed %d runs, want %d (=%d total - %d journaled)",
			exec, total-keep, total, keep)
	}

	// The resumed process must have re-journaled the remaining runs: a
	// third resume serves everything without simulating.
	e3 := NewEngine()
	if n, err := e3.SetJournal(path); err != nil || n != total {
		t.Fatalf("final journal: resumed %d, err %v, want %d", n, err, total)
	}
	if got := figureCSV(t, resumeOpts(e3)); got != want {
		t.Fatal("fully journaled sweep rendered different CSV")
	}
	if exec := e3.executed.Load(); exec != 0 {
		t.Fatalf("fully journaled sweep executed %d runs, want 0", exec)
	}
}
