package harness

import (
	"context"
	"fmt"
	"time"

	"hbat/internal/emu"
	"hbat/internal/prog"
	"hbat/internal/tlb"
)

// FigureResult holds one design-comparison experiment (Figures 5, 7, 8,
// and 9 all share this shape): per-design, per-workload IPCs plus the
// run-time weighted average normalized to the four-ported TLB (T4),
// exactly as the paper reports.
type FigureResult struct {
	Name      string
	Caption   string
	Designs   []string
	Workloads []string

	// IPC[design][workload].
	IPC map[string]map[string]float64
	// T4Cycles[workload] weights the averages (paper: run-time
	// weighted by the T4 run time in cycles).
	T4Cycles map[string]int64
	// Runs holds every underlying result for drill-down reports.
	Runs map[string]map[string]*RunResult
}

// NormalizedAvg returns the run-time weighted average IPC of design,
// normalized to T4 (the paper's headline metric).
func (f *FigureResult) NormalizedAvg(design string) float64 {
	var num, den float64
	for _, w := range f.Workloads {
		weight := float64(f.T4Cycles[w])
		t4 := f.IPC["T4"][w]
		if t4 == 0 {
			continue
		}
		num += weight * f.IPC[design][w] / t4
		den += weight
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Normalized returns design's IPC on workload w relative to T4.
func (f *FigureResult) Normalized(design, w string) float64 {
	if f.IPC["T4"][w] == 0 {
		return 0
	}
	return f.IPC[design][w] / f.IPC["T4"][w]
}

// WeightedAvgIPC returns the run-time weighted average absolute IPC.
func (f *FigureResult) WeightedAvgIPC(design string) float64 {
	var num, den float64
	for _, w := range f.Workloads {
		weight := float64(f.T4Cycles[w])
		num += weight * f.IPC[design][w]
		den += weight
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// designFigure runs the full design × workload grid for one machine
// variation.
func designFigure(ctx context.Context, name, caption string, opts Options, pageSize uint64, inOrder bool, budget prog.RegBudget) (*FigureResult, error) {
	designs := opts.designs()
	wls := opts.workloads()

	var specs []RunSpec
	for _, d := range designs {
		for _, w := range wls {
			specs = append(specs, RunSpec{
				Workload: w, Design: d, Budget: budget, Scale: opts.Scale,
				PageSize: pageSize, InOrder: inOrder, Seed: opts.seed(),
				FastForward: opts.FastForward, FFwdEngine: opts.FFwdEngine,
			})
		}
	}
	results, err := opts.engine().RunAll(ctx, specs, opts.Parallelism, opts.Progress)
	if err != nil {
		return nil, err
	}

	f := &FigureResult{
		Name: name, Caption: caption,
		Designs: designs, Workloads: wls,
		IPC:      make(map[string]map[string]float64),
		T4Cycles: make(map[string]int64),
		Runs:     make(map[string]map[string]*RunResult),
	}
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			return nil, r.Err
		}
		d, w := r.Spec.Design, r.Spec.Workload
		if f.IPC[d] == nil {
			f.IPC[d] = make(map[string]float64)
			f.Runs[d] = make(map[string]*RunResult)
		}
		f.IPC[d][w] = r.Stats.IPC()
		f.Runs[d][w] = r
		if d == "T4" {
			f.T4Cycles[w] = r.Stats.Cycles
		}
	}
	if _, ok := f.IPC["T4"]; !ok {
		return nil, fmt.Errorf("harness: %s requires design T4 for normalization", name)
	}
	return f, nil
}

// Figure5 reproduces the paper's Figure 5: relative performance of all
// analyzed designs on the baseline 8-way out-of-order processor with
// 4 KB pages and 32/32 registers.
func Figure5(ctx context.Context, opts Options) (*FigureResult, error) {
	return designFigure(ctx, "fig5",
		"Relative Performance on Baseline Simulator (8-way OoO, 4k pages, 32 int/32 fp regs)",
		opts, 4096, false, prog.Budget32)
}

// Figure7 reproduces Figure 7: the same grid with in-order issue.
func Figure7(ctx context.Context, opts Options) (*FigureResult, error) {
	return designFigure(ctx, "fig7",
		"Relative Performance with In-order Issue (8-way, 4k pages, 32 int/32 fp regs)",
		opts, 4096, true, prog.Budget32)
}

// Figure8 reproduces Figure 8: the baseline grid with 8 KB pages.
func Figure8(ctx context.Context, opts Options) (*FigureResult, error) {
	return designFigure(ctx, "fig8",
		"Relative Performance with 8k Pages (8-way OoO, 32 int/32 fp regs)",
		opts, 8192, false, prog.Budget32)
}

// Figure9 reproduces Figure 9: the baseline grid with programs
// recompiled for 8 integer and 8 floating-point registers.
func Figure9(ctx context.Context, opts Options) (*FigureResult, error) {
	return designFigure(ctx, "fig9",
		"Relative Performance with Fewer Registers (8 int/8 fp, 8-way OoO, 4k pages)",
		opts, 4096, false, prog.Budget8)
}

// Table3Row is one workload's baseline characterization (Table 3).
type Table3Row struct {
	Workload   string
	Insts      uint64
	Loads      uint64
	Stores     uint64
	IssueIPC   float64
	CommitIPC  float64
	IssueMem   float64
	CommitMem  float64
	BranchRate float64
}

// Table3 reproduces the paper's Table 3: program execution performance
// on the baseline 8-way out-of-order processor with a four-ported TLB.
func Table3(ctx context.Context, opts Options) ([]Table3Row, error) {
	wls := opts.workloads()
	specs := make([]RunSpec, len(wls))
	for i, w := range wls {
		specs[i] = RunSpec{
			Workload: w, Design: "T4", Budget: prog.Budget32,
			Scale: opts.Scale, PageSize: 4096, Seed: opts.seed(),
			FastForward: opts.FastForward, FFwdEngine: opts.FFwdEngine,
		}
	}
	results, err := opts.engine().RunAll(ctx, specs, opts.Parallelism, opts.Progress)
	if err != nil {
		return nil, err
	}
	rows := make([]Table3Row, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		s := r.Stats
		rows = append(rows, Table3Row{
			Workload:   r.Spec.Workload,
			Insts:      s.Committed,
			Loads:      s.CommittedLoads,
			Stores:     s.CommittedStores,
			IssueIPC:   s.IssueIPC(),
			CommitIPC:  s.IPC(),
			IssueMem:   s.IssuedMemPerCycle(),
			CommitMem:  s.MemPerCycle(),
			BranchRate: s.BranchRate(),
		})
	}
	return rows, nil
}

// Figure6Sizes are the fully-associative TLB sizes of Figure 6.
var Figure6Sizes = []int{4, 8, 16, 32, 64, 128}

// Figure6Result holds the TLB miss-rate study.
type Figure6Result struct {
	Sizes     []int
	Workloads []string
	// MissRate[workload][size].
	MissRate map[string]map[int]float64
	// Weights for the run-time weighted average row.
	Weights map[string]float64
}

// RTWAvg returns the run-time weighted average miss rate at a size.
func (f *Figure6Result) RTWAvg(size int) float64 {
	var num, den float64
	for _, w := range f.Workloads {
		num += f.Weights[w] * f.MissRate[w][size]
		den += f.Weights[w]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Figure6 reproduces the paper's Figure 6: data-reference miss rates of
// fully-associative TLBs from 4 to 128 entries (LRU replacement up to
// 16 entries, random above — the policies the corresponding timing
// structures use). Each workload's reference stream is generated once
// by functional execution and fed to all six sizes. weights gives the
// run-time weighting (e.g. T4 cycles from Figure 5); if nil, committed
// instruction counts are used.
func Figure6(ctx context.Context, opts Options, weights map[string]float64) (*Figure6Result, error) {
	wls := opts.workloads()
	eng := opts.engine()
	f := &Figure6Result{
		Sizes:     Figure6Sizes,
		Workloads: wls,
		MissRate:  make(map[string]map[int]float64),
		Weights:   make(map[string]float64),
	}
	type job struct {
		name string
		mr   map[int]float64
		wt   float64
		err  error
	}
	jobs := make([]job, len(wls))
	specs := make([]RunSpec, len(wls))
	for i, name := range wls {
		specs[i] = RunSpec{Workload: name} // placeholder for progress accounting
		jobs[i].name = name
	}
	// Functional simulation is cheap; run serially per workload but the
	// six TLB models concurrently via one pass over the stream.
	start := time.Now()
	for i, name := range wls {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := eng.BuildProgram(RunSpec{Workload: name, Budget: prog.Budget32, Scale: opts.Scale})
		if err != nil {
			return nil, err
		}
		m, err := emu.New(p, 4096)
		if err != nil {
			return nil, err
		}
		sims := make([]*tlb.MissRateSim, len(Figure6Sizes))
		for j, size := range Figure6Sizes {
			sims[j] = tlb.NewMissRateSim(size, tlb.ReplacementFor(size), opts.seed())
		}
		pageBits := m.AS.PageBits()
		m.OnMemRef = func(vaddr uint64, write bool) {
			vpn := vaddr >> pageBits
			for _, s := range sims {
				s.Ref(vpn)
			}
		}
		if err := m.Run(0); err != nil {
			return nil, fmt.Errorf("figure6 %s: %w", name, err)
		}
		mr := make(map[int]float64, len(Figure6Sizes))
		for j, size := range Figure6Sizes {
			mr[size] = sims[j].MissRate()
		}
		jobs[i].mr = mr
		jobs[i].wt = float64(m.InstCount)
		if opts.Progress != nil {
			opts.Progress(Progress{
				Done: i + 1, Total: len(wls),
				Result:  &RunResult{Spec: specs[i]},
				Elapsed: time.Since(start),
			})
		}
	}
	for _, j := range jobs {
		if j.err != nil {
			return nil, j.err
		}
		f.MissRate[j.name] = j.mr
		f.Weights[j.name] = j.wt
		if weights != nil {
			if w, ok := weights[j.name]; ok {
				f.Weights[j.name] = w
			}
		}
	}
	return f, nil
}
