package harness

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hbat/internal/workload"
)

// Regenerate the fixtures after an intentional output or timing-model
// change with:
//
//	go test ./internal/harness/ -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// checkGolden compares got against testdata/<name>, rewriting the file
// when -update is set. Every input that feeds these fixtures is
// deterministic — seeded simulations, slice-ordered rendering — so any
// diff is a real behaviour change, not noise.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gotLines := strings.Split(string(got), "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("%s differs at line %d:\n got: %q\nwant: %q\n(run with -update if the change is intentional)",
				path, i+1, g, w)
		}
	}
	t.Fatalf("%s differs (run with -update if the change is intentional)", path)
}

// goldenOpts is the reduced grid the fixtures are built from: one
// design per family, a workload from each locality class.
func goldenOpts() Options {
	return Options{
		Scale:     workload.ScaleTest,
		Seed:      1,
		Workloads: []string{"espresso", "xlisp", "compress"},
		Designs:   []string{"T4", "T1", "M8", "PB2", "I4"},
	}
}

func TestGoldenFigureReport(t *testing.T) {
	f, err := Figure5(context.Background(), goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	var text, csv strings.Builder
	RenderFigure(&text, f)
	checkGolden(t, "figure5.txt", []byte(text.String()))
	FigureCSV(&csv, f)
	checkGolden(t, "figure5.csv", []byte(csv.String()))
}

func TestGoldenTable2(t *testing.T) {
	var sb strings.Builder
	RenderTable2(&sb)
	checkGolden(t, "table2.txt", []byte(sb.String()))
}

func TestGoldenTable3(t *testing.T) {
	rows, err := Table3(context.Background(), goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderTable3(&sb, rows)
	checkGolden(t, "table3.txt", []byte(sb.String()))
}

func TestGoldenFigure6(t *testing.T) {
	f, err := Figure6(context.Background(), goldenOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderFigure6(&sb, f)
	checkGolden(t, "figure6.txt", []byte(sb.String()))
}

func TestGoldenModelStudy(t *testing.T) {
	rows, err := ModelStudy(context.Background(), goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderModelStudy(&sb, rows)
	checkGolden(t, "modelstudy.txt", []byte(sb.String()))
}
