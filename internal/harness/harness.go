// Package harness drives the paper's evaluation: it builds workloads,
// runs them on configured machines over every analyzed TLB design, and
// reproduces each table and figure of Section 4 (Table 2's design list,
// Table 3's program characterization, Figure 5's baseline comparison,
// Figure 6's TLB miss rates, Figure 7's in-order issue study, Figure
// 8's 8 KB-page study, and Figure 9's reduced-register study).
//
// The execution layer — caching, scheduling, checkpoints, journals,
// manifests — lives in internal/engine; harness layers the paper's
// figures and tables on top and re-exports the engine types under
// their historical names.
package harness

import (
	"context"

	"hbat/internal/engine"
	"hbat/internal/tlb"
	"hbat/internal/workload"
)

// Engine is the sweep engine (see internal/engine.Engine): two layers
// of caching, singleflight deduplication, and a cancellable
// longest-job-first scheduler.
type Engine = engine.Engine

// EngineOption configures an Engine at construction.
type EngineOption = engine.Option

// Engine construction options, re-exported from internal/engine.
var (
	WithCheckpointDir = engine.WithCheckpointDir
	WithLogger        = engine.WithLogger
	WithSpans         = engine.WithSpans
	WithHeartbeat     = engine.WithHeartbeat
	WithoutBuildCache = engine.WithoutBuildCache
	WithoutMemo       = engine.WithoutMemo
)

// ErrStarted is returned by the engine's Set* methods once it has run.
var ErrStarted = engine.ErrStarted

// NewEngine returns an empty sweep engine configured by opts.
func NewEngine(opts ...EngineOption) *Engine { return engine.New(opts...) }

// RunSpec names one simulation: a workload on one machine
// configuration with one translation design.
type RunSpec = engine.RunSpec

// RunResult is one simulation's outcome.
type RunResult = engine.RunResult

// Progress is one scheduler update, delivered after each completed run.
type Progress = engine.Progress

// CacheStats is a point-in-time read of an engine's cache counters.
type CacheStats = engine.CacheStats

// EngineState is a point-in-time read of an engine's live scheduler
// state.
type EngineState = engine.EngineState

// RunRecord is one entry of an engine's provenance log.
type RunRecord = engine.RunRecord

// Manifest is the run-provenance record emitted alongside sweep
// artifacts.
type Manifest = engine.Manifest

// ManifestArtifact is one rendered output with its SHA-256.
type ManifestArtifact = engine.ManifestArtifact

// NewManifest returns a manifest stamped with the build's identity.
var NewManifest = engine.NewManifest

// Run executes one simulation on a private engine. Callers that run
// more than one spec should use an Engine (or RunAll) to share builds
// and memoized results.
func Run(spec RunSpec) RunResult { return engine.Run(spec) }

// RunContext executes one simulation on a private engine, honoring ctx
// cancellation at a cycle-granular check.
func RunContext(ctx context.Context, spec RunSpec) RunResult {
	return engine.RunContext(ctx, spec)
}

// RunAll executes specs on a private engine with bounded parallelism
// (0 = GOMAXPROCS); see Engine.RunAll for the scheduling and
// cancellation contract.
func RunAll(ctx context.Context, specs []RunSpec, parallelism int, progress func(Progress)) ([]RunResult, error) {
	return engine.RunAll(ctx, specs, parallelism, progress)
}

// Options configures an experiment run.
type Options struct {
	Scale       workload.Scale
	Parallelism int
	Seed        uint64
	// FastForward applies RunSpec.FastForward to every timing run of
	// the experiment grids (Figure 6 is purely functional and ignores
	// it). Zero keeps the paper's run-from-reset methodology.
	FastForward uint64
	// FFwdEngine selects the functional engine for the warm-ups
	// (RunSpec.FFwdEngine; "" = the superblock-translated default).
	FFwdEngine string
	// Workloads restricts the benchmark set (nil = all ten).
	Workloads []string
	// Designs restricts the design set (nil = Table 2's thirteen).
	Designs []string
	// Engine, when non-nil, supplies the sweep engine: its build cache
	// and RunSpec memo are shared across every experiment driven
	// through it, so regenerating several figures from one process
	// never rebuilds a program or re-simulates a spec. When nil, each
	// experiment call uses a private engine (builds are still shared
	// within the call).
	Engine *Engine
	// Progress, when non-nil, receives per-run completions with wall
	// time and an ETA.
	Progress func(Progress)
}

// engine returns the configured engine or a private one.
func (o *Options) engine() *Engine {
	if o.Engine != nil {
		return o.Engine
	}
	return NewEngine()
}

func (o *Options) workloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return workload.Names()
}

func (o *Options) designs() []string {
	if len(o.Designs) > 0 {
		return o.Designs
	}
	return tlb.DesignOrder
}

func (o *Options) seed() uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}
