// Package harness drives the paper's evaluation: it builds workloads,
// runs them on configured machines over every analyzed TLB design, and
// reproduces each table and figure of Section 4 (Table 2's design list,
// Table 3's program characterization, Figure 5's baseline comparison,
// Figure 6's TLB miss rates, Figure 7's in-order issue study, Figure
// 8's 8 KB-page study, and Figure 9's reduced-register study).
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"hbat/internal/cpu"
	"hbat/internal/prog"
	"hbat/internal/ptrace"
	"hbat/internal/stats"
	"hbat/internal/tlb"
	"hbat/internal/workload"
)

// RunSpec names one simulation: a workload on one machine configuration
// with one translation design.
type RunSpec struct {
	Workload string
	Design   string
	Budget   prog.RegBudget
	Scale    workload.Scale
	PageSize uint64
	InOrder  bool
	Seed     uint64
	MaxInsts uint64 // optional commit cap (0 = run to Halt)

	// Extensions beyond the paper's grid.
	VirtualCache       bool
	ContextSwitchEvery uint64

	// Lockstep turns on the golden-model differential checker
	// (cpu.Config.Lockstep): any architected-state divergence surfaces
	// as the run's Err instead of silently skewing the statistics.
	Lockstep bool

	// Trace, when non-nil, records pipeline events into a ring buffer
	// returned as RunResult.Trace (see internal/ptrace).
	Trace *ptrace.Config
	// IntervalEvery, when positive, samples interval time-series rows
	// every N cycles into RunResult.Intervals.
	IntervalEvery int64
	// Progress, when non-nil, is called every ProgressEvery cycles
	// (default 1<<20) with the live cycle and committed-instruction
	// counts — the -progress heartbeat.
	Progress      func(cycle int64, committed uint64)
	ProgressEvery int64
}

func (s RunSpec) String() string {
	mode := "ooo"
	if s.InOrder {
		mode = "inorder"
	}
	return fmt.Sprintf("%s/%s/%s/%dk-pages/%s", s.Workload, s.Design, mode, s.PageSize/1024, s.Budget)
}

// RunResult is one simulation's outcome.
type RunResult struct {
	Spec    RunSpec
	Stats   cpu.Stats
	TLB     tlb.Stats
	Metrics stats.Snapshot
	Err     error

	// Trace holds the recorded pipeline events when Spec.Trace was set.
	Trace *ptrace.Recorder
	// Intervals holds the sampled time series when Spec.IntervalEvery
	// was positive.
	Intervals *stats.IntervalSeries
}

// Run executes one simulation.
func Run(spec RunSpec) RunResult {
	res := RunResult{Spec: spec}
	w, err := workload.ByName(spec.Workload)
	if err != nil {
		res.Err = err
		return res
	}
	p, err := w.Build(spec.Budget, spec.Scale)
	if err != nil {
		res.Err = err
		return res
	}
	cfg := cpu.DefaultConfig()
	cfg.PageSize = spec.PageSize
	cfg.InOrder = spec.InOrder
	cfg.MaxInsts = spec.MaxInsts
	cfg.VirtualCache = spec.VirtualCache
	cfg.FlushTLBEvery = spec.ContextSwitchEvery
	cfg.Lockstep = spec.Lockstep
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	m, err := cpu.NewWithDesign(p, cfg, spec.Design)
	if err != nil {
		res.Err = err
		return res
	}
	if spec.Trace != nil {
		m.SetTracer(ptrace.New(*spec.Trace))
	}
	if spec.IntervalEvery > 0 {
		m.EnableIntervalSampling(spec.IntervalEvery)
	}
	if spec.Progress != nil {
		every := spec.ProgressEvery
		if every <= 0 {
			every = 1 << 20
		}
		m.SetProgress(every, spec.Progress)
	}
	err = m.Run()
	res.Stats = *m.Stats()
	res.TLB = *m.DTLB.Stats()
	res.Metrics = m.Metrics().Snapshot()
	res.Trace = m.Tracer()
	res.Intervals = m.Intervals()
	if err != nil {
		res.Err = fmt.Errorf("%s: %w", spec, err)
	}
	return res
}

// RunAll executes specs with bounded parallelism (0 = GOMAXPROCS),
// reporting progress after each completion when progress is non-nil.
// Results are returned in spec order.
func RunAll(specs []RunSpec, parallelism int, progress func(done, total int, r *RunResult)) []RunResult {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	results := make([]RunResult, len(specs))
	var (
		mu   sync.Mutex
		done int
		wg   sync.WaitGroup
	)
	sem := make(chan struct{}, parallelism)
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = Run(specs[i])
			if progress != nil {
				mu.Lock()
				done++
				progress(done, len(specs), &results[i])
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return results
}

// Options configures an experiment run.
type Options struct {
	Scale       workload.Scale
	Parallelism int
	Seed        uint64
	// Workloads restricts the benchmark set (nil = all ten).
	Workloads []string
	// Designs restricts the design set (nil = Table 2's thirteen).
	Designs []string
	// Progress, when non-nil, receives per-run completions.
	Progress func(done, total int, r *RunResult)
}

func (o *Options) workloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return workload.Names()
}

func (o *Options) designs() []string {
	if len(o.Designs) > 0 {
		return o.Designs
	}
	return tlb.DesignOrder
}

func (o *Options) seed() uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}
