package harness

import (
	"context"
	"strings"
	"testing"

	"hbat/internal/prog"
	"hbat/internal/workload"
)

func TestRunSingle(t *testing.T) {
	r := Run(RunSpec{
		Workload: "espresso", Design: "T4", Budget: prog.Budget32,
		Scale: workload.ScaleTest, PageSize: 4096, Seed: 1,
	})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Stats.Committed == 0 || r.Stats.Cycles == 0 {
		t.Fatalf("empty stats: %+v", r.Stats)
	}
	if r.TLB.Lookups == 0 {
		t.Fatal("no TLB lookups recorded")
	}
}

func TestRunUnknownNamesError(t *testing.T) {
	if r := Run(RunSpec{Workload: "nope", Design: "T4", Budget: prog.Budget32, PageSize: 4096}); r.Err == nil {
		t.Fatal("unknown workload accepted")
	}
	if r := Run(RunSpec{Workload: "perl", Design: "Z9", Budget: prog.Budget32, PageSize: 4096}); r.Err == nil {
		t.Fatal("unknown design accepted")
	}
}

func TestRunAllPreservesOrderAndReportsProgress(t *testing.T) {
	specs := []RunSpec{
		{Workload: "perl", Design: "T4", Budget: prog.Budget32, Scale: workload.ScaleTest, PageSize: 4096},
		{Workload: "perl", Design: "T1", Budget: prog.Budget32, Scale: workload.ScaleTest, PageSize: 4096},
		{Workload: "doduc", Design: "M8", Budget: prog.Budget32, Scale: workload.ScaleTest, PageSize: 4096},
	}
	calls := 0
	results, err := RunAll(context.Background(), specs, 2, func(p Progress) {
		calls++
		if p.Total != 3 {
			t.Errorf("total = %d", p.Total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("progress calls = %d", calls)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("run %d: %v", i, r.Err)
		}
		if r.Spec.String() != specs[i].String() {
			t.Fatalf("result %d out of order: %v", i, r.Spec)
		}
	}
}

// testFigureOpts runs the design grids over a reduced set for speed.
func testFigureOpts() Options {
	return Options{
		Scale:     workload.ScaleTest,
		Seed:      1,
		Workloads: []string{"espresso", "xlisp", "mpeg_play"},
		Designs:   []string{"T4", "T1", "M8", "PB2", "I4"},
	}
}

func TestFigure5ShapeOnSubset(t *testing.T) {
	f, err := Figure5(context.Background(), testFigureOpts())
	if err != nil {
		t.Fatal(err)
	}
	t4 := f.NormalizedAvg("T4")
	if t4 < 0.999 || t4 > 1.001 {
		t.Fatalf("T4 normalizes to %f", t4)
	}
	// The paper's central orderings (Section 4.3).
	if f.NormalizedAvg("T1") >= f.NormalizedAvg("T4") {
		t.Error("T1 not worse than T4")
	}
	if f.NormalizedAvg("M8") <= f.NormalizedAvg("T1") {
		t.Error("M8 not better than T1")
	}
	if f.NormalizedAvg("PB2") <= f.NormalizedAvg("I4") {
		t.Error("PB2 not better than plain interleaving")
	}
	for _, d := range f.Designs {
		for _, w := range f.Workloads {
			if f.IPC[d][w] <= 0 {
				t.Errorf("IPC[%s][%s] = %f", d, w, f.IPC[d][w])
			}
		}
	}
}

func TestFigure7InOrderIsSlowerButCloser(t *testing.T) {
	opts := testFigureOpts()
	f5, err := Figure5(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	f7, err := Figure7(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if f7.WeightedAvgIPC("T4") >= f5.WeightedAvgIPC("T4") {
		t.Error("in-order IPC not below out-of-order IPC")
	}
	// Reduced bandwidth demand: T1's relative penalty shrinks in-order
	// (Section 4.4).
	if f7.NormalizedAvg("T1") <= f5.NormalizedAvg("T1") {
		t.Errorf("T1 in-order (%.3f) not closer to T4 than out-of-order (%.3f)",
			f7.NormalizedAvg("T1"), f5.NormalizedAvg("T1"))
	}
}

func TestFigure9FewRegistersRaisesTraffic(t *testing.T) {
	opts := testFigureOpts()
	f5, err := Figure5(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	f9, err := Figure9(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Sharply higher bandwidth demand: T1 suffers much more (4.6).
	if f9.NormalizedAvg("T1") >= f5.NormalizedAvg("T1") {
		t.Errorf("T1 few-regs (%.3f) not worse than baseline (%.3f)",
			f9.NormalizedAvg("T1"), f5.NormalizedAvg("T1"))
	}
	// The multi-level design holds up (Section 4.6).
	if f9.NormalizedAvg("M8") < 0.9 {
		t.Errorf("M8 collapsed under few registers: %.3f", f9.NormalizedAvg("M8"))
	}
}

func TestTable3Characterization(t *testing.T) {
	rows, err := Table3(context.Background(), Options{Scale: workload.ScaleTest, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Insts == 0 || r.CommitIPC <= 0 || r.CommitIPC > 8 {
			t.Errorf("%s: implausible row %+v", r.Workload, r)
		}
		if r.IssueIPC < r.CommitIPC {
			t.Errorf("%s: issued IPC %f below committed %f", r.Workload, r.IssueIPC, r.CommitIPC)
		}
		if r.BranchRate < 0.5 || r.BranchRate > 1 {
			t.Errorf("%s: branch rate %f", r.Workload, r.BranchRate)
		}
	}
}

func TestFigure6MonotoneInSize(t *testing.T) {
	f, err := Figure6(context.Background(), Options{Scale: workload.ScaleTest, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range f.Workloads {
		// Rates must not grow substantially with size (random
		// replacement allows small non-monotonicity).
		for i := 1; i < len(f.Sizes); i++ {
			lo, hi := f.MissRate[wl][f.Sizes[i]], f.MissRate[wl][f.Sizes[i-1]]
			if lo > hi+0.02 {
				t.Errorf("%s: miss rate rose from %.4f@%d to %.4f@%d",
					wl, hi, f.Sizes[i-1], lo, f.Sizes[i])
			}
		}
	}
	// The low-locality trio must be the worst at small sizes (4.3).
	bad := f.MissRate["compress"][8] + f.MissRate["mpeg_play"][8] + f.MissRate["tfft"][8]
	good := f.MissRate["doduc"][8] + f.MissRate["espresso"][8] + f.MissRate["tomcatv"][8]
	if bad <= good {
		t.Errorf("low-locality trio (%.4f) not worse than high-locality trio (%.4f) at 8 entries", bad, good)
	}
}

func TestRenderers(t *testing.T) {
	opts := testFigureOpts()
	f, err := Figure5(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderFigure(&sb, f)
	out := sb.String()
	for _, want := range []string{"fig5", "RTW-avg", "T4", "espresso"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderFigure output missing %q", want)
		}
	}
	sb.Reset()
	FigureCSV(&sb, f)
	if !strings.Contains(sb.String(), "fig5,T4,espresso,") {
		t.Error("CSV output malformed")
	}
	sb.Reset()
	RenderTable2(&sb)
	if !strings.Contains(sb.String(), "I4/PB") {
		t.Error("Table 2 output missing designs")
	}
	rows, err := Table3(context.Background(), Options{Scale: workload.ScaleTest, Workloads: []string{"perl"}})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	RenderTable3(&sb, rows)
	if !strings.Contains(sb.String(), "perl") {
		t.Error("Table 3 output missing workload")
	}
	f6, err := Figure6(context.Background(), Options{Scale: workload.ScaleTest, Workloads: []string{"perl"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	RenderFigure6(&sb, f6)
	if !strings.Contains(sb.String(), "RTW-avg") {
		t.Error("Figure 6 output missing average row")
	}
}

func TestModelStudy(t *testing.T) {
	rows, err := ModelStudy(context.Background(), Options{
		Scale:     workload.ScaleTest,
		Seed:      1,
		Workloads: []string{"xlisp", "espresso"},
		Designs:   []string{"T4", "T1", "M8", "PB2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ModelRow{}
	for _, r := range rows {
		byName[r.Design] = r
	}
	if byName["M8"].FShielded < 0.5 {
		t.Errorf("M8 f_shielded = %f", byName["M8"].FShielded)
	}
	if byName["T1"].TStalled <= byName["T4"].TStalled {
		t.Error("T1 should queue more than T4")
	}
	if byName["T4"].RelIPC < 0.999 || byName["T4"].RelIPC > 1.001 {
		t.Errorf("T4 relative IPC = %f", byName["T4"].RelIPC)
	}
	var sb strings.Builder
	RenderModelStudy(&sb, rows)
	if !strings.Contains(sb.String(), "f_TOL") {
		t.Error("model render incomplete")
	}
}

// TestPaperHeadlineOrderings runs the complete Table 2 design set and
// asserts the orderings the paper's conclusions rest on (Section 5).
func TestPaperHeadlineOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("full design grid")
	}
	f, err := Figure5(context.Background(), Options{
		Scale:     workload.ScaleTest,
		Seed:      1,
		Workloads: []string{"espresso", "xlisp", "mpeg_play", "ghostscript"},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := func(d string) float64 { return f.NormalizedAvg(d) }

	// Port count orders the multi-ported designs.
	if !(n("T4") >= n("T2") && n("T2") >= n("T1")) {
		t.Errorf("multi-ported ordering broken: %.3f %.3f %.3f", n("T4"), n("T2"), n("T1"))
	}
	// "Clearly, to not impact system performance, a translation device
	// will have to provide at least two translations per cycle."
	if n("T1") > 0.95 {
		t.Errorf("T1 = %.3f; single port should visibly hurt", n("T1"))
	}
	// Multi-level TLBs nearly reach unlimited bandwidth; bigger L1s help.
	for _, d := range []string{"M16", "M8", "M4"} {
		if n(d) < 0.93 {
			t.Errorf("%s = %.3f; multi-level should be near T4", d, n(d))
		}
	}
	if n("M16") < n("M4")-0.02 {
		t.Errorf("M16 (%.3f) should not trail M4 (%.3f)", n("M16"), n("M4"))
	}
	// Pretranslation performs well but not above the multi-level family.
	if n("P8") < 0.9 || n("P8") > n("M16")+0.02 {
		t.Errorf("P8 = %.3f (M16 %.3f)", n("P8"), n("M16"))
	}
	// Interleaving alone trails piggybacked or multi-level approaches.
	for _, d := range []string{"I8", "I4", "X4"} {
		if n(d) >= n("I4/PB") {
			t.Errorf("%s (%.3f) should trail I4/PB (%.3f)", d, n(d), n("I4/PB"))
		}
	}
	// "A piggybacked dual-ported TLB appears to be an adequate
	// substitute for a four-ported TLB."
	if n("PB2") < 0.97 {
		t.Errorf("PB2 = %.3f", n("PB2"))
	}
	// Piggybacking rescues the interleaved design.
	if n("I4/PB") < n("I4")+0.02 {
		t.Errorf("I4/PB (%.3f) should clearly beat I4 (%.3f)", n("I4/PB"), n("I4"))
	}
}
