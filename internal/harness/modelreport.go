package harness

import (
	"context"
	"fmt"
	"io"

	"hbat/internal/cpu"
	"hbat/internal/model"
	"hbat/internal/prog"
)

// ModelRow is the Section 2 model fitted to one design, run-time
// weighted across the workloads.
type ModelRow struct {
	Design    string
	FShielded float64
	TStalled  float64
	TTLBHit   float64
	MTLB      float64
	TAT       float64
	TPIUntol  float64
	TPIMeas   float64
	FTol      float64
	RelIPC    float64
}

// ModelStudy fits the paper's Section 2 address-translation performance
// model to every design over the workload set: each design's runs are
// compared to the T4 baseline, and the fitted quantities are run-time
// weighted the same way the figures are.
func ModelStudy(ctx context.Context, opts Options) ([]ModelRow, error) {
	designs := opts.designs()
	wls := opts.workloads()

	var specs []RunSpec
	for _, d := range designs {
		for _, w := range wls {
			specs = append(specs, RunSpec{
				Workload: w, Design: d, Budget: prog.Budget32,
				Scale: opts.Scale, PageSize: 4096, Seed: opts.seed(),
			})
		}
	}
	results, err := opts.engine().RunAll(ctx, specs, opts.Parallelism, opts.Progress)
	if err != nil {
		return nil, err
	}
	byKey := map[string]*RunResult{}
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			return nil, r.Err
		}
		byKey[r.Spec.Design+"/"+r.Spec.Workload] = r
	}

	walk := float64(cpu.DefaultConfig().TLBMissLatency)
	rows := make([]ModelRow, 0, len(designs))
	for _, d := range designs {
		row := ModelRow{Design: d}
		var totalWeight float64
		for _, w := range wls {
			base := byKey["T4/"+w]
			dev := byKey[d+"/"+w]
			if base == nil || dev == nil {
				return nil, fmt.Errorf("harness: model study missing %s/%s", d, w)
			}
			rep := model.Analyze(d, w,
				model.RunStats{CPU: base.Stats, TLB: base.TLB},
				model.RunStats{CPU: dev.Stats, TLB: dev.TLB}, walk)
			weight := float64(base.Stats.Cycles)
			totalWeight += weight
			row.FShielded += weight * rep.FShielded
			row.TStalled += weight * rep.TStalled
			row.TTLBHit += weight * rep.TTLBHit
			row.MTLB += weight * rep.MTLB
			row.TAT += weight * rep.TAT
			row.TPIUntol += weight * rep.TPIUntol
			row.TPIMeas += weight * rep.TPIMeasured
			row.FTol += weight * rep.FTol
			row.RelIPC += weight * rep.RelativeIPC
		}
		if totalWeight > 0 {
			row.FShielded /= totalWeight
			row.TStalled /= totalWeight
			row.TTLBHit /= totalWeight
			row.MTLB /= totalWeight
			row.TAT /= totalWeight
			row.TPIUntol /= totalWeight
			row.TPIMeas /= totalWeight
			row.FTol /= totalWeight
			row.RelIPC /= totalWeight
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderModelStudy writes the fitted-model table.
func RenderModelStudy(w io.Writer, rows []ModelRow) {
	fmt.Fprintln(w, "Section 2 model, fitted per design (run-time weighted averages; T4 is the baseline)")
	fmt.Fprintf(w, "%-7s %10s %10s %10s %8s %8s %10s %10s %7s %8s\n",
		"design", "f_shield", "t_stalled", "t_TLBhit+", "M_TLB", "t_AT", "TPI-untol", "TPI-meas", "f_TOL", "IPC/T4")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7s %10.4f %10.4f %10.4f %8.4f %8.4f %10.4f %10.4f %7.3f %8.4f\n",
			r.Design, r.FShielded, r.TStalled, r.TTLBHit, r.MTLB, r.TAT,
			r.TPIUntol, r.TPIMeas, r.FTol, r.RelIPC)
	}
}
