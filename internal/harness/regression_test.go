package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hbat/internal/prog"
	"hbat/internal/workload"
)

// regressionCorpus is the statistical regression fixture
// (testdata/regression.json): the paper-facing numbers the simulator
// must keep reproducing — Figure 6 miss rates and the baseline T4 IPC
// per workload — with explicit tolerances. Unlike the byte-exact golden
// reports, this corpus tolerates small intentional timing-model tweaks
// but fails tier-1 on real drift. Regenerate after an intentional
// change with:
//
//	go test ./internal/harness/ -run TestRegressionCorpus -update
type regressionCorpus struct {
	Description string `json:"description"`
	// IPCTolerance is relative (fraction of the recorded IPC);
	// MissTolerance is absolute (miss rates live in [0,1]).
	IPCTolerance  float64 `json:"ipc_tolerance"`
	MissTolerance float64 `json:"miss_tolerance"`
	// BaselineIPC[workload] is the T4 commit IPC on the baseline 8-way
	// out-of-order machine at test scale.
	BaselineIPC map[string]float64 `json:"baseline_ipc"`
	// Figure6[workload][size] is the data-reference TLB miss rate of the
	// fully-associative sizes of Figure 6 (JSON object keys, so the
	// sizes are strings).
	Figure6 map[string]map[string]float64 `json:"figure6_miss_rates"`
}

// regressionOpts covers every workload at test scale on one engine.
func regressionOpts(e *Engine) Options {
	return Options{Scale: workload.ScaleTest, Seed: 1, Engine: e}
}

// measureRegression produces the corpus values from the current
// simulator.
func measureRegression(t *testing.T) *regressionCorpus {
	t.Helper()
	e := NewEngine()
	opts := regressionOpts(e)

	got := &regressionCorpus{
		Description:   "statistical regression corpus: baseline T4 IPC + Figure 6 miss rates, test scale, seed 1",
		IPCTolerance:  0.02,
		MissTolerance: 0.002,
		BaselineIPC:   make(map[string]float64),
		Figure6:       make(map[string]map[string]float64),
	}

	specs := make([]RunSpec, 0, len(workload.Names()))
	for _, w := range workload.Names() {
		specs = append(specs, RunSpec{
			Workload: w, Design: "T4", Budget: prog.Budget32,
			Scale: opts.Scale, PageSize: 4096, Seed: 1,
		})
	}
	results, err := e.RunAll(context.Background(), specs, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i].Err != nil {
			t.Fatal(results[i].Err)
		}
		got.BaselineIPC[results[i].Spec.Workload] = round6(results[i].Stats.IPC())
	}

	f6, err := Figure6(context.Background(), opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range f6.Workloads {
		row := make(map[string]float64, len(f6.Sizes))
		for _, size := range f6.Sizes {
			row[fmt.Sprint(size)] = round6(f6.MissRate[w][size])
		}
		got.Figure6[w] = row
	}
	return got
}

// round6 keeps the fixture diffable: six decimals is far below every
// tolerance in use.
func round6(x float64) float64 { return math.Round(x*1e6) / 1e6 }

func TestRegressionCorpus(t *testing.T) {
	path := filepath.Join("testdata", "regression.json")
	got := measureRegression(t)

	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	var want regressionCorpus
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt regression corpus: %v", err)
	}

	for w, ref := range want.BaselineIPC {
		cur, ok := got.BaselineIPC[w]
		if !ok {
			t.Errorf("baseline IPC: workload %s missing from the simulator", w)
			continue
		}
		if rel := math.Abs(cur-ref) / ref; rel > want.IPCTolerance {
			t.Errorf("baseline IPC drift on %s: got %.6f, corpus %.6f (%.2f%% > %.2f%% tolerance)",
				w, cur, ref, 100*rel, 100*want.IPCTolerance)
		}
	}
	for w, sizes := range want.Figure6 {
		cur, ok := got.Figure6[w]
		if !ok {
			t.Errorf("figure6: workload %s missing from the simulator", w)
			continue
		}
		for size, ref := range sizes {
			if diff := math.Abs(cur[size] - ref); diff > want.MissTolerance {
				t.Errorf("figure6 miss-rate drift on %s @%s entries: got %.6f, corpus %.6f (|Δ|=%.6f > %.6f)",
					w, size, cur[size], ref, diff, want.MissTolerance)
			}
		}
	}
	// Workloads added to the simulator must be added to the corpus too,
	// so coverage does not silently shrink relative to new code.
	for w := range got.BaselineIPC {
		if _, ok := want.BaselineIPC[w]; !ok {
			t.Errorf("workload %s is not in the regression corpus (run with -update)", w)
		}
	}
}
