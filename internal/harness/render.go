package harness

import (
	"fmt"
	"io"
	"strings"

	"hbat/internal/tlb"
)

// RenderFigure writes a FigureResult as a paper-style report: the
// run-time weighted average normalized IPC per design (the bar chart of
// Figures 5/7/8/9) followed by the per-workload normalized detail table
// (the paper's FTP appendix).
func RenderFigure(w io.Writer, f *FigureResult) {
	fmt.Fprintf(w, "%s: %s\n", f.Name, f.Caption)
	fmt.Fprintf(w, "%-7s %-9s %-9s %s\n", "design", "norm-IPC", "avg-IPC", "(normalized to T4, run-time weighted)")
	for _, d := range f.Designs {
		n := f.NormalizedAvg(d)
		bar := strings.Repeat("#", int(n*50+0.5))
		fmt.Fprintf(w, "%-7s %8.4f  %8.4f  |%s\n", d, n, f.WeightedAvgIPC(d), bar)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "per-workload normalized IPC:\n")
	fmt.Fprintf(w, "%-13s", "workload")
	for _, d := range f.Designs {
		fmt.Fprintf(w, "%7s", d)
	}
	fmt.Fprintln(w)
	for _, wl := range f.Workloads {
		fmt.Fprintf(w, "%-13s", wl)
		for _, d := range f.Designs {
			fmt.Fprintf(w, "%7.3f", f.Normalized(d, wl))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-13s", "RTW-avg")
	for _, d := range f.Designs {
		fmt.Fprintf(w, "%7.3f", f.NormalizedAvg(d))
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "translation behaviour (totals across workloads):")
	fmt.Fprintf(w, "%-7s %12s %10s %12s %12s %10s %10s\n",
		"design", "lookups", "walks", "shielded", "piggyback", "no-port", "queue-cyc")
	for _, d := range f.Designs {
		var lookups, walks, shield, piggy, noport, queue uint64
		for _, wl := range f.Workloads {
			r := f.Runs[d][wl]
			if r == nil {
				continue
			}
			lookups += r.TLB.Lookups
			walks += r.TLB.Fills
			shield += r.TLB.ShieldHits
			piggy += r.TLB.Piggybacks
			noport += r.TLB.NoPorts
			queue += r.TLB.QueueCycles
		}
		fmt.Fprintf(w, "%-7s %12d %10d %12d %12d %10d %10d\n",
			d, lookups, walks, shield, piggy, noport, queue)
	}
}

// FigureCSV writes a FigureResult as CSV (design, workload, ipc,
// normalized) for external plotting.
func FigureCSV(w io.Writer, f *FigureResult) {
	fmt.Fprintln(w, "figure,design,workload,ipc,normalized")
	for _, d := range f.Designs {
		for _, wl := range f.Workloads {
			fmt.Fprintf(w, "%s,%s,%s,%.6f,%.6f\n", f.Name, d, wl, f.IPC[d][wl], f.Normalized(d, wl))
		}
		fmt.Fprintf(w, "%s,%s,RTW-avg,%.6f,%.6f\n", f.Name, d, f.WeightedAvgIPC(d), f.NormalizedAvg(d))
	}
}

// RenderTable3 writes the Table 3 program-characterization report.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: Program Execution Performance (baseline 8-way out-of-order, T4)")
	fmt.Fprintf(w, "%-13s %9s %9s %9s  %6s %6s  %6s %6s  %8s\n",
		"program", "insts", "loads", "stores", "issue", "c'mit", "ld+st", "ld+st", "br pred")
	fmt.Fprintf(w, "%-13s %9s %9s %9s  %6s %6s  %6s %6s  %8s\n",
		"", "", "", "", "IPC", "IPC", "issue", "c'mit", "rate %")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %9d %9d %9d  %6.2f %6.2f  %6.2f %6.2f  %8.1f\n",
			r.Workload, r.Insts, r.Loads, r.Stores,
			r.IssueIPC, r.CommitIPC, r.IssueMem, r.CommitMem, 100*r.BranchRate)
	}
}

// RenderFigure6 writes the TLB miss-rate study.
func RenderFigure6(w io.Writer, f *Figure6Result) {
	fmt.Fprintln(w, "Figure 6: TLB Miss Rates (% of data references missing a fully-associative TLB;")
	fmt.Fprintln(w, "          LRU replacement through 16 entries, random replacement from 32 up)")
	fmt.Fprintf(w, "%-13s", "workload")
	for _, s := range f.Sizes {
		fmt.Fprintf(w, "%9d", s)
	}
	fmt.Fprintln(w)
	for _, wl := range f.Workloads {
		fmt.Fprintf(w, "%-13s", wl)
		for _, s := range f.Sizes {
			fmt.Fprintf(w, "%8.3f%%", 100*f.MissRate[wl][s])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-13s", "RTW-avg")
	for _, s := range f.Sizes {
		fmt.Fprintf(w, "%8.3f%%", 100*f.RTWAvg(s))
	}
	fmt.Fprintln(w)
}

// RenderTable2 writes the analyzed-designs list.
func RenderTable2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: Analyzed Address Translation Designs")
	for _, d := range tlb.DesignOrder {
		spec, err := tlb.LookupSpec(d)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "%-6s %s\n", spec.Mnemonic, spec.Description)
	}
}
