package harness

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hbat/internal/workload"
)

// resumeOpts is the reduced grid the resume test sweeps.
func resumeOpts(e *Engine) Options {
	return Options{
		Scale: workload.ScaleTest, Seed: 1, Engine: e,
		Workloads: []string{"compress", "espresso"},
		Designs:   []string{"T4", "T1", "M8"},
		// Two-phase, to cover checkpoint interplay with the journal.
		FastForward: 5000,
	}
}

// figureCSV renders Figure 5 for opts and returns the CSV bytes — the
// artifact the resume contract promises to reproduce byte-for-byte.
func figureCSV(t *testing.T, opts Options) string {
	t.Helper()
	f, err := Figure5(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	FigureCSV(&sb, f)
	return sb.String()
}

// TestResumeJournalByteIdentical simulates a sweep killed mid-run: the
// journal holds a prefix of the completed runs, and a fresh engine
// resuming from it must (a) not re-simulate the journaled specs and
// (b) render byte-identical artifacts.
func TestResumeJournalByteIdentical(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.journal")

	e1 := NewEngine()
	if n, err := e1.SetJournal(path); err != nil || n != 0 {
		t.Fatalf("fresh journal: resumed %d, err %v", n, err)
	}
	want := figureCSV(t, resumeOpts(e1))
	total := int(e1.State().Executed)
	if total == 0 {
		t.Fatal("no runs executed")
	}

	// "Kill" the sweep partway: keep only the first half of the journal
	// lines, and append a torn partial record as a crash would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("journal too small to truncate meaningfully: %d lines", len(lines))
	}
	keep := len(lines) / 2
	torn := strings.Join(lines[:keep], "") + `{"spec_hash":"dead`
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine()
	n, err := e2.SetJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != keep {
		t.Fatalf("resumed %d journaled runs, want %d (torn tail dropped)", n, keep)
	}
	got := figureCSV(t, resumeOpts(e2))
	if got != want {
		t.Fatalf("resumed sweep rendered different CSV:\n got: %q\nwant: %q", got, want)
	}
	if exec := int(e2.State().Executed); exec != total-keep {
		t.Fatalf("resumed sweep executed %d runs, want %d (=%d total - %d journaled)",
			exec, total-keep, total, keep)
	}

	// The resumed process must have re-journaled the remaining runs: a
	// third resume serves everything without simulating.
	e3 := NewEngine()
	if n, err := e3.SetJournal(path); err != nil || n != total {
		t.Fatalf("final journal: resumed %d, err %v, want %d", n, err, total)
	}
	if got := figureCSV(t, resumeOpts(e3)); got != want {
		t.Fatal("fully journaled sweep rendered different CSV")
	}
	if exec := e3.State().Executed; exec != 0 {
		t.Fatalf("fully journaled sweep executed %d runs, want 0", exec)
	}
}
