package harness

import (
	"context"
	"testing"

	"hbat/internal/tlb"
	"hbat/internal/workload"
)

// TestSweepSimulatesEachUniqueSpecOnce is the PR's acceptance check:
// regenerating table3 + fig5 + fig7 + fig8 + fig9 at test scale from
// one engine performs each unique workload build exactly once and each
// unique RunSpec exactly once, observable through the cache counters.
// Table 3's specs are exactly Figure 5's T4 column, so they are the
// only repeats across the five artifacts.
func TestSweepSimulatesEachUniqueSpecOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("full design grids")
	}
	eng := NewEngine()
	opts := Options{Scale: workload.ScaleTest, Seed: 1, Engine: eng}
	ctx := context.Background()

	if _, err := Table3(ctx, opts); err != nil {
		t.Fatal(err)
	}
	for _, fig := range []func(context.Context, Options) (*FigureResult, error){
		Figure5, Figure7, Figure8, Figure9,
	} {
		if _, err := fig(ctx, opts); err != nil {
			t.Fatal(err)
		}
	}

	W := uint64(len(workload.Names()))
	D := uint64(len(tlb.DesignOrder))
	cs := eng.CacheStats()
	// Unique specs: four full grids (table3 duplicates fig5's T4 column).
	if want := 4 * W * D; cs.SpecMisses != want {
		t.Errorf("spec misses = %d, want %d (each unique spec simulated once)", cs.SpecMisses, want)
	}
	if cs.SpecHits != W {
		t.Errorf("spec hits = %d, want %d (table3's rows reused by fig5)", cs.SpecHits, W)
	}
	// Unique builds: each workload at Budget32 and (for fig9) Budget8.
	if want := 2 * W; cs.BuildMisses != want {
		t.Errorf("build misses = %d, want %d (each unique build performed once)", cs.BuildMisses, want)
	}
	// Every executed spec requests exactly one build; memo hits skip it.
	if want := cs.SpecMisses - cs.BuildMisses; cs.BuildHits != want {
		t.Errorf("build hits = %d, want %d", cs.BuildHits, want)
	}

	// The counters are exported through the stats registry.
	snap := eng.MetricsSnapshot()
	byName := map[string]uint64{}
	for _, m := range snap {
		byName[m.Name] = m.Value
	}
	if byName["sweep.spec_cache_hits"] != cs.SpecHits ||
		byName["sweep.spec_cache_misses"] != cs.SpecMisses ||
		byName["sweep.build_cache_hits"] != cs.BuildHits ||
		byName["sweep.build_cache_misses"] != cs.BuildMisses {
		t.Errorf("MetricsSnapshot disagrees with CacheStats: %v vs %+v", byName, cs)
	}
	if byName["sweep.runs_executed"] != cs.SpecMisses {
		t.Errorf("runs_executed = %d, want %d", byName["sweep.runs_executed"], cs.SpecMisses)
	}
}
