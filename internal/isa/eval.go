package isa

import "math"

// All register values are carried as uint64; floating-point registers
// hold math.Float64bits of their value. These helpers implement the
// architected semantics on plain values so both the functional emulator
// and the timing pipelines share one definition of the ISA.

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ALUEval computes the result of a non-memory, non-control instruction
// given its source operand values (rs, rt; unary ops ignore rt).
// PC is the instruction's own address (needed by Jal/Jalr link values).
func ALUEval(in *Inst, rs, rt, pc uint64) uint64 {
	switch in.Op {
	case Add:
		return rs + rt
	case Sub:
		return rs - rt
	case And:
		return rs & rt
	case Or:
		return rs | rt
	case Xor:
		return rs ^ rt
	case Nor:
		return ^(rs | rt)
	case Sllv:
		return rs << (rt & 63)
	case Srlv:
		return rs >> (rt & 63)
	case Srav:
		return uint64(int64(rs) >> (rt & 63))
	case Slt:
		return b2u(int64(rs) < int64(rt))
	case Sltu:
		return b2u(rs < rt)
	case Addi:
		return rs + uint64(int64(in.Imm))
	case Andi:
		return rs & uint64(uint32(in.Imm))
	case Ori:
		return rs | uint64(uint32(in.Imm))
	case Xori:
		return rs ^ uint64(uint32(in.Imm))
	case Slti:
		return b2u(int64(rs) < int64(in.Imm))
	case Sltiu:
		return b2u(rs < uint64(int64(in.Imm)))
	case Sll:
		return rs << (uint32(in.Imm) & 63)
	case Srl:
		return rs >> (uint32(in.Imm) & 63)
	case Sra:
		return uint64(int64(rs) >> (uint32(in.Imm) & 63))
	case Lui:
		return uint64(int64(in.Imm)) << 16
	case Mult:
		return rs * rt
	case Div:
		if rt == 0 {
			return 0
		}
		return uint64(int64(rs) / int64(rt))
	case Rem:
		if rt == 0 {
			return 0
		}
		return uint64(int64(rs) % int64(rt))
	case AddF:
		return math.Float64bits(math.Float64frombits(rs) + math.Float64frombits(rt))
	case SubF:
		return math.Float64bits(math.Float64frombits(rs) - math.Float64frombits(rt))
	case MulF:
		return math.Float64bits(math.Float64frombits(rs) * math.Float64frombits(rt))
	case DivF:
		return math.Float64bits(math.Float64frombits(rs) / math.Float64frombits(rt))
	case AbsF:
		return math.Float64bits(math.Abs(math.Float64frombits(rs)))
	case NegF:
		return math.Float64bits(-math.Float64frombits(rs))
	case MovF, MTF, MFF:
		return rs
	case CvtIF:
		return math.Float64bits(float64(int64(rs)))
	case CvtFI:
		f := math.Float64frombits(rs)
		if math.IsNaN(f) {
			return 0
		}
		return uint64(int64(f))
	case CmpLtF:
		return b2u(math.Float64frombits(rs) < math.Float64frombits(rt))
	case CmpLeF:
		return b2u(math.Float64frombits(rs) <= math.Float64frombits(rt))
	case CmpEqF:
		return b2u(math.Float64frombits(rs) == math.Float64frombits(rt))
	case Jal, Jalr:
		return pc + InstBytes
	}
	return 0
}

// BranchTaken evaluates a conditional branch's predicate on its operand
// values. Calling it on a non-branch op returns false.
func BranchTaken(in *Inst, rs, rt uint64) bool {
	switch in.Op {
	case Beq:
		return rs == rt
	case Bne:
		return rs != rt
	case Blez:
		return int64(rs) <= 0
	case Bgtz:
		return int64(rs) > 0
	case Bltz:
		return int64(rs) < 0
	case Bgez:
		return int64(rs) >= 0
	}
	return false
}

// EffAddr computes the effective address of a memory instruction and,
// for post-update modes, the new base register value.
func EffAddr(in *Inst, rs, rt uint64) (addr, newBase uint64, updates bool) {
	switch in.Mode {
	case AMImm:
		return rs + uint64(int64(in.Imm)), 0, false
	case AMReg:
		return rs + rt, 0, false
	case AMPostInc:
		return rs, rs + uint64(int64(in.Imm)), true
	case AMPostDec:
		return rs, rs - uint64(int64(in.Imm)), true
	}
	return rs, 0, false
}

// LoadExtend converts a raw little-endian load of the op's width (held
// in the low bytes of raw) into the architected register value.
func LoadExtend(op Op, raw uint64) uint64 {
	switch op {
	case Lb:
		return uint64(int64(int8(raw)))
	case Lbu:
		return raw & 0xff
	case Lh:
		return uint64(int64(int16(raw)))
	case Lhu:
		return raw & 0xffff
	case Lw:
		return uint64(int64(int32(raw)))
	case Ld, LdF:
		return raw
	}
	return raw
}
