// Package isa defines the MIPS-like instruction set architecture used by
// the simulator, mirroring the extended virtual MIPS-I superset of
// Austin & Sohi (ISCA '96): 32 integer and 32 floating-point registers,
// extended addressing modes (register+register, post-increment and
// post-decrement), and no architected delay slots.
//
// Instructions are kept in decoded form: the cycle simulator never
// encodes or decodes bit patterns, it executes Inst values directly,
// exactly as the paper's execution-driven simulator did.
package isa

import "fmt"

// Reg names an architected register. Values 0-31 are the integer
// registers, 32-63 the floating-point registers. The total register
// name space is NumRegs.
type Reg uint8

// Integer register conventions (a subset of the MIPS o32 ABI that the
// program builder relies on).
const (
	Zero Reg = 0 // hardwired zero
	AT   Reg = 1 // assembler temporary
	V0   Reg = 2 // results
	V1   Reg = 3
	A0   Reg = 4 // arguments
	A1   Reg = 5
	A2   Reg = 6
	A3   Reg = 7
	T0   Reg = 8 // caller-saved temporaries
	T1   Reg = 9
	T2   Reg = 10
	T3   Reg = 11
	T4   Reg = 12
	T5   Reg = 13
	T6   Reg = 14
	T7   Reg = 15
	S0   Reg = 16 // callee-saved
	S1   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	T8   Reg = 24
	T9   Reg = 25
	K0   Reg = 26
	K1   Reg = 27
	GP   Reg = 28 // global pointer
	SP   Reg = 29 // stack pointer
	FP   Reg = 30 // frame pointer
	RA   Reg = 31 // return address
)

// F returns the i'th floating-point register (0 <= i < 32).
func F(i int) Reg { return Reg(32 + i) }

// NumIntRegs is the count of architected integer registers.
const NumIntRegs = 32

// NumFPRegs is the count of architected floating-point registers.
const NumFPRegs = 32

// NumRegs is the size of the combined register name space.
const NumRegs = NumIntRegs + NumFPRegs

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= 32 }

// String renders the conventional assembler name of the register.
func (r Reg) String() string {
	if r.IsFP() {
		return fmt.Sprintf("$f%d", int(r)-32)
	}
	names := [...]string{
		"$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
		"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
		"$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
		"$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
	}
	return names[r]
}

// Op is a decoded operation code.
type Op uint8

// Operation codes. Arithmetic ops use Rd = Rs op Rt (or Imm).
// Memory ops use Rd (value) and an effective address built from
// Rs (base) and, depending on Mode, Imm or Rt, with optional base
// register post-update.
const (
	Nop Op = iota

	// Integer ALU, register forms.
	Add  // Rd = Rs + Rt
	Sub  // Rd = Rs - Rt
	And  // Rd = Rs & Rt
	Or   // Rd = Rs | Rt
	Xor  // Rd = Rs ^ Rt
	Nor  // Rd = ^(Rs | Rt)
	Sllv // Rd = Rs << (Rt & 63)
	Srlv // Rd = Rs >> (Rt & 63) logical
	Srav // Rd = Rs >> (Rt & 63) arithmetic
	Slt  // Rd = int64(Rs) < int64(Rt)
	Sltu // Rd = Rs < Rt (unsigned)

	// Integer ALU, immediate forms.
	Addi  // Rd = Rs + Imm
	Andi  // Rd = Rs & uint(Imm)
	Ori   // Rd = Rs | uint(Imm)
	Xori  // Rd = Rs ^ uint(Imm)
	Slti  // Rd = int64(Rs) < Imm
	Sltiu // Rd = Rs < uint64(Imm)
	Sll   // Rd = Rs << Imm
	Srl   // Rd = Rs >> Imm logical
	Sra   // Rd = Rs >> Imm arithmetic
	Lui   // Rd = Imm << 16

	// Integer multiply/divide (results written directly to Rd; the
	// virtual architecture has no HI/LO registers).
	Mult // Rd = Rs * Rt
	Div  // Rd = Rs / Rt (0 if Rt == 0)
	Rem  // Rd = Rs % Rt (0 if Rt == 0)

	// Floating point (operands and result in FP registers).
	AddF // Fd = Fs + Ft
	SubF // Fd = Fs - Ft
	MulF // Fd = Fs * Ft
	DivF // Fd = Fs / Ft
	AbsF // Fd = |Fs|
	NegF // Fd = -Fs
	MovF // Fd = Fs

	// Conversions and cross-file moves.
	CvtIF // Fd = float64(int64(Rs))
	CvtFI // Rd = int64(Fs), truncating
	MTF   // Fd = raw bits of Rs (move to FP)
	MFF   // Rd = raw bits of Fs (move from FP)

	// FP compares write an integer register (1/0) so branches can
	// consume them without condition codes.
	CmpLtF // Rd = Fs < Ft
	CmpLeF // Rd = Fs <= Ft
	CmpEqF // Rd = Fs == Ft

	// Memory. Rd is the loaded/stored value register; Rs is the base.
	Lb  // load signed byte
	Lbu // load unsigned byte
	Lh  // load signed half
	Lhu // load unsigned half
	Lw  // load signed word (32-bit)
	Ld  // load double word (64-bit)
	Sb  // store byte
	Sh  // store half
	Sw  // store word
	Sd  // store double word
	LdF // load 64-bit float into FP register
	StF // store 64-bit float from FP register

	// Control. Branches compare integer registers; Target holds the
	// absolute byte address of the destination.
	Beq  // branch if Rs == Rt
	Bne  // branch if Rs != Rt
	Blez // branch if int64(Rs) <= 0
	Bgtz // branch if int64(Rs) > 0
	Bltz // branch if int64(Rs) < 0
	Bgez // branch if int64(Rs) >= 0
	J    // jump to Target
	Jal  // jump and link: RA = PC+4
	Jr   // jump to Rs
	Jalr // jump to Rs, Rd = PC+4

	// Halt stops simulation (stands in for the exit system call).
	Halt

	numOps
)

// AMode selects the addressing mode of a memory instruction.
type AMode uint8

const (
	// AMImm computes Rs + Imm (the classic MIPS mode).
	AMImm AMode = iota
	// AMReg computes Rs + Rt (the paper's register+register extension).
	// For stores the value register Rd is unchanged.
	AMReg
	// AMPostInc computes Rs, then writes Rs += Imm back to Rs.
	AMPostInc
	// AMPostDec computes Rs, then writes Rs -= Imm back to Rs.
	AMPostDec
)

// Inst is a decoded instruction. The zero value is a Nop.
type Inst struct {
	Op     Op
	Mode   AMode  // memory addressing mode (memory ops only)
	Rd     Reg    // destination (or store-value source)
	Rs     Reg    // first source / base register
	Rt     Reg    // second source / index register
	Imm    int32  // immediate / displacement
	Target uint64 // absolute branch or jump target (byte address)
}

// InstBytes is the architected size of one instruction; the program
// counter advances by this amount.
const InstBytes = 4

// Class partitions ops by how the pipeline treats them.
type Class uint8

const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMult
	ClassIntDiv
	ClassFPAdd
	ClassFPMult
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional jumps (J, Jal, Jr, Jalr)
	ClassHalt
)

var opClass = [numOps]Class{
	Nop: ClassNop,
	Add: ClassIntALU, Sub: ClassIntALU, And: ClassIntALU, Or: ClassIntALU,
	Xor: ClassIntALU, Nor: ClassIntALU, Sllv: ClassIntALU, Srlv: ClassIntALU,
	Srav: ClassIntALU, Slt: ClassIntALU, Sltu: ClassIntALU,
	Addi: ClassIntALU, Andi: ClassIntALU, Ori: ClassIntALU, Xori: ClassIntALU,
	Slti: ClassIntALU, Sltiu: ClassIntALU, Sll: ClassIntALU, Srl: ClassIntALU,
	Sra: ClassIntALU, Lui: ClassIntALU,
	Mult: ClassIntMult, Div: ClassIntDiv, Rem: ClassIntDiv,
	AddF: ClassFPAdd, SubF: ClassFPAdd, AbsF: ClassFPAdd, NegF: ClassFPAdd,
	MovF: ClassFPAdd, CmpLtF: ClassFPAdd, CmpLeF: ClassFPAdd, CmpEqF: ClassFPAdd,
	CvtIF: ClassFPAdd, CvtFI: ClassFPAdd, MTF: ClassIntALU, MFF: ClassIntALU,
	MulF: ClassFPMult, DivF: ClassFPDiv,
	Lb: ClassLoad, Lbu: ClassLoad, Lh: ClassLoad, Lhu: ClassLoad,
	Lw: ClassLoad, Ld: ClassLoad, LdF: ClassLoad,
	Sb: ClassStore, Sh: ClassStore, Sw: ClassStore, Sd: ClassStore, StF: ClassStore,
	Beq: ClassBranch, Bne: ClassBranch, Blez: ClassBranch, Bgtz: ClassBranch,
	Bltz: ClassBranch, Bgez: ClassBranch,
	J: ClassJump, Jal: ClassJump, Jr: ClassJump, Jalr: ClassJump,
	Halt: ClassHalt,
}

// Class returns the pipeline class of the instruction's op.
func (i *Inst) Class() Class { return opClass[i.Op] }

// IsMem reports whether the instruction accesses data memory.
func (i *Inst) IsMem() bool {
	c := opClass[i.Op]
	return c == ClassLoad || c == ClassStore
}

// IsLoad reports whether the instruction is a load.
func (i *Inst) IsLoad() bool { return opClass[i.Op] == ClassLoad }

// IsStore reports whether the instruction is a store.
func (i *Inst) IsStore() bool { return opClass[i.Op] == ClassStore }

// IsCtrl reports whether the instruction can redirect the PC.
func (i *Inst) IsCtrl() bool {
	c := opClass[i.Op]
	return c == ClassBranch || c == ClassJump
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (i *Inst) IsCondBranch() bool { return opClass[i.Op] == ClassBranch }

// MemBytes returns the access width in bytes of a memory instruction
// (0 for non-memory ops).
func (i *Inst) MemBytes() int {
	switch i.Op {
	case Lb, Lbu, Sb:
		return 1
	case Lh, Lhu, Sh:
		return 2
	case Lw, Sw:
		return 4
	case Ld, Sd, LdF, StF:
		return 8
	}
	return 0
}

// UpdatesBase reports whether the memory instruction writes the base
// register back (post-increment/post-decrement addressing).
func (i *Inst) UpdatesBase() bool {
	return i.IsMem() && (i.Mode == AMPostInc || i.Mode == AMPostDec)
}

// Sources appends the architected source registers of the instruction
// to dst and returns the extended slice. Register Zero is included when
// architecturally read; consumers that treat $zero as always-ready
// filter it themselves.
func (i *Inst) Sources(dst []Reg) []Reg {
	switch i.Class() {
	case ClassNop, ClassHalt:
		return dst
	case ClassIntALU, ClassIntMult, ClassIntDiv, ClassFPAdd, ClassFPMult, ClassFPDiv:
		switch i.Op {
		case Lui:
			return dst
		case Sll, Srl, Sra, Addi, Andi, Ori, Xori, Slti, Sltiu,
			AbsF, NegF, MovF, CvtIF, CvtFI, MTF, MFF:
			return append(dst, i.Rs)
		default:
			return append(dst, i.Rs, i.Rt)
		}
	case ClassLoad:
		dst = append(dst, i.Rs)
		if i.Mode == AMReg {
			dst = append(dst, i.Rt)
		}
		return dst
	case ClassStore:
		dst = append(dst, i.Rd, i.Rs)
		if i.Mode == AMReg {
			dst = append(dst, i.Rt)
		}
		return dst
	case ClassBranch:
		switch i.Op {
		case Beq, Bne:
			return append(dst, i.Rs, i.Rt)
		default:
			return append(dst, i.Rs)
		}
	case ClassJump:
		if i.Op == Jr || i.Op == Jalr {
			return append(dst, i.Rs)
		}
		return dst
	}
	return dst
}

// Dests appends the architected destination registers to dst and
// returns the extended slice. A post-update memory op has two
// destinations (the value register for loads, plus the base register).
func (i *Inst) Dests(dst []Reg) []Reg {
	switch i.Class() {
	case ClassNop, ClassHalt, ClassBranch:
		return dst
	case ClassLoad:
		dst = append(dst, i.Rd)
		if i.UpdatesBase() {
			dst = append(dst, i.Rs)
		}
		return dst
	case ClassStore:
		if i.UpdatesBase() {
			dst = append(dst, i.Rs)
		}
		return dst
	case ClassJump:
		switch i.Op {
		case Jal:
			return append(dst, RA)
		case Jalr:
			return append(dst, i.Rd)
		}
		return dst
	default:
		return append(dst, i.Rd)
	}
}

var opNames = [numOps]string{
	Nop: "nop",
	Add: "add", Sub: "sub", And: "and", Or: "or", Xor: "xor", Nor: "nor",
	Sllv: "sllv", Srlv: "srlv", Srav: "srav", Slt: "slt", Sltu: "sltu",
	Addi: "addi", Andi: "andi", Ori: "ori", Xori: "xori", Slti: "slti",
	Sltiu: "sltiu", Sll: "sll", Srl: "srl", Sra: "sra", Lui: "lui",
	Mult: "mult", Div: "div", Rem: "rem",
	AddF: "add.d", SubF: "sub.d", MulF: "mul.d", DivF: "div.d",
	AbsF: "abs.d", NegF: "neg.d", MovF: "mov.d",
	CvtIF: "cvt.d.w", CvtFI: "cvt.w.d", MTF: "mtc1", MFF: "mfc1",
	CmpLtF: "c.lt.d", CmpLeF: "c.le.d", CmpEqF: "c.eq.d",
	Lb: "lb", Lbu: "lbu", Lh: "lh", Lhu: "lhu", Lw: "lw", Ld: "ld",
	Sb: "sb", Sh: "sh", Sw: "sw", Sd: "sd", LdF: "l.d", StF: "s.d",
	Beq: "beq", Bne: "bne", Blez: "blez", Bgtz: "bgtz", Bltz: "bltz",
	Bgez: "bgez", J: "j", Jal: "jal", Jr: "jr", Jalr: "jalr",
	Halt: "halt",
}

// String returns the mnemonic of the op.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// String renders the instruction in a readable assembler-like form.
func (i *Inst) String() string {
	switch i.Class() {
	case ClassNop:
		return "nop"
	case ClassHalt:
		return "halt"
	case ClassLoad, ClassStore:
		switch i.Mode {
		case AMReg:
			return fmt.Sprintf("%s %s, (%s+%s)", i.Op, i.Rd, i.Rs, i.Rt)
		case AMPostInc:
			return fmt.Sprintf("%s %s, (%s)+%d", i.Op, i.Rd, i.Rs, i.Imm)
		case AMPostDec:
			return fmt.Sprintf("%s %s, (%s)-%d", i.Op, i.Rd, i.Rs, i.Imm)
		default:
			return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs)
		}
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, 0x%x", i.Op, i.Rs, i.Rt, i.Target)
	case ClassJump:
		if i.Op == Jr || i.Op == Jalr {
			return fmt.Sprintf("%s %s", i.Op, i.Rs)
		}
		return fmt.Sprintf("%s 0x%x", i.Op, i.Target)
	default:
		return fmt.Sprintf("%s %s, %s, %s, %d", i.Op, i.Rd, i.Rs, i.Rt, i.Imm)
	}
}
