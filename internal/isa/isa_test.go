package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		Zero: "$zero", SP: "$sp", GP: "$gp", RA: "$ra", T0: "$t0",
		F(0): "$f0", F(31): "$f31",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		in    Inst
		class Class
		load  bool
		store bool
		ctrl  bool
	}{
		{Inst{Op: Add}, ClassIntALU, false, false, false},
		{Inst{Op: Lw}, ClassLoad, true, false, false},
		{Inst{Op: StF}, ClassStore, false, true, false},
		{Inst{Op: Beq}, ClassBranch, false, false, true},
		{Inst{Op: Jr}, ClassJump, false, false, true},
		{Inst{Op: MulF}, ClassFPMult, false, false, false},
		{Inst{Op: Div}, ClassIntDiv, false, false, false},
		{Inst{Op: Halt}, ClassHalt, false, false, false},
	}
	for _, c := range cases {
		if got := c.in.Class(); got != c.class {
			t.Errorf("%v.Class() = %v, want %v", c.in.Op, got, c.class)
		}
		if c.in.IsLoad() != c.load || c.in.IsStore() != c.store || c.in.IsCtrl() != c.ctrl {
			t.Errorf("%v: load/store/ctrl flags wrong", c.in.Op)
		}
	}
}

func TestSourcesAndDests(t *testing.T) {
	var buf [4]Reg
	cases := []struct {
		in    Inst
		srcs  []Reg
		dests []Reg
	}{
		{Inst{Op: Add, Rd: T0, Rs: T1, Rt: T2}, []Reg{T1, T2}, []Reg{T0}},
		{Inst{Op: Addi, Rd: T0, Rs: T1}, []Reg{T1}, []Reg{T0}},
		{Inst{Op: Lui, Rd: T0}, nil, []Reg{T0}},
		{Inst{Op: Lw, Rd: T0, Rs: T1, Mode: AMImm}, []Reg{T1}, []Reg{T0}},
		{Inst{Op: Lw, Rd: T0, Rs: T1, Rt: T2, Mode: AMReg}, []Reg{T1, T2}, []Reg{T0}},
		{Inst{Op: Lw, Rd: T0, Rs: T1, Mode: AMPostInc}, []Reg{T1}, []Reg{T0, T1}},
		{Inst{Op: Sw, Rd: T0, Rs: T1, Mode: AMImm}, []Reg{T0, T1}, nil},
		{Inst{Op: Sw, Rd: T0, Rs: T1, Mode: AMPostDec}, []Reg{T0, T1}, []Reg{T1}},
		{Inst{Op: Sw, Rd: T0, Rs: T1, Rt: T2, Mode: AMReg}, []Reg{T0, T1, T2}, nil},
		{Inst{Op: Beq, Rs: T1, Rt: T2}, []Reg{T1, T2}, nil},
		{Inst{Op: Blez, Rs: T1}, []Reg{T1}, nil},
		{Inst{Op: Jal}, nil, []Reg{RA}},
		{Inst{Op: Jalr, Rd: T5, Rs: T1}, []Reg{T1}, []Reg{T5}},
		{Inst{Op: Jr, Rs: RA}, []Reg{RA}, nil},
		{Inst{Op: Halt}, nil, nil},
	}
	for _, c := range cases {
		got := c.in.Sources(buf[:0])
		if !regsEqual(got, c.srcs) {
			t.Errorf("%s sources = %v, want %v", c.in.String(), got, c.srcs)
		}
		got = c.in.Dests(buf[:0])
		if !regsEqual(got, c.dests) {
			t.Errorf("%s dests = %v, want %v", c.in.String(), got, c.dests)
		}
	}
}

func regsEqual(a, b []Reg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestALUEvalIntegerOps(t *testing.T) {
	cases := []struct {
		in     Inst
		rs, rt uint64
		want   uint64
	}{
		{Inst{Op: Add}, 5, 7, 12},
		{Inst{Op: Sub}, 5, 7, ^uint64(1)},
		{Inst{Op: And}, 0xF0, 0x3C, 0x30},
		{Inst{Op: Or}, 0xF0, 0x0C, 0xFC},
		{Inst{Op: Xor}, 0xFF, 0x0F, 0xF0},
		{Inst{Op: Nor}, 0, 0, ^uint64(0)},
		{Inst{Op: Slt}, ^uint64(0), 1, 1},  // -1 < 1 signed
		{Inst{Op: Sltu}, ^uint64(0), 1, 0}, // max > 1 unsigned
		{Inst{Op: Addi, Imm: -3}, 10, 0, 7},
		{Inst{Op: Sll, Imm: 4}, 3, 0, 48},
		{Inst{Op: Srl, Imm: 1}, 0x8000000000000000, 0, 0x4000000000000000},
		{Inst{Op: Sra, Imm: 1}, 0x8000000000000000, 0, 0xC000000000000000},
		{Inst{Op: Lui, Imm: 0x1234}, 0, 0, 0x12340000},
		{Inst{Op: Mult}, 7, 6, 42},
		{Inst{Op: Div}, 42, 6, 7},
		{Inst{Op: Div}, 42, 0, 0}, // architected: no trap
		{Inst{Op: Rem}, 43, 6, 1},
		{Inst{Op: Slti, Imm: 5}, 4, 0, 1},
	}
	for _, c := range cases {
		if got := ALUEval(&c.in, c.rs, c.rt, 0); got != c.want {
			t.Errorf("%v(%#x,%#x) = %#x, want %#x", c.in.Op, c.rs, c.rt, got, c.want)
		}
	}
}

func TestALUEvalFloat(t *testing.T) {
	f := math.Float64bits
	cases := []struct {
		op     Op
		rs, rt float64
		want   float64
	}{
		{AddF, 1.5, 2.25, 3.75},
		{SubF, 1.5, 2.25, -0.75},
		{MulF, 3, 0.5, 1.5},
		{DivF, 3, 2, 1.5},
		{AbsF, -3, 0, 3},
		{NegF, 3, 0, -3},
		{MovF, 42.5, 0, 42.5},
	}
	for _, c := range cases {
		in := Inst{Op: c.op}
		if got := ALUEval(&in, f(c.rs), f(c.rt), 0); got != f(c.want) {
			t.Errorf("%v(%v,%v) = %v, want %v", c.op, c.rs, c.rt, math.Float64frombits(got), c.want)
		}
	}
	in := Inst{Op: CvtIF}
	if got := ALUEval(&in, uint64(7), 0, 0); math.Float64frombits(got) != 7.0 {
		t.Errorf("CvtIF(7) = %v", math.Float64frombits(got))
	}
	in = Inst{Op: CvtFI}
	if got := ALUEval(&in, f(7.9), 0, 0); got != 7 {
		t.Errorf("CvtFI(7.9) = %d, want 7 (truncating)", int64(got))
	}
	in = Inst{Op: CmpLtF}
	if got := ALUEval(&in, f(1), f(2), 0); got != 1 {
		t.Error("CmpLtF(1,2) != 1")
	}
}

func TestBranchTaken(t *testing.T) {
	neg := uint64(math.MaxUint64) // -1
	cases := []struct {
		op     Op
		rs, rt uint64
		want   bool
	}{
		{Beq, 5, 5, true}, {Beq, 5, 6, false},
		{Bne, 5, 6, true}, {Bne, 5, 5, false},
		{Blez, 0, 0, true}, {Blez, neg, 0, true}, {Blez, 1, 0, false},
		{Bgtz, 1, 0, true}, {Bgtz, 0, 0, false}, {Bgtz, neg, 0, false},
		{Bltz, neg, 0, true}, {Bltz, 0, 0, false},
		{Bgez, 0, 0, true}, {Bgez, neg, 0, false},
	}
	for _, c := range cases {
		in := Inst{Op: c.op}
		if got := BranchTaken(&in, c.rs, c.rt); got != c.want {
			t.Errorf("%v(%#x) = %v, want %v", c.op, c.rs, c.want, got)
		}
	}
}

func TestEffAddr(t *testing.T) {
	in := Inst{Op: Lw, Mode: AMImm, Imm: -8}
	if a, _, upd := EffAddr(&in, 100, 0); a != 92 || upd {
		t.Errorf("AMImm: addr %d upd %v", a, upd)
	}
	in = Inst{Op: Lw, Mode: AMReg}
	if a, _, upd := EffAddr(&in, 100, 28); a != 128 || upd {
		t.Errorf("AMReg: addr %d upd %v", a, upd)
	}
	in = Inst{Op: Lw, Mode: AMPostInc, Imm: 4}
	if a, nb, upd := EffAddr(&in, 100, 0); a != 100 || nb != 104 || !upd {
		t.Errorf("AMPostInc: addr %d newBase %d upd %v", a, nb, upd)
	}
	in = Inst{Op: Lw, Mode: AMPostDec, Imm: 4}
	if a, nb, upd := EffAddr(&in, 100, 0); a != 100 || nb != 96 || !upd {
		t.Errorf("AMPostDec: addr %d newBase %d upd %v", a, nb, upd)
	}
}

func TestLoadExtend(t *testing.T) {
	cases := []struct {
		op   Op
		raw  uint64
		want uint64
	}{
		{Lb, 0x80, 0xFFFFFFFFFFFFFF80},
		{Lbu, 0x80, 0x80},
		{Lh, 0x8000, 0xFFFFFFFFFFFF8000},
		{Lhu, 0x8000, 0x8000},
		{Lw, 0x80000000, 0xFFFFFFFF80000000},
		{Ld, 0x8000000000000000, 0x8000000000000000},
	}
	for _, c := range cases {
		if got := LoadExtend(c.op, c.raw); got != c.want {
			t.Errorf("LoadExtend(%v, %#x) = %#x, want %#x", c.op, c.raw, got, c.want)
		}
	}
}

// Property: Add/Sub and Sll/Srl are inverses where defined.
func TestALUInverseProperties(t *testing.T) {
	add := Inst{Op: Add}
	sub := Inst{Op: Sub}
	if err := quick.Check(func(a, b uint64) bool {
		return ALUEval(&sub, ALUEval(&add, a, b, 0), b, 0) == a
	}, nil); err != nil {
		t.Error("add/sub inverse:", err)
	}
	if err := quick.Check(func(a uint64, sh uint8) bool {
		s := int32(sh % 32)
		sll := Inst{Op: Sll, Imm: s}
		srl := Inst{Op: Srl, Imm: s}
		masked := a << (64 - uint(s) - 1) >> (64 - uint(s) - 1) // value that survives the round trip
		return ALUEval(&srl, ALUEval(&sll, masked, 0, 0), 0, 0) == masked
	}, nil); err != nil {
		t.Error("sll/srl inverse:", err)
	}
}
