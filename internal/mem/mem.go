// Package mem implements the sparse physical memory underlying the
// simulated machine. Storage is allocated in fixed-size frames on first
// touch, so multi-megabyte simulated data sets (the paper's TFFT uses
// ~40 MB) cost only what they actually touch.
package mem

import (
	"encoding/binary"
	"sort"
)

// FrameBits is the log2 of the physical frame size used for backing
// storage. This is an implementation detail of the sparse store and is
// independent of the virtual-memory page size.
const FrameBits = 12

// FrameSize is the byte size of one backing frame.
const FrameSize = 1 << FrameBits

type frame [FrameSize]byte

// Memory is a sparse byte-addressable physical memory. The zero value
// is an empty memory ready for use. Memory is not safe for concurrent
// mutation; the simulator is single-goroutine per machine.
type Memory struct {
	frames map[uint64]*frame
}

// New returns an empty physical memory.
func New() *Memory {
	return &Memory{frames: make(map[uint64]*frame)}
}

func (m *Memory) frameFor(addr uint64) *frame {
	if m.frames == nil {
		m.frames = make(map[uint64]*frame)
	}
	fn := addr >> FrameBits
	f := m.frames[fn]
	if f == nil {
		f = new(frame)
		m.frames[fn] = f
	}
	return f
}

// peekFrame returns the frame containing addr, or nil if untouched.
func (m *Memory) peekFrame(addr uint64) *frame {
	if m.frames == nil {
		return nil
	}
	return m.frames[addr>>FrameBits]
}

// FramesTouched reports how many backing frames have been allocated.
func (m *Memory) FramesTouched() int { return len(m.frames) }

// FrameImage is one backing frame's contents keyed by its frame index
// (physical address >> FrameBits).
type FrameImage struct {
	Index uint64
	Data  [FrameSize]byte
}

// ExportFrames returns the contents of every non-zero backing frame,
// sorted by frame index. All-zero frames are omitted: an untouched frame
// and an allocated-but-zero frame read identically, so the omission is
// invisible to any Read and keeps checkpoints compact and deterministic.
func (m *Memory) ExportFrames() []FrameImage {
	out := make([]FrameImage, 0, len(m.frames))
	for idx, f := range m.frames {
		if *f == (frame{}) {
			continue
		}
		out = append(out, FrameImage{Index: idx, Data: *f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// ImportFrames replaces the memory's contents with the given frames.
func (m *Memory) ImportFrames(frames []FrameImage) {
	m.frames = make(map[uint64]*frame, len(frames))
	for i := range frames {
		f := frame(frames[i].Data)
		m.frames[frames[i].Index] = &f
	}
}

// Frame returns a pointer to the backing frame containing addr,
// allocating it on first touch. The pointer stays valid until
// ImportFrames replaces the store. The translated functional engine
// caches it to skip the frame-map lookup on its memory fast path;
// allocating on a read here is invisible because an all-zero frame
// reads identically to an untouched one and ExportFrames omits it.
func (m *Memory) Frame(addr uint64) *[FrameSize]byte {
	return (*[FrameSize]byte)(m.frameFor(addr))
}

// ByteAt returns the byte at addr (0 for untouched memory).
func (m *Memory) ByteAt(addr uint64) byte {
	f := m.peekFrame(addr)
	if f == nil {
		return 0
	}
	return f[addr&(FrameSize-1)]
}

// SetByte stores one byte at addr.
func (m *Memory) SetByte(addr uint64, v byte) {
	m.frameFor(addr)[addr&(FrameSize-1)] = v
}

// Read fills buf with len(buf) bytes starting at addr. Reads may span
// frame boundaries.
func (m *Memory) Read(addr uint64, buf []byte) {
	for len(buf) > 0 {
		off := addr & (FrameSize - 1)
		n := FrameSize - off
		if uint64(len(buf)) < n {
			n = uint64(len(buf))
		}
		if f := m.peekFrame(addr); f != nil {
			copy(buf[:n], f[off:off+n])
		} else {
			for i := range buf[:n] {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		addr += n
	}
}

// Write stores buf at addr. Writes may span frame boundaries.
func (m *Memory) Write(addr uint64, buf []byte) {
	for len(buf) > 0 {
		off := addr & (FrameSize - 1)
		n := FrameSize - off
		if uint64(len(buf)) < n {
			n = uint64(len(buf))
		}
		copy(m.frameFor(addr)[off:off+n], buf[:n])
		buf = buf[n:]
		addr += n
	}
}

// fast-path helpers: loads and stores of naturally aligned scalars are
// the common case in the simulator's inner loop, so avoid the generic
// span logic when the access fits in one frame.

// Read16 loads a little-endian 16-bit value.
func (m *Memory) Read16(addr uint64) uint16 {
	off := addr & (FrameSize - 1)
	if off <= FrameSize-2 {
		f := m.peekFrame(addr)
		if f == nil {
			return 0
		}
		return binary.LittleEndian.Uint16(f[off:])
	}
	var b [2]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint16(b[:])
}

// Read32 loads a little-endian 32-bit value.
func (m *Memory) Read32(addr uint64) uint32 {
	off := addr & (FrameSize - 1)
	if off <= FrameSize-4 {
		f := m.peekFrame(addr)
		if f == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(f[off:])
	}
	var b [4]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// Read64 loads a little-endian 64-bit value.
func (m *Memory) Read64(addr uint64) uint64 {
	off := addr & (FrameSize - 1)
	if off <= FrameSize-8 {
		f := m.peekFrame(addr)
		if f == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(f[off:])
	}
	var b [8]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Write16 stores a little-endian 16-bit value.
func (m *Memory) Write16(addr uint64, v uint16) {
	off := addr & (FrameSize - 1)
	if off <= FrameSize-2 {
		binary.LittleEndian.PutUint16(m.frameFor(addr)[off:], v)
		return
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	m.Write(addr, b[:])
}

// Write32 stores a little-endian 32-bit value.
func (m *Memory) Write32(addr uint64, v uint32) {
	off := addr & (FrameSize - 1)
	if off <= FrameSize-4 {
		binary.LittleEndian.PutUint32(m.frameFor(addr)[off:], v)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.Write(addr, b[:])
}

// Write64 stores a little-endian 64-bit value.
func (m *Memory) Write64(addr uint64, v uint64) {
	off := addr & (FrameSize - 1)
	if off <= FrameSize-8 {
		binary.LittleEndian.PutUint64(m.frameFor(addr)[off:], v)
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.Write(addr, b[:])
}
