package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestZeroValueAndUntouchedReadsAsZero(t *testing.T) {
	var m Memory
	if m.ByteAt(12345) != 0 {
		t.Error("untouched byte != 0")
	}
	if m.Read64(99999) != 0 {
		t.Error("untouched word != 0")
	}
	buf := make([]byte, 64)
	m.Read(1<<40, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("untouched span != 0")
		}
	}
	if m.FramesTouched() != 0 {
		t.Error("reads allocated frames")
	}
}

func TestScalarRoundTrips(t *testing.T) {
	m := New()
	m.SetByte(10, 0xAB)
	if got := m.ByteAt(10); got != 0xAB {
		t.Errorf("byte: %#x", got)
	}
	m.Write16(100, 0xBEEF)
	if got := m.Read16(100); got != 0xBEEF {
		t.Errorf("u16: %#x", got)
	}
	m.Write32(200, 0xDEADBEEF)
	if got := m.Read32(200); got != 0xDEADBEEF {
		t.Errorf("u32: %#x", got)
	}
	m.Write64(300, 0x0123456789ABCDEF)
	if got := m.Read64(300); got != 0x0123456789ABCDEF {
		t.Errorf("u64: %#x", got)
	}
}

func TestFrameBoundarySpans(t *testing.T) {
	m := New()
	// Write a 64-bit value straddling a frame boundary.
	addr := uint64(FrameSize - 3)
	m.Write64(addr, 0x1122334455667788)
	if got := m.Read64(addr); got != 0x1122334455667788 {
		t.Errorf("straddling u64: %#x", got)
	}
	// Bulk write across several frames.
	data := make([]byte, 3*FrameSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	base := uint64(5*FrameSize - 100)
	m.Write(base, data)
	got := make([]byte, len(data))
	m.Read(base, got)
	if !bytes.Equal(data, got) {
		t.Error("multi-frame span mismatch")
	}
}

func TestSparseness(t *testing.T) {
	m := New()
	m.SetByte(0, 1)
	m.SetByte(1<<30, 1)
	if got := m.FramesTouched(); got != 2 {
		t.Errorf("frames touched = %d, want 2", got)
	}
}

// Property: what is written is read back, for all widths and addresses.
func TestReadWriteProperty(t *testing.T) {
	m := New()
	if err := quick.Check(func(addr uint64, v uint64, width uint8) bool {
		addr %= 1 << 30
		switch width % 4 {
		case 0:
			m.SetByte(addr, byte(v))
			return m.ByteAt(addr) == byte(v)
		case 1:
			m.Write16(addr, uint16(v))
			return m.Read16(addr) == uint16(v)
		case 2:
			m.Write32(addr, uint32(v))
			return m.Read32(addr) == uint32(v)
		default:
			m.Write64(addr, v)
			return m.Read64(addr) == v
		}
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: little-endian composition — a 64-bit write is byte-wise
// consistent with ByteAt.
func TestEndiannessProperty(t *testing.T) {
	m := New()
	if err := quick.Check(func(addr uint64, v uint64) bool {
		addr %= 1 << 30
		m.Write64(addr, v)
		for i := 0; i < 8; i++ {
			if m.ByteAt(addr+uint64(i)) != byte(v>>(8*i)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
