// Package model implements the paper's Section 2 qualitative
// performance model of address translation and fits it to measured
// simulation results. The model:
//
//	t_AT    = (1 - f_shielded) * (t_stalled + t_TLBhit + M_TLB * t_TLBmiss)
//	TPI_AT  = f_MEM * (1 - f_TOL) * t_AT
//
// where f_shielded is the fraction of requests absorbed by a shielding
// mechanism (L1 TLB, piggyback port, or pretranslation cache),
// t_stalled the average port-queueing delay, M_TLB the base-TLB miss
// ratio, and f_TOL the fraction of translation latency the processor
// core tolerates (overlap from out-of-order issue and non-blocking
// memory). Every quantity except f_TOL is measured directly; f_TOL is
// inferred by comparing the model's untolerated time-per-instruction
// against the measured slowdown relative to an unconstrained-bandwidth
// baseline, which is exactly how the paper frames the term.
package model

import (
	"fmt"
	"io"

	"hbat/internal/cpu"
	"hbat/internal/tlb"
)

// RunStats bundles the core and device statistics of one run.
type RunStats struct {
	CPU cpu.Stats
	TLB tlb.Stats
}

// Report is the fitted Section 2 model for one design, relative to a
// baseline whose translation bandwidth never constrains the core (the
// paper's T4).
type Report struct {
	Design   string
	Workload string

	// Model inputs measured from the run.
	FMem      float64 // dynamic fraction of instructions accessing memory
	FShielded float64 // requests absorbed by shielding structures
	MTLB      float64 // base-TLB miss ratio (per unshielded request)
	TStalled  float64 // average cycles queued for a port, per unshielded request
	TTLBHit   float64 // average extra hit latency beyond the overlapped access
	TTLBMiss  float64 // average walk cost in cycles

	// Model outputs.
	TAT         float64 // average translation latency seen by the core (cycles)
	TPIUntol    float64 // f_MEM * t_AT: time per instruction with no tolerance
	TPIMeasured float64 // measured time-per-instruction increase vs baseline
	FTol        float64 // inferred fraction of latency tolerated by the core
	BaselineCPI float64
	MeasuredCPI float64
	RelativeIPC float64 // design IPC / baseline IPC (the figures' metric)
}

// Analyze fits the model. base must be a run of the same program on a
// translation device with enough bandwidth that it never constrains the
// core (T4 in the paper); dev is the design under analysis.
func Analyze(design, workload string, base, dev RunStats, walkLatency float64) Report {
	r := Report{Design: design, Workload: workload}

	insts := float64(dev.CPU.Committed)
	if insts == 0 {
		return r
	}
	refs := float64(dev.CPU.CommittedLoads + dev.CPU.CommittedStores)
	r.FMem = refs / insts

	lookups := float64(dev.TLB.Lookups)
	if lookups > 0 {
		shielded := float64(dev.TLB.ShieldHits + dev.TLB.Piggybacks)
		r.FShielded = shielded / lookups
		unshielded := lookups - shielded
		if unshielded > 0 {
			r.MTLB = float64(dev.TLB.Misses) / unshielded
			// Port-queueing latency: rejected-and-retried requests
			// spend one cycle per rejection; multi-level/pretranslation
			// designs also report explicit queue cycles.
			r.TStalled = (float64(dev.TLB.NoPorts) + float64(dev.TLB.QueueCycles)) / unshielded
			// Extra hit latency beyond queueing (the L1-miss/base-
			// access structural penalty); devices accumulate it in
			// ExtraCycles, which includes the queueing component.
			extra := float64(dev.TLB.ExtraCycles) - float64(dev.TLB.QueueCycles)
			if extra > 0 {
				r.TTLBHit = extra / unshielded
			}
		}
	}
	r.TTLBMiss = walkLatency

	r.TAT = (1 - r.FShielded) * (r.TStalled + r.TTLBHit + r.MTLB*r.TTLBMiss)
	r.TPIUntol = r.FMem * r.TAT

	if base.CPU.Committed > 0 && dev.CPU.Committed > 0 {
		r.BaselineCPI = float64(base.CPU.Cycles) / float64(base.CPU.Committed)
		r.MeasuredCPI = float64(dev.CPU.Cycles) / float64(dev.CPU.Committed)
		r.TPIMeasured = r.MeasuredCPI - r.BaselineCPI
		if r.MeasuredCPI > 0 {
			r.RelativeIPC = r.BaselineCPI / r.MeasuredCPI
		}
		if r.TPIUntol > 0 {
			r.FTol = 1 - r.TPIMeasured/r.TPIUntol
			if r.FTol < 0 {
				r.FTol = 0
			}
			if r.FTol > 1 {
				r.FTol = 1
			}
		}
	}
	return r
}

// Render writes the report in the paper's vocabulary.
func (r Report) Render(w io.Writer) {
	fmt.Fprintf(w, "Section 2 model fit: %s on %s\n", r.Design, r.Workload)
	fmt.Fprintf(w, "  f_MEM       %7.4f   (memory refs per instruction)\n", r.FMem)
	fmt.Fprintf(w, "  f_shielded  %7.4f   (requests absorbed before the base TLB)\n", r.FShielded)
	fmt.Fprintf(w, "  t_stalled   %7.4f   (avg cycles queued for a port)\n", r.TStalled)
	fmt.Fprintf(w, "  t_TLBhit+   %7.4f   (avg extra hit latency)\n", r.TTLBHit)
	fmt.Fprintf(w, "  M_TLB       %7.4f   (base-TLB miss ratio)\n", r.MTLB)
	fmt.Fprintf(w, "  t_TLBmiss   %7.1f   (walk latency, cycles)\n", r.TTLBMiss)
	fmt.Fprintf(w, "  t_AT        %7.4f   (avg translation latency seen by the core)\n", r.TAT)
	fmt.Fprintf(w, "  TPI untol.  %7.4f   (f_MEM * t_AT: cycles/inst if untolerated)\n", r.TPIUntol)
	fmt.Fprintf(w, "  TPI meas.   %7.4f   (measured CPI increase vs baseline)\n", r.TPIMeasured)
	fmt.Fprintf(w, "  f_TOL       %7.4f   (inferred latency tolerance of the core)\n", r.FTol)
	fmt.Fprintf(w, "  IPC vs base %7.4f\n", r.RelativeIPC)
}
