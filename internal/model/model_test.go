package model

import (
	"strings"
	"testing"

	"hbat/internal/cpu"
	"hbat/internal/prog"
	"hbat/internal/workload"
)

func run(t *testing.T, design string) RunStats {
	t.Helper()
	w, err := workload.ByName("xlisp")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cpu.NewWithDesign(p, cpu.DefaultConfig(), design)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return RunStats{CPU: *m.Stats(), TLB: *m.DTLB.Stats()}
}

func TestAnalyzeMultilevel(t *testing.T) {
	base := run(t, "T4")
	dev := run(t, "M8")
	rep := Analyze("M8", "xlisp", base, dev, 30)

	if rep.FMem <= 0 || rep.FMem > 1 {
		t.Fatalf("f_MEM = %f", rep.FMem)
	}
	// An 8-entry LRU L1 shields the vast majority of requests
	// (Figure 6: the run-time weighted 8-entry miss rate is ~5-10%).
	if rep.FShielded < 0.7 {
		t.Fatalf("f_shielded = %f, expected substantial shielding", rep.FShielded)
	}
	if rep.MTLB < 0 || rep.MTLB > 1 {
		t.Fatalf("M_TLB = %f", rep.MTLB)
	}
	if rep.TAT < 0 {
		t.Fatalf("t_AT = %f", rep.TAT)
	}
	if rep.FTol < 0 || rep.FTol > 1 {
		t.Fatalf("f_TOL = %f", rep.FTol)
	}
	if rep.RelativeIPC <= 0 || rep.RelativeIPC > 1.2 {
		t.Fatalf("relative IPC = %f", rep.RelativeIPC)
	}
}

func TestAnalyzeUnshieldedDesign(t *testing.T) {
	base := run(t, "T4")
	dev := run(t, "T1")
	rep := Analyze("T1", "xlisp", base, dev, 30)
	if rep.FShielded != 0 {
		t.Fatalf("T1 has no shielding, f_shielded = %f", rep.FShielded)
	}
	// Port starvation must show up as stall latency.
	if rep.TStalled <= 0 {
		t.Fatalf("T1 t_stalled = %f, expected queueing", rep.TStalled)
	}
	// T1 must be measurably slower than T4.
	if rep.TPIMeasured <= 0 {
		t.Fatalf("measured TPI delta = %f", rep.TPIMeasured)
	}
}

func TestAnalyzeBaselineAgainstItself(t *testing.T) {
	base := run(t, "T4")
	rep := Analyze("T4", "xlisp", base, base, 30)
	if rep.TPIMeasured != 0 {
		t.Fatalf("self-comparison TPI delta = %f", rep.TPIMeasured)
	}
	if rep.RelativeIPC != 1 {
		t.Fatalf("self-comparison relative IPC = %f", rep.RelativeIPC)
	}
}

func TestAnalyzeEmptyStats(t *testing.T) {
	rep := Analyze("X", "y", RunStats{}, RunStats{}, 30)
	if rep.FMem != 0 || rep.TAT != 0 {
		t.Fatalf("empty stats produced %+v", rep)
	}
}

func TestRender(t *testing.T) {
	base := run(t, "T4")
	dev := run(t, "P8")
	rep := Analyze("P8", "xlisp", base, dev, 30)
	var sb strings.Builder
	rep.Render(&sb)
	out := sb.String()
	for _, want := range []string{"f_MEM", "f_shielded", "t_AT", "f_TOL", "P8", "xlisp"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
