package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"hbat/internal/stats"
)

// Namespace prefixes every exposed metric: the registry's two-segment
// `subsystem.noun_unit` names become `hbat_subsystem_noun_unit`.
const Namespace = "hbat"

// PromName maps a registry metric name to its Prometheus exposition
// name: the hbat namespace is prepended and every character outside
// [a-zA-Z0-9_:] becomes an underscore (dots separate the segments).
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(Namespace) + 1 + len(name))
	b.WriteString(Namespace)
	b.WriteByte('_')
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Label is one exposition label pair.
type Label struct {
	Name, Value string
}

// Series is one sample of a counter or gauge family.
type Series struct {
	Labels []Label
	Value  float64
}

// HistSeries is one labeled histogram: per-bucket (not cumulative)
// counts over finite upper bounds, with the implicit +Inf overflow
// bucket last.
type HistSeries struct {
	Labels []Label
	Bounds []int64  // ascending finite upper bounds
	Counts []uint64 // len(Bounds)+1; last is the +Inf bucket
	Sum    float64
	Count  uint64
}

// Family is one exposition metric family. Kind selects which series
// slice is meaningful: Series for "counter"/"gauge", Hists for
// "histogram".
type Family struct {
	Name   string // full exposition name (hbat_...)
	Kind   string
	Help   string
	Series []Series
	Hists  []HistSeries
}

// SnapshotFamilies converts a stats snapshot into exposition families,
// attaching the given labels to every series. Gauges additionally
// export a companion `<name>_max` gauge (the high-water mark the
// registry tracks); histograms export `<name>_max` the same way.
func SnapshotFamilies(snap stats.Snapshot, labels ...Label) []Family {
	var fams []Family
	for _, m := range snap {
		name := PromName(m.Name)
		switch m.Kind {
		case "counter":
			fams = append(fams, Family{
				Name: name, Kind: "counter",
				Series: []Series{{Labels: labels, Value: float64(m.Value)}},
			})
		case "gauge":
			fams = append(fams,
				Family{Name: name, Kind: "gauge",
					Series: []Series{{Labels: labels, Value: float64(m.Level)}}},
				Family{Name: name + "_max", Kind: "gauge",
					Series: []Series{{Labels: labels, Value: float64(m.Max)}}},
			)
		case "histogram":
			fams = append(fams,
				Family{Name: name, Kind: "histogram",
					Hists: []HistSeries{{
						Labels: labels,
						Bounds: m.Bounds,
						Counts: m.Buckets,
						Sum:    float64(m.Sum),
						Count:  m.Count,
					}}},
				Family{Name: name + "_max", Kind: "gauge",
					Series: []Series{{Labels: labels, Value: float64(m.Max)}}},
			)
		}
	}
	return fams
}

// WriteExposition renders families as Prometheus text exposition
// (version 0.0.4). Families with the same name are merged into one
// group (their kinds must agree), families are sorted by name, and
// series within a family by label signature, so the output is stable
// for golden tests and scrapes alike.
func WriteExposition(w io.Writer, fams []Family) error {
	merged := make(map[string]*Family)
	var names []string
	for i := range fams {
		f := &fams[i]
		if f.Name == "" {
			return fmt.Errorf("obs: family with empty name")
		}
		if g, ok := merged[f.Name]; ok {
			if g.Kind != f.Kind {
				return fmt.Errorf("obs: family %s declared both %s and %s", f.Name, g.Kind, f.Kind)
			}
			g.Series = append(g.Series, f.Series...)
			g.Hists = append(g.Hists, f.Hists...)
			if g.Help == "" {
				g.Help = f.Help
			}
			continue
		}
		cp := *f
		merged[f.Name] = &cp
		names = append(names, f.Name)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := merged[name]
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, f.Kind)
		switch f.Kind {
		case "histogram":
			hists := f.Hists
			sort.SliceStable(hists, func(a, b int) bool {
				return labelString(hists[a].Labels) < labelString(hists[b].Labels)
			})
			for _, h := range hists {
				var cum uint64
				for i, bound := range h.Bounds {
					cum += h.Counts[i]
					writeSample(bw, name+"_bucket", withLe(h.Labels, strconv.FormatInt(bound, 10)), float64(cum))
				}
				if n := len(h.Bounds); n < len(h.Counts) {
					cum += h.Counts[n]
				}
				writeSample(bw, name+"_bucket", withLe(h.Labels, "+Inf"), float64(cum))
				writeSample(bw, name+"_sum", h.Labels, h.Sum)
				writeSample(bw, name+"_count", h.Labels, float64(h.Count))
			}
		default:
			series := f.Series
			sort.SliceStable(series, func(a, b int) bool {
				return labelString(series[a].Labels) < labelString(series[b].Labels)
			})
			for _, s := range series {
				writeSample(bw, name, s.Labels, s.Value)
			}
		}
	}
	return bw.Flush()
}

// withLe returns labels plus a trailing le pair, never aliasing the
// input's backing array.
func withLe(labels []Label, le string) []Label {
	out := make([]Label, len(labels)+1)
	copy(out, labels)
	out[len(out)-1] = Label{"le", le}
	return out
}

func writeSample(w *bufio.Writer, name string, labels []Label, v float64) {
	w.WriteString(name)
	w.WriteString(labelString(labels))
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

// labelString renders `{a="b",c="d"}` with label-value escaping, or ""
// for no labels.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue prints integers exactly and everything else in Go's
// shortest round-trippable form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
