package obs

import (
	"strings"
	"testing"

	"hbat/internal/stats"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"tlb.port_queue_depth": "hbat_tlb_port_queue_depth",
		"sweep.runs_executed":  "hbat_sweep_runs_executed",
		"weird-name.1":         "hbat_weird_name_1",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWriteExpositionGolden pins the exposition byte-for-byte: family
// ordering (sorted by name), series ordering (sorted by label
// signature), label escaping, cumulative histogram buckets ending at
// +Inf, and _sum/_count lines.
func TestWriteExpositionGolden(t *testing.T) {
	fams := []Family{
		{Name: "hbat_zeta_total", Kind: "counter", Help: "Last declared, first alphabetically after others.",
			Series: []Series{{Value: 3}}},
		{Name: "hbat_latency_ms", Kind: "histogram", Help: "A histogram.",
			Hists: []HistSeries{
				{Labels: []Label{{"workload", "perl"}}, Bounds: []int64{1, 4}, Counts: []uint64{2, 1, 1}, Sum: 9.5, Count: 4},
				{Labels: []Label{{"workload", "gcc"}}, Bounds: []int64{1, 4}, Counts: []uint64{1, 0, 0}, Sum: 0.5, Count: 1},
			}},
		{Name: "hbat_gauge", Kind: "gauge", Help: `Escapes: back\slash and
newline.`,
			Series: []Series{{Labels: []Label{{"q", `a"b\c` + "\n"}}, Value: 1.5}}},
	}
	var b strings.Builder
	if err := WriteExposition(&b, fams); err != nil {
		t.Fatal(err)
	}
	want := `# HELP hbat_gauge Escapes: back\\slash and\nnewline.
# TYPE hbat_gauge gauge
hbat_gauge{q="a\"b\\c\n"} 1.5
# HELP hbat_latency_ms A histogram.
# TYPE hbat_latency_ms histogram
hbat_latency_ms_bucket{workload="gcc",le="1"} 1
hbat_latency_ms_bucket{workload="gcc",le="4"} 1
hbat_latency_ms_bucket{workload="gcc",le="+Inf"} 1
hbat_latency_ms_sum{workload="gcc"} 0.5
hbat_latency_ms_count{workload="gcc"} 1
hbat_latency_ms_bucket{workload="perl",le="1"} 2
hbat_latency_ms_bucket{workload="perl",le="4"} 3
hbat_latency_ms_bucket{workload="perl",le="+Inf"} 4
hbat_latency_ms_sum{workload="perl"} 9.5
hbat_latency_ms_count{workload="perl"} 4
# HELP hbat_zeta_total Last declared, first alphabetically after others.
# TYPE hbat_zeta_total counter
hbat_zeta_total 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// The golden output must also satisfy our own validator.
	if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
		t.Errorf("golden output fails validation: %v", err)
	}
}

// TestSnapshotFamiliesRoundTrip renders a real registry snapshot and
// validates it parses, with gauges and histograms growing _max
// companions.
func TestSnapshotFamiliesRoundTrip(t *testing.T) {
	r := stats.NewRegistry()
	r.Counter("tlb.lookups").Add(12)
	g := r.Gauge("rob.depth")
	g.Set(9)
	g.Set(4)
	h := r.Histogram("tlb.walk_latency", []int64{1, 4, 16})
	for _, v := range []int64{0, 3, 20} {
		h.Observe(v)
	}

	fams := SnapshotFamilies(r.Snapshot(), Label{"run", "1"})
	var b strings.Builder
	if err := WriteExposition(&b, fams); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"hbat_tlb_lookups{run=\"1\"} 12",
		"hbat_rob_depth{run=\"1\"} 4",
		"hbat_rob_depth_max{run=\"1\"} 9",
		"hbat_tlb_walk_latency_bucket{run=\"1\",le=\"+Inf\"} 3",
		"hbat_tlb_walk_latency_max{run=\"1\"} 20",
		"hbat_tlb_walk_latency_count{run=\"1\"} 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if _, err := ParseExposition(strings.NewReader(out)); err != nil {
		t.Errorf("snapshot exposition invalid: %v", err)
	}
}

func TestWriteExpositionRejectsKindConflict(t *testing.T) {
	fams := []Family{
		{Name: "hbat_x", Kind: "counter", Series: []Series{{Value: 1}}},
		{Name: "hbat_x", Kind: "gauge", Series: []Series{{Value: 2}}},
	}
	if err := WriteExposition(&strings.Builder{}, fams); err == nil {
		t.Error("conflicting kinds for one family not rejected")
	}
}
