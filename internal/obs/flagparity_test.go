package obs

import (
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
)

// flagNameRE matches the flag names in a FlagSet's -h usage output
// ("  -obs string", "  -spans", ...).
var flagNameRE = regexp.MustCompile(`(?m)^  -([a-z0-9-]+)`)

// TestFlagParityAcrossBinaries builds every cmd/hbat* binary and
// asserts each one registers the shared observability flag set — the
// contract that any binary can be pointed at the same dashboards,
// log pipelines, and span tooling. A binary that drops obs.AddFlags
// (or a rename of one of these flags) fails here, not in production.
func TestFlagParityAcrossBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every binary")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	// hbat-trace registers the shared set per subcommand; capture
	// stands in for all three.
	bins := []struct {
		name string
		args []string
	}{
		{"hbat", []string{"-h"}},
		{"hbat-experiments", []string{"-h"}},
		{"hbat-report", []string{"-h"}},
		{"hbat-missrates", []string{"-h"}},
		{"hbat-bench-sweep", []string{"-h"}},
		{"hbat-trace", []string{"capture", "-h"}},
		{"hbatd", []string{"-h"}},
		{"hbatc", []string{"-h"}},
	}
	dir := t.TempDir()
	for _, b := range bins {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, b.name), "./cmd/"+b.name)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", b.name, err, out)
		}
	}
	shared := []string{"obs", "log-level", "log-format", "obs-watchdog", "spans", "spans-out"}
	for _, b := range bins {
		// -h prints usage and exits 0 (or 2 on older toolchains);
		// either way the flag listing is what matters.
		out, _ := exec.Command(filepath.Join(dir, b.name), b.args...).CombinedOutput()
		have := map[string]bool{}
		for _, m := range flagNameRE.FindAllStringSubmatch(string(out), -1) {
			have[m[1]] = true
		}
		for _, f := range shared {
			if !have[f] {
				t.Errorf("%s %v: missing shared flag -%s\nusage:\n%s", b.name, b.args, f, out)
			}
		}
	}
}
