package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"time"

	"hbat/internal/harness"
)

// Flags is the shared observability flag set every cmd/hbat* binary
// registers: -obs, -log-level, -log-format, and -obs-watchdog.
type Flags struct {
	Addr     string
	LogLevel string
	Format   string
	Watchdog time.Duration
}

// AddFlags registers the observability flags on fs and returns the
// struct they populate.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Addr, "obs", "", "serve /metrics, /health, /ready, and /debug/pprof on this address (e.g. :8090; empty = off)")
	fs.StringVar(&f.LogLevel, "log-level", "info", "log verbosity: debug, info, warn, or error")
	fs.StringVar(&f.Format, "log-format", "text", "log encoding: text or json")
	fs.DurationVar(&f.Watchdog, "obs-watchdog", 2*time.Minute, "report unhealthy when a sweep makes no progress for this long (0 = never)")
	return f
}

// NewLogger builds the slog logger the flags describe, writing to w.
func (f *Flags) NewLogger(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(f.LogLevel) {
	case "debug":
		level = slog.LevelDebug
	case "info", "":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", f.LogLevel)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(f.Format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", f.Format)
	}
}

// Setup wires the flags into a logger and, when -obs is set, a running
// observability server bound to the engine: the logger becomes the
// engine's run logger, the progress watchdog becomes its heartbeat,
// and ctx cancellation flips the engine to draining so /ready reports
// it. With -obs unset no listener is opened and no goroutine started;
// only the logger is returned. logw receives log output (typically
// os.Stderr). Callers must Close the returned server when non-nil.
func (f *Flags) Setup(ctx context.Context, logw io.Writer, engine *harness.Engine) (*slog.Logger, *Server, error) {
	logger, err := f.NewLogger(logw)
	if err != nil {
		return nil, nil, err
	}
	if engine != nil {
		engine.Logger = logger
	}
	if f.Addr == "" {
		return logger, nil, nil
	}
	var wd *Watchdog
	if f.Watchdog > 0 {
		wd = NewWatchdog(f.Watchdog)
		if engine != nil {
			engine.Heartbeat = wd.Touch
		}
	}
	srv, err := Start(Config{
		Addr:     f.Addr,
		Engine:   engine,
		Watchdog: wd,
		Logger:   logger,
	})
	if err != nil {
		return nil, nil, err
	}
	if engine != nil && ctx != nil {
		go func() {
			<-ctx.Done()
			engine.SetAccepting(false)
		}()
	}
	logger.Info("observability server listening", "addr", srv.Addr())
	return logger, srv, nil
}
