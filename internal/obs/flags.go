package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"time"

	"hbat/internal/harness"
	"hbat/internal/runspan"
)

// Flags is the shared observability flag set every cmd/hbat* binary
// registers: -obs, -log-level, -log-format, -obs-watchdog, -spans,
// and -spans-out.
type Flags struct {
	Addr     string
	LogLevel string
	Format   string
	Watchdog time.Duration
	Spans    bool
	SpansOut string

	// tracer is the span tracer Setup created for -spans; FinishSpans
	// exports and closes it.
	tracer *runspan.Tracer
}

// AddFlags registers the observability flags on fs and returns the
// struct they populate.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Addr, "obs", "", "serve /metrics, /health, /ready, /debug/spans, and /debug/pprof on this address (e.g. :8090; empty = off)")
	fs.StringVar(&f.LogLevel, "log-level", "info", "log verbosity: debug, info, warn, or error")
	fs.StringVar(&f.Format, "log-format", "text", "log encoding: text or json")
	fs.DurationVar(&f.Watchdog, "obs-watchdog", 2*time.Minute, "report unhealthy when a sweep makes no progress for this long (0 = never)")
	fs.BoolVar(&f.Spans, "spans", false, "record per-run phase spans (build/checkpoint/fast-forward/simulate, cache + singleflight visibility)")
	fs.StringVar(&f.SpansOut, "spans-out", "spans", "span output path prefix: <prefix>.jsonl journal (streamed) and <prefix>.perfetto.json merged timeline (on exit; needs -spans)")
	return f
}

// NewLogger builds the slog logger the flags describe, writing to w.
func (f *Flags) NewLogger(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(f.LogLevel) {
	case "debug":
		level = slog.LevelDebug
	case "info", "":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", f.LogLevel)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(f.Format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", f.Format)
	}
}

// Setup wires the flags into a logger and, when -obs is set, a running
// observability server bound to the engine: the logger becomes the
// engine's run logger, the progress watchdog becomes its heartbeat,
// and ctx cancellation flips the engine to draining so /ready reports
// it. With -spans set a span tracer is created, attached to the
// engine (and to /debug/spans when the server runs), and its journal
// opened at <SpansOut>.jsonl; call FinishSpans before exit to export
// the merged Perfetto timeline. With -obs unset no listener is opened
// and no goroutine started; only the logger is returned. logw
// receives log output (typically os.Stderr). Callers must Close the
// returned server when non-nil.
func (f *Flags) Setup(ctx context.Context, logw io.Writer, engine *harness.Engine) (*slog.Logger, *Server, error) {
	logger, err := f.NewLogger(logw)
	if err != nil {
		return nil, nil, err
	}
	if engine != nil {
		engine.SetLogger(logger)
	}
	if f.Spans {
		tr := runspan.New(runspan.Config{})
		if err := tr.OpenJournal(f.SpansOut + ".jsonl"); err != nil {
			return nil, nil, err
		}
		f.tracer = tr
		if engine != nil {
			engine.SetSpans(tr)
		}
	}
	if f.Addr == "" {
		return logger, nil, nil
	}
	var wd *Watchdog
	if f.Watchdog > 0 {
		wd = NewWatchdog(f.Watchdog)
		if engine != nil {
			engine.SetHeartbeat(wd.Touch)
		}
	}
	srv, err := Start(Config{
		Addr:     f.Addr,
		Engine:   engine,
		Watchdog: wd,
		Spans:    f.tracer,
		Logger:   logger,
	})
	if err != nil {
		return nil, nil, err
	}
	if engine != nil && ctx != nil {
		go func() {
			<-ctx.Done()
			engine.SetAccepting(false)
		}()
	}
	logger.Info("observability server listening", "addr", srv.Addr())
	return logger, srv, nil
}

// Tracer returns the span tracer Setup created for -spans (nil when
// span tracing is off).
func (f *Flags) Tracer() *runspan.Tracer { return f.tracer }

// FinishSpans ends a -spans session: it writes the merged Perfetto
// timeline to <SpansOut>.perfetto.json and closes the streamed
// journal, returning the timeline path (empty when tracing was off).
// Journal write errors accumulated during the run surface here.
func (f *Flags) FinishSpans() (string, error) {
	tr := f.tracer
	if !tr.Enabled() {
		return "", nil
	}
	f.tracer = nil
	path := f.SpansOut + ".perfetto.json"
	werr := tr.WritePerfettoFile(path)
	cerr := tr.CloseJournal()
	if werr != nil {
		return "", werr
	}
	return path, cerr
}
