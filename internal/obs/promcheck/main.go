// Command promcheck validates Prometheus text exposition (version
// 0.0.4), using the same parser the obs package's golden tests run.
//
// With file arguments (or stdin) it checks existing exposition; CI
// pipes a live /metrics scrape through it:
//
//	curl -s localhost:8090/metrics | go run ./internal/obs/promcheck
//
// With -static it needs no server at all: it executes one test-scale
// simulation on a fresh sweep engine, renders the exposition the obs
// server would serve, and validates it — the `make check` gate that
// keeps the metrics pipeline honest without opening a port.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hbat/internal/harness"
	"hbat/internal/obs"
	"hbat/internal/prog"
	"hbat/internal/runspan"
	"hbat/internal/workload"
)

func main() {
	static := flag.Bool("static", false, "self-test: run one test-scale simulation and validate the resulting exposition in-process (no server)")
	flag.Parse()
	if *static {
		if err := staticCheck(); err != nil {
			fail(err)
		}
		return
	}
	if flag.NArg() == 0 {
		check("<stdin>", os.Stdin)
		return
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		check(path, f)
		f.Close()
	}
}

func check(name string, f *os.File) {
	n, err := obs.ParseExposition(f)
	if err != nil {
		fail(fmt.Errorf("%s: %w", name, err))
	}
	fmt.Printf("%s: ok (%d samples)\n", name, n)
}

// staticCheck exercises the whole pipeline — engine run, merged
// aggregates, watchdog, exposition rendering, parser — with real data
// from one simulation.
func staticCheck() error {
	wd := obs.NewWatchdog(time.Minute)
	eng := harness.NewEngine(
		harness.WithHeartbeat(wd.Touch),
		harness.WithSpans(runspan.New(runspan.Config{})),
	)
	res := eng.Run(context.Background(), harness.RunSpec{
		Workload: "espresso", Design: "T4", Budget: prog.Budget32,
		Scale: workload.ScaleTest, PageSize: 4096, Seed: 1,
	})
	if res.Err != nil {
		return fmt.Errorf("static: probe run: %w", res.Err)
	}
	var buf bytes.Buffer
	if err := obs.WriteSnapshot(&buf, obs.Config{Engine: eng, Watchdog: wd}); err != nil {
		return fmt.Errorf("static: exposition: %w", err)
	}
	n, err := obs.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("static: exposition does not parse: %w", err)
	}
	// The scrape must carry the engine's sweep state and the probe
	// run's merged metrics, all under the hbat_ prefix.
	for _, want := range []string{
		"hbat_sweep_runs_done 1",
		"hbat_sweep_runs_active 0",
		"hbat_obs_healthy 1",
		"hbat_tlb_lookups",
		"hbat_sweep_run_wall_ms_count",
	} {
		if !strings.Contains(buf.String(), want) {
			return fmt.Errorf("static: exposition missing %q", want)
		}
	}
	fmt.Printf("static: ok (%d samples from a live test-scale run)\n", n)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "promcheck:", err)
	os.Exit(1)
}
