// Command promcheck validates Prometheus text exposition (version
// 0.0.4) read from stdin or the named files, using the same parser the
// obs package's golden tests run. CI pipes a live /metrics scrape
// through it:
//
//	curl -s localhost:8090/metrics | go run ./internal/obs/promcheck
package main

import (
	"fmt"
	"os"

	"hbat/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		check("<stdin>", os.Stdin)
		return
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		check(path, f)
		f.Close()
	}
}

func check(name string, f *os.File) {
	n, err := obs.ParseExposition(f)
	if err != nil {
		fail(fmt.Errorf("%s: %w", name, err))
	}
	fmt.Printf("%s: ok (%d samples)\n", name, n)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "promcheck:", err)
	os.Exit(1)
}
