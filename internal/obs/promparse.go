package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseExposition validates a Prometheus text exposition (version
// 0.0.4) and returns the number of sample lines. It checks line syntax,
// metric-name and label grammar, that a family's TYPE is declared at
// most once and before its samples, that all of a family's lines form
// one contiguous group, and — for histograms — that every series has a
// +Inf bucket, non-decreasing cumulative buckets, and a _count equal to
// the +Inf bucket. It is the checker CI runs against a live /metrics
// scrape (cmd promcheck) and what the exposition golden tests assert
// round-trips.
func ParseExposition(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	type hist struct {
		buckets map[string]float64 // le -> cumulative count
		lastCum float64
		ordered bool // buckets appeared in non-decreasing order
		sum     *float64
		count   *float64
	}
	type family struct {
		kind   string
		closed bool
		hists  map[string]*hist // label signature (le stripped) -> series
	}
	families := make(map[string]*family)
	current := ""
	samples := 0
	lineNo := 0

	open := func(name string) *family {
		f := families[name]
		if f == nil {
			f = &family{kind: "untyped", hists: make(map[string]*hist)}
			families[name] = f
		}
		return f
	}
	enter := func(name string) (*family, error) {
		f := open(name)
		if name != current {
			if f.closed {
				return nil, fmt.Errorf("family %s reappears after other families (lines must be grouped)", name)
			}
			if current != "" {
				families[current].closed = true
			}
			current = name
		}
		return f, nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue // bare comment
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) < 4 {
					return samples, fmt.Errorf("line %d: malformed TYPE line", lineNo)
				}
				name, kind := fields[2], strings.TrimSpace(fields[3])
				if !validName(name) {
					return samples, fmt.Errorf("line %d: bad metric name %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return samples, fmt.Errorf("line %d: unknown metric type %q", lineNo, kind)
				}
				f, err := enter(name)
				if err != nil {
					return samples, fmt.Errorf("line %d: %v", lineNo, err)
				}
				if f.kind != "untyped" {
					return samples, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(f.hists) > 0 {
					return samples, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				f.kind = kind
			case "HELP":
				if len(fields) < 3 || !validName(fields[2]) {
					return samples, fmt.Errorf("line %d: malformed HELP line", lineNo)
				}
				if _, err := enter(fields[2]); err != nil {
					return samples, fmt.Errorf("line %d: %v", lineNo, err)
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return samples, fmt.Errorf("line %d: %v", lineNo, err)
		}
		samples++

		// Resolve the owning family: histogram component suffixes belong
		// to their declared base family.
		base := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, s)
			if trimmed != name {
				if bf, ok := families[trimmed]; ok && bf.kind == "histogram" {
					base, suffix = trimmed, s
				}
				break
			}
		}
		f, err := enter(base)
		if err != nil {
			return samples, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if f.kind == "histogram" && suffix == "" {
			return samples, fmt.Errorf("line %d: bare sample %s in histogram family", lineNo, name)
		}

		le := ""
		var rest []string
		for _, l := range labels {
			if l.Name == "le" {
				le = l.Value
			} else {
				rest = append(rest, l.Name+"="+l.Value)
			}
		}
		sort.Strings(rest)
		sig := strings.Join(rest, ",")
		h := f.hists[sig]
		if h == nil {
			h = &hist{buckets: make(map[string]float64), ordered: true}
			f.hists[sig] = h
		}
		switch suffix {
		case "_bucket":
			if le == "" {
				return samples, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			if _, dup := h.buckets[le]; dup {
				return samples, fmt.Errorf("line %d: duplicate bucket le=%q", lineNo, le)
			}
			if value < h.lastCum {
				h.ordered = false
			}
			h.buckets[le], h.lastCum = value, value
		case "_sum":
			if h.sum != nil {
				return samples, fmt.Errorf("line %d: duplicate _sum for %s%s", lineNo, base, sig)
			}
			h.sum = &value
		case "_count":
			if h.count != nil {
				return samples, fmt.Errorf("line %d: duplicate _count for %s%s", lineNo, base, sig)
			}
			h.count = &value
		default:
			// Plain counter/gauge/untyped series: duplicate label sets
			// within a family are invalid.
			if len(h.buckets) > 0 {
				return samples, fmt.Errorf("line %d: duplicate series %s%s", lineNo, name, sig)
			}
			h.buckets["="] = value
		}
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}

	for name, f := range families {
		if f.kind != "histogram" {
			continue
		}
		for sig, h := range f.hists {
			inf, ok := h.buckets["+Inf"]
			if !ok {
				return samples, fmt.Errorf("histogram %s{%s}: missing +Inf bucket", name, sig)
			}
			if !h.ordered {
				return samples, fmt.Errorf("histogram %s{%s}: cumulative buckets decrease", name, sig)
			}
			if h.count == nil || h.sum == nil {
				return samples, fmt.Errorf("histogram %s{%s}: missing _sum or _count", name, sig)
			}
			if *h.count != inf {
				return samples, fmt.Errorf("histogram %s{%s}: _count %v != +Inf bucket %v", name, sig, *h.count, inf)
			}
		}
	}
	return samples, nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// parseSample parses `name{l="v",...} value [timestamp]`.
func parseSample(line string) (string, []Label, float64, error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name := line[:i]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	var labels []Label
	if i < len(line) && line[i] == '{' {
		var err error
		labels, i, err = parseLabels(line, i+1)
		if err != nil {
			return "", nil, 0, err
		}
	}
	rest := strings.Fields(line[i:])
	if len(rest) == 0 || len(rest) > 2 {
		return "", nil, 0, fmt.Errorf("expected value after %q", name)
	}
	value, err := parseFloat(rest[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", rest[0], err)
	}
	if len(rest) == 2 {
		if _, err := strconv.ParseInt(rest[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", rest[1])
		}
	}
	return name, labels, value, nil
}

// parseLabels parses from just after '{' through '}' and returns the
// index after it.
func parseLabels(line string, i int) ([]Label, int, error) {
	var labels []Label
	for {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i < len(line) && line[i] == '}' {
			return labels, i + 1, nil
		}
		j := i
		for j < len(line) && line[j] != '=' {
			j++
		}
		if j >= len(line) {
			return nil, 0, fmt.Errorf("unterminated label in %q", line)
		}
		lname := strings.TrimSpace(line[i:j])
		if !validName(lname) {
			return nil, 0, fmt.Errorf("bad label name %q", lname)
		}
		i = j + 1
		if i >= len(line) || line[i] != '"' {
			return nil, 0, fmt.Errorf("label %s: expected quoted value", lname)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(line) {
				return nil, 0, fmt.Errorf("label %s: unterminated value", lname)
			}
			c := line[i]
			if c == '\\' {
				if i+1 >= len(line) {
					return nil, 0, fmt.Errorf("label %s: dangling escape", lname)
				}
				switch line[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, 0, fmt.Errorf("label %s: bad escape \\%c", lname, line[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, Label{lname, val.String()})
		if i < len(line) && line[i] == ',' {
			i++
		}
	}
}

// parseFloat accepts every exposition value form; strconv handles
// "+Inf", "-Inf", and "NaN" natively.
func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}
