package obs

import (
	"strings"
	"testing"
)

func TestParseExpositionAccepts(t *testing.T) {
	cases := map[string]struct {
		in      string
		samples int
	}{
		"bare": {"x 1\n", 1},
		"typed counter": {`# HELP x Something.
# TYPE x counter
x 1
`, 1},
		"labels and timestamp": {"x{a=\"b\",c=\"d\"} 1.5 1700000000\n", 1},
		"special values":       {"a +Inf\nb -Inf\nc NaN\nd 1e-9\n", 4},
		"histogram": {`# TYPE h histogram
h_bucket{le="1"} 2
h_bucket{le="+Inf"} 5
h_sum 9
h_count 5
`, 4},
		"escaped label": {`x{p="a\"b\\c\nd"} 2` + "\n", 1},
		"blank lines and comments": {`
# a free-form comment

x 1
`, 1},
	}
	for name, tc := range cases {
		n, err := ParseExposition(strings.NewReader(tc.in))
		if err != nil {
			t.Errorf("%s: unexpected error: %v", name, err)
		}
		if n != tc.samples {
			t.Errorf("%s: %d samples, want %d", name, n, tc.samples)
		}
	}
}

func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad name":           "1x 2\n",
		"no value":           "x\n",
		"bad value":          "x one\n",
		"bad timestamp":      "x 1 soon\n",
		"unterminated label": `x{a="b 1` + "\n",
		"bad escape":         `x{a="\t"} 1` + "\n",
		"unknown type":       "# TYPE x widget\nx 1\n",
		"duplicate type":     "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"type after samples": "x 1\n# TYPE x counter\n",
		"interleaved families": `# TYPE a counter
a 1
# TYPE b counter
b 1
a{z="2"} 2
`,
		"duplicate series": "x{a=\"1\"} 1\nx{a=\"1\"} 2\n",
		"histogram missing +Inf": `# TYPE h histogram
h_bucket{le="1"} 2
h_sum 9
h_count 5
`,
		"histogram decreasing buckets": `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 9
h_count 5
`,
		"histogram count mismatch": `# TYPE h histogram
h_bucket{le="+Inf"} 5
h_sum 9
h_count 4
`,
		"histogram missing sum": `# TYPE h histogram
h_bucket{le="+Inf"} 5
h_count 5
`,
		"bare sample in histogram": `# TYPE h histogram
h 3
`,
		"bucket without le": `# TYPE h histogram
h_bucket 3
`,
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted invalid exposition:\n%s", name, in)
		}
	}
}
