// Package obs is the opt-in observability layer of the sweep service:
// an HTTP server exposing live Prometheus metrics (/metrics), health
// and readiness probes (/health, /ready), and the Go profiler
// (/debug/pprof), plus the shared -obs/-log-level/-log-format flag
// helper and the structured-log plumbing every cmd/hbat* binary uses.
//
// The server is strictly opt-in: without the -obs flag no listener is
// opened and no goroutine started, and the simulator's hot path is
// untouched either way — scrapes read only the sweep engine's
// lock-protected aggregates (Engine.LiveMetrics, Engine.State), never a
// live machine's registry.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"hbat/internal/harness"
	"hbat/internal/runspan"
)

// Config wires a Server to its data sources. Every field is optional
// except Addr.
type Config struct {
	// Addr is the listen address (e.g. ":8090", "127.0.0.1:0").
	Addr string
	// Engine, when non-nil, contributes sweep state: live run gauges,
	// cache counters and hit ratios, ETA, the merged per-run metrics
	// registry, and per-workload wall-time histograms.
	Engine *harness.Engine
	// Spans, when non-nil, serves the live span view at /debug/spans:
	// currently open spans with their ages plus the recent-span ring.
	Spans *runspan.Tracer
	// Watchdog, when non-nil, drives /health and the
	// obs_last_progress_age_seconds metric.
	Watchdog *Watchdog
	// Ready, when non-nil, overrides the /ready verdict (default: the
	// engine's Accepting state, or true without an engine).
	Ready func() bool
	// Extra, when non-nil, contributes additional metric families per
	// scrape.
	Extra func() []Family
	// Logger, when non-nil, receives one debug record per request.
	Logger *slog.Logger
}

// Server is a running observability server. Create one with Start;
// stop it with Close.
type Server struct {
	cfg     Config
	ln      net.Listener
	http    *http.Server
	start   time.Time
	scrapes atomic.Uint64
}

// NewHandler returns the observability routing table for cfg without
// opening a listener or goroutine — for mounting the obs endpoints on
// another server's mux (cmd/hbatd serves them next to the job API).
func NewHandler(cfg Config) http.Handler {
	s := &Server{cfg: cfg, start: time.Now()}
	return s.Handler()
}

// Start opens the listener and serves in a background goroutine.
func Start(cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	s := &Server{cfg: cfg, ln: ln, start: time.Now()}
	s.http = &http.Server{Handler: s.Handler()}
	go s.http.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.http.Close() }

// Handler returns the server's routing table; exported so tests can
// drive the endpoints without a listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/health", s.handleHealth)
	mux.HandleFunc("/ready", s.handleReady)
	mux.HandleFunc("/debug/spans", s.handleSpans)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if s.cfg.Logger == nil {
		return mux
	}
	lg := s.cfg.Logger
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		mux.ServeHTTP(w, r)
		lg.Debug("obs request", "method", r.Method, "path", r.URL.Path,
			"wall_ms", float64(time.Since(t0).Microseconds())/1e3)
	})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, `hbat observability server
  /metrics      Prometheus text exposition (sweep + run metrics)
  /health       liveness (progress watchdog)
  /ready        readiness (engine accepting work)
  /debug/spans  live span view (open spans with ages + recent ring)
  /debug/pprof  Go profiler
`)
}

// families assembles every exported metric family for one scrape.
func (s *Server) families() []Family {
	fams := []Family{
		{Name: "hbat_obs_scrapes", Kind: "counter",
			Help:   "Scrapes of /metrics since the server started.",
			Series: []Series{{Value: float64(s.scrapes.Load())}}},
		{Name: "hbat_obs_uptime_seconds", Kind: "gauge",
			Help:   "Seconds since the observability server started.",
			Series: []Series{{Value: time.Since(s.start).Seconds()}}},
		{Name: "hbat_process_goroutines", Kind: "gauge",
			Help:   "Live goroutines in the process.",
			Series: []Series{{Value: float64(runtime.NumGoroutine())}}},
	}
	if wd := s.cfg.Watchdog; wd != nil {
		healthy := 1.0
		if s.wedged() {
			healthy = 0
		}
		fams = append(fams,
			Family{Name: "hbat_obs_last_progress_age_seconds", Kind: "gauge",
				Help:   "Seconds since the sweep engine last reported progress.",
				Series: []Series{{Value: wd.Age().Seconds()}}},
			Family{Name: "hbat_obs_healthy", Kind: "gauge",
				Help:   "1 while the progress watchdog is satisfied, 0 when wedged.",
				Series: []Series{{Value: healthy}}},
		)
	}
	if e := s.cfg.Engine; e != nil {
		st := e.State()
		ratio := func(hits, misses uint64) float64 {
			if hits+misses == 0 {
				return 0
			}
			return float64(hits) / float64(hits+misses)
		}
		accepting := 0.0
		if st.Accepting {
			accepting = 1
		}
		fams = append(fams,
			Family{Name: "hbat_sweep_runs_queued", Kind: "gauge",
				Help:   "Dispatched simulation requests waiting for a worker.",
				Series: []Series{{Value: float64(st.Queued)}}},
			Family{Name: "hbat_sweep_runs_active", Kind: "gauge",
				Help:   "Simulations executing right now.",
				Series: []Series{{Value: float64(st.Active)}}},
			Family{Name: "hbat_sweep_runs_done", Kind: "gauge",
				Help:   "Completed simulation requests (executed, cached, or cancelled).",
				Series: []Series{{Value: float64(st.Done)}}},
			Family{Name: "hbat_sweep_accepting", Kind: "gauge",
				Help:   "1 while the engine accepts new work, 0 while draining.",
				Series: []Series{{Value: accepting}}},
			Family{Name: "hbat_sweep_build_cache_hit_ratio", Kind: "gauge",
				Help:   "Workload build requests served from the build cache.",
				Series: []Series{{Value: ratio(st.Cache.BuildHits, st.Cache.BuildMisses)}}},
			Family{Name: "hbat_sweep_spec_cache_hit_ratio", Kind: "gauge",
				Help:   "Simulation requests served from the RunSpec memo.",
				Series: []Series{{Value: ratio(st.Cache.SpecHits, st.Cache.SpecMisses)}}},
			Family{Name: "hbat_sweep_eta_seconds", Kind: "gauge",
				Help:   "EWMA-cost-weighted estimate of the current sweep's remaining wall time.",
				Series: []Series{{Value: st.ETASeconds}}},
			Family{Name: "hbat_sweep_elapsed_seconds", Kind: "gauge",
				Help:   "Wall time the current sweep has been running.",
				Series: []Series{{Value: st.ElapsedSeconds}}},
			Family{Name: "hbat_sweep_progress_runs", Kind: "gauge",
				Help:   "Completed runs of the current sweep (see hbat_sweep_progress_total_runs).",
				Series: []Series{{Value: float64(st.SweepDone)}}},
			Family{Name: "hbat_sweep_progress_total_runs", Kind: "gauge",
				Help:   "Total runs of the current sweep.",
				Series: []Series{{Value: float64(st.SweepTotal)}}},
		)
		fams = append(fams, SnapshotFamilies(e.MetricsSnapshot())...)
		fams = append(fams, SnapshotFamilies(e.LiveMetrics())...)
		wallFam := Family{Name: "hbat_sweep_run_wall_ms", Kind: "histogram",
			Help: "Wall time of executed simulations, by workload (milliseconds)."}
		for _, m := range e.WallTimes() {
			wallFam.Hists = append(wallFam.Hists, HistSeries{
				Labels: []Label{{"workload", m.Name}},
				Bounds: m.Bounds,
				Counts: m.Buckets,
				Sum:    float64(m.Sum),
				Count:  m.Count,
			})
		}
		if len(wallFam.Hists) > 0 {
			fams = append(fams, wallFam)
		}
	}
	if s.cfg.Extra != nil {
		fams = append(fams, s.cfg.Extra()...)
	}
	return fams
}

// WriteSnapshot writes one scrape's worth of exposition for cfg
// without starting a server — what /metrics would serve right now.
// Used by promcheck -static to validate the full metrics pipeline
// (engine aggregates through text exposition) in-process.
func WriteSnapshot(w io.Writer, cfg Config) error {
	s := &Server{cfg: cfg, start: time.Now()}
	return WriteExposition(w, s.families())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.scrapes.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WriteExposition(w, s.families()); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("metrics exposition failed", "error", err.Error())
	}
}

// wedged reports whether the watchdog indicates a stuck sweep: the
// timeout expired while work was in flight. An idle engine is healthy
// no matter how long ago the last run finished.
func (s *Server) wedged() bool {
	wd := s.cfg.Watchdog
	if wd == nil || !wd.Expired() {
		return false
	}
	if e := s.cfg.Engine; e != nil {
		st := e.State()
		return st.Active > 0 || st.Queued > 0
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status                 string  `json:"status"`
		LastProgressAgeSeconds float64 `json:"last_progress_age_seconds"`
		WatchdogSeconds        float64 `json:"watchdog_seconds"`
		ActiveRuns             int64   `json:"active_runs"`
		QueuedRuns             int64   `json:"queued_runs"`
	}
	h := health{Status: "ok"}
	if wd := s.cfg.Watchdog; wd != nil {
		h.LastProgressAgeSeconds = wd.Age().Seconds()
		h.WatchdogSeconds = wd.Timeout().Seconds()
	}
	if e := s.cfg.Engine; e != nil {
		st := e.State()
		h.ActiveRuns, h.QueuedRuns = st.Active, st.Queued
	}
	code := http.StatusOK
	if s.wedged() {
		h.Status = "wedged"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// handleSpans serves the live span view: every currently open span
// with its age (a stuck singleflight build shows up as a growing
// age), plus the ring of recently finished spans. 404 without a span
// tracer, mirroring how span tracing is strictly opt-in.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	tr := s.cfg.Spans
	if !tr.Enabled() {
		http.Error(w, "span tracing off (run with -spans)", http.StatusNotFound)
		return
	}
	type spans struct {
		Open   []runspan.OpenSpan `json:"open"`
		Recent []runspan.SpanData `json:"recent"`
	}
	writeJSON(w, http.StatusOK, spans{Open: tr.Open(), Recent: tr.Recent()})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ready := true
	switch {
	case s.cfg.Ready != nil:
		ready = s.cfg.Ready()
	case s.cfg.Engine != nil:
		ready = s.cfg.Engine.Accepting()
	}
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]bool{"ready": ready})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
