package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hbat/internal/harness"
	"hbat/internal/prog"
	"hbat/internal/workload"
)

func testSpecs() []harness.RunSpec {
	var specs []harness.RunSpec
	for _, w := range []string{"espresso", "perl"} {
		for _, d := range []string{"T4", "T1", "M8"} {
			specs = append(specs, harness.RunSpec{
				Workload: w, Design: d, Budget: prog.Budget32,
				Scale: workload.ScaleTest, PageSize: 4096, Seed: 1,
			})
		}
	}
	return specs
}

// TestMetricsScrapeDuringSweep is the race-audit acceptance test: a
// goroutine hammers /metrics (validating every response as Prometheus
// exposition) while the engine runs a parallel sweep. Run under
// `go test -race` this proves scrapes never race the sweep's writers.
func TestMetricsScrapeDuringSweep(t *testing.T) {
	eng := harness.NewEngine()
	wd := NewWatchdog(time.Minute)
	eng.SetHeartbeat(wd.Touch)
	srv := &Server{cfg: Config{Engine: eng, Watchdog: wd}, start: time.Now()}
	h := srv.Handler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var scrapeErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			if _, err := ParseExposition(rec.Body); err != nil {
				mu.Lock()
				scrapeErr = err
				mu.Unlock()
				return
			}
		}
	}()

	results, err := eng.RunAll(context.Background(), testSpecs(), 4, nil)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if scrapeErr != nil {
		t.Fatalf("mid-sweep scrape produced invalid exposition: %v", scrapeErr)
	}

	// After the sweep the scrape must carry the merged run metrics, the
	// settled gauges, and per-workload wall histograms.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"hbat_sweep_runs_queued 0",
		"hbat_sweep_runs_active 0",
		"hbat_sweep_runs_done 6",
		"hbat_sweep_accepting 1",
		"hbat_tlb_lookups",
		`hbat_sweep_run_wall_ms_bucket{workload="espresso",le="+Inf"}`,
		`hbat_sweep_run_wall_ms_count{workload="perl"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("post-sweep scrape missing %q", want)
		}
	}
}

// TestHealthFlipsWhenWatchdogExpires drives the watchdog's clock by
// hand: /health is 200 while progress is fresh, 503 once the timeout
// passes with work still in flight, and 200 again after a Touch.
func TestHealthFlipsWhenWatchdogExpires(t *testing.T) {
	now := time.Unix(1000, 0)
	wd := &Watchdog{timeout: time.Minute, now: func() time.Time { return now }}
	wd.Touch()
	// No engine: the watchdog alone decides (treated as always active).
	srv := &Server{cfg: Config{Watchdog: wd}, start: now}
	h := srv.Handler()

	get := func() (int, map[string]any) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/health", nil))
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad /health JSON: %v", err)
		}
		return rec.Code, body
	}

	if code, body := get(); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("fresh watchdog: %d %v", code, body)
	}
	now = now.Add(2 * time.Minute)
	if code, body := get(); code != http.StatusServiceUnavailable || body["status"] != "wedged" {
		t.Fatalf("expired watchdog: %d %v", code, body)
	}
	if age := wd.Age(); age != 2*time.Minute {
		t.Errorf("Age = %v, want 2m", age)
	}
	wd.Touch()
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("touched watchdog still unhealthy: %d", code)
	}
}

// TestHealthIgnoresIdleEngine: an expired watchdog with no queued or
// active work is not wedged — the sweep simply finished.
func TestHealthIgnoresIdleEngine(t *testing.T) {
	now := time.Unix(1000, 0)
	wd := &Watchdog{timeout: time.Second, now: func() time.Time { return now }}
	wd.Touch()
	now = now.Add(time.Hour)
	srv := &Server{cfg: Config{Engine: harness.NewEngine(), Watchdog: wd}, start: now}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/health", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("idle engine reported wedged: %d %s", rec.Code, rec.Body)
	}
}

func TestReadyTracksEngineAccepting(t *testing.T) {
	eng := harness.NewEngine()
	srv := &Server{cfg: Config{Engine: eng}, start: time.Now()}
	h := srv.Handler()

	get := func() int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/ready", nil))
		return rec.Code
	}
	if get() != http.StatusOK {
		t.Error("fresh engine not ready")
	}
	eng.SetAccepting(false)
	if get() != http.StatusServiceUnavailable {
		t.Error("draining engine still ready")
	}
	eng.SetAccepting(true)
	if get() != http.StatusOK {
		t.Error("re-accepting engine not ready")
	}
}

// TestServerEndToEnd exercises the real listener path: Start binds a
// port, /metrics and /debug/pprof respond over HTTP, Close stops it.
func TestServerEndToEnd(t *testing.T) {
	srv, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, path := range []string{"/metrics", "/health", "/ready", "/debug/pprof/", "/"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		if path == "/metrics" {
			if _, err := ParseExposition(resp.Body); err != nil {
				t.Errorf("live /metrics invalid: %v", err)
			}
		}
		resp.Body.Close()
	}
	// Two scrapes happened; the counter must reflect them.
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body strings.Builder
	if _, err := ParseExposition(strings.NewReader(readAll(t, resp, &body))); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.String(), "hbat_obs_scrapes 2") {
		t.Errorf("scrape counter not incremented:\n%s", body.String())
	}
}

func readAll(t *testing.T, resp *http.Response, b *strings.Builder) string {
	t.Helper()
	buf := make([]byte, 64*1024)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			return b.String()
		}
	}
}
