package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hbat/internal/harness"
	"hbat/internal/runspan"
)

// TestDebugSpansEndpoint checks the live span view: 404 when span
// tracing is off (it is strictly opt-in), and a JSON snapshot of open
// spans (with ages) plus the recent ring when it is on.
func TestDebugSpansEndpoint(t *testing.T) {
	off := &Server{cfg: Config{}, start: time.Now()}
	rec := httptest.NewRecorder()
	off.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("tracer-less /debug/spans = %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "-spans") {
		t.Errorf("404 body should point at the -spans flag: %q", rec.Body.String())
	}

	tr := runspan.New(runspan.Config{})
	rt := tr.NewTrace()
	root := tr.Start(rt, nil, "run").SetAttr("workload", "compress")
	tr.Start(rt, root, "simulate").End()

	on := &Server{cfg: Config{Spans: tr}, start: time.Now()}
	rec = httptest.NewRecorder()
	on.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/spans = %d, want 200", rec.Code)
	}
	var body struct {
		Open   []runspan.OpenSpan `json:"open"`
		Recent []runspan.SpanData `json:"recent"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad /debug/spans JSON: %v\n%s", err, rec.Body.String())
	}
	if len(body.Open) != 1 || body.Open[0].Name != "run" || body.Open[0].Attrs["workload"] != "compress" {
		t.Errorf("open spans = %+v, want the in-flight run", body.Open)
	}
	if body.Open[0].AgeUS < 0 {
		t.Errorf("open span age = %d, want >= 0", body.Open[0].AgeUS)
	}
	if len(body.Recent) != 1 || body.Recent[0].Name != "simulate" {
		t.Errorf("recent spans = %+v, want the finished simulate", body.Recent)
	}

	// The index advertises the endpoint.
	rec = httptest.NewRecorder()
	on.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if !strings.Contains(rec.Body.String(), "/debug/spans") {
		t.Error("index page does not list /debug/spans")
	}
}

// TestHealthReadyDuringDrain is the shutdown-flap test: probes hammer
// /health and /ready while a sweep is cancelled mid-flight, and after
// the last run drains the engine must settle idle — /ready 503 once
// the binary stops accepting, but /health 200 even when the watchdog
// has long expired (a finished sweep is not a wedged one), with no
// goroutine leaked by the drain.
func TestHealthReadyDuringDrain(t *testing.T) {
	eng := harness.NewEngine()
	wd := NewWatchdog(time.Minute)
	eng.SetHeartbeat(wd.Touch)
	srv := &Server{cfg: Config{Engine: eng, Watchdog: wd}, start: time.Now()}
	h := srv.Handler()

	before := runtime.NumGoroutine()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var probeErr error
	fail := func(format string, args ...any) {
		mu.Lock()
		if probeErr == nil {
			probeErr = fmt.Errorf(format, args...)
		}
		mu.Unlock()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/health", "/ready"} {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				var v map[string]any
				if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
					fail("%s returned invalid JSON: %v", path, err)
					return
				}
				// The watchdog is fresh throughout the drain: /health
				// must never flap to 503-wedged.
				if path == "/health" && rec.Code != http.StatusOK {
					fail("/health = %d (%v) during drain", rec.Code, v)
					return
				}
			}
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	// The sweep may finish cleanly or be cut short; either way it must
	// drain completely.
	_, _ = eng.RunAll(ctx, testSpecs(), 2, nil)
	eng.SetAccepting(false) // what binaries do once their context ends
	close(stop)
	wg.Wait()
	if probeErr != nil {
		t.Fatal(probeErr)
	}

	st := eng.State()
	if st.Active != 0 || st.Queued != 0 {
		t.Fatalf("engine not drained: %+v", st)
	}

	// Draining: not ready, but alive.
	get := func(path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code
	}
	if get("/ready") != http.StatusServiceUnavailable {
		t.Error("draining engine still ready")
	}
	if get("/health") != http.StatusOK {
		t.Error("drained engine reported unhealthy")
	}

	// Even with the watchdog expired for an hour, an idle drained
	// engine is healthy: the last run finished, nothing is wedged.
	now := time.Unix(5000, 0)
	expired := &Watchdog{timeout: time.Second, now: func() time.Time { return now }}
	expired.Touch()
	now = now.Add(time.Hour)
	late := &Server{cfg: Config{Engine: eng, Watchdog: expired}, start: now}
	rec := httptest.NewRecorder()
	late.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/health", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("post-drain /health flapped to %d with expired watchdog: %s", rec.Code, rec.Body.String())
	}

	// The drain left no workers behind.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked across drain: %d before, %d after", before, n)
	}
}
