package obs

import (
	"sync/atomic"
	"time"
)

// Watchdog is the last-progress liveness monitor behind /health: the
// sweep engine touches it on every dispatch, machine progress tick, and
// run completion, and the health endpoint reports unhealthy when work
// is in flight but no touch has arrived within the timeout — a wedged
// run is detectable from outside the process.
type Watchdog struct {
	timeout time.Duration
	last    atomic.Int64     // unix nanos of the latest Touch
	now     func() time.Time // test hook
}

// NewWatchdog returns a watchdog that trips after timeout without a
// Touch (timeout <= 0 never trips). It starts freshly touched.
func NewWatchdog(timeout time.Duration) *Watchdog {
	w := &Watchdog{timeout: timeout, now: time.Now}
	w.Touch()
	return w
}

// Touch records progress now.
func (w *Watchdog) Touch() { w.last.Store(w.now().UnixNano()) }

// Age returns the time since the last Touch.
func (w *Watchdog) Age() time.Duration {
	return w.now().Sub(time.Unix(0, w.last.Load()))
}

// Timeout returns the configured trip threshold.
func (w *Watchdog) Timeout() time.Duration { return w.timeout }

// Expired reports whether the timeout elapsed without a Touch.
func (w *Watchdog) Expired() bool {
	return w.timeout > 0 && w.Age() > w.timeout
}
