package prog

import (
	"encoding/binary"
	"fmt"
	"sort"

	"hbat/internal/isa"
	"hbat/internal/vm"
)

// intPool is the ordered set of physical integer registers the
// allocator may assign. $zero is hardwired, $sp/$gp/$ra are structural
// (stack, globals, calls) and never allocated to program variables.
var intPool = []isa.Reg{
	isa.AT, isa.V0, isa.V1,
	isa.A0, isa.A1, isa.A2, isa.A3,
	isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5, isa.T6, isa.T7,
	isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7,
	isa.T8, isa.T9, isa.K0, isa.K1, isa.FP,
}

const (
	// spillScratchInt is how many integer scratch registers spill
	// rewriting needs in the worst case (a register+register store
	// reads three registers).
	spillScratchInt = 3
	// spillScratchFP is the FP worst case (two sources; a spilled
	// destination reuses a source scratch, since reads precede the
	// write within one instruction).
	spillScratchFP = 2

	// spillBaseOff is the first spill slot's offset from $sp.
	spillBaseOff = 16
)

// structuralInt counts the integer registers excluded from allocation
// but charged to the budget ($sp, $gp, $ra; $zero is free).
const structuralInt = 3

type allocation struct {
	phys  map[isa.Reg]isa.Reg // virtual -> physical (residents)
	slot  map[isa.Reg]int32   // virtual -> $sp offset (spilled)
	intSc []isa.Reg           // integer scratch registers
	fpSc  []isa.Reg           // FP scratch registers
}

// planAlloc decides, per register file, which virtual registers live in
// physical registers and which live in stack slots, favoring the most
// statically used registers (a crude but faithful stand-in for the
// priority-based coloring of the era's compilers).
func (b *Builder) planAlloc(budget RegBudget) (*allocation, error) {
	uses := make(map[isa.Reg]int)
	var buf [4]isa.Reg
	for i := range b.insts {
		in := &b.insts[i]
		for _, r := range in.Sources(buf[:0]) {
			if isVirtual(r) {
				uses[r] += 2 // sources cost a load and count double
			}
		}
		for _, r := range in.Dests(buf[:0]) {
			if isVirtual(r) {
				uses[r]++
			}
		}
	}

	a := &allocation{
		phys: make(map[isa.Reg]isa.Reg),
		slot: make(map[isa.Reg]int32),
	}
	nextSlot := int32(0)

	plan := func(file string, nVars, avail, nScratch int, pool []isa.Reg) error {
		isFile := func(v isa.Reg) bool {
			if file == "int" {
				return isVirtual(v) && !isVirtualFP(v)
			}
			return isVirtualFP(v)
		}
		if nVars <= avail {
			// Everything fits; no scratch registers needed. Assign in
			// creation order so codegen is deterministic.
			idx := 0
			for v := virtIntBase; v < 256; v++ {
				r := isa.Reg(v)
				if !isFile(r) {
					continue
				}
				if _, used := uses[r]; !used {
					continue
				}
				if idx >= len(pool) {
					return fmt.Errorf("prog %q: %s pool exhausted", b.name, file)
				}
				a.phys[r] = pool[idx]
				idx++
			}
			return nil
		}
		resident := avail - nScratch
		if resident < 1 {
			return fmt.Errorf("prog %q: register budget too small for %s file (avail %d, scratch %d)",
				b.name, file, avail, nScratch)
		}
		// Rank virtual registers of this file by use count.
		var vs []isa.Reg
		for v, n := range uses {
			if n == 0 {
				continue
			}
			if isFile(v) {
				vs = append(vs, v)
			}
		}
		sort.Slice(vs, func(i, j int) bool {
			if uses[vs[i]] != uses[vs[j]] {
				return uses[vs[i]] > uses[vs[j]]
			}
			return vs[i] < vs[j]
		})
		scratch := pool[:nScratch]
		res := pool[nScratch : nScratch+resident]
		for i, v := range vs {
			if i < len(res) {
				a.phys[v] = res[i]
			} else {
				a.slot[v] = spillBaseOff + nextSlot*8
				nextSlot++
			}
		}
		if file == "int" {
			a.intSc = scratch
		} else {
			a.fpSc = scratch
		}
		return nil
	}

	availInt := budget.Int - structuralInt
	if availInt > len(intPool) {
		availInt = len(intPool)
	}
	scInt := 0
	if b.nIntVars > availInt {
		scInt = spillScratchInt
	}
	if err := plan("int", b.nIntVars, availInt, scInt, intPool); err != nil {
		return nil, err
	}

	fpPool := make([]isa.Reg, 0, isa.NumFPRegs)
	for i := 0; i < isa.NumFPRegs; i++ {
		fpPool = append(fpPool, isa.F(i))
	}
	availFP := budget.FP
	if availFP > len(fpPool) {
		availFP = len(fpPool)
	}
	scFP := 0
	if b.nFPVars > availFP {
		scFP = spillScratchFP
	}
	if err := plan("fp", b.nFPVars, availFP, scFP, fpPool); err != nil {
		return nil, err
	}

	if nextSlot*8+spillBaseOff > 0x7000 {
		return nil, fmt.Errorf("prog %q: too many spill slots (%d)", b.name, nextSlot)
	}
	return a, nil
}

// rewrite lowers the abstract instruction stream: virtual registers
// become physical registers, with spill loads/stores inserted around
// instructions that touch stack-resident virtuals. It returns the new
// stream, its branch-label annotations, and the old->new index map used
// to resolve labels.
func (b *Builder) rewrite(a *allocation) (insts []isa.Inst, branch []string, idxMap []int) {
	insts = make([]isa.Inst, 0, len(b.insts)+len(a.slot)*2)
	branch = make([]string, 0, cap(insts))
	idxMap = make([]int, len(b.insts)+1)

	var srcBuf, dstBuf [4]isa.Reg
	for i := range b.insts {
		idxMap[i] = len(insts)
		in := b.insts[i] // copy
		lbl := b.branch[i]

		srcs := in.Sources(srcBuf[:0])
		dsts := in.Dests(dstBuf[:0])
		anyVirtual := false
		for _, r := range srcs {
			if isVirtual(r) {
				anyVirtual = true
			}
		}
		for _, r := range dsts {
			if isVirtual(r) {
				anyVirtual = true
			}
		}
		if !anyVirtual {
			insts = append(insts, in)
			branch = append(branch, lbl)
			continue
		}

		assign := make(map[isa.Reg]isa.Reg, 4)
		scI, scF := 0, 0
		takeScratch := func(fp bool) isa.Reg {
			if fp {
				r := a.fpSc[scF%len(a.fpSc)]
				scF++
				return r
			}
			r := a.intSc[scI%len(a.intSc)]
			scI++
			return r
		}

		// Reload spilled sources.
		for _, v := range srcs {
			if !isVirtual(v) {
				continue
			}
			if _, done := assign[v]; done {
				continue
			}
			if p, ok := a.phys[v]; ok {
				assign[v] = p
				continue
			}
			off := a.slot[v]
			sc := takeScratch(isVirtualFP(v))
			assign[v] = sc
			if isVirtualFP(v) {
				insts = append(insts, isa.Inst{Op: isa.LdF, Rd: sc, Rs: isa.SP, Imm: off})
			} else {
				insts = append(insts, isa.Inst{Op: isa.Ld, Rd: sc, Rs: isa.SP, Imm: off})
			}
			branch = append(branch, "")
		}

		// Map destinations; spilled ones get a scratch to compute into.
		type dstStore struct {
			sc  isa.Reg
			off int32
			fp  bool
		}
		var stores []dstStore
		for _, v := range dsts {
			if !isVirtual(v) {
				continue
			}
			if p, ok := a.phys[v]; ok {
				assign[v] = p
				continue
			}
			off := a.slot[v]
			sc, done := assign[v]
			if !done {
				sc = takeScratch(isVirtualFP(v))
				assign[v] = sc
			}
			stores = append(stores, dstStore{sc: sc, off: off, fp: isVirtualFP(v)})
		}

		remap := func(r isa.Reg) isa.Reg {
			if p, ok := assign[r]; ok {
				return p
			}
			return r
		}
		in.Rd = remap(in.Rd)
		in.Rs = remap(in.Rs)
		in.Rt = remap(in.Rt)
		insts = append(insts, in)
		branch = append(branch, lbl)

		for _, st := range stores {
			if st.fp {
				insts = append(insts, isa.Inst{Op: isa.StF, Rd: st.sc, Rs: isa.SP, Imm: st.off})
			} else {
				insts = append(insts, isa.Inst{Op: isa.Sd, Rd: st.sc, Rs: isa.SP, Imm: st.off})
			}
			branch = append(branch, "")
		}
	}
	idxMap[len(b.insts)] = len(insts)
	return insts, branch, idxMap
}

// Finalize allocates registers under the given budget, resolves labels
// and jump tables, and produces a runnable Program.
func (b *Builder) Finalize(budget RegBudget) (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.insts) == 0 {
		return nil, fmt.Errorf("prog %q: empty program", b.name)
	}
	alloc, err := b.planAlloc(budget)
	if err != nil {
		return nil, err
	}
	insts, branch, idxMap := b.rewrite(alloc)

	labelAddr := func(name string) (uint64, error) {
		pos, ok := b.labels[name]
		if !ok {
			return 0, fmt.Errorf("prog %q: undefined label %q", b.name, name)
		}
		return CodeBase + uint64(idxMap[pos])*isa.InstBytes, nil
	}

	for i := range insts {
		if branch[i] == "" {
			continue
		}
		addr, err := labelAddr(branch[i])
		if err != nil {
			return nil, err
		}
		insts[i].Target = addr
	}

	data := make([]DataSeg, len(b.data))
	copy(data, b.data)
	for _, jt := range b.jumpTables {
		buf := make([]byte, 8*len(jt.labels))
		for i, lbl := range jt.labels {
			addr, err := labelAddr(lbl)
			if err != nil {
				return nil, err
			}
			binary.LittleEndian.PutUint64(buf[i*8:], addr)
		}
		data = append(data, DataSeg{Addr: jt.addr, Bytes: buf})
	}

	dataSize := b.dataNext - DataBase
	if dataSize < 4096 {
		dataSize = 4096
	}
	p := &Program{
		Name:  b.name,
		Code:  insts,
		Entry: CodeBase,
		Regions: []vm.Region{
			{Name: "text", Base: CodeBase, Size: uint64(len(insts))*isa.InstBytes + 4096, Perm: vm.PermRead | vm.PermExec},
			{Name: "data", Base: DataBase, Size: dataSize + 65536, Perm: vm.PermRW},
			{Name: "stack", Base: StackTop - StackSize, Size: StackSize, Perm: vm.PermRW},
		},
		Data: data,
		InitRegs: map[isa.Reg]uint64{
			isa.SP: StackTop - 0x10000,
			isa.GP: DataBase,
		},
		Budget:     budget,
		SpillSlots: len(alloc.slot),
	}
	return p, nil
}
