package prog

import (
	"encoding/binary"
	"fmt"
	"math"

	"hbat/internal/isa"
)

// Virtual register numbering. Physical registers occupy 0..63; the
// builder hands out virtual integer registers in [virtIntBase,
// virtFPBase) and virtual FP registers in [virtFPBase, 256). Virtual
// registers exist only inside the builder; Finalize maps every one to a
// physical register or a stack spill slot.
const (
	virtIntBase = 64
	virtFPBase  = 160
	maxVirtInt  = virtFPBase - virtIntBase
	maxVirtFP   = 256 - virtFPBase
)

func isVirtual(r isa.Reg) bool   { return r >= virtIntBase }
func isVirtualFP(r isa.Reg) bool { return r >= virtFPBase }

// Builder accumulates abstract instructions, labels, and data, then
// Finalize allocates registers and resolves control flow.
type Builder struct {
	name   string
	insts  []isa.Inst
	branch []string // branch/jump label per instruction index ("" = none)
	labels map[string]int

	symbols  map[string]uint64 // data symbol -> address
	dataNext uint64
	data     []DataSeg

	jumpTables []jumpTable

	nIntVars int
	nFPVars  int
	varNames map[string]isa.Reg

	err error
}

type jumpTable struct {
	addr   uint64
	labels []string
}

// NewBuilder creates an empty program builder.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:     name,
		labels:   make(map[string]int),
		symbols:  make(map[string]uint64),
		varNames: make(map[string]isa.Reg),
		dataNext: DataBase,
	}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("prog %q: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// IVar returns the virtual integer register named name, creating it on
// first use.
func (b *Builder) IVar(name string) isa.Reg {
	if r, ok := b.varNames["i:"+name]; ok {
		return r
	}
	if b.nIntVars >= maxVirtInt {
		b.fail("too many integer variables (max %d)", maxVirtInt)
		return isa.Reg(virtIntBase)
	}
	r := isa.Reg(virtIntBase + b.nIntVars)
	b.nIntVars++
	b.varNames["i:"+name] = r
	return r
}

// FVar returns the virtual floating-point register named name, creating
// it on first use.
func (b *Builder) FVar(name string) isa.Reg {
	if r, ok := b.varNames["f:"+name]; ok {
		return r
	}
	if b.nFPVars >= maxVirtFP {
		b.fail("too many FP variables (max %d)", maxVirtFP)
		return isa.Reg(virtFPBase)
	}
	r := isa.Reg(virtFPBase + b.nFPVars)
	b.nFPVars++
	b.varNames["f:"+name] = r
	return r
}

// emit appends one abstract instruction.
func (b *Builder) emit(in isa.Inst) {
	b.insts = append(b.insts, in)
	b.branch = append(b.branch, "")
}

func (b *Builder) emitBranch(in isa.Inst, label string) {
	b.insts = append(b.insts, in)
	b.branch = append(b.branch, label)
}

// Label defines a control-flow label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.insts)
}

// --- data allocation ---

// Alloc reserves size bytes of zero-initialized global/heap storage
// aligned to align (a power of two) and returns its address, also
// recording it under the symbol name.
func (b *Builder) Alloc(name string, size, align uint64) uint64 {
	if align == 0 {
		align = 8
	}
	addr := (b.dataNext + align - 1) &^ (align - 1)
	b.dataNext = addr + size
	if b.dataNext > DataBase+DataSize {
		b.fail("data segment overflow allocating %q (%d bytes)", name, size)
	}
	if name != "" {
		if _, dup := b.symbols[name]; dup {
			b.fail("duplicate symbol %q", name)
		}
		b.symbols[name] = addr
	}
	return addr
}

// Addr returns the address of a previously Alloc'd symbol.
func (b *Builder) Addr(name string) uint64 {
	a, ok := b.symbols[name]
	if !ok {
		b.fail("unknown symbol %q", name)
	}
	return a
}

// SetData records an initial data image at addr.
func (b *Builder) SetData(addr uint64, bytes []byte) {
	b.data = append(b.data, DataSeg{Addr: addr, Bytes: bytes})
}

// SetWords records initial 64-bit little-endian words at addr.
func (b *Builder) SetWords(addr uint64, words []uint64) {
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	b.SetData(addr, buf)
}

// SetFloats records initial float64 values at addr.
func (b *Builder) SetFloats(addr uint64, vals []float64) {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	b.SetData(addr, buf)
}

// JumpTable allocates a table of 8-byte code addresses, one per label,
// resolved at Finalize time. Programs dispatch through it with Ld + Jr.
func (b *Builder) JumpTable(name string, labels ...string) uint64 {
	addr := b.Alloc(name, uint64(8*len(labels)), 8)
	b.jumpTables = append(b.jumpTables, jumpTable{addr: addr, labels: labels})
	return addr
}

// --- integer ALU helpers ---

// Op3 emits a three-register ALU operation rd = rs op rt.
func (b *Builder) Op3(op isa.Op, rd, rs, rt isa.Reg) {
	b.emit(isa.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt})
}

// OpI emits an immediate ALU operation rd = rs op imm.
func (b *Builder) OpI(op isa.Op, rd, rs isa.Reg, imm int32) {
	b.emit(isa.Inst{Op: op, Rd: rd, Rs: rs, Imm: imm})
}

func (b *Builder) Add(rd, rs, rt isa.Reg)         { b.Op3(isa.Add, rd, rs, rt) }
func (b *Builder) Sub(rd, rs, rt isa.Reg)         { b.Op3(isa.Sub, rd, rs, rt) }
func (b *Builder) And(rd, rs, rt isa.Reg)         { b.Op3(isa.And, rd, rs, rt) }
func (b *Builder) Or(rd, rs, rt isa.Reg)          { b.Op3(isa.Or, rd, rs, rt) }
func (b *Builder) Xor(rd, rs, rt isa.Reg)         { b.Op3(isa.Xor, rd, rs, rt) }
func (b *Builder) Slt(rd, rs, rt isa.Reg)         { b.Op3(isa.Slt, rd, rs, rt) }
func (b *Builder) Sltu(rd, rs, rt isa.Reg)        { b.Op3(isa.Sltu, rd, rs, rt) }
func (b *Builder) Mult(rd, rs, rt isa.Reg)        { b.Op3(isa.Mult, rd, rs, rt) }
func (b *Builder) Div(rd, rs, rt isa.Reg)         { b.Op3(isa.Div, rd, rs, rt) }
func (b *Builder) Rem(rd, rs, rt isa.Reg)         { b.Op3(isa.Rem, rd, rs, rt) }
func (b *Builder) Addi(rd, rs isa.Reg, imm int32) { b.OpI(isa.Addi, rd, rs, imm) }
func (b *Builder) Andi(rd, rs isa.Reg, imm int32) { b.OpI(isa.Andi, rd, rs, imm) }
func (b *Builder) Ori(rd, rs isa.Reg, imm int32)  { b.OpI(isa.Ori, rd, rs, imm) }
func (b *Builder) Xori(rd, rs isa.Reg, imm int32) { b.OpI(isa.Xori, rd, rs, imm) }
func (b *Builder) Slti(rd, rs isa.Reg, imm int32) { b.OpI(isa.Slti, rd, rs, imm) }
func (b *Builder) Sll(rd, rs isa.Reg, sh int32)   { b.OpI(isa.Sll, rd, rs, sh) }
func (b *Builder) Srl(rd, rs isa.Reg, sh int32)   { b.OpI(isa.Srl, rd, rs, sh) }
func (b *Builder) Sra(rd, rs isa.Reg, sh int32)   { b.OpI(isa.Sra, rd, rs, sh) }

// Move copies rs into rd (integer).
func (b *Builder) Move(rd, rs isa.Reg) { b.OpI(isa.Addi, rd, rs, 0) }

// Li loads a constant into an integer register, emitting one or two
// instructions depending on its range.
func (b *Builder) Li(rd isa.Reg, v int64) {
	if v >= -32768 && v < 32768 {
		b.OpI(isa.Addi, rd, isa.Zero, int32(v))
		return
	}
	if v < 0 || v > math.MaxUint32 {
		b.fail("Li constant 0x%x out of 32-bit range", v)
		return
	}
	hi := int32(v >> 16)
	lo := int32(v & 0xffff)
	b.OpI(isa.Lui, rd, isa.Zero, hi)
	if lo != 0 {
		b.Ori(rd, rd, lo)
	}
}

// La loads the address of a data symbol into rd.
func (b *Builder) La(rd isa.Reg, symbol string) { b.Li(rd, int64(b.Addr(symbol))) }

// --- floating point helpers ---

func (b *Builder) AddF(fd, fs, ft isa.Reg)   { b.Op3(isa.AddF, fd, fs, ft) }
func (b *Builder) SubF(fd, fs, ft isa.Reg)   { b.Op3(isa.SubF, fd, fs, ft) }
func (b *Builder) MulF(fd, fs, ft isa.Reg)   { b.Op3(isa.MulF, fd, fs, ft) }
func (b *Builder) DivF(fd, fs, ft isa.Reg)   { b.Op3(isa.DivF, fd, fs, ft) }
func (b *Builder) MovF(fd, fs isa.Reg)       { b.Op3(isa.MovF, fd, fs, isa.Zero) }
func (b *Builder) NegF(fd, fs isa.Reg)       { b.Op3(isa.NegF, fd, fs, isa.Zero) }
func (b *Builder) AbsF(fd, fs isa.Reg)       { b.Op3(isa.AbsF, fd, fs, isa.Zero) }
func (b *Builder) CvtIF(fd, rs isa.Reg)      { b.Op3(isa.CvtIF, fd, rs, isa.Zero) }
func (b *Builder) CvtFI(rd, fs isa.Reg)      { b.Op3(isa.CvtFI, rd, fs, isa.Zero) }
func (b *Builder) CmpLtF(rd, fs, ft isa.Reg) { b.Op3(isa.CmpLtF, rd, fs, ft) }
func (b *Builder) CmpLeF(rd, fs, ft isa.Reg) { b.Op3(isa.CmpLeF, rd, fs, ft) }
func (b *Builder) CmpEqF(rd, fs, ft isa.Reg) { b.Op3(isa.CmpEqF, rd, fs, ft) }

// LiF loads a float constant through the integer path (Lui/Ori cannot
// build a double): the constant is stored in a pooled data slot and
// loaded. The pool slot is shared across identical constants.
func (b *Builder) LiF(fd isa.Reg, v float64) {
	name := fmt.Sprintf("$fconst:%x", math.Float64bits(v))
	addr, ok := b.symbols[name]
	if !ok {
		addr = b.Alloc(name, 8, 8)
		b.SetFloats(addr, []float64{v})
	}
	tmp := b.IVar(name + ":ptr")
	b.Li(tmp, int64(addr))
	b.LdF(fd, tmp, 0)
}

// --- memory helpers ---

// MemOp emits a memory instruction with an explicit addressing mode.
func (b *Builder) MemOp(op isa.Op, mode isa.AMode, rd, rs, rt isa.Reg, imm int32) {
	b.emit(isa.Inst{Op: op, Mode: mode, Rd: rd, Rs: rs, Rt: rt, Imm: imm})
}

func (b *Builder) Lb(rd, base isa.Reg, off int32)  { b.MemOp(isa.Lb, isa.AMImm, rd, base, 0, off) }
func (b *Builder) Lbu(rd, base isa.Reg, off int32) { b.MemOp(isa.Lbu, isa.AMImm, rd, base, 0, off) }
func (b *Builder) Lh(rd, base isa.Reg, off int32)  { b.MemOp(isa.Lh, isa.AMImm, rd, base, 0, off) }
func (b *Builder) Lw(rd, base isa.Reg, off int32)  { b.MemOp(isa.Lw, isa.AMImm, rd, base, 0, off) }
func (b *Builder) Ld(rd, base isa.Reg, off int32)  { b.MemOp(isa.Ld, isa.AMImm, rd, base, 0, off) }
func (b *Builder) Sb(rv, base isa.Reg, off int32)  { b.MemOp(isa.Sb, isa.AMImm, rv, base, 0, off) }
func (b *Builder) Sh(rv, base isa.Reg, off int32)  { b.MemOp(isa.Sh, isa.AMImm, rv, base, 0, off) }
func (b *Builder) Sw(rv, base isa.Reg, off int32)  { b.MemOp(isa.Sw, isa.AMImm, rv, base, 0, off) }
func (b *Builder) Sd(rv, base isa.Reg, off int32)  { b.MemOp(isa.Sd, isa.AMImm, rv, base, 0, off) }
func (b *Builder) LdF(fd, base isa.Reg, off int32) { b.MemOp(isa.LdF, isa.AMImm, fd, base, 0, off) }
func (b *Builder) StF(fv, base isa.Reg, off int32) { b.MemOp(isa.StF, isa.AMImm, fv, base, 0, off) }

// Indexed (register+register) addressing, the paper's extension.
func (b *Builder) LwX(rd, base, idx isa.Reg)  { b.MemOp(isa.Lw, isa.AMReg, rd, base, idx, 0) }
func (b *Builder) LdX(rd, base, idx isa.Reg)  { b.MemOp(isa.Ld, isa.AMReg, rd, base, idx, 0) }
func (b *Builder) SwX(rv, base, idx isa.Reg)  { b.MemOp(isa.Sw, isa.AMReg, rv, base, idx, 0) }
func (b *Builder) SdX(rv, base, idx isa.Reg)  { b.MemOp(isa.Sd, isa.AMReg, rv, base, idx, 0) }
func (b *Builder) LdFX(fd, base, idx isa.Reg) { b.MemOp(isa.LdF, isa.AMReg, fd, base, idx, 0) }
func (b *Builder) StFX(fv, base, idx isa.Reg) { b.MemOp(isa.StF, isa.AMReg, fv, base, idx, 0) }

// Post-increment addressing, the paper's extension: access at base,
// then base += delta.
func (b *Builder) LdPost(rd, base isa.Reg, delta int32) {
	b.MemOp(isa.Ld, isa.AMPostInc, rd, base, 0, delta)
}
func (b *Builder) LwPost(rd, base isa.Reg, delta int32) {
	b.MemOp(isa.Lw, isa.AMPostInc, rd, base, 0, delta)
}
func (b *Builder) LbuPost(rd, base isa.Reg, delta int32) {
	b.MemOp(isa.Lbu, isa.AMPostInc, rd, base, 0, delta)
}
func (b *Builder) SdPost(rv, base isa.Reg, delta int32) {
	b.MemOp(isa.Sd, isa.AMPostInc, rv, base, 0, delta)
}
func (b *Builder) SwPost(rv, base isa.Reg, delta int32) {
	b.MemOp(isa.Sw, isa.AMPostInc, rv, base, 0, delta)
}
func (b *Builder) LdFPost(fd, base isa.Reg, delta int32) {
	b.MemOp(isa.LdF, isa.AMPostInc, fd, base, 0, delta)
}
func (b *Builder) StFPost(fv, base isa.Reg, delta int32) {
	b.MemOp(isa.StF, isa.AMPostInc, fv, base, 0, delta)
}

// --- control flow helpers ---

// Br emits a conditional branch to label.
func (b *Builder) Br(op isa.Op, rs, rt isa.Reg, label string) {
	b.emitBranch(isa.Inst{Op: op, Rs: rs, Rt: rt}, label)
}

func (b *Builder) Beq(rs, rt isa.Reg, label string) { b.Br(isa.Beq, rs, rt, label) }
func (b *Builder) Bne(rs, rt isa.Reg, label string) { b.Br(isa.Bne, rs, rt, label) }
func (b *Builder) Blez(rs isa.Reg, label string)    { b.Br(isa.Blez, rs, isa.Zero, label) }
func (b *Builder) Bgtz(rs isa.Reg, label string)    { b.Br(isa.Bgtz, rs, isa.Zero, label) }
func (b *Builder) Bltz(rs isa.Reg, label string)    { b.Br(isa.Bltz, rs, isa.Zero, label) }
func (b *Builder) Bgez(rs isa.Reg, label string)    { b.Br(isa.Bgez, rs, isa.Zero, label) }

// J emits an unconditional jump to label.
func (b *Builder) J(label string) { b.emitBranch(isa.Inst{Op: isa.J}, label) }

// Jal emits a call to label, linking into $ra.
func (b *Builder) Jal(label string) { b.emitBranch(isa.Inst{Op: isa.Jal}, label) }

// Jr emits an indirect jump through rs.
func (b *Builder) Jr(rs isa.Reg) { b.emit(isa.Inst{Op: isa.Jr, Rs: rs}) }

// Ret returns through $ra.
func (b *Builder) Ret() { b.emit(isa.Inst{Op: isa.Jr, Rs: isa.RA}) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Inst{Op: isa.Nop}) }

// Halt emits the program-termination instruction.
func (b *Builder) Halt() { b.emit(isa.Inst{Op: isa.Halt}) }

// Len reports how many abstract instructions have been emitted so far.
func (b *Builder) Len() int { return len(b.insts) }
