package prog

import (
	"fmt"
	"io"
	"sort"

	"hbat/internal/isa"
)

// Disassemble writes a readable listing of the program: every
// instruction with its address, synthesized labels at branch targets,
// and a summary of the initial data segments. It is development
// tooling for inspecting what the builder and register allocator
// produced (spill code included).
func (p *Program) Disassemble(w io.Writer) {
	// Collect control-flow targets and name them in address order.
	targets := map[uint64]string{}
	var order []uint64
	for i := range p.Code {
		in := &p.Code[i]
		if in.IsCtrl() && in.Op != isa.Jr && in.Op != isa.Jalr && in.Target != 0 {
			if _, ok := targets[in.Target]; !ok {
				targets[in.Target] = ""
				order = append(order, in.Target)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for i, t := range order {
		targets[t] = fmt.Sprintf("L%d", i)
	}

	fmt.Fprintf(w, "program %s: %d instructions, entry 0x%x, budget %s, %d spill slots\n",
		p.Name, len(p.Code), p.Entry, p.Budget, p.SpillSlots)
	for i := range p.Code {
		pc := CodeBase + uint64(i)*isa.InstBytes
		if lbl, ok := targets[pc]; ok {
			fmt.Fprintf(w, "%s:\n", lbl)
		}
		in := &p.Code[i]
		fmt.Fprintf(w, "  %08x  %s", pc, in.String())
		if in.IsCtrl() && in.Op != isa.Jr && in.Op != isa.Jalr {
			if lbl, ok := targets[in.Target]; ok {
				fmt.Fprintf(w, "   # -> %s", lbl)
			}
		}
		fmt.Fprintln(w)
	}
	if len(p.Data) > 0 {
		fmt.Fprintln(w, "data:")
		for _, seg := range p.Data {
			fmt.Fprintf(w, "  %08x  %d bytes\n", seg.Addr, len(seg.Bytes))
		}
	}
	if len(p.Regions) > 0 {
		fmt.Fprintln(w, "regions:")
		for _, r := range p.Regions {
			fmt.Fprintf(w, "  %-6s %08x +%d %v\n", r.Name, r.Base, r.Size, r.Perm)
		}
	}
}
