// Package prog provides a small assembler for building simulated
// programs: labels, virtual registers, data allocation, and a register
// allocator with stack spilling. The allocator's register budget is how
// the repository reproduces the paper's "fewer registers" experiment
// (Figure 9): the same workload source finalized with an 8 int / 8 fp
// budget produces the spill-heavy code an x86-class compiler would.
package prog

import (
	"fmt"

	"hbat/internal/isa"
	"hbat/internal/vm"
)

// Standard segment layout of every built program. All addresses fit in
// 32 bits so two-instruction Lui/Ori sequences materialize any pointer.
const (
	CodeBase  = 0x0040_0000 // text segment
	CodeSize  = 0x0040_0000 // 4 MB of text
	DataBase  = 0x1000_0000 // globals ($gp points here)
	DataSize  = 0x1800_0000 // globals + static heap (384 MB reservable)
	StackTop  = 0x7fff_0000 // stack grows down from here
	StackSize = 0x0100_0000 // 16 MB of stack
)

// RegZero aliases the hardwired zero register so workload generators
// can reference it without importing internal/isa.
const RegZero = isa.Zero

// DataSeg is an initial data image copied into memory before a run.
type DataSeg struct {
	Addr  uint64
	Bytes []byte
}

// Program is a finalized, runnable program. A Program is immutable
// once finalized: the simulator copies data segments into its own
// memory at load time and only ever reads Code/InitRegs/Regions, so
// one built Program may be shared by any number of concurrently
// running machines (the workload build cache depends on this).
type Program struct {
	Name     string
	Code     []isa.Inst
	Entry    uint64
	Regions  []vm.Region
	Data     []DataSeg
	InitRegs map[isa.Reg]uint64

	// Budget records the register budget the program was finalized
	// with (useful in reports).
	Budget RegBudget
	// SpillSlots reports how many register spill slots the allocator
	// assigned (0 when every virtual register got a hardware register).
	SpillSlots int
}

// InstAt returns the instruction at byte address pc, or nil when pc is
// outside the text segment (wrong-path fetch may wander there; callers
// treat nil as a no-op that will be squashed).
func (p *Program) InstAt(pc uint64) *isa.Inst {
	if pc < CodeBase {
		return nil
	}
	idx := (pc - CodeBase) / isa.InstBytes
	if idx >= uint64(len(p.Code)) {
		return nil
	}
	return &p.Code[idx]
}

// CodeEnd returns the first byte address past the last instruction.
func (p *Program) CodeEnd() uint64 {
	return CodeBase + uint64(len(p.Code))*isa.InstBytes
}

// RegBudget is the number of architected registers the register
// allocator may use. The paper's baseline is 32/32; its Figure 9 uses
// 8/8. $zero is free and not counted; $sp, $gp, and $ra are structural
// and count against the integer budget.
type RegBudget struct {
	Int int
	FP  int
}

// Budget32 is the baseline register budget.
var Budget32 = RegBudget{Int: 32, FP: 32}

// Budget8 is the reduced budget of the paper's Figure 9 experiment.
var Budget8 = RegBudget{Int: 8, FP: 8}

func (b RegBudget) String() string { return fmt.Sprintf("%dint/%dfp", b.Int, b.FP) }
