package prog

import (
	"encoding/binary"
	"strings"
	"testing"

	"hbat/internal/isa"
)

func TestLabelsResolve(t *testing.T) {
	b := NewBuilder("labels")
	v := b.IVar("v")
	b.Li(v, 3)
	b.Label("loop")
	b.Addi(v, v, -1)
	b.Bgtz(v, "loop")
	b.Halt()
	p, err := b.Finalize(Budget32)
	if err != nil {
		t.Fatal(err)
	}
	var br *isa.Inst
	var brPC uint64
	for i := range p.Code {
		if p.Code[i].Op == isa.Bgtz {
			br = &p.Code[i]
			brPC = CodeBase + uint64(i)*isa.InstBytes
		}
	}
	if br == nil {
		t.Fatal("no branch emitted")
	}
	if br.Target != brPC-isa.InstBytes {
		t.Fatalf("branch target 0x%x, want 0x%x (the addi)", br.Target, brPC-isa.InstBytes)
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	b := NewBuilder("bad")
	b.J("nowhere")
	b.Halt()
	if _, err := b.Finalize(Budget32); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestDuplicateLabelFails(t *testing.T) {
	b := NewBuilder("bad")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Finalize(Budget32); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestAllocAlignmentAndSymbols(t *testing.T) {
	b := NewBuilder("alloc")
	a1 := b.Alloc("a", 10, 8)
	a2 := b.Alloc("b", 100, 64)
	if a1%8 != 0 || a2%64 != 0 {
		t.Fatalf("misaligned: %#x %#x", a1, a2)
	}
	if a2 < a1+10 {
		t.Fatal("allocations overlap")
	}
	if b.Addr("a") != a1 || b.Addr("b") != a2 {
		t.Fatal("symbol table wrong")
	}
}

func TestLiRanges(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 32767, -32768, 32768, 0x12345678, 0xFFFFFFFF} {
		b := NewBuilder("li")
		r := b.IVar("r")
		b.Li(r, v)
		b.Halt()
		p, err := b.Finalize(Budget32)
		if err != nil {
			t.Fatalf("Li(%d): %v", v, err)
		}
		// Execute by hand through ALUEval.
		var regs [isa.NumRegs]uint64
		for i := range p.Code {
			in := &p.Code[i]
			if in.Op == isa.Halt {
				break
			}
			regs[in.Rd] = isa.ALUEval(in, regs[in.Rs], regs[in.Rt], 0)
		}
		want := uint64(v)
		if v < 0 {
			want = uint64(v) // sign-extended
		}
		// Find which physical register got the value: first inst dest.
		got := regs[p.Code[0].Rd]
		if got != want {
			t.Errorf("Li(%d) produced %#x, want %#x", v, got, want)
		}
	}
	b := NewBuilder("li-bad")
	b.Li(b.IVar("r"), 1<<33)
	b.Halt()
	if _, err := b.Finalize(Budget32); err == nil {
		t.Fatal("out-of-range Li accepted")
	}
}

func TestJumpTableResolved(t *testing.T) {
	b := NewBuilder("jt")
	b.JumpTable("tab", "h0", "h1")
	b.Nop()
	b.Label("h0")
	b.Nop()
	b.Label("h1")
	b.Halt()
	p, err := b.Finalize(Budget32)
	if err != nil {
		t.Fatal(err)
	}
	var tab []byte
	for _, seg := range p.Data {
		if seg.Addr == DataBase {
			tab = seg.Bytes
		}
	}
	if tab == nil {
		t.Fatal("jump table data missing")
	}
	h0 := binary.LittleEndian.Uint64(tab)
	h1 := binary.LittleEndian.Uint64(tab[8:])
	if h0 != CodeBase+1*isa.InstBytes || h1 != CodeBase+2*isa.InstBytes {
		t.Fatalf("table = %#x %#x", h0, h1)
	}
}

func TestBudget32NoSpills(t *testing.T) {
	b := NewBuilder("nospill")
	for i := 0; i < 20; i++ {
		v := b.IVar(string(rune('a' + i)))
		b.Li(v, int64(i))
	}
	b.Halt()
	p, err := b.Finalize(Budget32)
	if err != nil {
		t.Fatal(err)
	}
	if p.SpillSlots != 0 {
		t.Fatalf("spill slots = %d with 20 vars under Budget32", p.SpillSlots)
	}
}

func TestBudget8SpillsAndStaysArchitectural(t *testing.T) {
	b := NewBuilder("spill")
	vars := make([]isa.Reg, 12)
	for i := range vars {
		vars[i] = b.IVar(string(rune('a' + i)))
		b.Li(vars[i], int64(i*10))
	}
	sum := b.IVar("sum")
	b.Li(sum, 0)
	for _, v := range vars {
		b.Add(sum, sum, v)
	}
	b.Halt()
	p, err := b.Finalize(Budget8)
	if err != nil {
		t.Fatal(err)
	}
	if p.SpillSlots == 0 {
		t.Fatal("no spills with 13 live vars under Budget8")
	}
	// Every register named in the final code must be architectural.
	seen := map[isa.Reg]bool{}
	var buf [4]isa.Reg
	for i := range p.Code {
		in := &p.Code[i]
		for _, r := range in.Sources(buf[:0]) {
			seen[r] = true
		}
		for _, r := range in.Dests(buf[:0]) {
			seen[r] = true
		}
	}
	distinct := 0
	for r := range seen {
		if r >= 64 {
			t.Fatalf("virtual register %d leaked into final code", r)
		}
		if !r.IsFP() && r != isa.Zero && r != isa.SP && r != isa.GP && r != isa.RA {
			distinct++
		}
	}
	if distinct > Budget8.Int-structuralInt {
		t.Fatalf("code uses %d data registers, budget allows %d", distinct, Budget8.Int-structuralInt)
	}
}

func TestInstAt(t *testing.T) {
	b := NewBuilder("instat")
	b.Nop()
	b.Halt()
	p, _ := b.Finalize(Budget32)
	if p.InstAt(CodeBase) == nil || p.InstAt(CodeBase+4) == nil {
		t.Fatal("InstAt missed valid PCs")
	}
	if p.InstAt(CodeBase+8) != nil || p.InstAt(0) != nil || p.InstAt(CodeBase-4) != nil {
		t.Fatal("InstAt returned instructions outside text")
	}
	if p.CodeEnd() != CodeBase+8 {
		t.Fatalf("CodeEnd = %#x", p.CodeEnd())
	}
}

func TestDisassemble(t *testing.T) {
	b := NewBuilder("dis")
	v := b.IVar("v")
	b.Li(v, 3)
	b.Label("loop")
	b.Addi(v, v, -1)
	b.Bgtz(v, "loop")
	b.Halt()
	p, err := b.Finalize(Budget32)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	p.Disassemble(&sb)
	out := sb.String()
	for _, want := range []string{"program dis", "L0:", "bgtz", "# -> L0", "halt", "regions:"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}
