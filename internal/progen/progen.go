// Package progen generates random but well-formed simulated programs
// for differential and fuzz testing: arithmetic over a handful of
// registers, loads and stores confined to a private buffer, forward
// (data-dependent) branches, bounded backward loops, and post-increment
// walks that stay in bounds. Every generated program halts.
//
// The generator is deterministic in its seed, and its "flavors" bias
// the opcode mix toward one class of pipeline hazard; the cpu package's
// lockstep fuzzing and the superblock engine's differential fuzzing
// both draw their corpora from it. Under prog.Budget8 the register
// allocator adds spill/reload traffic around the same instruction
// stream, which is exactly the paper's Figure 9 pressure.
package progen

import (
	"fmt"

	"hbat/internal/isa"
	"hbat/internal/prog"
)

// rng is the generator's deterministic xorshift state.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Flavor biases the generated opcode mix toward one hazard class.
type Flavor = uint8

// Generator flavors. Fuzz corpora seed one entry per flavor.
const (
	// FlavorMixed is a uniform mix (the original distribution).
	FlavorMixed Flavor = iota
	// FlavorMem is load/store heavy: store-forwarding and port pressure.
	FlavorMem
	// FlavorBranchy is branch heavy: wrong-path fetch and squash
	// recovery for the pipelines, short superblocks for the translated
	// engine.
	FlavorBranchy
	// NumFlavors bounds the flavor space; fuzzers reduce arbitrary
	// bytes into it with a modulus.
	NumFlavors
)

// opMix returns the op-case lottery for a flavor; duplicated entries
// raise that case's probability.
func opMix(flavor Flavor) []int {
	mixed := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	switch flavor {
	case FlavorMem:
		return append(mixed, 6, 7, 7, 8, 8, 8, 9, 7)
	case FlavorBranchy:
		return append(mixed, 11, 11, 11, 0, 11)
	}
	return mixed
}

// Generate builds a random program of roughly nInsts generated
// operations (plus prologue/epilogue), finalized under the given
// register budget. The final state is observable: every working
// register is stored to a "final" buffer before Halt.
func Generate(seed uint64, nInsts int, budget prog.RegBudget, flavor Flavor) (*prog.Program, error) {
	r := rng(seed | 1)
	mix := opMix(flavor % NumFlavors)
	b := prog.NewBuilder(fmt.Sprintf("fuzz%d", seed))
	const bufWords = 512
	b.Alloc("buf", bufWords*8, 8)

	base := b.IVar("base")
	walk := b.IVar("walk")
	var regs [6]isa.Reg
	for i := range regs {
		regs[i] = b.IVar(fmt.Sprintf("r%d", i))
	}
	b.La(base, "buf")
	b.La(walk, "buf")
	for i := range regs {
		b.Li(regs[i], int64(r.intn(1000)))
	}

	pick := func() isa.Reg { return regs[r.intn(len(regs))] }
	label := 0
	pendingLabel := -1
	walkBudget := 0
	loopCounter := b.IVar("loopctr")
	inLoop := false
	loopLabel := ""

	for i := 0; i < nInsts; i++ {
		if pendingLabel >= 0 && r.intn(4) == 0 {
			b.Label(fmt.Sprintf("skip%d", pendingLabel))
			pendingLabel = -1
		}
		// Occasionally open a bounded backward loop (counted, so the
		// program always terminates); close it a few instructions later.
		if !inLoop && pendingLabel < 0 && r.intn(24) == 0 {
			loopLabel = fmt.Sprintf("loop%d", label)
			label++
			b.Li(loopCounter, int64(2+r.intn(6)))
			b.Label(loopLabel)
			inLoop = true
		} else if inLoop && r.intn(6) == 0 {
			b.Addi(loopCounter, loopCounter, -1)
			b.Bgtz(loopCounter, loopLabel)
			inLoop = false
		}
		switch mix[r.intn(len(mix))] {
		case 0:
			b.Add(pick(), pick(), pick())
		case 1:
			b.Sub(pick(), pick(), pick())
		case 2:
			b.Xor(pick(), pick(), pick())
		case 3:
			b.Addi(pick(), pick(), int32(r.intn(2000)-1000))
		case 4:
			b.Sll(pick(), pick(), int32(r.intn(8)))
		case 5:
			b.Mult(pick(), pick(), pick())
		case 6:
			b.Ld(pick(), base, int32(r.intn(bufWords))*8)
		case 7:
			b.Sd(pick(), base, int32(r.intn(bufWords))*8)
		case 8:
			// Bounded post-increment walk: reset the pointer when the
			// budget runs out so it never leaves the buffer.
			if walkBudget == 0 {
				b.La(walk, "buf")
				walkBudget = bufWords / 2
			}
			if r.intn(2) == 0 {
				b.LdPost(pick(), walk, 8)
			} else {
				b.SdPost(pick(), walk, 8)
			}
			walkBudget--
		case 9:
			b.LwX(pick(), base, maskedIndex(b, pick(), bufWords))
		case 10:
			b.Div(pick(), pick(), pick())
		case 11:
			// Forward data-dependent branch over the next few
			// instructions (exercises prediction and squash).
			if pendingLabel < 0 {
				b.Bgtz(pick(), fmt.Sprintf("skip%d", label))
				pendingLabel = label
				label++
			} else {
				b.Addi(pick(), pick(), 1)
			}
		}
	}
	if inLoop {
		b.Addi(loopCounter, loopCounter, -1)
		b.Bgtz(loopCounter, loopLabel)
	}
	if pendingLabel >= 0 {
		b.Label(fmt.Sprintf("skip%d", pendingLabel))
	}
	// Make the final state observable: store every register.
	b.Alloc("final", uint64(8*len(regs)), 8)
	out := b.IVar("out")
	b.La(out, "final")
	for i, reg := range regs {
		b.Sd(reg, out, int32(8*i))
	}
	b.Halt()
	return b.Finalize(budget)
}

// maskedIndex emits a masked index: t = reg & mask (word-aligned, in
// range of the bufWords-word buffer).
func maskedIndex(b *prog.Builder, src isa.Reg, bufWords int) isa.Reg {
	t := b.IVar("idxTmp")
	b.Andi(t, src, int32(bufWords-1)*8)
	b.Andi(t, t, ^7)
	return t
}
