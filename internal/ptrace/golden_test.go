package ptrace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hbat/internal/isa"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenTrace hand-builds a small deterministic event stream covering
// the interesting shapes: a plain ALU op, a load that misses the TLB
// and walks, a load rejected for a port then missing the cache, a store
// retried at commit, and a squashed wrong-path instruction.
func goldenTrace() *Recorder {
	r := New(Config{Cap: 256})
	ld := &isa.Inst{Op: isa.Ld, Rd: isa.Reg(8), Rs: isa.Reg(9), Imm: 16}
	add := &isa.Inst{Op: isa.Add, Rd: isa.Reg(10), Rs: isa.Reg(8), Rt: isa.Reg(9)}
	st := &isa.Inst{Op: isa.Sd, Rd: isa.Reg(10), Rs: isa.Reg(9), Imm: 24}

	// seq 0: ALU op, uneventful.
	r.Emit(0, 1, KFetch, 0x400000, add, 0)
	r.Emit(0, 2, KDispatch, 0x400000, add, 1)
	r.Emit(0, 3, KIssue, 0x400000, add, 1)
	r.Emit(0, 4, KComplete, 0x400000, add, 0)
	r.Emit(0, 5, KCommit, 0x400000, add, 0)

	// seq 1: load, TLB miss, 30-cycle walk, then a cache miss.
	r.Emit(1, 1, KFetch, 0x400004, ld, 0)
	r.Emit(1, 2, KDispatch, 0x400004, ld, 2)
	r.Emit(1, 3, KIssue, 0x400004, ld, 1)
	r.Emit(1, 4, KTLBMiss, 0x400004, ld, 0)
	r.Emit(1, 6, KWalkStart, 0x400004, ld, 30)
	r.Emit(1, 36, KWalkEnd, 0x400004, ld, 30)
	r.Emit(1, 37, KTLBHit, 0x400004, ld, 0)
	r.Emit(1, 37, KDCacheMiss, 0x400004, ld, 18)
	r.Emit(1, 37, KComplete, 0x400004, ld, 19)
	r.Emit(1, 56, KCommit, 0x400004, ld, 0)

	// seq 2: load, port-starved twice, then hits.
	r.Emit(2, 2, KFetch, 0x400008, ld, 0)
	r.Emit(2, 3, KDispatch, 0x400008, ld, 3)
	r.Emit(2, 4, KIssue, 0x400008, ld, 1)
	r.Emit(2, 5, KTLBNoPort, 0x400008, ld, 0)
	r.Emit(2, 6, KTLBNoPort, 0x400008, ld, 0)
	r.Emit(2, 7, KTLBHit, 0x400008, ld, 1)
	r.Emit(2, 7, KDCacheHit, 0x400008, ld, 0)
	r.Emit(2, 7, KComplete, 0x400008, ld, 2)
	r.Emit(2, 57, KCommit, 0x400008, ld, 0)

	// seq 3: store whose commit retries once for a cache port.
	r.Emit(3, 2, KFetch, 0x40000c, st, 0)
	r.Emit(3, 3, KDispatch, 0x40000c, st, 4)
	r.Emit(3, 4, KIssue, 0x40000c, st, 1)
	r.Emit(3, 5, KTLBHit, 0x40000c, st, 0)
	r.Emit(3, 5, KComplete, 0x40000c, st, 0)
	r.Emit(3, 57, KCommitRetry, 0x40000c, st, 0)
	r.Emit(3, 58, KCommit, 0x40000c, st, 0)

	// seq 4: wrong-path op squashed before completing.
	r.Emit(4, 3, KFetch, 0x400010, add, 0)
	r.Emit(4, 4, KDispatch, 0x400010, add, 5)
	r.Emit(4, 10, KSquash, 0x400010, add, 0)
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch (run with -update to refresh)\n got:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestKonataGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteKonata(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "konata.log", buf.Bytes())
}

func TestSummaryGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteSummary(&buf, 5); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "summary.txt", buf.Bytes())
}

func TestSummaryEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New(Config{Cap: 4}).WriteSummary(&buf, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("no events recorded")) {
		t.Errorf("empty summary = %q", buf.String())
	}
}

func TestPerfettoGoldenShape(t *testing.T) {
	// The Perfetto export is validated structurally (valid JSON, track
	// metadata, spans) in the root package against a real simulation;
	// here just pin that the synthetic trace round-trips deterministically.
	var a, b bytes.Buffer
	if err := goldenTrace().WritePerfetto(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenTrace().WritePerfetto(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Perfetto export is not deterministic")
	}
	if a.Len() == 0 {
		t.Error("Perfetto export is empty")
	}
}
