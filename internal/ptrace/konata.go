package ptrace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// konataCmd is one timeline command, ordered by cycle then by emission
// order within a cycle (ord), so starts/ends interleave deterministically.
type konataCmd struct {
	cycle int64
	ord   int
	text  string
}

// WriteKonata exports the recorded events in the Konata/Kanata pipeline
// viewer log format (https://github.com/shioyadan/Konata). Stage lanes:
// F (fetch-queue residence), D (ROB wait before issue), X (execute),
// C (completion to retirement). Squashed instructions retire with the
// flush type; translation detail (TLB misses, walks, port rejections)
// is attached as hover text.
func (r *Recorder) WriteKonata(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	events := r.Events()
	lives, minCycle, _ := lifetimes(events)
	fmt.Fprint(bw, "Kanata\t0004\n")
	if len(lives) == 0 {
		return bw.Flush()
	}

	var cmds []konataCmd
	ord := 0
	add := func(cycle int64, format string, args ...any) {
		cmds = append(cmds, konataCmd{cycle: cycle, ord: ord, text: fmt.Sprintf(format, args...)})
		ord++
	}

	retireID := 0
	for i, l := range lives {
		id := i // Konata ids are dense and first-seen ordered; seq order is.
		start := l.fetch
		if start < 0 {
			start = firstNonNeg(l.dispatch, l.issue, l.complete, minCycle)
		}
		end := l.retired()
		add(start, "I\t%d\t%d\t0", id, id)
		add(start, "L\t%d\t0\t0x%x: %s", id, l.pc, l.disasm())
		if detail := l.detailText(); detail != "" {
			add(start, "L\t%d\t1\t%s", id, detail)
		}

		// Stage transitions: start each stage when observed, ending the
		// previous one at the same cycle.
		type tr struct {
			cycle int64
			name  string
		}
		var trs []tr
		if l.fetch >= 0 {
			trs = append(trs, tr{l.fetch, "F"})
		}
		if l.dispatch >= 0 {
			trs = append(trs, tr{l.dispatch, "D"})
		}
		if l.issue >= 0 {
			trs = append(trs, tr{l.issue, "X"})
		}
		if l.complete >= 0 {
			trs = append(trs, tr{l.complete, "C"})
		}
		for j, t := range trs {
			if j > 0 {
				add(t.cycle, "E\t%d\t0\t%s", id, trs[j-1].name)
			}
			add(t.cycle, "S\t%d\t0\t%s", id, t.name)
		}
		if end < 0 {
			// Still in flight when the window closed: leave the last
			// stage open through the final recorded cycle.
			continue
		}
		if len(trs) > 0 {
			add(end, "E\t%d\t0\t%s", id, trs[len(trs)-1].name)
		}
		if l.squash >= 0 && l.commit < 0 {
			add(end, "R\t%d\t%d\t1", id, retireID)
		} else {
			add(end, "R\t%d\t%d\t0", id, retireID)
			retireID++
		}
	}

	sort.SliceStable(cmds, func(i, j int) bool {
		if cmds[i].cycle != cmds[j].cycle {
			return cmds[i].cycle < cmds[j].cycle
		}
		return cmds[i].ord < cmds[j].ord
	})

	cur := cmds[0].cycle
	fmt.Fprintf(bw, "C=\t%d\n", cur)
	for _, c := range cmds {
		if c.cycle > cur {
			fmt.Fprintf(bw, "C\t%d\n", c.cycle-cur)
			cur = c.cycle
		}
		fmt.Fprintln(bw, c.text)
	}
	return bw.Flush()
}

// detailText renders an instruction's translation/memory annotations
// for the viewer's hover pane ("" when it has none).
func (l *life) detailText() string {
	s := ""
	app := func(format string, args ...any) {
		if s != "" {
			s += ", "
		}
		s += fmt.Sprintf(format, args...)
	}
	if l.tlbMisses > 0 {
		app("tlb miss x%d (walk %d cycles)", l.tlbMisses, l.walkCycles)
	}
	if l.tlbExtra > 0 {
		app("tlb extra latency %d", l.tlbExtra)
	}
	if l.noPorts > 0 {
		app("tlb no-port retries x%d", l.noPorts)
	}
	if l.dcacheMiss > 0 {
		app("dcache miss x%d", l.dcacheMiss)
	}
	if l.cachePorts > 0 {
		app("dcache no-port retries x%d", l.cachePorts)
	}
	if l.storeWaits > 0 {
		app("store-forward waits x%d", l.storeWaits)
	}
	if l.fault {
		app("protection fault")
	}
	return s
}

// firstNonNeg returns the first argument >= 0, else the fallback.
func firstNonNeg(a, b, c, fallback int64) int64 {
	switch {
	case a >= 0:
		return a
	case b >= 0:
		return b
	case c >= 0:
		return c
	}
	return fallback
}
