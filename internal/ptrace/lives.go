package ptrace

import (
	"sort"

	"hbat/internal/isa"
)

// life is one instruction's reconstructed lifetime: the cycle each
// pipeline stage event was observed (-1 when the event fell outside the
// recording window or the buffer) plus its translation/memory detail.
type life struct {
	seq  int64
	pc   uint64
	inst *isa.Inst

	fetch, dispatch, issue, complete, commit, squash int64

	fault      bool
	tlbMisses  int
	walkCycles int64
	noPorts    int   // TLB-port rejections (retried cycles)
	cachePorts int   // data-cache port rejections
	storeWaits int   // store-forward wait replays
	dcacheMiss int   // data-cache misses
	tlbExtra   int64 // extra translation latency on hits
}

func (l *life) disasm() string {
	if l.inst == nil {
		return "?"
	}
	return l.inst.String()
}

// retired reports the cycle the instruction left the pipeline (commit
// or squash; -1 while still in flight at the end of the window).
func (l *life) retired() int64 {
	if l.commit >= 0 {
		return l.commit
	}
	return l.squash
}

// lifetimes groups events by sequence number into per-instruction
// lifetimes, ordered by seq. Events with Seq < 0 (not tied to one
// instruction) are skipped. minCycle/maxCycle span the whole event set.
func lifetimes(events []Event) (lives []*life, minCycle, maxCycle int64) {
	if len(events) == 0 {
		return nil, 0, 0
	}
	minCycle, maxCycle = events[0].Cycle, events[0].Cycle
	bySeq := make(map[int64]*life)
	var order []int64
	for i := range events {
		ev := &events[i]
		if ev.Cycle < minCycle {
			minCycle = ev.Cycle
		}
		if ev.Cycle > maxCycle {
			maxCycle = ev.Cycle
		}
		if ev.Seq < 0 {
			continue
		}
		l := bySeq[ev.Seq]
		if l == nil {
			l = &life{seq: ev.Seq, pc: ev.PC, inst: ev.Inst,
				fetch: -1, dispatch: -1, issue: -1, complete: -1, commit: -1, squash: -1}
			bySeq[ev.Seq] = l
			order = append(order, ev.Seq)
		}
		if l.inst == nil {
			l.inst = ev.Inst
		}
		switch ev.Kind {
		case KFetch:
			l.fetch = ev.Cycle
		case KDispatch:
			l.dispatch = ev.Cycle
		case KIssue:
			l.issue = ev.Cycle
		case KComplete:
			l.complete = ev.Cycle
		case KCommit:
			l.commit = ev.Cycle
		case KSquash:
			l.squash = ev.Cycle
		case KFault:
			l.fault = true
		case KTLBHit:
			l.tlbExtra += ev.Arg
		case KTLBMiss:
			l.tlbMisses++
		case KTLBNoPort:
			l.noPorts++
		case KWalkEnd:
			l.walkCycles += ev.Arg
		case KDCacheMiss:
			l.dcacheMiss++
		case KDCachePort:
			l.cachePorts++
		case KStoreWait:
			l.storeWaits++
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	lives = make([]*life, len(order))
	for i, seq := range order {
		lives[i] = bySeq[seq]
	}
	return lives, minCycle, maxCycle
}
