package ptrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Perfetto/Chrome trace-event track layout. Process 0 holds one thread
// per pipeline stage (instruction lifetimes render as duration slices
// per stage); process 1 holds the translation and data-cache event
// tracks (misses, port conflicts, and page-table-walk spans).
const (
	pidPipeline = 0
	pidMemory   = 1

	tidFetch    = 1
	tidDispatch = 2
	tidExecute  = 3
	tidCommit   = 4

	tidTLB    = 1
	tidDCache = 2
)

// jstr renders s as a JSON string literal.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `"?"`
	}
	return string(b)
}

// span emits one complete ("X") duration event.
func span(w io.Writer, pid, tid int, ts, dur int64, name string, args string) {
	if dur < 1 {
		dur = 1
	}
	fmt.Fprintf(w, ",\n{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":%s,\"args\":{%s}}",
		pid, tid, ts, dur, jstr(name), args)
}

// instant emits one instant ("i") event (thread scope).
func instant(w io.Writer, pid, tid int, ts int64, name string, args string) {
	fmt.Fprintf(w, ",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"name\":%s,\"args\":{%s}}",
		pid, tid, ts, jstr(name), args)
}

// WritePerfetto exports the recorded events as Chrome/Perfetto
// trace-event JSON, loadable in ui.perfetto.dev or chrome://tracing.
// One simulated cycle maps to one microsecond of trace time.
//
// Instruction lifetimes become one duration slice per stage the
// instruction was observed in: fetch (fetch queue residence), dispatch
// (ROB wait before issue), execute (issue to completion), and commit
// (completion to retirement). Slices of instructions still in flight
// when the window closed are extended to the last recorded cycle.
// Translation and cache events render as instants (misses, port
// rejections) and spans (page-table walks) on their own tracks.
func (r *Recorder) WritePerfetto(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	events := r.Events()
	lives, _, maxCycle := lifetimes(events)

	fmt.Fprint(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	// Track metadata. The first event has no leading comma.
	fmt.Fprintf(bw, "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":\"pipeline\"}}", pidPipeline)
	for _, t := range []struct {
		pid, tid int
		name     string
	}{
		{pidPipeline, tidFetch, "fetch"},
		{pidPipeline, tidDispatch, "dispatch"},
		{pidPipeline, tidExecute, "execute"},
		{pidPipeline, tidCommit, "commit"},
		{pidMemory, tidTLB, "tlb"},
		{pidMemory, tidDCache, "dcache"},
	} {
		fmt.Fprintf(bw, ",\n{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}",
			t.pid, t.tid, jstr(t.name))
	}
	fmt.Fprintf(bw, ",\n{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":\"translation+memory\"}}", pidMemory)

	// Per-instruction stage slices.
	for _, l := range lives {
		name := fmt.Sprintf("0x%x %s", l.pc, l.disasm())
		end := l.retired()
		if end < 0 {
			end = maxCycle + 1
		}
		args := fmt.Sprintf("\"seq\":%d", l.seq)
		if l.squash >= 0 {
			args += ",\"squashed\":true"
		}
		if l.fault {
			args += ",\"faulted\":true"
		}
		if l.tlbMisses > 0 {
			args += fmt.Sprintf(",\"tlb_misses\":%d,\"walk_cycles\":%d", l.tlbMisses, l.walkCycles)
		}
		// Each slice runs from its stage event to the next observed
		// stage boundary (or the instruction's end for the last one).
		stages := []struct {
			tid         int
			start, stop int64
		}{
			{tidFetch, l.fetch, firstAtOrAfter(l.dispatch, end)},
			{tidDispatch, l.dispatch, firstAtOrAfter(l.issue, end)},
			{tidExecute, l.issue, firstAtOrAfter(l.complete, end)},
			{tidCommit, l.complete, end},
		}
		for _, s := range stages {
			if s.start < 0 {
				continue
			}
			stop := s.stop
			if stop < s.start {
				stop = s.start + 1
			}
			span(bw, pidPipeline, s.tid, s.start, stop-s.start, name, args)
		}
	}

	// Translation and cache tracks: walks as spans, the rest as
	// instants.
	walkStart := make(map[int64]int64)
	for i := range events {
		ev := &events[i]
		args := fmt.Sprintf("\"seq\":%d,\"pc\":\"0x%x\"", ev.Seq, ev.PC)
		switch ev.Kind {
		case KTLBMiss, KTLBNoPort, KITLBMiss:
			instant(bw, pidMemory, tidTLB, ev.Cycle, ev.Kind.String(), args)
		case KWalkStart:
			walkStart[ev.Seq] = ev.Cycle
		case KWalkEnd:
			start, ok := walkStart[ev.Seq]
			if !ok {
				start = ev.Cycle - ev.Arg
			}
			delete(walkStart, ev.Seq)
			span(bw, pidMemory, tidTLB, start, ev.Cycle-start,
				fmt.Sprintf("walk 0x%x", ev.PC), args)
		case KDCacheMiss, KDCachePort:
			instant(bw, pidMemory, tidDCache, ev.Cycle, ev.Kind.String(), args)
		}
	}
	// Walks still in flight at the window's end, in seq order so the
	// export stays byte-stable.
	pending := make([]int64, 0, len(walkStart))
	for seq := range walkStart {
		pending = append(pending, seq)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	for _, seq := range pending {
		start := walkStart[seq]
		span(bw, pidMemory, tidTLB, start, maxCycle+1-start, "walk (in flight)",
			fmt.Sprintf("\"seq\":%d", seq))
	}

	fmt.Fprint(bw, "\n]}\n")
	return bw.Flush()
}

// firstAtOrAfter returns next if it is known (>= 0), else fallback.
func firstAtOrAfter(next, fallback int64) int64 {
	if next >= 0 {
		return next
	}
	return fallback
}
