package ptrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Perfetto/Chrome trace-event track layout for a standalone export.
// The pipeline process holds one thread per pipeline stage
// (instruction lifetimes render as duration slices per stage); the
// memory process holds the translation and data-cache event tracks
// (misses, port conflicts, and page-table-walk spans). When a
// recorder is merged into a sweep-wide timeline (runspan), the caller
// assigns fresh pids per run instead.
const (
	pidPipeline = 0
	pidMemory   = 1

	tidFetch    = 1
	tidDispatch = 2
	tidExecute  = 3
	tidCommit   = 4

	tidTLB    = 1
	tidDCache = 2
)

// jstr renders s as a JSON string literal.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `"?"`
	}
	return string(b)
}

// PerfettoWriter incrementally emits one Chrome/Perfetto trace-event
// JSON document: NewPerfettoWriter writes the prologue, the event
// methods append events (handling the comma discipline), and Close
// writes the epilogue and flushes. It exists so several producers —
// a macro span tracer and any number of per-run micro recorders —
// can share one timeline file; Recorder.AppendPerfetto and the
// runspan package both build on it.
type PerfettoWriter struct {
	bw *bufio.Writer
	n  int // events written; the first gets no leading comma
}

// NewPerfettoWriter starts a trace-event document on w.
func NewPerfettoWriter(w io.Writer) *PerfettoWriter {
	pw := &PerfettoWriter{bw: bufio.NewWriterSize(w, 64<<10)}
	fmt.Fprint(pw.bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	return pw
}

// sep writes the inter-event separator (nothing before the first
// event, ",\n" before every later one).
func (p *PerfettoWriter) sep() {
	if p.n > 0 {
		p.bw.WriteString(",\n")
	}
	p.n++
}

// ProcessName emits process_name metadata for pid.
func (p *PerfettoWriter) ProcessName(pid int, name string) {
	p.sep()
	fmt.Fprintf(p.bw, "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":%s}}", pid, jstr(name))
}

// ThreadName emits thread_name metadata for (pid, tid).
func (p *PerfettoWriter) ThreadName(pid, tid int, name string) {
	p.sep()
	fmt.Fprintf(p.bw, "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}",
		pid, tid, jstr(name))
}

// Slice emits one complete ("X") duration event. args is the raw
// inner body of the args object (may be empty). Durations are
// clamped to at least 1 so zero-length slices stay visible.
func (p *PerfettoWriter) Slice(pid, tid int, ts, dur int64, name string, args string) {
	if dur < 1 {
		dur = 1
	}
	p.sep()
	fmt.Fprintf(p.bw, "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":%s,\"args\":{%s}}",
		pid, tid, ts, dur, jstr(name), args)
}

// Instant emits one instant ("i") event (thread scope).
func (p *PerfettoWriter) Instant(pid, tid int, ts int64, name string, args string) {
	p.sep()
	fmt.Fprintf(p.bw, "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"name\":%s,\"args\":{%s}}",
		pid, tid, ts, jstr(name), args)
}

// Close terminates the document and flushes.
func (p *PerfettoWriter) Close() error {
	fmt.Fprint(p.bw, "\n]}\n")
	return p.bw.Flush()
}

// WritePerfetto exports the recorded events as Chrome/Perfetto
// trace-event JSON, loadable in ui.perfetto.dev or chrome://tracing.
// One simulated cycle maps to one microsecond of trace time.
//
// Instruction lifetimes become one duration slice per stage the
// instruction was observed in: fetch (fetch queue residence), dispatch
// (ROB wait before issue), execute (issue to completion), and commit
// (completion to retirement). Slices of instructions still in flight
// when the window closed are extended to the last recorded cycle.
// Translation and cache events render as instants (misses, port
// rejections) and spans (page-table walks) on their own tracks.
func (r *Recorder) WritePerfetto(w io.Writer) error {
	pw := NewPerfettoWriter(w)
	r.AppendPerfetto(pw, pidPipeline, pidMemory, 0, "pipeline", "translation+memory")
	return pw.Close()
}

// AppendPerfetto merges this recorder's events into an open
// PerfettoWriter as two processes (pipeline stages and
// translation+memory tracks) named pipeName and memName. Every
// timestamp is shifted by tsOffset microseconds, which is how a
// run's cycle-0 micro events are nested under that run's macro span
// on a sweep-wide timeline.
func (r *Recorder) AppendPerfetto(pw *PerfettoWriter, pidPipe, pidMem int, tsOffset int64, pipeName, memName string) {
	events := r.Events()
	lives, _, maxCycle := lifetimes(events)

	pw.ProcessName(pidPipe, pipeName)
	for _, t := range []struct {
		tid  int
		name string
	}{
		{tidFetch, "fetch"},
		{tidDispatch, "dispatch"},
		{tidExecute, "execute"},
		{tidCommit, "commit"},
	} {
		pw.ThreadName(pidPipe, t.tid, t.name)
	}
	pw.ProcessName(pidMem, memName)
	pw.ThreadName(pidMem, tidTLB, "tlb")
	pw.ThreadName(pidMem, tidDCache, "dcache")

	// Per-instruction stage slices.
	for _, l := range lives {
		name := fmt.Sprintf("0x%x %s", l.pc, l.disasm())
		end := l.retired()
		if end < 0 {
			end = maxCycle + 1
		}
		args := fmt.Sprintf("\"seq\":%d", l.seq)
		if l.squash >= 0 {
			args += ",\"squashed\":true"
		}
		if l.fault {
			args += ",\"faulted\":true"
		}
		if l.tlbMisses > 0 {
			args += fmt.Sprintf(",\"tlb_misses\":%d,\"walk_cycles\":%d", l.tlbMisses, l.walkCycles)
		}
		// Each slice runs from its stage event to the next observed
		// stage boundary (or the instruction's end for the last one).
		stages := []struct {
			tid         int
			start, stop int64
		}{
			{tidFetch, l.fetch, firstAtOrAfter(l.dispatch, end)},
			{tidDispatch, l.dispatch, firstAtOrAfter(l.issue, end)},
			{tidExecute, l.issue, firstAtOrAfter(l.complete, end)},
			{tidCommit, l.complete, end},
		}
		for _, s := range stages {
			if s.start < 0 {
				continue
			}
			stop := s.stop
			if stop < s.start {
				stop = s.start + 1
			}
			pw.Slice(pidPipe, s.tid, tsOffset+s.start, stop-s.start, name, args)
		}
	}

	// Translation and cache tracks: walks as spans, the rest as
	// instants.
	walkStart := make(map[int64]int64)
	for i := range events {
		ev := &events[i]
		args := fmt.Sprintf("\"seq\":%d,\"pc\":\"0x%x\"", ev.Seq, ev.PC)
		switch ev.Kind {
		case KTLBMiss, KTLBNoPort, KITLBMiss:
			pw.Instant(pidMem, tidTLB, tsOffset+ev.Cycle, ev.Kind.String(), args)
		case KWalkStart:
			walkStart[ev.Seq] = ev.Cycle
		case KWalkEnd:
			start, ok := walkStart[ev.Seq]
			if !ok {
				start = ev.Cycle - ev.Arg
			}
			delete(walkStart, ev.Seq)
			pw.Slice(pidMem, tidTLB, tsOffset+start, ev.Cycle-start,
				fmt.Sprintf("walk 0x%x", ev.PC), args)
		case KDCacheMiss, KDCachePort:
			pw.Instant(pidMem, tidDCache, tsOffset+ev.Cycle, ev.Kind.String(), args)
		}
	}
	// Walks still in flight at the window's end, in seq order so the
	// export stays byte-stable.
	pending := make([]int64, 0, len(walkStart))
	for seq := range walkStart {
		pending = append(pending, seq)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	for _, seq := range pending {
		start := walkStart[seq]
		pw.Slice(pidMem, tidTLB, tsOffset+start, maxCycle+1-start, "walk (in flight)",
			fmt.Sprintf("\"seq\":%d", seq))
	}
}

// firstAtOrAfter returns next if it is known (>= 0), else fallback.
func firstAtOrAfter(next, fallback int64) int64 {
	if next >= 0 {
		return next
	}
	return fallback
}
