// Package ptrace is the pipeline event tracer: a low-overhead,
// ring-buffered recorder of cycle-accurate per-instruction events
// (fetch, dispatch, issue, completion, commit, squash) and translation/
// memory-hierarchy events (TLB hit/miss/port-conflict, page-table
// walks, data-cache hits/misses/port-conflicts), keyed by the core's
// monotonically increasing instruction sequence number.
//
// The recorder is built for the simulator's hot path: a nil *Recorder
// is a valid, fully disabled tracer (every method is nil-safe and
// returns immediately), Emit never allocates (the ring buffer is
// preallocated at construction), and recording is windowed by cycle
// range so an 8-wide run over millions of cycles stays tractable.
//
// Captured traces export three ways: Chrome/Perfetto trace-event JSON
// (WritePerfetto — load the file in ui.perfetto.dev), the Konata/
// Kanata pipeline-viewer log format (WriteKonata), and a plain-text
// report of stall causes and longest-latency instructions
// (WriteSummary).
package ptrace

import (
	"sort"

	"hbat/internal/isa"
)

// Kind classifies one pipeline event.
type Kind uint8

const (
	// Per-instruction lifetime events.
	KFetch    Kind = iota // instruction entered the fetch queue
	KDispatch             // renamed into the ROB (Arg: ROB occupancy)
	KIssue                // issued to a functional unit
	KComplete             // result ready; eligible to commit
	KCommit               // architected effects applied, entry retired
	KSquash               // squashed by misprediction recovery
	KFault                // protection fault detected (fatal if committed)

	// Translation events (data side).
	KTLBHit    // translation hit (Arg: extra latency cycles)
	KTLBMiss   // base-TLB miss; a page-table walk is required
	KTLBNoPort // rejected for want of a TLB port; retried next cycle
	KWalkStart // non-speculative page-table walk began (Arg: walk latency)
	KWalkEnd   // walk finished and the translation was filled (Arg: walk latency)

	// Data-cache events.
	KDCacheHit   // data-cache hit
	KDCacheMiss  // data-cache miss (Arg: extra latency cycles)
	KDCachePort  // rejected for want of a cache port; retried
	KStoreWait   // load replayed waiting on an older store's data/address
	KCommitRetry // store commit retried for want of a cache port
	KITLBMiss    // instruction micro-TLB miss stalled the front end

	numKinds
)

var kindNames = [numKinds]string{
	"fetch", "dispatch", "issue", "complete", "commit", "squash", "fault",
	"tlb_hit", "tlb_miss", "tlb_noport", "walk_start", "walk_end",
	"dcache_hit", "dcache_miss", "dcache_noport", "store_wait",
	"commit_store_retry", "itlb_miss",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(?)"
}

// Event is one recorded pipeline event. Inst is the decoded instruction
// (nil for events with no instruction, e.g. ITLB misses on wrong-path
// fetch addresses); its disassembly is rendered lazily at export so the
// recording path stays allocation-free.
type Event struct {
	Seq   int64 // instruction sequence number (-1: not tied to one)
	Cycle int64
	PC    uint64
	Inst  *isa.Inst
	Kind  Kind
	Arg   int64 // kind-specific detail (latency, occupancy, ...)
}

// Disasm renders the event's instruction ("?" when unknown — wrong-path
// fetches beyond the text segment carry no decoded instruction).
func (e *Event) Disasm() string {
	if e.Inst == nil {
		return "?"
	}
	return e.Inst.String()
}

// Config parameterizes a Recorder.
type Config struct {
	// Cap is the ring-buffer capacity in events (default 1<<16). When
	// the buffer wraps, the oldest events are overwritten and counted
	// in Dropped.
	Cap int
	// Start is the first cycle recorded (values < 1 clamp to 1, the
	// first simulated cycle).
	Start int64
	// End is the last cycle recorded, inclusive (0 = no end). A window
	// with End < Start records nothing.
	End int64
}

// normalized clamps the window to the simulator's cycle domain.
func (c Config) normalized() Config {
	if c.Cap <= 0 {
		c.Cap = 1 << 16
	}
	if c.Start < 1 {
		c.Start = 1
	}
	if c.End < 0 {
		c.End = 0
	}
	return c
}

// Recorder captures events into a fixed ring buffer. The zero value is
// not usable; construct with New. A nil *Recorder is a valid disabled
// tracer: Enabled reports false and Emit is a no-op.
type Recorder struct {
	cfg     Config
	buf     []Event
	next    int
	wrapped bool
	total   uint64
}

// New builds a recorder from cfg (see Config for defaults).
func New(cfg Config) *Recorder {
	cfg = cfg.normalized()
	return &Recorder{cfg: cfg, buf: make([]Event, 0, cfg.Cap)}
}

// Window returns the recording window ([start, end] cycles; end 0 means
// unbounded).
func (r *Recorder) Window() (start, end int64) { return r.cfg.Start, r.cfg.End }

// Enabled reports whether an event at the given cycle would be
// recorded. Nil-safe; this is the hot-path gate.
func (r *Recorder) Enabled(cycle int64) bool {
	return r != nil && cycle >= r.cfg.Start && (r.cfg.End == 0 || cycle <= r.cfg.End)
}

// Emit records one event. Nil-safe and allocation-free; events outside
// the cycle window are discarded.
func (r *Recorder) Emit(seq, cycle int64, k Kind, pc uint64, inst *isa.Inst, arg int64) {
	if !r.Enabled(cycle) {
		return
	}
	r.total++
	e := Event{Seq: seq, Cycle: cycle, PC: pc, Inst: inst, Kind: k, Arg: arg}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.wrapped = true
}

// Total returns how many events fell inside the window (recorded plus
// dropped).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Dropped returns how many in-window events were overwritten after the
// ring buffer wrapped.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

// Len returns how many events are currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Events returns the held events in chronological order (stable-sorted
// by cycle, preserving emit order within a cycle). The slice is a copy;
// the recorder may keep recording.
func (r *Recorder) Events() []Event {
	if r == nil || len(r.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out
}
