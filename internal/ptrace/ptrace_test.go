package ptrace

import (
	"strings"
	"testing"

	"hbat/internal/isa"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled(1) {
		t.Error("nil recorder reports enabled")
	}
	r.Emit(0, 1, KFetch, 0, nil, 0) // must not panic
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Errorf("nil recorder reports state: len %d total %d dropped %d", r.Len(), r.Total(), r.Dropped())
	}
	if evs := r.Events(); evs != nil {
		t.Errorf("nil recorder returned events: %v", evs)
	}
}

func TestConfigNormalization(t *testing.T) {
	r := New(Config{})
	if got, _ := r.Window(); got != 1 {
		t.Errorf("default start = %d, want 1", got)
	}
	if cap(r.buf) != 1<<16 {
		t.Errorf("default cap = %d, want %d", cap(r.buf), 1<<16)
	}
	r = New(Config{Start: -5, End: -1, Cap: 4})
	s, e := r.Window()
	if s != 1 || e != 0 {
		t.Errorf("window = [%d,%d], want [1,0]", s, e)
	}
}

func TestWindowClamping(t *testing.T) {
	r := New(Config{Cap: 16, Start: 10, End: 20})
	for c := int64(1); c <= 30; c++ {
		r.Emit(c, c, KFetch, 0, nil, 0)
	}
	evs := r.Events()
	if len(evs) != 11 {
		t.Fatalf("recorded %d events, want 11 (cycles 10..20)", len(evs))
	}
	if evs[0].Cycle != 10 || evs[len(evs)-1].Cycle != 20 {
		t.Errorf("window = %d..%d, want 10..20", evs[0].Cycle, evs[len(evs)-1].Cycle)
	}
}

func TestEmptyWindowRecordsNothing(t *testing.T) {
	// End < Start: a valid but empty window.
	r := New(Config{Cap: 16, Start: 100, End: 50})
	for c := int64(1); c <= 200; c++ {
		r.Emit(c, c, KFetch, 0, nil, 0)
	}
	if r.Len() != 0 || r.Total() != 0 {
		t.Errorf("empty window recorded %d events (%d emitted)", r.Len(), r.Total())
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := New(Config{Cap: 8})
	for c := int64(1); c <= 20; c++ {
		r.Emit(c, c, KFetch, 0, nil, c)
	}
	if r.Len() != 8 {
		t.Fatalf("len = %d, want 8", r.Len())
	}
	if r.Total() != 20 || r.Dropped() != 12 {
		t.Errorf("total %d dropped %d, want 20/12", r.Total(), r.Dropped())
	}
	evs := r.Events()
	for i, e := range evs {
		if want := int64(13 + i); e.Cycle != want {
			t.Errorf("event %d: cycle %d, want %d", i, e.Cycle, want)
		}
	}
}

func TestEventsStableWithinCycle(t *testing.T) {
	r := New(Config{Cap: 8})
	r.Emit(1, 5, KFetch, 0, nil, 0)
	r.Emit(1, 5, KDispatch, 0, nil, 0)
	r.Emit(2, 3, KFetch, 0, nil, 0)
	evs := r.Events()
	if len(evs) != 3 || evs[0].Cycle != 3 {
		t.Fatalf("unexpected events: %+v", evs)
	}
	if evs[1].Kind != KFetch || evs[2].Kind != KDispatch {
		t.Errorf("emit order not preserved within cycle: %v %v", evs[1].Kind, evs[2].Kind)
	}
}

func TestEmitDoesNotAllocate(t *testing.T) {
	r := New(Config{Cap: 1024})
	in := &isa.Inst{Op: isa.Add}
	c := int64(0)
	allocs := testing.AllocsPerRun(2000, func() {
		c++
		r.Emit(c, c, KIssue, 0x400000, in, 1)
	})
	if allocs != 0 {
		t.Errorf("Emit allocates %.1f per call, want 0", allocs)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || strings.Contains(s, "?") {
			t.Errorf("kind %d has bad name %q", k, s)
		}
	}
	if s := Kind(200).String(); !strings.Contains(s, "?") {
		t.Errorf("out-of-range kind renders %q", s)
	}
}

func TestDisasmNilInst(t *testing.T) {
	e := Event{}
	if e.Disasm() != "?" {
		t.Errorf("nil-inst disasm = %q, want ?", e.Disasm())
	}
}
