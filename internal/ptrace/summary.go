package ptrace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteSummary renders a plain-text report of the recorded window: the
// event census, the translation/memory stall causes ranked by weight,
// and the topN longest-latency instructions (fetch to retirement).
func (r *Recorder) WriteSummary(w io.Writer, topN int) error {
	if topN <= 0 {
		topN = 10
	}
	bw := bufio.NewWriterSize(w, 32<<10)
	events := r.Events()
	lives, minCycle, maxCycle := lifetimes(events)

	fmt.Fprintf(bw, "pipeline trace summary\n")
	if len(events) == 0 {
		fmt.Fprintf(bw, "  no events recorded (window empty or tracing saw no activity)\n")
		return bw.Flush()
	}
	fmt.Fprintf(bw, "  cycles %d..%d, %d events held (%d emitted, %d overwritten), %d instructions\n",
		minCycle, maxCycle, r.Len(), r.Total(), r.Dropped(), len(lives))

	// Event census in kind order.
	var counts [numKinds]uint64
	for i := range events {
		counts[events[i].Kind]++
	}
	fmt.Fprintf(bw, "\nevent census\n")
	for k := Kind(0); k < numKinds; k++ {
		if counts[k] > 0 {
			fmt.Fprintf(bw, "  %-20s %d\n", k.String(), counts[k])
		}
	}

	// Stall causes ranked by total cycles lost in the window. Replayed
	// requests cost one cycle per rejection; walks cost their latency.
	type cause struct {
		name   string
		cycles uint64
	}
	var walkCycles, squashed uint64
	for i := range events {
		switch events[i].Kind {
		case KWalkEnd:
			walkCycles += uint64(events[i].Arg)
		case KSquash:
			squashed++
		}
	}
	causes := []cause{
		{"page-table walks", walkCycles},
		{"tlb port conflicts (retry cycles)", counts[KTLBNoPort]},
		{"dcache port conflicts (retry cycles)", counts[KDCachePort]},
		{"store-forward waits (retry cycles)", counts[KStoreWait]},
		{"store commit retries", counts[KCommitRetry]},
		{"itlb miss stalls", counts[KITLBMiss]},
		{"squashed instructions", squashed},
	}
	sort.SliceStable(causes, func(i, j int) bool { return causes[i].cycles > causes[j].cycles })
	fmt.Fprintf(bw, "\ntop stall causes (cycles or events in window)\n")
	for _, c := range causes {
		if c.cycles > 0 {
			fmt.Fprintf(bw, "  %-36s %d\n", c.name, c.cycles)
		}
	}

	// Longest-latency retired instructions.
	type lat struct {
		l       *life
		latency int64
	}
	var lats []lat
	for _, l := range lives {
		end := l.retired()
		if l.fetch < 0 || end < 0 {
			continue
		}
		lats = append(lats, lat{l, end - l.fetch})
	}
	sort.SliceStable(lats, func(i, j int) bool {
		if lats[i].latency != lats[j].latency {
			return lats[i].latency > lats[j].latency
		}
		return lats[i].l.seq < lats[j].l.seq
	})
	if len(lats) > topN {
		lats = lats[:topN]
	}
	fmt.Fprintf(bw, "\nlongest-latency instructions (fetch to retire)\n")
	fmt.Fprintf(bw, "  %6s %10s %-28s %6s  %s\n", "cycles", "seq", "pc/disasm", "fate", "detail")
	for _, x := range lats {
		fate := "commit"
		if x.l.squash >= 0 && x.l.commit < 0 {
			fate = "squash"
		}
		detail := x.l.detailText()
		if detail == "" {
			detail = "-"
		}
		fmt.Fprintf(bw, "  %6d %10d %-28s %6s  %s\n",
			x.latency, x.l.seq, fmt.Sprintf("0x%x %s", x.l.pc, x.l.disasm()), fate, detail)
	}
	return bw.Flush()
}
