package report

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hbat/internal/harness"
	"hbat/internal/workload"
)

// Regenerate with: go test ./internal/report/ -run TestGoldenHTML -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// TestGoldenHTMLReport pins the full rendered page — template structure,
// SVG layout, and the simulated numbers — for a reduced deterministic
// grid. The injected timestamp keeps the page reproducible.
func TestGoldenHTMLReport(t *testing.T) {
	opts := harness.Options{
		Scale:     workload.ScaleTest,
		Seed:      1,
		Workloads: []string{"espresso", "xlisp", "compress"},
		Designs:   []string{"T4", "T1", "M8", "PB2", "I4"},
	}
	var sb strings.Builder
	if err := Generate(context.Background(), &sb, opts, []string{"fig5"}, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	got := []byte(sb.String())

	path := filepath.Join("testdata", "report.html")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		gotLines := strings.Split(string(got), "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w string
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Fatalf("%s differs at line %d:\n got: %q\nwant: %q\n(run with -update if the change is intentional)",
					path, i+1, g, w)
			}
		}
		t.Fatalf("%s differs (run with -update if the change is intentional)", path)
	}
}
