// Package report renders experiment results as a self-contained HTML
// page with inline SVG bar charts mirroring the paper's figures — the
// visual companion to the text reports in internal/harness. Everything
// is generated with the standard library; the page has no external
// dependencies.
package report

import (
	"context"
	"fmt"
	"html/template"
	"io"
	"time"

	"hbat/internal/harness"
)

// Data is everything the template renders.
type Data struct {
	Title     string
	Generated string
	Scale     string
	Table3    []harness.Table3Row
	Figures   []*FigureView
	Figure6   *Fig6View
	Model     []harness.ModelRow
}

// FigureView is one design-comparison chart.
type FigureView struct {
	Name    string
	Caption string
	Bars    []Bar
	Detail  *harness.FigureResult
}

// Bar is one design's normalized result.
type Bar struct {
	Label string
	Value float64 // normalized IPC (0..~1)
	X     int
	H     int
	Y     int
	Color string
}

// Fig6View is the miss-rate study.
type Fig6View struct {
	Sizes  []int
	Rows   []Fig6Row
	AvgRow []string
}

// Fig6Row is one workload's miss rates.
type Fig6Row struct {
	Workload string
	Cells    []string
}

// barColor groups the Table 2 designs by family, echoing the paper's
// figure shading.
func barColor(design string) string {
	switch design {
	case "T4", "T2", "T1":
		return "#4878a8" // multi-ported
	case "M16", "M8", "M4":
		return "#58a066" // multi-level
	case "P8":
		return "#8868b0" // pretranslation
	case "I8", "I4", "X4":
		return "#c8803c" // interleaved
	default:
		return "#b05860" // piggybacked
	}
}

const (
	chartHeight = 220
	barWidth    = 44
	barGap      = 10
)

// buildFigure lays out the bar chart for one figure.
func buildFigure(f *harness.FigureResult) *FigureView {
	v := &FigureView{Name: f.Name, Caption: f.Caption, Detail: f}
	for i, d := range f.Designs {
		n := f.NormalizedAvg(d)
		h := int(n * float64(chartHeight))
		if h < 2 {
			h = 2
		}
		v.Bars = append(v.Bars, Bar{
			Label: d,
			Value: n,
			X:     i * (barWidth + barGap),
			H:     h,
			Y:     chartHeight - h,
			Color: barColor(d),
		})
	}
	return v
}

// ChartWidth sizes the SVG for the bar count.
func (v *FigureView) ChartWidth() int {
	return len(v.Bars)*(barWidth+barGap) + barGap
}

// Generate runs the selected experiments and writes the HTML report.
// figures selects among fig5/fig7/fig8/fig9 (nil = all four); Table 3,
// Figure 6, and the model study are always included.
func Generate(ctx context.Context, w io.Writer, opts harness.Options, figures []string, now time.Time) error {
	if figures == nil {
		figures = []string{"fig5", "fig7", "fig8", "fig9"}
	}
	if opts.Engine == nil {
		// One engine for the whole report: fig5 reuses Table 3's T4
		// runs and every figure shares workload builds.
		opts.Engine = harness.NewEngine()
	}
	data := Data{
		Title:     "High-Bandwidth Address Translation — reproduction report",
		Generated: now.UTC().Format(time.RFC3339),
		Scale:     opts.Scale.String(),
	}

	rows, err := harness.Table3(ctx, opts)
	if err != nil {
		return err
	}
	data.Table3 = rows

	for _, name := range figures {
		var f *harness.FigureResult
		switch name {
		case "fig5":
			f, err = harness.Figure5(ctx, opts)
		case "fig7":
			f, err = harness.Figure7(ctx, opts)
		case "fig8":
			f, err = harness.Figure8(ctx, opts)
		case "fig9":
			f, err = harness.Figure9(ctx, opts)
		default:
			return fmt.Errorf("report: unknown figure %q", name)
		}
		if err != nil {
			return err
		}
		data.Figures = append(data.Figures, buildFigure(f))
	}

	f6, err := harness.Figure6(ctx, opts, nil)
	if err != nil {
		return err
	}
	v6 := &Fig6View{Sizes: f6.Sizes}
	for _, wl := range f6.Workloads {
		row := Fig6Row{Workload: wl}
		for _, s := range f6.Sizes {
			row.Cells = append(row.Cells, fmt.Sprintf("%.3f%%", 100*f6.MissRate[wl][s]))
		}
		v6.Rows = append(v6.Rows, row)
	}
	for _, s := range f6.Sizes {
		v6.AvgRow = append(v6.AvgRow, fmt.Sprintf("%.3f%%", 100*f6.RTWAvg(s)))
	}
	data.Figure6 = v6

	model, err := harness.ModelStudy(ctx, opts)
	if err != nil {
		return err
	}
	data.Model = model

	// The HTML render gets its own span (rendering is per-artifact,
	// not per-run) on the engine's tracer when one is attached.
	if tr := opts.Engine.Spans(); tr.Enabled() {
		sp := tr.Start(tr.NewTrace(), nil, "render").SetAttr("artifact", "report.html")
		defer sp.End()
	}
	return pageTemplate.Execute(w, &data)
}

var pageTemplate = template.Must(template.New("report").Funcs(template.FuncMap{
	"pct": func(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) },
	"f3":  func(v float64) string { return fmt.Sprintf("%.3f", v) },
	"f4":  func(v float64) string { return fmt.Sprintf("%.4f", v) },
}).Parse(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{{.Title}}</title>
<style>
 body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto; max-width: 62em; color: #222; }
 h1 { font-size: 1.5em; } h2 { font-size: 1.2em; margin-top: 2em; }
 table { border-collapse: collapse; margin: 1em 0; }
 th, td { border: 1px solid #ccc; padding: 3px 9px; text-align: right; }
 th:first-child, td:first-child { text-align: left; }
 .bar-label { font-size: 11px; text-anchor: middle; }
 .bar-value { font-size: 10px; text-anchor: middle; fill: #333; }
 .note { color: #555; font-size: 0.9em; }
 figure { margin: 1em 0; }
</style></head><body>
<h1>{{.Title}}</h1>
<p class="note">Austin &amp; Sohi, ISCA 1996 — regenerated {{.Generated}}, workload scale "{{.Scale}}".
Bars are run-time weighted average IPC normalized to the four-ported TLB (T4).</p>

<h2>Table 3 — program execution performance (baseline, T4)</h2>
<table><tr><th>program</th><th>insts</th><th>loads</th><th>stores</th>
<th>issue IPC</th><th>commit IPC</th><th>ld+st/cyc</th><th>br pred</th></tr>
{{range .Table3}}<tr><td>{{.Workload}}</td><td>{{.Insts}}</td><td>{{.Loads}}</td><td>{{.Stores}}</td>
<td>{{f3 .IssueIPC}}</td><td>{{f3 .CommitIPC}}</td><td>{{f3 .CommitMem}}</td><td>{{pct .BranchRate}}</td></tr>
{{end}}</table>

{{range .Figures}}
<h2>{{.Name}} — {{.Caption}}</h2>
<figure>
<svg width="{{.ChartWidth}}" height="270" role="img">
{{range .Bars}}<g>
<rect x="{{.X}}" y="{{.Y}}" width="44" height="{{.H}}" fill="{{.Color}}"></rect>
<text class="bar-value" x="{{.X}}" dx="22" y="{{.Y}}" dy="-4">{{f3 .Value}}</text>
<text class="bar-label" x="{{.X}}" dx="22" y="240">{{.Label}}</text>
</g>{{end}}
</svg>
</figure>
<details><summary>per-workload normalized IPC</summary>
<table><tr><th>workload</th>{{range .Detail.Designs}}<th>{{.}}</th>{{end}}</tr>
{{$d := .Detail}}
{{range $wl := .Detail.Workloads}}<tr><td>{{$wl}}</td>
{{range $des := $d.Designs}}<td>{{f3 ($d.Normalized $des $wl)}}</td>{{end}}</tr>
{{end}}</table></details>
{{end}}

<h2>Figure 6 — TLB miss rates (fully associative; LRU &le; 16 entries, random above)</h2>
<table><tr><th>workload</th>{{range .Figure6.Sizes}}<th>{{.}}</th>{{end}}</tr>
{{range .Figure6.Rows}}<tr><td>{{.Workload}}</td>{{range .Cells}}<td>{{.}}</td>{{end}}</tr>{{end}}
<tr><td><b>RTW-avg</b></td>{{range .Figure6.AvgRow}}<td><b>{{.}}</b></td>{{end}}</tr></table>

<h2>Section 2 model, fitted per design</h2>
<table><tr><th>design</th><th>f_shielded</th><th>t_stalled</th><th>t_TLBhit+</th>
<th>M_TLB</th><th>t_AT</th><th>f_TOL</th><th>IPC vs T4</th></tr>
{{range .Model}}<tr><td>{{.Design}}</td><td>{{f4 .FShielded}}</td><td>{{f4 .TStalled}}</td>
<td>{{f4 .TTLBHit}}</td><td>{{f4 .MTLB}}</td><td>{{f4 .TAT}}</td><td>{{f3 .FTol}}</td><td>{{f4 .RelIPC}}</td></tr>
{{end}}</table>

<p class="note">Generated by cmd/hbat-report. Design families:
<span style="color:#4878a8">multi-ported</span>,
<span style="color:#58a066">multi-level</span>,
<span style="color:#8868b0">pretranslation</span>,
<span style="color:#c8803c">interleaved</span>,
<span style="color:#b05860">piggybacked</span>.</p>
</body></html>
`))
