package report

import (
	"context"
	"strings"
	"testing"
	"time"

	"hbat/internal/harness"
	"hbat/internal/workload"
)

func TestGenerate(t *testing.T) {
	opts := harness.Options{
		Scale:     workload.ScaleTest,
		Seed:      1,
		Workloads: []string{"espresso", "xlisp"},
		Designs:   []string{"T4", "T1", "M8"},
	}
	var sb strings.Builder
	if err := Generate(context.Background(), &sb, opts, []string{"fig5"}, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html",
		"Table 3",
		"fig5",
		"<svg",
		"<rect",
		"Figure 6",
		"Section 2 model",
		"espresso",
		"f_shielded",
		"1970-01-01T00:00:00Z",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Three designs, one figure: three bars.
	if got := strings.Count(out, "<rect"); got != 3 {
		t.Errorf("bar count = %d, want 3", got)
	}
}

func TestGenerateUnknownFigure(t *testing.T) {
	var sb strings.Builder
	err := Generate(context.Background(), &sb, harness.Options{Scale: workload.ScaleTest}, []string{"fig99"}, time.Unix(0, 0))
	if err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestBarColorFamilies(t *testing.T) {
	if barColor("T4") != barColor("T1") {
		t.Error("multi-ported family split")
	}
	if barColor("M8") == barColor("I4") {
		t.Error("families share a color")
	}
	if barColor("PB2") != barColor("I4/PB") {
		t.Error("piggybacked family split")
	}
}
