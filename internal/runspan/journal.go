package runspan

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// JournalVersion is the span-journal format version. Bump it when
// the header or record shape changes incompatibly; ReadJournal
// rejects versions it does not know.
const JournalVersion = 1

// Header is the first line of a span journal.
type Header struct {
	V     int    `json:"v"`
	Epoch string `json:"epoch"` // wall-clock time of StartUS==0, RFC3339Nano
}

// syncer is the subset of *os.File the journal needs for crash
// safety; buffers used in tests simply don't implement it.
type syncer interface{ Sync() error }

// journalWriter appends one JSON line per finished span. Writes
// happen under the tracer's lock, so it needs no lock of its own.
type journalWriter struct {
	w    io.Writer
	sync syncer
	c    io.Closer
	err  error // first write error; later appends become no-ops
}

func (j *journalWriter) append(d SpanData, root bool) {
	if j.err != nil {
		return
	}
	b, err := json.Marshal(d)
	if err != nil {
		j.err = err
		return
	}
	b = append(b, '\n')
	if _, err := j.w.Write(b); err != nil {
		j.err = err
		return
	}
	// Root spans close out a whole run: force them to stable storage
	// so a crash loses at most the run in flight.
	if root && j.sync != nil {
		if err := j.sync.Sync(); err != nil {
			j.err = err
		}
	}
}

// OpenJournal creates (truncating) a JSON-lines span journal at path
// and writes its header. Finished spans are appended as they end;
// root-span appends are fsynced.
func (t *Tracer) OpenJournal(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("runspan: open journal: %w", err)
	}
	if err := t.SetJournal(f); err != nil {
		f.Close()
		return err
	}
	t.mu.Lock()
	t.journal.sync = f
	t.journal.c = f
	t.mu.Unlock()
	return nil
}

// SetJournal directs the journal to an arbitrary writer (tests use a
// buffer) and writes the header. If w implements Sync, root-span
// appends are synced.
func (t *Tracer) SetJournal(w io.Writer) error {
	if t == nil {
		return nil
	}
	h, err := json.Marshal(Header{V: JournalVersion, Epoch: t.epoch.UTC().Format(time.RFC3339Nano)})
	if err != nil {
		return err
	}
	if _, err := w.Write(append(h, '\n')); err != nil {
		return fmt.Errorf("runspan: journal header: %w", err)
	}
	j := &journalWriter{w: w}
	if s, ok := w.(syncer); ok {
		j.sync = s
	}
	t.mu.Lock()
	t.journal = j
	t.mu.Unlock()
	return nil
}

// CloseJournal flushes and closes the journal, returning the first
// error the writer hit (a disk-full mid-sweep surfaces here rather
// than being silently swallowed). Safe on a nil or journal-less
// tracer.
func (t *Tracer) CloseJournal() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	j := t.journal
	t.journal = nil
	t.mu.Unlock()
	if j == nil {
		return nil
	}
	err := j.err
	if j.sync != nil {
		if serr := j.sync.Sync(); err == nil {
			err = serr
		}
	}
	if j.c != nil {
		if cerr := j.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// WriteJournalTo writes a one-shot span journal to w — the same
// versioned header + JSON-lines format the streamed journal uses —
// containing the finished spans that carry the given cross-process
// trace id (every finished span when w3cTraceID is empty). It is the
// renderer behind GET /v1/jobs/{id}/spans: a remote client reads the
// result back with ReadJournal exactly as it would a local journal
// file. Safe on a nil tracer (writes nothing, returns nil).
func (t *Tracer) WriteJournalTo(w io.Writer, w3cTraceID string) error {
	if t == nil {
		return nil
	}
	h, err := json.Marshal(Header{V: JournalVersion, Epoch: t.epoch.UTC().Format(time.RFC3339Nano)})
	if err != nil {
		return err
	}
	if _, err := w.Write(append(h, '\n')); err != nil {
		return err
	}
	spans := t.Spans()
	if w3cTraceID != "" {
		spans = t.SpansForTrace(w3cTraceID)
	}
	for _, d := range spans {
		b, err := json.Marshal(d)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// ReadJournal decodes a span journal. It is torn-tail tolerant: a
// final line that is incomplete (no newline) or fails to decode —
// the crash case the fsync discipline is designed around — is
// dropped without error. A bad header or unknown version is an
// error; the journal is useless without it.
func ReadJournal(r io.Reader) (Header, []SpanData, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil && !errors.Is(err, io.EOF) {
		return Header{}, nil, fmt.Errorf("runspan: read journal header: %w", err)
	}
	var h Header
	if uerr := json.Unmarshal([]byte(line), &h); uerr != nil {
		return Header{}, nil, fmt.Errorf("runspan: bad journal header: %w", uerr)
	}
	if h.V != JournalVersion {
		return Header{}, nil, fmt.Errorf("runspan: journal version %d (want %d)", h.V, JournalVersion)
	}
	var spans []SpanData
	for {
		line, err := br.ReadString('\n')
		if len(line) == 0 && err != nil {
			break
		}
		torn := err != nil // no trailing newline: possibly cut mid-record
		var d SpanData
		if uerr := json.Unmarshal([]byte(line), &d); uerr != nil {
			if torn || isLastLine(br) {
				break // torn tail: keep everything before it
			}
			return h, nil, fmt.Errorf("runspan: bad journal record: %w", uerr)
		}
		spans = append(spans, d)
		if err != nil {
			break
		}
	}
	return h, spans, nil
}

// isLastLine reports whether the reader is exhausted, i.e. the line
// just read was the journal's final one.
func isLastLine(br *bufio.Reader) bool {
	_, err := br.Peek(1)
	return err != nil
}
