package runspan

import (
	"fmt"
	"io"
	"sort"
	"time"

	"hbat/internal/ptrace"
)

// JournalPart is one process's span journal, as fetched or read back
// by a merging client: its display label ("client", "hbatd", ...),
// the journal header (whose epoch anchors the spans on the shared
// wall-clock axis), and the decoded spans.
type JournalPart struct {
	Label  string
	Header Header
	Spans  []SpanData
}

// MergeStats summarizes the cross-process linkage WriteMergedPerfetto
// found: how many spans each part contributed and how many root spans
// were parented under a span of another part — zero linked roots on a
// two-part merge means the journals do not actually share a trace.
type MergeStats struct {
	Spans  []int // per part, same order as the input
	Linked int   // roots whose RemoteParent resolved to another part's span
}

// WriteMergedPerfetto renders several span journals — typically the
// submitting client's and the serving hbatd's — as one Chrome/Perfetto
// trace-event document on a single wall-clock axis. Each part's spans
// are shifted by its epoch's offset from the earliest epoch, so a
// server span opened two processes away still lands at the true wall
// time inside the client's Simulate span. Each part becomes its own
// Perfetto process with one thread per internal trace, keeping the
// per-part layout identical to the single-process export.
func WriteMergedPerfetto(w io.Writer, parts []JournalPart) (MergeStats, error) {
	st := MergeStats{Spans: make([]int, len(parts))}
	if len(parts) == 0 {
		return st, fmt.Errorf("runspan: nothing to merge")
	}

	// Epoch alignment: every part's StartUS values are microseconds
	// since its own header epoch; shift them all onto the earliest one.
	epochs := make([]time.Time, len(parts))
	var min time.Time
	for i, p := range parts {
		ep, err := time.Parse(time.RFC3339Nano, p.Header.Epoch)
		if err != nil {
			return st, fmt.Errorf("runspan: part %q: bad epoch %q: %w", p.Label, p.Header.Epoch, err)
		}
		epochs[i] = ep
		if i == 0 || ep.Before(min) {
			min = ep
		}
	}

	// Cross-process linkage: which wire span ids exist in which part.
	spanOwner := make(map[string]int)
	for i, p := range parts {
		for _, d := range p.Spans {
			if d.SpanW3C != "" {
				spanOwner[d.SpanW3C] = i
			}
		}
	}

	pw := ptrace.NewPerfettoWriter(w)
	for i, p := range parts {
		shift := epochs[i].Sub(min).Microseconds()
		pw.ProcessName(i, fmt.Sprintf("%s (wall µs, epoch %+dµs)", p.Label, shift))
		spans := make([]SpanData, len(p.Spans))
		copy(spans, p.Spans)
		sort.Slice(spans, func(a, b int) bool {
			x, y := spans[a], spans[b]
			if x.Trace != y.Trace {
				return x.Trace < y.Trace
			}
			if x.StartUS != y.StartUS {
				return x.StartUS < y.StartUS
			}
			return x.Span < y.Span
		})
		named := make(map[TraceID]bool)
		for _, d := range spans {
			if !named[d.Trace] {
				named[d.Trace] = true
				label := fmt.Sprintf("%s %s", p.Label, threadLabel(rootOf(spans, d.Trace)))
				pw.ThreadName(i, int(d.Trace), label)
			}
			pw.Slice(i, int(d.Trace), d.StartUS+shift, d.DurUS, d.Name, jargs(d))
			st.Spans[i]++
			if d.Parent == 0 && d.RemoteParent != "" {
				if owner, ok := spanOwner[d.RemoteParent]; ok && owner != i {
					st.Linked++
				}
			}
		}
	}
	return st, pw.Close()
}

// rootOf finds a trace's root span in a part's (sorted) span list,
// falling back to a placeholder when the root is missing (torn tail).
func rootOf(spans []SpanData, id TraceID) SpanData {
	for _, d := range spans {
		if d.Trace == id && d.Parent == 0 {
			return d
		}
	}
	return SpanData{Trace: id, Name: "trace"}
}
