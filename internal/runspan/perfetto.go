package runspan

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"hbat/internal/ptrace"
)

// Perfetto track layout for a merged sweep timeline. The macro
// process holds one thread per trace (the sweep trace plus one per
// run), with each phase span as a duration slice in wall-clock
// microseconds. Every attached ptrace recorder then gets its own
// pair of processes (pipeline + memory, exactly the standalone
// ptrace layout) whose events are shifted so cycle 0 lands at the
// anchoring macro span's start — a run's micro pipeline events nest
// under that run's simulate span on the same timeline.
const (
	pidMacro     = 0
	microPidBase = 1000
)

// jargs renders a span's identity and attributes as the inner body
// of a trace-event args object, attribute keys sorted for stable
// output.
func jargs(d SpanData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\"trace\":%d,\"span\":%d", d.Trace, d.Span)
	if d.TraceW3C != "" {
		fmt.Fprintf(&b, ",\"trace_id\":%s", jstr(d.TraceW3C))
	}
	if d.SpanW3C != "" {
		fmt.Fprintf(&b, ",\"span_id\":%s", jstr(d.SpanW3C))
	}
	if d.RemoteParent != "" {
		fmt.Fprintf(&b, ",\"parent_span_id\":%s", jstr(d.RemoteParent))
	}
	keys := make([]string, 0, len(d.Attrs))
	for k := range d.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, ",%s:%s", jstr(k), jstr(d.Attrs[k]))
	}
	return b.String()
}

// jstr renders s as a JSON string literal.
func jstr(s string) string {
	b := make([]byte, 0, len(s)+2)
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, []byte(fmt.Sprintf("\\u%04x", c))...)
		default:
			b = append(b, c)
		}
	}
	return string(append(b, '"'))
}

// threadLabel names a trace's macro track after its root span.
func threadLabel(root SpanData) string {
	label := fmt.Sprintf("%s #%d", root.Name, root.Trace)
	if w, ok := root.Attrs["workload"]; ok {
		if d, ok := root.Attrs["design"]; ok {
			label = fmt.Sprintf("%s %s/%s #%d", root.Name, w, d, root.Trace)
		}
	}
	return label
}

// WritePerfetto exports every finished span — and every attached
// micro recorder — as one Chrome/Perfetto trace-event JSON document.
// Macro timestamps are wall-clock microseconds since the tracer's
// epoch; micro (ptrace) events keep their 1-cycle-=-1-µs scale,
// offset to their anchor span's start.
func (t *Tracer) WritePerfetto(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]SpanData, len(t.done))
	copy(spans, t.done)
	micro := make([]microTrack, len(t.micro))
	copy(micro, t.micro)
	t.mu.Unlock()

	// Stable order: by trace, then start, then span id.
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.StartUS != b.StartUS {
			return a.StartUS < b.StartUS
		}
		return a.Span < b.Span
	})

	pw := ptrace.NewPerfettoWriter(w)
	pw.ProcessName(pidMacro, "sweep (macro, wall µs)")
	// One macro thread per trace, named after its root span.
	var traces []TraceID
	roots := make(map[TraceID]SpanData)
	for _, d := range spans {
		if _, ok := roots[d.Trace]; !ok {
			traces = append(traces, d.Trace)
		}
		if d.Parent == 0 {
			if r, ok := roots[d.Trace]; !ok || d.Span < r.Span {
				roots[d.Trace] = d
			}
		}
	}
	for _, id := range traces {
		root, ok := roots[id]
		if !ok {
			root = SpanData{Trace: id, Name: "trace"}
		}
		pw.ThreadName(pidMacro, int(id), threadLabel(root))
	}
	for _, d := range spans {
		pw.Slice(pidMacro, int(d.Trace), d.StartUS, d.DurUS, d.Name, jargs(d))
	}

	// Micro timelines: a process pair per attachment, time-shifted to
	// the anchor span's start.
	for i, m := range micro {
		pipe := microPidBase + 2*i
		m.rec.AppendPerfetto(pw, pipe, pipe+1, m.startUS,
			fmt.Sprintf("run #%d %s pipeline (1 cycle = 1 µs)", m.trace, m.label),
			fmt.Sprintf("run #%d %s translation+memory", m.trace, m.label))
	}
	return pw.Close()
}

// WritePerfettoFile writes the merged timeline to path.
func (t *Tracer) WritePerfettoFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WritePerfetto(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
