// Package runspan is a lightweight span tracer for the sweep harness:
// one trace per RunSpec (plus one for the sweep itself), parent/child
// spans for each phase (program build, checkpoint, fast-forward,
// simulate, render, journal append), string attributes, and monotonic
// timestamps measured from a single per-tracer epoch.
//
// Like ptrace.Recorder, a nil *Tracer is the disabled tracer: every
// method on a nil Tracer (and on the nil *Span they return) is a safe
// no-op that allocates nothing, so call sites can stay unconditional
// on the hot path. Attribute values that must be formatted (strconv,
// fmt) should still be guarded by Enabled() so the formatting itself
// is skipped when tracing is off.
//
// Finished spans are exported three ways: a crash-safe JSON-lines
// journal written as spans end (see journal.go), a Chrome/Perfetto
// trace JSON of the whole sweep with attached ptrace micro timelines
// nested under their run's macro span (see perfetto.go), and a live
// view (Open/Recent) served by the obs server at /debug/spans.
package runspan

import (
	"sort"
	"sync"
	"time"

	"hbat/internal/ptrace"
)

// TraceID identifies one trace: all spans of one run (or one sweep)
// share a TraceID. IDs are sequential per Tracer, starting at 1.
type TraceID uint64

// SpanData is one finished span, exactly as journaled. Attrs is a
// plain string map; encoding/json sorts map keys, so a SpanData
// marshals to deterministic bytes.
//
// The three W3C-style fields are only populated on traces bound to a
// cross-process TraceContext (NewTraceWith): every span of such a
// trace carries the shared hex TraceW3C, and the trace's root span
// additionally carries its own wire identity (SpanW3C) and the remote
// span it is parented under (RemoteParent) — the linkage a merged
// multi-process timeline is reassembled from.
type SpanData struct {
	Trace   TraceID           `json:"trace"`
	Span    uint64            `json:"span"`
	Parent  uint64            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`

	// TraceW3C is the 32-hex cross-process trace id shared by every
	// participating process's spans.
	TraceW3C string `json:"trace_id,omitempty"`
	// SpanW3C is this span's own 16-hex wire identity (root spans of
	// bound traces only) — what a downstream process's RemoteParent
	// points at.
	SpanW3C string `json:"span_id,omitempty"`
	// RemoteParent is the 16-hex span id (usually in another process)
	// this root span is parented under.
	RemoteParent string `json:"parent_span_id,omitempty"`
}

// OpenSpan is a still-running span as reported by Open: its identity
// plus its age at the time of the snapshot.
type OpenSpan struct {
	Trace   TraceID           `json:"trace"`
	Span    uint64            `json:"span"`
	Parent  uint64            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	AgeUS   int64             `json:"age_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Span is an in-flight span. Spans are created by Tracer.Start and
// finished exactly once by End; SetAttr may be called between the
// two. A nil Span (from a nil Tracer) accepts every call as a no-op.
type Span struct {
	t    *Tracer
	data SpanData
}

// Config tunes a Tracer. The zero value is usable.
type Config struct {
	// RecentCap bounds the finished-span ring served by Recent
	// (default 256).
	RecentCap int
	// Now overrides the monotonic clock: elapsed time since the
	// tracer's epoch. Tests use it for deterministic timestamps.
	Now func() time.Duration
	// Epoch overrides the wall-clock epoch stamped into the journal
	// header. Zero means time.Now() at New.
	Epoch time.Time
}

// microTrack is one ptrace recorder attached to a finished macro
// span; it becomes its own Perfetto process offset to the span start.
type microTrack struct {
	label   string
	trace   TraceID
	startUS int64
	rec     *ptrace.Recorder
}

// Tracer records spans. Create with New; share freely across
// goroutines. The zero value is NOT valid — but a nil *Tracer is, and
// means "disabled".
type Tracer struct {
	epoch time.Time
	now   func() time.Duration

	mu      sync.Mutex
	spanSeq uint64
	trcSeq  uint64
	// bind maps internally-allocated trace ids to their cross-process
	// identity (NewTraceWith); unbound traces stay local-only.
	bind    map[TraceID]traceBinding
	open    map[uint64]*Span
	done    []SpanData // every finished span, for export
	recent  []SpanData // ring of the last RecentCap finished spans
	recentN int        // next ring slot
	recCap  int
	micro   []microTrack

	// subs are live feeds of finished spans (Subscribe); sends never
	// block — a subscriber that falls behind loses spans, not the
	// tracer its latency.
	subs   map[uint64]chan SpanData
	subSeq uint64

	journal *journalWriter
}

// New creates an enabled Tracer.
func New(cfg Config) *Tracer {
	t := &Tracer{
		epoch:  cfg.Epoch,
		now:    cfg.Now,
		open:   make(map[uint64]*Span),
		recCap: cfg.RecentCap,
	}
	if t.epoch.IsZero() {
		t.epoch = time.Now()
	}
	if t.now == nil {
		epoch := time.Now()
		t.now = func() time.Duration { return time.Since(epoch) }
	}
	if t.recCap <= 0 {
		t.recCap = 256
	}
	return t
}

// Enabled reports whether spans are being recorded. It is the guard
// call sites use before formatting attribute values.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the monotonic offset since the tracer's epoch, or 0
// when disabled. Use it to capture a start time for a later StartAt.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.now()
}

// NewTrace allocates a fresh trace ID (0 when disabled).
func (t *Tracer) NewTrace() TraceID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.trcSeq++
	id := TraceID(t.trcSeq)
	t.mu.Unlock()
	return id
}

// traceBinding is a trace's cross-process identity.
type traceBinding struct {
	w3c    string // shared hex trace id, stamped on every span
	span   string // the trace's root span's own wire span id
	parent string // remote span id the root is parented under
}

// NewTraceWith allocates a trace bound to a cross-process identity:
// every span of the trace carries w3cTraceID as its trace_id; the
// trace's root spans additionally carry ownSpanID as their wire
// span_id and remoteParent as the span (typically in another process)
// they are parented under. Either of ownSpanID/remoteParent may be
// empty: a client minting a brand-new trace has no remote parent, and
// a process that will not be propagated past needs no wire span id.
// Returns 0 when disabled.
func (t *Tracer) NewTraceWith(w3cTraceID, ownSpanID, remoteParent string) TraceID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.trcSeq++
	id := TraceID(t.trcSeq)
	if w3cTraceID != "" {
		if t.bind == nil {
			t.bind = make(map[TraceID]traceBinding)
		}
		t.bind[id] = traceBinding{w3c: w3cTraceID, span: ownSpanID, parent: remoteParent}
	}
	t.mu.Unlock()
	return id
}

// Start opens a span under parent (nil parent = trace root) starting
// now. Returns nil when disabled.
func (t *Tracer) Start(trace TraceID, parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	return t.startAt(trace, parent, name, t.now())
}

// StartAt opens a span whose start is a previously captured Now()
// value — used for retroactive spans such as singleflight waits and
// scheduling gaps, where the wait is only worth a span once it is
// known to have happened.
func (t *Tracer) StartAt(trace TraceID, parent *Span, name string, at time.Duration) *Span {
	if t == nil {
		return nil
	}
	return t.startAt(trace, parent, name, at)
}

func (t *Tracer) startAt(trace TraceID, parent *Span, name string, at time.Duration) *Span {
	s := &Span{t: t}
	s.data.Trace = trace
	s.data.Name = name
	s.data.StartUS = int64(at / time.Microsecond)
	if parent != nil {
		s.data.Parent = parent.data.Span
	}
	t.mu.Lock()
	t.spanSeq++
	s.data.Span = t.spanSeq
	if b, ok := t.bind[trace]; ok {
		s.data.TraceW3C = b.w3c
		if parent == nil {
			// Only the trace's roots carry the wire identity and the
			// remote parent: children are linked through their local
			// parent chain.
			s.data.SpanW3C = b.span
			s.data.RemoteParent = b.parent
		}
	}
	t.open[s.data.Span] = s
	t.mu.Unlock()
	return s
}

// SetAttr attaches a string attribute and returns the span for
// chaining. Safe on a nil span.
func (s *Span) SetAttr(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string, 4)
	}
	s.data.Attrs[key] = value
	s.t.mu.Unlock()
	return s
}

// ID returns the span's ID (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.Span
}

// Trace returns the span's trace ID (0 for nil).
func (s *Span) Trace() TraceID {
	if s == nil {
		return 0
	}
	return s.data.Trace
}

// End finishes the span, journals it, and returns its duration. End
// is idempotent; calls after the first (and calls on nil) return 0.
// Root spans (no parent) force the journal to stable storage, so a
// crash loses at most the spans of the run in flight.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	t := s.t
	end := t.now()
	t.mu.Lock()
	if _, ok := t.open[s.data.Span]; !ok {
		t.mu.Unlock()
		return 0
	}
	delete(t.open, s.data.Span)
	dur := end - time.Duration(s.data.StartUS)*time.Microsecond
	if dur < 0 {
		dur = 0
	}
	s.data.DurUS = int64(dur / time.Microsecond)
	t.finishLocked(s.data)
	t.mu.Unlock()
	return dur
}

// finishLocked records a finished span and journals it. Callers hold t.mu.
func (t *Tracer) finishLocked(d SpanData) {
	t.done = append(t.done, d)
	if len(t.recent) < t.recCap {
		t.recent = append(t.recent, d)
	} else {
		t.recent[t.recentN%t.recCap] = d
	}
	t.recentN++
	for _, ch := range t.subs {
		select {
		case ch <- d:
		default: // slow subscriber: drop, never block the hot path
		}
	}
	if t.journal != nil {
		t.journal.append(d, d.Parent == 0)
	}
}

// Subscribe registers a live feed of finished spans, buffered to buf
// (minimum 1). The feed is lossy by design: a subscriber that does not
// drain fast enough misses spans rather than stalling End. Cancel
// unregisters and closes the channel; it is safe to call twice.
// Subscribing to a nil (disabled) tracer returns a nil channel —
// which blocks forever in a select — and a no-op cancel.
func (t *Tracer) Subscribe(buf int) (<-chan SpanData, func()) {
	if t == nil {
		return nil, func() {}
	}
	if buf < 1 {
		buf = 1
	}
	ch := make(chan SpanData, buf)
	t.mu.Lock()
	if t.subs == nil {
		t.subs = make(map[uint64]chan SpanData)
	}
	t.subSeq++
	id := t.subSeq
	t.subs[id] = ch
	t.mu.Unlock()
	return ch, func() {
		t.mu.Lock()
		if _, ok := t.subs[id]; ok {
			delete(t.subs, id)
			close(ch)
		}
		t.mu.Unlock()
	}
}

// AttachMicro associates a ptrace recorder with a finished (or at
// least started) macro span: in the Perfetto export the recorder's
// events become their own process, time-shifted so cycle 0 lands at
// the span's start. label names the process (typically the RunSpec).
func (t *Tracer) AttachMicro(anchor *Span, label string, rec *ptrace.Recorder) {
	if t == nil || anchor == nil || rec == nil {
		return
	}
	t.mu.Lock()
	t.micro = append(t.micro, microTrack{
		label:   label,
		trace:   anchor.data.Trace,
		startUS: anchor.data.StartUS,
		rec:     rec,
	})
	t.mu.Unlock()
}

// Open snapshots the currently running spans, oldest first, with
// their ages at snapshot time.
func (t *Tracer) Open() []OpenSpan {
	if t == nil {
		return nil
	}
	now := int64(t.now() / time.Microsecond)
	t.mu.Lock()
	out := make([]OpenSpan, 0, len(t.open))
	for _, s := range t.open {
		o := OpenSpan{
			Trace:   s.data.Trace,
			Span:    s.data.Span,
			Parent:  s.data.Parent,
			Name:    s.data.Name,
			StartUS: s.data.StartUS,
			AgeUS:   now - s.data.StartUS,
		}
		if len(s.data.Attrs) > 0 {
			o.Attrs = make(map[string]string, len(s.data.Attrs))
			for k, v := range s.data.Attrs {
				o.Attrs[k] = v
			}
		}
		out = append(out, o)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Span < out[j].Span })
	return out
}

// Recent returns the most recently finished spans (up to RecentCap),
// oldest first.
func (t *Tracer) Recent() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.recentN <= len(t.recent) {
		out := make([]SpanData, len(t.recent))
		copy(out, t.recent)
		return out
	}
	// Ring has wrapped: oldest entry is at the next write slot.
	at := t.recentN % t.recCap
	out := make([]SpanData, 0, len(t.recent))
	out = append(out, t.recent[at:]...)
	out = append(out, t.recent[:at]...)
	return out
}

// Spans returns every finished span in completion order.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanData, len(t.done))
	copy(out, t.done)
	t.mu.Unlock()
	return out
}

// SpansForTrace returns every finished span carrying the given
// cross-process trace id, in completion order — the server side of
// GET /v1/jobs/{id}/spans.
func (t *Tracer) SpansForTrace(w3cTraceID string) []SpanData {
	if t == nil || w3cTraceID == "" {
		return nil
	}
	t.mu.Lock()
	var out []SpanData
	for _, d := range t.done {
		if d.TraceW3C == w3cTraceID {
			out = append(out, d)
		}
	}
	t.mu.Unlock()
	return out
}

// Subscribers reports the number of live Subscribe feeds — the value
// the SSE leak tests (and a queue-depth gauge) watch.
func (t *Tracer) Subscribers() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.subs)
}
