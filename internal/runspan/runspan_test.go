package runspan

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"hbat/internal/ptrace"
)

// testClock is a settable monotonic clock for deterministic timestamps.
type testClock struct{ at time.Duration }

func (c *testClock) now() time.Duration      { return c.at }
func (c *testClock) advance(d time.Duration) { c.at += d }
func (c *testClock) set(d time.Duration)     { c.at = d }
func (c *testClock) tracer(recCap int) *Tracer {
	return New(Config{
		RecentCap: recCap,
		Now:       c.now,
		Epoch:     time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
	})
}

func TestSpanLifecycle(t *testing.T) {
	clk := &testClock{}
	tr := clk.tracer(0)
	if !tr.Enabled() {
		t.Fatal("New tracer not enabled")
	}

	rt := tr.NewTrace()
	if rt != 1 {
		t.Fatalf("first trace id = %d, want 1", rt)
	}
	root := tr.Start(rt, nil, "run").SetAttr("workload", "compress")
	clk.set(1500 * time.Microsecond)
	child := tr.Start(rt, root, "simulate")
	clk.set(2500 * time.Microsecond)
	if d := child.End(); d != 1000*time.Microsecond {
		t.Fatalf("child duration = %v, want 1ms", d)
	}
	clk.set(3 * time.Millisecond)
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d finished spans, want 2", len(spans))
	}
	// Completion order: child first.
	want := []SpanData{
		{Trace: 1, Span: 2, Parent: 1, Name: "simulate", StartUS: 1500, DurUS: 1000},
		{Trace: 1, Span: 1, Name: "run", StartUS: 0, DurUS: 3000,
			Attrs: map[string]string{"workload": "compress"}},
	}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("spans = %+v\nwant    %+v", spans, want)
	}
}

func TestEndIdempotent(t *testing.T) {
	clk := &testClock{}
	tr := clk.tracer(0)
	sp := tr.Start(tr.NewTrace(), nil, "x")
	clk.advance(time.Millisecond)
	if d := sp.End(); d != time.Millisecond {
		t.Fatalf("first End = %v, want 1ms", d)
	}
	clk.advance(time.Millisecond)
	if d := sp.End(); d != 0 {
		t.Fatalf("second End = %v, want 0", d)
	}
	if n := len(tr.Spans()); n != 1 {
		t.Fatalf("span finished %d times", n)
	}
}

func TestStartAtRetroactive(t *testing.T) {
	clk := &testClock{}
	tr := clk.tracer(0)
	rt := tr.NewTrace()
	mark := tr.Now()
	clk.set(700 * time.Microsecond)
	// The wait turned out to be real: record it from the mark.
	sp := tr.StartAt(rt, nil, "singleflight_wait", mark)
	sp.End()
	got := tr.Spans()[0]
	if got.StartUS != 0 || got.DurUS != 700 {
		t.Fatalf("retroactive span = start %d dur %d, want 0/700", got.StartUS, got.DurUS)
	}
}

func TestOpenSnapshot(t *testing.T) {
	clk := &testClock{}
	tr := clk.tracer(0)
	rt := tr.NewTrace()
	root := tr.Start(rt, nil, "run").SetAttr("workload", "gcc")
	clk.set(400 * time.Microsecond)
	tr.Start(rt, root, "simulate")
	clk.set(1000 * time.Microsecond)

	open := tr.Open()
	if len(open) != 2 {
		t.Fatalf("got %d open spans, want 2", len(open))
	}
	if open[0].Name != "run" || open[0].AgeUS != 1000 || open[0].Attrs["workload"] != "gcc" {
		t.Fatalf("root open span = %+v", open[0])
	}
	if open[1].Name != "simulate" || open[1].AgeUS != 600 || open[1].Parent != root.ID() {
		t.Fatalf("child open span = %+v", open[1])
	}

	root.End()
	if got := tr.Open(); len(got) != 1 || got[0].Name != "simulate" {
		t.Fatalf("after root End, open = %+v", got)
	}
}

func TestRecentRing(t *testing.T) {
	clk := &testClock{}
	tr := clk.tracer(4)
	rt := tr.NewTrace()
	for i := 0; i < 10; i++ {
		tr.Start(rt, nil, string(rune('a'+i))).End()
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	var names []string
	for _, d := range recent {
		names = append(names, d.Name)
	}
	if got := strings.Join(names, ""); got != "ghij" {
		t.Fatalf("recent (oldest first) = %q, want \"ghij\"", got)
	}
	if n := len(tr.Spans()); n != 10 {
		t.Fatalf("done keeps %d, want all 10", n)
	}
}

// golden is the exact journal the clock/epoch above must produce: the
// bytes are load-bearing (versioned header, one line per span in
// completion order, sorted attribute keys).
const goldenJournal = `{"v":1,"epoch":"2026-01-02T03:04:05Z"}
{"trace":1,"span":2,"parent":1,"name":"simulate","start_us":1500,"dur_us":1000}
{"trace":1,"span":1,"name":"run","start_us":0,"dur_us":3000,"attrs":{"cache":"miss","workload":"compress"}}
`

func writeGoldenSpans(t *testing.T, w *bytes.Buffer) *Tracer {
	t.Helper()
	clk := &testClock{}
	tr := clk.tracer(0)
	if err := tr.SetJournal(w); err != nil {
		t.Fatal(err)
	}
	rt := tr.NewTrace()
	root := tr.Start(rt, nil, "run").SetAttr("workload", "compress").SetAttr("cache", "miss")
	clk.set(1500 * time.Microsecond)
	child := tr.Start(rt, root, "simulate")
	clk.set(2500 * time.Microsecond)
	child.End()
	clk.set(3 * time.Millisecond)
	root.End()
	return tr
}

func TestJournalGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := writeGoldenSpans(t, &buf)
	if err := tr.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != goldenJournal {
		t.Fatalf("journal bytes:\n%s\nwant:\n%s", buf.String(), goldenJournal)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := writeGoldenSpans(t, &buf)
	h, spans, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.V != JournalVersion || h.Epoch != "2026-01-02T03:04:05Z" {
		t.Fatalf("header = %+v", h)
	}
	if !reflect.DeepEqual(spans, tr.Spans()) {
		t.Fatalf("decoded spans = %+v\nwant %+v", spans, tr.Spans())
	}
	// Re-marshaling the decoded spans must reproduce the journal's
	// record lines byte for byte: the format is deterministic.
	var rebuilt bytes.Buffer
	hdr, _ := json.Marshal(h)
	rebuilt.Write(append(hdr, '\n'))
	for _, d := range spans {
		line, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt.Write(append(line, '\n'))
	}
	if rebuilt.String() != goldenJournal {
		t.Fatalf("re-marshaled journal:\n%s\nwant:\n%s", rebuilt.String(), goldenJournal)
	}
}

func TestJournalTornTail(t *testing.T) {
	cases := map[string]string{
		"cut mid-record":   goldenJournal[:len(goldenJournal)-20],
		"cut before \\n":   goldenJournal[:len(goldenJournal)-1],
		"garbage tail":     goldenJournal + "{\"trace\":9,\"span",
		"empty tail lines": goldenJournal,
	}
	for name, in := range cases {
		_, spans, err := ReadJournal(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(spans) < 1 || spans[0].Name != "simulate" {
			t.Fatalf("%s: intact records lost, got %+v", name, spans)
		}
	}
}

func TestJournalBadInput(t *testing.T) {
	if _, _, err := ReadJournal(strings.NewReader("not json\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, _, err := ReadJournal(strings.NewReader(`{"v":99,"epoch":"x"}` + "\n")); err == nil {
		t.Fatal("unknown version accepted")
	}
	// A corrupt record with valid records AFTER it is real corruption,
	// not a torn tail.
	in := strings.Replace(goldenJournal, `"span":2`, `"span":`, 1)
	if _, _, err := ReadJournal(strings.NewReader(in)); err == nil {
		t.Fatal("mid-journal corruption accepted")
	}
}

func TestOpenJournalFile(t *testing.T) {
	path := t.TempDir() + "/spans.jsonl"
	clk := &testClock{}
	tr := clk.tracer(0)
	if err := tr.OpenJournal(path); err != nil {
		t.Fatal(err)
	}
	tr.Start(tr.NewTrace(), nil, "run").End()
	if err := tr.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, spans, err := ReadJournal(f)
	if err != nil {
		t.Fatal(err)
	}
	if h.V != JournalVersion || len(spans) != 1 || spans[0].Name != "run" {
		t.Fatalf("file journal: header %+v spans %+v", h, spans)
	}
}

// TestDisabledNoAllocs proves the exact call sequence the sweep engine
// makes per run is free when tracing is off: a nil Tracer must not
// allocate, ever.
func TestDisabledNoAllocs(t *testing.T) {
	var tr *Tracer
	var rec *ptrace.Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			t.Fatal("nil tracer enabled")
		}
		rt := tr.NewTrace()
		mark := tr.Now()
		root := tr.Start(rt, nil, "run").SetAttr("workload", "x")
		tr.StartAt(rt, root, "singleflight_wait", mark).End()
		child := tr.Start(rt, root, "simulate")
		child.SetAttr("committed", "1")
		tr.AttachMicro(child, "spec", rec)
		child.End()
		root.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %.1f per run, want 0", allocs)
	}
}

func TestWritePerfettoMerged(t *testing.T) {
	clk := &testClock{}
	tr := clk.tracer(0)
	rt := tr.NewTrace()
	root := tr.Start(rt, nil, "run").SetAttr("workload", "compress").SetAttr("design", "T4")
	clk.set(2000 * time.Microsecond)
	sim := tr.Start(rt, root, "simulate")

	// A tiny micro timeline: one instruction fetched at cycle 1,
	// committed at cycle 3.
	rec := ptrace.New(ptrace.Config{Cap: 16})
	rec.Emit(0, 1, ptrace.KFetch, 0x100, nil, 0)
	rec.Emit(0, 3, ptrace.KCommit, 0x100, nil, 0)
	tr.AttachMicro(sim, "compress/T4", rec)

	clk.set(5000 * time.Microsecond)
	sim.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v\n%s", err, buf.String())
	}

	var macroSlices, microEvents int
	var simTS int64 = -1
	var microMinTS int64 = 1 << 62
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M":
			continue
		case ev.PID == pidMacro:
			macroSlices++
			if ev.Name == "simulate" {
				simTS = ev.TS
				if ev.Args["trace"].(float64) != 1 {
					t.Fatalf("simulate args = %v", ev.Args)
				}
			}
		case ev.PID >= microPidBase:
			microEvents++
			if ev.TS < microMinTS {
				microMinTS = ev.TS
			}
		default:
			t.Fatalf("event on unexpected pid %d: %+v", ev.PID, ev)
		}
	}
	if macroSlices != 2 {
		t.Fatalf("macro slices = %d, want 2", macroSlices)
	}
	if simTS != 2000 {
		t.Fatalf("simulate ts = %d, want 2000", simTS)
	}
	if microEvents == 0 {
		t.Fatal("no micro events in merged trace")
	}
	// Micro events are shifted to the simulate span's start: nothing
	// may land before it.
	if microMinTS < simTS {
		t.Fatalf("micro event at ts %d precedes its anchor span (ts %d)", microMinTS, simTS)
	}

	// Thread metadata names the run's track after its root span.
	if !strings.Contains(buf.String(), "run compress/T4 #1") {
		t.Fatal("macro thread not named after root span")
	}
}

func TestNilTracerExports(t *testing.T) {
	var tr *Tracer
	if err := tr.WritePerfetto(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetJournal(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	if tr.Open() != nil || tr.Recent() != nil || tr.Spans() != nil {
		t.Fatal("nil tracer returned non-nil snapshots")
	}
}
