package runspan

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceContext is a W3C-traceparent-style cross-process trace
// identity: the trace every process's spans join (TraceID) and the
// span the next process's work is parented under (SpanID). The api
// client mints one per submitted job, sends it on the wire, and the
// hbatd transport threads it into the engine's span tracer — which is
// what stitches a client's Simulate span and the server's
// run > checkpoint > simulate tree into one trace.
type TraceContext struct {
	// TraceID is 32 lowercase hex characters, not all zero.
	TraceID string
	// SpanID is 16 lowercase hex characters, not all zero: the parent
	// span the receiving process roots its spans under.
	SpanID string
}

// NewTraceContext mints a fresh trace identity from crypto/rand.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: randHex(16), SpanID: randHex(8)}
}

// NewSpanID mints a fresh 16-hex-char span identity — what a process
// stamps on its own root span before propagating the trace further.
func NewSpanID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	rand.Read(b)
	return hex.EncodeToString(b)
}

// Valid reports whether both IDs have the right shape: correct length,
// lowercase hex, not all zero.
func (tc TraceContext) Valid() bool {
	return validHexID(tc.TraceID, 32) && validHexID(tc.SpanID, 16)
}

func validHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set).
func (tc TraceContext) Traceparent() string {
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-01"
}

// ParseTraceparent decodes a W3C traceparent header value. Only the
// version-00 shape is understood; trace flags are accepted and
// ignored.
func ParseTraceparent(s string) (TraceContext, error) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 4 {
		return TraceContext{}, fmt.Errorf("runspan: traceparent %q: want 4 dash-separated fields", s)
	}
	if parts[0] != "00" {
		return TraceContext{}, fmt.Errorf("runspan: traceparent version %q not supported", parts[0])
	}
	tc := TraceContext{TraceID: parts[1], SpanID: parts[2]}
	if !tc.Valid() {
		return TraceContext{}, fmt.Errorf("runspan: traceparent %q: malformed trace or span id", s)
	}
	return tc, nil
}

// ctxKey keys the TraceContext stored in a context.Context.
type ctxKey struct{}

// ContextWithTrace returns a context carrying tc, for threading a
// cross-process trace identity through APIs that already take a
// context (engine.Run, most usefully).
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, tc)
}

// TraceFromContext extracts the TraceContext threaded by
// ContextWithTrace, reporting whether one was present and valid.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(ctxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}
