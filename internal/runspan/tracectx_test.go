package runspan

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func TestNewTraceContextShape(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("fresh context invalid: %+v", tc)
	}
	if len(tc.TraceID) != 32 || len(tc.SpanID) != 16 {
		t.Fatalf("id lengths = %d/%d, want 32/16", len(tc.TraceID), len(tc.SpanID))
	}
	if tc2 := NewTraceContext(); tc2.TraceID == tc.TraceID {
		t.Fatal("two minted contexts share a trace id")
	}
	if sp := NewSpanID(); len(sp) != 16 || !validHexID(sp, 16) {
		t.Fatalf("NewSpanID() = %q, want 16 hex chars", sp)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8)}
	hdr := tc.Traceparent()
	want := "00-" + tc.TraceID + "-" + tc.SpanID + "-01"
	if hdr != want {
		t.Fatalf("Traceparent() = %q, want %q", hdr, want)
	}
	got, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", hdr, err)
	}
	if got != tc {
		t.Fatalf("round trip = %+v, want %+v", got, tc)
	}
	// Flags other than 01 are accepted and ignored.
	if _, err := ParseTraceparent("00-" + tc.TraceID + "-" + tc.SpanID + "-00"); err != nil {
		t.Fatalf("unsampled flags rejected: %v", err)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	good := TraceContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("2", 16)}
	for _, bad := range []string{
		"",
		"not-a-traceparent",
		"01-" + good.TraceID + "-" + good.SpanID + "-01",                  // unknown version
		"00-" + strings.Repeat("0", 32) + "-" + good.SpanID + "-01",       // all-zero trace
		"00-" + good.TraceID + "-" + strings.Repeat("0", 16) + "-01",      // all-zero span
		"00-" + strings.ToUpper(good.TraceID) + "-" + good.SpanID + "-01", // uppercase
		"00-" + good.TraceID[:30] + "-" + good.SpanID + "-01",             // short trace
		"00-" + good.TraceID + "-" + good.SpanID,                          // missing flags
	} {
		if _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted, want error", bad)
		}
	}
}

func TestContextThreading(t *testing.T) {
	if _, ok := TraceFromContext(context.Background()); ok {
		t.Fatal("empty context reports a trace")
	}
	tc := NewTraceContext()
	ctx := ContextWithTrace(context.Background(), tc)
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceFromContext = %+v/%v, want %+v/true", got, ok, tc)
	}
	// An invalid context threads through but does not report ok.
	ctx = ContextWithTrace(context.Background(), TraceContext{TraceID: "xyz"})
	if _, ok := TraceFromContext(ctx); ok {
		t.Fatal("invalid trace context reported ok")
	}
}

// TestBoundTraceStamping exercises NewTraceWith: every span carries the
// shared trace id, only roots carry the wire span id and remote parent.
func TestBoundTraceStamping(t *testing.T) {
	clk := &testClock{}
	tr := clk.tracer(0)
	traceID := strings.Repeat("ab", 16)
	rt := tr.NewTraceWith(traceID, strings.Repeat("cd", 8), strings.Repeat("ef", 8))
	root := tr.Start(rt, nil, "run")
	child := tr.Start(rt, root, "simulate")
	child.End()
	root.End()

	spans := tr.SpansForTrace(traceID)
	if len(spans) != 2 {
		t.Fatalf("SpansForTrace: %d spans, want 2", len(spans))
	}
	for _, d := range spans {
		if d.TraceW3C != traceID {
			t.Fatalf("span %q trace_id = %q, want %q", d.Name, d.TraceW3C, traceID)
		}
	}
	// Completion order: child first, root second.
	if spans[0].SpanW3C != "" || spans[0].RemoteParent != "" {
		t.Fatalf("child carries wire identity: %+v", spans[0])
	}
	if spans[1].SpanW3C != strings.Repeat("cd", 8) || spans[1].RemoteParent != strings.Repeat("ef", 8) {
		t.Fatalf("root wire identity = %q/%q", spans[1].SpanW3C, spans[1].RemoteParent)
	}

	// Unbound traces stay local-only.
	lt := tr.NewTrace()
	tr.Start(lt, nil, "local").End()
	for _, d := range tr.Spans() {
		if d.Trace == lt && (d.TraceW3C != "" || d.SpanW3C != "") {
			t.Fatalf("unbound trace stamped with wire identity: %+v", d)
		}
	}
	if got := tr.SpansForTrace(traceID); len(got) != 2 {
		t.Fatalf("SpansForTrace after local trace: %d spans, want 2", len(got))
	}
}

func TestWriteJournalToFiltersByTrace(t *testing.T) {
	clk := &testClock{}
	tr := clk.tracer(0)
	traceID := strings.Repeat("12", 16)
	bt := tr.NewTraceWith(traceID, strings.Repeat("34", 8), "")
	tr.Start(bt, nil, "job").End()
	tr.Start(tr.NewTrace(), nil, "other").End()

	var buf bytes.Buffer
	if err := tr.WriteJournalTo(&buf, traceID); err != nil {
		t.Fatal(err)
	}
	hdr, spans, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.V != JournalVersion {
		t.Fatalf("header version = %d, want %d", hdr.V, JournalVersion)
	}
	if len(spans) != 1 || spans[0].Name != "job" || spans[0].TraceW3C != traceID {
		t.Fatalf("filtered journal = %+v, want the one bound span", spans)
	}

	// Empty filter writes everything.
	buf.Reset()
	if err := tr.WriteJournalTo(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if _, spans, _ = ReadJournal(&buf); len(spans) != 2 {
		t.Fatalf("unfiltered journal has %d spans, want 2", len(spans))
	}

	// Nil tracer: no output, no error.
	buf.Reset()
	var nilTr *Tracer
	if err := nilTr.WriteJournalTo(&buf, ""); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer wrote %d bytes, err %v", buf.Len(), err)
	}
}

// TestWriteMergedPerfetto merges a synthetic client and server journal
// and checks epoch alignment and cross-process linkage counting.
func TestWriteMergedPerfetto(t *testing.T) {
	traceID := strings.Repeat("ab", 16)
	clientSpan := strings.Repeat("cd", 8)
	serverSpan := strings.Repeat("ef", 8)
	epoch := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

	client := JournalPart{
		Label:  "client",
		Header: Header{V: JournalVersion, Epoch: epoch.Format(time.RFC3339Nano)},
		Spans: []SpanData{
			{Trace: 1, Span: 1, Name: "fabric_simulate", StartUS: 0, DurUS: 5000,
				TraceW3C: traceID, SpanW3C: clientSpan},
		},
	}
	server := JournalPart{
		Label: "hbatd",
		// The server process started 2ms later: its StartUS values must
		// shift by +2000 on the merged axis.
		Header: Header{V: JournalVersion, Epoch: epoch.Add(2 * time.Millisecond).Format(time.RFC3339Nano)},
		Spans: []SpanData{
			{Trace: 1, Span: 1, Name: "job", StartUS: 100, DurUS: 2000,
				TraceW3C: traceID, SpanW3C: serverSpan, RemoteParent: clientSpan},
			{Trace: 2, Span: 2, Name: "run", StartUS: 200, DurUS: 1500,
				TraceW3C: traceID, SpanW3C: strings.Repeat("99", 8), RemoteParent: serverSpan},
		},
	}

	var buf bytes.Buffer
	st, err := WriteMergedPerfetto(&buf, []JournalPart{client, server})
	if err != nil {
		t.Fatal(err)
	}
	if st.Spans[0] != 1 || st.Spans[1] != 2 {
		t.Fatalf("per-part span counts = %v, want [1 2]", st.Spans)
	}
	// The job root links to the client's span; the run root links to the
	// job span, which lives in the same part and therefore must NOT
	// count as a cross-process link.
	if st.Linked != 1 {
		t.Fatalf("linked roots = %d, want 1", st.Linked)
	}
	out := buf.String()
	if !strings.Contains(out, `"ts":2100`) {
		t.Fatalf("server job span not shifted onto the client epoch:\n%s", out)
	}
	if !strings.Contains(out, `"fabric_simulate"`) || !strings.Contains(out, `"job"`) {
		t.Fatalf("merged output missing spans:\n%s", out)
	}
	if !strings.Contains(out, `"trace_id":"`+traceID+`"`) {
		t.Fatalf("merged output missing trace_id args:\n%s", out)
	}

	// A part with a bad epoch is an error, not a silent misalignment.
	bad := server
	bad.Header.Epoch = "not-a-time"
	if _, err := WriteMergedPerfetto(&bytes.Buffer{}, []JournalPart{client, bad}); err == nil {
		t.Fatal("bad epoch accepted")
	}
	if _, err := WriteMergedPerfetto(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("empty merge accepted")
	}
}
