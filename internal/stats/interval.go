package stats

import (
	"fmt"
	"io"
	"strconv"
)

// IntervalSeries is a fixed-column time series: one row appended every
// sampling interval (N simulated cycles), exported as CSV for external
// plotting. The machine owns the sampling cadence; the series just
// stores rows, so it stays decoupled from what is being sampled.
type IntervalSeries struct {
	every int64
	cols  []string
	rows  [][]float64
}

// NewIntervalSeries builds a series sampled every N cycles with the
// given column names (the first column is conventionally "cycle").
func NewIntervalSeries(every int64, cols ...string) *IntervalSeries {
	if every <= 0 {
		panic("stats: interval must be positive")
	}
	if len(cols) == 0 {
		panic("stats: interval series needs at least one column")
	}
	return &IntervalSeries{every: every, cols: append([]string(nil), cols...)}
}

// Every returns the sampling interval in cycles.
func (s *IntervalSeries) Every() int64 { return s.every }

// Columns returns the column names.
func (s *IntervalSeries) Columns() []string { return s.cols }

// Append adds one sample row; its arity must match the columns.
func (s *IntervalSeries) Append(row ...float64) {
	if len(row) != len(s.cols) {
		panic(fmt.Sprintf("stats: interval row has %d values, series has %d columns", len(row), len(s.cols)))
	}
	s.rows = append(s.rows, append([]float64(nil), row...))
}

// Len returns how many rows have been appended.
func (s *IntervalSeries) Len() int { return len(s.rows) }

// Row returns row i (the backing slice; do not mutate).
func (s *IntervalSeries) Row(i int) []float64 { return s.rows[i] }

// WriteCSV writes a header row of column names followed by one line per
// sample. Values render with strconv's shortest-round-trip formatting,
// so the export is byte-stable.
func (s *IntervalSeries) WriteCSV(w io.Writer) error {
	for i, c := range s.cols {
		sep := ","
		if i == len(s.cols)-1 {
			sep = "\n"
		}
		if _, err := io.WriteString(w, c+sep); err != nil {
			return err
		}
	}
	for _, row := range s.rows {
		for i, v := range row {
			sep := ","
			if i == len(row)-1 {
				sep = "\n"
			}
			if _, err := io.WriteString(w, strconv.FormatFloat(v, 'g', -1, 64)+sep); err != nil {
				return err
			}
		}
	}
	return nil
}
