package stats

import (
	"strings"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{0, 1, 3})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %d, want 0", q, got)
		}
	}
}

func TestQuantileSingleSample(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{0, 1, 3, 7})
	h.Observe(2)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 3 {
			t.Errorf("Quantile(%v) = %d, want 3 (bucket upper bound of the one sample)", q, got)
		}
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{0, 1, 3})
	for i := 0; i < 9; i++ {
		h.Observe(0)
	}
	h.Observe(500) // overflow: above the last bound
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("median = %d, want 0", got)
	}
	// The tail quantile lands in the overflow bucket and is capped at the
	// observed maximum rather than reporting an unbounded bucket.
	if got := h.Quantile(1); got != 500 {
		t.Errorf("p100 = %d, want the observed max 500", got)
	}
	if got := h.Quantile(0.99); got != 500 {
		t.Errorf("p99 = %d, want 500", got)
	}
}

func TestQuantileClampsRange(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{0, 1})
	h.Observe(0)
	h.Observe(1)
	if got := h.Quantile(-3); got != 0 {
		t.Errorf("Quantile(-3) = %d, want 0 (clamped to q=0)", got)
	}
	if got := h.Quantile(42); got != 1 {
		t.Errorf("Quantile(42) = %d, want 1 (clamped to q=1)", got)
	}
}

func TestIntervalSeriesCSV(t *testing.T) {
	s := NewIntervalSeries(100, "cycle", "ipc", "tlb.miss_rate")
	if s.Every() != 100 {
		t.Fatalf("Every = %d", s.Every())
	}
	s.Append(100, 1.5, 0.25)
	s.Append(200, 0.5, 0)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "cycle,ipc,tlb.miss_rate\n100,1.5,0.25\n200,0.5,0\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
	if s.Len() != 2 || s.Row(1)[0] != 200 {
		t.Errorf("rows: len %d, row1 %v", s.Len(), s.Row(1))
	}
	if cols := s.Columns(); len(cols) != 3 || cols[2] != "tlb.miss_rate" {
		t.Errorf("columns = %v", cols)
	}
}

func TestIntervalSeriesPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero interval", func() { NewIntervalSeries(0, "cycle") })
	mustPanic("no columns", func() { NewIntervalSeries(10) })
	mustPanic("arity mismatch", func() {
		s := NewIntervalSeries(10, "a", "b")
		s.Append(1)
	})
}
