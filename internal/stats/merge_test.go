package stats

import (
	"reflect"
	"testing"
)

// TestMergeFoldsSnapshots pins the cross-run aggregation contract the
// observability layer depends on: merging two runs' snapshots sums
// counters and histogram buckets, keeps gauge/histogram high-water
// marks, and leaves the source snapshots untouched.
func TestMergeFoldsSnapshots(t *testing.T) {
	mk := func(c uint64, g, gmax int64, obs []int64) Snapshot {
		r := NewRegistry()
		r.Counter("tlb.lookups").Add(c)
		gauge := r.Gauge("rob.depth")
		gauge.Set(gmax)
		gauge.Set(g)
		h := r.Histogram("tlb.walk_latency", []int64{1, 4})
		for _, v := range obs {
			h.Observe(v)
		}
		return r.Snapshot()
	}

	agg := NewRegistry()
	agg.Merge(mk(10, 2, 5, []int64{0, 3, 9}))
	agg.Merge(mk(7, 4, 3, []int64{1, 1}))
	snap := agg.Snapshot()

	byName := map[string]Metric{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	if c := byName["tlb.lookups"]; c.Value != 17 {
		t.Errorf("counter = %d, want 17", c.Value)
	}
	if g := byName["rob.depth"]; g.Level != 4 || g.Max != 5 {
		t.Errorf("gauge level %d max %d, want 4/5", g.Level, g.Max)
	}
	h := byName["tlb.walk_latency"]
	if h.Count != 5 || h.Sum != 14 || h.Max != 9 {
		t.Errorf("hist count %d sum %d max %d, want 5/14/9", h.Count, h.Sum, h.Max)
	}
	// Buckets: le1 {0,1,1}=3, le4 {3}=1, +Inf {9}=1.
	if want := []uint64{3, 1, 1}; !reflect.DeepEqual(h.Buckets, want) {
		t.Errorf("buckets %v, want %v", h.Buckets, want)
	}
}

// TestMergeMismatchedBounds pins the fallback: a snapshot histogram
// whose bounds differ from the aggregate's folds entirely into the
// overflow bucket, keeping sum(buckets) == count (the exposition
// invariant /metrics relies on).
func TestMergeMismatchedBounds(t *testing.T) {
	agg := NewRegistry()
	agg.Histogram("lat", []int64{1, 2}).Observe(1)

	other := NewRegistry()
	other.Histogram("lat", []int64{10, 20}).Observe(15)
	other.Histogram("lat", []int64{10, 20}).Observe(3)
	agg.Merge(other.Snapshot())

	h := agg.Histogram("lat", []int64{1, 2})
	_, counts := h.Buckets()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != h.Count() || h.Count() != 3 {
		t.Errorf("bucket total %d vs count %d (want equal, 3)", total, h.Count())
	}
	if counts[len(counts)-1] != 2 {
		t.Errorf("overflow bucket = %d, want 2 (mismatched-bounds samples)", counts[len(counts)-1])
	}
}

// TestMergeIntoEmptyRegistry checks Merge creates metrics it has not
// seen, preserving kinds.
func TestMergeIntoEmptyRegistry(t *testing.T) {
	src := NewRegistry()
	src.Counter("a.b").Inc()
	src.Gauge("c.d").Set(9)
	src.Histogram("e.f", []int64{1}).Observe(2)

	agg := NewRegistry()
	agg.Merge(src.Snapshot())
	if !reflect.DeepEqual(agg.Snapshot(), src.Snapshot()) {
		t.Errorf("merge into empty registry is not identity:\n%v\nvs\n%v", agg.Snapshot(), src.Snapshot())
	}
}
